module cwsp

go 1.22
