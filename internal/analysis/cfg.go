// Package analysis implements the compiler analyses cWSP's transforms rely
// on: CFG utilities, dominators, natural-loop detection, backward liveness,
// and a flow-insensitive may-alias analysis over allocation sites.
package analysis

import "cwsp/internal/ir"

// CFG caches predecessor/successor structure and orderings of a function's
// control-flow graph.
type CFG struct {
	F     *ir.Function
	Succs [][]int
	Preds [][]int
	// RPO is a reverse postorder over reachable blocks (entry first).
	RPO []int
	// RPONum[b] is b's position in RPO, or -1 if unreachable.
	RPONum []int
}

// BuildCFG computes the CFG for f.
func BuildCFG(f *ir.Function) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:      f,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		RPONum: make([]int, n),
	}
	for i, b := range f.Blocks {
		c.Succs[i] = b.Succs()
	}
	for i, ss := range c.Succs {
		for _, s := range ss {
			c.Preds[s] = append(c.Preds[s], i)
		}
	}
	// Iterative DFS postorder from entry.
	visited := make([]bool, n)
	var post []int
	type fr struct {
		b  int
		si int
	}
	stack := []fr{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.si < len(c.Succs[top.b]) {
			s := c.Succs[top.b][top.si]
			top.si++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, fr{s, 0})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for i := range c.RPONum {
		c.RPONum[i] = -1
	}
	for i, b := range c.RPO {
		c.RPONum[b] = i
	}
	return c
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool { return c.RPONum[b] >= 0 }
