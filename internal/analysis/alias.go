package analysis

import "cwsp/internal/ir"

// Alias analysis: a flow-insensitive, allocation-site-based points-to
// analysis in the spirit of the LLVM basic alias analysis queries cWSP's
// region formation consumes. Each register is mapped to the set of abstract
// memory sites it may point to:
//
//   - one site per OpAlloc instruction (a heap allocation site),
//   - one site per 64 KiB constant-address region (globals),
//   - a distinguished Unknown site that may alias everything (results of
//     loads, calls, atomics, and incoming parameters).
//
// Pointer arithmetic (add/sub with an immediate or a scalar register)
// preserves sites; register-register adds union the operand sites, which
// soundly covers base+index addressing.

const siteUnknown = 0

// AliasInfo answers may-alias queries for one function.
type AliasInfo struct {
	F *ir.Function
	// pts[r] is the points-to site set of register r (nil = empty).
	pts []map[int]bool
	// constSite maps a 64 KiB constant-address region key (addr>>16) to its
	// site id.
	constSite map[int64]int
	// NumSites is the number of distinct abstract sites assigned.
	NumSites int
}

// MemRef identifies a memory instruction by position.
type MemRef struct {
	Block int
	Index int
}

// ComputeAlias runs the points-to fixpoint for f.
func ComputeAlias(f *ir.Function) *AliasInfo {
	ai := &AliasInfo{F: f, pts: make([]map[int]bool, f.NumRegs), constSite: map[int64]int{}}
	nextSite := 1
	allocSite := map[ir.InstrRef]int{}
	constSite := ai.constSite

	siteOfConst := func(v int64) int {
		k := v >> 16
		if s, ok := constSite[k]; ok {
			return s
		}
		s := nextSite
		nextSite++
		constSite[k] = s
		return s
	}

	add := func(r ir.Reg, site int) bool {
		if ai.pts[r] == nil {
			ai.pts[r] = map[int]bool{}
		}
		if ai.pts[r][site] {
			return false
		}
		ai.pts[r][site] = true
		return true
	}
	union := func(dst ir.Reg, src ir.Operand) bool {
		changed := false
		switch src.Kind {
		case ir.OperandReg:
			for s := range ai.pts[src.Reg] {
				if add(dst, s) {
					changed = true
				}
			}
		case ir.OperandImm:
			if add(dst, siteOfConst(src.Imm)) {
				changed = true
			}
		}
		return changed
	}

	// Parameters may point anywhere.
	for i := 0; i < f.NParams; i++ {
		add(ir.Reg(i), siteUnknown)
	}
	// Pre-assign allocation sites so the fixpoint is deterministic.
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpAlloc {
				allocSite[ir.InstrRef{Block: bi, Index: ii}] = nextSite
				nextSite++
			}
		}
	}

	changed := true
	for changed {
		changed = false
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				d := in.Def()
				if d == ir.NoReg {
					continue
				}
				switch in.Op {
				case ir.OpAlloc:
					if add(d, allocSite[ir.InstrRef{Block: bi, Index: ii}]) {
						changed = true
					}
				case ir.OpConst:
					if add(d, siteOfConst(in.A.Imm)) {
						changed = true
					}
				case ir.OpMov:
					if union(d, in.A) {
						changed = true
					}
				case ir.OpAdd, ir.OpSub:
					if union(d, in.A) {
						changed = true
					}
					if in.Op == ir.OpAdd && union(d, in.B) {
						changed = true
					}
				case ir.OpSelect:
					if union(d, in.B) {
						changed = true
					}
					if union(d, in.C) {
						changed = true
					}
				case ir.OpLoad, ir.OpCall, ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAtomicXchg:
					if add(d, siteUnknown) {
						changed = true
					}
				default:
					// Scalar arithmetic: no sites.
				}
			}
		}
	}
	ai.NumSites = nextSite
	return ai
}

// baseOperand returns the address operand of a memory instruction.
func baseOperand(in *ir.Instr) (ir.Operand, bool) {
	switch in.Op {
	case ir.OpLoad, ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAtomicXchg:
		return in.A, true
	case ir.OpStore:
		return in.B, true
	}
	return ir.Operand{}, false
}

// sitesOf returns the site set for an address operand. Register operands
// with an empty points-to set are treated as Unknown (an address must come
// from somewhere). A literal address maps to its constant-region site if
// any register may point there, otherwise to the empty set — nothing else
// can reach a constant region no register points into, except Unknown,
// which MayAlias handles first.
func (ai *AliasInfo) sitesOf(o ir.Operand) map[int]bool {
	switch o.Kind {
	case ir.OperandReg:
		s := ai.pts[o.Reg]
		if len(s) == 0 {
			return map[int]bool{siteUnknown: true}
		}
		return s
	case ir.OperandImm:
		if s, ok := ai.constSite[o.Imm>>16]; ok {
			return map[int]bool{s: true}
		}
		return map[int]bool{}
	}
	return map[int]bool{siteUnknown: true}
}

// MayAlias reports whether the memory instructions at positions a and b may
// access the same word. Both must be memory operations.
func (ai *AliasInfo) MayAlias(a, b MemRef) bool {
	ia := &ai.F.Blocks[a.Block].Instrs[a.Index]
	ib := &ai.F.Blocks[b.Block].Instrs[b.Index]
	oa, oka := baseOperand(ia)
	ob, okb := baseOperand(ib)
	if !oka || !okb {
		return false
	}

	// Fully constant addresses: exact disjointness check.
	if oa.Kind == ir.OperandImm && ob.Kind == ir.OperandImm {
		return (oa.Imm+ia.Off)&^7 == (ob.Imm+ib.Off)&^7
	}

	// Same base register, no redefinition in between (same block only),
	// distinct constant offsets: provably disjoint words.
	if oa.Kind == ir.OperandReg && ob.Kind == ir.OperandReg && oa.Reg == ob.Reg &&
		a.Block == b.Block && ia.Off != ib.Off {
		lo, hi := a.Index, b.Index
		if lo > hi {
			lo, hi = hi, lo
		}
		redefined := false
		for k := lo; k <= hi; k++ {
			if ai.F.Blocks[a.Block].Instrs[k].Def() == oa.Reg {
				redefined = true
				break
			}
		}
		if !redefined && (ia.Off&^7) != (ib.Off&^7) {
			return false
		}
	}

	sa := ai.sitesOf(oa)
	sb := ai.sitesOf(ob)
	if sa[siteUnknown] || sb[siteUnknown] {
		return true
	}
	for s := range sa {
		if sb[s] {
			return true
		}
	}
	return false
}
