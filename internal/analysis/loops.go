package analysis

import "sort"

// Loop is one natural loop: the header block plus the body block set
// (header included).
type Loop struct {
	Header int
	Body   map[int]bool
}

// NaturalLoops finds the natural loops of the CFG: for every back edge
// t->h where h dominates t, the loop body is h plus everything that can
// reach t without passing through h. Loops sharing a header are merged.
func NaturalLoops(c *CFG, d *DomTree) []Loop {
	byHeader := map[int]map[int]bool{}
	for t, succs := range c.Succs {
		if !c.Reachable(t) {
			continue
		}
		for _, h := range succs {
			if !d.Dominates(h, t) {
				continue
			}
			body := byHeader[h]
			if body == nil {
				body = map[int]bool{h: true}
				byHeader[h] = body
			}
			// Walk predecessors backwards from t, stopping at h.
			work := []int{t}
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				if body[b] {
					continue
				}
				body[b] = true
				for _, p := range c.Preds[b] {
					if c.Reachable(p) {
						work = append(work, p)
					}
				}
			}
		}
	}
	headers := make([]int, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, Loop{Header: h, Body: byHeader[h]})
	}
	return loops
}

// LoopHeaders returns the set of loop-header block indices.
func LoopHeaders(c *CFG, d *DomTree) map[int]bool {
	hs := map[int]bool{}
	for _, l := range NaturalLoops(c, d) {
		hs[l.Header] = true
	}
	return hs
}
