package analysis

import (
	"testing"

	"cwsp/internal/ir"
)

// diamond builds:
//
//	b0 -> b1, b2 ; b1 -> b3 ; b2 -> b3 ; b3 -> ret
func diamond(t testing.TB) *ir.Function {
	t.Helper()
	fb := ir.NewFunc("d", 1)
	b0 := fb.NewBlock("entry")
	b1 := fb.NewBlock("then")
	b2 := fb.NewBlock("else")
	b3 := fb.NewBlock("join")
	fb.SetBlock(b0)
	x := fb.Reg()
	fb.ConstInto(x, 0)
	fb.Br(ir.R(fb.Param(0)), b1, b2)
	fb.SetBlock(b1)
	fb.ConstInto(x, 1)
	fb.Jmp(b3)
	fb.SetBlock(b2)
	fb.ConstInto(x, 2)
	fb.Jmp(b3)
	fb.SetBlock(b3)
	fb.Ret(ir.R(x))
	return fb.MustDone()
}

func TestCFGDiamond(t *testing.T) {
	f := diamond(t)
	c := BuildCFG(f)
	if len(c.Preds[3]) != 2 {
		t.Errorf("join preds = %v", c.Preds[3])
	}
	if c.RPO[0] != 0 {
		t.Errorf("RPO does not start at entry: %v", c.RPO)
	}
	for b := 0; b < 4; b++ {
		if !c.Reachable(b) {
			t.Errorf("block %d unreachable", b)
		}
	}
}

func TestCFGUnreachableBlock(t *testing.T) {
	fb := ir.NewFunc("u", 0)
	fb.NewBlock("entry")
	fb.RetVoid()
	dead := fb.NewBlock("dead")
	fb.SetBlock(dead)
	fb.RetVoid()
	f := fb.MustDone()
	c := BuildCFG(f)
	if c.Reachable(1) {
		t.Error("dead block should be unreachable")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	c := BuildCFG(f)
	d := Dominators(c)
	if d.Idom[1] != 0 || d.Idom[2] != 0 || d.Idom[3] != 0 {
		t.Errorf("idoms = %v", d.Idom)
	}
	if !d.Dominates(0, 3) {
		t.Error("entry should dominate join")
	}
	if d.Dominates(1, 3) {
		t.Error("then should not dominate join")
	}
	if !d.Dominates(2, 2) {
		t.Error("dominance should be reflexive")
	}
}

// loopFunc builds a simple counted loop: b0 -> b1(header) -> b2(body) -> b1; b1 -> b3(exit).
func loopFunc(t testing.TB) *ir.Function {
	t.Helper()
	fb := ir.NewFunc("l", 1)
	b0 := fb.NewBlock("entry")
	b1 := fb.NewBlock("head")
	b2 := fb.NewBlock("body")
	b3 := fb.NewBlock("exit")
	fb.SetBlock(b0)
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(b1)
	fb.SetBlock(b1)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(fb.Param(0)))
	fb.Br(ir.R(c), b2, b3)
	fb.SetBlock(b2)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(b1)
	fb.SetBlock(b3)
	fb.Ret(ir.R(i))
	return fb.MustDone()
}

func TestNaturalLoops(t *testing.T) {
	f := loopFunc(t)
	c := BuildCFG(f)
	d := Dominators(c)
	loops := NaturalLoops(c, d)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d, want 1", l.Header)
	}
	if !l.Body[1] || !l.Body[2] {
		t.Errorf("body = %v", l.Body)
	}
	if l.Body[0] || l.Body[3] {
		t.Errorf("body contains non-loop blocks: %v", l.Body)
	}
	hs := LoopHeaders(c, d)
	if !hs[1] || len(hs) != 1 {
		t.Errorf("headers = %v", hs)
	}
}

func TestNestedLoops(t *testing.T) {
	// b0 -> b1(outer head) -> b2(inner head) -> b3(inner body) -> b2
	//   b2 -> b4(outer latch) -> b1 ; b1 -> b5 exit
	fb := ir.NewFunc("n", 1)
	b0 := fb.NewBlock("entry")
	b1 := fb.NewBlock("oh")
	b2 := fb.NewBlock("ih")
	b3 := fb.NewBlock("ib")
	b4 := fb.NewBlock("ol")
	b5 := fb.NewBlock("exit")
	fb.SetBlock(b0)
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(b1)
	fb.SetBlock(b1)
	c1 := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(fb.Param(0)))
	fb.Br(ir.R(c1), b2, b5)
	fb.SetBlock(b2)
	c2 := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(3))
	fb.Br(ir.R(c2), b3, b4)
	fb.SetBlock(b3)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(b2)
	fb.SetBlock(b4)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(b1)
	fb.SetBlock(b5)
	fb.Ret(ir.R(i))
	f := fb.MustDone()

	c := BuildCFG(f)
	d := Dominators(c)
	hs := LoopHeaders(c, d)
	if !hs[1] || !hs[2] {
		t.Errorf("expected headers 1 and 2, got %v", hs)
	}
	for _, l := range NaturalLoops(c, d) {
		if l.Header == 2 && (l.Body[1] || l.Body[4]) {
			t.Errorf("inner loop body leaked outer blocks: %v", l.Body)
		}
		if l.Header == 1 && !(l.Body[2] && l.Body[3] && l.Body[4]) {
			t.Errorf("outer loop body incomplete: %v", l.Body)
		}
	}
}

func TestLivenessLoop(t *testing.T) {
	f := loopFunc(t)
	c := BuildCFG(f)
	lv := ComputeLiveness(f, c)
	i := ir.Reg(1) // loop counter register
	if !lv.LiveIn[1].Has(i) {
		t.Error("counter should be live into loop header")
	}
	if !lv.LiveIn[1].Has(ir.Reg(0)) {
		t.Error("param (loop bound) should be live into loop header")
	}
	if !lv.LiveOut[1].Has(i) {
		t.Error("counter live out of header (used by exit and body)")
	}
	// After the ret nothing is live.
	if lv.LiveOut[3].Count() != 0 {
		t.Errorf("exit live-out = %v", lv.LiveOut[3].Members())
	}
}

func TestLiveBeforeAfter(t *testing.T) {
	fb := ir.NewFunc("s", 0)
	fb.NewBlock("entry")
	a := fb.Const(1)                // idx 0
	b := fb.Add(ir.R(a), ir.Imm(2)) // idx 1
	fb.Ret(ir.R(b))                 // idx 2
	f := fb.MustDone()
	c := BuildCFG(f)
	lv := ComputeLiveness(f, c)
	if !lv.LiveBefore(0, 1).Has(a) {
		t.Error("a should be live before its use")
	}
	if lv.LiveAfter(0, 1).Has(a) {
		t.Error("a should be dead after its last use")
	}
	if !lv.LiveAfter(0, 1).Has(b) {
		t.Error("b should be live after definition")
	}
}

func TestRegSetOps(t *testing.T) {
	s := NewRegSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Error("membership wrong")
	}
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	m := s.Members()
	if len(m) != 3 || m[0] != 0 || m[1] != 64 || m[2] != 129 {
		t.Errorf("members = %v", m)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("remove failed")
	}
	o := NewRegSet(130)
	o.Add(5)
	if !o.Union(s) {
		t.Error("union should report change")
	}
	if o.Union(s) {
		t.Error("second union should be a no-op")
	}
	if !o.Has(0) || !o.Has(129) || !o.Has(5) {
		t.Error("union contents wrong")
	}
}

func TestAliasDistinctAllocs(t *testing.T) {
	fb := ir.NewFunc("a", 0)
	fb.NewBlock("entry")
	p := fb.Alloc(64)
	q := fb.Alloc(64)
	fb.Store(ir.Imm(1), ir.R(p), 0) // idx 2
	fb.Store(ir.Imm(2), ir.R(q), 0) // idx 3
	x := fb.Load(ir.R(p), 0)        // idx 4
	fb.Ret(ir.R(x))
	f := fb.MustDone()
	ai := ComputeAlias(f)
	if ai.MayAlias(MemRef{0, 2}, MemRef{0, 3}) {
		t.Error("stores to distinct allocations should not alias")
	}
	if !ai.MayAlias(MemRef{0, 2}, MemRef{0, 4}) {
		t.Error("store and load of same allocation must alias")
	}
}

func TestAliasSameBaseDifferentOffsets(t *testing.T) {
	fb := ir.NewFunc("o", 1)
	fb.NewBlock("entry")
	base := fb.Param(0)
	fb.Store(ir.Imm(1), ir.R(base), 0) // idx 0
	fb.Store(ir.Imm(2), ir.R(base), 8) // idx 1
	y := fb.Load(ir.R(base), 0)        // idx 2
	fb.Ret(ir.R(y))
	f := fb.MustDone()
	ai := ComputeAlias(f)
	if ai.MayAlias(MemRef{0, 0}, MemRef{0, 1}) {
		t.Error("same base, different word offsets, no redefinition: must not alias")
	}
	if !ai.MayAlias(MemRef{0, 0}, MemRef{0, 2}) {
		t.Error("same base same offset must alias")
	}
}

func TestAliasUnknownIsConservative(t *testing.T) {
	fb := ir.NewFunc("u", 2)
	fb.NewBlock("entry")
	p := fb.Load(ir.R(fb.Param(0)), 0) // pointer loaded from memory -> unknown
	fb.Store(ir.Imm(1), ir.R(p), 0)    // idx 1
	q := fb.Alloc(64)
	fb.Store(ir.Imm(2), ir.R(q), 0) // idx 3
	fb.RetVoid()
	f := fb.MustDone()
	ai := ComputeAlias(f)
	if !ai.MayAlias(MemRef{0, 1}, MemRef{0, 3}) {
		t.Error("unknown pointer must conservatively alias allocations")
	}
}

func TestAliasPointerArithKeepsSite(t *testing.T) {
	fb := ir.NewFunc("pa", 0)
	fb.NewBlock("entry")
	p := fb.Alloc(128)              // idx 0
	q := fb.Add(ir.R(p), ir.Imm(8)) // idx 1: q = p+8 keeps p's site
	fb.Store(ir.Imm(1), ir.R(q), 0) // idx 2
	x := fb.Load(ir.R(p), 8)        // idx 3: may be same word
	r := fb.Alloc(64)               // idx 4
	fb.Store(ir.Imm(2), ir.R(r), 0) // idx 5
	fb.Ret(ir.R(x))
	f := fb.MustDone()
	ai := ComputeAlias(f)
	if !ai.MayAlias(MemRef{0, 2}, MemRef{0, 3}) {
		t.Error("p+8 store must alias load p[8]")
	}
	if ai.MayAlias(MemRef{0, 2}, MemRef{0, 5}) {
		t.Error("derived pointer should not alias distinct allocation")
	}
}

func TestAliasConstAddresses(t *testing.T) {
	fb := ir.NewFunc("c", 0)
	fb.NewBlock("entry")
	g1 := fb.Const(0x100000)         // globals region
	fb.Store(ir.Imm(1), ir.R(g1), 0) // idx 1
	g2 := fb.Const(0x100008)
	fb.Store(ir.Imm(2), ir.R(g2), 0)  // idx 3
	far := fb.Const(0x900000)         // different 64K region
	fb.Store(ir.Imm(3), ir.R(far), 0) // idx 5
	fb.RetVoid()
	f := fb.MustDone()
	ai := ComputeAlias(f)
	if !ai.MayAlias(MemRef{0, 1}, MemRef{0, 3}) {
		t.Error("addresses in the same const region must (conservatively) alias")
	}
	if ai.MayAlias(MemRef{0, 1}, MemRef{0, 5}) {
		t.Error("distinct const regions should not alias")
	}
}
