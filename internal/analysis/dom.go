package analysis

// DomTree holds immediate-dominator information computed with the
// Cooper-Harvey-Kennedy iterative algorithm.
type DomTree struct {
	cfg *CFG
	// Idom[b] is the immediate dominator of b (Idom[entry] = entry);
	// -1 for unreachable blocks.
	Idom []int
}

// Dominators computes the dominator tree of c.
func Dominators(c *CFG) *DomTree {
	n := len(c.Succs)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	intersect := func(a, b int) int {
		for a != b {
			for c.RPONum[a] > c.RPONum[b] {
				a = idom[a]
			}
			for c.RPONum[b] > c.RPONum[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{cfg: c, Idom: idom}
}

// Dominates reports whether block a dominates block b (reflexive).
func (d *DomTree) Dominates(a, b int) bool {
	if d.Idom[b] == -1 || d.Idom[a] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = d.Idom[b]
	}
}
