package analysis

import "cwsp/internal/ir"

// RegSet is a dense bitset over a function's virtual registers.
type RegSet []uint64

// NewRegSet returns a set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Add inserts r.
func (s RegSet) Add(r ir.Reg) { s[int(r)/64] |= 1 << (uint(r) % 64) }

// Remove deletes r.
func (s RegSet) Remove(r ir.Reg) { s[int(r)/64] &^= 1 << (uint(r) % 64) }

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool { return s[int(r)/64]&(1<<(uint(r)%64)) != 0 }

// Union ors o into s and reports whether s changed.
func (s RegSet) Union(o RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Copy returns a fresh copy of s.
func (s RegSet) Copy() RegSet {
	c := make(RegSet, len(s))
	copy(c, s)
	return c
}

// Members lists the registers in s in ascending order.
func (s RegSet) Members() []ir.Reg {
	var out []ir.Reg
	for i, w := range s {
		for w != 0 {
			b := w & (-w)
			bit := 0
			for m := b; m > 1; m >>= 1 {
				bit++
			}
			out = append(out, ir.Reg(i*64+bit))
			w &^= b
		}
	}
	return out
}

// Count returns the cardinality of s.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for w != 0 {
			w &= w - 1
			n++
		}
	}
	return n
}

// Liveness holds block-level backward-liveness results for one function.
type Liveness struct {
	F       *ir.Function
	LiveIn  []RegSet // at block entry
	LiveOut []RegSet // at block exit
}

// ComputeLiveness runs the standard backward may-liveness dataflow.
func ComputeLiveness(f *ir.Function, c *CFG) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{
		F:       f,
		LiveIn:  make([]RegSet, n),
		LiveOut: make([]RegSet, n),
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = NewRegSet(f.NumRegs)
		lv.LiveOut[i] = NewRegSet(f.NumRegs)
	}
	changed := true
	var uses []ir.Reg
	for changed {
		changed = false
		// Iterate blocks in reverse RPO for fast convergence.
		for i := len(c.RPO) - 1; i >= 0; i-- {
			b := c.RPO[i]
			out := lv.LiveOut[b]
			for _, s := range c.Succs[b] {
				if out.Union(lv.LiveIn[s]) {
					changed = true
				}
			}
			in := out.Copy()
			blk := f.Blocks[b]
			for k := len(blk.Instrs) - 1; k >= 0; k-- {
				inst := &blk.Instrs[k]
				if d := inst.Def(); d != ir.NoReg {
					in.Remove(d)
				}
				uses = inst.Uses(uses[:0])
				for _, u := range uses {
					in.Add(u)
				}
			}
			for w := range in {
				if in[w] != lv.LiveIn[b][w] {
					lv.LiveIn[b] = in
					changed = true
					break
				}
			}
		}
	}
	return lv
}

// LiveBefore returns the live set immediately before f.Blocks[blk].Instrs[idx],
// reconstructed by walking the block backward from its LiveOut.
func (lv *Liveness) LiveBefore(blk, idx int) RegSet {
	cur := lv.LiveOut[blk].Copy()
	instrs := lv.F.Blocks[blk].Instrs
	var uses []ir.Reg
	for k := len(instrs) - 1; k >= idx; k-- {
		inst := &instrs[k]
		if d := inst.Def(); d != ir.NoReg {
			cur.Remove(d)
		}
		uses = inst.Uses(uses[:0])
		for _, u := range uses {
			cur.Add(u)
		}
	}
	return cur
}

// LiveAfter returns the live set immediately after f.Blocks[blk].Instrs[idx].
func (lv *Liveness) LiveAfter(blk, idx int) RegSet {
	return lv.LiveBefore(blk, idx+1)
}
