package persist

import "math"

// addrTable is an open-addressed int64→int64 hash table specialized for
// the address-indexed persist schedules (WPQ pending drains, persist-path
// line times). It replaces the Go maps the hot path used to hit on every
// admitted store and every NVM read.
//
// Faithfulness matters more than raw speed here: the structures' sweep
// triggers fire on entry counts, and a sweep's deletions are observable
// (another core can query an address the sweep dropped), so the table
// mirrors map semantics exactly — deletions are real (tombstoned) and
// `live` equals what len(map) would be after the same operation sequence.
// Internal rebuilds drop only tombstones, never live entries, and reuse a
// spare buffer pair so a steady-state rebuild allocates nothing.
type addrTable struct {
	keys []int64
	vals []int64
	// spare buffers for same-size rebuilds (lazily sized).
	spareKeys []int64
	spareVals []int64
	mask      uint64
	live      int // occupied, non-tombstone slots == len() of the mirrored map
	used      int // occupied slots including tombstones
	// minVal is a lower bound on the smallest live value. A sweepBelow whose
	// limit is under this bound would delete nothing — and a sweep that
	// deletes nothing is unobservable — so it can be skipped outright, which
	// keeps the per-NVM-read WPQ sweep from rescanning a saturated table.
	minVal int64
}

const (
	tblEmpty = math.MinInt64     // no entry ever occupied this slot
	tblTomb  = math.MinInt64 + 1 // deleted entry; probes continue past it
)

func newAddrTable() *addrTable {
	t := &addrTable{}
	t.init(64)
	return t
}

func (t *addrTable) init(size int) {
	t.keys = make([]int64, size)
	t.vals = make([]int64, size)
	for i := range t.keys {
		t.keys[i] = tblEmpty
	}
	t.mask = uint64(size - 1)
	t.live, t.used = 0, 0
	t.minVal = math.MaxInt64
}

func (t *addrTable) slot(key int64) uint64 {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return (h ^ (h >> 29)) & t.mask
}

// get returns the value stored under key.
func (t *addrTable) get(key int64) (int64, bool) {
	i := t.slot(key)
	for {
		switch t.keys[i] {
		case key:
			return t.vals[i], true
		case tblEmpty:
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or overwrites key.
func (t *addrTable) put(key, val int64) {
	if val < t.minVal {
		t.minVal = val
	}
	i := t.slot(key)
	ins := -1
	for {
		switch t.keys[i] {
		case key:
			t.vals[i] = val
			return
		case tblTomb:
			if ins < 0 {
				ins = int(i)
			}
		case tblEmpty:
			if ins >= 0 {
				t.keys[ins], t.vals[ins] = key, val
			} else {
				t.keys[i], t.vals[i] = key, val
				t.used++
			}
			t.live++
			if 4*t.used >= 3*len(t.keys) {
				t.rebuild()
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// del removes key (mirrors delete(map, key)).
func (t *addrTable) del(key int64) {
	i := t.slot(key)
	for {
		switch t.keys[i] {
		case key:
			t.keys[i] = tblTomb
			t.live--
			return
		case tblEmpty:
			return
		}
		i = (i + 1) & t.mask
	}
}

// rebuild rehashes the live entries, dropping tombstones. The size grows
// only when the live set genuinely needs it, and same-size rebuilds swap
// into the retained spare buffers, so a steady-state table never
// allocates.
func (t *addrTable) rebuild() {
	size := len(t.keys)
	for 4*t.live >= 3*(size/2) && size < 1<<30 {
		size *= 2
	}
	oldK, oldV := t.keys, t.vals
	if size == len(t.spareKeys) {
		t.keys, t.vals = t.spareKeys, t.spareVals
		for i := range t.keys {
			t.keys[i] = tblEmpty
		}
	} else {
		t.keys = make([]int64, size)
		t.vals = make([]int64, size)
		for i := range t.keys {
			t.keys[i] = tblEmpty
		}
	}
	if len(oldK) == size {
		t.spareKeys, t.spareVals = oldK, oldV
	}
	t.mask = uint64(size - 1)
	t.live, t.used = 0, 0
	for i, k := range oldK {
		if k != tblEmpty && k != tblTomb {
			t.put(k, oldV[i])
		}
	}
}

// sweepBelow deletes every entry with value <= limit (mirrors the map
// range-and-delete sweeps). Sweeps that provably delete nothing are
// skipped; a scan refreshes the exact minimum so the next skip window is
// as wide as possible.
func (t *addrTable) sweepBelow(limit int64) {
	if limit < t.minVal {
		return
	}
	newMin := int64(math.MaxInt64)
	for i, k := range t.keys {
		if k == tblEmpty || k == tblTomb {
			continue
		}
		if t.vals[i] <= limit {
			t.keys[i] = tblTomb
			t.live--
		} else if t.vals[i] < newMin {
			newMin = t.vals[i]
		}
	}
	t.minVal = newMin
}
