// Package persist models cWSP's persistence hardware (paper Sections III,
// V): the per-core persist buffer (PB, a repurposed write-combining
// buffer) feeding a FIFO persist path, the battery-backed write pending
// queue (WPQ) of each memory controller, the region boundary table (RBT)
// that enables memory-controller speculation, and the persist-event journal
// the recovery runtime replays.
//
// All components are deterministic timestamp schedulers: because every
// queue is FIFO with known service rates, an entry's arrival, admission,
// and drain times can be computed at enqueue time, which lets the machine
// advance lazily instead of cycle by cycle.
package persist

// WPQ is one memory controller's write pending queue. Entries are 8-byte
// words (cWSP) or 64-byte lines (prior work); arrival order equals drain
// order. The WPQ is inside the persistence domain: a store is *persisted*
// the moment it is admitted.
type WPQ struct {
	cap           int
	bytesPerCycle float64

	// drainDone is a ring of the last cap entries' drain-completion times,
	// monotone non-decreasing.
	drainDone []int64
	head      int // ring start
	count     int
	lastDrain int64

	// pending maps word address -> drain time, for the load-delay check
	// (paper Section V-A2).
	pending *addrTable
	// pendAddr/pendDrain form a growable ring of pending puts in admission
	// order. Drains are strictly monotone, so the ring is drain-sorted and
	// Sweep can pop just the stale prefix instead of scanning the whole
	// table. Records whose table entry was since overwritten or collected
	// are skipped by a recheck, so the deletions Sweep performs are exactly
	// the map's range-and-delete set.
	pendAddr   []int64
	pendDrain  []int64
	pendHead   int
	pendLen    int
	pendSpareA []int64
	pendSpareD []int64

	Admits       int64
	FullWait     int64 // total cycles arrivals waited for a free slot
	BytesDrained int64
}

// NewWPQ builds a WPQ with the given capacity and NVM write drain rate.
func NewWPQ(capacity int, bytesPerCycle float64) *WPQ {
	if capacity < 1 {
		capacity = 1
	}
	if bytesPerCycle <= 0 {
		bytesPerCycle = 1
	}
	return &WPQ{
		cap:           capacity,
		bytesPerCycle: bytesPerCycle,
		drainDone:     make([]int64, capacity),
		pending:       newAddrTable(),
	}
}

// Admit schedules an entry arriving at the MC at cycle arrival that will
// write bytes to NVM media (data plus any undo-log bytes). It returns the
// admission time (the persistence instant) and the media drain-completion
// time.
func (w *WPQ) Admit(arrival int64, addr int64, bytes int) (admit, drain int64) {
	admit = arrival
	if w.count >= w.cap {
		// Wait for the oldest in-flight entry to leave the queue.
		oldest := w.drainDone[w.head]
		if oldest > admit {
			w.FullWait += oldest - admit
			admit = oldest
		}
		w.head = (w.head + 1) % w.cap
		w.count--
	}
	start := admit
	if w.lastDrain > start {
		start = w.lastDrain
	}
	drain = start + int64(float64(bytes)/w.bytesPerCycle)
	if drain == start {
		drain = start + 1
	}
	w.lastDrain = drain
	w.drainDone[(w.head+w.count)%w.cap] = drain
	w.count++
	w.Admits++
	w.BytesDrained += int64(bytes)

	if addr != 0 {
		w.pending.put(addr&^7, drain)
		w.pendPush(addr&^7, drain)
	}
	return admit, drain
}

// pendPush appends a put record to the drain-ordered ring, rebuilding
// when full: orphaned records (entries since overwritten or collected)
// are dropped, so the ring stays proportional to the live table. Every
// live table entry keeps exactly its current-drain record, so a rebuild
// cannot change which entries a future Sweep deletes.
func (w *WPQ) pendPush(addr, drain int64) {
	if w.pendLen == len(w.pendAddr) {
		w.pendRebuild()
	}
	t := w.pendHead + w.pendLen
	if t >= len(w.pendAddr) {
		t -= len(w.pendAddr)
	}
	w.pendAddr[t], w.pendDrain[t] = addr, drain
	w.pendLen++
}

func (w *WPQ) pendRebuild() {
	n := len(w.pendAddr)
	match := func(j int) bool {
		v, ok := w.pending.get(w.pendAddr[j])
		return ok && v == w.pendDrain[j]
	}
	keep := 0
	for i := 0; i < w.pendLen; i++ {
		j := w.pendHead + i
		if j >= n {
			j -= n
		}
		if match(j) {
			keep++
		}
	}
	size := n
	if size < 64 {
		size = 64
	}
	for 2*keep >= size {
		size *= 2
	}
	na, nd := w.pendSpareA, w.pendSpareD
	if len(na) != size {
		na = make([]int64, size)
		nd = make([]int64, size)
	}
	out := 0
	for i := 0; i < w.pendLen; i++ {
		j := w.pendHead + i
		if j >= n {
			j -= n
		}
		if match(j) {
			na[out], nd[out] = w.pendAddr[j], w.pendDrain[j]
			out++
		}
	}
	if n == size {
		// Same-size swap: retain the old buffers so the steady state never
		// allocates.
		w.pendSpareA, w.pendSpareD = w.pendAddr, w.pendDrain
	}
	w.pendAddr, w.pendDrain = na, nd
	w.pendHead, w.pendLen = 0, out
}

// Occupancy returns the number of entries still in flight (admitted but
// not yet drained to media) at cycle now. Read-only: safe for telemetry
// sampling at any point in the schedule.
func (w *WPQ) Occupancy(now int64) int {
	n := 0
	for i := 0; i < w.count; i++ {
		if w.drainDone[(w.head+i)%w.cap] > now {
			n++
		}
	}
	return n
}

// Backlog returns how many cycles of queued media work remain at cycle now
// (0 when the media is idle): the distance between the last scheduled
// drain completion and the present. This is the gauge that exposes
// persist-path saturation long before FullWait starts accumulating.
func (w *WPQ) Backlog(now int64) int64 {
	if w.lastDrain > now {
		return w.lastDrain - now
	}
	return 0
}

// PendingUntil returns the drain time of a pending entry covering addr, or
// 0 when nothing is pending at cycle now. Stale map entries are collected
// on query.
func (w *WPQ) PendingUntil(addr, now int64) int64 {
	key := addr &^ 7
	d, ok := w.pending.get(key)
	if !ok {
		return 0
	}
	if d <= now {
		w.pending.del(key)
		return 0
	}
	return d
}

// Sweep drops drained pending-address entries (bounds table growth). The
// ring is drain-sorted, so popping the <=now prefix and deleting each
// record's still-matching table entry performs exactly the deletions a
// full range-and-delete over the table would.
func (w *WPQ) Sweep(now int64) {
	if w.pending.live < 4*w.cap {
		return
	}
	for w.pendLen > 0 && w.pendDrain[w.pendHead] <= now {
		a := w.pendAddr[w.pendHead]
		w.pendHead++
		if w.pendHead == len(w.pendAddr) {
			w.pendHead = 0
		}
		w.pendLen--
		if v, ok := w.pending.get(a); ok && v <= now {
			w.pending.del(a)
		}
	}
}

// Path is one core's persist buffer plus its FIFO path to the memory
// controllers.
type Path struct {
	pbCap         int
	bytesPerCycle float64
	oneWayLat     int64

	// sent distinguishes "no sends yet" from "last send was at cycle 0"
	// so the bandwidth interval applies to every send after the first.
	sent     bool
	lastSend int64
	// ackFree is a FIFO ring of entry deallocation times (monotone: the
	// PB frees entries head-first, so each entry's free time is the
	// running max of acknowledgment times). Send's full-PB wait bounds the
	// entry count by pbCap, so the ring never grows.
	ackFree []int64
	ackHead int
	ackLen  int
	// linePersist maps line address -> latest persist (admit) time of any
	// entry in that line still potentially in flight, for the WB check.
	linePersist *addrTable

	Sends     int64
	PBStall   int64 // cycles the core stalled on a full PB
	BytesSent int64
}

// NewPath builds a persist path with the given PB capacity, bandwidth
// (bytes per core cycle) and one-way latency in cycles.
func NewPath(pbCap int, bytesPerCycle float64, oneWayLat int64) *Path {
	if pbCap < 1 {
		pbCap = 1
	}
	if bytesPerCycle <= 0 {
		bytesPerCycle = 0.001
	}
	return &Path{
		pbCap:         pbCap,
		bytesPerCycle: bytesPerCycle,
		oneWayLat:     oneWayLat,
		ackFree:       make([]int64, pbCap),
		linePersist:   newAddrTable(),
	}
}

func (p *Path) gc(now int64) {
	for p.ackLen > 0 && p.ackFree[p.ackHead] <= now {
		p.ackHead++
		if p.ackHead == p.pbCap {
			p.ackHead = 0
		}
		p.ackLen--
	}
}

// Send schedules one persist of `bytes` at word address addr, committed at
// cycle commit, destined for WPQ w with extra per-MC latency numaExtra.
// logBytes adds undo-log media traffic at the MC. It returns the cycle the
// core may proceed (≥ commit when the PB was full) and the admission
// (persistence) time of the entry.
func (p *Path) Send(commit int64, addr int64, bytes int, w *WPQ, numaExtra int64, logBytes int) (proceed, admit int64) {
	proceed = commit
	p.gc(proceed)
	if p.ackLen >= p.pbCap {
		// Wait until the head entry deallocates (ackLen == pbCap exactly,
		// since the full-PB wait below keeps the ring from overfilling).
		free := p.ackFree[p.ackHead]
		if free > proceed {
			p.PBStall += free - proceed
			proceed = free
		}
		p.gc(proceed)
	}

	send := proceed
	if p.sent {
		interval := int64(float64(bytes) / p.bytesPerCycle)
		if interval < 1 {
			interval = 1
		}
		if p.lastSend+interval > send {
			send = p.lastSend + interval
		}
	}
	p.sent = true
	p.lastSend = send

	arrival := send + p.oneWayLat + numaExtra
	admit, _ = w.Admit(arrival, addr, bytes+logBytes)

	ack := admit + p.oneWayLat
	// FIFO dealloc: the PB frees entries in order, so monotonize.
	if p.ackLen > 0 {
		last := p.ackHead + p.ackLen - 1
		if last >= p.pbCap {
			last -= p.pbCap
		}
		if p.ackFree[last] > ack {
			ack = p.ackFree[last]
		}
	}
	tail := p.ackHead + p.ackLen
	if tail >= p.pbCap {
		tail -= p.pbCap
	}
	p.ackFree[tail] = ack
	p.ackLen++

	line := addr &^ 63
	if prev, ok := p.linePersist.get(line); !ok || admit > prev {
		p.linePersist.put(line, admit)
	}
	if p.linePersist.live > 8*p.pbCap {
		p.linePersist.sweepBelow(commit)
	}

	p.Sends++
	p.BytesSent += int64(bytes)
	return proceed, admit
}

// LinePersistTime returns the latest persistence time of in-flight entries
// covering the 64-byte line of addr (0 when none) — the PB check the WB
// performs before releasing a dirty line to L2.
func (p *Path) LinePersistTime(addr, now int64) int64 {
	t, ok := p.linePersist.get(addr &^ 63)
	if !ok {
		return 0
	}
	if t <= now {
		p.linePersist.del(addr &^ 63)
		return 0
	}
	return t
}

// Occupancy returns the current PB entry count at cycle now.
func (p *Path) Occupancy(now int64) int {
	p.gc(now)
	return p.ackLen
}

// SendBacklog returns how many cycles of persist-path send bandwidth are
// already committed beyond cycle now (0 when the path is caught up) — the
// depth of the serialization queue feeding the MCs.
func (p *Path) SendBacklog(now int64) int64 {
	if p.lastSend > now {
		return p.lastSend - now
	}
	return 0
}

// RBT is one core's region boundary table: a FIFO of unretired regions'
// retire times. Its capacity bounds how many regions may persist
// concurrently (the speculation depth).
type RBT struct {
	cap int
	// retire is a FIFO ring of retire times, monotone non-decreasing.
	// Push's full-table wait bounds the entry count by cap, so the ring
	// never grows.
	retire []int64
	head   int
	len    int

	FullStall int64
	Retired   int64
}

// NewRBT builds an RBT with the given entry count.
func NewRBT(capacity int) *RBT {
	if capacity < 1 {
		capacity = 1
	}
	return &RBT{cap: capacity, retire: make([]int64, capacity)}
}

func (r *RBT) gc(now int64) {
	for r.len > 0 && r.retire[r.head] <= now {
		r.head++
		if r.head == r.cap {
			r.head = 0
		}
		r.len--
		r.Retired++
	}
}

func (r *RBT) last() int64 {
	i := r.head + r.len - 1
	if i >= r.cap {
		i -= r.cap
	}
	return r.retire[i]
}

// Push records a region whose stores all persist by persistDone, committed
// at cycle now. In-order retirement: the region retires no earlier than its
// predecessor. Returns the cycle the core may proceed (≥ now if the RBT was
// full) and the region's retire time.
func (r *RBT) Push(now, persistDone int64) (proceed, retireTime int64) {
	proceed = now
	r.gc(proceed)
	if r.len >= r.cap {
		free := r.retire[r.head]
		if free > proceed {
			r.FullStall += free - proceed
			proceed = free
		}
		r.gc(proceed)
	}
	retireTime = persistDone
	if retireTime < proceed {
		retireTime = proceed
	}
	if r.len > 0 {
		if last := r.last(); last > retireTime {
			retireTime = last
		}
	}
	tail := r.head + r.len
	if tail >= r.cap {
		tail -= r.cap
	}
	r.retire[tail] = retireTime
	r.len++
	return proceed, retireTime
}

// DrainTime returns the cycle by which every tracked region has retired.
func (r *RBT) DrainTime(now int64) int64 {
	r.gc(now)
	if r.len == 0 {
		return now
	}
	return r.last()
}

// Occupancy returns the number of unretired regions at cycle now.
func (r *RBT) Occupancy(now int64) int {
	r.gc(now)
	return r.len
}

// Rec is one journaled persist event: the recovery runtime uses the journal
// to reconstruct the NVM image at an arbitrary crash cycle (entries not yet
// admitted never reached NVM; logged entries of unretired regions roll
// back).
type Rec struct {
	Addr  int64
	Old   int64
	New   int64
	Admit int64 // persistence instant (WPQ admission); for synchronous
	// persists this equals the commit cycle
	Region int64 // global region sequence number
	Logged bool  // undo-logged at the MC (speculative or checkpoint-area)
	Core   int

	// MC and MCSeq identify the record's write pending queue admission:
	// MCSeq is the per-controller admission ordinal (FIFO arrival order =
	// drain order), 0 for synchronous persists that bypass the WPQ. The
	// recovery validator cross-checks these against the controller's drain
	// ledger to detect dropped or reordered tail entries.
	MC    int
	MCSeq int64
	// Seal is the record's integrity checksum, written by the MC alongside
	// the undo-log entry. A torn or corrupted record no longer matches its
	// seal, which recovery detects instead of silently applying a bogus
	// rollback value.
	Seal uint64
}
