// Package persist models cWSP's persistence hardware (paper Sections III,
// V): the per-core persist buffer (PB, a repurposed write-combining
// buffer) feeding a FIFO persist path, the battery-backed write pending
// queue (WPQ) of each memory controller, the region boundary table (RBT)
// that enables memory-controller speculation, and the persist-event journal
// the recovery runtime replays.
//
// All components are deterministic timestamp schedulers: because every
// queue is FIFO with known service rates, an entry's arrival, admission,
// and drain times can be computed at enqueue time, which lets the machine
// advance lazily instead of cycle by cycle.
package persist

// WPQ is one memory controller's write pending queue. Entries are 8-byte
// words (cWSP) or 64-byte lines (prior work); arrival order equals drain
// order. The WPQ is inside the persistence domain: a store is *persisted*
// the moment it is admitted.
type WPQ struct {
	cap           int
	bytesPerCycle float64

	// drainDone is a ring of the last cap entries' drain-completion times,
	// monotone non-decreasing.
	drainDone []int64
	head      int // ring start
	count     int
	lastDrain int64

	// pending maps word address -> drain time, for the load-delay check
	// (paper Section V-A2).
	pending map[int64]int64

	Admits       int64
	FullWait     int64 // total cycles arrivals waited for a free slot
	BytesDrained int64
}

// NewWPQ builds a WPQ with the given capacity and NVM write drain rate.
func NewWPQ(capacity int, bytesPerCycle float64) *WPQ {
	if capacity < 1 {
		capacity = 1
	}
	if bytesPerCycle <= 0 {
		bytesPerCycle = 1
	}
	return &WPQ{
		cap:           capacity,
		bytesPerCycle: bytesPerCycle,
		drainDone:     make([]int64, capacity),
		pending:       map[int64]int64{},
	}
}

// Admit schedules an entry arriving at the MC at cycle arrival that will
// write bytes to NVM media (data plus any undo-log bytes). It returns the
// admission time (the persistence instant) and the media drain-completion
// time.
func (w *WPQ) Admit(arrival int64, addr int64, bytes int) (admit, drain int64) {
	admit = arrival
	if w.count >= w.cap {
		// Wait for the oldest in-flight entry to leave the queue.
		oldest := w.drainDone[w.head]
		if oldest > admit {
			w.FullWait += oldest - admit
			admit = oldest
		}
		w.head = (w.head + 1) % w.cap
		w.count--
	}
	start := admit
	if w.lastDrain > start {
		start = w.lastDrain
	}
	drain = start + int64(float64(bytes)/w.bytesPerCycle)
	if drain == start {
		drain = start + 1
	}
	w.lastDrain = drain
	w.drainDone[(w.head+w.count)%w.cap] = drain
	w.count++
	w.Admits++
	w.BytesDrained += int64(bytes)

	if addr != 0 {
		w.pending[addr&^7] = drain
	}
	return admit, drain
}

// Occupancy returns the number of entries still in flight (admitted but
// not yet drained to media) at cycle now. Read-only: safe for telemetry
// sampling at any point in the schedule.
func (w *WPQ) Occupancy(now int64) int {
	n := 0
	for i := 0; i < w.count; i++ {
		if w.drainDone[(w.head+i)%w.cap] > now {
			n++
		}
	}
	return n
}

// Backlog returns how many cycles of queued media work remain at cycle now
// (0 when the media is idle): the distance between the last scheduled
// drain completion and the present. This is the gauge that exposes
// persist-path saturation long before FullWait starts accumulating.
func (w *WPQ) Backlog(now int64) int64 {
	if w.lastDrain > now {
		return w.lastDrain - now
	}
	return 0
}

// PendingUntil returns the drain time of a pending entry covering addr, or
// 0 when nothing is pending at cycle now. Stale map entries are collected
// on query.
func (w *WPQ) PendingUntil(addr, now int64) int64 {
	key := addr &^ 7
	d, ok := w.pending[key]
	if !ok {
		return 0
	}
	if d <= now {
		delete(w.pending, key)
		return 0
	}
	return d
}

// Sweep drops drained pending-address entries (bounds map growth).
func (w *WPQ) Sweep(now int64) {
	if len(w.pending) < 4*w.cap {
		return
	}
	for k, d := range w.pending {
		if d <= now {
			delete(w.pending, k)
		}
	}
}

// Path is one core's persist buffer plus its FIFO path to the memory
// controllers.
type Path struct {
	pbCap         int
	bytesPerCycle float64
	oneWayLat     int64

	// sent distinguishes "no sends yet" from "last send was at cycle 0"
	// so the bandwidth interval applies to every send after the first.
	sent     bool
	lastSend int64
	// ackFree is a FIFO of entry deallocation times (monotone: the PB
	// frees entries head-first, so each entry's free time is the running
	// max of acknowledgment times).
	ackFree []int64
	// linePersist maps line address -> latest persist (admit) time of any
	// entry in that line still potentially in flight, for the WB check.
	linePersist map[int64]int64

	Sends     int64
	PBStall   int64 // cycles the core stalled on a full PB
	BytesSent int64
}

// NewPath builds a persist path with the given PB capacity, bandwidth
// (bytes per core cycle) and one-way latency in cycles.
func NewPath(pbCap int, bytesPerCycle float64, oneWayLat int64) *Path {
	if pbCap < 1 {
		pbCap = 1
	}
	if bytesPerCycle <= 0 {
		bytesPerCycle = 0.001
	}
	return &Path{
		pbCap:         pbCap,
		bytesPerCycle: bytesPerCycle,
		oneWayLat:     oneWayLat,
		linePersist:   map[int64]int64{},
	}
}

func (p *Path) gc(now int64) {
	i := 0
	for i < len(p.ackFree) && p.ackFree[i] <= now {
		i++
	}
	if i > 0 {
		p.ackFree = p.ackFree[i:]
	}
}

// Send schedules one persist of `bytes` at word address addr, committed at
// cycle commit, destined for WPQ w with extra per-MC latency numaExtra.
// logBytes adds undo-log media traffic at the MC. It returns the cycle the
// core may proceed (≥ commit when the PB was full) and the admission
// (persistence) time of the entry.
func (p *Path) Send(commit int64, addr int64, bytes int, w *WPQ, numaExtra int64, logBytes int) (proceed, admit int64) {
	proceed = commit
	p.gc(proceed)
	if len(p.ackFree) >= p.pbCap {
		// Wait until enough head entries deallocate.
		free := p.ackFree[len(p.ackFree)-p.pbCap]
		if free > proceed {
			p.PBStall += free - proceed
			proceed = free
		}
		p.gc(proceed)
	}

	send := proceed
	if p.sent {
		interval := int64(float64(bytes) / p.bytesPerCycle)
		if interval < 1 {
			interval = 1
		}
		if p.lastSend+interval > send {
			send = p.lastSend + interval
		}
	}
	p.sent = true
	p.lastSend = send

	arrival := send + p.oneWayLat + numaExtra
	admit, _ = w.Admit(arrival, addr, bytes+logBytes)

	ack := admit + p.oneWayLat
	// FIFO dealloc: the PB frees entries in order, so monotonize.
	if n := len(p.ackFree); n > 0 && p.ackFree[n-1] > ack {
		ack = p.ackFree[n-1]
	}
	p.ackFree = append(p.ackFree, ack)

	line := addr &^ 63
	if admit > p.linePersist[line] {
		p.linePersist[line] = admit
	}
	if len(p.linePersist) > 8*p.pbCap {
		for k, t := range p.linePersist {
			if t <= commit {
				delete(p.linePersist, k)
			}
		}
	}

	p.Sends++
	p.BytesSent += int64(bytes)
	return proceed, admit
}

// LinePersistTime returns the latest persistence time of in-flight entries
// covering the 64-byte line of addr (0 when none) — the PB check the WB
// performs before releasing a dirty line to L2.
func (p *Path) LinePersistTime(addr, now int64) int64 {
	t, ok := p.linePersist[addr&^63]
	if !ok {
		return 0
	}
	if t <= now {
		delete(p.linePersist, addr&^63)
		return 0
	}
	return t
}

// Occupancy returns the current PB entry count at cycle now.
func (p *Path) Occupancy(now int64) int {
	p.gc(now)
	return len(p.ackFree)
}

// SendBacklog returns how many cycles of persist-path send bandwidth are
// already committed beyond cycle now (0 when the path is caught up) — the
// depth of the serialization queue feeding the MCs.
func (p *Path) SendBacklog(now int64) int64 {
	if p.lastSend > now {
		return p.lastSend - now
	}
	return 0
}

// RBT is one core's region boundary table: a FIFO of unretired regions'
// retire times. Its capacity bounds how many regions may persist
// concurrently (the speculation depth).
type RBT struct {
	cap    int
	retire []int64 // monotone non-decreasing

	FullStall int64
	Retired   int64
}

// NewRBT builds an RBT with the given entry count.
func NewRBT(capacity int) *RBT {
	if capacity < 1 {
		capacity = 1
	}
	return &RBT{cap: capacity}
}

func (r *RBT) gc(now int64) {
	i := 0
	for i < len(r.retire) && r.retire[i] <= now {
		i++
	}
	if i > 0 {
		r.Retired += int64(i)
		r.retire = r.retire[i:]
	}
}

// Push records a region whose stores all persist by persistDone, committed
// at cycle now. In-order retirement: the region retires no earlier than its
// predecessor. Returns the cycle the core may proceed (≥ now if the RBT was
// full) and the region's retire time.
func (r *RBT) Push(now, persistDone int64) (proceed, retireTime int64) {
	proceed = now
	r.gc(proceed)
	if len(r.retire) >= r.cap {
		free := r.retire[len(r.retire)-r.cap]
		if free > proceed {
			r.FullStall += free - proceed
			proceed = free
		}
		r.gc(proceed)
	}
	retireTime = persistDone
	if retireTime < proceed {
		retireTime = proceed
	}
	if n := len(r.retire); n > 0 && r.retire[n-1] > retireTime {
		retireTime = r.retire[n-1]
	}
	r.retire = append(r.retire, retireTime)
	return proceed, retireTime
}

// DrainTime returns the cycle by which every tracked region has retired.
func (r *RBT) DrainTime(now int64) int64 {
	r.gc(now)
	if len(r.retire) == 0 {
		return now
	}
	return r.retire[len(r.retire)-1]
}

// Occupancy returns the number of unretired regions at cycle now.
func (r *RBT) Occupancy(now int64) int {
	r.gc(now)
	return len(r.retire)
}

// Rec is one journaled persist event: the recovery runtime uses the journal
// to reconstruct the NVM image at an arbitrary crash cycle (entries not yet
// admitted never reached NVM; logged entries of unretired regions roll
// back).
type Rec struct {
	Addr  int64
	Old   int64
	New   int64
	Admit int64 // persistence instant (WPQ admission); for synchronous
	// persists this equals the commit cycle
	Region int64 // global region sequence number
	Logged bool  // undo-logged at the MC (speculative or checkpoint-area)
	Core   int

	// MC and MCSeq identify the record's write pending queue admission:
	// MCSeq is the per-controller admission ordinal (FIFO arrival order =
	// drain order), 0 for synchronous persists that bypass the WPQ. The
	// recovery validator cross-checks these against the controller's drain
	// ledger to detect dropped or reordered tail entries.
	MC    int
	MCSeq int64
	// Seal is the record's integrity checksum, written by the MC alongside
	// the undo-log entry. A torn or corrupted record no longer matches its
	// seal, which recovery detects instead of silently applying a bogus
	// rollback value.
	Seal uint64
}
