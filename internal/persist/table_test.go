package persist

import (
	"math/rand"
	"sort"
	"testing"
)

// tableModel drives an addrTable and a plain map through the same
// operation sequence and asserts they stay indistinguishable — get on
// every touched key, live count, and sweep behavior.
type tableModel struct {
	t    *testing.T
	tbl  *addrTable
	ref  map[int64]int64
	keys map[int64]bool // every key ever touched, for full-surface checks
}

func newTableModel(t *testing.T) *tableModel {
	return &tableModel{t: t, tbl: newAddrTable(), ref: map[int64]int64{}, keys: map[int64]bool{}}
}

func (m *tableModel) put(k, v int64) {
	m.tbl.put(k, v)
	m.ref[k] = v
	m.keys[k] = true
}

func (m *tableModel) del(k int64) {
	m.tbl.del(k)
	delete(m.ref, k)
	m.keys[k] = true
}

func (m *tableModel) sweep(limit int64) {
	m.tbl.sweepBelow(limit)
	for k, v := range m.ref {
		if v <= limit {
			delete(m.ref, k)
		}
	}
}

func (m *tableModel) check() {
	m.t.Helper()
	if m.tbl.live != len(m.ref) {
		m.t.Fatalf("live %d != len(map) %d", m.tbl.live, len(m.ref))
	}
	for k := range m.keys {
		got, ok := m.tbl.get(k)
		want, wok := m.ref[k]
		if ok != wok || (ok && got != want) {
			m.t.Fatalf("get(%d) = (%d,%v), map says (%d,%v)", k, got, ok, want, wok)
		}
	}
}

// clusteredKey produces keys that collide heavily: a handful of 4 KiB-aligned
// bases (the tracked-address shape the WPQ actually sees) plus small offsets,
// so probe chains run long and rebuilds must preserve them.
func clusteredKey(rng *rand.Rand) int64 {
	base := int64(rng.Intn(4)) * 0x1000_0000
	return base + int64(rng.Intn(64))*0x1000
}

func TestAddrTableCollisionChainsAcrossRebuilds(t *testing.T) {
	m := newTableModel(t)
	rng := rand.New(rand.NewSource(1))
	// Interleave puts and deletes on clustered keys so tombstones pile up
	// inside probe chains; the 3/4 load trigger forces several rebuilds
	// (both growing and same-size tombstone-purging ones).
	for step := 0; step < 20000; step++ {
		k := clusteredKey(rng)
		switch rng.Intn(4) {
		case 0:
			m.del(k)
		default:
			m.put(k, int64(rng.Intn(1000)))
		}
		if step%997 == 0 {
			m.check()
		}
	}
	m.check()
	if len(m.tbl.keys) == 64 {
		t.Error("sequence never grew the table; collision pressure too low to mean anything")
	}
}

func TestAddrTableLazyMinSkipsNoOpSweeps(t *testing.T) {
	m := newTableModel(t)
	// Values are drain deadlines: monotone-ish cycles with jitter.
	rng := rand.New(rand.NewSource(2))
	cycle := int64(0)
	for step := 0; step < 5000; step++ {
		cycle += int64(rng.Intn(8))
		k := clusteredKey(rng)
		m.put(k, cycle+int64(rng.Intn(256)))
		// Sweep at the current cycle — most of these are no-ops the minVal
		// bound must skip without observable effect.
		m.sweep(cycle)
		if step%511 == 0 {
			m.check()
		}
	}
	m.check()

	// The skip must be provably a no-op: force minVal far above a stale
	// limit and verify a sweep below it changes nothing even when entries
	// exist.
	tbl := newAddrTable()
	tbl.put(1, 100)
	tbl.put(2, 200)
	tbl.sweepBelow(150) // deletes val 100, rescans: minVal becomes 200
	if tbl.minVal != 200 {
		t.Fatalf("minVal after sweep = %d, want 200", tbl.minVal)
	}
	tbl.sweepBelow(199) // skipped: limit < minVal
	if v, ok := tbl.get(2); !ok || v != 200 {
		t.Error("skipped sweep mutated a live entry")
	}
	if tbl.live != 1 {
		t.Errorf("live = %d after no-op sweep, want 1", tbl.live)
	}
	// put may lower minVal below existing entries — the bound is
	// conservative (skips only provable no-ops), never unsafe.
	tbl.put(3, 50)
	tbl.sweepBelow(60)
	if _, ok := tbl.get(3); ok {
		t.Error("sweep after minVal refresh missed a deletable entry")
	}
	if v, ok := tbl.get(2); !ok || v != 200 {
		t.Error("sweep deleted an entry above its limit")
	}
}

func TestAddrTableSpareBufferRebuildUnderDrainSortedPops(t *testing.T) {
	// The WPQ's steady state: admit a batch of fresh lines with ascending
	// drain times, pop them all in drain order (sorted deletes), repeat.
	// The live set stays small while tombstones accumulate, so every
	// rebuild is a same-size tombstone purge that must run out of the
	// retained spare buffers — zero allocations once warm. batch is kept
	// under 3/8 of the initial table so the size never grows.
	m := newTableModel(t)
	cycle := int64(0)
	base := int64(0)
	const batch = 20
	warm := func(rounds int) {
		for round := 0; round < rounds; round++ {
			var keys []int64
			for i := 0; i < batch; i++ {
				cycle++
				k := (base + int64(i)) * 0x1000 // fresh lines: tombstones pile up
				m.put(k, cycle)
				keys = append(keys, k)
			}
			base += batch
			sort.Slice(keys, func(a, b int) bool {
				va, _ := m.tbl.get(keys[a])
				vb, _ := m.tbl.get(keys[b])
				return va < vb
			})
			for _, k := range keys {
				m.del(k)
			}
			m.check()
		}
	}
	warm(50)
	if m.tbl.spareKeys == nil {
		t.Fatal("steady-state churn never populated the spare buffers")
	}
	if len(m.tbl.spareKeys) != len(m.tbl.keys) {
		t.Fatalf("spare size %d != table size %d; same-size swap impossible",
			len(m.tbl.spareKeys), len(m.tbl.keys))
	}
	// Warm steady state must not allocate: every rebuild swaps buffers.
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < batch; i++ {
			cycle++
			m.tbl.put((base+int64(i))*0x1000, cycle)
		}
		for i := 0; i < batch; i++ {
			m.tbl.del((base + int64(i)) * 0x1000)
		}
		base += batch
	})
	if allocs > 0 {
		t.Errorf("steady-state churn allocates (%v allocs/op); spare-buffer swap not engaging", allocs)
	}
	// And correctness must survive the buffer swaps (ref map cleared to
	// match: AllocsPerRun drove the raw table only, leaving it empty).
	m.ref = map[int64]int64{}
	warm(50)
}
