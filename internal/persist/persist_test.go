package persist

import (
	"testing"
	"testing/quick"
)

func TestWPQAdmitFIFO(t *testing.T) {
	w := NewWPQ(2, 2.0) // 2 entries, 2 bytes/cycle -> 8B entry drains in 4 cycles
	a1, d1 := w.Admit(100, 0x1000, 8)
	if a1 != 100 || d1 != 104 {
		t.Errorf("first admit = (%d,%d), want (100,104)", a1, d1)
	}
	a2, d2 := w.Admit(100, 0x2000, 8)
	if a2 != 100 || d2 != 108 {
		t.Errorf("second admit = (%d,%d), want (100,108)", a2, d2)
	}
	// Queue full: third arrival at 100 must wait for the head to drain (104).
	a3, d3 := w.Admit(100, 0x3000, 8)
	if a3 != 104 || d3 != 112 {
		t.Errorf("third admit = (%d,%d), want (104,112)", a3, d3)
	}
	if w.FullWait != 4 {
		t.Errorf("FullWait = %d, want 4", w.FullWait)
	}
}

func TestWPQPendingUntil(t *testing.T) {
	w := NewWPQ(8, 1.0)
	_, drain := w.Admit(10, 0x1000, 8)
	if got := w.PendingUntil(0x1004, 11); got != drain {
		t.Errorf("PendingUntil = %d, want %d (same word)", got, drain)
	}
	if got := w.PendingUntil(0x1000, drain+1); got != 0 {
		t.Error("drained entry should not be pending")
	}
	// Second query after GC also 0.
	if got := w.PendingUntil(0x1000, drain+1); got != 0 {
		t.Error("pending map not collected")
	}
}

func TestWPQDrainSerialization(t *testing.T) {
	// Back-to-back admits serialize on media bandwidth even when the queue
	// has space.
	w := NewWPQ(32, 1.0) // 8 cycles per 8B entry
	var last int64
	for i := 0; i < 10; i++ {
		_, d := w.Admit(0, int64(0x1000+i*8), 8)
		if d <= last {
			t.Fatalf("drain times not increasing: %d then %d", last, d)
		}
		last = d
	}
	if last < 80 {
		t.Errorf("10 entries at 8 cycles each should finish >= 80, got %d", last)
	}
}

func TestPathBandwidthSpacing(t *testing.T) {
	w := NewWPQ(1024, 100) // effectively infinite media bandwidth
	p := NewPath(50, 2.0, 20)
	_, a1 := p.Send(100, 0x1000, 8, w, 0, 0)
	_, a2 := p.Send(100, 0x2000, 8, w, 0, 0)
	if a2-a1 != 4 {
		t.Errorf("8B at 2B/cyc should space sends 4 cycles apart, got %d", a2-a1)
	}
	if a1 != 100+20 {
		t.Errorf("arrival should include one-way latency, got %d", a1)
	}
}

func TestPathPBBackpressure(t *testing.T) {
	// Tiny PB and slow WPQ: the path must stall the core.
	w := NewWPQ(1, 0.1) // 80 cycles per entry
	p := NewPath(2, 8.0, 10)
	var lastProceed int64
	for i := 0; i < 6; i++ {
		proceed, _ := p.Send(0, int64(0x1000+i*8), 8, w, 0, 0)
		if proceed < lastProceed {
			t.Fatalf("proceed went backwards: %d after %d", proceed, lastProceed)
		}
		lastProceed = proceed
	}
	if p.PBStall == 0 {
		t.Error("expected PB-full stalls with a slow WPQ")
	}
}

func TestPathNUMAExtra(t *testing.T) {
	w0 := NewWPQ(64, 100)
	w1 := NewWPQ(64, 100)
	p := NewPath(50, 100, 20)
	_, a0 := p.Send(0, 0x1000, 8, w0, 0, 0)
	_, a1 := p.Send(0, 0x2000, 8, w1, 15, 0)
	if a1-a0 < 15 {
		t.Errorf("NUMA delta not applied: %d vs %d", a0, a1)
	}
}

func TestPathLinePersistTime(t *testing.T) {
	w := NewWPQ(64, 100)
	p := NewPath(50, 2.0, 20)
	_, admit := p.Send(0, 0x1008, 8, w, 0, 0)
	if got := p.LinePersistTime(0x1030, 1); got != admit {
		t.Errorf("same 64B line should report persist time %d, got %d", admit, got)
	}
	if got := p.LinePersistTime(0x2000, 1); got != 0 {
		t.Error("other line should not be pending")
	}
	if got := p.LinePersistTime(0x1008, admit+1); got != 0 {
		t.Error("persisted line should not be pending")
	}
}

func TestRBTInOrderRetirement(t *testing.T) {
	r := NewRBT(16)
	_, t1 := r.Push(0, 100)
	_, t2 := r.Push(10, 50) // persists earlier but must retire after t1
	if t2 < t1 {
		t.Errorf("out-of-order retirement: %d before %d", t2, t1)
	}
	if t1 != 100 || t2 != 100 {
		t.Errorf("retire times = %d,%d", t1, t2)
	}
}

func TestRBTFullStall(t *testing.T) {
	r := NewRBT(2)
	r.Push(0, 1000)
	r.Push(0, 2000)
	proceed, _ := r.Push(0, 3000)
	if proceed != 1000 {
		t.Errorf("full RBT should stall to first retire (1000), got %d", proceed)
	}
	if r.FullStall != 1000 {
		t.Errorf("FullStall = %d", r.FullStall)
	}
}

func TestRBTDrain(t *testing.T) {
	r := NewRBT(8)
	r.Push(0, 500)
	r.Push(0, 700)
	if got := r.DrainTime(100); got != 700 {
		t.Errorf("drain = %d, want 700", got)
	}
	if got := r.DrainTime(800); got != 800 {
		t.Errorf("after retirement drain = now, got %d", got)
	}
	if r.Occupancy(800) != 0 {
		t.Error("all regions should have retired")
	}
}

func TestPathProceedMonotonic(t *testing.T) {
	// Property: for any commit sequence (non-decreasing), proceed times are
	// >= commit and admission times strictly increase per path.
	f := func(deltas []uint8) bool {
		w := NewWPQ(4, 0.5)
		p := NewPath(8, 1.0, 20)
		now := int64(0)
		var lastAdmit int64
		for i, d := range deltas {
			now += int64(d % 16)
			proceed, admit := p.Send(now, int64(0x1000+i*8), 8, w, 0, 0)
			if proceed < now {
				return false
			}
			if admit <= lastAdmit {
				return false
			}
			lastAdmit = admit
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWPQLogBytesSlowDrain(t *testing.T) {
	// Undo-logged entries consume more media bandwidth.
	plain := NewWPQ(64, 1.0)
	logged := NewWPQ(64, 1.0)
	var dp, dl int64
	for i := 0; i < 10; i++ {
		_, dp = plain.Admit(0, int64(0x1000+i*8), 8)
		_, dl = logged.Admit(0, int64(0x1000+i*8), 8+16)
	}
	if dl <= dp {
		t.Errorf("logged drain (%d) should exceed plain drain (%d)", dl, dp)
	}
}
