package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
}

func TestGMean(t *testing.T) {
	if !almost(GMean([]float64{1, 4}), 2) {
		t.Errorf("gmean(1,4) = %v", GMean([]float64{1, 4}))
	}
	if GMean(nil) != 0 {
		t.Error("empty gmean should be 0")
	}
	// Non-positive entries clamp rather than zeroing the aggregate.
	if GMean([]float64{0, 4}) <= 0 {
		t.Error("gmean with zero entry should stay positive")
	}
}

func TestGMeanPropertyBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			v := math.Abs(r)
			if v < 1e-6 || math.IsNaN(v) || math.IsInf(v, 0) || v > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) == 0 {
			return true
		}
		g := GMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileBoundaries(t *testing.T) {
	one := []float64{42}
	for _, p := range []float64{-5, 0, 0.001, 50, 100, 250} {
		if got := Percentile(one, p); got != 42 {
			t.Errorf("single-element p%v = %v, want 42", p, got)
		}
	}
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, -1); got != 1 {
		t.Errorf("p<0 should clamp to min, got %v", got)
	}
	if got := Percentile(xs, 101); got != 5 {
		t.Errorf("p>100 should clamp to max, got %v", got)
	}
	// A vanishing but positive p still selects a real element (rank
	// clamps to 1), and Percentile is monotone in p.
	if got := Percentile(xs, 1e-9); got != 1 {
		t.Errorf("tiny p = %v, want 1", got)
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 2.5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("Percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
	// The input must not be reordered in place.
	if xs[0] != 5 || xs[4] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("app", "slowdown")
	tb.AddF("lbm", 1.234567)
	tb.AddF("radix", 2)
	s := tb.String()
	for _, want := range []string{"app", "slowdown", "lbm", "1.235", "radix", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(s), "\n")); got != 4 {
		t.Errorf("table has %d lines, want 4", got)
	}
}

func TestTableRowWiderThanHeaderTruncates(t *testing.T) {
	tb := NewTable("one")
	tb.Add("a", "b", "c")
	if len(tb.Rows[0]) != 1 {
		t.Errorf("row width = %d, want 1", len(tb.Rows[0]))
	}
}
