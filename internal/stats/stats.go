// Package stats provides the small numeric helpers the benchmark harness
// uses to summarize results the way the paper does (geometric means over
// normalized slowdowns, per-suite aggregation, fixed-width tables).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GMean returns the geometric mean of xs. Non-positive entries are clamped
// to a tiny positive value so a single degenerate measurement cannot zero
// the aggregate (matching common benchmarking practice).
func GMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// sorted copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c))))
	if rank < 1 {
		rank = 1
	}
	return c[rank-1]
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Table renders rows as a fixed-width text table with the given header.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; cells beyond the header width are dropped.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Header) {
		cells = cells[:len(t.Header)]
	}
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with 3 decimals, integers as plain decimals.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case int64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// String renders the table.
func (t *Table) String() string {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i := range t.Header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, wd := range w {
		b.WriteString(strings.Repeat("-", wd))
		if i != len(w)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
