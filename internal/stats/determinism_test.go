package stats

import (
	"math"
	"testing"
)

// render builds the same table from the same inputs and returns its
// serialized form; called twice by the determinism test below.
func render() string {
	t := NewTable("app", "slowdown", "ipc", "note")
	t.AddF("tatp", 1.2345, 0.87, "ok")
	t.AddF("lbm", int64(3), math.Pi, "")
	t.AddF("sps", 0.5, 42, "tail")
	return t.String()
}

// TestTableRenderDeterministic: rendering identical data twice must give
// byte-identical output. The table is the terminal serialization for every
// experiment report, so any iteration-order or formatting instability here
// would make reports diff against themselves.
func TestTableRenderDeterministic(t *testing.T) {
	a, b := render(), render()
	if a != b {
		t.Fatalf("identical tables rendered differently:\n%s\n---\n%s", a, b)
	}
}

// TestAggregatesDeterministic: the scalar aggregates must be exactly
// reproducible on the same input slice — no map-ordered accumulation.
func TestAggregatesDeterministic(t *testing.T) {
	xs := []float64{3.5, 1.25, 9, 0.125, 7.75, 2.5, 6.125, 4}
	type snap struct{ gm, mean, p50, p99, min, max float64 }
	take := func() snap {
		return snap{
			gm:   GMean(xs),
			mean: Mean(xs),
			p50:  Percentile(xs, 50),
			p99:  Percentile(xs, 99),
			min:  Min(xs),
			max:  Max(xs),
		}
	}
	if a, b := take(), take(); a != b {
		t.Fatalf("aggregate snapshots differ: %+v vs %+v", a, b)
	}
}
