package recovery

import (
	"encoding/json"
	"fmt"

	"cwsp/internal/faults"
	"cwsp/internal/ir"
	"cwsp/internal/runner"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry"
	"cwsp/internal/telemetry/live"
)

// TortureReportSchemaVersion versions the campaign report format.
const TortureReportSchemaVersion = 1

// TortureTarget is one workload under torture: a compiled program plus its
// thread placement.
type TortureTarget struct {
	Name  string
	Prog  *ir.Program
	Specs []sim.ThreadSpec
}

// TortureOptions configure a campaign.
type TortureOptions struct {
	// Seed is the campaign's master seed: cell k of target t draws its
	// fault plan from a deterministic mix of (Seed, target name, k), so
	// one integer reproduces the whole campaign byte for byte.
	Seed int64
	// CellsPerTarget is the number of seeded plans per target.
	CellsPerTarget int
	// Depth is each plan's crash count (>= 2 exercises crash-during-
	// recovery); Points is each plan's fault-point count.
	Depth, Points int

	Cfg sim.Config
	Sch sim.Scheme
	// Unsealed disables every validation layer: the negative control that
	// demonstrates the campaign fails without the seals.
	Unsealed bool

	// Jobs is the worker-pool width (<= 0 = GOMAXPROCS); Store optionally
	// memoizes cells across invocations.
	Jobs  int
	Store *runner.Store
	// Bus, when set, receives live campaign events: pool cell transitions
	// plus one CrashInjected per resolved fault point and one
	// RecoveryOutcome per completed cell (the -http endpoint and the
	// progress ticker read from it). Nil disables at zero cost.
	Bus *live.Bus
	// Progress, when set, is shared with the campaign's pool so an
	// embedding service can read per-campaign pace while it runs.
	Progress *runner.Progress
}

// TortureCell is one campaign cell's deterministic record.
type TortureCell struct {
	Workload string `json:"workload"`
	Cell     int    `json:"cell"`
	PlanSeed int64  `json:"plan_seed"`
	Faults   string `json:"faults"` // the plan spec: replay with cwsprecover -faults
	FaultResult
}

// TortureReport is the campaign's machine-readable outcome. Every field is
// deterministic in (options, code version): rerunning the same seed must
// reproduce the report byte for byte, which is itself asserted by tests.
type TortureReport struct {
	SchemaVersion int    `json:"schema_version"`
	Seed          int64  `json:"seed"`
	Depth         int    `json:"depth"`
	Points        int    `json:"points"`
	Unsealed      bool   `json:"unsealed,omitempty"`
	Scheme        string `json:"scheme"`

	Cells  []TortureCell       `json:"cells"`
	Totals telemetry.FaultInfo `json:"totals"`
}

// Failures returns the cells violating the survival criterion.
func (r *TortureReport) Failures() []TortureCell {
	var out []TortureCell
	for _, c := range r.Cells {
		if c.Failed() {
			out = append(out, c)
		}
	}
	return out
}

// WriteJSON emits the report deterministically (indented, stable order).
func (r *TortureReport) WriteJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// cellPlanSeed mixes the campaign seed, target name, and cell ordinal into
// the cell's plan seed (FNV over the name, then a fixed-odd-multiplier
// blend — stable across runs and platforms).
func cellPlanSeed(seed int64, name string, k int) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	v := uint64(seed)*0x9e3779b97f4a7c15 + h*0xbf58476d1ce4e5b9 + uint64(k)*0x94d049bb133111eb
	v ^= v >> 29
	// Keep it positive and non-zero for rand.NewSource friendliness.
	s := int64(v & 0x7fffffffffffffff)
	if s == 0 {
		s = 1
	}
	return s
}

// RunTorture executes a seeded randomized campaign: CellsPerTarget fault
// plans per target, each a (possibly nested) crash/recover/re-execute
// experiment through the runner pool (panic isolation, optional persistent
// cache). The report's cell order is (target order, cell ordinal) —
// independent of pool scheduling.
func RunTorture(targets []TortureTarget, opts TortureOptions) (*TortureReport, *runner.Progress, error) {
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("recovery: torture campaign needs targets")
	}
	if opts.CellsPerTarget < 1 {
		opts.CellsPerTarget = 1
	}
	if opts.Depth < 1 {
		opts.Depth = 1
	}
	cfg := opts.Cfg
	cfg.Recoverable = true
	cfg.Unsealed = opts.Unsealed

	// One golden run per target, shared read-only by its cells.
	goldens := make([]*sim.Result, len(targets))
	for i, t := range targets {
		g, err := Golden(t.Prog, cfg, opts.Sch, t.Specs)
		if err != nil {
			return nil, nil, fmt.Errorf("recovery: golden %s: %w", t.Name, err)
		}
		goldens[i] = g
	}

	type cellID struct {
		target, k int
		seed      int64
		spec      string
	}
	var ids []cellID
	var cells []runner.Cell[*FaultResult]
	for ti, t := range targets {
		ti, t := ti, t
		for k := 0; k < opts.CellsPerTarget; k++ {
			seed := cellPlanSeed(opts.Seed, t.Name, k)
			plan := faults.NewPlan(seed, faults.GenOptions{Depth: opts.Depth, Points: opts.Points})
			spec := plan.Spec()
			ids = append(ids, cellID{ti, k, seed, spec})
			cells = append(cells, runner.Cell[*FaultResult]{
				Key: runner.Key{
					Kind:     "torture",
					Workload: t.Name,
					Scheme:   fmt.Sprintf("%+v", opts.Sch),
					CfgSig:   fmt.Sprintf("%+v|specs=%+v|plan=%s", cfg, t.Specs, spec),
				},
				Run: func() (*FaultResult, error) {
					r, err := CheckFaults(t.Prog, cfg, opts.Sch, t.Specs, plan, goldens[ti])
					if err == nil && opts.Bus != nil {
						// Cached cells skip this path (they publish
						// CellCached from the pool instead), so the bus
						// counts only the faults actually re-injected
						// this run.
						for _, inj := range r.Injected {
							opts.Bus.Publish(live.Event{
								Kind:    live.CrashInjected,
								Fault:   string(inj.Kind),
								Crash:   int64(inj.Crash),
								Skipped: inj.Skipped,
							})
						}
						opts.Bus.Publish(live.Event{
							Kind:    live.RecoveryOutcome,
							Outcome: string(r.Outcome),
							Crash:   int64(len(r.Crashes)),
						})
					}
					return r, err
				},
			})
		}
	}

	pool := runner.NewPool[*FaultResult](runner.Options{
		Jobs: opts.Jobs, Store: opts.Store, Reuse: opts.Store != nil,
		Bus: opts.Bus, Progress: opts.Progress,
	})
	results, err := pool.Run(cells)
	if err != nil {
		return nil, pool.Progress(), err
	}
	if err := pool.Close(); err != nil {
		return nil, pool.Progress(), err
	}

	rep := &TortureReport{
		SchemaVersion: TortureReportSchemaVersion,
		Seed:          opts.Seed,
		Depth:         opts.Depth,
		Points:        opts.Points,
		Unsealed:      opts.Unsealed,
		Scheme:        opts.Sch.Name,
	}
	for i, r := range results {
		id := ids[i]
		rep.Cells = append(rep.Cells, TortureCell{
			Workload:    targets[id.target].Name,
			Cell:        id.k,
			PlanSeed:    id.seed,
			Faults:      id.spec,
			FaultResult: *r,
		})
		rep.Totals.Cells++
		rep.Totals.Crashes += int64(len(r.Crashes))
		for _, inj := range r.Injected {
			if inj.Skipped {
				rep.Totals.Skipped++
			} else {
				rep.Totals.Injected++
			}
		}
		switch r.Outcome {
		case OutcomeClean:
			rep.Totals.Clean++
		case OutcomeDetected:
			rep.Totals.Detected++
		case OutcomeDiverged:
			rep.Totals.Diverged++
		case OutcomeError:
			rep.Totals.Errors++
		}
	}
	return rep, pool.Progress(), nil
}

// Shrink reduces a failing plan to a minimal reproducer: greedily drop
// fault points, then trailing crashes, then walk the failing crash cycles
// earlier — each step re-runs the experiment and keeps the mutation only
// if it still fails. Deterministic; returns the shrunk plan and its result
// (the original, unchanged, if it no longer fails — e.g. a cached result
// from a different code version).
func Shrink(prog *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, plan *faults.Plan, golden *sim.Result) (*faults.Plan, *FaultResult, error) {
	fails := func(p *faults.Plan) (*FaultResult, bool) {
		r, err := CheckFaults(prog, cfg, sch, specs, p, golden)
		if err != nil {
			return nil, false
		}
		return r, r.Failed()
	}
	cur := plan.Clone()
	cur.Seed = 0 // shrunk plans are explicit, not RNG-derived
	best, ok := fails(cur)
	if !ok {
		return plan, best, fmt.Errorf("recovery: plan does not fail; nothing to shrink")
	}

	// 1. Fewest fault points: repeatedly try removing each point.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Points); i++ {
			cand := cur.Clone()
			cand.Points = append(cand.Points[:i], cand.Points[i+1:]...)
			if r, ok := fails(cand); ok {
				cur, best, changed = cand, r, true
				break
			}
		}
	}

	// 2. Fewest crashes: drop trailing crashes no remaining point needs.
	for len(cur.Crashes) > 1 {
		last := len(cur.Crashes) - 1
		used := false
		for _, pt := range cur.Points {
			if pt.Crash == last {
				used = true
				break
			}
		}
		cand := cur.Clone()
		cand.Crashes = cand.Crashes[:last]
		if used {
			break
		}
		if r, ok := fails(cand); ok {
			cur, best = cand, r
			continue
		}
		break
	}

	// 3. Earliest crash cycles: halve each crash permille while the
	// failure reproduces.
	for i := range cur.Crashes {
		for cur.Crashes[i] > 1 {
			cand := cur.Clone()
			cand.Crashes[i] /= 2
			r, ok := fails(cand)
			if !ok {
				break
			}
			cur, best = cand, r
		}
	}
	return cur, best, nil
}
