package recovery

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

// TestWorkloadRecovery crash-sweeps a representative slice of the real
// benchmark suite (one app per behaviour class) at smoke scale: streaming
// stores, random RMW, pointer chasing, sort scatter, OLTP transactions,
// and tree updates.
func TestWorkloadRecovery(t *testing.T) {
	apps := []string{"lbm", "water-ns", "raytrace", "radix", "tatp", "pc"}
	if testing.Short() {
		apps = apps[:2]
	}
	cfg := sim.DefaultConfig()
	for _, name := range apps {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := w.Build(workloads.Smoke)
		q, _, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fail, checked, err := Sweep(q, cfg, sim.CWSP(), []sim.ThreadSpec{{Fn: q.Entry}}, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fail != nil {
			t.Fatalf("%s: crash at %d not recovered; diffs %v", name, fail.CrashCycle, fail.DiffAddrs)
		}
		if checked < 8 {
			t.Errorf("%s: only %d crash points", name, checked)
		}
	}
}

// TestRecoveryReExecutionIsShort: the work re-executed after recovery from
// a late crash must be bounded by the unpersisted tail, not the whole run
// (the paper's Section VIII cost estimate).
func TestRecoveryReExecutionIsShort(t *testing.T) {
	w, err := workloads.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(workloads.Smoke)
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	specs := []sim.ThreadSpec{{Fn: q.Entry}}
	g, err := Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	// Crash in the last 10% of the run.
	crash := g.Stats.Cycles * 9 / 10
	r, err := Check(q, cfg, sim.CWSP(), specs, crash, g)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Fatalf("late crash not recovered")
	}
	if r.ReExecuted > g.Stats.Instrs/2 {
		t.Errorf("late crash re-executed %d of %d instructions — restart point too early",
			r.ReExecuted, g.Stats.Instrs)
	}
}
