package recovery

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
	"cwsp/internal/sim"
)

func compileGen(t testing.TB, seed int64, cfg progen.Config) *ir.Program {
	t.Helper()
	p := progen.Generate(seed, cfg)
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func entrySpecs(p *ir.Program) []sim.ThreadSpec {
	return []sim.ThreadSpec{{Fn: p.Entry}}
}

// TestCrashRecoverySweep is the headline property: random programs, crashes
// spread across the whole execution, every recovery must reproduce the
// uninterrupted NVM state exactly.
func TestCrashRecoverySweep(t *testing.T) {
	cfg := sim.DefaultConfig()
	for seed := int64(0); seed < 40; seed++ {
		q := compileGen(t, seed, progen.DefaultConfig())
		fail, checked, err := Sweep(q, cfg, sim.CWSP(), entrySpecs(q), 12)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fail != nil {
			t.Fatalf("seed %d: crash at cycle %d not recovered; diffs at %v (restarts %+v)",
				seed, fail.CrashCycle, fail.DiffAddrs, fail.RestartedAt)
		}
		if checked == 0 {
			t.Fatalf("seed %d: no crash points checked", seed)
		}
	}
}

// TestCrashRecoveryDeepCalls stresses frame-stack reconstruction.
func TestCrashRecoveryDeepCalls(t *testing.T) {
	cfg := progen.DefaultConfig()
	cfg.MaxFuncs = 3
	cfg.MaxStmts = 24
	simCfg := sim.DefaultConfig()
	for seed := int64(100); seed < 120; seed++ {
		q := compileGen(t, seed, cfg)
		fail, _, err := Sweep(q, simCfg, sim.CWSP(), entrySpecs(q), 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fail != nil {
			t.Fatalf("seed %d: crash at %d not recovered; diffs %v", seed, fail.CrashCycle, fail.DiffAddrs)
		}
	}
}

// TestCrashRecoveryStarvedStructures crashes while the persist structures
// are congested (deep speculation, many unretired regions).
func TestCrashRecoveryStarvedStructures(t *testing.T) {
	simCfg := sim.DefaultConfig()
	simCfg.PPBytesBPC = 0.05
	simCfg.WPQSize = 4
	simCfg.RBTSize = 16
	for seed := int64(0); seed < 15; seed++ {
		q := compileGen(t, seed, progen.DefaultConfig())
		fail, _, err := Sweep(q, simCfg, sim.CWSP(), entrySpecs(q), 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fail != nil {
			t.Fatalf("seed %d: crash at %d not recovered under starved structures; diffs %v",
				seed, fail.CrashCycle, fail.DiffAddrs)
		}
	}
}

// TestLinkedListInsertCrash reproduces the paper's Section I motivating
// example: inserting at the head of a doubly-linked list must never leave a
// dangling pointer across a crash.
func TestLinkedListInsertCrash(t *testing.T) {
	q := linkedListProgram(t)
	cfg := sim.DefaultConfig()
	g, err := Golden(q, cfg, sim.CWSP(), entrySpecs(q))
	if err != nil {
		t.Fatal(err)
	}
	// Try every 50-cycle crash point.
	for crash := int64(1); crash < g.Stats.Cycles; crash += 50 {
		r, err := Check(q, cfg, sim.CWSP(), entrySpecs(q), crash, g)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match {
			t.Fatalf("crash at %d: inconsistent list; diffs %v", crash, r.DiffAddrs)
		}
	}
}

// linkedListProgram builds a doubly-linked list of 20 nodes by inserting at
// the head, then walks it forward computing a checksum.
func linkedListProgram(t testing.TB) *ir.Program {
	t.Helper()
	fb := ir.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	walk := fb.AddBlock("walk")
	wbody := fb.AddBlock("wbody")
	exit := fb.AddBlock("exit")

	// node layout: [0]=value [8]=next [16]=prev
	fb.SetBlock(entry)
	listHead := fb.Reg() // pointer to first node (0 = empty)
	i := fb.Reg()
	fb.ConstInto(listHead, 0)
	fb.ConstInto(i, 0)
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(20))
	fb.Br(ir.R(c), body, walk)

	fb.SetBlock(body)
	n := fb.Alloc(24)
	fb.Store(ir.R(i), ir.R(n), 0)        // value = i
	fb.Store(ir.R(listHead), ir.R(n), 8) // n.next = head
	fb.Store(ir.Imm(0), ir.R(n), 16)     // n.prev = 0
	// if head != 0 { head.prev = n }
	skip := fb.AddBlock("skip")
	setprev := fb.AddBlock("setprev")
	nz := fb.Bin(ir.OpCmpNE, ir.R(listHead), ir.Imm(0))
	fb.Br(ir.R(nz), setprev, skip)
	fb.SetBlock(setprev)
	fb.Store(ir.R(n), ir.R(listHead), 16)
	fb.Jmp(skip)
	fb.SetBlock(skip)
	fb.Mov(listHead, ir.R(n))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(walk)
	sum := fb.Reg()
	cur := fb.Reg()
	fb.ConstInto(sum, 0)
	fb.Mov(cur, ir.R(listHead))
	fb.Jmp(wbody)

	fb.SetBlock(wbody)
	nz2 := fb.Bin(ir.OpCmpNE, ir.R(cur), ir.Imm(0))
	inner := fb.AddBlock("inner")
	fb.Br(ir.R(nz2), inner, exit)
	fb.SetBlock(inner)
	v := fb.Load(ir.R(cur), 0)
	x := fb.Mul(ir.R(sum), ir.Imm(3))
	fb.BinInto(ir.OpAdd, sum, ir.R(x), ir.R(v))
	fb.LoadInto(cur, ir.R(cur), 8)
	fb.Jmp(wbody)

	fb.SetBlock(exit)
	fb.Emit(ir.R(sum))
	fb.Ret(ir.R(sum))

	p := ir.NewProgram("dll")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestMultiCoreDisjointRecovery crashes a two-thread run on disjoint data.
func TestMultiCoreDisjointRecovery(t *testing.T) {
	fb := ir.NewFunc("worker", 2)
	entry := fb.NewBlock("entry")
	headB := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.SetBlock(entry)
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(headB)
	fb.SetBlock(headB)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(fb.Param(1)))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	sh := fb.Mul(ir.R(i), ir.Imm(8))
	a := fb.Add(ir.R(fb.Param(0)), ir.R(sh))
	v := fb.Mul(ir.R(i), ir.R(i))
	fb.Store(ir.R(v), ir.R(a), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(headB)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))

	p := ir.NewProgram("mcr")
	p.Add(fb.MustDone())
	p.Entry = "worker"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	specs := []sim.ThreadSpec{
		{Fn: "worker", Args: []int64{0x2000_0000, 40}},
		{Fn: "worker", Args: []int64{0x2200_0000, 40}},
	}
	fail, checked, err := Sweep(q, cfg, sim.CWSP(), specs, 15)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("multicore crash at %d not recovered; diffs %v", fail.CrashCycle, fail.DiffAddrs)
	}
	if checked < 15 {
		t.Errorf("only %d crash points checked", checked)
	}
}

// TestCrashAtExtremes: cycle 1 (nothing persisted) and far beyond the end
// (everything persisted; recovery is a no-op).
func TestCrashAtExtremes(t *testing.T) {
	q := compileGen(t, 5, progen.DefaultConfig())
	cfg := sim.DefaultConfig()
	g, err := Golden(q, cfg, sim.CWSP(), entrySpecs(q))
	if err != nil {
		t.Fatal(err)
	}
	for _, crash := range []int64{1, 2, 3, g.Stats.Cycles * 2} {
		r, err := Check(q, cfg, sim.CWSP(), entrySpecs(q), crash, g)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match {
			t.Fatalf("crash at %d not recovered; diffs %v", crash, r.DiffAddrs)
		}
	}
}

// TestEmitNeverDuplicated: the observable output stream in NVM must match
// the golden run exactly (irrevocable emits re-execute never).
func TestEmitNeverDuplicated(t *testing.T) {
	cfgGen := progen.DefaultConfig()
	cfgGen.Emits = true
	q := compileGen(t, 21, cfgGen)
	cfg := sim.DefaultConfig()
	g, err := Golden(q, cfg, sim.CWSP(), entrySpecs(q))
	if err != nil {
		t.Fatal(err)
	}
	goldenCount := g.NVM.Load(sim.EmitBase)
	if goldenCount == 0 {
		t.Skip("seed produced no emits")
	}
	for frac := int64(1); frac <= 10; frac++ {
		crash := g.Stats.Cycles * frac / 10
		if crash == 0 {
			crash = 1
		}
		r, err := Check(q, cfg, sim.CWSP(), entrySpecs(q), crash, g)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match {
			t.Fatalf("crash at %d: NVM mismatch (emit region?) diffs %v", crash, r.DiffAddrs)
		}
	}
}

// TestSweepParallelMatchesSerial: the pooled sweep must verify the same
// crash points with the same verdicts as the serial one.
func TestSweepParallelMatchesSerial(t *testing.T) {
	prog := compileGen(t, 3, progen.DefaultConfig())
	cfg := sim.DefaultConfig()
	specs := entrySpecs(prog)

	failS, checkedS, err := Sweep(prog, cfg, sim.CWSP(), specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	failP, checkedP, err := SweepParallel(prog, cfg, sim.CWSP(), specs, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if (failS == nil) != (failP == nil) {
		t.Fatalf("serial fail=%v parallel fail=%v", failS, failP)
	}
	if checkedS != checkedP {
		t.Fatalf("serial checked %d, parallel checked %d", checkedS, checkedP)
	}
}
