package recovery

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/sim"
)

// lockWorker builds worker(tid, iters): each iteration takes a CAS spinlock,
// increments a shared counter and a shared checksum, releases, then updates
// thread-private state. The final shared state is interleaving-independent
// (all critical-section updates commute), so crash recovery must reproduce
// it exactly even though threads restart independently.
func lockWorker(t testing.TB) *ir.Program {
	t.Helper()
	const (
		lockAddr = int64(0x2000_0000)
		cntAddr  = int64(0x2000_0040) // different line than the lock
		sumAddr  = int64(0x2000_0080)
		privBase = int64(0x2100_0000)
	)
	fb := ir.NewFunc("worker", 2)
	tid := fb.Param(0)
	iters := fb.Param(1)

	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(iters))
	fb.Br(ir.R(c), body, exit)

	fb.SetBlock(body)
	// acquire: spin on CAS(lock, 0 -> 1)
	spin := fb.AddBlock("spin")
	crit := fb.AddBlock("crit")
	fb.Jmp(spin)
	fb.SetBlock(spin)
	old := fb.AtomicCAS(ir.Imm(lockAddr), 0, ir.Imm(0), ir.Imm(1))
	got := fb.Bin(ir.OpCmpEQ, ir.R(old), ir.Imm(0))
	fb.Br(ir.R(got), crit, spin)

	fb.SetBlock(crit)
	// critical section: counter++ and checksum += tid+3 (commutative).
	cv := fb.Load(ir.Imm(cntAddr), 0)
	cv2 := fb.Add(ir.R(cv), ir.Imm(1))
	fb.Store(ir.R(cv2), ir.Imm(cntAddr), 0)
	sv := fb.Load(ir.Imm(sumAddr), 0)
	inc := fb.Add(ir.R(tid), ir.Imm(3))
	sv2 := fb.Add(ir.R(sv), ir.R(inc))
	fb.Store(ir.R(sv2), ir.Imm(sumAddr), 0)
	// release: atomic exchange back to 0 (a synchronizing store).
	fb.AtomicXchg(ir.Imm(lockAddr), 0, ir.Imm(0))

	// thread-private work.
	pb := fb.Mul(ir.R(tid), ir.Imm(1<<16))
	po := fb.Mul(ir.R(i), ir.Imm(8))
	pa0 := fb.Add(ir.Imm(privBase), ir.R(pb))
	pa := fb.Add(ir.R(pa0), ir.R(po))
	pv := fb.Mul(ir.R(i), ir.R(inc))
	fb.Store(ir.R(pv), ir.R(pa), 0)

	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	fb.Ret(ir.R(i))

	p := ir.NewProgram("lockworker")
	p.Add(fb.MustDone())
	p.Entry = "worker"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestLockedMulticoreRecovery(t *testing.T) {
	q := lockWorker(t)
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	specs := []sim.ThreadSpec{
		{Fn: "worker", Args: []int64{0, 25}},
		{Fn: "worker", Args: []int64{1, 25}},
	}
	g, err := Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	// Shared state sanity: counter = 50, checksum = 25*3 + 25*4.
	if got := g.NVM.Load(0x2000_0040); got != 50 {
		t.Fatalf("golden counter = %d, want 50", got)
	}
	if got := g.NVM.Load(0x2000_0080); got != 25*3+25*4 {
		t.Fatalf("golden checksum = %d, want %d", got, 25*3+25*4)
	}

	fail, checked, err := Sweep(q, cfg, sim.CWSP(), specs, 24)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("locked multicore crash at %d not recovered; diffs %v (restarts %+v)",
			fail.CrashCycle, fail.DiffAddrs, fail.RestartedAt)
	}
	if checked < 24 {
		t.Errorf("only %d crash points checked", checked)
	}
}

func TestFourCoreRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("4-core sweep skipped with -short")
	}
	q := lockWorker(t)
	cfg := sim.DefaultConfig()
	cfg.Cores = 4
	specs := []sim.ThreadSpec{
		{Fn: "worker", Args: []int64{0, 12}},
		{Fn: "worker", Args: []int64{1, 12}},
		{Fn: "worker", Args: []int64{2, 12}},
		{Fn: "worker", Args: []int64{3, 12}},
	}
	fail, _, err := Sweep(q, cfg, sim.CWSP(), specs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("4-core crash at %d not recovered; diffs %v", fail.CrashCycle, fail.DiffAddrs)
	}
}
