package recovery

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/opt"
	"cwsp/internal/progen"
	"cwsp/internal/sim"
)

func optOptimize(p *ir.Program) (opt.Stats, error) { return opt.Optimize(p) }

// TestRecoveryUnderAggressiveNUMA: four memory controllers with a large
// per-MC latency spread maximize cross-region persist reordering — the
// exact hazard MC speculation exists for (paper Figure 2(c)).
func TestRecoveryUnderAggressiveNUMA(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.NumMCs = 4
	cfg.NUMAStep = 120 // 0/120/240/360 extra cycles across MCs
	for seed := int64(300); seed < 325; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fail, _, err := Sweep(q, cfg, sim.CWSP(), []sim.ThreadSpec{{Fn: q.Entry}}, 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fail != nil {
			t.Fatalf("seed %d: crash at %d not recovered under 4-MC NUMA; diffs %v",
				seed, fail.CrashCycle, fail.DiffAddrs)
		}
	}
}

// TestRecoveryUnderSingleMC: the degenerate one-controller machine (no
// cross-MC reordering at all) must also recover.
func TestRecoveryUnderSingleMC(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.NumMCs = 1
	for seed := int64(400); seed < 415; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fail, _, err := Sweep(q, cfg, sim.CWSP(), []sim.ThreadSpec{{Fn: q.Entry}}, 10)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fail != nil {
			t.Fatalf("seed %d: crash at %d not recovered with 1 MC; diffs %v",
				seed, fail.CrashCycle, fail.DiffAddrs)
		}
	}
}

// TestRecoveryUnderEveryCompileMode: recovery must hold for every
// checkpoint-optimizer configuration, not just the default — the ablation
// binaries are still crash-consistent.
func TestRecoveryUnderEveryCompileMode(t *testing.T) {
	modes := []compiler.Options{
		{PruneCheckpoints: false, ChainDepth: -1},                         // unpruned
		{PruneCheckpoints: true, HoistCheckpoints: false, ChainDepth: -1}, // no hoisting
		{PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 0},   // no ALU chains
		{PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 1},   // depth-1 chains
		compiler.DefaultOptions(),                                         // full
	}
	cfg := sim.DefaultConfig()
	for mi, mode := range modes {
		for seed := int64(500); seed < 512; seed++ {
			p := progen.Generate(seed, progen.DefaultConfig())
			q, _, err := compiler.Compile(p, mode)
			if err != nil {
				t.Fatalf("mode %d seed %d: %v", mi, seed, err)
			}
			fail, _, err := Sweep(q, cfg, sim.CWSP(), []sim.ThreadSpec{{Fn: q.Entry}}, 8)
			if err != nil {
				t.Fatalf("mode %d seed %d: %v", mi, seed, err)
			}
			if fail != nil {
				t.Fatalf("mode %d seed %d: crash at %d not recovered; diffs %v",
					mi, seed, fail.CrashCycle, fail.DiffAddrs)
			}
		}
	}
}

// TestCheckReportsGoldenWork: CheckResult carries the golden run's cycle
// count and a sane resumed-work figure — re-execution replays a suffix of
// the program, never more than the whole run.
func TestCheckReportsGoldenWork(t *testing.T) {
	p := progen.Generate(7, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	specs := []sim.ThreadSpec{{Fn: q.Entry}}
	g, err := Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int64{1, 3, 6, 9} {
		crash := g.Stats.Cycles * frac / 10
		if crash == 0 {
			crash = 1
		}
		r, err := Check(q, cfg, sim.CWSP(), specs, crash, g)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match {
			t.Fatalf("crash at %d not recovered", crash)
		}
		if r.GoldenCycles != g.Stats.Cycles {
			t.Fatalf("crash at %d: GoldenCycles %d, want %d", crash, r.GoldenCycles, g.Stats.Cycles)
		}
		if r.ReExecuted < 0 || r.ReExecuted > g.Stats.Instrs {
			t.Fatalf("crash at %d: re-executed %d instructions of a %d-instruction run",
				crash, r.ReExecuted, g.Stats.Instrs)
		}
	}
}

// TestRecoveryAfterOptimizer: classical optimizations before the cWSP
// passes must not break crash consistency.
func TestRecoveryAfterOptimizer(t *testing.T) {
	cfg := sim.DefaultConfig()
	for seed := int64(600); seed < 620; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		if _, err := optOptimize(p); err != nil {
			t.Fatal(err)
		}
		q, _, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fail, _, err := Sweep(q, cfg, sim.CWSP(), []sim.ThreadSpec{{Fn: q.Entry}}, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fail != nil {
			t.Fatalf("seed %d: optimized binary crash at %d not recovered; diffs %v",
				seed, fail.CrashCycle, fail.DiffAddrs)
		}
	}
}
