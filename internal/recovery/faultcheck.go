package recovery

import (
	"errors"
	"fmt"

	"cwsp/internal/faults"
	"cwsp/internal/ir"
	"cwsp/internal/sim"
)

// CorruptionError is the typed detection report the hardened recovery path
// returns when a sealed structure fails validation. (It is defined in the
// sim layer, where the seals live; the alias keeps the recovery API — the
// level callers program against — self-contained.)
type CorruptionError = sim.CorruptionError

// Outcome classifies one faulted crash/recovery experiment. The survival
// criterion is strict: an injected corruption must either be absorbed by a
// correct rollback (Clean) or be reported (Detected). Silent NVM
// divergence — and any undiagnosed hard error while executing recovered
// state — is a failure.
type Outcome string

// Outcomes.
const (
	// OutcomeClean: recovered and re-executed to the exact golden NVM
	// image (faults, if any, were rolled back or semantically absorbed).
	OutcomeClean Outcome = "clean"
	// OutcomeDetected: a validation layer reported a typed
	// CorruptionError before corrupted state could execute.
	OutcomeDetected Outcome = "detected"
	// OutcomeDiverged: the final NVM image silently differs from golden —
	// the failure the seals exist to prevent.
	OutcomeDiverged Outcome = "diverged"
	// OutcomeError: recovery or re-execution died with an untyped error
	// (wild branches, livelock, corrupt frame walks). Not silent, but not
	// a controlled detection either; counted as a failure.
	OutcomeError Outcome = "error"
)

// FaultResult reports one (possibly nested) faulted crash/recovery
// experiment. It round-trips through JSON for the runner's result cache
// and the campaign report.
type FaultResult struct {
	Outcome Outcome `json:"outcome"`
	// Crashes are the absolute crash cycles actually applied, one per
	// completed crash ordinal (machine-local clock for nested crashes).
	Crashes []int64 `json:"crashes,omitempty"`
	// Injected is every resolved fault point across all crash ordinals.
	Injected []faults.Injected `json:"injected,omitempty"`
	// Detected carries the typed corruption report (Outcome == detected).
	Detected *CorruptionError `json:"detected,omitempty"`
	// Err is the untyped failure (Outcome == error).
	Err string `json:"err,omitempty"`
	// DiffAddrs samples diverging word addresses (Outcome == diverged).
	DiffAddrs []int64 `json:"diff_addrs,omitempty"`
	// ReExecuted counts dynamic instructions after the final resume.
	ReExecuted int64 `json:"re_executed,omitempty"`
}

// Failed reports whether the experiment violated the survival criterion.
func (r *FaultResult) Failed() bool {
	return r.Outcome == OutcomeDiverged || r.Outcome == OutcomeError
}

// CheckFaults runs the plan's full crash schedule against one program:
// crash (with that ordinal's injected faults), recover, and for nested
// plans crash the *resumed* machine again — recovery code must survive
// repeated power failures — then re-execute to completion and compare the
// final NVM image with the golden run's. Detection anywhere ends the
// experiment as OutcomeDetected (a real system would fall back to a cold
// restart). Setup failures (bad program, impossible spec) return an error;
// everything the experiment itself can produce is folded into the result.
func CheckFaults(prog *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, plan *faults.Plan, golden *sim.Result) (*FaultResult, error) {
	if plan == nil || plan.Depth() == 0 {
		return nil, fmt.Errorf("recovery: CheckFaults needs a plan with at least one crash")
	}
	cfg.Recoverable = true
	// Bound re-execution: corrupted state running unsealed can livelock;
	// cap it well above any legitimate resumed run instead of burning the
	// default 100M-instruction budget per cell.
	if cfg.MaxSteps == 0 || cfg.MaxSteps > 4*golden.Stats.Instrs+100_000 {
		cfg.MaxSteps = 4*golden.Stats.Instrs + 100_000
	}

	out := &FaultResult{}
	m, err := sim.NewThreaded(prog, cfg, sch, specs)
	if err != nil {
		return nil, err
	}
	for ci := 0; ci < plan.Depth(); ci++ {
		cycle := plan.CrashCycle(ci, golden.Stats.Cycles)
		if err := m.RunUntil(cycle); err != nil {
			out.Outcome, out.Err = OutcomeError, fmt.Sprintf("run to crash %d: %v", ci, err)
			return out, nil
		}
		cf, injected := faults.Resolve(plan, ci, m, cycle)
		out.Injected = append(out.Injected, injected...)
		out.Crashes = append(out.Crashes, cycle)
		cs, err := m.CrashAtFaults(cycle, cf)
		if err != nil {
			return finishWithError(out, err, ci, cycle)
		}
		m, err = sim.NewResumed(prog, cfg, sch, specs, cs)
		if err != nil {
			return finishWithError(out, err, ci, cycle)
		}
	}
	res, err := m.Run()
	if err != nil {
		out.Outcome, out.Err = OutcomeError, fmt.Sprintf("final re-execution: %v", err)
		return out, nil
	}
	out.ReExecuted = res.Stats.Instrs
	if nvmMatches(res, golden, len(specs)) {
		out.Outcome = OutcomeClean
	} else {
		out.Outcome = OutcomeDiverged
		out.DiffAddrs = res.NVM.Diff(golden.NVM, 8)
	}
	return out, nil
}

func finishWithError(out *FaultResult, err error, crash int, cycle int64) (*FaultResult, error) {
	var ce *CorruptionError
	if errors.As(err, &ce) {
		out.Outcome, out.Detected = OutcomeDetected, ce
		return out, nil
	}
	out.Outcome, out.Err = OutcomeError, fmt.Sprintf("crash %d at cycle %d: %v", crash, cycle, err)
	return out, nil
}
