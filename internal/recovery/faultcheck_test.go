package recovery

import (
	"bytes"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/faults"
	"cwsp/internal/ir"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

func compileWorkload(t testing.TB, name string) *ir.Program {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := compiler.Compile(w.Build(workloads.Smoke), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestCheckFaultsNestedCleanNoFaults: with no injected corruption, a
// depth-3 nested crash schedule — the third crash hits a machine that is
// itself two recoveries deep — must recover to the exact golden image.
// This is crash-during-recovery soundness in isolation.
func TestCheckFaultsNestedCleanNoFaults(t *testing.T) {
	q := linkedListProgram(t)
	cfg := sim.DefaultConfig()
	specs := entrySpecs(q)
	g, err := Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Crashes: []int64{300, 600, 900}}
	r, err := CheckFaults(q, cfg, sim.CWSP(), specs, plan, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != OutcomeClean {
		t.Fatalf("nested fault-free crashes must recover clean; got %s (err=%q detected=%+v diffs=%v)",
			r.Outcome, r.Err, r.Detected, r.DiffAddrs)
	}
	if len(r.Crashes) != 3 {
		t.Fatalf("expected 3 applied crashes, got %v", r.Crashes)
	}
	// The final resume may legitimately have nothing left to run (a late
	// nested crash can land after the resumed machine finished), but the
	// crash schedule itself must be non-degenerate.
	for i := 1; i < len(r.Crashes); i++ {
		if r.Crashes[i] < 1 {
			t.Fatalf("crash %d at non-positive cycle %d", i, r.Crashes[i])
		}
	}
}

// TestCheckFaultsNeverSilentlyDiverges: the sealed build's survival
// property over a batch of seeded adversarial plans — every outcome is
// clean or detected, never diverged or error.
func TestCheckFaultsNeverSilentlyDiverges(t *testing.T) {
	q := compileWorkload(t, "rb")
	cfg := sim.DefaultConfig()
	specs := entrySpecs(q)
	g, err := Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	detections := 0
	for seed := int64(0); seed < 12; seed++ {
		plan := faults.NewPlan(seed, faults.GenOptions{Depth: 2, Points: 3})
		r, err := CheckFaults(q, cfg, sim.CWSP(), specs, plan, g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Failed() {
			t.Fatalf("seed %d (%s): sealed build %s: err=%q diffs=%v",
				seed, plan.Spec(), r.Outcome, r.Err, r.DiffAddrs)
		}
		if r.Outcome == OutcomeDetected {
			detections++
		}
	}
	if detections == 0 {
		t.Fatal("no plan was detected — the adversary injected nothing effective")
	}
}

// findFailingPlan scans seeds for a plan that defeats the unsealed build.
func findFailingPlan(t testing.TB, q *ir.Program, ucfg sim.Config, specs []sim.ThreadSpec, g *sim.Result) *faults.Plan {
	t.Helper()
	for seed := int64(0); seed < 40; seed++ {
		plan := faults.NewPlan(seed, faults.GenOptions{Depth: 2, Points: 3})
		r, err := CheckFaults(q, ucfg, sim.CWSP(), specs, plan, g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Failed() {
			return plan
		}
	}
	t.Fatal("no seeded plan defeats the unsealed build — adversary too weak")
	return nil
}

// TestCheckFaultsUnsealedFailsSealedSurvives: the negative control. A plan
// that corrupts the unsealed build must be survived (detected) by the
// sealed one — the seals are what close the gap.
func TestCheckFaultsUnsealedFailsSealedSurvives(t *testing.T) {
	q := compileWorkload(t, "rb")
	specs := entrySpecs(q)
	cfg := sim.DefaultConfig()
	ucfg := cfg
	ucfg.Unsealed = true
	g, err := Golden(q, cfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	plan := findFailingPlan(t, q, ucfg, specs, g)
	r, err := CheckFaults(q, cfg, sim.CWSP(), specs, plan, g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("sealed build failed the plan (%s) that defeats the unsealed build: %s err=%q",
			plan.Spec(), r.Outcome, r.Err)
	}
}

// TestShrinkProducesMinimalFailingReproducer: shrinking a failing plan
// keeps it failing while never growing it.
func TestShrinkProducesMinimalFailingReproducer(t *testing.T) {
	q := compileWorkload(t, "rb")
	specs := entrySpecs(q)
	ucfg := sim.DefaultConfig()
	ucfg.Unsealed = true
	g, err := Golden(q, ucfg, sim.CWSP(), specs)
	if err != nil {
		t.Fatal(err)
	}
	plan := findFailingPlan(t, q, ucfg, specs, g)
	min, res, err := Shrink(q, ucfg, sim.CWSP(), specs, plan, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("shrunk plan no longer fails: %s", res.Outcome)
	}
	if len(min.Points) > len(plan.Points) || min.Depth() > plan.Depth() {
		t.Fatalf("shrink grew the plan: %d->%d points, depth %d->%d",
			len(plan.Points), len(min.Points), plan.Depth(), min.Depth())
	}
	// The reproducer replays standalone from its spec string.
	rt, err := faults.ParseSpec(min.Spec())
	if err != nil {
		t.Fatalf("shrunk spec does not parse: %v", err)
	}
	r2, err := CheckFaults(q, ucfg, sim.CWSP(), specs, rt, g)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Failed() {
		t.Fatal("reparsed reproducer no longer fails")
	}
}

func smokeTargets(t testing.TB) []TortureTarget {
	t.Helper()
	var targets []TortureTarget
	for _, name := range []string{"tatp", "rb"} {
		q := compileWorkload(t, name)
		targets = append(targets, TortureTarget{Name: name, Prog: q, Specs: []sim.ThreadSpec{{Fn: q.Entry}}})
	}
	return targets
}

// TestTortureReportByteIdentical: the same campaign seed yields a
// byte-for-byte identical JSON report regardless of pool parallelism.
func TestTortureReportByteIdentical(t *testing.T) {
	targets := smokeTargets(t)
	opts := TortureOptions{
		Seed: 42, CellsPerTarget: 2, Depth: 2, Points: 2,
		Cfg: sim.DefaultConfig(), Sch: sim.CWSP(), Jobs: 1,
	}
	rep1, _, err := RunTorture(targets, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Jobs = 4
	rep2, _, err := RunTorture(targets, opts)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := rep1.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", b1, b2)
	}
	if rep1.Totals.Cells != 4 {
		t.Fatalf("expected 4 cells, got %d", rep1.Totals.Cells)
	}
}

// TestTortureSealedCampaignSurvives: a small sealed campaign has zero
// silent divergences and zero errors, and the adversary actually lands
// faults (injected > 0, detections > 0).
func TestTortureSealedCampaignSurvives(t *testing.T) {
	rep, _, err := RunTorture(smokeTargets(t), TortureOptions{
		Seed: 1, CellsPerTarget: 3, Depth: 2, Points: 3,
		Cfg: sim.DefaultConfig(), Sch: sim.CWSP(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.Failures()); n != 0 {
		t.Fatalf("sealed campaign has %d failures: %+v", n, rep.Failures()[0])
	}
	if rep.Totals.Injected == 0 {
		t.Fatal("campaign injected nothing")
	}
	if rep.Totals.Detected == 0 {
		t.Fatal("campaign detected nothing — faults are being absorbed unrealistically")
	}
}

// TestTortureUnsealedCampaignFails: the acceptance-criterion negative
// control — the identical campaign with validation disabled must fail.
func TestTortureUnsealedCampaignFails(t *testing.T) {
	rep, _, err := RunTorture(smokeTargets(t), TortureOptions{
		Seed: 1, CellsPerTarget: 3, Depth: 2, Points: 3,
		Cfg: sim.DefaultConfig(), Sch: sim.CWSP(), Unsealed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures()) == 0 {
		t.Fatal("unsealed campaign passed — validation layers are not what provides survival")
	}
	if rep.Totals.Diverged == 0 && rep.Totals.Errors == 0 {
		t.Fatalf("unsealed campaign totals inconsistent: %+v", rep.Totals)
	}
	if !rep.Unsealed {
		t.Fatal("report does not record the unsealed mode")
	}
}
