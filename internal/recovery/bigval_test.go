package recovery

import (
	"os"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/progen"
	"cwsp/internal/sim"
)

// TestBigValidation is the extended confidence sweep; enabled with
// CWSP_BIGVAL=1 (several minutes).
func TestBigValidation(t *testing.T) {
	if os.Getenv("CWSP_BIGVAL") == "" {
		t.Skip("set CWSP_BIGVAL=1 for the extended 300-program crash sweep")
	}
	cfgs := []progen.Config{progen.DefaultConfig()}
	big := progen.DefaultConfig()
	big.MaxStmts = 40
	big.MaxFuncs = 3
	cfgs = append(cfgs, big)
	total := 0
	for ci, gc := range cfgs {
		for seed := int64(1000); seed < 1150; seed++ {
			p := progen.Generate(seed, gc)
			q, _, err := compiler.Compile(p, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			fail, checked, err := Sweep(q, sim.DefaultConfig(), sim.CWSP(),
				[]sim.ThreadSpec{{Fn: q.Entry}}, 12)
			if err != nil {
				t.Fatalf("cfg%d seed %d: %v", ci, seed, err)
			}
			total += checked
			if fail != nil {
				t.Fatalf("cfg%d seed %d: crash at %d not recovered; diffs %v",
					ci, seed, fail.CrashCycle, fail.DiffAddrs)
			}
		}
	}
	t.Logf("extended validation: %d crash points, all recovered exactly", total)
}
