// Package recovery drives cWSP's power-failure recovery protocol end to
// end and verifies the paper's central guarantee — something the paper
// itself leaves as future work ("No Power Failure Recovery Test",
// Section VIII): for ANY crash cycle, rolling back speculative NVM updates
// with the MC undo logs, restoring the restart region's live-in registers
// via its recovery slice, and re-executing from the oldest unpersisted
// region yields exactly the NVM state of an uninterrupted run.
package recovery

import (
	"fmt"

	"cwsp/internal/ir"
	"cwsp/internal/runner"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry/live"
)

// CheckResult reports one crash/recovery experiment.
type CheckResult struct {
	CrashCycle   int64
	GoldenCycles int64
	Match        bool
	DiffAddrs    []int64
	RestartedAt  []sim.RegionInfo // per non-done core
	ReExecuted   int64            // dynamic instructions executed after resume
}

// Golden runs the program uninterrupted and returns its final result.
func Golden(prog *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec) (*sim.Result, error) {
	m, err := sim.NewThreaded(prog, cfg, sch, specs)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// Check crashes the program at crashCycle, recovers, re-executes to
// completion, and compares the final NVM image with the golden run's.
func Check(prog *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, crashCycle int64, golden *sim.Result) (*CheckResult, error) {
	cfg.Recoverable = true
	crashM, err := sim.NewThreaded(prog, cfg, sch, specs)
	if err != nil {
		return nil, err
	}
	cs, err := crashM.CrashAt(crashCycle)
	if err != nil {
		return nil, err
	}

	resumed, err := sim.NewResumed(prog, cfg, sch, specs, cs)
	if err != nil {
		return nil, err
	}
	res, err := resumed.Run()
	if err != nil {
		return nil, fmt.Errorf("recovery: resumed run: %w", err)
	}

	match := nvmMatches(res, golden, len(specs))
	out := &CheckResult{
		CrashCycle:   crashCycle,
		GoldenCycles: golden.Stats.Cycles,
		Match:        match,
		ReExecuted:   res.Stats.Instrs,
	}
	for _, r := range cs.Restarts {
		if !r.Done {
			out.RestartedAt = append(out.RestartedAt, r.Region)
		}
	}
	if !out.Match {
		out.DiffAddrs = res.NVM.Diff(golden.NVM, 8)
	}
	return out, nil
}

// nvmMatches applies the protocol's equality criterion. Single-threaded
// runs are fully deterministic: the recovered NVM must match the golden
// image bit for bit, including checkpoint slots and stack spills.
// Multi-threaded runs may legally reschedule after recovery (DRF programs
// admit any interleaving), so volatile-register shadow state — checkpoint
// slots and stack frames, whose contents depend on spin counts and lock
// acquisition order — is excluded; all program data (heap, globals, emit
// buffer) must still match exactly.
func nvmMatches(res *sim.Result, golden *sim.Result, nthreads int) bool {
	if res.NVM.Equal(golden.NVM) {
		return true
	}
	if nthreads <= 1 {
		return false
	}
	return res.NVM.EqualWhere(golden.NVM, func(addr int64) bool {
		if addr >= sim.StackBase && addr < sim.CkptBase+int64(sim.MaxCores)*sim.CkptStride {
			return false // stacks + checkpoint areas
		}
		return true
	})
}

// Sweep checks n evenly spaced crash cycles across the golden run's
// duration (plus the degenerate extremes) and returns the first failure,
// or nil if every crash recovers. It stops at the first mismatch, so the
// checked count is the number of crash points examined.
func Sweep(prog *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, n int) (*CheckResult, int, error) {
	g, err := Golden(prog, cfg, sch, specs)
	if err != nil {
		return nil, 0, err
	}
	total := g.Stats.Cycles
	checked := 0
	for i := 0; i <= n; i++ {
		crash := sweepCycle(total, i, n)
		r, err := Check(prog, cfg, sch, specs, crash, g)
		if err != nil {
			return nil, checked, err
		}
		checked++
		if !r.Match {
			return r, checked, nil
		}
	}
	return nil, checked, nil
}

func sweepCycle(total int64, i, n int) int64 {
	crash := total * int64(i) / int64(n)
	if crash == 0 {
		crash = 1
	}
	return crash
}

// SweepParallel is Sweep over a runner worker pool: every crash point is an
// independent cell (crash/recover/re-execute runs share only read-only
// state — the program and the golden NVM image), so a multi-run recovery
// campaign scales with cores. Results are examined in crash-cycle order
// regardless of completion order: the reported failure and checked count
// are exactly what the serial Sweep would report, except that later crash
// points have also been verified by the time it returns. A non-nil bus
// receives the pool's cell events plus one RecoveryOutcome per verified
// crash point (clean on match, diverged on mismatch).
func SweepParallel(prog *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, n, jobs int, bus *live.Bus) (*CheckResult, int, error) {
	g, err := Golden(prog, cfg, sch, specs)
	if err != nil {
		return nil, 0, err
	}
	total := g.Stats.Cycles
	cells := make([]runner.Cell[*CheckResult], 0, n+1)
	for i := 0; i <= n; i++ {
		crash := sweepCycle(total, i, n)
		cells = append(cells, runner.Cell[*CheckResult]{
			Key: runner.Key{
				Kind:     "recovery",
				Workload: prog.Name,
				Scheme:   fmt.Sprintf("%+v", sch),
				CfgSig:   fmt.Sprintf("%+v|specs=%+v|crash=%d", cfg, specs, crash),
			},
			Run: func() (*CheckResult, error) {
				r, err := Check(prog, cfg, sch, specs, crash, g)
				if err == nil && bus != nil {
					outcome := "clean"
					if !r.Match {
						outcome = "diverged"
					}
					bus.Publish(live.Event{Kind: live.RecoveryOutcome, Outcome: outcome, Crash: crash})
				}
				return r, err
			},
		})
	}
	pool := runner.NewPool[*CheckResult](runner.Options{Jobs: jobs, Bus: bus})
	results, err := pool.Run(cells)
	if err != nil {
		return nil, 0, err
	}
	for i, r := range results {
		if !r.Match {
			return r, i + 1, nil
		}
	}
	return nil, len(results), nil
}
