package bench

import (
	"fmt"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/nvmtech"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/stats"
	"cwsp/internal/workloads"
)

// variant is one column of a comparison: a scheme over a config, normalized
// against a reference run.
type variant struct {
	name    string
	cfg     sim.Config
	sch     sim.Scheme
	pruned  bool
	mode    string // explicit compile mode; overrides pruned when set
	baseCfg sim.Config
	baseSch sim.Scheme
}

func selfNormalized(name string, cfg sim.Config, sch sim.Scheme, pruned bool) variant {
	return variant{name: name, cfg: cfg, sch: sch, pruned: pruned, baseCfg: cfg, baseSch: sim.Baseline()}
}

// slowdownReport runs every variant over the app list and assembles a
// report: per-app rows (if perApp) followed by per-suite gmeans and the
// overall gmean per column.
func (h *Harness) slowdownReport(id, title, paper string, apps []workloads.Workload, vars []variant, perApp bool) (*Report, error) {
	rep := &Report{ID: id, Title: title, Paper: paper, Summary: map[string]float64{}}
	for _, v := range vars {
		rep.Columns = append(rep.Columns, v.name)
	}
	perVar := make([]map[string]float64, len(vars))
	for i := range perVar {
		perVar[i] = map[string]float64{}
	}
	for _, w := range apps {
		row := Row{Label: w.Name, Suite: w.Suite}
		for i, v := range vars {
			var sd float64
			var err error
			if v.mode != "" {
				sd, err = h.SlowdownVsMode(w, v.cfg, v.sch, v.mode, v.baseCfg, v.baseSch)
			} else {
				sd, err = h.SlowdownVs(w, v.cfg, v.sch, v.pruned, v.baseCfg, v.baseSch)
			}
			if err != nil {
				return nil, err
			}
			perVar[i][w.Name] = sd
			row.Vals = append(row.Vals, sd)
		}
		if perApp {
			rep.Rows = append(rep.Rows, row)
		}
	}
	// Suite gmeans as extra rows.
	for _, s := range workloads.Suites {
		var vals []float64
		has := false
		for i := range vars {
			var xs []float64
			for _, w := range apps {
				if w.Suite == s {
					if v, ok := perVar[i][w.Name]; ok {
						xs = append(xs, v)
						has = true
					}
				}
			}
			vals = append(vals, stats.GMean(xs))
		}
		if has {
			rep.Rows = append(rep.Rows, Row{Label: "gmean", Suite: s, Vals: vals})
		}
	}
	allRow := Row{Label: "gmean", Suite: "All"}
	for i, v := range vars {
		var xs []float64
		for _, w := range apps {
			if x, ok := perVar[i][w.Name]; ok {
				xs = append(xs, x)
			}
		}
		g := stats.GMean(xs)
		allRow.Vals = append(allRow.Vals, g)
		rep.Summary["gmean:"+v.name] = g
	}
	rep.Rows = append(rep.Rows, allRow)
	return rep, nil
}

// fig01Hierarchy returns the 2..5-level cache hierarchies of Figure 1,
// scaled like everything else (paper sizes in comments).
func fig01Hierarchy(levels int) sim.Config {
	c := sim.DefaultConfig()
	// Private-L2-class cache (paper: 1MB, 14 cycles).
	c.L2Bytes = 128 << 10
	c.L2Ways = 8
	c.L2Lat = 14
	c.L3Bytes = 0
	c.DRAMBytes = 0
	if levels >= 3 { // paper: +16MB L3, 44 cycles
		c.L3Bytes = 1 << 20
		c.L3Ways = 16
		c.L3Lat = 44
	}
	if levels >= 4 { // paper: +128MB L4, 82 cycles
		c.DRAMBytes = 4 << 20
		c.DRAMLat = 82
	}
	if levels >= 5 { // paper: +4GB DRAM cache
		c.DRAMBytes = 8 << 20
		c.DRAMLat = 100
	}
	return c
}

func init() {
	registerExp("fig01", "CXL PMEM vs CXL DRAM slowdown with 2-5 cache levels",
		func(h *Harness) (*Report, error) {
			apps := workloads.MemIntensive()
			var vars []variant
			for lv := 2; lv <= 5; lv++ {
				cfg := fig01Hierarchy(lv).WithNVM(nvmtech.CXLD)
				ref := fig01Hierarchy(lv).WithNVM(nvmtech.DRAM)
				vars = append(vars, variant{
					name: fmt.Sprintf("%d-levels", lv),
					cfg:  cfg, sch: sim.Baseline(), pruned: true,
					baseCfg: ref, baseSch: sim.Baseline(),
				})
			}
			return h.slowdownReport("fig01",
				"CXL PMEM main memory normalized to CXL DRAM, deepening hierarchy",
				"2.14x at 2 levels dropping to 1.34x at 5 levels",
				apps, vars, h.Opt.PerApp)
		})

	registerExp("fig06", "average L1D write-buffer occupancy, baseline vs cWSP",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			rep := &Report{
				ID: "fig06", Title: "avg WB entries",
				Paper:   "both baseline and cWSP average 0.39 entries",
				Columns: []string{"baseline", "cwsp"},
				Summary: map[string]float64{},
			}
			var vb, vc []float64
			for _, w := range workloads.All() {
				sb, err := h.RunStats(w, cfg, sim.Baseline(), true)
				if err != nil {
					return nil, err
				}
				sc, err := h.RunStats(w, cfg, sim.CWSP(), true)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, Row{Label: w.Name, Suite: w.Suite,
					Vals: []float64{sb.WBAvgOcc, sc.WBAvgOcc}})
				vb = append(vb, sb.WBAvgOcc)
				vc = append(vc, sc.WBAvgOcc)
			}
			rep.Summary["mean:baseline"] = stats.Mean(vb)
			rep.Summary["mean:cwsp"] = stats.Mean(vc)
			return rep, nil
		})

	registerExp("fig08", "WPQ hits per 1M instructions",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			rep := &Report{
				ID: "fig08", Title: "WPQ HPMI under cWSP",
				Paper:   "0.98 hits per million instructions on average",
				Columns: []string{"hpmi"},
				Summary: map[string]float64{},
			}
			var all []float64
			for _, w := range workloads.All() {
				st, err := h.RunStats(w, cfg, sim.CWSP(), true)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, Row{Label: w.Name, Suite: w.Suite,
					Vals: []float64{st.WPQHPMI()}})
				all = append(all, st.WPQHPMI())
			}
			rep.Summary["mean"] = stats.Mean(all)
			return rep, nil
		})

	registerExp("fig13", "cWSP run-time overhead per application",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			return h.slowdownReport("fig13",
				"cWSP normalized to baseline (4 GB/s persist path)",
				"6% average overhead; SPLASH3 (lu, radix) worst",
				workloads.All(),
				[]variant{selfNormalized("cwsp", cfg, sim.CWSP(), true)},
				true)
		})

	registerExp("fig14", "cWSP vs ReplayCache and Capri",
		func(h *Harness) (*Report, error) {
			cfg4 := sim.DefaultConfig()
			cfg32 := sim.DefaultConfig().PersistPathGBs(32)
			vars := []variant{
				selfNormalized("replaycache", cfg4, schemes.ReplayCache(), true),
				selfNormalized("capri-4GB", cfg4, schemes.Capri(), true),
				selfNormalized("capri-32GB", cfg32, schemes.Capri(), true),
				selfNormalized("cwsp-4GB", cfg4, sim.CWSP(), true),
				selfNormalized("cwsp-32GB", cfg32, sim.CWSP(), true),
			}
			return h.slowdownReport("fig14",
				"WSP schemes normalized to baseline",
				"ReplayCache 4.3x; Capri 27% at 4GB/s, ~cWSP at 32GB/s; cWSP 6%",
				workloads.All(), vars, h.Opt.PerApp)
		})

	registerExp("fig15", "performance impact of each cWSP optimization",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			vars := []variant{
				selfNormalized("+regions", cfg, schemes.RegionOnly(), false),
				selfNormalized("+persistpath", cfg, schemes.PersistPath(), false),
				selfNormalized("+mcspec", cfg, schemes.MCSpec(), false),
				selfNormalized("+wbdelay", cfg, schemes.WBDelay(), false),
				selfNormalized("+wpqdelay", cfg, schemes.WPQDelay(), false),
				selfNormalized("+pruning", cfg, sim.CWSP(), true),
			}
			return h.slowdownReport("fig15",
				"cumulative optimization breakdown",
				"region formation 4%; +persist path 10%; spec/WB/WPQ flat; pruning down to 6%",
				workloads.All(), vars, true)
		})

	registerExp("fig17", "cWSP on CXL-based NVM devices (Table I)",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, t := range nvmtech.CXLDevices {
				cfg := sim.DefaultConfig().WithNVM(t)
				vars = append(vars, selfNormalized(t.Name, cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig17",
				"cWSP normalized to baseline on the same CXL device",
				"~4% average; slightly higher on faster devices",
				workloads.MemIntensive(), vars, true)
		})

	registerExp("fig18", "cWSP vs ideal partial-system persistence",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			vars := []variant{
				selfNormalized("cwsp", cfg, sim.CWSP(), true),
				// PSP runs with DRAM as main memory elsewhere (no DRAM
				// cache); normalized against the DRAM-cache baseline.
				{name: "psp-ideal", cfg: cfg, sch: schemes.PSPIdeal(), pruned: true,
					baseCfg: cfg, baseSch: sim.Baseline()},
			}
			return h.slowdownReport("fig18",
				"whole-system vs ideal partial-system persistence (BBB/eADR/LightPC)",
				"cWSP 3%; ideal PSP 52% (memory-intensive subset)",
				workloads.MemIntensive(), vars, true)
		})

	registerExp("fig19", "dynamic instructions per region",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			rep := &Report{
				ID: "fig19", Title: "average dynamic instructions per region",
				Paper:   "38.15 instructions per region on average",
				Columns: []string{"instr/region"},
				Summary: map[string]float64{},
			}
			var all []float64
			for _, w := range workloads.All() {
				st, err := h.RunStats(w, cfg, sim.CWSP(), true)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, Row{Label: w.Name, Suite: w.Suite,
					Vals: []float64{st.IPR()}})
				all = append(all, st.IPR())
			}
			rep.Summary["mean"] = stats.Mean(all)
			return rep, nil
		})

	registerExp("fig20", "cWSP with a deeper (3-level SRAM) hierarchy",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig().WithL3()
			return h.slowdownReport("fig20",
				"cWSP normalized to baseline, both with private L2 + shared L3",
				"8% average overhead",
				workloads.All(),
				[]variant{selfNormalized("cwsp-L3", cfg, sim.CWSP(), true)},
				h.Opt.PerApp)
		})

	registerExp("fig21", "sensitivity to persist-path bandwidth",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, gb := range []float64{1, 2, 4, 10, 20, 32} {
				cfg := sim.DefaultConfig().PersistPathGBs(gb)
				vars = append(vars, selfNormalized(fmt.Sprintf("%.0fGB", gb), cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig21",
				"cWSP slowdown, persist path 1..32 GB/s",
				"overhead falls with bandwidth; flat beyond 10 GB/s",
				workloads.All(), vars, false)
		})

	registerExp("fig22", "sensitivity to RBT size",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, n := range []int{8, 16, 32} {
				cfg := sim.DefaultConfig()
				cfg.RBTSize = n
				vars = append(vars, selfNormalized(fmt.Sprintf("RBT-%d", n), cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig22",
				"cWSP slowdown with varying RBT entries",
				"11% at 8 entries (20% SPLASH3), 6% at 16, 4% at 32",
				workloads.All(), vars, false)
		})

	registerExp("fig23", "sensitivity to persist-path latency",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, ns := range []int64{10, 20, 30, 40} {
				cfg := sim.DefaultConfig()
				cfg.PPOneWayLat = ns // 1 cycle = 0.5ns; one-way = ns at 2GHz/2
				vars = append(vars, selfNormalized(fmt.Sprintf("Lat-%d", ns), cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig23",
				"cWSP slowdown with 10..40ns persist-path latency",
				"almost fully overlapped by region execution at every latency",
				workloads.All(), vars, false)
		})

	registerExp("fig24", "sensitivity to L1D write-buffer size",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, n := range []int{8, 16, 32} {
				cfg := sim.DefaultConfig()
				cfg.WBSize = n
				vars = append(vars, selfNormalized(fmt.Sprintf("WB-%d", n), cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig24",
				"cWSP slowdown with varying WB size",
				"flat: the persist path outruns the regular path",
				workloads.All(), vars, false)
		})

	registerExp("fig25", "sensitivity to persist buffer size",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, n := range []int{20, 40, 50, 60} {
				cfg := sim.DefaultConfig()
				cfg.PBSize = n
				vars = append(vars, selfNormalized(fmt.Sprintf("PB-%d", n), cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig25",
				"cWSP slowdown with varying PB entries",
				"insensitive; at most 7% even with 20 entries",
				workloads.All(), vars, false)
		})

	registerExp("fig26", "sensitivity to WPQ size",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, n := range []int{8, 16, 24, 32} {
				cfg := sim.DefaultConfig()
				cfg.WPQSize = n
				vars = append(vars, selfNormalized(fmt.Sprintf("WPQ-%d", n), cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig26",
				"cWSP slowdown with varying WPQ entries",
				"11% at 8 entries (SPLASH3 up to 31%), flat at 24+",
				workloads.All(), vars, false)
		})

	registerExp("fig27", "sensitivity to NVM technology",
		func(h *Harness) (*Report, error) {
			var vars []variant
			for _, t := range []nvmtech.Tech{nvmtech.PMEM, nvmtech.STTMRAM, nvmtech.ReRAM} {
				cfg := sim.DefaultConfig().WithNVM(t)
				vars = append(vars, selfNormalized(t.Name, cfg, sim.CWSP(), true))
			}
			return h.slowdownReport("fig27",
				"cWSP slowdown across NVM technologies",
				"low everywhere; marginally higher relative overhead on faster NVM",
				workloads.All(), vars, false)
		})

	registerExp("hwcost", "hardware storage overhead (Section IX-N)",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			const rbtEntryBytes = 11 // RegionID+PendingWrs+MCBitVec+RS pointer (Figure 9)
			cwspBytes := float64(cfg.RBTSize * rbtEntryBytes)
			// Capri: (N+1) x M x 18KB with N MCs and M cores.
			capriPerCore := float64((cfg.NumMCs + 1) * 18 << 10)
			rep := &Report{
				ID: "hwcost", Title: "per-core storage overhead (bytes)",
				Paper:   "cWSP 176 B vs Capri 54 KB per core (346x)",
				Columns: []string{"bytes"},
				Summary: map[string]float64{},
			}
			rep.Rows = append(rep.Rows,
				Row{Label: "cwsp-rbt", Vals: []float64{cwspBytes}},
				Row{Label: "capri-buffers", Vals: []float64{capriPerCore}},
			)
			rep.Summary["capri/cwsp"] = capriPerCore / cwspBytes
			rep.Notes = append(rep.Notes,
				"cWSP's PB reuses the existing 1KB write-combining buffer (no new storage)")
			return rep, nil
		})

	registerExp("abl-ckpt", "ablation: checkpoint-optimizer ladder (this repo)",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			mk := func(name, mode string) variant {
				v := selfNormalized(name, cfg, sim.CWSP(), true)
				v.mode = mode
				return v
			}
			vars := []variant{
				mk("unpruned", "unpruned"),
				mk("chain0", "prune-chain0"),
				mk("chain1", "prune-chain1"),
				mk("no-hoist", "prune-nohoist"),
				mk("full", "pruned"),
			}
			return h.slowdownReport("abl-ckpt",
				"cWSP slowdown under increasingly capable checkpoint optimization",
				"(extension) pruning depth and hoisting each buy measurable overhead",
				workloads.All(), vars, false)
		})

	registerExp("abl-gran", "ablation: persist granularity 8B vs 64B (this repo)",
		func(h *Harness) (*Report, error) {
			gran64 := sim.CWSP()
			gran64.Name = "cwsp-64B"
			gran64.GranularityBytes = 64
			var vars []variant
			for _, gb := range []float64{1, 4, 32} {
				cfg := sim.DefaultConfig().PersistPathGBs(gb)
				vars = append(vars,
					selfNormalized(fmt.Sprintf("8B@%.0fGB", gb), cfg, sim.CWSP(), true),
					selfNormalized(fmt.Sprintf("64B@%.0fGB", gb), cfg, gran64, true))
			}
			return h.slowdownReport("abl-gran",
				"word- vs line-granularity persistence across path bandwidths",
				"(extension) the 8x bandwidth claim of Section V-A2 isolated",
				workloads.All(), vars, false)
		})

	registerExp("abl-log", "ablation: undo-log media traffic (this repo)",
		func(h *Harness) (*Report, error) {
			cfg := sim.DefaultConfig()
			free := sim.CWSP()
			free.Name = "cwsp-logfree"
			free.LogBytes = -1
			line := sim.CWSP()
			line.Name = "cwsp-linelog"
			line.LogBytes = 72 // full-line logging (Capri-style 64B + header)
			vars := []variant{
				selfNormalized("log-free", cfg, free, true),
				selfNormalized("log-16B", cfg, sim.CWSP(), true),
				selfNormalized("log-72B", cfg, line, true),
			}
			return h.slowdownReport("abl-log",
				"cost of MC-speculation undo logging at the NVM media",
				"(extension) word-granularity logs keep speculation nearly free",
				workloads.All(), vars, false)
		})

	registerExpDirect("mt", "multi-core scaling of cWSP overhead (this repo)",
		func(h *Harness) (*Report, error) {
			// Fixed total work (iterations split across threads) on the
			// lock-based critical-section benchmark; overhead of cWSP vs
			// the baseline at each core count.
			const totalIters = 4096
			rep := &Report{
				ID: "mt", Title: "cWSP slowdown vs baseline, 1..8 cores",
				Paper:   "(extension) the paper simulates 8 cores; sync drains are the MT cost",
				Columns: []string{"base-cycles", "cwsp-cycles", "slowdown"},
				Summary: map[string]float64{},
			}
			prog := workloads.BuildMTWorker()
			compiled, _, err := compiler.Compile(prog, compiler.DefaultOptions())
			if err != nil {
				return nil, err
			}
			div := int64(h.Opt.Scale.Div)
			for _, cores := range []int{1, 2, 4, 8} {
				iters := totalIters / int64(cores) / div
				if iters < 4 {
					iters = 4
				}
				var specs []sim.ThreadSpec
				for t := 0; t < cores; t++ {
					specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(t), iters}})
				}
				cfg := sim.DefaultConfig()
				cfg.Cores = cores
				run := func(p *ir.Program, sch sim.Scheme) (sim.Stats, error) {
					m, err := sim.NewThreaded(p, cfg, sch, specs)
					if err != nil {
						return sim.Stats{}, err
					}
					r, err := m.Run()
					if err != nil {
						return sim.Stats{}, err
					}
					return r.Stats, nil
				}
				base, err := run(prog, sim.Baseline())
				if err != nil {
					return nil, err
				}
				cw, err := run(compiled, sim.CWSP())
				if err != nil {
					return nil, err
				}
				sd := cw.Slowdown(base)
				rep.Rows = append(rep.Rows, Row{
					Label: fmt.Sprintf("%d-cores", cores),
					Vals:  []float64{float64(base.Cycles), float64(cw.Cycles), sd},
				})
				rep.Summary[fmt.Sprintf("slowdown:%d-cores", cores)] = sd
			}
			return rep, nil
		})

	registerExpDirect("compiler", "static compiler statistics (regions, checkpoints, pruning)",
		func(h *Harness) (*Report, error) {
			rep := &Report{
				ID: "compiler", Title: "regions and checkpoint pruning per workload",
				Paper:   "pruning eliminates redundant checkpoints (Section IV-C)",
				Columns: []string{"regions", "ckpt-inserted", "ckpt-final", "pruned%"},
				Summary: map[string]float64{},
			}
			var rates []float64
			for _, w := range workloads.All() {
				p := w.Build(h.Opt.Scale)
				_, cr, err := compiler.Compile(p, compiler.DefaultOptions())
				if err != nil {
					return nil, err
				}
				ins, fin := 0, 0
				for _, f := range cr.Funcs {
					ins += f.Ckpt.Inserted
					fin += f.Ckpt.Final
				}
				rate := 0.0
				if ins > 0 {
					rate = 100 * float64(ins-fin) / float64(ins)
				}
				rates = append(rates, rate)
				rep.Rows = append(rep.Rows, Row{Label: w.Name, Suite: w.Suite,
					Vals: []float64{float64(cr.TotalRegions()), float64(ins), float64(fin), rate}})
			}
			rep.Summary["mean-pruned%"] = stats.Mean(rates)
			return rep, nil
		})
}
