// Package bench is the experiment harness: one registered experiment per
// table/figure of the paper's evaluation (Section IX), each regenerating
// the same rows/series the paper reports. The absolute numbers come from
// this repo's scaled machine model; what must (and does) match the paper is
// the *shape* — who wins, by what rough factor, and where the crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/runner"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/stats"
	"cwsp/internal/telemetry/live"
	"cwsp/internal/workloads"
)

// Options configure a harness run.
type Options struct {
	Scale  workloads.Scale
	Log    io.Writer // progress output (nil = silent)
	PerApp bool      // emit per-app rows where the paper aggregates

	// Jobs is the worker-pool width RunExperiment fans simulation cells out
	// to: 0 = GOMAXPROCS, 1 = serial (no pool). Parallelism never changes
	// report bytes — cells are deterministic and rows are assembled by the
	// same serial code either way.
	Jobs int
	// CacheDir, when set, memoizes per-cell results on disk (see
	// internal/runner): repeated or interrupted sweeps are served from the
	// store instead of re-simulating.
	CacheDir string
	// Store, when set, is used instead of opening CacheDir: the experiment
	// service hands every campaign the daemon's shared store handle. The
	// harness does not close an injected store (Close only releases stores
	// the harness opened itself via CacheDir).
	Store *runner.Store
	// NoResume disables serving cells from an existing cache: everything is
	// recomputed and the store refreshed in place.
	NoResume bool
	// Bus, when set, receives live cell/flush/sim-progress events for the
	// -http observability endpoint (see internal/telemetry/live).
	Bus *live.Bus
	// Progress, when set, is shared with the pool (see
	// runner.Options.Progress): the service reads per-campaign pace from it
	// while the sweep runs.
	Progress *runner.Progress
}

// DefaultOptions runs at quick scale, silently.
func DefaultOptions() Options {
	return Options{Scale: workloads.Quick}
}

// Row is one labelled result row.
type Row struct {
	Label string
	Suite string
	Vals  []float64
}

// Report is one regenerated table/figure.
type Report struct {
	ID      string
	Title   string
	Paper   string // the paper's headline numbers, for the write-up
	Columns []string
	Rows    []Row
	Summary map[string]float64
	Notes   []string
}

// CSV renders the report as comma-separated values (header row first).
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("app")
	for _, c := range r.Columns {
		b.WriteString(",")
		b.WriteString(c)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		label := row.Label
		if row.Suite != "" {
			label = row.Suite + "/" + row.Label
		}
		b.WriteString(label)
		for _, v := range row.Vals {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders the report as fixed-width text.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	t := stats.NewTable(append([]string{"app"}, r.Columns...)...)
	for _, row := range r.Rows {
		cells := make([]interface{}, 0, len(row.Vals)+1)
		label := row.Label
		if row.Suite != "" {
			label = row.Suite + "/" + row.Label
		}
		cells = append(cells, label)
		for _, v := range row.Vals {
			cells = append(cells, v)
		}
		t.AddF(cells...)
	}
	b.WriteString(t.String())
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%-28s %.3f\n", k, r.Summary[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) (*Report, error)
	// Direct experiments drive the simulator (or compiler) directly instead
	// of through Harness.RunStats*, so RunExperiment cannot plan their cells
	// and runs them serially as-is.
	Direct bool
}

var experiments []Experiment

func registerExp(id, title string, run func(h *Harness) (*Report, error)) {
	experiments = append(experiments, Experiment{ID: id, Title: title, Run: run})
}

func registerExpDirect(id, title string, run func(h *Harness) (*Report, error)) {
	experiments = append(experiments, Experiment{ID: id, Title: title, Run: run, Direct: true})
}

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment {
	return append([]Experiment(nil), experiments...)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// Harness caches compiled programs and simulation results so experiments
// sharing runs (every figure needs baselines) stay cheap. All methods are
// safe for concurrent use: RunExperiment's worker pool calls back into the
// same caches the serial API reads.
type Harness struct {
	Opt Options

	mu       sync.Mutex // guards programs, results, plan
	programs map[progKey]*progOnce
	results  map[runKey]sim.Stats
	plan     *planState // non-nil while RunExperiment collects cells

	logMu sync.Mutex

	poolOnce   sync.Once
	pool       simPool // built lazily by RunExperiment
	poolErr    error
	ownedStore *runner.Store // opened from CacheDir; closed by Close
}

type progKey struct {
	app     string
	scale   string
	compile string // "", "pruned", "unpruned"
}

type runKey struct {
	app     string
	scale   string
	compile string
	scheme  string
	cfgSig  string
}

// progOnce builds one program variant exactly once, without holding the
// harness lock across the (potentially slow) build+compile: concurrent
// cells needing the same program block on the once, not on each other's
// unrelated compiles.
type progOnce struct {
	once sync.Once
	p    *ir.Program
	err  error
}

// NewHarness builds a harness.
func NewHarness(opt Options) *Harness {
	if opt.Scale.Div == 0 {
		opt.Scale = workloads.Quick
	}
	return &Harness{
		Opt:      opt,
		programs: map[progKey]*progOnce{},
		results:  map[runKey]sim.Stats{},
	}
}

// jobs returns the effective worker count RunExperiment uses.
func (h *Harness) jobs() int {
	if h.Opt.Jobs <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return h.Opt.Jobs
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Opt.Log == nil {
		return
	}
	h.logMu.Lock()
	defer h.logMu.Unlock()
	fmt.Fprintf(h.Opt.Log, format, args...)
}

// compileModes names the compiler-option variants the harness can build;
// "" is the original uninstrumented binary.
var compileModes = map[string]compiler.Options{
	"pruned":        compiler.DefaultOptions(),
	"unpruned":      {PruneCheckpoints: false, ChainDepth: -1},
	"prune-nohoist": {PruneCheckpoints: true, HoistCheckpoints: false, ChainDepth: -1},
	"prune-chain0":  {PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 0},
	"prune-chain1":  {PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 1},
}

// program builds (and caches) the workload program in the given compile
// mode: "" = original binary, otherwise a compileModes entry. Concurrent
// callers build each variant exactly once; the returned program is only
// ever read after that, so parallel simulations may share it.
func (h *Harness) program(w workloads.Workload, compile string) (*ir.Program, error) {
	key := progKey{w.Name, h.Opt.Scale.Name, compile}
	h.mu.Lock()
	po, ok := h.programs[key]
	if !ok {
		po = &progOnce{}
		h.programs[key] = po
	}
	h.mu.Unlock()
	po.once.Do(func() {
		p := w.Build(h.Opt.Scale)
		if compile != "" {
			co, ok := compileModes[compile]
			if !ok {
				po.err = fmt.Errorf("bench: unknown compile mode %q", compile)
				return
			}
			p, _, po.err = compiler.Compile(p, co)
			if po.err != nil {
				return
			}
		}
		po.p = p
	})
	return po.p, po.err
}

func cfgSig(c sim.Config) string {
	return fmt.Sprintf("%+v", c)
}

// compileModeFor picks the program variant a scheme executes.
func compileModeFor(s sim.Scheme, pruned bool) string {
	if !schemes.NeedsCompiledProgram(s) {
		return ""
	}
	if pruned {
		return "pruned"
	}
	return "unpruned"
}

// RunStats runs (with caching) one workload under a scheme/config.
func (h *Harness) RunStats(w workloads.Workload, cfg sim.Config, sch sim.Scheme, pruned bool) (sim.Stats, error) {
	return h.RunStatsMode(w, cfg, sch, compileModeFor(sch, pruned))
}

// RunStatsMode runs with an explicit compile mode (see compileModes).
// While RunExperiment's planning pass is active it records the cell and
// returns zero stats instead of simulating; experiment bodies never branch
// on stat values, so the dry run walks the same cell set the real pass
// will read.
func (h *Harness) RunStatsMode(w workloads.Workload, cfg sim.Config, sch sim.Scheme, mode string) (sim.Stats, error) {
	cfg = schemes.ConfigFor(sch, cfg)
	key := runKey{w.Name, h.Opt.Scale.Name, mode, sch.Name, cfgSig(cfg)}
	h.mu.Lock()
	if st, ok := h.results[key]; ok {
		h.mu.Unlock()
		return st, nil
	}
	if h.plan != nil {
		h.plan.add(key, w, cfg, sch, mode)
		h.mu.Unlock()
		return sim.Stats{}, nil
	}
	h.mu.Unlock()

	st, err := h.simulate(w, cfg, sch, mode)
	if err != nil {
		return sim.Stats{}, err
	}
	h.mu.Lock()
	h.results[key] = st
	h.mu.Unlock()
	h.logf("  %-10s %-16s %12d cyc\n", w.Name, sch.Name, st.Cycles)
	return st, nil
}

// simulate compiles (cached) and runs one cell, bypassing the result cache.
// cfg must already be scheme-adjusted (schemes.ConfigFor).
func (h *Harness) simulate(w workloads.Workload, cfg sim.Config, sch sim.Scheme, mode string) (sim.Stats, error) {
	p, err := h.program(w, mode)
	if err != nil {
		return sim.Stats{}, err
	}
	m, err := sim.New(p, cfg, sch)
	if err != nil {
		return sim.Stats{}, fmt.Errorf("%s/%s: %w", w.Name, sch.Name, err)
	}
	// Long cells report instruction progress to the live endpoint; a nil
	// bus keeps the kernel's disabled path branch-identical to before.
	m.SetLiveBus(h.Opt.Bus)
	res, err := m.Run()
	if err != nil {
		return sim.Stats{}, fmt.Errorf("%s/%s: %w", w.Name, sch.Name, err)
	}
	return res.Stats, nil
}

// Slowdown returns cycles(scheme)/cycles(baseline) for one workload, where
// the baseline runs the original binary on the same config (or on baseCfg
// when it differs, e.g. Figure 1's DRAM-main-memory reference).
func (h *Harness) Slowdown(w workloads.Workload, cfg sim.Config, sch sim.Scheme, pruned bool) (float64, error) {
	return h.SlowdownVs(w, cfg, sch, pruned, cfg, sim.Baseline())
}

// SlowdownVs normalizes against an explicit reference config/scheme.
func (h *Harness) SlowdownVs(w workloads.Workload, cfg sim.Config, sch sim.Scheme, pruned bool, baseCfg sim.Config, baseSch sim.Scheme) (float64, error) {
	return h.SlowdownVsMode(w, cfg, sch, compileModeFor(sch, pruned), baseCfg, baseSch)
}

// SlowdownVsMode is SlowdownVs with an explicit compile mode.
func (h *Harness) SlowdownVsMode(w workloads.Workload, cfg sim.Config, sch sim.Scheme, mode string, baseCfg sim.Config, baseSch sim.Scheme) (float64, error) {
	st, err := h.RunStatsMode(w, cfg, sch, mode)
	if err != nil {
		return 0, err
	}
	base, err := h.RunStats(w, baseCfg, baseSch, true)
	if err != nil {
		return 0, err
	}
	return st.Slowdown(base), nil
}
