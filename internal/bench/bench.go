// Package bench is the experiment harness: one registered experiment per
// table/figure of the paper's evaluation (Section IX), each regenerating
// the same rows/series the paper reports. The absolute numbers come from
// this repo's scaled machine model; what must (and does) match the paper is
// the *shape* — who wins, by what rough factor, and where the crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/stats"
	"cwsp/internal/workloads"
)

// Options configure a harness run.
type Options struct {
	Scale  workloads.Scale
	Log    io.Writer // progress output (nil = silent)
	PerApp bool      // emit per-app rows where the paper aggregates
}

// DefaultOptions runs at quick scale, silently.
func DefaultOptions() Options {
	return Options{Scale: workloads.Quick}
}

// Row is one labelled result row.
type Row struct {
	Label string
	Suite string
	Vals  []float64
}

// Report is one regenerated table/figure.
type Report struct {
	ID      string
	Title   string
	Paper   string // the paper's headline numbers, for the write-up
	Columns []string
	Rows    []Row
	Summary map[string]float64
	Notes   []string
}

// CSV renders the report as comma-separated values (header row first).
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString("app")
	for _, c := range r.Columns {
		b.WriteString(",")
		b.WriteString(c)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		label := row.Label
		if row.Suite != "" {
			label = row.Suite + "/" + row.Label
		}
		b.WriteString(label)
		for _, v := range row.Vals {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table renders the report as fixed-width text.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	t := stats.NewTable(append([]string{"app"}, r.Columns...)...)
	for _, row := range r.Rows {
		cells := make([]interface{}, 0, len(row.Vals)+1)
		label := row.Label
		if row.Suite != "" {
			label = row.Suite + "/" + row.Label
		}
		cells = append(cells, label)
		for _, v := range row.Vals {
			cells = append(cells, v)
		}
		t.AddF(cells...)
	}
	b.WriteString(t.String())
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%-28s %.3f\n", k, r.Summary[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(h *Harness) (*Report, error)
}

var experiments []Experiment

func registerExp(id, title string, run func(h *Harness) (*Report, error)) {
	experiments = append(experiments, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment {
	return append([]Experiment(nil), experiments...)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// Harness caches compiled programs and simulation results so experiments
// sharing runs (every figure needs baselines) stay cheap.
type Harness struct {
	Opt      Options
	programs map[progKey]*ir.Program
	results  map[runKey]sim.Stats
}

type progKey struct {
	app     string
	scale   string
	compile string // "", "pruned", "unpruned"
}

type runKey struct {
	app     string
	scale   string
	compile string
	scheme  string
	cfgSig  string
}

// NewHarness builds a harness.
func NewHarness(opt Options) *Harness {
	if opt.Scale.Div == 0 {
		opt.Scale = workloads.Quick
	}
	return &Harness{
		Opt:      opt,
		programs: map[progKey]*ir.Program{},
		results:  map[runKey]sim.Stats{},
	}
}

func (h *Harness) logf(format string, args ...interface{}) {
	if h.Opt.Log != nil {
		fmt.Fprintf(h.Opt.Log, format, args...)
	}
}

// compileModes names the compiler-option variants the harness can build;
// "" is the original uninstrumented binary.
var compileModes = map[string]compiler.Options{
	"pruned":        compiler.DefaultOptions(),
	"unpruned":      {PruneCheckpoints: false, ChainDepth: -1},
	"prune-nohoist": {PruneCheckpoints: true, HoistCheckpoints: false, ChainDepth: -1},
	"prune-chain0":  {PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 0},
	"prune-chain1":  {PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 1},
}

// program builds (and caches) the workload program in the given compile
// mode: "" = original binary, otherwise a compileModes entry.
func (h *Harness) program(w workloads.Workload, compile string) (*ir.Program, error) {
	key := progKey{w.Name, h.Opt.Scale.Name, compile}
	if p, ok := h.programs[key]; ok {
		return p, nil
	}
	p := w.Build(h.Opt.Scale)
	if compile != "" {
		co, ok := compileModes[compile]
		if !ok {
			return nil, fmt.Errorf("bench: unknown compile mode %q", compile)
		}
		var err error
		p, _, err = compiler.Compile(p, co)
		if err != nil {
			return nil, err
		}
	}
	h.programs[key] = p
	return p, nil
}

func cfgSig(c sim.Config) string {
	return fmt.Sprintf("%+v", c)
}

// compileModeFor picks the program variant a scheme executes.
func compileModeFor(s sim.Scheme, pruned bool) string {
	if !schemes.NeedsCompiledProgram(s) {
		return ""
	}
	if pruned {
		return "pruned"
	}
	return "unpruned"
}

// RunStats runs (with caching) one workload under a scheme/config.
func (h *Harness) RunStats(w workloads.Workload, cfg sim.Config, sch sim.Scheme, pruned bool) (sim.Stats, error) {
	return h.RunStatsMode(w, cfg, sch, compileModeFor(sch, pruned))
}

// RunStatsMode runs with an explicit compile mode (see compileModes).
func (h *Harness) RunStatsMode(w workloads.Workload, cfg sim.Config, sch sim.Scheme, mode string) (sim.Stats, error) {
	cfg = schemes.ConfigFor(sch, cfg)
	key := runKey{w.Name, h.Opt.Scale.Name, mode, sch.Name, cfgSig(cfg)}
	if st, ok := h.results[key]; ok {
		return st, nil
	}
	p, err := h.program(w, mode)
	if err != nil {
		return sim.Stats{}, err
	}
	m, err := sim.New(p, cfg, sch)
	if err != nil {
		return sim.Stats{}, fmt.Errorf("%s/%s: %w", w.Name, sch.Name, err)
	}
	res, err := m.Run()
	if err != nil {
		return sim.Stats{}, fmt.Errorf("%s/%s: %w", w.Name, sch.Name, err)
	}
	h.results[key] = res.Stats
	h.logf("  %-10s %-16s %12d cyc\n", w.Name, sch.Name, res.Stats.Cycles)
	return res.Stats, nil
}

// Slowdown returns cycles(scheme)/cycles(baseline) for one workload, where
// the baseline runs the original binary on the same config (or on baseCfg
// when it differs, e.g. Figure 1's DRAM-main-memory reference).
func (h *Harness) Slowdown(w workloads.Workload, cfg sim.Config, sch sim.Scheme, pruned bool) (float64, error) {
	return h.SlowdownVs(w, cfg, sch, pruned, cfg, sim.Baseline())
}

// SlowdownVs normalizes against an explicit reference config/scheme.
func (h *Harness) SlowdownVs(w workloads.Workload, cfg sim.Config, sch sim.Scheme, pruned bool, baseCfg sim.Config, baseSch sim.Scheme) (float64, error) {
	return h.SlowdownVsMode(w, cfg, sch, compileModeFor(sch, pruned), baseCfg, baseSch)
}

// SlowdownVsMode is SlowdownVs with an explicit compile mode.
func (h *Harness) SlowdownVsMode(w workloads.Workload, cfg sim.Config, sch sim.Scheme, mode string, baseCfg sim.Config, baseSch sim.Scheme) (float64, error) {
	st, err := h.RunStatsMode(w, cfg, sch, mode)
	if err != nil {
		return 0, err
	}
	base, err := h.RunStats(w, baseCfg, baseSch, true)
	if err != nil {
		return 0, err
	}
	return st.Slowdown(base), nil
}
