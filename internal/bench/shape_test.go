package bench

import (
	"testing"

	"cwsp/internal/workloads"
)

// harness shared by shape tests (smoke scale keeps CI fast; run caching
// makes the marginal cost of later tests small).
var shapeH = NewHarness(Options{Scale: workloads.Smoke})

func runExp(t *testing.T, id string) *Report {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(shapeH)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	t.Logf("\n%s", rep.Table())
	return rep
}

// col returns the named column's value from the row with the given label
// (suite-qualified rows use Suite+Label matching).
func col(t *testing.T, rep *Report, suite, label, column string) float64 {
	t.Helper()
	ci := -1
	for i, c := range rep.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no column %q in %v", column, rep.Columns)
	}
	for _, r := range rep.Rows {
		if r.Label == label && (suite == "" || r.Suite == suite) {
			return r.Vals[ci]
		}
	}
	t.Fatalf("no row %s/%s", suite, label)
	return 0
}

// TestFig13Shape: the headline result — low average overhead, worst in
// SPLASH3-like store-heavy code.
func TestFig13Shape(t *testing.T) {
	rep := runExp(t, "fig13")
	g := rep.Summary["gmean:cwsp"]
	if g < 1.0 || g > 1.15 {
		t.Errorf("cWSP overall gmean %.3f outside the paper's ballpark (1.00-1.15)", g)
	}
	splash := col(t, rep, "SPLASH3", "gmean", "cwsp")
	cpu06 := col(t, rep, "CPU2006", "gmean", "cwsp")
	if splash < cpu06 {
		t.Errorf("SPLASH3 (%.3f) should exceed CPU2006 (%.3f) — the paper's worst suite", splash, cpu06)
	}
}

// TestFig14Shape: prior-work ordering — ReplayCache >> Capri-4GB > cWSP;
// Capri approaches cWSP at 32 GB/s.
func TestFig14Shape(t *testing.T) {
	rep := runExp(t, "fig14")
	rc := rep.Summary["gmean:replaycache"]
	c4 := rep.Summary["gmean:capri-4GB"]
	c32 := rep.Summary["gmean:capri-32GB"]
	w4 := rep.Summary["gmean:cwsp-4GB"]
	w32 := rep.Summary["gmean:cwsp-32GB"]
	if !(rc > c4 && c4 > w4) {
		t.Errorf("ordering broken: replaycache %.3f, capri-4GB %.3f, cwsp-4GB %.3f", rc, c4, w4)
	}
	if rc < 1.5 {
		t.Errorf("ReplayCache %.3f should be dramatically slower (paper: 4.3x)", rc)
	}
	if c32-w32 > 0.10 {
		t.Errorf("Capri at 32GB/s (%.3f) should be near cWSP (%.3f)", c32, w32)
	}
}

// fullH runs memory-intensive experiments at full scale, where the DRAM
// cache warms up (the signal Figures 1/17/18 rely on).
var fullH = NewHarness(Options{Scale: workloads.Full})

func runExpFull(t *testing.T, id string) *Report {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale experiment; skipped with -short")
	}
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(fullH)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Table())
	return rep
}

// TestFig18Shape: ideal PSP pays heavily for losing the DRAM cache.
func TestFig18Shape(t *testing.T) {
	rep := runExpFull(t, "fig18")
	cw := rep.Summary["gmean:cwsp"]
	psp := rep.Summary["gmean:psp-ideal"]
	if psp < cw+0.10 {
		t.Errorf("ideal PSP (%.3f) should be far above cWSP (%.3f) — paper: 52%% vs 3%%", psp, cw)
	}
}

// TestFig01Shape: slowdown shrinks monotonically-ish with hierarchy depth.
func TestFig01Shape(t *testing.T) {
	rep := runExpFull(t, "fig01")
	l2 := rep.Summary["gmean:2-levels"]
	l5 := rep.Summary["gmean:5-levels"]
	if l5 >= l2 {
		t.Errorf("deeper hierarchy should shrink the NVM penalty: 2-level %.3f vs 5-level %.3f", l2, l5)
	}
	if l2 < 1.2 {
		t.Errorf("2-level NVM penalty %.3f too small to be meaningful", l2)
	}
}

// TestFig21Shape: overhead falls as persist bandwidth rises, flat at the top.
func TestFig21Shape(t *testing.T) {
	rep := runExp(t, "fig21")
	b1 := rep.Summary["gmean:1GB"]
	b4 := rep.Summary["gmean:4GB"]
	b32 := rep.Summary["gmean:32GB"]
	if !(b1 >= b4 && b4 >= b32-0.005) {
		t.Errorf("bandwidth trend broken: 1GB %.3f, 4GB %.3f, 32GB %.3f", b1, b4, b32)
	}
}

// TestFig22Shape: small RBT hurts; big RBT helps.
func TestFig22Shape(t *testing.T) {
	rep := runExp(t, "fig22")
	r8 := rep.Summary["gmean:RBT-8"]
	r32 := rep.Summary["gmean:RBT-32"]
	if r8 < r32 {
		t.Errorf("RBT-8 (%.3f) should be no faster than RBT-32 (%.3f)", r8, r32)
	}
}

// TestFig26Shape: small WPQ hurts.
func TestFig26Shape(t *testing.T) {
	rep := runExp(t, "fig26")
	w8 := rep.Summary["gmean:WPQ-8"]
	w24 := rep.Summary["gmean:WPQ-24"]
	if w8 < w24 {
		t.Errorf("WPQ-8 (%.3f) should be no faster than WPQ-24 (%.3f)", w8, w24)
	}
}

// TestFig15Shape: the ablation ladder is sane — region formation alone is
// cheap; adding the persist path costs more; pruning recovers.
func TestFig15Shape(t *testing.T) {
	rep := runExp(t, "fig15")
	rf := rep.Summary["gmean:+regions"]
	pp := rep.Summary["gmean:+persistpath"]
	pr := rep.Summary["gmean:+pruning"]
	if rf > pp {
		t.Errorf("+regions (%.3f) should not exceed +persistpath (%.3f)", rf, pp)
	}
	if pr > pp {
		t.Errorf("+pruning (%.3f) should not exceed unpruned persistence (%.3f)", pr, pp)
	}
}

// TestHWCost: the static storage numbers (paper Section IX-N).
func TestHWCost(t *testing.T) {
	rep := runExp(t, "hwcost")
	if v := col(t, rep, "", "cwsp-rbt", "bytes"); v != 176 {
		t.Errorf("RBT bytes = %v, want 176", v)
	}
	if r := rep.Summary["capri/cwsp"]; r < 100 {
		t.Errorf("Capri/cWSP storage ratio %.0f implausibly low", r)
	}
}

// TestAblationShapes: the repo's own ablations must show their designed
// signals.
func TestAblationShapes(t *testing.T) {
	gran := runExp(t, "abl-gran")
	if g8, g64 := gran.Summary["gmean:8B@4GB"], gran.Summary["gmean:64B@4GB"]; g64 < g8+0.05 {
		t.Errorf("64B persistence (%.3f) should cost clearly more than 8B (%.3f) at 4GB/s", g64, g8)
	}
	lg := runExp(t, "abl-log")
	if free, line := lg.Summary["gmean:log-free"], lg.Summary["gmean:log-72B"]; line < free {
		t.Errorf("line-sized logs (%.3f) should not beat free logging (%.3f)", line, free)
	}
	ck := runExp(t, "abl-ckpt")
	if up, full := ck.Summary["gmean:unpruned"], ck.Summary["gmean:full"]; full > up {
		t.Errorf("full optimizer (%.3f) should not exceed unpruned (%.3f)", full, up)
	}
}

// TestMTScalingShape: baseline scales with cores; cWSP's sync drains make
// lock-heavy code pay more at higher core counts.
func TestMTScalingShape(t *testing.T) {
	rep := runExp(t, "mt")
	s1 := rep.Summary["slowdown:1-cores"]
	s8 := rep.Summary["slowdown:8-cores"]
	if s8 < s1 {
		t.Errorf("8-core slowdown (%.3f) should exceed 1-core (%.3f) under lock contention", s8, s1)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig01", "fig06", "fig08", "fig13", "fig14", "fig15",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
		"fig25", "fig26", "fig27", "hwcost", "compiler", "abl-ckpt", "abl-gran",
		"abl-log", "mt"} {
		if !ids[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID should fail for unknown experiments")
	}
}
