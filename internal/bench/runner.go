package bench

import (
	"fmt"

	"cwsp/internal/runner"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry"
	"cwsp/internal/workloads"
)

// ResultsSalt is the code-version component of every cell's cache key. Bump
// it whenever the simulator, compiler, or workload generators change
// results: every previously cached cell is invalidated at once (old shards
// are orphaned by signature, not deleted). It is exported so run manifests
// and bench-trajectory records can tie a sweep to its cache generation.
const ResultsSalt = "cwsp-sim-v1"

const resultsSalt = ResultsSalt

// The threaded kernel's translation cache is keyed by the same salt: a
// bump that invalidates cached cells also drops compiled code.
func init() { sim.SetCodeSalt(ResultsSalt) }

// simPool is the cell executor every experiment of one harness shares.
type simPool = *runner.Pool[sim.Stats]

// planState is the ordered, deduplicated list of cells one experiment
// needs, collected by the planning dry run.
type planState struct {
	seen  map[runKey]bool
	cells []planCell
}

type planCell struct {
	key  runKey
	w    workloads.Workload
	cfg  sim.Config // already scheme-adjusted
	sch  sim.Scheme
	mode string
}

func (p *planState) add(key runKey, w workloads.Workload, cfg sim.Config, sch sim.Scheme, mode string) {
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	p.cells = append(p.cells, planCell{key: key, w: w, cfg: cfg, sch: sch, mode: mode})
}

// cellKey is the persistent content signature of one cell: workload
// identity and scale, compile mode, the full scheme and config structures
// (not just names — ablation schemes share names' prefixes but differ in
// fields), and the code-version salt.
func (h *Harness) cellKey(pc planCell) runner.Key {
	return runner.Key{
		Kind:     "sim",
		Workload: pc.w.Name,
		Scale:    h.Opt.Scale.Name,
		Compile:  pc.mode,
		Scheme:   fmt.Sprintf("%+v", pc.sch),
		CfgSig:   cfgSig(pc.cfg),
		Salt:     resultsSalt,
	}
}

// parallel reports whether RunExperiment routes cells through the pool.
func (h *Harness) parallel() bool {
	return h.jobs() > 1 || h.Opt.CacheDir != "" || h.Opt.Store != nil
}

// ensurePool lazily builds the shared pool. An injected Options.Store is
// used as-is (the experiment service shares one store across campaigns);
// otherwise CacheDir, when set, is opened here and owned by the harness
// (Close releases it). One pool serves every experiment of the harness,
// so `cwspbench -exp all` shares workers, cache, and telemetry across the
// whole evaluation.
func (h *Harness) ensurePool() (simPool, error) {
	h.poolOnce.Do(func() {
		opts := runner.Options{
			Jobs:     h.jobs(),
			Reuse:    !h.Opt.NoResume,
			Log:      h.Opt.Log,
			Bus:      h.Opt.Bus,
			Progress: h.Opt.Progress,
		}
		switch {
		case h.Opt.Store != nil:
			opts.Store = h.Opt.Store
		case h.Opt.CacheDir != "":
			store, err := runner.OpenStore(h.Opt.CacheDir)
			if err != nil {
				h.poolErr = err
				return
			}
			store.SetBus(h.Opt.Bus)
			opts.Store = store
			h.ownedStore = store
		}
		pool := runner.NewPool[sim.Stats](opts)
		h.mu.Lock()
		h.pool = pool
		h.mu.Unlock()
	})
	return h.pool, h.poolErr
}

// LiveHistograms is the live.HistSource behind the -http /metrics
// endpoint: the pool's per-cell latency histogram, snapshotted per scrape
// so an HTTP client never races the workers. Nil before any experiment
// has gone through the pool.
func (h *Harness) LiveHistograms() map[string]*telemetry.Histogram {
	h.mu.Lock()
	pool := h.pool
	h.mu.Unlock()
	if pool == nil {
		return nil
	}
	return map[string]*telemetry.Histogram{
		"cell_latency_us": pool.Progress().LatencySnapshot(),
	}
}

// RunExperiment runs one experiment, fanning its simulation cells out to
// the worker pool (and serving them from the persistent store when one is
// configured). It is a two-phase execution: a planning dry run walks the
// experiment body with RunStats* recording cells instead of simulating;
// the pool then executes every cell; finally the body runs again against
// the now-warm result cache. The report is assembled by the same serial
// code in both phases, so its bytes are identical to a -jobs 1 run.
// Direct experiments (and jobs=1 with no cache) skip straight to the
// serial path.
func (h *Harness) RunExperiment(e Experiment) (*Report, error) {
	if e.Direct || !h.parallel() {
		return e.Run(h)
	}
	pool, err := h.ensurePool()
	if err != nil {
		return nil, err
	}

	// Phase 1: plan. The dry run returns zero stats for every uncached
	// cell; its report is discarded.
	h.mu.Lock()
	h.plan = &planState{seen: map[runKey]bool{}}
	h.mu.Unlock()
	_, planErr := e.Run(h)
	h.mu.Lock()
	plan := h.plan
	h.plan = nil
	h.mu.Unlock()
	if planErr != nil {
		return nil, fmt.Errorf("%s: planning: %w", e.ID, planErr)
	}

	// Phase 2: execute every cell on the pool.
	if len(plan.cells) > 0 {
		cells := make([]runner.Cell[sim.Stats], len(plan.cells))
		for i, pc := range plan.cells {
			pc := pc
			cells[i] = runner.Cell[sim.Stats]{
				Key: h.cellKey(pc),
				Run: func() (sim.Stats, error) {
					return h.simulate(pc.w, pc.cfg, pc.sch, pc.mode)
				},
			}
		}
		stats, err := pool.Run(cells)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		h.mu.Lock()
		for i, pc := range plan.cells {
			h.results[pc.key] = stats[i]
		}
		h.mu.Unlock()
	}

	// Phase 3: assemble the report from the warm cache.
	return e.Run(h)
}

// RunnerSummary digests the pool's cumulative telemetry for a manifest
// (nil when no experiment went through the pool).
func (h *Harness) RunnerSummary() *telemetry.RunnerInfo {
	if h.pool == nil {
		return nil
	}
	info := h.pool.Progress().Info(h.pool.Jobs())
	return &info
}

// Close flushes the persistent store and, when the harness opened it
// itself (CacheDir rather than an injected Options.Store), closes it and
// releases its directory lock. Call after the last experiment.
func (h *Harness) Close() error {
	if h.pool == nil {
		return nil
	}
	err := h.pool.Close()
	if h.ownedStore != nil {
		if cerr := h.ownedStore.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
