package bench

import (
	"testing"

	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

func runExperimentT(t *testing.T, h *Harness, id string) *Report {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestParallelReportBytesIdentical: the acceptance property of the runner —
// fanning cells out over a pool must not change a single report byte
// relative to the serial harness.
func TestParallelReportBytesIdentical(t *testing.T) {
	serial := NewHarness(Options{Scale: workloads.Smoke, Jobs: 1})
	par := NewHarness(Options{Scale: workloads.Smoke, Jobs: 8})

	want := runExperimentT(t, serial, "fig13").CSV()
	got := runExperimentT(t, par, "fig13").CSV()
	if want != got {
		t.Fatalf("-jobs 8 report differs from serial:\nserial:\n%s\nparallel:\n%s", want, got)
	}

	ri := par.RunnerSummary()
	if ri == nil || ri.Executed == 0 {
		t.Fatalf("parallel run did not go through the pool: %+v", ri)
	}
	if ri.Cells != ri.CacheHits+ri.Shared+ri.Executed {
		t.Errorf("cell accounting: %d cells != %d hits + %d shared + %d executed",
			ri.Cells, ri.CacheHits, ri.Shared, ri.Executed)
	}
}

// TestCacheServesSecondRun: with a persistent store, a repeated harness run
// executes zero simulations — every cell is a cache hit — and still
// produces byte-identical output.
func TestCacheServesSecondRun(t *testing.T) {
	dir := t.TempDir()

	cold := NewHarness(Options{Scale: workloads.Smoke, Jobs: 4, CacheDir: dir})
	want := runExperimentT(t, cold, "fig06").CSV()
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	cri := cold.RunnerSummary()
	if cri.Executed == 0 || cri.CacheHits != 0 {
		t.Fatalf("cold run: %+v", cri)
	}

	warm := NewHarness(Options{Scale: workloads.Smoke, Jobs: 4, CacheDir: dir})
	got := runExperimentT(t, warm, "fig06").CSV()
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatal("cached report differs from cold run")
	}
	wri := warm.RunnerSummary()
	if wri.Executed != 0 {
		t.Fatalf("warm run executed %d simulations, want 0 (%+v)", wri.Executed, wri)
	}
	if wri.CacheHits != wri.Cells || wri.Cells == 0 {
		t.Fatalf("warm run not fully served from the store: %+v", wri)
	}

	// NoResume refreshes: the store is ignored for reads.
	fresh := NewHarness(Options{Scale: workloads.Smoke, Jobs: 4, CacheDir: dir, NoResume: true})
	runExperimentT(t, fresh, "fig06")
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}
	if ri := fresh.RunnerSummary(); ri.CacheHits != 0 || ri.Executed == 0 {
		t.Fatalf("NoResume run: %+v", ri)
	}
}

// TestSharedPoolAcrossExperiments: one harness runs several experiments
// through one pool; cells computed by an earlier experiment (every figure
// needs baselines) are not recomputed by later ones.
func TestSharedPoolAcrossExperiments(t *testing.T) {
	h := NewHarness(Options{Scale: workloads.Smoke, Jobs: 4})
	runExperimentT(t, h, "fig06") // baseline + cwsp over all workloads
	after06 := h.RunnerSummary().Executed
	runExperimentT(t, h, "fig08") // cwsp over all workloads — fully warm
	after08 := h.RunnerSummary().Executed
	if after08 != after06 {
		t.Fatalf("fig08 re-executed %d cells already computed by fig06", after08-after06)
	}

	// fig19 reads the same cwsp runs again.
	runExperimentT(t, h, "fig19")
	if got := h.RunnerSummary().Executed; got != after06 {
		t.Fatalf("fig19 re-executed %d cells", got-after06)
	}
}

// TestDirectExperimentsBypassPool: experiments that drive the simulator
// directly still run (serially) under a parallel harness.
func TestDirectExperimentsBypassPool(t *testing.T) {
	h := NewHarness(Options{Scale: workloads.Smoke, Jobs: 4})
	rep := runExperimentT(t, h, "compiler")
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	if ri := h.RunnerSummary(); ri != nil && ri.Cells != 0 {
		t.Fatalf("direct experiment submitted %d cells", ri.Cells)
	}
}

// TestHarnessConcurrentAPIUse: the public RunStats path itself must be
// goroutine-safe (the latent bug the runner work fixed): many goroutines
// hammering the same workload/scheme must agree and compile it once.
func TestHarnessConcurrentAPIUse(t *testing.T) {
	h := NewHarness(Options{Scale: workloads.Smoke})
	w, err := workloads.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	type res struct {
		cycles int64
		err    error
	}
	const gor = 8
	ch := make(chan res, gor)
	for i := 0; i < gor; i++ {
		go func() {
			st, err := h.RunStats(w, cfg, sim.CWSP(), true)
			ch <- res{st.Cycles, err}
		}()
	}
	var first int64
	for i := 0; i < gor; i++ {
		r := <-ch
		if r.err != nil {
			t.Fatal(r.err)
		}
		if i == 0 {
			first = r.cycles
		} else if r.cycles != first {
			t.Fatalf("concurrent RunStats disagree: %d vs %d cycles", r.cycles, first)
		}
	}
}
