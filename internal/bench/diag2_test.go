package bench

import (
	"testing"

	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

func TestDiagDRAM(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	h := NewHarness(Options{Scale: workloads.Full})
	cfg := sim.DefaultConfig()
	for _, name := range []string{"xsbench", "lbm", "astar", "sps", "tatp", "pc"} {
		w, _ := workloads.ByName(name)
		sb, err := h.RunStats(w, cfg, sim.Baseline(), true)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := h.RunStats(w, cfg, schemes.PSPIdeal(), true)
		if err != nil {
			t.Fatal(err)
		}
		dramHR := 1 - float64(sb.DRAMMisses)/float64(sb.DRAMAccs+1)
		t.Logf("%-8s base cyc %9d l1miss %.3f l2accs %7d l2miss %6d dram accs %7d HR %.2f nvm %7d | psp cyc %9d (%.3f) nvm %7d",
			name, sb.Cycles, sb.L1DMissRate(), sb.L2Accs, sb.L2Misses, sb.DRAMAccs, dramHR, sb.NVMReads,
			sp.Cycles, float64(sp.Cycles)/float64(sb.Cycles), sp.NVMReads)
	}
}
