package bench

import (
	"fmt"
	"io"
	"time"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry/benchfmt"
	"cwsp/internal/workloads"
)

// kernelBenchCase is one cell of the kernel comparison matrix `make
// bench-kernel` measures: a workload at quick scale on one scheme and
// core count, timed as a full machine build + run under each optimized
// kernel. The list mirrors simtest's BenchmarkRunUntil so the go-test
// benchmarks and the recorded trajectory describe the same cells.
type kernelBenchCase struct {
	name          string
	scheme        string
	cores         int
	dispatchBound bool
	build         func() (*ir.Program, error)
}

func quickKernelWorkload(name string, compile bool) func() (*ir.Program, error) {
	return func() (*ir.Program, error) {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		p := w.Build(workloads.Quick)
		if compile {
			p, _, err = compiler.Compile(p, compiler.DefaultOptions())
			if err != nil {
				return nil, err
			}
		}
		return p, nil
	}
}

func kernelBenchCases() []kernelBenchCase {
	compiled := func() (*ir.Program, error) {
		p, _, err := compiler.Compile(workloads.BuildMTWorker(), compiler.DefaultOptions())
		return p, err
	}
	return []kernelBenchCase{
		{name: "tatp", scheme: "cwsp", cores: 1, build: quickKernelWorkload("tatp", true)},
		{name: "lbm", scheme: "cwsp", cores: 1, build: quickKernelWorkload("lbm", true)},
		{name: "sps", scheme: "cwsp", cores: 1, build: quickKernelWorkload("sps", true)},
		{name: "kmeans", scheme: "cwsp", cores: 1, build: quickKernelWorkload("kmeans", true)},
		{name: "xsbench", scheme: "base", cores: 1, build: quickKernelWorkload("xsbench", false)},
		{name: "compute", scheme: "base", cores: 1, dispatchBound: true,
			build: func() (*ir.Program, error) { return workloads.BuildComputeKernel(), nil }},
		{name: "mt", scheme: "cwsp", cores: 2, build: compiled},
		{name: "mt", scheme: "cwsp", cores: 4, build: compiled},
	}
}

// kernelBatchTarget is the minimum wall time of one measurement batch;
// short cells repeat within a batch so a single timer read covers many
// runs.
const kernelBatchTarget = 60 * time.Millisecond

// RunKernelBench measures every kernel comparison cell and returns the
// profile for the BENCH_kernel.json trajectory. Per cell it alternates
// batched/threaded measurement batches `reps` times and keeps each
// kernel's best batch — back-to-back alternation exposes both kernels to
// the same machine noise, and best-of damps co-tenancy dips, so the
// speedup column is as close to a pure dispatch comparison as a
// wall-clock measurement gets. It also cross-checks the equivalence
// contract cheaply: both kernels must report identical simulated cycle
// and instruction counts for every cell.
func RunKernelBench(reps int, log io.Writer) (*benchfmt.KernelProfile, error) {
	if reps <= 0 {
		reps = 3
	}
	prof := &benchfmt.KernelProfile{}
	for _, bc := range kernelBenchCases() {
		p, err := bc.build()
		if err != nil {
			return nil, fmt.Errorf("kernel bench %s: %w", bc.name, err)
		}
		sch, ok := schemes.ByName(bc.scheme)
		if !ok {
			return nil, fmt.Errorf("kernel bench %s: unknown scheme %s", bc.name, bc.scheme)
		}
		specs := []sim.ThreadSpec{{Fn: p.Entry}}
		if bc.name == "mt" {
			specs = nil
			for i := 0; i < bc.cores; i++ {
				specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(i), 600}})
			}
		}
		run := func(kernel sim.KernelKind) (sim.Stats, error) {
			cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
			cfg.Kernel = kernel
			m, err := sim.NewThreaded(p, cfg, sch, specs)
			if err != nil {
				return sim.Stats{}, err
			}
			res, err := m.Run()
			if err != nil {
				return sim.Stats{}, err
			}
			return res.Stats, nil
		}
		// Warm both kernels once: pools, paged memory, and (threaded) the
		// translation cache all populate outside the timed batches.
		bs, err := run(sim.KernelBatched)
		if err != nil {
			return nil, fmt.Errorf("kernel bench %s (batched): %w", bc.name, err)
		}
		ts, err := run(sim.KernelThreaded)
		if err != nil {
			return nil, fmt.Errorf("kernel bench %s (threaded): %w", bc.name, err)
		}
		if bs.Cycles != ts.Cycles || bs.Instrs != ts.Instrs {
			return nil, fmt.Errorf("kernel bench %s: kernels diverged (batched %d cycles/%d instrs, threaded %d/%d)",
				bc.name, bs.Cycles, bs.Instrs, ts.Cycles, ts.Instrs)
		}
		batch := func(kernel sim.KernelKind) (float64, error) {
			var n int64
			start := time.Now()
			for elapsed := time.Duration(0); n == 0 || elapsed < kernelBatchTarget; {
				if _, err := run(kernel); err != nil {
					return 0, err
				}
				n++
				elapsed = time.Since(start)
			}
			return float64(bs.Instrs*n) / float64(time.Since(start).Nanoseconds()) * 1e3, nil
		}
		var bestB, bestT float64
		for r := 0; r < reps; r++ {
			tb, err := batch(sim.KernelBatched)
			if err != nil {
				return nil, fmt.Errorf("kernel bench %s (batched): %w", bc.name, err)
			}
			tt, err := batch(sim.KernelThreaded)
			if err != nil {
				return nil, fmt.Errorf("kernel bench %s (threaded): %w", bc.name, err)
			}
			if tb > bestB {
				bestB = tb
			}
			if tt > bestT {
				bestT = tt
			}
		}
		cell := benchfmt.KernelCell{
			Name:            fmt.Sprintf("%s_%s_x%d", bc.name, bc.scheme, bc.cores),
			Cycles:          bs.Cycles,
			Instrs:          bs.Instrs,
			BatchedMinstrS:  bestB,
			ThreadedMinstrS: bestT,
			DispatchBound:   bc.dispatchBound,
		}
		if bestB > 0 {
			cell.Speedup = bestT / bestB
		}
		if log != nil {
			fmt.Fprintf(log, "kernel %-18s batched %8.2f Minstr/s  threaded %8.2f Minstr/s  speedup %.2fx\n",
				cell.Name, cell.BatchedMinstrS, cell.ThreadedMinstrS, cell.Speedup)
		}
		prof.Cells = append(prof.Cells, cell)
	}
	return prof, nil
}
