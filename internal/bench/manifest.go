package bench

import "cwsp/internal/telemetry"

// TelemetryReport converts the report into the manifest schema's report
// shape: suite-qualified row labels, same columns and summary. Used by
// cwspbench -metrics-out to collect whole-evaluation runs into one
// machine-readable artifact.
func (r *Report) TelemetryReport() telemetry.BenchReport {
	out := telemetry.BenchReport{
		ID:      r.ID,
		Title:   r.Title,
		Columns: r.Columns,
		Summary: r.Summary,
	}
	for _, row := range r.Rows {
		label := row.Label
		if row.Suite != "" {
			label = row.Suite + "/" + row.Label
		}
		out.Rows = append(out.Rows, telemetry.BenchRow{Label: label, Vals: row.Vals})
	}
	return out
}
