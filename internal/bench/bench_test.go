package bench

import (
	"strings"
	"testing"

	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

func TestHarnessCachesRuns(t *testing.T) {
	h := NewHarness(Options{Scale: workloads.Smoke})
	w, err := workloads.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	a, err := h.RunStats(w, cfg, sim.Baseline(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.results) != 1 {
		t.Fatalf("expected 1 cached result, got %d", len(h.results))
	}
	b, err := h.RunStats(w, cfg, sim.Baseline(), true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached result differs")
	}
	if len(h.results) != 1 {
		t.Errorf("cache grew on a repeat run: %d entries", len(h.results))
	}
	// A different config is a different key.
	cfg2 := cfg
	cfg2.RBTSize = 8
	if _, err := h.RunStats(w, cfg2, sim.CWSP(), true); err != nil {
		t.Fatal(err)
	}
	if len(h.results) != 2 {
		t.Errorf("expected 2 cached results, got %d", len(h.results))
	}
}

func TestHarnessCompileModes(t *testing.T) {
	h := NewHarness(Options{Scale: workloads.Smoke})
	w, _ := workloads.ByName("gobmk")
	p1, err := h.program(w, "")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := h.program(w, "pruned")
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("compile modes must produce distinct programs")
	}
	if p1.Funcs["main"].NumRegions != 0 {
		t.Error("original binary must have no regions")
	}
	if p2.Funcs["main"].NumRegions == 0 {
		t.Error("compiled binary must have regions")
	}
	if _, err := h.program(w, "weird"); err == nil {
		t.Error("unknown compile mode should fail")
	}
}

func TestSlowdownVsBaseline(t *testing.T) {
	h := NewHarness(Options{Scale: workloads.Smoke})
	w, _ := workloads.ByName("lu-cg")
	cfg := sim.DefaultConfig()
	sd, err := h.Slowdown(w, cfg, sim.CWSP(), true)
	if err != nil {
		t.Fatal(err)
	}
	if sd < 0.95 || sd > 3 {
		t.Errorf("lu-cg cWSP slowdown %.3f implausible", sd)
	}
	one, err := h.Slowdown(w, cfg, sim.Baseline(), true)
	if err != nil {
		t.Fatal(err)
	}
	if one != 1.0 {
		t.Errorf("baseline self-slowdown = %v, want exactly 1", one)
	}
}

func TestReportTableRendering(t *testing.T) {
	rep := &Report{
		ID: "x", Title: "test", Paper: "expected numbers",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "w1", Suite: "S", Vals: []float64{1.5, 2.25}},
			{Label: "gmean", Suite: "All", Vals: []float64{1.1, 2.0}},
		},
		Summary: map[string]float64{"gmean:a": 1.1},
		Notes:   []string{"a note"},
	}
	s := rep.Table()
	for _, want := range []string{"== x: test ==", "paper: expected numbers",
		"S/w1", "1.500", "2.250", "All/gmean", "gmean:a", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestFig01HierarchyLevels(t *testing.T) {
	for lv := 2; lv <= 5; lv++ {
		c := fig01Hierarchy(lv)
		if lv < 3 && c.L3Bytes != 0 {
			t.Errorf("level %d should have no L3", lv)
		}
		if lv >= 3 && c.L3Bytes == 0 {
			t.Errorf("level %d should have an L3", lv)
		}
		if lv < 4 && c.DRAMBytes != 0 {
			t.Errorf("level %d should have no L4/DRAM cache", lv)
		}
		if lv >= 4 && c.DRAMBytes == 0 {
			t.Errorf("level %d should have an L4/DRAM cache", lv)
		}
	}
	if fig01Hierarchy(5).DRAMBytes <= fig01Hierarchy(4).DRAMBytes {
		t.Error("5-level cache should be larger than 4-level")
	}
}

func TestReportCSV(t *testing.T) {
	rep := &Report{
		ID:      "x",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "w", Suite: "S", Vals: []float64{1.5, 2}},
		},
	}
	got := rep.CSV()
	want := "app,a,b\nS/w,1.5,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
