package workloads

import "cwsp/internal/ir"

// while emits: for cond() != 0 { body() }. cond runs in the loop header and
// must produce its register there.
func (k *kb) while(cond func() ir.Reg, body func()) {
	fb := k.fb
	head := fb.AddBlock("whead")
	bodyB := fb.AddBlock("wbody")
	exit := fb.AddBlock("wexit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := cond()
	fb.Br(ir.R(c), bodyB, exit)
	fb.SetBlock(bodyB)
	body()
	fb.Jmp(head)
	fb.SetBlock(exit)
}

// buildRadix models SPLASH3 radix sort: per pass, histogram random keys
// into 256 buckets (read-modify-writes on a hot small table), then scatter
// the keys with sequential reads and near-sequential bucket-ordered writes
// — the repeated-write pattern the paper blames for radix's overhead.
func buildRadix(s Scale) *ir.Program {
	keys := int64(24_000) / s.Div
	if keys < 256 {
		keys = 256
	}
	prog := ir.NewProgram("radix")
	prog.Entry = "main"
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	k := &kb{fb: fb}

	const (
		keySeg = segStream // input keys
		bucket = segMisc   // 256 bucket counters
		outSeg = segRand   // scatter destination
	)

	rng := fb.Reg()
	fb.ConstInto(rng, 0x1E3779B97F4A7C15)

	// Generate keys (sequential writes).
	k.loop(ir.Imm(keys), func(i ir.Reg) {
		k.lcg(rng)
		v := fb.Bin(ir.OpShr, ir.R(rng), ir.Imm(13))
		off := fb.Bin(ir.OpShl, ir.R(i), ir.Imm(3))
		a := k.addrOf(keySeg, off)
		fb.Store(ir.R(v), ir.R(a), 0)
	})

	acc := fb.Const(0)
	for pass := 0; pass < 2; pass++ {
		shift := int64(pass * 8)
		// Histogram: RMW on a hot 256-entry table.
		k.loop(ir.Imm(keys), func(i ir.Reg) {
			off := fb.Bin(ir.OpShl, ir.R(i), ir.Imm(3))
			a := k.addrOf(keySeg, off)
			v := fb.Load(ir.R(a), 0)
			d := fb.Bin(ir.OpShr, ir.R(v), ir.Imm(shift))
			d2 := fb.Bin(ir.OpAnd, ir.R(d), ir.Imm(255))
			boff := fb.Bin(ir.OpShl, ir.R(d2), ir.Imm(3))
			ba := k.addrOf(bucket+int64(pass)*4096, boff)
			cnt := fb.Load(ir.R(ba), 0)
			cnt2 := fb.Add(ir.R(cnt), ir.Imm(1))
			fb.Store(ir.R(cnt2), ir.R(ba), 0)
		})
		// Scatter: sequential read, bucket-indexed write.
		k.loop(ir.Imm(keys), func(i ir.Reg) {
			off := fb.Bin(ir.OpShl, ir.R(i), ir.Imm(3))
			a := k.addrOf(keySeg, off)
			v := fb.Load(ir.R(a), 0)
			d := fb.Bin(ir.OpShr, ir.R(v), ir.Imm(shift))
			d2 := fb.Bin(ir.OpAnd, ir.R(d), ir.Imm(255))
			slot := fb.Mul(ir.R(d2), ir.Imm(keys/256+1))
			mix := fb.Bin(ir.OpAnd, ir.R(i), ir.Imm(63))
			slot2 := fb.Add(ir.R(slot), ir.R(mix))
			woff := fb.Bin(ir.OpShl, ir.R(slot2), ir.Imm(3))
			wa := k.addrOf(outSeg+int64(pass)*8*keys, woff)
			fb.Store(ir.R(v), ir.R(wa), 0)
			fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(v))
		})
	}
	fb.Emit(ir.R(acc))
	fb.Ret(ir.R(acc))
	prog.Add(fb.MustDone())
	return prog
}

// buildTree models the WHISPER index structures (ctree "pc", rbtree "rb",
// STAMP vacation): a binary search tree built by pointer-chasing inserts
// into a node pool, then a lookup phase. Node: [0]=key [8]=left [16]=right.
func buildTree(name string, inserts, lookups int64, computeDensity int) *ir.Program {
	if inserts < 16 {
		inserts = 16
	}
	if lookups < 16 {
		lookups = 16
	}
	prog := ir.NewProgram(name)
	prog.Entry = "main"
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	k := &kb{fb: fb}

	const (
		pool     = segChase // node pool
		nodeSize = 64       // one line per node
		rootSlot = segMisc  // word holding root pointer
	)

	rng := fb.Reg()
	nextNode := fb.Reg()
	acc := fb.Reg()
	fb.ConstInto(rng, 0x2545F4914F6CDD1D)
	fb.ConstInto(nextNode, pool)
	fb.ConstInto(acc, 0)

	// First node becomes the root.
	k.lcg(rng)
	rootKey := fb.Bin(ir.OpShr, ir.R(rng), ir.Imm(20))
	fb.Store(ir.R(rootKey), ir.R(nextNode), 0)
	fb.Store(ir.R(nextNode), ir.Imm(rootSlot), 0)
	fb.BinInto(ir.OpAdd, nextNode, ir.R(nextNode), ir.Imm(nodeSize))

	// Insert phase.
	k.loop(ir.Imm(inserts), func(i ir.Reg) {
		k.lcg(rng)
		key := fb.Bin(ir.OpShr, ir.R(rng), ir.Imm(20))
		cur := fb.Load(ir.Imm(rootSlot), 0)
		parent := fb.Reg()
		goLeft := fb.Reg()
		fb.Mov(parent, ir.R(cur))
		fb.ConstInto(goLeft, 0)
		k.while(func() ir.Reg {
			return fb.Bin(ir.OpCmpNE, ir.R(cur), ir.Imm(0))
		}, func() {
			fb.Mov(parent, ir.R(cur))
			ck := fb.Load(ir.R(cur), 0)
			lt := fb.Bin(ir.OpCmpLT, ir.R(key), ir.R(ck))
			fb.Mov(goLeft, ir.R(lt))
			l := fb.Load(ir.R(cur), 8)
			r := fb.Load(ir.R(cur), 16)
			nxt := fb.Select(ir.R(lt), ir.R(l), ir.R(r))
			fb.Mov(cur, ir.R(nxt))
			// Key digest work per visited node (version checks, key
			// comparison bytes) as in the real index structures.
			k.compute(acc, 6+computeDensity)
		})
		// Attach a new node under parent.
		fb.Store(ir.R(key), ir.R(nextNode), 0)
		k.ifNZ(ir.R(goLeft), func() {
			fb.Store(ir.R(nextNode), ir.R(parent), 8)
		})
		nz := fb.Bin(ir.OpCmpEQ, ir.R(goLeft), ir.Imm(0))
		k.ifNZ(ir.R(nz), func() {
			fb.Store(ir.R(nextNode), ir.R(parent), 16)
		})
		fb.BinInto(ir.OpAdd, nextNode, ir.R(nextNode), ir.Imm(nodeSize))
		k.compute(acc, computeDensity)
	})

	// Lookup phase.
	k.loop(ir.Imm(lookups), func(i ir.Reg) {
		k.lcg(rng)
		key := fb.Bin(ir.OpShr, ir.R(rng), ir.Imm(20))
		cur := fb.Load(ir.Imm(rootSlot), 0)
		steps := fb.Reg()
		fb.ConstInto(steps, 0)
		k.while(func() ir.Reg {
			nz := fb.Bin(ir.OpCmpNE, ir.R(cur), ir.Imm(0))
			lim := fb.Bin(ir.OpCmpLT, ir.R(steps), ir.Imm(64))
			return fb.Bin(ir.OpAnd, ir.R(nz), ir.R(lim))
		}, func() {
			ck := fb.Load(ir.R(cur), 0)
			fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(ck))
			lt := fb.Bin(ir.OpCmpLT, ir.R(key), ir.R(ck))
			l := fb.Load(ir.R(cur), 8)
			r := fb.Load(ir.R(cur), 16)
			nxt := fb.Select(ir.R(lt), ir.R(l), ir.R(r))
			fb.Mov(cur, ir.R(nxt))
			fb.BinInto(ir.OpAdd, steps, ir.R(steps), ir.Imm(1))
			k.compute(acc, 4+computeDensity)
		})
	})

	fb.Emit(ir.R(acc))
	fb.Ret(ir.R(acc))
	prog.Add(fb.MustDone())
	return prog
}

// buildTx models the WHISPER database benchmarks (TATP, TPC-C): each
// transaction takes a lock (atomic), reads and updates several random rows
// through a helper function, and releases the lock — short failure-atomic
// sections over a large table.
func buildTx(name string, txs int64, rowsPerTx int, tableWords int64) *ir.Program {
	if txs < 8 {
		txs = 8
	}
	prog := ir.NewProgram(name)
	prog.Entry = "main"

	// updateRow(rowAddr, delta): validate the row's checksum fields, apply
	// the update, and rewrite the digest — the per-row work of a real OLTP
	// record update.
	ub := ir.NewFunc("updateRow", 2)
	ub.NewBlock("entry")
	v := ub.Load(ir.R(ub.Param(0)), 0)
	f1 := ub.Load(ir.R(ub.Param(0)), 16)
	f2 := ub.Load(ir.R(ub.Param(0)), 24)
	dig := ub.Bin(ir.OpXor, ir.R(f1), ir.R(f2))
	dig2 := ub.Mul(ir.R(dig), ir.Imm(0x100000001B3))
	dig3 := ub.Bin(ir.OpXor, ir.R(dig2), ir.R(v))
	dig4 := ub.Mul(ir.R(dig3), ir.Imm(0x100000001B3))
	dig5 := ub.Bin(ir.OpShr, ir.R(dig4), ir.Imm(7))
	dig6 := ub.Bin(ir.OpXor, ir.R(dig5), ir.R(dig4))
	dig7 := ub.Mul(ir.R(dig6), ir.Imm(33))
	dig8 := ub.Add(ir.R(dig7), ir.R(dig4))
	nv := ub.Add(ir.R(v), ir.R(ub.Param(1)))
	ub.Store(ir.R(nv), ir.R(ub.Param(0)), 0)
	x := ub.Bin(ir.OpXor, ir.R(nv), ir.R(dig8))
	ub.Store(ir.R(x), ir.R(ub.Param(0)), 8)
	ub.Ret(ir.R(x))
	prog.Add(ub.MustDone())

	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	k := &kb{fb: fb}

	const (
		table = segRand
		lock  = segMisc
	)

	rng := fb.Reg()
	acc := fb.Reg()
	fb.ConstInto(rng, 0x5A3E39CB94B95BDB)
	fb.ConstInto(acc, 0)

	k.loop(ir.Imm(txs), func(i ir.Reg) {
		// Begin: lock acquire (an atomic -> persist-ordering point).
		fb.AtomicAdd(ir.Imm(lock), 0, ir.Imm(1))
		for r := 0; r < rowsPerTx; r++ {
			k.lcg(rng)
			off := k.index(rng, tableWords)
			// Align to a 2-word row.
			off2 := fb.Bin(ir.OpAnd, ir.R(off), ir.Imm(^int64(15)))
			a := k.addrOf(table, off2)
			rv := fb.Call("updateRow", ir.R(a), ir.R(acc))
			fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(rv))
		}
		// Commit: release is a plain store (the acquire's drain already
		// ordered everything; DRF readers synchronize on the next acquire).
		fb.Store(ir.R(i), ir.Imm(lock), 8)
	})

	fb.Emit(ir.R(acc))
	fb.Ret(ir.R(acc))
	prog.Add(fb.MustDone())
	return prog
}

// buildKmeans models STAMP kmeans: stream points, accumulate into a hot
// centroid table (read-modify-writes), with an atomic membership counter.
func buildKmeans(name string, points int64) *ir.Program {
	if points < 16 {
		points = 16
	}
	prog := ir.NewProgram(name)
	prog.Entry = "main"
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	k := &kb{fb: fb}

	const (
		pts       = segStream
		centroids = segMisc
		nClusters = 16
		dims      = 4
	)

	rng := fb.Reg()
	acc := fb.Reg()
	fb.ConstInto(rng, 0x2F251AF3B0F025B5)
	fb.ConstInto(acc, 0)

	k.loop(ir.Imm(points), func(i ir.Reg) {
		// Read a "point" (sequential, stride one line).
		off := fb.Bin(ir.OpShl, ir.R(i), ir.Imm(6))
		pa := k.addrOf(pts, off)
		pv := fb.Load(ir.R(pa), 0)
		// Pick the cluster (hash of value + rng).
		k.lcg(rng)
		h := fb.Bin(ir.OpXor, ir.R(pv), ir.R(rng))
		cl := fb.Bin(ir.OpAnd, ir.R(h), ir.Imm(nClusters-1))
		cOff := fb.Mul(ir.R(cl), ir.Imm(dims*8))
		// Accumulate dims words (RMW on the hot table).
		for d := 0; d < dims; d++ {
			ca := k.addrOf(centroids, cOff)
			cv := fb.Load(ir.R(ca), int64(d*8))
			cv2 := fb.Add(ir.R(cv), ir.R(pv))
			fb.Store(ir.R(cv2), ir.R(ca), int64(d*8))
		}
		// Membership counter.
		em := fb.Bin(ir.OpAnd, ir.R(i), ir.Imm(255))
		z := fb.Bin(ir.OpCmpEQ, ir.R(em), ir.Imm(0))
		k.ifNZ(ir.R(z), func() {
			fb.AtomicAdd(ir.Imm(centroids+4096), 0, ir.Imm(1))
		})
		fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(pv))
		k.compute(acc, 3)
	})

	fb.Emit(ir.R(acc))
	fb.Ret(ir.R(acc))
	prog.Add(fb.MustDone())
	return prog
}
