package workloads

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 37 {
		t.Fatalf("registry has %d workloads, want 37", len(all))
	}
	wantPerSuite := map[string]int{
		"CPU2006": 10, "CPU2017": 7, "Mini-apps": 2,
		"SPLASH3": 10, "WHISPER": 5, "STAMP": 3,
	}
	for suite, want := range wantPerSuite {
		if got := len(BySuite(suite)); got != want {
			t.Errorf("suite %s has %d workloads, want %d", suite, got, want)
		}
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestMemIntensiveSubset(t *testing.T) {
	mi := MemIntensive()
	if len(mi) < 8 {
		t.Errorf("memory-intensive subset too small: %d", len(mi))
	}
	names := map[string]bool{}
	for _, w := range mi {
		names[w.Name] = true
	}
	for _, want := range []string{"astar", "lbm", "libquan", "milc", "lulesh", "xsbench", "sps", "tatp", "tpcc"} {
		if !names[want] {
			t.Errorf("%s missing from memory-intensive subset", want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("lbm"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestAllWorkloadsVerifyAndCompile(t *testing.T) {
	for _, w := range All() {
		p := w.Build(Smoke)
		if err := ir.VerifyProgram(p); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if _, _, err := compiler.Compile(p, compiler.DefaultOptions()); err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
	}
}

func TestAllWorkloadsRunDeterministically(t *testing.T) {
	cfg := sim.DefaultConfig()
	for _, w := range All() {
		p := w.Build(Smoke)
		m1, err := sim.New(p, cfg, sim.Baseline())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		r1, err := m1.Run()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		m2, err := sim.New(p, cfg, sim.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := m2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r1.Ret[0] != r2.Ret[0] || r1.Stats.Cycles != r2.Stats.Cycles {
			t.Errorf("%s: nondeterministic", w.Name)
		}
		if r1.Stats.Instrs < 500 {
			t.Errorf("%s: suspiciously few instructions (%d)", w.Name, r1.Stats.Instrs)
		}
	}
}

func TestWorkloadsMatchInterpreterSemantics(t *testing.T) {
	// The simulator and the functional interpreter must agree on results
	// for every workload (smoke scale keeps it fast).
	cfg := sim.DefaultConfig()
	for _, w := range All() {
		p := w.Build(Smoke)
		want, err := ir.Interp(p, nil, 50_000_000)
		if err != nil {
			t.Fatalf("%s: interp: %v", w.Name, err)
		}
		m, err := sim.New(p, cfg, sim.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: sim: %v", w.Name, err)
		}
		if res.Ret[0] != want.RetVal {
			t.Errorf("%s: sim ret %d != interp %d", w.Name, res.Ret[0], want.RetVal)
		}
	}
}

func TestScalesShrink(t *testing.T) {
	w, err := ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	runInstrs := func(s Scale) int64 {
		m, err := sim.New(w.Build(s), cfg, sim.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.Instrs
	}
	smoke := runInstrs(Smoke)
	quick := runInstrs(Quick)
	if quick <= smoke {
		t.Errorf("quick (%d) should run more instructions than smoke (%d)", quick, smoke)
	}
}

func TestMemoryIntensiveWorkloadsMissDRAMCache(t *testing.T) {
	// The memory-intensive subset must actually reach NVM under the quick
	// scale, otherwise Figures 1/17/18 have no signal.
	cfg := sim.DefaultConfig()
	for _, name := range []string{"lbm", "xsbench", "sps"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.New(w.Build(Quick), cfg, sim.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.NVMReads == 0 {
			t.Errorf("%s: no NVM reads — footprint too small for the DRAM cache", name)
		}
	}
}
