package workloads

import "cwsp/internal/ir"

// BuildComputeKernel builds the register-resident arithmetic kernel the
// kernel microbenchmarks use: ~60k iterations of two dozen dependent
// ALU ops plus a compare+branch, with no memory traffic inside the
// loop.
// Like BuildMTWorker it is not in the registered workload set — it
// exists to expose interpreter dispatch cost, which the app workloads
// hide behind the memory system and persist path, so it anchors the
// dispatch-bound end of the kernel comparison matrix (`make
// bench-kernel`).
func BuildComputeKernel() *ir.Program {
	fb := ir.NewFunc("compute", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	x := fb.Reg()
	y := fb.Reg()
	z := fb.Reg()
	w := fb.Reg()
	fb.ConstInto(i, 0)
	fb.ConstInto(x, 0x9e3779b9)
	fb.ConstInto(y, 12345)
	fb.ConstInto(z, 0)
	fb.ConstInto(w, 0x5bd1e995)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(60_000))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	fb.BinInto(ir.OpMul, x, ir.R(x), ir.Imm(6364136223846793005))
	fb.BinInto(ir.OpAdd, x, ir.R(x), ir.R(i))
	t1 := fb.Bin(ir.OpShr, ir.R(x), ir.Imm(29))
	fb.BinInto(ir.OpXor, y, ir.R(y), ir.R(t1))
	t2 := fb.Bin(ir.OpAnd, ir.R(y), ir.Imm(1023))
	fb.BinInto(ir.OpAdd, z, ir.R(z), ir.R(t2))
	t3 := fb.Bin(ir.OpCmpGT, ir.R(z), ir.Imm(1<<40))
	zHalf := fb.Bin(ir.OpShr, ir.R(z), ir.Imm(1))
	fb.Mov(z, ir.R(fb.Select(ir.R(t3), ir.R(zHalf), ir.R(z))))
	fb.BinInto(ir.OpSub, y, ir.R(y), ir.Imm(7))
	fb.BinInto(ir.OpOr, x, ir.R(x), ir.Imm(1))
	t4 := fb.Bin(ir.OpXor, ir.R(x), ir.R(y))
	fb.BinInto(ir.OpAdd, w, ir.R(w), ir.R(t4))
	t5 := fb.Bin(ir.OpShl, ir.R(w), ir.Imm(13))
	fb.BinInto(ir.OpXor, x, ir.R(x), ir.R(t5))
	t6 := fb.Bin(ir.OpShr, ir.R(w), ir.Imm(11))
	fb.BinInto(ir.OpAdd, y, ir.R(y), ir.R(t6))
	t7 := fb.Bin(ir.OpCmpLT, ir.R(w), ir.R(x))
	fb.BinInto(ir.OpAdd, z, ir.R(z), ir.R(t7))
	fb.BinInto(ir.OpMul, w, ir.R(w), ir.Imm(2654435761))
	t8 := fb.Bin(ir.OpAnd, ir.R(x), ir.Imm(0xffff))
	fb.BinInto(ir.OpAdd, w, ir.R(w), ir.R(t8))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(z))

	p := ir.NewProgram("compute")
	p.Add(fb.MustDone())
	p.Entry = "compute"
	return p
}
