// Package workloads provides the 37 benchmark applications of the paper's
// evaluation (SPEC CPU2006/2017, DOE Mini-apps, SPLASH3, WHISPER, STAMP) as
// synthetic IR kernels. Each kernel is tuned to the memory behaviour the
// paper attributes to its namesake — store rate, locality, region length,
// footprint — which are the axes that determine cWSP's overhead (see
// DESIGN.md for the substitution argument).
package workloads

import (
	"fmt"
	"sort"

	"cwsp/internal/ir"
)

// Scale shrinks iteration counts for quick runs; footprints stay constant
// so cache behaviour is preserved.
type Scale struct {
	Name string
	Div  int64
}

// Scales.
var (
	Full  = Scale{Name: "full", Div: 1}
	Quick = Scale{Name: "quick", Div: 8}
	Smoke = Scale{Name: "smoke", Div: 64}
)

// Workload is one benchmark application.
type Workload struct {
	Name  string
	Suite string
	// MemIntensive marks the subset used by the paper's Figures 1, 17, 18.
	MemIntensive bool
	build        func(s Scale) *ir.Program
}

// Build constructs the workload's program at the given scale.
func (w Workload) Build(s Scale) *ir.Program { return w.build(s) }

// Suites in paper order.
var Suites = []string{"CPU2006", "CPU2017", "Mini-apps", "SPLASH3", "WHISPER", "STAMP"}

var registry []Workload

func register(name, suite string, memInt bool, build func(s Scale) *ir.Program) {
	registry = append(registry, Workload{Name: name, Suite: suite, MemIntensive: memInt, build: build})
}

// All returns every workload in suite order (paper order within suites).
func All() []Workload {
	out := append([]Workload(nil), registry...)
	idx := map[string]int{}
	for i, s := range Suites {
		idx[s] = i
	}
	sort.SliceStable(out, func(i, j int) bool {
		return idx[out[i].Suite] < idx[out[j].Suite]
	})
	return out
}

// BySuite returns the workloads of one suite.
func BySuite(suite string) []Workload {
	var out []Workload
	for _, w := range registry {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

// ByName looks a workload up.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// MemIntensive returns the memory-intensive subset (Figures 1, 17, 18).
func MemIntensive() []Workload {
	var out []Workload
	for _, w := range All() {
		if w.MemIntensive {
			out = append(out, w)
		}
	}
	return out
}

// mixApp registers a MixParams-based application, scaling iteration counts.
func mixApp(name, suite string, memInt bool, p MixParams) {
	register(name, suite, memInt, func(s Scale) *ir.Program {
		q := p
		q.StreamIters /= s.Div
		q.RandIters /= s.Div
		q.ChaseIters /= s.Div
		if p.StreamIters > 0 && q.StreamIters == 0 {
			q.StreamIters = 1
		}
		if p.RandIters > 0 && q.RandIters == 0 {
			q.RandIters = 1
		}
		if p.ChaseIters > 0 && q.ChaseIters == 0 {
			q.ChaseIters = 1
		}
		return buildMix(name, q)
	})
}

const (
	kw = 1 << 10 // kilowords
	mw = 1 << 20 // megawords (8 MiB)
)

func init() {
	// ---- SPEC CPU2006 (10) -------------------------------------------------
	mixApp("astar", "CPU2006", true, MixParams{
		RandWords: 256 * kw, RandIters: 96_000, RandStores: 2, RandRMW: 2,
		ChaseNodes: 64 * kw, ChaseIters: 14_000, Compute: 4,
	})
	mixApp("bzip2", "CPU2006", false, MixParams{
		StreamWords: 1 * mw, StreamIters: 16_000, StreamStores: 4,
		RandWords: 64 * kw, RandIters: 16_000, RandStores: 3, RandRMW: 2, Compute: 6,
	})
	mixApp("gobmk", "CPU2006", false, MixParams{
		RandWords: 32 * kw, RandIters: 30_000, RandStores: 2, RandRMW: 1,
		Compute: 10, CallEvery: 64,
	})
	mixApp("h264ref", "CPU2006", false, MixParams{
		StreamWords: 2 * mw, StreamIters: 24_000, StreamStores: 5, Compute: 8,
	})
	mixApp("lbm", "CPU2006", true, MixParams{
		StreamWords: 256 * kw, StreamIters: 96_000, StreamStores: 8, Compute: 2,
	})
	mixApp("libquan", "CPU2006", true, MixParams{
		StreamWords: 256 * kw, StreamIters: 88_000, StreamStores: 6, Compute: 1,
	})
	mixApp("milc", "CPU2006", true, MixParams{
		StreamWords: 256 * kw, StreamIters: 64_000, StreamStores: 5,
		RandWords: 128 * kw, RandIters: 12_000, RandRMW: 3, Compute: 4,
	})
	mixApp("namd", "CPU2006", false, MixParams{
		RandWords: 64 * kw, RandIters: 30_000, RandStores: 2, RandRMW: 2, Compute: 12,
	})
	mixApp("sjeng", "CPU2006", false, MixParams{
		RandWords: 256 * kw, RandIters: 28_000, RandStores: 2, RandRMW: 1,
		Compute: 8, CallEvery: 48,
	})
	mixApp("soplex", "CPU2006", false, MixParams{
		RandWords: 1 * mw, RandIters: 24_000, RandStores: 2, RandRMW: 3, Compute: 4,
	})

	// ---- SPEC CPU2017 (7) ----------------------------------------------------
	mixApp("dsjeng", "CPU2017", false, MixParams{
		RandWords: 256 * kw, RandIters: 28_000, RandStores: 2, RandRMW: 1,
		Compute: 9, CallEvery: 56,
	})
	mixApp("imagick", "CPU2017", false, MixParams{
		StreamWords: 1 * mw, StreamIters: 28_000, StreamStores: 5, Compute: 10,
	})
	mixApp("lbm17", "CPU2017", false, MixParams{
		StreamWords: 4 * mw, StreamIters: 40_000, StreamStores: 8, Compute: 3,
	})
	mixApp("leela", "CPU2017", false, MixParams{
		ChaseNodes: 128 * kw, ChaseIters: 26_000,
		RandWords: 128 * kw, RandIters: 12_000, RandStores: 2, RandRMW: 1, Compute: 6,
	})
	mixApp("nab", "CPU2017", false, MixParams{
		RandWords: 128 * kw, RandIters: 26_000, RandStores: 2, RandRMW: 2, Compute: 11,
	})
	mixApp("namd17", "CPU2017", false, MixParams{
		RandWords: 64 * kw, RandIters: 28_000, RandStores: 2, RandRMW: 2, Compute: 12,
	})
	mixApp("xz", "CPU2017", false, MixParams{
		RandWords: 512 * kw, RandIters: 24_000, RandStores: 4, RandRMW: 3, Compute: 5,
	})

	// ---- DOE Mini-apps (2) -----------------------------------------------------
	mixApp("lulesh", "Mini-apps", true, MixParams{
		StreamWords: 256 * kw, StreamIters: 56_000, StreamStores: 6,
		RandWords: 128 * kw, RandIters: 16_000, RandRMW: 4, Compute: 6,
	})
	mixApp("xsbench", "Mini-apps", true, MixParams{
		RandWords: 256 * kw, RandIters: 144_000, Compute: 3,
	})

	// ---- SPLASH3 (10): low compute, many sequential/repeated writes, short
	// regions — the paper's worst case for persist-path pressure. -------------
	mixApp("cholesky", "SPLASH3", false, MixParams{
		RandWords: 512 * kw, RandIters: 26_000, RandStores: 2, RandRMW: 6, Compute: 3,
	})
	mixApp("fft", "SPLASH3", false, MixParams{
		StreamWords: 1 * mw, StreamIters: 28_000, StreamStores: 5, Compute: 4,
	})
	mixApp("lu-cg", "SPLASH3", false, MixParams{
		StreamWords: 512 * kw, StreamIters: 30_000, StreamStores: 10, Compute: 1,
	})
	mixApp("lu-ncg", "SPLASH3", false, MixParams{
		StreamWords: 256 * kw, StreamIters: 28_000, StreamStores: 11,
		RandWords: 128 * kw, RandIters: 6_000, RandStores: 6, RandRMW: 3, Compute: 1,
	})
	mixApp("ocg", "SPLASH3", false, MixParams{
		StreamWords: 1 * mw, StreamIters: 26_000, StreamStores: 7, Compute: 2,
	})
	mixApp("oncg", "SPLASH3", false, MixParams{
		StreamWords: 1 * mw, StreamIters: 24_000, StreamStores: 8,
		RandWords: 64 * kw, RandIters: 6_000, RandRMW: 4, Compute: 2,
	})
	register("radix", "SPLASH3", false, buildRadix)
	mixApp("raytrace", "SPLASH3", false, MixParams{
		ChaseNodes: 256 * kw, ChaseIters: 30_000, Compute: 4,
	})
	mixApp("water-ns", "SPLASH3", false, MixParams{
		RandWords: 128 * kw, RandIters: 26_000, RandStores: 2, RandRMW: 8, Compute: 3,
	})
	mixApp("water-sp", "SPLASH3", false, MixParams{
		RandWords: 128 * kw, RandIters: 24_000, RandStores: 2, RandRMW: 7, Compute: 4,
	})

	// ---- WHISPER (5): persistent-memory applications; all memory-intensive.
	register("pc", "WHISPER", true, func(s Scale) *ir.Program {
		return buildTree("pc", 32_000/s.Div, 40_000/s.Div, 2)
	})
	register("rb", "WHISPER", true, func(s Scale) *ir.Program {
		return buildTree("rb", 30_000/s.Div, 30_000/s.Div, 3)
	})
	mixApp("sps", "WHISPER", true, MixParams{
		RandWords: 256 * kw, RandIters: 128_000, RandStores: 8, RandRMW: 4, Compute: 1,
	})
	register("tatp", "WHISPER", true, func(s Scale) *ir.Program {
		return buildTx("tatp", 10_000/s.Div, 8, 256*kw)
	})
	register("tpcc", "WHISPER", true, func(s Scale) *ir.Program {
		return buildTx("tpcc", 5_000/s.Div, 20, 256*kw)
	})

	// ---- STAMP (3) ----------------------------------------------------------
	register("kmeans", "STAMP", false, func(s Scale) *ir.Program {
		return buildKmeans("kmeans", 26_000/s.Div)
	})
	mixApp("ssca2", "STAMP", false, MixParams{
		RandWords: 2 * mw, RandIters: 28_000, RandStores: 2, RandRMW: 5,
		AtomicEvery: 128, Compute: 2,
	})
	register("vacation", "STAMP", false, func(s Scale) *ir.Program {
		return buildTree("vacation", 16_000/s.Div, 20_000/s.Div, 4)
	})
}
