package workloads

import "cwsp/internal/ir"

// kb wraps FuncBuilder with the structured-control helpers the workload
// kernels are written in.
type kb struct {
	fb *ir.FuncBuilder
}

// loop emits: for i := 0; i < trip; i++ { body(i) }.
func (k *kb) loop(trip ir.Operand, body func(i ir.Reg)) {
	fb := k.fb
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	bodyB := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), trip)
	fb.Br(ir.R(c), bodyB, exit)
	fb.SetBlock(bodyB)
	body(i)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
}

// ifNZ emits: if cond != 0 { then() }.
func (k *kb) ifNZ(cond ir.Operand, then func()) {
	fb := k.fb
	thenB := fb.AddBlock("then")
	join := fb.AddBlock("join")
	fb.Br(cond, thenB, join)
	fb.SetBlock(thenB)
	then()
	fb.Jmp(join)
	fb.SetBlock(join)
}

// lcg steps a linear congruential generator register in place and returns
// it for convenience.
func (k *kb) lcg(state ir.Reg) ir.Reg {
	fb := k.fb
	a := fb.Mul(ir.R(state), ir.Imm(6364136223846793005))
	fb.BinInto(ir.OpAdd, state, ir.R(a), ir.Imm(1442695040888963407))
	return state
}

// index derives a word index in [0, maskWords) from the LCG state
// (maskWords must be a power of two) and returns the byte offset register.
func (k *kb) index(state ir.Reg, maskWords int64) ir.Reg {
	fb := k.fb
	sh := fb.Bin(ir.OpShr, ir.R(state), ir.Imm(17))
	idx := fb.Bin(ir.OpAnd, ir.R(sh), ir.Imm(maskWords-1))
	return fb.Bin(ir.OpShl, ir.R(idx), ir.Imm(3))
}

// addrOf returns base+offsetReg as a register.
func (k *kb) addrOf(base int64, off ir.Reg) ir.Reg {
	return k.fb.Bin(ir.OpAdd, ir.Imm(base), ir.R(off))
}

// compute burns n dependent ALU ops on acc (models computation density).
func (k *kb) compute(acc ir.Reg, n int) {
	fb := k.fb
	for j := 0; j < n; j++ {
		switch j % 3 {
		case 0:
			fb.BinInto(ir.OpMul, acc, ir.R(acc), ir.Imm(33))
		case 1:
			fb.BinInto(ir.OpXor, acc, ir.R(acc), ir.Imm(0x5bd1e995))
		case 2:
			fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.Imm(7))
		}
	}
}

// MixParams drives the generic parametric kernel that expresses most of
// the 37 applications: a streaming phase over a large segment, a
// random-access phase over another, pointer chasing over a linked ring,
// and optional read-modify-writes, atomics, and helper-function calls.
// Counts are in accesses; fractions are per-16 (0..16).
type MixParams struct {
	// Streaming phase (lbm/libquantum/milc-like).
	StreamWords  int64 // segment size in words (power of two)
	StreamIters  int64 // streamed accesses (stride 8 words = one per line)
	StreamStores int   // per-16 fraction of streamed accesses that store

	// Random phase (astar/xsbench/sps-like).
	RandWords  int64 // segment size in words (power of two)
	RandIters  int64
	RandStores int // per-16 fraction of random accesses that store
	RandRMW    int // per-16 fraction that read-modify-write (antidependence)

	// Pointer chase (raytrace/leela-like). 0 disables.
	ChaseNodes int64 // power of two
	ChaseIters int64

	// Computation density: ALU ops per access.
	Compute int

	// AtomicEvery inserts an atomic fetch-add on a shared counter every N
	// random-phase iterations (0 = never).
	AtomicEvery int64

	// CallEvery calls a small helper function every N random-phase
	// iterations (0 = never), exercising the spill/restore convention.
	CallEvery int64
}

// Segment bases (64 MiB apart: distinct alias sites, distinct pages).
const (
	segStream = 0x1_0000_0000
	segRand   = 0x1_4000_0000
	segChase  = 0x1_8000_0000
	segMisc   = 0x1_C000_0000
)

// buildMix constructs the parametric kernel program.
func buildMix(name string, p MixParams) *ir.Program {
	prog := ir.NewProgram(name)
	prog.Entry = "main"

	// helper(x, y) — a leaf with a little memory traffic of its own.
	hb := ir.NewFunc("helper", 2)
	hb.NewBlock("entry")
	hv := hb.Load(ir.R(hb.Param(0)), 0)
	s := hb.Add(ir.R(hv), ir.R(hb.Param(1)))
	hb.Store(ir.R(s), ir.R(hb.Param(0)), 8)
	r := hb.Mul(ir.R(s), ir.Imm(2654435761))
	hb.Ret(ir.R(r))
	prog.Add(hb.MustDone())

	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	k := &kb{fb: fb}

	acc := fb.Reg()
	rng := fb.Reg()
	fb.ConstInto(acc, 1)
	fb.ConstInto(rng, 88172645463325252)

	// Phase 0: seed the chase ring: node i -> (i*stride+1) mod nodes.
	if p.ChaseNodes > 0 {
		k.loop(ir.Imm(p.ChaseNodes), func(i ir.Reg) {
			nx := fb.Mul(ir.R(i), ir.Imm(797))
			nx2 := fb.Add(ir.R(nx), ir.Imm(1))
			nx3 := fb.Bin(ir.OpAnd, ir.R(nx2), ir.Imm(p.ChaseNodes-1))
			off := fb.Bin(ir.OpShl, ir.R(i), ir.Imm(3))
			a := k.addrOf(segChase, off)
			v := fb.Bin(ir.OpShl, ir.R(nx3), ir.Imm(3))
			fb.Store(ir.R(v), ir.R(a), 0)
		})
	}

	// Phase 1: streaming sweep, stride 8 words (one access per line).
	if p.StreamIters > 0 {
		pos := fb.Reg()
		fb.ConstInto(pos, 0)
		k.loop(ir.Imm(p.StreamIters), func(i ir.Reg) {
			off := fb.Bin(ir.OpShl, ir.R(pos), ir.Imm(6)) // *64 bytes
			a := k.addrOf(segStream, off)
			mod := fb.Bin(ir.OpAnd, ir.R(i), ir.Imm(15))
			doStore := fb.Bin(ir.OpCmpLT, ir.R(mod), ir.Imm(int64(p.StreamStores)))
			k.ifNZ(ir.R(doStore), func() {
				fb.Store(ir.R(acc), ir.R(a), 0)
			})
			v := fb.Load(ir.R(a), 8)
			fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(v))
			k.compute(acc, p.Compute)
			fb.BinInto(ir.OpAdd, pos, ir.R(pos), ir.Imm(1))
			lim := p.StreamWords / 8
			if lim < 1 {
				lim = 1
			}
			wrapped := fb.Bin(ir.OpCmpGE, ir.R(pos), ir.Imm(lim))
			k.ifNZ(ir.R(wrapped), func() {
				fb.ConstInto(pos, 0)
			})
		})
	}

	// Phase 2: random accesses.
	if p.RandIters > 0 {
		k.loop(ir.Imm(p.RandIters), func(i ir.Reg) {
			k.lcg(rng)
			off := k.index(rng, p.RandWords)
			a := k.addrOf(segRand, off)
			mod := fb.Bin(ir.OpAnd, ir.R(rng), ir.Imm(15))
			isRMW := fb.Bin(ir.OpCmpLT, ir.R(mod), ir.Imm(int64(p.RandRMW)))
			isStore := fb.Bin(ir.OpCmpLT, ir.R(mod), ir.Imm(int64(p.RandRMW+p.RandStores)))
			k.ifNZ(ir.R(isRMW), func() {
				v := fb.Load(ir.R(a), 0)
				v2 := fb.Add(ir.R(v), ir.R(acc))
				fb.Store(ir.R(v2), ir.R(a), 0)
			})
			notRMW := fb.Bin(ir.OpCmpEQ, ir.R(isRMW), ir.Imm(0))
			doPlain := fb.Bin(ir.OpAnd, ir.R(isStore), ir.R(notRMW))
			k.ifNZ(ir.R(doPlain), func() {
				fb.Store(ir.R(acc), ir.R(a), 0)
			})
			k.ifNZ(ir.R(notRMW), func() {
				v := fb.Load(ir.R(a), 0)
				fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(v))
			})
			k.compute(acc, p.Compute)
			if p.AtomicEvery > 0 {
				em := fb.Bin(ir.OpRem, ir.R(i), ir.Imm(p.AtomicEvery))
				z := fb.Bin(ir.OpCmpEQ, ir.R(em), ir.Imm(0))
				k.ifNZ(ir.R(z), func() {
					fb.AtomicAdd(ir.Imm(segMisc), 0, ir.Imm(1))
				})
			}
			if p.CallEvery > 0 {
				em := fb.Bin(ir.OpRem, ir.R(i), ir.Imm(p.CallEvery))
				z := fb.Bin(ir.OpCmpEQ, ir.R(em), ir.Imm(0))
				k.ifNZ(ir.R(z), func() {
					rv := fb.Call("helper", ir.Imm(segMisc+64), ir.R(acc))
					fb.BinInto(ir.OpXor, acc, ir.R(acc), ir.R(rv))
				})
			}
		})
	}

	// Phase 3: pointer chase. Each visited node also yields payload work,
	// as in real search/traversal kernels.
	if p.ChaseIters > 0 && p.ChaseNodes > 0 {
		cur := fb.Reg()
		fb.ConstInto(cur, 0)
		k.loop(ir.Imm(p.ChaseIters), func(i ir.Reg) {
			a := k.addrOf(segChase, cur)
			payload := fb.Load(ir.R(a), 8)
			fb.BinInto(ir.OpXor, acc, ir.R(acc), ir.R(payload))
			fb.LoadInto(cur, ir.R(a), 0)
			fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(cur))
			k.compute(acc, p.Compute+4)
		})
	}

	fb.Emit(ir.R(acc))
	fb.Ret(ir.R(acc))
	prog.Add(fb.MustDone())
	return prog
}
