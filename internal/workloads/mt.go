package workloads

import (
	"cwsp/internal/ir"
)

// MT addresses (shared lock/counters plus per-thread private segments).
const (
	MTLockAddr = int64(0x2000_0000)
	MTCntAddr  = int64(0x2000_0040)
	MTSumAddr  = int64(0x2000_0080)
	MTPrivBase = int64(0x2100_0000)
)

// BuildMTWorker builds the multi-threaded lock benchmark: worker(tid,
// iters) repeatedly (1) acquires a CAS spinlock, (2) updates a shared
// counter and checksum (commutative, so the final state is
// interleaving-independent), (3) releases, and (4) does private streaming
// work. It models the SPLASH3/STAMP critical-section pattern the paper
// runs on its 8-core machine.
func BuildMTWorker() *ir.Program {
	fb := ir.NewFunc("worker", 2)
	tid := fb.Param(0)
	iters := fb.Param(1)

	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(iters))
	fb.Br(ir.R(c), body, exit)

	fb.SetBlock(body)
	spin := fb.AddBlock("spin")
	crit := fb.AddBlock("crit")
	fb.Jmp(spin)
	fb.SetBlock(spin)
	old := fb.AtomicCAS(ir.Imm(MTLockAddr), 0, ir.Imm(0), ir.Imm(1))
	got := fb.Bin(ir.OpCmpEQ, ir.R(old), ir.Imm(0))
	fb.Br(ir.R(got), crit, spin)

	fb.SetBlock(crit)
	cv := fb.Load(ir.Imm(MTCntAddr), 0)
	cv2 := fb.Add(ir.R(cv), ir.Imm(1))
	fb.Store(ir.R(cv2), ir.Imm(MTCntAddr), 0)
	sv := fb.Load(ir.Imm(MTSumAddr), 0)
	inc := fb.Add(ir.R(tid), ir.Imm(3))
	sv2 := fb.Add(ir.R(sv), ir.R(inc))
	fb.Store(ir.R(sv2), ir.Imm(MTSumAddr), 0)
	fb.AtomicXchg(ir.Imm(MTLockAddr), 0, ir.Imm(0))

	// Private streaming phase between critical sections.
	pb := fb.Mul(ir.R(tid), ir.Imm(1<<20))
	base := fb.Add(ir.Imm(MTPrivBase), ir.R(pb))
	j := fb.Reg()
	fb.ConstInto(j, 0)
	ph := fb.AddBlock("ph")
	pbody := fb.AddBlock("pbody")
	pex := fb.AddBlock("pex")
	fb.Jmp(ph)
	fb.SetBlock(ph)
	pc := fb.Bin(ir.OpCmpLT, ir.R(j), ir.Imm(24))
	fb.Br(ir.R(pc), pbody, pex)
	fb.SetBlock(pbody)
	mix := fb.Mul(ir.R(i), ir.Imm(24))
	slot := fb.Add(ir.R(mix), ir.R(j))
	off := fb.Bin(ir.OpShl, ir.R(slot), ir.Imm(3))
	pa := fb.Add(ir.R(base), ir.R(off))
	pv := fb.Mul(ir.R(slot), ir.R(inc))
	fb.Store(ir.R(pv), ir.R(pa), 0)
	fb.BinInto(ir.OpAdd, j, ir.R(j), ir.Imm(1))
	fb.Jmp(ph)
	fb.SetBlock(pex)

	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	fb.Ret(ir.R(i))

	p := ir.NewProgram("mtworker")
	p.Add(fb.MustDone())
	p.Entry = "worker"
	return p
}
