package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace streams Chrome trace-event JSON (the legacy JSON format Perfetto's
// ui.perfetto.dev and chrome://tracing both load). Events are written as
// they are emitted — nothing is buffered beyond one encoded event — so
// trace memory is O(1) in run length. Timestamps are float64 microseconds;
// the caller owns the cycle→µs conversion.
//
// The format reference is the "Trace Event Format" document; only the
// phases the simulator needs are exposed: duration (B/E), complete (X),
// instant (i), async (b/e), flow (s/f), counter (C), and metadata (M).
type Trace struct {
	w     io.Writer
	err   error
	n     int64 // emitted non-metadata events
	limit int64 // 0 = unlimited
	open  bool
	first bool
}

// traceEvent is one JSON trace event. Fields follow the Chrome trace-event
// names; zero-valued optionals are omitted.
type traceEvent struct {
	Name string                 `json:"name,omitempty"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	ID   string                 `json:"id,omitempty"`
	S    string                 `json:"s,omitempty"`  // instant scope
	BP   string                 `json:"bp,omitempty"` // flow binding point
	Args map[string]interface{} `json:"args,omitempty"`
}

// NewTrace starts a trace document on w. Call Close to finish it.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: w, first: true}
}

// SetLimit caps the number of non-metadata events (0 = unlimited); events
// past the cap are dropped silently so long runs produce loadable files.
func (t *Trace) SetLimit(n int64) { t.limit = n }

// Events returns the number of non-metadata events emitted so far.
func (t *Trace) Events() int64 { return t.n }

// Err returns the first write/encode error (nil when healthy).
func (t *Trace) Err() error { return t.err }

func (t *Trace) emit(ev traceEvent, meta bool) {
	if t.err != nil {
		return
	}
	if !meta {
		if t.limit > 0 && t.n >= t.limit {
			return
		}
		t.n++
	}
	if !t.open {
		if _, err := io.WriteString(t.w, `{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
			t.err = err
			return
		}
		t.open = true
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if !t.first {
		if _, err := io.WriteString(t.w, ",\n"); err != nil {
			t.err = err
			return
		}
	}
	t.first = false
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Close terminates the JSON document and returns the first error seen.
func (t *Trace) Close() error {
	if t.err != nil {
		return t.err
	}
	if !t.open {
		// No events: still produce a valid, loadable document.
		_, t.err = io.WriteString(t.w, `{"displayTimeUnit":"ns","traceEvents":[]}`)
		return t.err
	}
	_, t.err = io.WriteString(t.w, "]}\n")
	return t.err
}

// ProcessName labels a pid in the viewer.
func (t *Trace) ProcessName(pid int, name string) {
	t.emit(traceEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]interface{}{"name": name}}, true)
}

// ThreadName labels a (pid, tid) track in the viewer.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.emit(traceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]interface{}{"name": name}}, true)
}

// Begin opens a duration slice on a thread track (must nest with End).
func (t *Trace) Begin(pid, tid int, name, cat string, ts float64, args map[string]interface{}) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "B", TS: ts, PID: pid, TID: tid, Args: args}, false)
}

// End closes the innermost open duration slice on a thread track.
func (t *Trace) End(pid, tid int, ts float64) {
	t.emit(traceEvent{Ph: "E", TS: ts, PID: pid, TID: tid}, false)
}

// Complete emits a self-contained slice of the given duration.
func (t *Trace) Complete(pid, tid int, name, cat string, ts, dur float64, args map[string]interface{}) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: &dur, PID: pid, TID: tid, Args: args}, false)
}

// Instant emits a thread-scoped instant marker.
func (t *Trace) Instant(pid, tid int, name, cat string, ts float64, args map[string]interface{}) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "i", TS: ts, PID: pid, TID: tid, S: "t", Args: args}, false)
}

// AsyncBegin opens an async span (overlapping spans on one track are fine;
// matching is by cat+id).
func (t *Trace) AsyncBegin(pid, tid int, id int64, name, cat string, ts float64, args map[string]interface{}) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "b", TS: ts, PID: pid, TID: tid,
		ID: fmt.Sprintf("%#x", id), Args: args}, false)
}

// AsyncEnd closes an async span opened with the same cat+id+name.
func (t *Trace) AsyncEnd(pid, tid int, id int64, name, cat string, ts float64) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "e", TS: ts, PID: pid, TID: tid,
		ID: fmt.Sprintf("%#x", id)}, false)
}

// FlowStart begins a flow arrow (bind it near an enclosing slice).
func (t *Trace) FlowStart(pid, tid int, id int64, name, cat string, ts float64) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "s", TS: ts, PID: pid, TID: tid,
		ID: fmt.Sprintf("%#x", id)}, false)
}

// FlowEnd terminates a flow arrow at (pid, tid, ts), binding to the
// enclosing slice.
func (t *Trace) FlowEnd(pid, tid int, id int64, name, cat string, ts float64) {
	t.emit(traceEvent{Name: name, Cat: cat, Ph: "f", BP: "e", TS: ts, PID: pid, TID: tid,
		ID: fmt.Sprintf("%#x", id)}, false)
}

// Counter emits one or more counter series points on a process track.
func (t *Trace) Counter(pid int, name string, ts float64, series map[string]interface{}) {
	t.emit(traceEvent{Name: name, Ph: "C", TS: ts, PID: pid, Args: series}, false)
}
