package telemetry

import "testing"

// These tests pin Histogram.Quantile's edge semantics, which the live
// Prometheus renderer and the benchfmt regression gate both rely on:
// empty histogram → 0, single-bucket histogram → bucket midpoint clamped
// to the observed [min, max].

func TestQuantileEmptyIsZero(t *testing.T) {
	h := NewHistogram("empty")
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := h.Quantile(p); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", p, got)
		}
	}
}

// TestQuantileSingleSample: one sample occupies one bucket; every
// quantile must report that exact value (midpoint clamps to min == max).
func TestQuantileSingleSample(t *testing.T) {
	h := NewHistogram("one")
	h.Observe(100)
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := h.Quantile(p); got != 100 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 100", p, got)
		}
	}
}

// TestQuantileSingleBucketMidpoint: several samples in one log2 bucket
// report the bucket midpoint clamped into [min, max] — not the upper
// bound, which would overstate a narrow distribution by up to 2x.
func TestQuantileSingleBucketMidpoint(t *testing.T) {
	h := NewHistogram("narrow")
	h.Observe(65)
	h.Observe(100) // both in bucket [64, 127], midpoint 95.5
	for _, p := range []float64{50, 95, 99} {
		if got := h.Quantile(p); got != 95.5 {
			t.Fatalf("single-bucket Quantile(%v) = %v, want 95.5", p, got)
		}
	}
	if got := h.Quantile(0); got != 65 {
		t.Fatalf("Quantile(0) = %v, want min 65", got)
	}

	// Samples crowding the bucket's low edge: midpoint clamps to max.
	lo := NewHistogram("low-edge")
	lo.Observe(64)
	lo.Observe(65) // midpoint 95.5 > max 65 → clamp
	if got := lo.Quantile(99); got != 65 {
		t.Fatalf("low-edge Quantile(99) = %v, want clamped max 65", got)
	}

	// Samples crowding the high edge: midpoint clamps to min.
	hi := NewHistogram("high-edge")
	hi.Observe(126)
	hi.Observe(127) // midpoint 95.5 < min 126 → clamp
	if got := hi.Quantile(50); got != 126 {
		t.Fatalf("high-edge Quantile(50) = %v, want clamped min 126", got)
	}
}

// TestQuantileZeroBucket: the zero bucket is a single-bucket histogram
// whose bounds are [0, 0].
func TestQuantileZeroBucket(t *testing.T) {
	h := NewHistogram("zeros")
	h.Observe(0)
	h.Observe(0)
	for _, p := range []float64{50, 99, 100} {
		if got := h.Quantile(p); got != 0 {
			t.Fatalf("zero-bucket Quantile(%v) = %v, want 0", p, got)
		}
	}
}

// TestQuantileMultiBucketUnchanged: with samples across buckets the
// pre-existing nearest-rank upper-bound semantics still hold.
func TestQuantileMultiBucketUnchanged(t *testing.T) {
	h := NewHistogram("multi")
	h.Observe(1)   // bucket [1,1]
	h.Observe(5)   // bucket [4,7]
	h.Observe(200) // bucket [128,255]
	if got := h.Quantile(50); got != 7 {
		t.Fatalf("multi-bucket Quantile(50) = %v, want bucket upper bound 7", got)
	}
	if got := h.Quantile(100); got != 200 {
		t.Fatalf("multi-bucket Quantile(100) = %v, want max 200", got)
	}
}
