package live_test

// The server tests live in an external test package so they can drive the
// real runner pool against the endpoint: internal/runner imports live, so
// an in-package test importing runner would be an import cycle.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cwsp/internal/runner"
	"cwsp/internal/telemetry"
	"cwsp/internal/telemetry/live"
)

// get fetches a URL with a deadline and returns the body.
func get(t *testing.T, url string) string {
	t.Helper()
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestEndpointMidSweep is the acceptance integration test: while a runner
// pool is mid-campaign (cells gated on a channel), /metrics and /progress
// must serve live state — nonzero active cells, the campaign total, and a
// running worker — and after release they must settle to the final tallies.
func TestEndpointMidSweep(t *testing.T) {
	bus := live.NewBus()
	srv := live.NewServer(bus)
	// Observed by concurrent workers and scraped by HTTP handlers, so —
	// like the real bench harness — the source serves locked snapshots.
	var histMu sync.Mutex
	hist := telemetry.NewHistogram("cell_latency_us")
	srv.RegisterHistograms(func() map[string]*telemetry.Histogram {
		histMu.Lock()
		defer histMu.Unlock()
		snap := *hist
		return map[string]*telemetry.Histogram{"cell_latency_us": &snap}
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr

	const n = 4
	gate := make(chan struct{})
	started := make(chan int, n)
	cells := make([]runner.Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = runner.Cell[int]{
			Key: runner.Key{Kind: "test", Workload: fmt.Sprintf("w%d", i)},
			Run: func() (int, error) {
				started <- i
				<-gate
				histMu.Lock()
				hist.Observe(int64(1000 * (i + 1)))
				histMu.Unlock()
				return i * i, nil
			},
		}
	}
	pool := runner.NewPool[int](runner.Options{Jobs: 2, Bus: bus})
	poolDone := make(chan error, 1)
	var results []int
	go func() {
		var err error
		results, err = pool.Run(cells)
		poolDone <- err
	}()

	// Wait until both workers are inside a cell: the sweep is mid-flight.
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("pool never started cells")
		}
	}

	prog := get(t, base+"/progress")
	for _, want := range []string{
		`"cells_total": 4`,
		`"cells_active": 2`,
		`"state": "running"`,
	} {
		if !strings.Contains(prog, want) {
			t.Fatalf("mid-sweep /progress missing %q:\n%s", want, prog)
		}
	}
	metrics := get(t, base+"/metrics")
	for _, want := range []string{
		"cwsp_cells_total 4",
		"cwsp_cells_active 2",
		"# TYPE cwsp_recovery_outcomes_total counter",
		`cwsp_events_by_kind_total{kind="cell_started"} 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("mid-sweep /metrics missing %q:\n%s", want, metrics)
		}
	}

	close(gate)
	if err := <-poolDone; err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*i)
		}
	}

	prog = get(t, base+"/progress")
	for _, want := range []string{
		`"cells_done": 4`,
		`"cells_active": 0`,
		`"eta_ms": 0`,
	} {
		if !strings.Contains(prog, want) {
			t.Fatalf("final /progress missing %q:\n%s", want, prog)
		}
	}
	metrics = get(t, base+"/metrics")
	for _, want := range []string{
		"cwsp_cells_done 4",
		"cwsp_cells_executed_total 4",
		// The registered histogram rendered with buckets and quantiles.
		"# TYPE cwsp_cell_latency_us histogram",
		`cwsp_cell_latency_us_bucket{le="+Inf"} 4`,
		"cwsp_cell_latency_us_count 4",
		"cwsp_cell_latency_us_p50",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("final /metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestEventsSSE subscribes to /events over HTTP and checks the SSE frame
// shape of a published event.
func TestEventsSSE(t *testing.T) {
	bus := live.NewBus()
	srv := live.NewServer(bus)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The subscription is registered synchronously in the handler before
	// the first write, so once the preamble arrives, publishes are seen.
	rd := bufio.NewReader(resp.Body)
	line, err := rd.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": cwsp live events") {
		t.Fatalf("preamble %q, err %v", line, err)
	}

	bus.AddTotal(1)
	bus.Publish(live.Event{Kind: live.CellStarted, Worker: 3, Cell: "sse-cell"})

	deadline := time.After(5 * time.Second)
	frame := map[string]string{}
	for len(frame) < 3 {
		lineCh := make(chan string, 1)
		go func() {
			l, err := rd.ReadString('\n')
			if err != nil {
				l = ""
			}
			lineCh <- l
		}()
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for SSE frame, got %v", frame)
		case l := <-lineCh:
			l = strings.TrimRight(l, "\n")
			if k, v, ok := strings.Cut(l, ": "); ok && !strings.HasPrefix(l, ":") {
				frame[k] = v
			}
		}
	}
	if frame["event"] != "cell_started" {
		t.Fatalf("SSE event name %q, want cell_started", frame["event"])
	}
	if frame["id"] != "1" {
		t.Fatalf("SSE id %q, want 1", frame["id"])
	}
	for _, want := range []string{`"kind":"cell_started"`, `"worker":3`, `"cell":"sse-cell"`, `"total":1`} {
		if !strings.Contains(frame["data"], want) {
			t.Fatalf("SSE data missing %s: %s", want, frame["data"])
		}
	}
}

// TestIndexAndPprof: the index lists the routes and pprof answers.
func TestIndexAndPprof(t *testing.T) {
	srv := live.NewServer(live.NewBus())
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	idx := get(t, "http://"+addr+"/")
	for _, want := range []string{"/metrics", "/progress", "/events", "/debug/pprof/"} {
		if !strings.Contains(idx, want) {
			t.Fatalf("index missing %s:\n%s", want, idx)
		}
	}
	if pp := get(t, "http://"+addr+"/debug/pprof/cmdline"); pp == "" {
		t.Fatal("pprof cmdline empty")
	}
}
