// Package live is the campaign observability substrate: a lock-cheap,
// allocation-conscious event bus that the runner pool, the fault/recovery
// torture campaigns, and the simulation kernel publish typed events into,
// plus the HTTP endpoint (Prometheus /metrics, /progress JSON snapshots,
// an SSE /events stream, and net/http/pprof) that serves a *running*
// sweep — the post-hoc manifests of internal/telemetry report what
// happened; this package reports what is happening.
//
// Every publisher entry point is nil-guarded: a nil *Bus is a valid,
// fully disabled bus, so instrumented code pays one predictable branch
// and zero allocations when observability is off (the steady-state
// zero-alloc guarantee of the fast simulation kernel is preserved and
// regression-tested in internal/simtest).
package live

import (
	"encoding/json"
	"fmt"
)

// Kind discriminates the typed events on the bus.
type Kind uint8

// Event kinds. The zero Kind is invalid so an accidentally zero Event is
// visible in streams.
const (
	// CellStarted: a pool worker began executing a work-unit cell.
	CellStarted Kind = iota + 1
	// CellFinished: a worker finished a cell (Err != "" on failure).
	CellFinished
	// CellCached: a cell was served without executing — from the
	// persistent store, or by an identical cell in the same batch.
	CellCached
	// CrashInjected: a fault-injection campaign landed (or skipped) one
	// fault point at a crash ordinal.
	CrashInjected
	// RecoveryOutcome: one crash/recover/re-execute experiment concluded
	// (Outcome is clean/detected/diverged/error).
	RecoveryOutcome
	// PoolOccupancy: a periodic worker-pool occupancy sample.
	PoolOccupancy
	// StoreFlush: the persistent result store rewrote its dirty shards.
	StoreFlush
	// SimProgress: a long-running simulation advanced (Instrs/Cycles are
	// deltas since the machine's previous report).
	SimProgress
	// CampaignRecovered: the experiment daemon restored a journaled
	// campaign at boot (Cell is the campaign ID, Outcome its recovered
	// state).
	CampaignRecovered

	numKinds
)

var kindNames = [numKinds]string{
	CellStarted:     "cell_started",
	CellFinished:    "cell_finished",
	CellCached:      "cell_cached",
	CrashInjected:   "crash_injected",
	RecoveryOutcome: "recovery_outcome",
	PoolOccupancy:   "pool_occupancy",
	StoreFlush:      "store_flush",
	SimProgress:     "sim_progress",

	CampaignRecovered: "campaign_recovered",
}

// String names the kind (snake_case, stable: it is the SSE event name and
// the Prometheus label value).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON emits the kind name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("live: unknown event kind %q", s)
}

// Event is one bus message. It is a flat value type — no pointers into
// publisher state — so fan-out to subscribers is a struct copy and a
// subscriber can never observe a publisher's later mutations. Only the
// fields relevant to the Kind are set; Seq, TimeUnixNS, and the
// Active/Done/Total running totals are stamped by the bus at publish.
type Event struct {
	Seq        uint64 `json:"seq"`
	Kind       Kind   `json:"kind"`
	TimeUnixNS int64  `json:"t_ns"`

	// Cell events.
	Worker int    `json:"worker,omitempty"` // pool worker ordinal; -1 = coordinator
	Cell   string `json:"cell,omitempty"`   // work-unit key
	DurUS  int64  `json:"dur_us,omitempty"` // cell wall latency
	Err    string `json:"err,omitempty"`

	// Fault / recovery events.
	Fault   string `json:"fault,omitempty"`   // fault kind (torn-log, ...)
	Crash   int64  `json:"crash,omitempty"`   // crash cycle or ordinal
	Skipped bool   `json:"skipped,omitempty"` // no eligible victim
	Outcome string `json:"outcome,omitempty"` // clean|detected|diverged|error

	// Store events.
	Records int `json:"records,omitempty"` // records on disk after the flush
	Shards  int `json:"shards,omitempty"`  // dirty shards rewritten

	// Simulation progress (deltas since the machine's last report).
	Instrs int64 `json:"instrs,omitempty"`
	Cycles int64 `json:"cycles,omitempty"`

	// Running totals stamped by the bus on every event.
	Active int64 `json:"active"`
	Done   int64 `json:"done"`
	Total  int64 `json:"total"`
}
