package live

import (
	"sort"
	"time"
)

// WorkerState is one pool worker's row in a /progress snapshot.
type WorkerState struct {
	Worker int    `json:"worker"`
	State  string `json:"state"` // "idle" or "running"
	Cell   string `json:"cell,omitempty"`
	// RunningMS is how long the current cell has been executing.
	RunningMS int64 `json:"running_ms,omitempty"`
	// Done counts cells this worker has completed (or served cached).
	Done int64 `json:"done"`
}

// Snapshot is the point-in-time progress digest served at /progress and
// rendered by the campaign CLIs' live tickers. Every field is computed
// from the bus's atomic counters, so taking a snapshot never blocks a
// publisher (only the small worker table takes a lock).
type Snapshot struct {
	SchemaVersion int   `json:"schema_version"`
	TimeUnixNS    int64 `json:"t_ns"`

	// Cells.
	Total    int64 `json:"cells_total"`
	Done     int64 `json:"cells_done"`
	Active   int64 `json:"cells_active"`
	Cached   int64 `json:"cells_cached"`
	Executed int64 `json:"cells_executed"`
	Failed   int64 `json:"cells_failed"`
	// HitRatio is Cached/Done (0 when nothing is done yet).
	HitRatio float64 `json:"hit_ratio"`

	// Pace. ETA extrapolates the remaining cells at the observed
	// cells/sec; it is 0 until the first cell completes and -1 when the
	// total is unknown (no AddTotal yet).
	ElapsedMS   int64   `json:"elapsed_ms"`
	CellsPerSec float64 `json:"cells_per_sec"`
	ETAMS       int64   `json:"eta_ms"`

	// Fault campaigns.
	CrashesInjected int64 `json:"crashes_injected,omitempty"`
	CrashesSkipped  int64 `json:"crashes_skipped,omitempty"`
	Clean           int64 `json:"outcome_clean,omitempty"`
	Detected        int64 `json:"outcome_detected,omitempty"`
	Diverged        int64 `json:"outcome_diverged"`
	Errors          int64 `json:"outcome_errors,omitempty"`

	// Store / sim.
	StoreFlushes int64 `json:"store_flushes,omitempty"`
	StoreRecords int64 `json:"store_records,omitempty"`
	SimInstrs    int64 `json:"sim_instrs,omitempty"`
	SimCycles    int64 `json:"sim_cycles,omitempty"`

	// Bus health.
	EventsPublished uint64 `json:"events_published"`
	EventsDropped   int64  `json:"events_dropped"`

	Workers []WorkerState `json:"workers,omitempty"`
}

// SnapshotSchemaVersion versions the /progress JSON shape.
const SnapshotSchemaVersion = 1

// Snapshot digests the bus's current state. A nil bus returns the zero
// snapshot (stamped with the schema version so readers can still parse it).
func (b *Bus) Snapshot() Snapshot {
	now := time.Now()
	s := Snapshot{SchemaVersion: SnapshotSchemaVersion, TimeUnixNS: now.UnixNano(), ETAMS: -1}
	if b == nil {
		return s
	}
	s.Total = b.total.Load()
	s.Done = b.done.Load()
	s.Active = b.active.Load()
	s.Cached = b.cached.Load()
	s.Executed = b.executed.Load()
	s.Failed = b.failed.Load()
	if s.Done > 0 {
		s.HitRatio = float64(s.Cached) / float64(s.Done)
	}

	if start := b.startNS.Load(); start != 0 {
		s.ElapsedMS = (now.UnixNano() - start) / int64(time.Millisecond)
	}
	if s.ElapsedMS > 0 && s.Done > 0 {
		s.CellsPerSec = float64(s.Done) / (float64(s.ElapsedMS) / 1000)
	}
	switch {
	case s.Total <= 0:
		s.ETAMS = -1 // unknown denominator
	case s.Done >= s.Total:
		s.ETAMS = 0
	case s.CellsPerSec > 0:
		// Clamp: a burst of cached cells completing inside one tick window
		// can race Done past Total between the loads above, and a tiny
		// observed rate against a huge remaining count overflows the
		// float→int conversion — both used to surface as a negative ETA.
		eta := float64(s.Total-s.Done) / s.CellsPerSec * 1000
		switch {
		case !(eta > 0):
			s.ETAMS = 0
		case eta > float64(int64(1)<<50):
			s.ETAMS = int64(1) << 50
		default:
			s.ETAMS = int64(eta)
		}
	}

	s.CrashesInjected = b.crashes.Load()
	s.CrashesSkipped = b.skipped.Load()
	s.Clean = b.clean.Load()
	s.Detected = b.detected.Load()
	s.Diverged = b.diverged.Load()
	s.Errors = b.errored.Load()

	s.StoreFlushes = b.flushes.Load()
	s.StoreRecords = b.flushRecords.Load()
	s.SimInstrs = b.simInstrs.Load()
	s.SimCycles = b.simCycles.Load()

	s.EventsPublished = b.seq.Load()
	s.EventsDropped = b.dropped.Load()

	b.mu.Lock()
	for id, w := range b.workers {
		ws := WorkerState{Worker: id, State: "idle", Done: w.done}
		if w.startNS != 0 {
			ws.State = "running"
			ws.Cell = w.cell
			ws.RunningMS = (now.UnixNano() - w.startNS) / int64(time.Millisecond)
		}
		s.Workers = append(s.Workers, ws)
	}
	b.mu.Unlock()
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
	return s
}
