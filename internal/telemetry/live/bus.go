package live

import (
	"sync"
	"sync/atomic"
	"time"
)

// subBuf is the default per-subscriber ring depth. A subscriber that
// cannot drain this many events between two publishes starts losing
// events (counted, never blocking the publisher).
const subBuf = 256

// Sub is one bus subscription: a buffered event channel plus its drop
// counter. Receive from C; call the bus's Unsubscribe when done.
type Sub struct {
	C       chan Event
	dropped atomic.Int64
}

// Dropped returns how many events this subscriber lost to a full buffer.
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Bus is the live event fan-out point. Publish is lock-free on the hot
// path: running totals are atomics, the subscriber list is an atomically
// swapped copy-on-write slice, and a slow subscriber's full channel drops
// the event for that subscriber rather than blocking the publisher — the
// hot path (a pool worker between simulation cells, or the simulation
// kernel itself) never waits on an HTTP client. A nil *Bus is a valid
// disabled bus: every method is a nil-guarded no-op.
type Bus struct {
	seq     atomic.Uint64
	startNS atomic.Int64 // unix nanos of the first event (ETA base)

	total    atomic.Int64 // cells submitted (AddTotal)
	done     atomic.Int64 // cached + executed
	cached   atomic.Int64 // served without executing
	executed atomic.Int64
	active   atomic.Int64 // cells currently running
	failed   atomic.Int64 // finished with Err

	crashes  atomic.Int64 // fault points landed
	skipped  atomic.Int64 // fault points with no eligible victim
	clean    atomic.Int64
	detected atomic.Int64
	diverged atomic.Int64
	errored  atomic.Int64

	flushes      atomic.Int64
	flushRecords atomic.Int64 // records on disk after the latest flush

	simInstrs atomic.Int64 // cumulative simulated instructions
	simCycles atomic.Int64

	counts  [numKinds]atomic.Int64
	dropped atomic.Int64 // events lost across all subscribers

	mu      sync.Mutex // guards subs swap and the worker table
	subs    atomic.Pointer[[]*Sub]
	workers map[int]workerView
}

// workerView is the latest known state of one pool worker.
type workerView struct {
	cell    string
	startNS int64 // 0 = idle
	done    int64 // cells this worker completed
}

// NewBus builds an enabled bus.
func NewBus() *Bus { return &Bus{workers: map[int]workerView{}} }

// Enabled reports whether publishing reaches anything.
func (b *Bus) Enabled() bool { return b != nil }

// AddTotal announces n more expected cells (the denominator of /progress).
func (b *Bus) AddTotal(n int) {
	if b == nil || n == 0 {
		return
	}
	b.startNS.CompareAndSwap(0, time.Now().UnixNano())
	b.total.Add(int64(n))
}

// Publish stamps and fans out one event. Safe for concurrent use; a nil
// bus ignores the call. The running totals stamped onto the event are the
// post-update values, so a subscriber can render progress from any single
// event without further queries.
func (b *Bus) Publish(e Event) {
	if b == nil {
		return
	}
	now := time.Now().UnixNano()
	b.startNS.CompareAndSwap(0, now)
	e.Seq = b.seq.Add(1)
	e.TimeUnixNS = now
	if int(e.Kind) < len(b.counts) {
		b.counts[e.Kind].Add(1)
	}

	switch e.Kind {
	case CellStarted:
		b.active.Add(1)
	case CellFinished:
		b.active.Add(-1)
		b.done.Add(1)
		b.executed.Add(1)
		if e.Err != "" {
			b.failed.Add(1)
		}
	case CellCached:
		b.done.Add(1)
		b.cached.Add(1)
	case CrashInjected:
		if e.Skipped {
			b.skipped.Add(1)
		} else {
			b.crashes.Add(1)
		}
	case RecoveryOutcome:
		switch e.Outcome {
		case "clean":
			b.clean.Add(1)
		case "detected":
			b.detected.Add(1)
		case "diverged":
			b.diverged.Add(1)
		default:
			b.errored.Add(1)
		}
	case StoreFlush:
		b.flushes.Add(1)
		b.flushRecords.Store(int64(e.Records))
	case SimProgress:
		b.simInstrs.Add(e.Instrs)
		b.simCycles.Add(e.Cycles)
	}

	e.Active = b.active.Load()
	e.Done = b.done.Load()
	e.Total = b.total.Load()

	switch e.Kind {
	case CellStarted, CellFinished, CellCached:
		b.updateWorker(e)
	}

	if subs := b.subs.Load(); subs != nil {
		for _, s := range *subs {
			select {
			case s.C <- e:
			default:
				s.dropped.Add(1)
				b.dropped.Add(1)
			}
		}
	}
}

// updateWorker maintains the per-worker state table behind /progress.
// Only cell events (a few per millisecond at most — cells are whole
// simulations) take this lock; the simulation kernel's SimProgress path
// never does.
func (b *Bus) updateWorker(e Event) {
	b.mu.Lock()
	w := b.workers[e.Worker]
	switch e.Kind {
	case CellStarted:
		w.cell, w.startNS = e.Cell, e.TimeUnixNS
	case CellFinished, CellCached:
		w.cell, w.startNS = "", 0
		w.done++
	}
	b.workers[e.Worker] = w
	b.mu.Unlock()
}

// Subscribe registers a new subscriber with the default buffer depth.
func (b *Bus) Subscribe() *Sub { return b.SubscribeBuf(subBuf) }

// SubscribeBuf registers a subscriber with an explicit buffer depth.
// Returns nil on a nil bus.
func (b *Bus) SubscribeBuf(depth int) *Sub {
	if b == nil {
		return nil
	}
	if depth < 1 {
		depth = 1
	}
	s := &Sub{C: make(chan Event, depth)}
	b.mu.Lock()
	defer b.mu.Unlock()
	var cur []*Sub
	if p := b.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]*Sub, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, s)
	b.subs.Store(&next)
	return s
}

// Unsubscribe removes a subscriber; its channel is not closed (a racing
// Publish may still be sending), the subscriber simply stops receiving.
func (b *Bus) Unsubscribe(s *Sub) {
	if b == nil || s == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.subs.Load()
	if p == nil {
		return
	}
	next := make([]*Sub, 0, len(*p))
	for _, cur := range *p {
		if cur != s {
			next = append(next, cur)
		}
	}
	b.subs.Store(&next)
}

// Dropped returns the total events lost to slow subscribers.
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// KindCount returns how many events of one kind were published.
func (b *Bus) KindCount(k Kind) int64 {
	if b == nil || int(k) >= len(b.counts) {
		return 0
	}
	return b.counts[k].Load()
}
