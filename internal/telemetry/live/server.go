package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the HTTP observability endpoint a campaign CLI mounts with
// -http. Routes:
//
//	/metrics       Prometheus text-format counters, gauges, histograms
//	/progress      JSON Snapshot (cells done/total, hit ratio, ETA, workers)
//	/events        Server-Sent Events stream of the bus
//	/debug/pprof/  net/http/pprof (profile a hot sweep while it runs)
//	/              plain-text index of the above
//
// The server holds no campaign state of its own: everything is rendered
// from the Bus (and registered histogram sources) at request time, so the
// same server instance serves any number of sequential sweeps.
type Server struct {
	bus *Bus

	mu      sync.Mutex
	sources []HistSource

	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server over the bus (which may be shared with any
// number of publishers).
func NewServer(b *Bus) *Server { return &Server{bus: b} }

// Bus returns the server's bus.
func (s *Server) Bus() *Bus { return s.bus }

// RegisterHistograms adds a histogram source rendered into /metrics
// (e.g. the runner pool's cell-latency histogram, or a simulator
// telemetry attachment's persist-latency histograms).
func (s *Server) RegisterHistograms(src HistSource) {
	if s == nil || src == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

func (s *Server) sourcesCopy() []HistSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HistSource(nil), s.sources...)
}

// Handler returns the route mux (exported for tests and for embedding
// into a larger daemon mux — the cwspd service will mount it unchanged).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr (":0" picks a free port) and serves in a background
// goroutine, returning the bound address. Call Close to stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and any in-flight handlers (SSE streams see
// their request context cancelled).
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "cwsp live observability endpoint\n\n")
	fmt.Fprintf(w, "  /metrics       Prometheus text format\n")
	fmt.Fprintf(w, "  /progress      JSON progress snapshot\n")
	fmt.Fprintf(w, "  /events        SSE event stream\n")
	fmt.Fprintf(w, "  /debug/pprof/  pprof profiles\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteProm(w, s.bus, s.sourcesCopy())
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.bus.Snapshot())
}

// handleEvents streams the bus over SSE. Each event is emitted as
//
//	event: <kind>
//	id: <seq>
//	data: <event JSON>
//
// A slow client loses events (the bus drops at the subscription buffer,
// never blocking publishers) but the stream itself stays live; a comment
// heartbeat keeps idle connections from timing out.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := s.bus.SubscribeBuf(1024)
	if sub == nil {
		http.Error(w, "no event bus attached", http.StatusServiceUnavailable)
		return
	}
	defer s.bus.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, ": cwsp live events\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e := <-sub.C:
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.Kind, e.Seq, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
