package live

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"cwsp/internal/telemetry"
)

// HistSource supplies named histograms for /metrics scrapes. Providers
// are called at scrape time, so the rendered buckets always reflect the
// live state (telemetry.Histogram observation is single-writer in this
// codebase; scraping reads a consistent-enough view for monitoring).
type HistSource func() map[string]*telemetry.Histogram

// WriteProm renders the bus counters and every provided histogram in the
// Prometheus text exposition format (version 0.0.4). All series carry the
// cwsp_ prefix so a shared scrape config can select them.
func WriteProm(w io.Writer, b *Bus, sources []HistSource) error {
	s := b.Snapshot()
	pw := &promWriter{w: w}

	pw.gauge("cwsp_cells_total", "Cells submitted to the pool.", float64(s.Total))
	pw.gauge("cwsp_cells_done", "Cells completed (cached + executed).", float64(s.Done))
	pw.gauge("cwsp_cells_active", "Cells currently executing.", float64(s.Active))
	pw.counter("cwsp_cells_cached_total", "Cells served without executing.", float64(s.Cached))
	pw.counter("cwsp_cells_executed_total", "Cells actually executed.", float64(s.Executed))
	pw.counter("cwsp_cells_failed_total", "Cells that finished with an error.", float64(s.Failed))
	pw.gauge("cwsp_cache_hit_ratio", "Cached/done cells.", s.HitRatio)
	pw.gauge("cwsp_cells_per_sec", "Observed completion rate.", s.CellsPerSec)

	pw.counter("cwsp_crashes_injected_total", "Fault points that landed.", float64(s.CrashesInjected))
	pw.counter("cwsp_crashes_skipped_total", "Fault points with no eligible victim.", float64(s.CrashesSkipped))
	pw.head("cwsp_recovery_outcomes_total", "Recovery experiment outcomes.", "counter")
	for _, oc := range []struct {
		label string
		v     int64
	}{{"clean", s.Clean}, {"detected", s.Detected}, {"diverged", s.Diverged}, {"error", s.Errors}} {
		pw.line(fmt.Sprintf("cwsp_recovery_outcomes_total{outcome=%q} %s", oc.label, fnum(float64(oc.v))))
	}

	pw.counter("cwsp_store_flushes_total", "Persistent store shard flushes.", float64(s.StoreFlushes))
	pw.gauge("cwsp_store_records", "Records on disk after the latest flush.", float64(s.StoreRecords))
	pw.counter("cwsp_sim_instrs_total", "Simulated instructions reported by live machines.", float64(s.SimInstrs))
	pw.counter("cwsp_sim_cycles_total", "Simulated cycles reported by live machines.", float64(s.SimCycles))

	pw.counter("cwsp_events_published_total", "Events published on the bus.", float64(s.EventsPublished))
	pw.counter("cwsp_events_dropped_total", "Events dropped at slow subscribers.", float64(s.EventsDropped))
	if b != nil {
		pw.head("cwsp_events_by_kind_total", "Events published, by kind.", "counter")
		for k := Kind(1); k < numKinds; k++ {
			pw.line(fmt.Sprintf("cwsp_events_by_kind_total{kind=%q} %s", k.String(), fnum(float64(b.KindCount(k)))))
		}
	}

	pw.gauge("cwsp_goroutines", "Goroutines in the serving process.", float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pw.gauge("cwsp_heap_alloc_bytes", "Live heap bytes.", float64(ms.HeapAlloc))
	pw.counter("cwsp_mallocs_total", "Cumulative heap objects allocated.", float64(ms.Mallocs))

	for _, src := range sources {
		if src == nil {
			continue
		}
		hists := src()
		names := make([]string, 0, len(hists))
		for n := range hists {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			writeHist(pw, n, hists[n])
		}
	}
	return pw.err
}

// writeHist renders one log2-bucketed telemetry.Histogram as a Prometheus
// histogram (cumulative le series from the bucket upper bounds) plus
// _p50/_p95/_p99 gauges computed by Histogram.Quantile — including its
// pinned edge semantics: an empty histogram reports 0 and a single-bucket
// histogram reports the clamped bucket midpoint.
func writeHist(pw *promWriter, name string, h *telemetry.Histogram) {
	if h == nil {
		return
	}
	mn := "cwsp_" + promName(name)
	pw.head(mn, "Log2-bucketed histogram "+name+".", "histogram")
	cum := int64(0)
	for _, b := range h.Buckets() {
		cum += b.Count
		pw.line(fmt.Sprintf("%s_bucket{le=%q} %d", mn, fnum(float64(b.Hi)), cum))
	}
	pw.line(fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", mn, h.Count()))
	pw.line(fmt.Sprintf("%s_sum %d", mn, h.Sum()))
	pw.line(fmt.Sprintf("%s_count %d", mn, h.Count()))
	for _, q := range []struct {
		suffix string
		p      float64
	}{{"_p50", 50}, {"_p95", 95}, {"_p99", 99}} {
		pw.gauge(mn+q.suffix, "", h.Quantile(q.p))
	}
}

// promName maps internal histogram names (persist_lat, stall.pb,
// cell_latency_us) onto the Prometheus name charset.
func promName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promWriter accumulates the first write error instead of forcing error
// checks at every exposition line.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) line(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s+"\n")
}

func (p *promWriter) head(name, help, typ string) {
	if help != "" {
		p.line("# HELP " + name + " " + help)
	}
	p.line("# TYPE " + name + " " + typ)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.head(name, help, "gauge")
	p.line(name + " " + fnum(v))
}

func (p *promWriter) counter(name, help string, v float64) {
	p.head(name, help, "counter")
	p.line(name + " " + fnum(v))
}

// fnum formats a sample value: integral values print without an exponent
// or trailing zeros so the exposition stays human-diffable.
func fnum(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
