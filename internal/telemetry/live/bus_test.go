package live

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilBusSafe pins the disabled-bus contract every publisher relies
// on: a nil *Bus accepts every call as a no-op.
func TestNilBusSafe(t *testing.T) {
	var b *Bus
	b.AddTotal(10)
	b.Publish(Event{Kind: CellStarted})
	b.Unsubscribe(b.SubscribeBuf(4))
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	if b.Dropped() != 0 || b.KindCount(CellStarted) != 0 {
		t.Fatal("nil bus reports nonzero counters")
	}
	s := b.Snapshot()
	if s.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("nil snapshot schema %d", s.SchemaVersion)
	}
	if s.ETAMS != -1 {
		t.Fatalf("nil snapshot ETA %d, want -1 (unknown)", s.ETAMS)
	}
}

// TestBusCounters drives one synthetic campaign through every event kind
// and checks the snapshot a /progress client would see.
func TestBusCounters(t *testing.T) {
	b := NewBus()
	b.AddTotal(4)
	b.Publish(Event{Kind: CellCached, Worker: -1, Cell: "a"})
	b.Publish(Event{Kind: CellStarted, Worker: 0, Cell: "b"})
	b.Publish(Event{Kind: CellFinished, Worker: 0, Cell: "b", DurUS: 1200})
	b.Publish(Event{Kind: CellStarted, Worker: 1, Cell: "c"})
	b.Publish(Event{Kind: CellFinished, Worker: 1, Cell: "c", Err: "boom"})
	b.Publish(Event{Kind: CellStarted, Worker: 0, Cell: "d"})

	b.Publish(Event{Kind: CrashInjected, Fault: "torn-log", Crash: 1})
	b.Publish(Event{Kind: CrashInjected, Fault: "drop-wpq", Skipped: true})
	b.Publish(Event{Kind: RecoveryOutcome, Outcome: "clean"})
	b.Publish(Event{Kind: RecoveryOutcome, Outcome: "detected"})
	b.Publish(Event{Kind: RecoveryOutcome, Outcome: "diverged"})
	b.Publish(Event{Kind: RecoveryOutcome, Outcome: "error"})
	b.Publish(Event{Kind: StoreFlush, Shards: 3, Records: 17})
	b.Publish(Event{Kind: SimProgress, Instrs: 100, Cycles: 50})
	b.Publish(Event{Kind: SimProgress, Instrs: 10, Cycles: 5})

	s := b.Snapshot()
	if s.Total != 4 || s.Done != 3 || s.Active != 1 {
		t.Fatalf("cells total/done/active = %d/%d/%d, want 4/3/1", s.Total, s.Done, s.Active)
	}
	if s.Cached != 1 || s.Executed != 2 || s.Failed != 1 {
		t.Fatalf("cached/executed/failed = %d/%d/%d, want 1/2/1", s.Cached, s.Executed, s.Failed)
	}
	if want := 1.0 / 3.0; s.HitRatio != want {
		t.Fatalf("hit ratio %v, want %v", s.HitRatio, want)
	}
	if s.CrashesInjected != 1 || s.CrashesSkipped != 1 {
		t.Fatalf("crashes %d/%d, want 1/1", s.CrashesInjected, s.CrashesSkipped)
	}
	if s.Clean != 1 || s.Detected != 1 || s.Diverged != 1 || s.Errors != 1 {
		t.Fatalf("outcomes %d/%d/%d/%d, want 1 each", s.Clean, s.Detected, s.Diverged, s.Errors)
	}
	if s.StoreFlushes != 1 || s.StoreRecords != 17 {
		t.Fatalf("flushes %d records %d, want 1/17", s.StoreFlushes, s.StoreRecords)
	}
	if s.SimInstrs != 110 || s.SimCycles != 55 {
		t.Fatalf("sim instrs/cycles %d/%d, want 110/55", s.SimInstrs, s.SimCycles)
	}
	if b.KindCount(RecoveryOutcome) != 4 {
		t.Fatalf("kind count %d, want 4", b.KindCount(RecoveryOutcome))
	}

	// Worker table: worker 0 is running "d", worker 1 idle with one done.
	var w0, w1 *WorkerState
	for i := range s.Workers {
		switch s.Workers[i].Worker {
		case 0:
			w0 = &s.Workers[i]
		case 1:
			w1 = &s.Workers[i]
		}
	}
	if w0 == nil || w0.State != "running" || w0.Cell != "d" {
		t.Fatalf("worker 0 state %+v, want running d", w0)
	}
	if w1 == nil || w1.State != "idle" || w1.Done != 1 {
		t.Fatalf("worker 1 state %+v, want idle with 1 done", w1)
	}
}

// TestEventStampsRunningTotals: any single event carries enough to render
// progress without further queries.
func TestEventStampsRunningTotals(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe()
	defer b.Unsubscribe(sub)
	b.AddTotal(2)
	b.Publish(Event{Kind: CellStarted, Worker: 0, Cell: "x"})
	b.Publish(Event{Kind: CellFinished, Worker: 0, Cell: "x"})
	e1 := <-sub.C
	e2 := <-sub.C
	if e1.Seq == 0 || e2.Seq != e1.Seq+1 {
		t.Fatalf("seq not monotonic: %d then %d", e1.Seq, e2.Seq)
	}
	if e1.TimeUnixNS == 0 {
		t.Fatal("event missing timestamp")
	}
	if e1.Active != 1 || e1.Done != 0 || e1.Total != 2 {
		t.Fatalf("started stamped %d/%d/%d, want 1/0/2", e1.Active, e1.Done, e1.Total)
	}
	if e2.Active != 0 || e2.Done != 1 || e2.Total != 2 {
		t.Fatalf("finished stamped %d/%d/%d, want 0/1/2", e2.Active, e2.Done, e2.Total)
	}
}

// TestSlowSubscriberDrops: a subscriber that never drains loses events
// (counted) while the publisher completes immediately — the bus must
// never block a pool worker on an HTTP client.
func TestSlowSubscriberDrops(t *testing.T) {
	b := NewBus()
	slow := b.SubscribeBuf(2)
	defer b.Unsubscribe(slow)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(Event{Kind: SimProgress, Instrs: 1})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a full subscriber")
	}
	if got := slow.Dropped(); got != 98 {
		t.Fatalf("subscriber dropped %d, want 98 (buffer 2 of 100)", got)
	}
	if got := b.Dropped(); got != 98 {
		t.Fatalf("bus dropped %d, want 98", got)
	}
	// The buffered prefix is intact and ordered.
	e1, e2 := <-slow.C, <-slow.C
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("buffered seqs %d,%d, want 1,2", e1.Seq, e2.Seq)
	}
}

// TestConcurrentPublishSubscribe hammers the bus from many publishers
// while subscribers churn and a slow reader lags — the -race CI step
// turns any unsynchronized access into a failure, and the final counters
// must still balance exactly.
func TestConcurrentPublishSubscribe(t *testing.T) {
	const (
		publishers = 8
		perPub     = 500
	)
	b := NewBus()
	b.AddTotal(publishers * perPub)

	slow := b.SubscribeBuf(1)
	stopDrain := make(chan struct{})
	var drainWG sync.WaitGroup
	drainWG.Add(1)
	go func() { // drains sporadically: keeps the drop path hot
		defer drainWG.Done()
		for {
			select {
			case <-stopDrain:
				return
			case <-slow.C:
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(Event{Kind: CellStarted, Worker: worker, Cell: "w"})
				b.Publish(Event{Kind: CellFinished, Worker: worker, Cell: "w"})
			}
		}(p)
	}
	// Concurrent snapshotters and subscriber churn.
	stopSnap := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stopSnap:
				return
			default:
				_ = b.Snapshot()
				s := b.Subscribe()
				b.Unsubscribe(s)
			}
		}
	}()

	wg.Wait()
	close(stopSnap)
	snapWG.Wait()
	close(stopDrain)
	drainWG.Wait()

	s := b.Snapshot()
	if want := int64(publishers * perPub); s.Done != want || s.Executed != want {
		t.Fatalf("done/executed %d/%d, want %d", s.Done, s.Executed, want)
	}
	if s.Active != 0 {
		t.Fatalf("active %d after all finished, want 0", s.Active)
	}
}

// TestKindJSONRoundTrip pins the wire names of every kind.
func TestKindJSONRoundTrip(t *testing.T) {
	want := map[Kind]string{
		CellStarted:     "cell_started",
		CellFinished:    "cell_finished",
		CellCached:      "cell_cached",
		CrashInjected:   "crash_injected",
		RecoveryOutcome: "recovery_outcome",
		PoolOccupancy:   "pool_occupancy",
		StoreFlush:      "store_flush",
		SimProgress:     "sim_progress",
	}
	for k, name := range want {
		raw, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != `"`+name+`"` {
			t.Fatalf("kind %d marshals to %s, want %q", k, raw, name)
		}
		var back Kind
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %q round-tripped to %d, want %d", name, back, k)
		}
	}
	var bad Kind
	if err := json.Unmarshal([]byte(`"no_such_kind"`), &bad); err == nil {
		t.Fatal("unknown kind name parsed")
	}
}

// TestFormatProgress pins the ticker line shape.
func TestFormatProgress(t *testing.T) {
	s := Snapshot{Total: 500, Done: 37, Active: 8, Cached: 12, CellsPerSec: 41.2, ETAMS: 56_000}
	line := FormatProgress(s)
	want := "cells 37/500 (7.4%) | active 8 | cached 12 | 41.2 cells/s | eta 56s"
	if line != want {
		t.Fatalf("ticker line\n got %q\nwant %q", line, want)
	}
	s.Diverged = 2
	s.Errors = 1
	if line := FormatProgress(s); line != "cells 37/500 (7.4%) | active 8 | cached 12 | diverged 2 errors 1 | 41.2 cells/s | eta 56s" {
		t.Fatalf("fault ticker line %q", line)
	}
	if line := FormatProgress(Snapshot{Done: 3, ETAMS: -1}); line != "cells 3/? | active 0" {
		t.Fatalf("unknown-total line %q", line)
	}
}

// TestSnapshotETANeverNegative pins the ETA clamp: a burst of cached cells
// racing Done past Total inside one tick window, or a tiny rate against a
// huge remainder overflowing the float→int conversion, must never surface
// as a negative ETA.
func TestSnapshotETANeverNegative(t *testing.T) {
	b := NewBus()
	b.AddTotal(1)
	b.startNS.Store(time.Now().Add(-time.Hour).UnixNano())
	b.done.Store(5) // cached burst overshot the submitted total
	if s := b.Snapshot(); s.ETAMS != 0 {
		t.Fatalf("overshoot ETA=%d, want 0", s.ETAMS)
	}

	b2 := NewBus()
	b2.AddTotal(1)
	b2.total.Store(int64(1) << 62) // huge remainder at ~1 cell/hour
	b2.startNS.Store(time.Now().Add(-time.Hour).UnixNano())
	b2.done.Store(1)
	s := b2.Snapshot()
	if s.ETAMS < 0 {
		t.Fatalf("overflow ETA=%d, want clamped non-negative", s.ETAMS)
	}
	if s.ETAMS != int64(1)<<50 {
		t.Fatalf("huge-remainder ETA=%d, want clamp ceiling %d", s.ETAMS, int64(1)<<50)
	}
}
