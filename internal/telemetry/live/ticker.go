package live

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Ticker renders a one-line, carriage-return-refreshed progress/ETA line
// from the same Snapshot code path /progress serves, so what a terminal
// shows and what an HTTP client scrapes can never disagree. Start it once
// the campaign's totals are on the bus; Stop prints the final state on
// its own line.
type Ticker struct {
	w    io.Writer
	bus  *Bus
	tick *time.Ticker
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
	last int
}

// StartTicker begins refreshing every interval (min 100ms). Returns nil
// on a nil bus or writer — callers may unconditionally Stop the result.
func StartTicker(w io.Writer, b *Bus, interval time.Duration) *Ticker {
	if w == nil || b == nil {
		return nil
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := &Ticker{w: w, bus: b, tick: time.NewTicker(interval), done: make(chan struct{})}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case <-t.done:
				return
			case <-t.tick.C:
				t.render(false)
			}
		}
	}()
	return t
}

// Stop halts refreshing and prints the final line. Safe on nil and safe
// to call more than once.
func (t *Ticker) Stop() {
	if t == nil {
		return
	}
	t.once.Do(func() {
		t.tick.Stop()
		close(t.done)
		t.wg.Wait()
		t.render(true)
	})
}

func (t *Ticker) render(final bool) {
	s := t.bus.Snapshot()
	line := FormatProgress(s)
	// Pad over the previous line so a shrinking line leaves no residue.
	if pad := t.last - len(line); pad > 0 {
		line += strings.Repeat(" ", pad)
	}
	t.last = len(line)
	if final {
		fmt.Fprintf(t.w, "\r%s\n", strings.TrimRight(line, " "))
		return
	}
	fmt.Fprintf(t.w, "\r%s", line)
}

// FormatProgress renders one snapshot as the ticker line, e.g.
//
//	cells 37/500 (7.4%) | active 8 | cached 12 | diverged 0 | 41.2 cells/s | eta 56s
func FormatProgress(s Snapshot) string {
	var b strings.Builder
	if s.Total > 0 {
		fmt.Fprintf(&b, "cells %d/%d (%.1f%%)", s.Done, s.Total, 100*float64(s.Done)/float64(s.Total))
	} else {
		fmt.Fprintf(&b, "cells %d/?", s.Done)
	}
	fmt.Fprintf(&b, " | active %d", s.Active)
	if s.Cached > 0 {
		fmt.Fprintf(&b, " | cached %d", s.Cached)
	}
	if s.CrashesInjected+s.CrashesSkipped > 0 || s.Clean+s.Detected+s.Diverged+s.Errors > 0 {
		fmt.Fprintf(&b, " | diverged %d", s.Diverged)
		if s.Errors > 0 {
			fmt.Fprintf(&b, " errors %d", s.Errors)
		}
	}
	if s.CellsPerSec > 0 {
		fmt.Fprintf(&b, " | %.1f cells/s", s.CellsPerSec)
	}
	switch {
	case s.ETAMS > 0:
		fmt.Fprintf(&b, " | eta %s", (time.Duration(s.ETAMS) * time.Millisecond).Round(time.Second))
	case s.ETAMS == 0 && s.Total > 0:
		fmt.Fprintf(&b, " | done in %s", (time.Duration(s.ElapsedMS) * time.Millisecond).Round(time.Millisecond))
	}
	return b.String()
}
