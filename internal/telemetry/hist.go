// Package telemetry provides the simulator's observability primitives:
// log-bucketed latency histograms, ring-buffered time-series sampling with
// CSV/JSON export, a streaming Chrome-trace-event (Perfetto) writer, and
// the versioned run manifest the CLIs emit. The package is deliberately
// free of simulator dependencies so any layer (sim, bench, examples) can
// use it; internal/sim owns the glue that feeds machine state into it.
package telemetry

import "math/bits"

// numBuckets covers the full non-negative int64 range: bucket 0 holds the
// value 0 and bucket b (1..64) holds values in [2^(b-1), 2^b - 1].
const numBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative int64 samples
// (latencies in cycles, region lengths, ...). Observing is O(1) and
// allocation-free; quantiles are bucket-resolution approximations that
// report the upper bound of the bucket containing the requested rank
// (exact min/max are tracked separately). Negative samples are clamped
// to 0 so a defensive caller cannot corrupt the bucket index.
type Histogram struct {
	Name string

	counts [numBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram builds a named histogram.
func NewHistogram(name string) *Histogram { return &Histogram{Name: name} }

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket b.
func BucketBounds(b int) (lo, hi int64) {
	if b <= 0 {
		return 0, 0
	}
	if b >= 64 {
		return int64(^uint64(0)>>1)/2 + 1, int64(^uint64(0) >> 1)
	}
	return 1 << (b - 1), 1<<b - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the p-th percentile (0..100) at
// bucket resolution: the upper bound of the bucket holding the
// nearest-rank sample, clamped to the observed max.
//
// Edge semantics are pinned (tests and the Prometheus renderer rely on
// them): an empty histogram returns 0 for every p, and a histogram whose
// samples all landed in one bucket returns that bucket's midpoint clamped
// to the observed [min, max] — the upper bound would systematically
// overstate a narrow distribution by up to 2x, which a regression gate
// comparing quantiles must not inherit.
func (h *Histogram) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return float64(h.Min())
	}
	for b := 0; b < numBuckets; b++ {
		if h.counts[b] == 0 {
			continue
		}
		if h.counts[b] == h.count {
			lo, hi := BucketBounds(b)
			mid := (float64(lo) + float64(hi)) / 2
			if mid < float64(h.min) {
				mid = float64(h.min)
			}
			if mid > float64(h.max) {
				mid = float64(h.max)
			}
			return mid
		}
		break
	}
	rank := int64(p / 100 * float64(h.count))
	if float64(rank) < p/100*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for b := 0; b < numBuckets; b++ {
		seen += h.counts[b]
		if seen >= rank {
			_, hi := BucketBounds(b)
			if hi > h.max {
				hi = h.max
			}
			return float64(hi)
		}
	}
	return float64(h.max)
}

// Bucket is one non-empty histogram bucket with its inclusive bounds.
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for b := 0; b < numBuckets; b++ {
		if h.counts[b] == 0 {
			continue
		}
		lo, hi := BucketBounds(b)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: h.counts[b]})
	}
	return out
}

// HistSummary is the serializable digest of a histogram (manifest schema).
type HistSummary struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Summary digests the histogram for the run manifest.
func (h *Histogram) Summary() HistSummary {
	return HistSummary{
		Count:   h.Count(),
		Sum:     h.Sum(),
		Min:     h.Min(),
		Max:     h.Max(),
		Mean:    h.Mean(),
		P50:     h.Quantile(50),
		P95:     h.Quantile(95),
		P99:     h.Quantile(99),
		Buckets: h.Buckets(),
	}
}
