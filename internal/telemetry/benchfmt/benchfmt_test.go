package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"

	"cwsp/internal/telemetry"
)

// sample returns a plausible smoke record; tests mutate copies of it.
func sample() *Record {
	r := New("smoke", "cwspbench")
	r.Salt = "cwsp-sim-v1"
	r.Scale = "smoke"
	r.Experiments = []string{"fig06"}
	r.Jobs = 4
	r.WallMS = 2000
	r.Cells = 40
	r.CacheHits = 10
	r.Executed = 30
	r.CellsPerSec = 15
	r.Allocs = 1_000_000
	r.AllocBytes = 64_000_000
	r.CellLatencyUS = Quantiles{P50: 50_000, P95: 90_000, P99: 120_000}
	return r
}

func TestRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	r := sample()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "smoke" || back.Cells != 40 || back.CellLatencyUS != r.CellLatencyUS {
		t.Fatalf("round trip mangled the record: %+v", back)
	}
	if back.Host.GoVersion == "" || back.Host.OS == "" {
		t.Fatalf("host fingerprint missing: %+v", back.Host)
	}
}

func TestValidateRejects(t *testing.T) {
	r := sample()
	r.SchemaVersion = 99
	if err := r.Validate(); err == nil {
		t.Fatal("future schema version accepted")
	}
	r = sample()
	r.Name = ""
	if err := r.Validate(); err == nil {
		t.Fatal("nameless record accepted")
	}
}

func TestNameFromPath(t *testing.T) {
	for path, want := range map[string]string{
		"BENCH_smoke.json":          "smoke",
		"baselines/BENCH_full.json": "full",
		"/tmp/x/BENCH_kernel.json":  "kernel",
		"custom.json":               "custom",
		"BENCH_multi_word.json":     "multi_word",
	} {
		if got := NameFromPath(path); got != want {
			t.Fatalf("NameFromPath(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestCompareCleanPass(t *testing.T) {
	base, cur := sample(), sample()
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		var sb strings.Builder
		cmp.Write(&sb)
		t.Fatalf("identical records failed:\n%s", sb.String())
	}
	if !cmp.HostsMatch {
		t.Fatal("same-host records reported as differing hosts")
	}
}

// TestCompareLatencyRegression: a >tol latency regression past the noise
// floor fails on a matching host.
func TestCompareLatencyRegression(t *testing.T) {
	base, cur := sample(), sample()
	cur.CellLatencyUS.P50 = base.CellLatencyUS.P50 * 1.5 // +50%, +25ms
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("50% p50 regression passed")
	}
	// The same regression on a different host is advisory only.
	cur.Host.CPU = "other-cpu"
	cmp, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatal("cross-host wall regression enforced without Strict")
	}
	// ... unless Strict.
	cmp, err = Compare(base, cur, CompareOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("Strict did not enforce the cross-host regression")
	}
}

// TestCompareNoiseFloor: a big ratio on a tiny absolute delta must pass —
// millisecond-scale smoke cells jitter more than 15%.
func TestCompareNoiseFloor(t *testing.T) {
	base, cur := sample(), sample()
	base.CellLatencyUS = Quantiles{P50: 800, P95: 1500, P99: 1800}
	cur.CellLatencyUS = Quantiles{P50: 1300, P95: 2600, P99: 3100} // +62% but < 2ms absolute
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		var sb strings.Builder
		cmp.Write(&sb)
		t.Fatalf("sub-noise-floor latency delta failed the gate:\n%s", sb.String())
	}
}

// TestCompareCellsMismatch: the tracked sweep silently changing shape is
// always an error, regardless of host.
func TestCompareCellsMismatch(t *testing.T) {
	base, cur := sample(), sample()
	cur.Cells = 39
	cur.Host.CPU = "other-cpu"
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("cell-count mismatch passed")
	}
}

// TestCompareFullyCached: a warm rerun (nothing executed) has no latency
// signal; the gate must not fail on the zero quantiles.
func TestCompareFullyCached(t *testing.T) {
	base, cur := sample(), sample()
	cur.Executed = 0
	cur.CacheHits = cur.Cells
	cur.CellsPerSec = 0
	cur.CellLatencyUS = Quantiles{}
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		var sb strings.Builder
		cmp.Write(&sb)
		t.Fatalf("fully cached rerun failed:\n%s", sb.String())
	}
}

// TestComparePersistCycles: simulated-cycle quantiles are deterministic,
// so they gate without a noise floor and across hosts.
func TestComparePersistCycles(t *testing.T) {
	base, cur := sample(), sample()
	base.PersistLatCycles = &Quantiles{P50: 100, P95: 200, P99: 300}
	cur.PersistLatCycles = &Quantiles{P50: 120, P95: 200, P99: 300} // +20%
	cur.Host.CPU = "other-cpu"
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("20% persist-cycle regression passed")
	}
}

func TestCompareDifferentTrajectories(t *testing.T) {
	base, cur := sample(), sample()
	cur.Name = "full"
	if _, err := Compare(base, cur, CompareOptions{}); err == nil {
		t.Fatal("cross-trajectory compare accepted")
	}
}

// TestCompareSaltChange: a salt change is surfaced as an advisory delta,
// never a hard failure (the comparison's job is performance, the salt's
// job is cache identity).
func TestCompareSaltChange(t *testing.T) {
	base, cur := sample(), sample()
	cur.Salt = "cwsp-sim-v2"
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		t.Fatal("salt change failed the gate")
	}
	found := false
	for _, d := range cmp.Deltas {
		if d.Metric == "salt" && d.Regressed && !d.Enforced {
			found = true
		}
	}
	if !found {
		t.Fatalf("salt change not surfaced: %+v", cmp.Deltas)
	}
}

// TestFromRunner maps a manifest runner digest onto the record.
func TestFromRunner(t *testing.T) {
	r := New("smoke", "cwspbench")
	r.FromRunner(&telemetry.RunnerInfo{
		Jobs: 8, Cells: 100, CacheHits: 40, Shared: 10, Executed: 50, WallMS: 5000,
		CellLatencyUS: &telemetry.HistSummary{P50: 1, P95: 2, P99: 3},
	})
	if r.Jobs != 8 || r.Cells != 100 || r.Executed != 50 {
		t.Fatalf("runner fields: %+v", r)
	}
	if r.CellsPerSec != 10 {
		t.Fatalf("cells/sec %v, want 10", r.CellsPerSec)
	}
	if r.CellLatencyUS != (Quantiles{P50: 1, P95: 2, P99: 3}) {
		t.Fatalf("latency quantiles: %+v", r.CellLatencyUS)
	}
	r.FromRunner(nil) // must be a no-op, not a panic
	if r.Jobs != 8 {
		t.Fatal("nil RunnerInfo mutated the record")
	}
}

// sampleService returns a plausible cwspload profile.
func sampleService() *ServiceProfile {
	return &ServiceProfile{
		Clients: 32, Requests: 128, Dropped: 0, Rejected429: 12,
		RequestsPerSec: 40, WarmHitRatio: 0.995,
		ReqLatencyUS:  Quantiles{P50: 20_000, P95: 80_000, P99: 150_000},
		QueueDepthMax: 9, QueueDepthMean: 3.5,
	}
}

func TestCompareServiceCleanPass(t *testing.T) {
	base, cur := sample(), sample()
	base.Service, cur.Service = sampleService(), sampleService()
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		var sb strings.Builder
		cmp.Write(&sb)
		t.Fatalf("identical service records failed:\n%s", sb.String())
	}
}

// Dropped campaigns and a collapsed warm-hit ratio are correctness bugs:
// enforced even across host fingerprints.
func TestCompareServiceCorrectnessGates(t *testing.T) {
	base, cur := sample(), sample()
	base.Service, cur.Service = sampleService(), sampleService()
	cur.Host.CPU = "other-machine"
	cur.Service.Dropped = 1
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("dropped campaign did not fail the gate")
	}

	cur.Service.Dropped = 0
	cur.Service.WarmHitRatio = 0.5 // warm traffic missing the shared cache
	cmp, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("collapsed warm-hit ratio did not fail the gate")
	}

	cur.Service.WarmHitRatio = 0.995
	cur.Service.Clients = 8 // different load shape: not the same trajectory
	cmp, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("client-count change did not fail the gate")
	}
}

// Request latency follows the host rules: enforced on a matching host,
// advisory across machines; queue depth and requests/sec stay advisory.
func TestCompareServiceLatencyAndNoise(t *testing.T) {
	base, cur := sample(), sample()
	base.Service, cur.Service = sampleService(), sampleService()
	cur.Service.ReqLatencyUS.P50 = base.Service.ReqLatencyUS.P50 * 2 // +100%, +20ms
	cmp, err := Compare(base, cur, CompareOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Failed() {
		t.Fatal("2x request latency under -bench-strict did not fail")
	}

	// Request latency is end-to-end wall-clock (queue wait + poll
	// quantization): advisory without Strict even on the same host.
	cmp, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		var sb strings.Builder
		cmp.Write(&sb)
		t.Fatalf("non-strict request-latency gate enforced:\n%s", sb.String())
	}

	base.Service, cur.Service = sampleService(), sampleService()
	cur.Host = base.Host
	cur.Service.QueueDepthMax = 40   // advisory contention growth
	cur.Service.RequestsPerSec = 20  // advisory throughput drop (non-strict)
	cur.Service.Rejected429 = 10_000 // absorbing backpressure is not an error
	cmp, err = Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Failed() {
		var sb strings.Builder
		cmp.Write(&sb)
		t.Fatalf("advisory service metrics failed the gate:\n%s", sb.String())
	}
}

// A service profile appearing or vanishing is surfaced (advisory), not
// silently ignored.
func TestCompareServicePresenceMismatch(t *testing.T) {
	base, cur := sample(), sample()
	cur.Service = sampleService()
	cmp, err := Compare(base, cur, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var flagged bool
	for _, d := range cmp.Deltas {
		if d.Metric == "service" && d.Regressed && !d.Enforced {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("one-sided service profile not flagged")
	}
	if cmp.Failed() {
		t.Fatal("one-sided service profile failed the enforced gate")
	}
}
