// Package benchfmt defines the versioned on-disk format of the repo's
// benchmark trajectory: one BENCH_<name>.json record per tracked sweep
// (wall time, cells/sec, cache behavior, allocation footprint, latency
// quantiles) plus the comparator `make bench-check` runs against the
// committed baseline. The trajectory turns the performance history that
// previously lived as prose in CHANGES.md (43s → 0.35s, 3.3x kernel
// wins) into a machine-checkable CI artifact: a regression beyond the
// tolerance fails the build.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"cwsp/internal/telemetry"
)

// SchemaVersion is bumped on incompatible record changes; Read rejects
// versions it does not understand so the trajectory stays diffable.
const SchemaVersion = 1

// Quantiles is a latency digest in one unit.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Host fingerprints where a record was measured. Wall-clock comparisons
// are only enforced between records with an equal fingerprint (or under
// CompareOptions.Strict) — a baseline from one machine must not fail CI
// on a slower one.
type Host struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	CPU       string `json:"cpu,omitempty"` // model name, best effort
}

// Equal reports whether two fingerprints identify comparable machines.
func (h Host) Equal(o Host) bool {
	return h.OS == o.OS && h.Arch == o.Arch && h.CPUs == o.CPUs && h.CPU == o.CPU
}

// CurrentHost fingerprints the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		CPU:       cpuModel(),
	}
}

// cpuModel reads the CPU model name where the platform exposes one.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return ""
}

// Record is one point of the bench trajectory.
type Record struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"` // trajectory name: BENCH_<name>.json
	Tool          string `json:"tool"`
	Salt          string `json:"salt,omitempty"` // runner code-version salt
	Scale         string `json:"scale,omitempty"`
	// Experiments lists the experiment IDs the sweep ran.
	Experiments []string `json:"experiments,omitempty"`
	Host        Host     `json:"host"`

	// Sweep execution profile.
	Jobs        int     `json:"jobs"`
	WallMS      int64   `json:"wall_ms"` // pool wall time
	Cells       int64   `json:"cells"`
	CacheHits   int64   `json:"cache_hits"`
	Shared      int64   `json:"shared,omitempty"`
	Executed    int64   `json:"executed"`
	CellsPerSec float64 `json:"cells_per_sec"` // executed cells per pool-wall second

	// Allocation footprint of the whole invocation (runtime.MemStats
	// deltas around the sweep).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`

	// CellLatencyUS digests per-executed-cell wall latency; zero when the
	// sweep was fully cached (nothing executed).
	CellLatencyUS Quantiles `json:"cell_latency_us"`
	// PersistLatCycles digests the simulator's store→durable latency when
	// a telemetry-enabled run contributed one (optional).
	PersistLatCycles *Quantiles `json:"persist_lat_cycles,omitempty"`

	// Service profiles a cwspload run against a cwspd daemon (optional;
	// only trajectories produced by the load generator carry it).
	Service *ServiceProfile `json:"service,omitempty"`

	// Kernel profiles the simulation-kernel comparison `make bench-kernel`
	// runs (optional; only kernel trajectories carry it).
	Kernel *KernelProfile `json:"kernel,omitempty"`
}

// KernelProfile is one in-process comparison of the optimized simulation
// kernels: per-cell instruction throughput for the batched and threaded
// backends measured back to back in one process. The speedup column is a
// same-run ratio — both kernels saw the same machine state — so it is
// gated host-independently, while the absolute Minstr/s columns are only
// enforced between matching host fingerprints.
type KernelProfile struct {
	Cells []KernelCell `json:"cells"`
}

// KernelCell is one workload × scheme × core-count point of the kernel
// comparison.
type KernelCell struct {
	// Name is the cell label (workload_scheme_xCores, e.g. compute_base_x1).
	Name string `json:"name"`
	// Cycles is the simulated cycle count — identical across kernels by
	// the equivalence contract, so a drift here is a correctness bug, not
	// a performance change.
	Cycles int64 `json:"cycles"`
	// Instrs is the per-run instruction count throughput normalizes over.
	Instrs int64 `json:"instrs"`
	// BatchedMinstrS and ThreadedMinstrS are millions of simulated
	// instructions per wall second for each kernel (best of the repeated
	// measurement batches).
	BatchedMinstrS  float64 `json:"batched_minstr_s"`
	ThreadedMinstrS float64 `json:"threaded_minstr_s"`
	// Speedup is ThreadedMinstrS / BatchedMinstrS.
	Speedup float64 `json:"speedup"`
	// DispatchBound marks the cell whose loop is register-resident: the
	// one place dispatch overhead is the bottleneck and the threaded
	// backend's floor (>= 2x) is enforced. On memory- or persist-bound
	// cells the shared machinery caps the ratio (Amdahl), so their
	// speedups are tracked but only gated against the baseline.
	DispatchBound bool `json:"dispatch_bound,omitempty"`
}

// Cell returns the named cell, or nil.
func (k *KernelProfile) Cell(name string) *KernelCell {
	for i := range k.Cells {
		if k.Cells[i].Name == name {
			return &k.Cells[i]
		}
	}
	return nil
}

// ServiceProfile is the service-side view of one load-generator run: how
// the daemon held up under concurrent campaign traffic.
type ServiceProfile struct {
	// Clients is the concurrent client count the generator sustained.
	Clients int `json:"clients"`
	// Requests counts campaigns submitted and completed; Dropped counts
	// campaigns lost (a correct run has 0 — rejected submissions retry
	// until accepted); Rejected429 counts backpressure rejections absorbed
	// along the way.
	Requests    int64 `json:"requests"`
	Dropped     int64 `json:"dropped"`
	Rejected429 int64 `json:"rejected_429,omitempty"`
	// RequestsPerSec and CellsPerSec measure end-to-end throughput over
	// the generator's wall time.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// WarmHitRatio is the cache-hit ratio over the warm fraction of the
	// traffic (repeat campaigns must be served from the shared cache).
	WarmHitRatio float64 `json:"warm_hit_ratio"`
	// ReqLatencyUS digests end-to-end request latency (submit → campaign
	// done), microseconds.
	ReqLatencyUS Quantiles `json:"req_latency_us"`
	// QueueDepthMax/Mean proxy admission-queue contention, sampled over
	// the run.
	QueueDepthMax  int64   `json:"queue_depth_max"`
	QueueDepthMean float64 `json:"queue_depth_mean"`
}

// New builds a record stamped with the schema version and current host.
func New(name, tool string) *Record {
	return &Record{SchemaVersion: SchemaVersion, Name: name, Tool: tool, Host: CurrentHost()}
}

// FromRunner fills the sweep-profile fields from a runner manifest digest.
func (r *Record) FromRunner(info *telemetry.RunnerInfo) {
	if info == nil {
		return
	}
	r.Jobs = info.Jobs
	r.WallMS = info.WallMS
	r.Cells = info.Cells
	r.CacheHits = info.CacheHits
	r.Shared = info.Shared
	r.Executed = info.Executed
	if info.WallMS > 0 && info.Executed > 0 {
		r.CellsPerSec = float64(info.Executed) / (float64(info.WallMS) / 1000)
	}
	if q := info.CellLatencyUS; q != nil {
		r.CellLatencyUS = Quantiles{P50: q.P50, P95: q.P95, P99: q.P99}
	}
}

// Validate checks the invariants readers rely on.
func (r *Record) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("benchfmt: record schema v%d, this build reads v%d", r.SchemaVersion, SchemaVersion)
	}
	if r.Name == "" {
		return fmt.Errorf("benchfmt: record missing name")
	}
	return nil
}

// Write emits the record as indented JSON.
func (r *Record) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the record to path.
func (r *Record) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses and validates a record.
func Read(rd io.Reader) (*Record, error) {
	var r Record
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("benchfmt: parse record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile reads a record from path.
func ReadFile(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// NameFromPath derives the trajectory name from a BENCH_<name>.json path
// ("BENCH_smoke.json" → "smoke"; anything else uses the bare stem).
func NameFromPath(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	return strings.TrimPrefix(base, "BENCH_")
}
