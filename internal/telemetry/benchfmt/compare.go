package benchfmt

import (
	"fmt"
	"io"
)

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// Tol is the fractional regression tolerance for enforced performance
	// metrics (default 0.15: fail on >15% regression).
	Tol float64
	// Strict enforces wall-clock metrics even across differing host
	// fingerprints (off by default: a baseline recorded on one machine is
	// only advisory on another).
	Strict bool
	// MinLatencyUS is the absolute noise floor for latency gates: a
	// quantile must regress by both Tol *and* this many microseconds to
	// fail (default 2000). Smoke sweeps run millisecond-scale cells whose
	// scheduler jitter alone can exceed a pure ratio gate.
	MinLatencyUS float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Tol <= 0 {
		o.Tol = 0.15
	}
	if o.MinLatencyUS <= 0 {
		o.MinLatencyUS = 2000
	}
	return o
}

// Delta is one compared metric.
type Delta struct {
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is New/Old oriented so that > 1 means worse (latency grew or
	// throughput shrank); 0 when Old is 0.
	Ratio float64 `json:"ratio"`
	// Enforced deltas can fail the comparison; advisory ones only report.
	Enforced  bool   `json:"enforced"`
	Regressed bool   `json:"regressed"`
	Note      string `json:"note,omitempty"`
}

// Comparison is the outcome of one baseline-vs-current check.
type Comparison struct {
	Baseline string  `json:"baseline"`
	Current  string  `json:"current"`
	Tol      float64 `json:"tol"`
	// HostsMatch records whether wall-clock gates were enforceable.
	HostsMatch bool    `json:"hosts_match"`
	Deltas     []Delta `json:"deltas"`
}

// Failed reports whether any enforced metric regressed.
func (c *Comparison) Failed() bool {
	for _, d := range c.Deltas {
		if d.Enforced && d.Regressed {
			return true
		}
	}
	return false
}

// Write renders the comparison as a human-readable table.
func (c *Comparison) Write(w io.Writer) {
	fmt.Fprintf(w, "bench-check: %s vs baseline %s (tol %.0f%%, hosts match: %v)\n",
		c.Current, c.Baseline, c.Tol*100, c.HostsMatch)
	for _, d := range c.Deltas {
		status := "ok"
		switch {
		case d.Regressed && d.Enforced:
			status = "REGRESSED"
		case d.Regressed:
			status = "regressed (advisory)"
		case !d.Enforced:
			status = "advisory"
		}
		note := d.Note
		if note != "" {
			note = " — " + note
		}
		fmt.Fprintf(w, "  %-22s %12.2f -> %-12.2f x%-6.3f %s%s\n",
			d.Metric, d.Old, d.New, d.Ratio, status, note)
	}
}

// Compare gates cur against base. The structural metrics (cell counts:
// the sweep must still be the same sweep) are always enforced; latency
// quantiles are enforced when both records executed cells and the host
// fingerprints match (or Strict); pure wall-clock metrics (wall_ms,
// cells/sec) are advisory unless Strict, since they fold in scheduler and
// I/O noise that the per-cell latency median does not.
func Compare(base, cur *Record, opt CompareOptions) (*Comparison, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := cur.Validate(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if base.Name != cur.Name {
		return nil, fmt.Errorf("benchfmt: comparing different trajectories: %q vs %q", base.Name, cur.Name)
	}
	opt = opt.withDefaults()
	c := &Comparison{Baseline: base.Name, Current: cur.Name, Tol: opt.Tol,
		HostsMatch: base.Host.Equal(cur.Host)}
	timed := opt.Strict || c.HostsMatch
	ran := base.Executed > 0 && cur.Executed > 0

	// Structure: the tracked sweep must not silently shrink or grow.
	cells := Delta{Metric: "cells", Old: float64(base.Cells), New: float64(cur.Cells), Enforced: true}
	if base.Cells > 0 {
		cells.Ratio = float64(cur.Cells) / float64(base.Cells)
	}
	cells.Regressed = base.Cells != cur.Cells
	if cells.Regressed {
		cells.Note = "cell count changed; refresh the baseline (make bench-baseline)"
	}
	c.Deltas = append(c.Deltas, cells)

	if base.Salt != cur.Salt {
		c.Deltas = append(c.Deltas, Delta{
			Metric: "salt", Enforced: false, Regressed: true,
			Note: fmt.Sprintf("code-version salt changed (%s -> %s): cache populations are incomparable", base.Salt, cur.Salt),
		})
	}

	// Latency quantiles: robust to load, enforced with a noise floor.
	lat := func(metric string, old, new float64, enforced bool, floorMul float64) {
		d := Delta{Metric: metric, Old: old, New: new, Enforced: enforced}
		if old > 0 {
			d.Ratio = new / old
		}
		d.Regressed = old > 0 && new > old*(1+opt.Tol) && new-old > opt.MinLatencyUS*floorMul
		if !ran {
			d.Enforced = false
			d.Note = "sweep fully cached; no executed-cell latencies"
		}
		c.Deltas = append(c.Deltas, d)
	}
	lat("cell_latency_us.p50", base.CellLatencyUS.P50, cur.CellLatencyUS.P50, timed, 1)
	lat("cell_latency_us.p95", base.CellLatencyUS.P95, cur.CellLatencyUS.P95, timed, 2.5)
	lat("cell_latency_us.p99", base.CellLatencyUS.P99, cur.CellLatencyUS.P99, false, 1)

	if base.PersistLatCycles != nil && cur.PersistLatCycles != nil {
		// Simulated cycles are deterministic: no noise floor needed.
		p := func(metric string, old, new float64) {
			d := Delta{Metric: metric, Old: old, New: new, Enforced: true}
			if old > 0 {
				d.Ratio = new / old
			}
			d.Regressed = old > 0 && new > old*(1+opt.Tol)
			c.Deltas = append(c.Deltas, d)
		}
		p("persist_lat_cycles.p50", base.PersistLatCycles.P50, cur.PersistLatCycles.P50)
		p("persist_lat_cycles.p95", base.PersistLatCycles.P95, cur.PersistLatCycles.P95)
		p("persist_lat_cycles.p99", base.PersistLatCycles.P99, cur.PersistLatCycles.P99)
	}

	// Wall-clock: advisory unless Strict (noise-dominated in CI).
	wall := Delta{Metric: "wall_ms", Old: float64(base.WallMS), New: float64(cur.WallMS), Enforced: opt.Strict}
	if base.WallMS > 0 {
		wall.Ratio = float64(cur.WallMS) / float64(base.WallMS)
	}
	wall.Regressed = ran && base.WallMS > 0 && float64(cur.WallMS) > float64(base.WallMS)*(1+opt.Tol)
	c.Deltas = append(c.Deltas, wall)

	cps := Delta{Metric: "cells_per_sec", Old: base.CellsPerSec, New: cur.CellsPerSec, Enforced: opt.Strict}
	if cur.CellsPerSec > 0 {
		cps.Ratio = base.CellsPerSec / cur.CellsPerSec // >1 = slower now
	}
	cps.Regressed = ran && base.CellsPerSec > 0 && cur.CellsPerSec < base.CellsPerSec/(1+opt.Tol)
	c.Deltas = append(c.Deltas, cps)

	allocs := Delta{Metric: "allocs", Old: float64(base.Allocs), New: float64(cur.Allocs), Enforced: false}
	if base.Allocs > 0 {
		allocs.Ratio = float64(cur.Allocs) / float64(base.Allocs)
	}
	allocs.Regressed = ran && base.Allocs > 0 && float64(cur.Allocs) > float64(base.Allocs)*(1+opt.Tol)
	c.Deltas = append(c.Deltas, allocs)

	compareService(c, base.Service, cur.Service, opt)
	compareKernel(c, base.Kernel, cur.Kernel, opt, timed)

	return c, nil
}

// KernelDispatchFloor is the minimum threaded/batched speedup the
// dispatch-bound kernel cell must sustain. Unlike the baseline-relative
// gates this is an absolute floor: the threaded backend's reason to
// exist is removing dispatch overhead, and on a register-resident loop
// that must be worth at least 2x regardless of which machine measures
// it (the ratio is taken within one run, so host speed divides out).
const KernelDispatchFloor = 2.0

// compareKernel gates the kernel-comparison profile. Simulated cycle
// counts are deterministic and enforced exactly (a drift means the
// kernels are no longer running the same simulation). Absolute Minstr/s
// is wall-clock and host-gated like the latency quantiles. Speedups are
// same-run ratios: baseline-relative changes are advisory (they still
// jitter with machine load), but the dispatch-bound cell is enforced
// against the absolute KernelDispatchFloor on any host.
func compareKernel(c *Comparison, base, cur *KernelProfile, opt CompareOptions, timed bool) {
	if base == nil || cur == nil {
		if base != nil || cur != nil {
			c.Deltas = append(c.Deltas, Delta{
				Metric: "kernel", Enforced: false, Regressed: true,
				Note: "kernel profile present on only one record; refresh the baseline",
			})
		}
		return
	}
	for _, bc := range base.Cells {
		cc := cur.Cell(bc.Name)
		if cc == nil {
			c.Deltas = append(c.Deltas, Delta{
				Metric: "kernel." + bc.Name, Enforced: true, Regressed: true,
				Note: "cell missing from current record; refresh the baseline",
			})
			continue
		}
		cyc := Delta{Metric: "kernel." + bc.Name + ".cycles",
			Old: float64(bc.Cycles), New: float64(cc.Cycles),
			Enforced: true, Regressed: bc.Cycles != cc.Cycles}
		if bc.Cycles > 0 {
			cyc.Ratio = float64(cc.Cycles) / float64(bc.Cycles)
		}
		if cyc.Regressed {
			cyc.Note = "simulated cycles drifted: not the same simulation anymore"
		}
		c.Deltas = append(c.Deltas, cyc)

		thr := func(metric string, old, new float64) {
			d := Delta{Metric: metric, Old: old, New: new, Enforced: timed}
			if new > 0 {
				d.Ratio = old / new // >1 = slower now
			}
			d.Regressed = old > 0 && new < old/(1+opt.Tol)
			c.Deltas = append(c.Deltas, d)
		}
		thr("kernel."+bc.Name+".batched_minstr_s", bc.BatchedMinstrS, cc.BatchedMinstrS)
		thr("kernel."+bc.Name+".threaded_minstr_s", bc.ThreadedMinstrS, cc.ThreadedMinstrS)

		sp := Delta{Metric: "kernel." + bc.Name + ".speedup",
			Old: bc.Speedup, New: cc.Speedup, Enforced: false}
		if bc.Speedup > 0 {
			sp.Ratio = bc.Speedup / cc.Speedup // >1 = smaller win now
		}
		sp.Regressed = bc.Speedup > 0 && cc.Speedup < bc.Speedup/(1+opt.Tol)
		c.Deltas = append(c.Deltas, sp)

		if bc.DispatchBound || cc.DispatchBound {
			fl := Delta{Metric: "kernel." + bc.Name + ".speedup_floor",
				Old: KernelDispatchFloor, New: cc.Speedup, Enforced: true,
				Regressed: cc.Speedup < KernelDispatchFloor}
			if KernelDispatchFloor > 0 {
				fl.Ratio = KernelDispatchFloor / cc.Speedup
			}
			if fl.Regressed {
				fl.Note = "threaded kernel below the 2x dispatch-bound floor"
			}
			c.Deltas = append(c.Deltas, fl)
		}
	}
}

// compareService gates the load-generator profile. Correctness metrics
// (dropped campaigns, client count, warm hit ratio) are enforced
// regardless of host: dropping campaigns or missing the shared cache is a
// bug, not noise. Throughput and request latency are wall-clock — an
// end-to-end request folds in queue wait and completion-poll
// quantization, which jitter ±30% run to run even on one host — so like
// wall_ms they are advisory unless Strict.
func compareService(c *Comparison, base, cur *ServiceProfile, opt CompareOptions) {
	if base == nil || cur == nil {
		if base != nil || cur != nil {
			c.Deltas = append(c.Deltas, Delta{
				Metric: "service", Enforced: false, Regressed: true,
				Note: "service profile present on only one record; refresh the baseline",
			})
		}
		return
	}

	clients := Delta{Metric: "service.clients", Old: float64(base.Clients), New: float64(cur.Clients), Enforced: true}
	if base.Clients > 0 {
		clients.Ratio = float64(cur.Clients) / float64(base.Clients)
	}
	clients.Regressed = base.Clients != cur.Clients
	if clients.Regressed {
		clients.Note = "client count changed; refresh the baseline"
	}
	c.Deltas = append(c.Deltas, clients)

	dropped := Delta{Metric: "service.dropped", Old: float64(base.Dropped), New: float64(cur.Dropped),
		Enforced: true, Regressed: cur.Dropped > 0}
	if dropped.Regressed {
		dropped.Note = "campaigns were dropped under load"
	}
	c.Deltas = append(c.Deltas, dropped)

	warm := Delta{Metric: "service.warm_hit_ratio", Old: base.WarmHitRatio, New: cur.WarmHitRatio, Enforced: true}
	if base.WarmHitRatio > 0 {
		warm.Ratio = base.WarmHitRatio / cur.WarmHitRatio // >1 = worse now
	}
	warm.Regressed = base.WarmHitRatio > 0 && cur.WarmHitRatio < base.WarmHitRatio*(1-opt.Tol)
	if warm.Regressed {
		warm.Note = "warm traffic is missing the shared cache"
	}
	c.Deltas = append(c.Deltas, warm)

	rps := Delta{Metric: "service.requests_per_sec", Old: base.RequestsPerSec, New: cur.RequestsPerSec,
		Enforced: opt.Strict}
	if cur.RequestsPerSec > 0 {
		rps.Ratio = base.RequestsPerSec / cur.RequestsPerSec
	}
	rps.Regressed = base.RequestsPerSec > 0 && cur.RequestsPerSec < base.RequestsPerSec/(1+opt.Tol)
	c.Deltas = append(c.Deltas, rps)

	lat := func(metric string, old, new float64, enforced bool, floorMul float64) {
		d := Delta{Metric: metric, Old: old, New: new, Enforced: enforced}
		if old > 0 {
			d.Ratio = new / old
		}
		d.Regressed = old > 0 && new > old*(1+opt.Tol) && new-old > opt.MinLatencyUS*floorMul
		c.Deltas = append(c.Deltas, d)
	}
	lat("service.req_latency_us.p50", base.ReqLatencyUS.P50, cur.ReqLatencyUS.P50, opt.Strict, 1)
	lat("service.req_latency_us.p95", base.ReqLatencyUS.P95, cur.ReqLatencyUS.P95, opt.Strict, 2.5)
	lat("service.req_latency_us.p99", base.ReqLatencyUS.P99, cur.ReqLatencyUS.P99, false, 1)

	qd := Delta{Metric: "service.queue_depth_max", Old: float64(base.QueueDepthMax),
		New: float64(cur.QueueDepthMax), Enforced: false}
	if base.QueueDepthMax > 0 {
		qd.Ratio = float64(cur.QueueDepthMax) / float64(base.QueueDepthMax)
	}
	qd.Regressed = base.QueueDepthMax > 0 && float64(cur.QueueDepthMax) > float64(base.QueueDepthMax)*(1+opt.Tol)
	c.Deltas = append(c.Deltas, qd)
}
