package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one time-series row: a cycle timestamp plus one value per
// sampler column.
type Sample struct {
	Cycle int64     `json:"cycle"`
	Vals  []float64 `json:"vals"`
}

// Sampler collects periodic gauge snapshots into a fixed-capacity ring:
// memory is bounded by the ring regardless of run length — once full, the
// oldest samples are overwritten and counted in Dropped. The caller drives
// it: poll Due(cycle) cheaply from the hot path and call Record when it
// fires. Value storage is preallocated so a Record in the steady state
// does not allocate.
type Sampler struct {
	interval int64
	next     int64
	cols     []string

	buf     []Sample
	head    int // ring start (oldest)
	count   int
	dropped int64
}

// NewSampler builds a sampler that fires every interval cycles and retains
// the most recent capacity samples of the named columns.
func NewSampler(interval int64, capacity int, cols ...string) *Sampler {
	if interval < 1 {
		interval = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	s := &Sampler{
		interval: interval,
		next:     interval,
		cols:     append([]string(nil), cols...),
		buf:      make([]Sample, capacity),
	}
	for i := range s.buf {
		s.buf[i].Vals = make([]float64, len(cols))
	}
	return s
}

// Interval returns the sampling period in cycles.
func (s *Sampler) Interval() int64 { return s.interval }

// Columns returns the column names.
func (s *Sampler) Columns() []string { return append([]string(nil), s.cols...) }

// Due reports whether a sample is owed at the given cycle. It is the
// single hot-path check; everything else runs only when it fires.
func (s *Sampler) Due(cycle int64) bool { return cycle >= s.next }

// Record stores one sample at the given cycle and advances the next fire
// time past it (skipped intervals collapse into one sample). Extra values
// are dropped and missing ones zero-filled, so a column-count mismatch
// cannot corrupt the ring.
func (s *Sampler) Record(cycle int64, vals ...float64) {
	var slot *Sample
	if s.count < len(s.buf) {
		slot = &s.buf[(s.head+s.count)%len(s.buf)]
		s.count++
	} else {
		slot = &s.buf[s.head]
		s.head = (s.head + 1) % len(s.buf)
		s.dropped++
	}
	slot.Cycle = cycle
	for i := range slot.Vals {
		if i < len(vals) {
			slot.Vals[i] = vals[i]
		} else {
			slot.Vals[i] = 0
		}
	}
	if cycle >= s.next {
		s.next = (cycle/s.interval + 1) * s.interval
	}
}

// Len returns the number of retained samples.
func (s *Sampler) Len() int { return s.count }

// Dropped returns how many samples were overwritten after the ring filled.
func (s *Sampler) Dropped() int64 { return s.dropped }

// Samples returns the retained samples oldest-first (copies).
func (s *Sampler) Samples() []Sample {
	out := make([]Sample, 0, s.count)
	for i := 0; i < s.count; i++ {
		src := s.buf[(s.head+i)%len(s.buf)]
		out = append(out, Sample{Cycle: src.Cycle, Vals: append([]float64(nil), src.Vals...)})
	}
	return out
}

// Column returns the series of one named column oldest-first (nil when the
// column does not exist).
func (s *Sampler) Column(name string) []float64 {
	idx := -1
	for i, c := range s.cols {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]float64, 0, s.count)
	for i := 0; i < s.count; i++ {
		out = append(out, s.buf[(s.head+i)%len(s.buf)].Vals[idx])
	}
	return out
}

// WriteCSV emits the series as CSV: a "cycle,<col>,..." header followed by
// one row per retained sample, oldest first.
func (s *Sampler) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("cycle")
	for _, c := range s.cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for i := 0; i < s.count; i++ {
		b.Reset()
		sm := &s.buf[(s.head+i)%len(s.buf)]
		b.WriteString(strconv.FormatInt(sm.Cycle, 10))
		for _, v := range sm.Vals {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// seriesJSON is the JSON shape of an exported sampler.
type seriesJSON struct {
	Interval int64    `json:"interval"`
	Columns  []string `json:"columns"`
	Dropped  int64    `json:"dropped"`
	Samples  []Sample `json:"samples"`
}

// WriteJSON emits the series as a single JSON document.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(seriesJSON{
		Interval: s.interval,
		Columns:  s.Columns(),
		Dropped:  s.dropped,
		Samples:  s.Samples(),
	})
}

// Info summarizes the sampler for the run manifest.
func (s *Sampler) Info() SeriesInfo {
	return SeriesInfo{
		Interval: s.interval,
		Columns:  s.Columns(),
		Count:    s.count,
		Dropped:  s.dropped,
	}
}

// String renders a one-line summary (debug / progress logs).
func (s *Sampler) String() string {
	return fmt.Sprintf("sampler{interval=%d cols=%d kept=%d dropped=%d}",
		s.interval, len(s.cols), s.count, s.dropped)
}
