package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// ManifestSchemaVersion is bumped whenever the manifest shape changes
// incompatibly; readers reject versions they do not understand, so
// benchmark trajectories stay machine-diffable across PRs.
const ManifestSchemaVersion = 1

// SeriesInfo summarizes a sampler in the manifest (the samples themselves
// go to their own CSV/JSON file; the manifest records the shape).
type SeriesInfo struct {
	Interval int64    `json:"interval"`
	Columns  []string `json:"columns"`
	Count    int      `json:"count"`
	Dropped  int64    `json:"dropped"`
}

// RunnerInfo records how a parallel sweep executed: pool width, work-unit
// counts by outcome (persistent-cache hit, shared within the batch,
// actually executed), reliability counters, and total pool wall time. A
// fully warm rerun shows Executed == 0 and CacheHits == Cells.
type RunnerInfo struct {
	Jobs          int          `json:"jobs"`
	Cells         int64        `json:"cells"`
	CacheHits     int64        `json:"cache_hits"`
	Shared        int64        `json:"shared,omitempty"`
	Executed      int64        `json:"executed"`
	Retries       int64        `json:"retries,omitempty"`
	Panics        int64        `json:"panics,omitempty"`
	WallMS        int64        `json:"wall_ms"`
	CellLatencyUS *HistSummary `json:"cell_latency_us,omitempty"`
}

// FaultInfo aggregates a fault-injection campaign (cwsptorture): cell and
// crash counts, how many fault points actually landed vs found no eligible
// victim, and the outcome tally. The survival criterion is
// Diverged == 0 && Errors == 0.
type FaultInfo struct {
	Cells    int64 `json:"cells"`
	Crashes  int64 `json:"crashes"`
	Injected int64 `json:"injected"`
	Skipped  int64 `json:"skipped,omitempty"`
	Clean    int64 `json:"clean"`
	Detected int64 `json:"detected"`
	Diverged int64 `json:"diverged"`
	Errors   int64 `json:"errors"`
}

// ServiceInfo records a run's relationship to the experiment service
// (cwspd): which daemon served it, how contended the admission queue was,
// and which client submitted it. Present on manifests produced by the
// daemon's campaigns and on cwspload reports.
type ServiceInfo struct {
	// Addr is the daemon's listen address ("host:port").
	Addr string `json:"addr,omitempty"`
	// ClientID identifies the submitting client (X-CWSP-Client header).
	ClientID string `json:"client_id,omitempty"`
	// CampaignID is the daemon-assigned campaign identifier.
	CampaignID string `json:"campaign_id,omitempty"`
	// QueueDepth is the admission-queue depth observed at submit time;
	// QueueCap is the queue's capacity (0 depth at cap 0 means unqueued).
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap,omitempty"`
	// Durability digest, present when the daemon runs a campaign journal:
	// campaigns restored at its last boot (Requeued of them re-admitted),
	// journal records appended this run, and torn bytes truncated from the
	// WAL tail at open.
	Recovered        int64 `json:"recovered,omitempty"`
	Requeued         int64 `json:"requeued,omitempty"`
	JournalRecords   int64 `json:"journal_records,omitempty"`
	JournalTornBytes int64 `json:"journal_torn_bytes,omitempty"`
}

// BenchRow is one labelled row of a benchmark report.
type BenchRow struct {
	Label string    `json:"label"`
	Vals  []float64 `json:"vals"`
}

// BenchReport is one experiment's table in manifest form.
type BenchReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Columns []string           `json:"columns"`
	Rows    []BenchRow         `json:"rows"`
	Summary map[string]float64 `json:"summary,omitempty"`
}

// Manifest is the versioned machine-readable record of one run (cwspsim)
// or one benchmark sweep (cwspbench): configuration, raw aggregate stats,
// derived metrics, histogram digests, and time-series shape. Config and
// Stats are embedded as raw JSON so the manifest round-trips byte-exactly
// through these Go types regardless of which config/stats structs produced
// them.
type Manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	Workload      string `json:"workload,omitempty"`
	Scheme        string `json:"scheme,omitempty"`
	Scale         string `json:"scale,omitempty"`
	// Salt is the runner's code-version cache salt (bench.ResultsSalt at
	// the time of the run): two manifests with different salts drew their
	// cells from incomparable cache generations.
	Salt string `json:"salt,omitempty"`
	// LiveAddr is the bound -http observability address when the run
	// served one ("" otherwise) — a record of where the live endpoint
	// was, for log correlation, not a promise it is still listening.
	LiveAddr string `json:"live_addr,omitempty"`

	Config  json.RawMessage    `json:"config,omitempty"`
	Stats   json.RawMessage    `json:"stats,omitempty"`
	Derived map[string]float64 `json:"derived,omitempty"`

	Histograms map[string]HistSummary `json:"histograms,omitempty"`
	Series     *SeriesInfo            `json:"series,omitempty"`

	Reports []BenchReport `json:"reports,omitempty"`

	// Runner reports the parallel-sweep execution profile when the run went
	// through internal/runner (cwspbench -jobs / -cache-dir).
	Runner *RunnerInfo `json:"runner,omitempty"`

	// Faults reports a fault-injection campaign (cwsptorture).
	Faults *FaultInfo `json:"faults,omitempty"`

	// Service reports the experiment-service context (cwspd/cwspload) when
	// the run was submitted to or measured against a daemon.
	Service *ServiceInfo `json:"service,omitempty"`
}

// NewManifest builds a manifest stamped with the current schema version.
func NewManifest(tool string) *Manifest {
	return &Manifest{SchemaVersion: ManifestSchemaVersion, Tool: tool}
}

// Validate checks the structural invariants a reader relies on.
func (m *Manifest) Validate() error {
	if m.SchemaVersion != ManifestSchemaVersion {
		return fmt.Errorf("telemetry: manifest schema v%d, this build reads v%d",
			m.SchemaVersion, ManifestSchemaVersion)
	}
	if m.Tool == "" {
		return fmt.Errorf("telemetry: manifest missing tool")
	}
	return nil
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses and validates a manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("telemetry: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
