package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	if h.Count() != 0 || h.Quantile(99) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should be all zeros")
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1106 {
		t.Errorf("sum = %d, want 1106", h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-1106.0/6) > 1e-9 {
		t.Errorf("mean = %g", got)
	}
	// p100 must be the exact max; p0 the exact min.
	if got := h.Quantile(100); got != 1000 {
		t.Errorf("p100 = %g, want 1000", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %g, want 0", got)
	}
	// Negative samples clamp to zero instead of corrupting a bucket.
	h.Observe(-5)
	if h.Min() != 0 {
		t.Errorf("min after negative = %d", h.Min())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("b")
	h.Observe(0) // bucket 0: [0,0]
	h.Observe(1) // bucket 1: [1,1]
	h.Observe(5) // bucket 3: [4,7]
	h.Observe(7)
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %v, want 3 entries", bs)
	}
	if bs[0].Lo != 0 || bs[0].Hi != 0 || bs[0].Count != 1 {
		t.Errorf("bucket0 = %+v", bs[0])
	}
	if bs[2].Lo != 4 || bs[2].Hi != 7 || bs[2].Count != 2 {
		t.Errorf("bucket for 5,7 = %+v", bs[2])
	}
	// Quantiles are bucket upper bounds clamped to the observed max.
	if got := h.Quantile(99); got != 7 {
		t.Errorf("p99 = %g, want 7", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram("q")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	prev := -1.0
	for _, p := range []float64{0, 10, 50, 90, 95, 99, 100} {
		q := h.Quantile(p)
		if q < prev {
			t.Errorf("quantile not monotone: p%g = %g < %g", p, q, prev)
		}
		prev = q
	}
	if h.Quantile(50) < 256 || h.Quantile(50) > 1000 {
		t.Errorf("p50 = %g out of plausible range", h.Quantile(50))
	}
}

func TestSamplerRingBounds(t *testing.T) {
	s := NewSampler(10, 4, "a", "b")
	for c := int64(10); c <= 200; c += 10 {
		if !s.Due(c) {
			t.Fatalf("sampler not due at %d", c)
		}
		s.Record(c, float64(c), float64(-c))
	}
	if s.Len() != 4 {
		t.Errorf("len = %d, want ring cap 4", s.Len())
	}
	if s.Dropped() != 16 {
		t.Errorf("dropped = %d, want 16", s.Dropped())
	}
	got := s.Samples()
	if len(got) != 4 || got[0].Cycle != 170 || got[3].Cycle != 200 {
		t.Errorf("ring kept %v, want cycles 170..200", got)
	}
	if col := s.Column("b"); len(col) != 4 || col[3] != -200 {
		t.Errorf("column b = %v", col)
	}
	if s.Column("nope") != nil {
		t.Error("unknown column should be nil")
	}
}

func TestSamplerDueSkipsIntervals(t *testing.T) {
	s := NewSampler(100, 8, "x")
	if s.Due(50) {
		t.Error("due before first interval")
	}
	// A big cycle jump collapses the missed intervals into one sample.
	s.Record(950, 1)
	if s.Due(999) {
		t.Error("due again inside the same interval")
	}
	if !s.Due(1000) {
		t.Error("not due at next interval boundary")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want 1", s.Len())
	}
}

func TestSamplerCSVAndJSON(t *testing.T) {
	s := NewSampler(5, 8, "wb", "pb")
	s.Record(5, 1, 2)
	s.Record(10, 3, 4.5)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "cycle,wb,pb\n5,1,2\n10,3,4.5\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
	b.Reset()
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var dec seriesJSON
	if err := json.Unmarshal([]byte(b.String()), &dec); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if dec.Interval != 5 || len(dec.Samples) != 2 || dec.Samples[1].Vals[1] != 4.5 {
		t.Errorf("series JSON round-trip wrong: %+v", dec)
	}
}

func TestSamplerValueCountMismatch(t *testing.T) {
	s := NewSampler(1, 4, "a", "b")
	s.Record(1, 7)          // short: b zero-filled
	s.Record(2, 1, 2, 3, 4) // long: extras dropped
	got := s.Samples()
	if got[0].Vals[1] != 0 || len(got[1].Vals) != 2 {
		t.Errorf("mismatched Record handled wrong: %v", got)
	}
}

// decodeTrace parses a written trace document.
func decodeTrace(t *testing.T, s string) map[string]json.RawMessage {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%.400s", err, s)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("trace missing traceEvents")
	}
	return doc
}

func TestTraceWriter(t *testing.T) {
	var b strings.Builder
	tr := NewTrace(&b)
	tr.ProcessName(0, "cores")
	tr.ThreadName(0, 1, "core 0")
	tr.AsyncBegin(0, 1, 42, "region", "region", 1.0, map[string]interface{}{"fn": "main"})
	tr.Instant(0, 1, "persist", "persist", 1.5, nil)
	tr.FlowStart(0, 1, 7, "persist", "persist", 1.5)
	tr.Complete(0, 1001, "wpq", "persist", 2.0, 0.5, nil)
	tr.FlowEnd(0, 1001, 7, "persist", "persist", 2.0)
	tr.AsyncEnd(0, 1, 42, "region", "region", 3.0)
	tr.Counter(0, "occupancy", 1.0, map[string]interface{}{"pb": 3})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, b.String())
	var evs []map[string]interface{}
	if err := json.Unmarshal(doc["traceEvents"], &evs); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, ev := range evs {
		phases[ev["ph"].(string)]++
	}
	for _, ph := range []string{"M", "b", "e", "i", "s", "f", "X", "C"} {
		if phases[ph] == 0 {
			t.Errorf("missing phase %q in %v", ph, phases)
		}
	}
	if tr.Events() != 7 { // metadata not counted
		t.Errorf("events = %d, want 7", tr.Events())
	}
}

func TestTraceWriterEmptyAndLimit(t *testing.T) {
	var b strings.Builder
	tr := NewTrace(&b)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	decodeTrace(t, b.String()) // empty trace must still be loadable

	b.Reset()
	tr = NewTrace(&b)
	tr.SetLimit(2)
	for i := 0; i < 10; i++ {
		tr.Instant(0, 0, "x", "", float64(i), nil)
	}
	tr.ThreadName(0, 0, "meta still allowed")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	doc := decodeTrace(t, b.String())
	var evs []map[string]interface{}
	if err := json.Unmarshal(doc["traceEvents"], &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 { // 2 instants + 1 metadata
		t.Errorf("limited trace has %d events, want 3", len(evs))
	}
}

func TestManifestRoundTrip(t *testing.T) {
	h := NewHistogram("persist_lat")
	for i := int64(1); i < 100; i++ {
		h.Observe(i * 3)
	}
	m := NewManifest("cwspsim")
	m.Workload = "lbm"
	m.Scheme = "cwsp"
	m.Scale = "quick"
	m.Config = json.RawMessage(`{"Cores":1,"PBSize":50}`)
	m.Stats = json.RawMessage(`{"Cycles":12345,"Stores":678}`)
	m.Derived = map[string]float64{"ipc": 1.25, "stall_frac.pb": 0.01}
	m.Histograms = map[string]HistSummary{"persist_lat": h.Summary()}
	m.Series = &SeriesInfo{Interval: 4096, Columns: []string{"c0.pb"}, Count: 10, Dropped: 0}
	m.Reports = []BenchReport{{
		ID: "fig21", Title: "persist bandwidth", Columns: []string{"1GB/s", "32GB/s"},
		Rows:    []BenchRow{{Label: "lbm", Vals: []float64{1.9, 1.02}}},
		Summary: map[string]float64{"gmean": 1.3},
	}}

	var b strings.Builder
	if err := m.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	// The indented writer reformats embedded raw JSON; compare those
	// fields semantically and everything else exactly.
	if !jsonEq(t, m.Config, got.Config) || !jsonEq(t, m.Stats, got.Stats) {
		t.Errorf("config/stats did not round-trip: %s / %s", got.Config, got.Stats)
	}
	m.Config, got.Config = nil, nil
	m.Stats, got.Stats = nil, nil
	if !reflect.DeepEqual(m, got) {
		t.Errorf("manifest did not round-trip:\nwrote %+v\nread  %+v", m, got)
	}
}

func jsonEq(t *testing.T, a, b json.RawMessage) bool {
	t.Helper()
	var av, bv interface{}
	if err := json.Unmarshal(a, &av); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &bv); err != nil {
		t.Fatal(err)
	}
	return reflect.DeepEqual(av, bv)
}

func TestManifestVersionRejected(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader(`{"schema_version":999,"tool":"x"}`)); err == nil {
		t.Error("future schema version accepted")
	}
	if _, err := ReadManifest(strings.NewReader(`{"schema_version":1}`)); err == nil {
		t.Error("missing tool accepted")
	}
	if _, err := ReadManifest(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {3, 2, 3}, {4, 4, 7},
		{1023, 512, 1023}, {1024, 1024, 2047},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(bucketOf(c.v))
		if lo != c.lo || hi != c.hi {
			t.Errorf("bounds(%d) = [%d,%d], want [%d,%d]", c.v, lo, hi, c.lo, c.hi)
		}
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its own bucket [%d,%d]", c.v, lo, hi)
		}
	}
}
