// Package simtest is the differential proving ground for the simulation
// kernel: it runs programs to completion (and through crash/recovery
// cycles) on a sim.Machine and reduces every observable outcome — stats,
// return values, emitted output, the architectural and persisted memory
// images, crash states, and recovery results — to canonical records that
// can be compared byte for byte.
//
// Two consumers build on these records: the golden snapshot tests, which
// freeze canonical workloads' behavior in testdata/golden so any kernel
// change diffs against known-good outputs, and the kernel-equivalence
// harness, which runs the fast and reference kernels over generated
// programs and requires identical records (see kernel_equivalence_test.go
// and FuzzKernelEquivalence).
package simtest

import (
	"encoding/json"
	"fmt"
	"sort"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
)

// RunRecord is the canonical observable outcome of one completed run.
// Memory images are folded to content digests (mem.PagedMem.Digest), so a
// record compares equal exactly when the full images compare Equal.
type RunRecord struct {
	Stats     sim.Stats
	Ret       []int64
	Output    []int64
	NVMDigest uint64
	MemDigest uint64
}

// SealEntry is one checkpoint-area seal, addr-sorted in CrashRecord.
type SealEntry struct {
	Addr int64
	Seal uint64
}

// CrashRecord is the canonical outcome of one crash at a fixed cycle plus
// the recovery that follows it.
type CrashRecord struct {
	Cycle     int64
	NVMDigest uint64
	Restarts  []sim.Restart
	Seals     []SealEntry
	// Recovered is the resumed machine's run-to-completion record.
	Recovered *RunRecord
}

// Record reduces a completed run's result to its canonical record.
func Record(res *sim.Result) *RunRecord {
	return &RunRecord{
		Stats:     res.Stats,
		Ret:       res.Ret,
		Output:    res.Output,
		NVMDigest: res.NVM.Digest(),
		MemDigest: res.Mem.Digest(),
	}
}

// Run executes the program to completion and returns its record.
func Run(p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec) (*RunRecord, error) {
	m, err := sim.NewThreaded(p, cfg, sch, specs)
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	return Record(res), nil
}

// Crash crashes the program at the given cycle and records the resulting
// crash state (no recovery). cfg.Recoverable is forced on.
func Crash(p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, crash int64) (*CrashRecord, *sim.CrashState, error) {
	cfg.Recoverable = true
	m, err := sim.NewThreaded(p, cfg, sch, specs)
	if err != nil {
		return nil, nil, err
	}
	cs, err := m.CrashAt(crash)
	if err != nil {
		return nil, nil, err
	}
	rec := &CrashRecord{
		Cycle:     cs.Cycle,
		NVMDigest: cs.NVM.Digest(),
		Restarts:  cs.Restarts,
	}
	for addr, seal := range cs.Seals {
		rec.Seals = append(rec.Seals, SealEntry{Addr: addr, Seal: seal})
	}
	sort.Slice(rec.Seals, func(i, j int) bool { return rec.Seals[i].Addr < rec.Seals[j].Addr })
	return rec, cs, nil
}

// CrashRecover crashes the program at the given cycle, records the crash
// state, then resumes from it and runs to completion. cfg.Recoverable is
// forced on.
func CrashRecover(p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, crash int64) (*CrashRecord, error) {
	cfg.Recoverable = true
	rec, cs, err := Crash(p, cfg, sch, specs, crash)
	if err != nil {
		return nil, err
	}
	resumed, err := sim.NewResumed(p, cfg, sch, specs, cs)
	if err != nil {
		return nil, err
	}
	res, err := resumed.Run()
	if err != nil {
		return nil, fmt.Errorf("resumed run: %w", err)
	}
	rec.Recovered = Record(res)
	return rec, nil
}

// Canon renders a record as stable, indented JSON — the byte form the
// golden files store and the equivalence harness compares.
func Canon(v interface{}) string {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("simtest: canon: %v", err))
	}
	return string(b) + "\n"
}

// Program is one corpus entry: a generated program in both the original
// and compiled (regions + pruned checkpoints) forms.
type Program struct {
	Seed     int64
	Raw      *ir.Program
	Compiled *ir.Program
}

// ProgramFor returns the program variant a scheme executes.
func (p *Program) ProgramFor(sch sim.Scheme) *ir.Program {
	if schemes.NeedsCompiledProgram(sch) {
		return p.Compiled
	}
	return p.Raw
}

// GenProgram generates corpus program #seed. The progen shape is varied
// with the seed so the corpus covers calls, atomics, emits, loop nests,
// and pure straight-line arithmetic.
func GenProgram(seed int64) (*Program, error) {
	cfg := progen.Config{
		MaxFuncs:     int(seed % 3),
		MaxStmts:     10 + int(seed%7),
		MaxLoopDepth: 1 + int(seed%2),
		MaxLoopTrip:  3 + seed%3,
		Arrays:       1 + int(seed%3),
		ArrayWords:   8 + 8*(seed%2),
		Atomics:      seed%2 == 0,
		Emits:        seed%3 != 2,
	}
	raw := progen.Generate(seed, cfg)
	compiled, _, err := compiler.Compile(raw, compiler.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("seed %d: compile: %w", seed, err)
	}
	return &Program{Seed: seed, Raw: raw, Compiled: compiled}, nil
}

// AllSchemes returns every registered scheme with its adjusted config, in
// a fixed order.
func AllSchemes(base sim.Config) []SchemeCase {
	names := []string{
		"base", "cwsp", "region-formation", "persist-path", "mc-spec",
		"wb-delay", "wpq-delay", "capri", "ido", "replaycache", "psp-ideal",
	}
	out := make([]SchemeCase, 0, len(names))
	for _, n := range names {
		sch, ok := schemes.ByName(n)
		if !ok {
			panic("simtest: unknown scheme " + n)
		}
		out = append(out, SchemeCase{Name: n, Sch: sch, Cfg: schemes.ConfigFor(sch, base)})
	}
	return out
}

// SchemeCase is one scheme with its structural config overrides applied.
type SchemeCase struct {
	Name string
	Sch  sim.Scheme
	Cfg  sim.Config
}

// TestConfig is the downsized machine the equivalence corpus runs on: the
// default hierarchy with small persist structures, so tiny generated
// programs still exercise PB/WPQ/RBT back-pressure, WB delaying, and
// multi-MC interleaving.
func TestConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.L1DBytes = 4 << 10
	cfg.L2Bytes = 64 << 10
	cfg.DRAMBytes = 256 << 10
	cfg.PBSize = 6
	cfg.WPQSize = 4
	cfg.RBTSize = 3
	cfg.WBSize = 4
	return cfg
}
