package simtest

import (
	"testing"

	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry/live"
)

// steadyMachine builds a warm steady-loop machine (see alloc_test.go) and
// returns it with the warmed-up crash target.
func steadyMachine(t *testing.T) (*sim.Machine, int64) {
	sch, ok := schemes.ByName("cwsp")
	if !ok {
		t.Fatal("cwsp scheme missing")
	}
	cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
	p := buildSteadyLoop(t)
	m, err := sim.NewThreaded(p, cfg, sch, []sim.ThreadSpec{{Fn: "steady", Args: []int64{50_000_000}}})
	if err != nil {
		t.Fatal(err)
	}
	target := int64(300_000)
	if err := m.RunUntil(target); err != nil {
		t.Fatal(err)
	}
	return m, target
}

// TestSteadyStateZeroAllocsNilBus pins the tentpole's zero-cost-when-
// disabled guarantee at its strongest point: a machine with an explicitly
// attached nil bus (the disabled form every CLI passes when -http is off)
// must keep the fast kernel's allocation-free steady state bit for bit.
func TestSteadyStateZeroAllocsNilBus(t *testing.T) {
	m, target := steadyMachine(t)
	m.SetLiveBus(nil)
	before := m.CollectStats().Instrs
	avg := testing.AllocsPerRun(50, func() {
		target += 2_000
		if err := m.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("nil-bus steady-state RunUntil allocated %.1f times per window, want 0", avg)
	}
	if after := m.CollectStats().Instrs; after <= before {
		t.Fatalf("machine stopped stepping (instrs %d -> %d)", before, after)
	}
}

// TestSteadyStateZeroAllocsEnabledBus: even with a live bus attached and
// publishing (no subscribers — the common case of a bus whose HTTP client
// disconnected), steady-state stepping must stay allocation-free: Publish
// is atomics plus a struct copy, never a heap allocation.
func TestSteadyStateZeroAllocsEnabledBus(t *testing.T) {
	m, target := steadyMachine(t)
	bus := live.NewBus()
	m.SetLiveBus(bus)
	before := m.CollectStats().Instrs
	avg := testing.AllocsPerRun(50, func() {
		target += 2_000
		if err := m.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("enabled-bus steady-state RunUntil allocated %.1f times per window, want 0", avg)
	}
	if after := m.CollectStats().Instrs; after <= before {
		t.Fatalf("machine stopped stepping (instrs %d -> %d)", before, after)
	}
}

// TestLiveBusDoesNotChangeResults: attaching a bus must be observationally
// invisible to the simulation — identical stats, output, and return values
// with and without one, and the bus must have seen progress deltas that
// add up to (at most) the machine's own instruction count.
func TestLiveBusDoesNotChangeResults(t *testing.T) {
	sch, ok := schemes.ByName("cwsp")
	if !ok {
		t.Fatal("cwsp scheme missing")
	}
	cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
	p := buildSteadyLoop(t)
	const iters = 3_000_000 // long enough for several SimProgress reports

	run := func(bus *live.Bus) *sim.Result {
		m, err := sim.NewThreaded(p, cfg, sch, []sim.ThreadSpec{{Fn: "steady", Args: []int64{iters}}})
		if err != nil {
			t.Fatal(err)
		}
		m.SetLiveBus(bus)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil)
	bus := live.NewBus()
	observed := run(bus)

	if plain.Stats != observed.Stats {
		t.Fatalf("bus changed stats:\nplain    %+v\nobserved %+v", plain.Stats, observed.Stats)
	}
	if len(plain.Ret) != len(observed.Ret) || plain.Ret[0] != observed.Ret[0] {
		t.Fatalf("bus changed return values: %v vs %v", plain.Ret, observed.Ret)
	}

	s := bus.Snapshot()
	if s.SimInstrs == 0 {
		t.Fatal("no SimProgress events from a multi-million-instruction run")
	}
	if s.SimInstrs > observed.Stats.Instrs {
		t.Fatalf("bus reports %d instrs, machine executed %d", s.SimInstrs, observed.Stats.Instrs)
	}
	if got := bus.KindCount(live.SimProgress); got == 0 {
		t.Fatal("SimProgress kind count is zero")
	}
}
