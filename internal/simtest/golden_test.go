package simtest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with: go test ./internal/simtest -run Golden -update): %v", name, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden snapshot\n%s", name, firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line of two snapshots.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line count: golden %d, got %d", len(wl), len(gl))
}

// goldenCases spans the structural variety of the scheme space: no
// persistence (base), the full cWSP stack, tiny persist buffers with group
// commit (capri), region dedup (ido), and the idealized PSP upper bound.
var goldenSchemes = []string{"base", "cwsp", "capri", "ido", "psp-ideal"}

// goldenWorkloads covers streaming stores (lbm), transactional read/write
// mixes (tatp), pointer+compute (kmeans), and a red-black tree's
// allocation-heavy call pattern (rb).
var goldenWorkloads = []string{"tatp", "lbm", "kmeans", "rb"}

// buildWorkload constructs a workload at smoke scale in raw and compiled
// forms, cached per test run.
func buildWorkload(t testing.TB, name string) (raw, compiled *ir.Program) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	raw = w.Build(workloads.Smoke)
	compiled, _, err = compiler.Compile(raw, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return raw, compiled
}

func TestGoldenWorkloads(t *testing.T) {
	for _, wn := range goldenWorkloads {
		raw, compiled := buildWorkload(t, wn)
		for _, sn := range goldenSchemes {
			t.Run(wn+"_"+sn, func(t *testing.T) {
				sch, ok := schemes.ByName(sn)
				if !ok {
					t.Fatalf("unknown scheme %s", sn)
				}
				p := raw
				if schemes.NeedsCompiledProgram(sch) {
					p = compiled
				}
				cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
				// Every kernel must reproduce the pinned golden bytes.
				for _, k := range append([]sim.KernelKind{sim.KernelReference}, testKernels...) {
					rec, err := Run(p, withKernel(cfg, k), sch, []sim.ThreadSpec{{Fn: p.Entry}})
					if err != nil {
						t.Fatalf("%s: %v", k, err)
					}
					checkGolden(t, "run_"+wn+"_"+sn+".json", Canon(rec))
				}
			})
		}
	}
}

func TestGoldenMultiCore(t *testing.T) {
	p := workloads.BuildMTWorker()
	p, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4} {
		t.Run(fmt.Sprintf("mt%d_cwsp", cores), func(t *testing.T) {
			sch, _ := schemes.ByName("cwsp")
			cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
			var specs []sim.ThreadSpec
			for i := 0; i < cores; i++ {
				specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(i), 8}})
			}
			for _, k := range append([]sim.KernelKind{sim.KernelReference}, testKernels...) {
				rec, err := Run(p, withKernel(cfg, k), sch, specs)
				if err != nil {
					t.Fatalf("%s: %v", k, err)
				}
				checkGolden(t, fmt.Sprintf("run_mt%d_cwsp.json", cores), Canon(rec))
			}
		})
	}
}

// TestGoldenCrash freezes crash states and recovery outcomes: a progen
// program crashed at the midpoint of its golden run under the recoverable
// schemes that support resume.
func TestGoldenCrash(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sn := range []string{"cwsp", "ido"} {
			t.Run(fmt.Sprintf("p%d_%s", seed, sn), func(t *testing.T) {
				sch, _ := schemes.ByName(sn)
				cfg := schemes.ConfigFor(sch, TestConfig())
				p := cp.ProgramFor(sch)
				specs := []sim.ThreadSpec{{Fn: p.Entry}}
				full, err := Run(p, cfg, sch, specs)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range append([]sim.KernelKind{sim.KernelReference}, testKernels...) {
					rec, err := CrashRecover(p, withKernel(cfg, k), sch, specs, full.Stats.Cycles/2)
					if err != nil {
						t.Fatalf("%s: %v", k, err)
					}
					checkGolden(t, fmt.Sprintf("crash_p%d_%s.json", seed, sn), Canon(rec))
				}
			})
		}
	}
}
