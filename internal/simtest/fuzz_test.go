package simtest

import (
	"fmt"
	"testing"

	"cwsp/internal/sim"
)

// FuzzKernelEquivalence feeds arbitrary progen seeds, scheme picks, and
// crash fractions to every kernel and requires byte-identical full-run
// results and crash/recovery outcomes. It is the open-ended arm of the
// differential harness: TestKernelEquivalence sweeps a fixed corpus, the
// fuzzer walks whatever the mutator finds.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2))
	f.Add(int64(7), uint8(3), uint8(1))
	f.Add(int64(42), uint8(10), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, schemePick, crashPick uint8) {
		fuzzOneCell(t, seed, schemePick, crashPick, testKernels)
	})
}

// FuzzThreadedEquivalence is the focused arm for the threaded-code
// backend: the same cell construction, but only threaded-vs-reference,
// so fuzz time concentrates on translation (operand-shape
// specialization, compare+branch fusion, flat-pc writeback) instead of
// re-proving the batched kernel.
func FuzzThreadedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2))
	f.Add(int64(7), uint8(3), uint8(1))
	f.Add(int64(42), uint8(10), uint8(3))
	f.Add(int64(9091), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, schemePick, crashPick uint8) {
		fuzzOneCell(t, seed, schemePick, crashPick, []sim.KernelKind{sim.KernelThreaded})
	})
}

// fuzzOneCell runs one fuzzer-chosen (seed, scheme, crash point) cell
// through the given kernels against the reference stepper.
func fuzzOneCell(t *testing.T, seed int64, schemePick, crashPick uint8, kernels []sim.KernelKind) {
	if seed < 0 {
		seed = -seed
	}
	seed %= 1 << 20 // keep generated programs small
	cp, err := GenProgram(seed)
	if err != nil {
		t.Skip(err) // a seed the generator rejects is not a kernel bug
	}
	all := AllSchemes(TestConfig())
	sc := all[int(schemePick)%len(all)]
	p := cp.ProgramFor(sc.Sch)
	specs := []sim.ThreadSpec{{Fn: p.Entry}}

	label := fmt.Sprintf("fuzz p%d/%s", seed, sc.Name)
	full := runKernels(t, label, p, sc.Cfg, sc.Sch, specs, kernels)

	// One mid-run crash point chosen by the fuzzer: frozen machine
	// state (and recovery, when the scheme resumes) must match too.
	frac := int64(crashPick%3) + 1
	crash := full.Stats.Cycles * frac / 4
	if crash == 0 {
		return
	}
	crashKernels(t, label, cp, sc.Cfg, sc.Sch, specs, crash, kernels)
}
