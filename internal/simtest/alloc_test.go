package simtest

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
)

// steadyBufBase is the fixed 64-word buffer the steady-state loop cycles
// over: a bounded working set, so every pool and table in the machine
// reaches its high-water mark during warmup.
const steadyBufBase = int64(0x2200_0000)

// buildSteadyLoop returns steady(iters): for i < iters { buf[i&63] = i },
// compiled so region boundaries and the persist path are exercised on
// every iteration.
func buildSteadyLoop(t testing.TB) *ir.Program {
	fb := ir.NewFunc("steady", 1)
	iters := fb.Param(0)
	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(iters))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	slot := fb.Bin(ir.OpAnd, ir.R(i), ir.Imm(63))
	off := fb.Bin(ir.OpShl, ir.R(slot), ir.Imm(3))
	addr := fb.Add(ir.Imm(steadyBufBase), ir.R(off))
	fb.Store(ir.R(i), ir.R(addr), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))

	p := ir.NewProgram("steady")
	p.Add(fb.MustDone())
	p.Entry = "steady"
	cp, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestSteadyStateZeroAllocs pins the fast kernel's allocation-free steady
// state: once a machine is warm (pools filled, tables at size), continued
// stepping through loads, stores, region turnover, and the persist path
// must not touch the heap.
func TestSteadyStateZeroAllocs(t *testing.T) {
	sch, ok := schemes.ByName("cwsp")
	if !ok {
		t.Fatal("cwsp scheme missing")
	}
	cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
	p := buildSteadyLoop(t)
	m, err := sim.NewThreaded(p, cfg, sch, []sim.ThreadSpec{{Fn: "steady", Args: []int64{50_000_000}}})
	if err != nil {
		t.Fatal(err)
	}
	target := int64(300_000)
	if err := m.RunUntil(target); err != nil {
		t.Fatal(err)
	}
	before := m.CollectStats().Instrs

	avg := testing.AllocsPerRun(50, func() {
		target += 2_000
		if err := m.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state RunUntil allocated %.1f times per 2k-cycle window, want 0", avg)
	}
	if after := m.CollectStats().Instrs; after <= before {
		t.Fatalf("machine stopped stepping during measurement (instrs %d -> %d)", before, after)
	}
}

// TestThreadedSteadyStateZeroAllocs pins the same property for the
// threaded-code backend: translation happens once during warmup (inside
// the salt-keyed sync.Once cache), after which the flat closure loop must
// not touch the heap — closures allocate at translation time, never at
// run time.
func TestThreadedSteadyStateZeroAllocs(t *testing.T) {
	sch, ok := schemes.ByName("cwsp")
	if !ok {
		t.Fatal("cwsp scheme missing")
	}
	cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
	cfg.Kernel = sim.KernelThreaded
	p := buildSteadyLoop(t)
	m, err := sim.NewThreaded(p, cfg, sch, []sim.ThreadSpec{{Fn: "steady", Args: []int64{50_000_000}}})
	if err != nil {
		t.Fatal(err)
	}
	target := int64(300_000)
	if err := m.RunUntil(target); err != nil {
		t.Fatal(err)
	}
	before := m.CollectStats().Instrs

	avg := testing.AllocsPerRun(50, func() {
		target += 2_000
		if err := m.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("threaded steady-state RunUntil allocated %.1f times per 2k-cycle window, want 0", avg)
	}
	if after := m.CollectStats().Instrs; after <= before {
		t.Fatalf("machine stopped stepping during measurement (instrs %d -> %d)", before, after)
	}
}
