package simtest

import (
	"fmt"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

// benchCase is one BenchmarkRunUntil cell: a workload at quick scale on
// one scheme and core count. The timed unit is a full machine build + run,
// which is how every experiment driver consumes the kernel.
type benchCase struct {
	name   string
	scheme string
	cores  int
	build  func(b *testing.B) *ir.Program
}

func quickWorkload(name string, compiled bool) func(b *testing.B) *ir.Program {
	return func(b *testing.B) *ir.Program {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		p := w.Build(workloads.Quick)
		if compiled {
			p, _, err = compiler.Compile(p, compiler.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
}

// computeKernel is the dispatch-bound extreme of the kernel matrix — on
// the app workloads the memory system and persist path bound both
// kernels, so this cell is where interpreter-dispatch cost itself (the
// thing the threaded backend removes) is actually visible.
func computeKernel(b *testing.B) *ir.Program {
	p := workloads.BuildComputeKernel()
	if err := ir.VerifyProgram(p); err != nil {
		b.Fatal(err)
	}
	return p
}

func mtWorker(b *testing.B) *ir.Program {
	p, _, err := compiler.Compile(workloads.BuildMTWorker(), compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkRunUntil(b *testing.B) {
	cases := []benchCase{
		{name: "tatp", scheme: "cwsp", cores: 1, build: quickWorkload("tatp", true)},
		{name: "lbm", scheme: "cwsp", cores: 1, build: quickWorkload("lbm", true)},
		{name: "sps", scheme: "cwsp", cores: 1, build: quickWorkload("sps", true)},
		{name: "kmeans", scheme: "cwsp", cores: 1, build: quickWorkload("kmeans", true)},
		{name: "xsbench", scheme: "base", cores: 1, build: quickWorkload("xsbench", false)},
		{name: "compute", scheme: "base", cores: 1, build: computeKernel},
		{name: "mt", scheme: "cwsp", cores: 2, build: mtWorker},
		{name: "mt", scheme: "cwsp", cores: 4, build: mtWorker},
	}
	// Every cell runs once per optimized kernel: the batched/threaded
	// sub-benchmark pairs are what `make bench-kernel` reports and what
	// the BENCH_kernel.json trajectory gates.
	for _, bc := range cases {
		for _, kernel := range []sim.KernelKind{sim.KernelBatched, sim.KernelThreaded} {
			b.Run(fmt.Sprintf("%s_%s_x%d/%s", bc.name, bc.scheme, bc.cores, kernel), func(b *testing.B) {
				sch, ok := schemes.ByName(bc.scheme)
				if !ok {
					b.Fatalf("unknown scheme %s", bc.scheme)
				}
				cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
				cfg.Kernel = kernel
				p := bc.build(b)
				specs := []sim.ThreadSpec{{Fn: p.Entry}}
				if bc.name == "mt" {
					specs = nil
					for i := 0; i < bc.cores; i++ {
						specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(i), 600}})
					}
				}
				var cycles, instrs int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m, err := sim.NewThreaded(p, cfg, sch, specs)
					if err != nil {
						b.Fatal(err)
					}
					res, err := m.Run()
					if err != nil {
						b.Fatal(err)
					}
					cycles, instrs = res.Stats.Cycles, res.Stats.Instrs
				}
				b.StopTimer()
				if instrs > 0 {
					ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					b.ReportMetric(float64(instrs)/ns*1e3, "Minstr/s")
					b.ReportMetric(float64(cycles), "cycles")
				}
			})
		}
	}
}
