package simtest

import (
	"fmt"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

// The differential harness: every test in this file runs the same program
// on the fast kernel and on the reference kernel and requires the
// canonical records (stats, return values, output, memory and NVM
// digests, crash states, recovery outcomes) to be byte-identical.

// corpusSeeds is the number of progen programs the full-run equivalence
// sweep covers (ISSUE 5 acceptance floor: 200).
const corpusSeeds = 200

func refKernel(cfg sim.Config) sim.Config {
	cfg.ReferenceKernel = true
	return cfg
}

// requireEqual compares fast-vs-reference canonical JSON.
func requireEqual(t *testing.T, label string, fast, ref interface{}) {
	t.Helper()
	fj, rj := Canon(fast), Canon(ref)
	if fj != rj {
		t.Errorf("%s: fast kernel diverged from reference\n%s", label, firstDiff(rj, fj))
	}
}

// runBoth runs one cell on both kernels and requires identical records.
func runBoth(t *testing.T, label string, p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec) *RunRecord {
	t.Helper()
	fast, err := Run(p, cfg, sch, specs)
	if err != nil {
		t.Fatalf("%s: fast: %v", label, err)
	}
	ref, err := Run(p, refKernel(cfg), sch, specs)
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	requireEqual(t, label, fast, ref)
	return fast
}

// crashPoints returns the ≥3 mid-run crash cycles the harness probes:
// quarter, half, and three-quarter points of the golden run.
func crashPoints(goldenCycles int64) []int64 {
	return []int64{goldenCycles / 4, goldenCycles / 2, 3 * goldenCycles / 4}
}

// crashBoth crashes one cell at the given cycle on both kernels (resuming
// when the scheme supports it) and requires identical crash records. A
// resume that fails (some crash points land where the frame-record walk
// cannot reconstruct a core — a pre-existing recovery limitation) must
// fail identically on both kernels.
func crashBoth(t *testing.T, label string, cp *Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, crash int64) {
	t.Helper()
	p := cp.ProgramFor(sch)
	resume := schemes.NeedsCompiledProgram(sch)
	one := func(c sim.Config) (*CrashRecord, error) {
		if resume {
			return CrashRecover(p, c, sch, specs, crash)
		}
		rec, _, err := Crash(p, c, sch, specs, crash)
		return rec, err
	}
	fast, fastErr := one(cfg)
	ref, refErr := one(refKernel(cfg))
	lab := fmt.Sprintf("%s@%d", label, crash)
	switch {
	case fastErr == nil && refErr == nil:
		requireEqual(t, lab, fast, ref)
	case fastErr != nil && refErr != nil:
		if fastErr.Error() != refErr.Error() {
			t.Errorf("%s: kernels failed differently\n  fast: %v\n  ref:  %v", lab, fastErr, refErr)
		}
	default:
		t.Errorf("%s: one kernel failed\n  fast: %v\n  ref:  %v", lab, fastErr, refErr)
	}
}

// TestKernelEquivalence is the headline sweep: corpusSeeds progen
// programs × all 11 schemes, full-run records byte-identical between
// kernels.
func TestKernelEquivalence(t *testing.T) {
	seeds := int64(corpusSeeds)
	if testing.Short() {
		seeds = 25
	}
	cases := AllSchemes(TestConfig())
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range cases {
			p := cp.ProgramFor(sc.Sch)
			label := fmt.Sprintf("p%d/%s", seed, sc.Name)
			runBoth(t, label, p, sc.Cfg, sc.Sch, []sim.ThreadSpec{{Fn: p.Entry}})
		}
	}
}

// TestKernelEquivalenceCrash sweeps the same corpus through mid-run
// crashes: every scheme, three crash points per run, crash states (and,
// for resumable schemes, recovery outcomes) byte-identical.
func TestKernelEquivalenceCrash(t *testing.T) {
	seeds := int64(corpusSeeds)
	if testing.Short() {
		seeds = 10
	}
	cases := AllSchemes(TestConfig())
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range cases {
			p := cp.ProgramFor(sc.Sch)
			specs := []sim.ThreadSpec{{Fn: p.Entry}}
			cfg := sc.Cfg
			cfg.Recoverable = true
			full, err := Run(p, cfg, sc.Sch, specs)
			if err != nil {
				t.Fatal(err)
			}
			for _, crash := range crashPoints(full.Stats.Cycles) {
				if crash == 0 {
					continue
				}
				crashBoth(t, fmt.Sprintf("p%d/%s", seed, sc.Name), cp, sc.Cfg, sc.Sch, specs, crash)
			}
		}
	}
}

// TestKernelEquivalenceMultiCore exercises the batched scheduler's
// tie-breaking: progen programs placed on two cores, and the mt spinlock
// worker on 2 and 4 cores, across all schemes.
func TestKernelEquivalenceMultiCore(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	cases := AllSchemes(TestConfig())
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range cases {
			p := cp.ProgramFor(sc.Sch)
			specs := []sim.ThreadSpec{{Fn: p.Entry}, {Fn: p.Entry}}
			runBoth(t, fmt.Sprintf("p%d/%s/x2", seed, sc.Name), p, sc.Cfg, sc.Sch, specs)
		}
	}

	mt, _, err := compiler.Compile(workloads.BuildMTWorker(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4} {
		var specs []sim.ThreadSpec
		for i := 0; i < cores; i++ {
			specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(i), 6}})
		}
		for _, sc := range cases {
			runBoth(t, fmt.Sprintf("mt/%s/x%d", sc.Name, cores), mt, sc.Cfg, sc.Sch, specs)
		}
	}
}

// TestKernelEquivalenceMultiCoreCrash crashes two-core placements at
// three points under the full cWSP scheme and requires identical crash
// states and recovery outcomes.
func TestKernelEquivalenceMultiCoreCrash(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 4
	}
	sch, _ := schemes.ByName("cwsp")
	cfg := schemes.ConfigFor(sch, TestConfig())
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		p := cp.Compiled
		specs := []sim.ThreadSpec{{Fn: p.Entry}, {Fn: p.Entry}}
		rcfg := cfg
		rcfg.Recoverable = true
		full, err := Run(p, rcfg, sch, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, crash := range crashPoints(full.Stats.Cycles) {
			if crash == 0 {
				continue
			}
			crashBoth(t, fmt.Sprintf("p%d/cwsp/x2", seed), cp, cfg, sch, specs, crash)
		}
	}
}

// TestKernelEquivalenceWorkloads runs real workloads (smoke scale)
// through both kernels across the golden scheme set — a denser program
// mix than progen reaches.
func TestKernelEquivalenceWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, wn := range goldenWorkloads {
		raw, compiled := buildWorkload(t, wn)
		for _, sn := range goldenSchemes {
			sch, _ := schemes.ByName(sn)
			p := raw
			if schemes.NeedsCompiledProgram(sch) {
				p = compiled
			}
			cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
			runBoth(t, wn+"/"+sn, p, cfg, sch, []sim.ThreadSpec{{Fn: p.Entry}})
		}
	}
}
