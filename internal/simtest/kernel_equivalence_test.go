package simtest

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
	"cwsp/internal/workloads"
)

// The N-way differential harness: every test in this file runs the same
// program on every kernel under test and requires the canonical records
// (stats, return values, output, memory and NVM digests, crash states,
// recovery outcomes) to be byte-identical to the reference stepper's.
// The reference kernel is the pinned truth; testKernels lists the
// optimized kernels measured against it — a future kernel joins the
// whole suite by adding one element.

// corpusSeeds is the number of progen programs the full-run equivalence
// sweep covers (ISSUE 5 acceptance floor: 200).
const corpusSeeds = 200

// testKernels are the optimized kernels the harness proves against the
// reference stepper.
var testKernels = []sim.KernelKind{sim.KernelBatched, sim.KernelThreaded}

func refKernel(cfg sim.Config) sim.Config {
	cfg.Kernel = sim.KernelReference
	return cfg
}

func withKernel(cfg sim.Config, k sim.KernelKind) sim.Config {
	cfg.Kernel = k
	return cfg
}

// sampleEvery reads the CWSP_EQ_SAMPLE thinning factor: the sampled
// simulation tier. CI's expensive configurations (-race -count=2) set it
// to run a deterministic 1-in-k sample of the full seed × scheme × crash
// cell grid; unset or <=1 runs every cell. Sampling is positional — cell
// i runs iff i % k == 0 — so two invocations sample identical cells.
func sampleEvery() int {
	v := os.Getenv("CWSP_EQ_SAMPLE")
	if v == "" {
		return 1
	}
	k, err := strconv.Atoi(v)
	if err != nil || k < 1 {
		return 1
	}
	return k
}

// sampler deterministically thins a sweep's cell grid.
type sampler struct{ every, n int }

func newSampler() *sampler { return &sampler{every: sampleEvery()} }

// take reports whether the next cell is in the sample.
func (s *sampler) take() bool {
	i := s.n
	s.n++
	return s.every <= 1 || i%s.every == 0
}

// requireEqual compares one kernel's canonical JSON against the
// reference record.
func requireEqual(t *testing.T, label string, kernel sim.KernelKind, got, ref interface{}) {
	t.Helper()
	gj, rj := Canon(got), Canon(ref)
	if gj != rj {
		t.Errorf("%s: %s kernel diverged from reference\n%s", label, kernel, firstDiff(rj, gj))
	}
}

// runAll runs one cell on the reference kernel and on every kernel under
// test, requiring identical records.
func runAll(t *testing.T, label string, p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec) *RunRecord {
	t.Helper()
	return runKernels(t, label, p, cfg, sch, specs, testKernels)
}

// runKernels is runAll over an explicit kernel list (the fuzz targets
// narrow it to one kernel each).
func runKernels(t *testing.T, label string, p *ir.Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, kernels []sim.KernelKind) *RunRecord {
	t.Helper()
	ref, err := Run(p, refKernel(cfg), sch, specs)
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	for _, k := range kernels {
		got, err := Run(p, withKernel(cfg, k), sch, specs)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, k, err)
		}
		requireEqual(t, label, k, got, ref)
	}
	return ref
}

// crashPoints returns the ≥3 mid-run crash cycles the harness probes:
// quarter, half, and three-quarter points of the golden run.
func crashPoints(goldenCycles int64) []int64 {
	return []int64{goldenCycles / 4, goldenCycles / 2, 3 * goldenCycles / 4}
}

// crashAll crashes one cell at the given cycle on every kernel (resuming
// when the scheme supports it) and requires crash records identical to
// the reference kernel's. A resume that fails (some crash points land
// where the frame-record walk cannot reconstruct a core — a pre-existing
// recovery limitation) must fail identically on every kernel.
func crashAll(t *testing.T, label string, cp *Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, crash int64) {
	t.Helper()
	crashKernels(t, label, cp, cfg, sch, specs, crash, testKernels)
}

// crashKernels is crashAll over an explicit kernel list.
func crashKernels(t *testing.T, label string, cp *Program, cfg sim.Config, sch sim.Scheme, specs []sim.ThreadSpec, crash int64, kernels []sim.KernelKind) {
	t.Helper()
	p := cp.ProgramFor(sch)
	resume := schemes.NeedsCompiledProgram(sch)
	one := func(c sim.Config) (*CrashRecord, error) {
		if resume {
			return CrashRecover(p, c, sch, specs, crash)
		}
		rec, _, err := Crash(p, c, sch, specs, crash)
		return rec, err
	}
	ref, refErr := one(refKernel(cfg))
	lab := fmt.Sprintf("%s@%d", label, crash)
	for _, k := range kernels {
		got, gotErr := one(withKernel(cfg, k))
		switch {
		case gotErr == nil && refErr == nil:
			requireEqual(t, lab, k, got, ref)
		case gotErr != nil && refErr != nil:
			if gotErr.Error() != refErr.Error() {
				t.Errorf("%s: %s kernel failed differently from reference\n  %s: %v\n  ref: %v",
					lab, k, k, gotErr, refErr)
			}
		default:
			t.Errorf("%s: only one kernel failed\n  %s: %v\n  ref: %v", lab, k, gotErr, refErr)
		}
	}
}

// TestKernelEquivalence is the headline sweep: corpusSeeds progen
// programs × all 11 schemes, full-run records byte-identical across
// kernels.
func TestKernelEquivalence(t *testing.T) {
	seeds := int64(corpusSeeds)
	if testing.Short() {
		seeds = 25
	}
	cases := AllSchemes(TestConfig())
	smp := newSampler()
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range cases {
			if !smp.take() {
				continue
			}
			p := cp.ProgramFor(sc.Sch)
			label := fmt.Sprintf("p%d/%s", seed, sc.Name)
			runAll(t, label, p, sc.Cfg, sc.Sch, []sim.ThreadSpec{{Fn: p.Entry}})
		}
	}
}

// TestKernelEquivalenceCrash sweeps the same corpus through mid-run
// crashes: every scheme, three crash points per run, crash states (and,
// for resumable schemes, recovery outcomes) byte-identical.
func TestKernelEquivalenceCrash(t *testing.T) {
	seeds := int64(corpusSeeds)
	if testing.Short() {
		seeds = 10
	}
	cases := AllSchemes(TestConfig())
	smp := newSampler()
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range cases {
			if !smp.take() {
				continue
			}
			p := cp.ProgramFor(sc.Sch)
			specs := []sim.ThreadSpec{{Fn: p.Entry}}
			cfg := sc.Cfg
			cfg.Recoverable = true
			full, err := Run(p, cfg, sc.Sch, specs)
			if err != nil {
				t.Fatal(err)
			}
			for _, crash := range crashPoints(full.Stats.Cycles) {
				if crash == 0 {
					continue
				}
				crashAll(t, fmt.Sprintf("p%d/%s", seed, sc.Name), cp, sc.Cfg, sc.Sch, specs, crash)
			}
		}
	}
}

// TestKernelEquivalenceMultiCore exercises the batched scheduler's
// tie-breaking: progen programs placed on two cores, and the mt spinlock
// worker on 2 and 4 cores, across all schemes.
func TestKernelEquivalenceMultiCore(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	cases := AllSchemes(TestConfig())
	smp := newSampler()
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range cases {
			if !smp.take() {
				continue
			}
			p := cp.ProgramFor(sc.Sch)
			specs := []sim.ThreadSpec{{Fn: p.Entry}, {Fn: p.Entry}}
			runAll(t, fmt.Sprintf("p%d/%s/x2", seed, sc.Name), p, sc.Cfg, sc.Sch, specs)
		}
	}

	mt, _, err := compiler.Compile(workloads.BuildMTWorker(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4} {
		var specs []sim.ThreadSpec
		for i := 0; i < cores; i++ {
			specs = append(specs, sim.ThreadSpec{Fn: "worker", Args: []int64{int64(i), 6}})
		}
		for _, sc := range cases {
			runAll(t, fmt.Sprintf("mt/%s/x%d", sc.Name, cores), mt, sc.Cfg, sc.Sch, specs)
		}
	}
}

// TestKernelEquivalenceMultiCoreCrash crashes two-core placements at
// three points under the full cWSP scheme and requires identical crash
// states and recovery outcomes.
func TestKernelEquivalenceMultiCoreCrash(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 4
	}
	sch, _ := schemes.ByName("cwsp")
	cfg := schemes.ConfigFor(sch, TestConfig())
	smp := newSampler()
	for seed := int64(0); seed < seeds; seed++ {
		cp, err := GenProgram(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !smp.take() {
			continue
		}
		p := cp.Compiled
		specs := []sim.ThreadSpec{{Fn: p.Entry}, {Fn: p.Entry}}
		rcfg := cfg
		rcfg.Recoverable = true
		full, err := Run(p, rcfg, sch, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, crash := range crashPoints(full.Stats.Cycles) {
			if crash == 0 {
				continue
			}
			crashAll(t, fmt.Sprintf("p%d/cwsp/x2", seed), cp, cfg, sch, specs, crash)
		}
	}
}

// TestKernelEquivalenceWorkloads runs real workloads (smoke scale)
// through every kernel across the golden scheme set — a denser program
// mix than progen reaches.
func TestKernelEquivalenceWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, wn := range goldenWorkloads {
		raw, compiled := buildWorkload(t, wn)
		for _, sn := range goldenSchemes {
			sch, _ := schemes.ByName(sn)
			p := raw
			if schemes.NeedsCompiledProgram(sch) {
				p = compiled
			}
			cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
			runAll(t, wn+"/"+sn, p, cfg, sch, []sim.ThreadSpec{{Fn: p.Entry}})
		}
	}
}
