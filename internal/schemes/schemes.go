// Package schemes defines the crash-consistency disciplines the paper
// evaluates: cWSP itself, its ablations (Figure 15), and the prior-work
// comparators — Capri (HPDC'22), iDO (MICRO'18), ReplayCache (MICRO'21),
// and the ideal partial-system-persistence upper bound
// (BBB/eADR/LightPC-like, Figure 18). Each is expressed as a sim.Scheme
// plus, where needed, structural overrides on the machine config.
package schemes

import "cwsp/internal/sim"

// Baseline is the original program with no crash-consistency support.
func Baseline() sim.Scheme { return sim.Baseline() }

// CWSP is the full design (8-byte persist granularity, MC speculation,
// WB-delay stale-read fix, WPQ load delaying).
func CWSP() sim.Scheme { return sim.CWSP() }

// --- Figure 15 ablation ladder ---------------------------------------------

// RegionOnly executes the region-formed, checkpointed binary but persists
// nothing: isolates the compiler-inserted instruction overhead
// ("+Region Formation").
func RegionOnly() sim.Scheme {
	s := sim.Baseline()
	s.Name = "region-formation"
	return s
}

// PersistPath adds asynchronous 8-byte store persistence over the persist
// path with RBT tracking, but no MC speculation (no undo logging) —
// "+Persist Path".
func PersistPath() sim.Scheme {
	return sim.Scheme{
		Name: "persist-path", Persist: true, GranularityBytes: 8,
		DRAMCache: true, UseRBT: true,
	}
}

// MCSpec adds memory-controller speculation (undo logging for speculative
// stores) — "+MC Speculation".
func MCSpec() sim.Scheme {
	s := PersistPath()
	s.Name = "mc-spec"
	s.MCSpec = true
	return s
}

// WBDelay adds the write-buffer stale-read fix — "+WB Delaying".
func WBDelay() sim.Scheme {
	s := MCSpec()
	s.Name = "wb-delay"
	s.WBDelay = true
	return s
}

// WPQDelay adds load delaying on WPQ hits — "+WPQ Delaying". Combined with
// checkpoint pruning on the compiler side this is the full cWSP.
func WPQDelay() sim.Scheme {
	s := WBDelay()
	s.Name = "wpq-delay"
	s.WPQDelay = true
	return s
}

// --- prior work --------------------------------------------------------------

// Capri: 64-byte redo-buffer granularity with per-region line coalescing;
// battery-backed buffers mean no boundary stall, but the persist path
// carries 8x the traffic. The redo buffer (18KB = 288 lines) replaces the
// PB.
func Capri() sim.Scheme {
	return sim.Scheme{
		Name: "capri", Persist: true, GranularityBytes: 64,
		DedupLines: true, DRAMCache: true,
	}
}

// CapriConfig adapts a machine config for Capri's structures.
func CapriConfig(c sim.Config) sim.Config {
	c.PBSize = 288 // 18 KB redo buffer / 64 B lines
	return c
}

// IDO: software failure atomicity with persist barriers at both ends of
// every region — cacheline flushes (clwb) plus a barrier stall until the
// region's stores persist.
func IDO() sim.Scheme {
	return sim.Scheme{
		Name: "ido", Persist: true, GranularityBytes: 64,
		BoundaryStall: true, BoundaryExtraLat: 30,
		DRAMCache: true,
	}
}

// ReplayCache: adapted from its energy-harvesting design — per-store
// cacheline persistence with region-end waits and only a few line buffers
// of staging.
func ReplayCache() sim.Scheme {
	return sim.Scheme{
		Name: "replaycache", Persist: true, GranularityBytes: 64,
		BoundaryStall: true, BoundaryExtraLat: 60,
		DRAMCache: true,
	}
}

// ReplayCacheConfig shrinks the staging buffer to the scheme's 4 entries.
func ReplayCacheConfig(c sim.Config) sim.Config {
	c.PBSize = 4
	return c
}

// PSPIdeal: the ideal partial-system-persistence bound
// (BBB/eADR/LightPC-like): persistence is free (battery-backed caches) but
// DRAM cannot be used as a cache — every LLC miss goes to NVM.
func PSPIdeal() sim.Scheme {
	return sim.Scheme{Name: "psp-ideal"}
}

// ByName returns a scheme constructor by its benchmark-harness name.
func ByName(name string) (sim.Scheme, bool) {
	switch name {
	case "base":
		return Baseline(), true
	case "cwsp":
		return CWSP(), true
	case "region-formation":
		return RegionOnly(), true
	case "persist-path":
		return PersistPath(), true
	case "mc-spec":
		return MCSpec(), true
	case "wb-delay":
		return WBDelay(), true
	case "wpq-delay":
		return WPQDelay(), true
	case "capri":
		return Capri(), true
	case "ido":
		return IDO(), true
	case "replaycache":
		return ReplayCache(), true
	case "psp-ideal":
		return PSPIdeal(), true
	}
	return sim.Scheme{}, false
}

// ConfigFor applies scheme-specific structural overrides.
func ConfigFor(s sim.Scheme, c sim.Config) sim.Config {
	switch s.Name {
	case "capri":
		return CapriConfig(c)
	case "replaycache":
		return ReplayCacheConfig(c)
	}
	return c
}

// NeedsCompiledProgram reports whether the scheme executes the cWSP
// compiler's output (regions + checkpoints) or the original binary.
func NeedsCompiledProgram(s sim.Scheme) bool {
	switch s.Name {
	case "base", "psp-ideal":
		return false
	}
	return true
}
