package schemes

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
	"cwsp/internal/sim"
)

func TestByNameCoversAll(t *testing.T) {
	names := []string{"base", "cwsp", "region-formation", "persist-path", "mc-spec",
		"wb-delay", "wpq-delay", "capri", "ido", "replaycache", "psp-ideal"}
	for _, n := range names {
		s, ok := ByName(n)
		if !ok {
			t.Errorf("scheme %q missing", n)
			continue
		}
		if s.Name != n {
			t.Errorf("scheme %q reports name %q", n, s.Name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown scheme resolved")
	}
}

func TestAblationLadderFlags(t *testing.T) {
	// Each rung adds exactly its capability.
	if RegionOnly().Persist {
		t.Error("region-formation must not persist")
	}
	if !PersistPath().Persist || PersistPath().MCSpec {
		t.Error("persist-path: persistence without speculation")
	}
	if !MCSpec().MCSpec || MCSpec().WBDelay {
		t.Error("mc-spec adds speculation only")
	}
	if !WBDelay().WBDelay || WBDelay().WPQDelay {
		t.Error("wb-delay adds the WB check only")
	}
	if !WPQDelay().WPQDelay {
		t.Error("wpq-delay missing its flag")
	}
	full := CWSP()
	if !(full.Persist && full.MCSpec && full.WBDelay && full.WPQDelay && full.UseRBT) {
		t.Error("full cWSP missing capabilities")
	}
}

func TestPriorWorkGranularity(t *testing.T) {
	for _, s := range []sim.Scheme{Capri(), IDO(), ReplayCache()} {
		if s.GranularityBytes != 64 {
			t.Errorf("%s should persist 64-byte lines, got %d", s.Name, s.GranularityBytes)
		}
	}
	if CWSP().GranularityBytes != 8 {
		t.Error("cWSP persists 8-byte words")
	}
	if !Capri().DedupLines {
		t.Error("Capri's redo buffer coalesces lines")
	}
	if !IDO().BoundaryStall || !ReplayCache().BoundaryStall {
		t.Error("software schemes stall at region boundaries")
	}
}

func TestPSPIdealDisablesDRAMCache(t *testing.T) {
	if PSPIdeal().DRAMCache {
		t.Error("ideal PSP cannot use DRAM as a cache")
	}
	if PSPIdeal().Persist {
		t.Error("ideal PSP persistence is free (battery-backed)")
	}
}

func TestConfigOverrides(t *testing.T) {
	base := sim.DefaultConfig()
	if got := ConfigFor(Capri(), base).PBSize; got != 288 {
		t.Errorf("Capri redo buffer = %d lines, want 288 (18KB)", got)
	}
	if got := ConfigFor(ReplayCache(), base).PBSize; got != 4 {
		t.Errorf("ReplayCache staging = %d, want 4", got)
	}
	if got := ConfigFor(CWSP(), base).PBSize; got != base.PBSize {
		t.Error("cWSP must not override the PB size")
	}
}

func TestNeedsCompiledProgram(t *testing.T) {
	if NeedsCompiledProgram(Baseline()) || NeedsCompiledProgram(PSPIdeal()) {
		t.Error("baseline/PSP run the original binary")
	}
	for _, s := range []sim.Scheme{CWSP(), Capri(), IDO(), ReplayCache(), RegionOnly()} {
		if !NeedsCompiledProgram(s) {
			t.Errorf("%s needs the compiled binary", s.Name)
		}
	}
}

// TestAllSchemesExecuteCorrectly: every scheme computes the same program
// result; persistence disciplines must never change semantics.
func TestAllSchemesExecuteCorrectly(t *testing.T) {
	p := progen.Generate(17, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ir.Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"base", "cwsp", "region-formation", "persist-path",
		"mc-spec", "wb-delay", "wpq-delay", "capri", "ido", "replaycache", "psp-ideal"} {
		sch, _ := ByName(name)
		prog := p
		if NeedsCompiledProgram(sch) {
			prog = q
		}
		cfg := ConfigFor(sch, sim.DefaultConfig())
		m, err := sim.New(prog, cfg, sch)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Ret[0] != want.RetVal {
			t.Errorf("%s: result %d, want %d", name, res.Ret[0], want.RetVal)
		}
	}
}

// TestSchemeOrdering: on a store-heavy kernel the canonical cost ordering
// holds: base <= cwsp < capri(4GB/s) and software schemes are the worst.
func TestSchemeOrdering(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(4000))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	off := fb.Mul(ir.R(i), ir.Imm(8))
	a := fb.Add(ir.Imm(0x3000_0000), ir.R(off))
	fb.Store(ir.R(i), ir.R(a), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	p := ir.NewProgram("stores")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cycles := map[string]int64{}
	for _, name := range []string{"base", "cwsp", "capri", "ido", "replaycache"} {
		sch, _ := ByName(name)
		prog := p
		if NeedsCompiledProgram(sch) {
			prog = q
		}
		m, err := sim.New(prog, ConfigFor(sch, sim.DefaultConfig()), sch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		cycles[name] = res.Stats.Cycles
	}
	if !(cycles["base"] <= cycles["cwsp"]) {
		t.Errorf("base (%d) should not exceed cwsp (%d)", cycles["base"], cycles["cwsp"])
	}
	if !(cycles["cwsp"] < cycles["capri"]) {
		t.Errorf("cwsp (%d) should beat capri (%d) on a store-heavy kernel", cycles["cwsp"], cycles["capri"])
	}
	if !(cycles["capri"] < cycles["replaycache"]) {
		t.Errorf("capri (%d) should beat replaycache (%d)", cycles["capri"], cycles["replaycache"])
	}
}
