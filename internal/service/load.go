package service

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cwsp/internal/telemetry/benchfmt"
)

// LoadOptions configure a load-generation run against a daemon.
type LoadOptions struct {
	// Clients is the concurrent client count (default 32); Requests is how
	// many campaigns each client submits (default 4).
	Clients  int
	Requests int

	// WarmFrac is the fraction of each client's traffic drawn from the
	// shared warm seed pool — repeat campaigns the content-addressed cache
	// must serve without re-simulating. The rest is cold: unique seeds
	// nothing has computed before. Default 0.5.
	WarmFrac float64
	// WarmSeeds is the warm pool size (default 4).
	WarmSeeds int
	// Prewarm submits each warm seed once (and waits) before the storm, so
	// the warm fraction measures pure cache behavior (default true via
	// RunLoad).
	NoPrewarm bool

	// Seed derandomizes the traffic mix; Spec is the campaign template
	// (its Seed field is overwritten per request; default: a single-cell
	// litmus campaign, the cheapest real work unit).
	Seed int64
	Spec Spec

	// Poll is the campaign-completion poll interval (default 25ms);
	// SampleEvery is the queue-depth sampling interval (default 25ms).
	Poll        time.Duration
	SampleEvery time.Duration

	Log io.Writer
}

// LoadReport is what a load run measured.
type LoadReport struct {
	Clients  int   `json:"clients"`
	Requests int64 `json:"requests"`
	// Dropped counts campaigns that did not reach StateDone (failed,
	// aborted, or lost); a healthy run has 0 — backpressure makes clients
	// wait, never lose work.
	Dropped int64 `json:"dropped"`
	// Rejected429 counts backpressure rejections absorbed by retry.
	Rejected429 int64 `json:"rejected_429"`

	WallMS         int64   `json:"wall_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	CellsDone      int64   `json:"cells_done"`
	CellsPerSec    float64 `json:"cells_per_sec"`

	WarmRequests int64 `json:"warm_requests"`
	// WarmHitRatio is (cache hits + shared) / completed cells over the
	// warm fraction of the traffic.
	WarmHitRatio float64 `json:"warm_hit_ratio"`

	// ReqLatencyUS digests end-to-end request latency (submit → terminal
	// state), microseconds.
	ReqLatencyUS benchfmt.Quantiles `json:"req_latency_us"`

	QueueDepthMax  int64   `json:"queue_depth_max"`
	QueueDepthMean float64 `json:"queue_depth_mean"`
}

// Profile converts the report to the benchfmt trajectory shape.
func (r *LoadReport) Profile() *benchfmt.ServiceProfile {
	return &benchfmt.ServiceProfile{
		Clients:        r.Clients,
		Requests:       r.Requests,
		Dropped:        r.Dropped,
		Rejected429:    r.Rejected429,
		RequestsPerSec: r.RequestsPerSec,
		WarmHitRatio:   r.WarmHitRatio,
		ReqLatencyUS:   r.ReqLatencyUS,
		QueueDepthMax:  r.QueueDepthMax,
		QueueDepthMean: r.QueueDepthMean,
	}
}

// RunLoad hammers the daemon at base with Clients concurrent clients over
// a mixed cold/warm campaign workload. Clients absorb backpressure
// (retry-on-429) rather than dropping work, so Dropped counts real
// campaign losses, not admission contention.
func RunLoad(ctx context.Context, base string, opts LoadOptions) (*LoadReport, error) {
	if opts.Clients <= 0 {
		opts.Clients = 32
	}
	if opts.Requests <= 0 {
		opts.Requests = 4
	}
	if opts.WarmFrac <= 0 {
		opts.WarmFrac = 0.5
	}
	if opts.WarmSeeds <= 0 {
		opts.WarmSeeds = 4
	}
	if opts.Poll <= 0 {
		opts.Poll = 25 * time.Millisecond
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 25 * time.Millisecond
	}
	if opts.Spec.Kind == "" {
		opts.Spec = Spec{Kind: KindLitmus, Cells: 1, Schemes: []string{"base", "cwsp"}, Kernels: []string{"fast"}}
	}

	// Warm seeds live in a small shared pool; cold seeds are globally
	// unique offsets no campaign has seen.
	warmSeed := func(i int) int64 { return opts.Seed*1_000_000 + int64(i%opts.WarmSeeds) }
	coldSeed := func(client, req int) int64 {
		return opts.Seed*1_000_000 + 1000 + int64(client)*10_000 + int64(req)
	}

	statsCli := &Client{Base: base, ID: "loadgen-sampler"}
	if !opts.NoPrewarm {
		logf(opts.Log, "prewarm: %d warm seeds", opts.WarmSeeds)
		pre := &Client{Base: base, ID: "loadgen-prewarm"}
		for i := 0; i < opts.WarmSeeds; i++ {
			spec := opts.Spec
			spec.Seed = warmSeed(i)
			if _, _, err := pre.SubmitWait(ctx, spec, opts.Poll); err != nil {
				return nil, fmt.Errorf("service: prewarm seed %d: %w", i, err)
			}
		}
	}

	var (
		rep                          LoadReport
		mu                           sync.Mutex
		latUS                        []float64
		warmHits, warmDone           int64
		dropped, rejected, cellsDone int64
		firstErr                     error
	)
	rep.Clients = opts.Clients

	// Queue-depth sampler: a contention proxy polled for the life of the
	// storm.
	sampleCtx, stopSampler := context.WithCancel(ctx)
	var sampler sync.WaitGroup
	var depthSum, depthN, depthMax int64
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		t := time.NewTicker(opts.SampleEvery)
		defer t.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-t.C:
				st, err := statsCli.Stats(sampleCtx)
				if err != nil {
					continue
				}
				d := int64(st.QueueDepth)
				atomic.AddInt64(&depthSum, d)
				atomic.AddInt64(&depthN, 1)
				for {
					m := atomic.LoadInt64(&depthMax)
					if d <= m || atomic.CompareAndSwapInt64(&depthMax, m, d) {
						break
					}
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < opts.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cli := &Client{Base: base, ID: fmt.Sprintf("loadgen-%02d", ci)}
			rng := rand.New(rand.NewSource(opts.Seed + int64(ci)))
			for ri := 0; ri < opts.Requests; ri++ {
				warm := rng.Float64() < opts.WarmFrac
				spec := opts.Spec
				if warm {
					spec.Seed = warmSeed(rng.Intn(opts.WarmSeeds))
				} else {
					spec.Seed = coldSeed(ci, ri)
				}
				t0 := time.Now()
				v, rej, err := cli.SubmitWait(ctx, spec, opts.Poll)
				lat := time.Since(t0)
				mu.Lock()
				rejected += int64(rej)
				if err != nil {
					dropped++
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				latUS = append(latUS, float64(lat.Microseconds()))
				if v.State != StateDone {
					// A failed/aborted campaign is lost work: record it so
					// RunLoad returns an error even without -bench-check.
					dropped++
					if firstErr == nil {
						firstErr = fmt.Errorf("campaign %s ended %s: %s", v.ID, v.State, v.Error)
					}
				}
				cellsDone += v.Progress.Done
				if warm {
					warmHits += v.Progress.Hits + v.Progress.Shared
					warmDone += v.Progress.Done
				}
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)
	stopSampler()
	sampler.Wait()

	rep.Requests = int64(opts.Clients * opts.Requests)
	rep.Dropped = dropped
	rep.Rejected429 = rejected
	rep.WallMS = wall.Milliseconds()
	if wall > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / wall.Seconds()
		rep.CellsPerSec = float64(cellsDone) / wall.Seconds()
	}
	rep.CellsDone = cellsDone
	mu.Lock()
	rep.WarmRequests = warmDone
	if warmDone > 0 {
		rep.WarmHitRatio = float64(warmHits) / float64(warmDone)
	}
	rep.ReqLatencyUS = quantiles(latUS)
	mu.Unlock()
	if n := atomic.LoadInt64(&depthN); n > 0 {
		rep.QueueDepthMean = float64(atomic.LoadInt64(&depthSum)) / float64(n)
	}
	rep.QueueDepthMax = atomic.LoadInt64(&depthMax)

	if firstErr != nil {
		return &rep, fmt.Errorf("service: load run dropped campaigns (first error: %w)", firstErr)
	}
	return &rep, nil
}

// quantiles digests a latency sample (microseconds).
func quantiles(us []float64) benchfmt.Quantiles {
	if len(us) == 0 {
		return benchfmt.Quantiles{}
	}
	sort.Float64s(us)
	at := func(q float64) float64 {
		i := int(q * float64(len(us)-1))
		return us[i]
	}
	return benchfmt.Quantiles{P50: at(0.50), P95: at(0.95), P99: at(0.99)}
}

func logf(w io.Writer, format string, args ...any) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "cwspload: "+format+"\n", args...)
}
