package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func litmusSpec(key string, seed int64) Spec {
	s := Spec{Kind: KindLitmus, Key: key, Cells: 1, Seed: seed}
	s.Normalize()
	return s
}

func journalPath(dir string) string { return filepath.Join(dir, journalFile) }

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Indented on purpose: campaign engines emit indented JSON, and the
	// journal must round-trip it byte-exact (a record format that compacts
	// embedded JSON breaks the digest and recovery byte-identity).
	result := json.RawMessage("{\n  \"cells\": 1,\n  \"ok\": true\n}")
	if err := j.Accepted("a", "cli-1", litmusSpec("a", 7), 100); err != nil {
		t.Fatal(err)
	}
	if err := j.Running("a", 200); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("a", StateDone, "", result, 300); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("b", "cli-2", litmusSpec("b", 8), 400); err != nil {
		t.Fatal(err)
	}
	if err := j.Running("b", 500); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("c", "cli-3", litmusSpec("c", 9), 600); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	entries := j2.Entries()
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(entries))
	}
	a, b, c := entries[0], entries[1], entries[2]
	if a.ID != "a" || a.State != StateDone || !bytes.Equal(a.Result, result) {
		t.Fatalf("entry a = %+v, want done with result", a)
	}
	if a.SubmittedNS != 100 || a.StartedNS != 200 || a.FinishedNS != 300 {
		t.Fatalf("entry a timeline = %d/%d/%d", a.SubmittedNS, a.StartedNS, a.FinishedNS)
	}
	if a.Digest != resultDigest(result) {
		t.Fatalf("entry a digest = %q", a.Digest)
	}
	if b.ID != "b" || b.State != StateRunning {
		t.Fatalf("entry b = %+v, want running", b)
	}
	if c.ID != "c" || c.State != StateQueued {
		t.Fatalf("entry c = %+v, want queued", c)
	}
	if b.ClientID != "cli-2" || b.Spec.Seed != 8 {
		t.Fatalf("entry b lost identity: %+v", b)
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("a", "", litmusSpec("a", 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("a", StateFailed, "boom", nil, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// A crash mid-append: a full frame header promising more payload than
	// the file holds.
	torn := make([]byte, journalHeader+4)
	binary.LittleEndian.PutUint32(torn[0:], journalMagic)
	binary.LittleEndian.PutUint32(torn[4:], 4096)
	if err := os.WriteFile(journalPath(dir), append(append([]byte{}, good...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := j2.Entries()
	if len(entries) != 1 || entries[0].State != StateFailed || entries[0].Err != "boom" {
		t.Fatalf("after torn tail: %+v", entries)
	}
	if st := j2.Stats(); st.TornBytes != int64(len(torn)) {
		t.Fatalf("torn bytes = %d, want %d", st.TornBytes, len(torn))
	}
	// The tail is truncated, so new appends extend the trusted prefix.
	if err := j2.Accepted("b", "", litmusSpec("b", 2), 3); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if entries := j3.Entries(); len(entries) != 2 || entries[1].ID != "b" {
		t.Fatalf("after truncate+append: %+v", entries)
	}
	if st := j3.Stats(); st.TornBytes != 0 {
		t.Fatalf("reopened journal still torn: %d bytes", st.TornBytes)
	}
}

func TestJournalBitFlipEndsTrustedPrefix(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("a", "", litmusSpec("a", 1), 1); err != nil {
		t.Fatal(err)
	}
	end1 := j.Stats().SizeBytes
	if err := j.Accepted("b", "", litmusSpec("b", 2), 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("c", "", litmusSpec("c", 3), 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit inside the second record: it and everything
	// after it — even the intact third record — leave the trusted prefix
	// (the oldest-bad-record-onward discipline).
	b[end1+journalHeader+2] ^= 0x40
	if err := os.WriteFile(journalPath(dir), b, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	entries := j2.Entries()
	if len(entries) != 1 || entries[0].ID != "a" {
		t.Fatalf("after bit flip: %+v, want only campaign a", entries)
	}
	if st := j2.Stats(); st.TornBytes != int64(len(b))-end1 {
		t.Fatalf("torn bytes = %d, want %d", st.TornBytes, int64(len(b))-end1)
	}
}

func TestJournalDuplicateTerminalIgnored(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	result := json.RawMessage(`{"n":1}`)
	if err := j.Accepted("a", "", litmusSpec("a", 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("a", StateDone, "", result, 2); err != nil {
		t.Fatal(err)
	}
	// A contradicting second terminal record (a crashed daemon replaying a
	// partially folded log could produce one): first terminal wins.
	if err := j.Terminal("a", StateFailed, "late duplicate", nil, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	entries := j2.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %+v", entries)
	}
	if e := entries[0]; e.State != StateDone || !bytes.Equal(e.Result, result) || e.FinishedNS != 2 {
		t.Fatalf("duplicate terminal overwrote the first: %+v", e)
	}
}

func TestJournalEmptyAndAbsent(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir) // no file at all
	if err != nil {
		t.Fatal(err)
	}
	if entries := j.Entries(); len(entries) != 0 {
		t.Fatalf("absent log produced entries: %+v", entries)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath(dir), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(dir) // empty file
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if entries := j2.Entries(); len(entries) != 0 {
		t.Fatalf("empty log produced entries: %+v", entries)
	}
	if st := j2.Stats(); st.TornBytes != 0 || st.SizeBytes != 0 {
		t.Fatalf("empty log stats: %+v", st)
	}
}

func TestJournalDigestMismatchDowngradesToRerun(t *testing.T) {
	dir := t.TempDir()
	spec := litmusSpec("a", 1)
	acc, err := encodeJournalRecord(journalRecord{Kind: "accepted", ID: "a", TimeNS: 1, Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	// A done record whose payload does not match its digest: the frame
	// seal is valid (this is exactly what compacting a log whose result
	// bytes rotted in memory would write), so only the digest can catch it.
	done, err := encodeJournalRecord(journalRecord{
		Kind: StateDone, ID: "a", TimeNS: 2,
		Result: []byte(`{"corrupt":true}`),
		Digest: resultDigest([]byte(`{"original":true}`)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath(dir), append(acc, done...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	entries := j.Entries()
	if len(entries) != 1 {
		t.Fatalf("entries = %+v", entries)
	}
	if e := entries[0]; Terminal(e.State) || e.Result != nil {
		t.Fatalf("digest-mismatched done record recovered terminally: %+v", e)
	}
}

func TestJournalCompactIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	result := json.RawMessage(`{"n":42}`)
	if err := j.Accepted("a", "cli", litmusSpec("a", 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Running("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("a", StateDone, "", result, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("b", "cli", litmusSpec("b", 2), 4); err != nil {
		t.Fatal(err)
	}
	if err := j.Running("b", 5); err != nil {
		t.Fatal(err)
	}
	raw := j.Stats().SizeBytes

	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	once, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(once)) >= raw {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", raw, len(once))
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	twice, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(once, twice) {
		t.Fatalf("compaction is not idempotent: %d vs %d bytes", len(once), len(twice))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// The folded log replays to the same state.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	entries := j2.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries after compact = %+v", entries)
	}
	a, b := entries[0], entries[1]
	if a.ID != "a" || a.State != StateDone || !bytes.Equal(a.Result, result) ||
		a.SubmittedNS != 1 || a.StartedNS != 2 || a.FinishedNS != 3 {
		t.Fatalf("compacted entry a = %+v", a)
	}
	// Non-terminal campaigns fold to bare admissions: queued and running
	// recover identically.
	if b.ID != "b" || b.State != StateQueued || b.SubmittedNS != 4 {
		t.Fatalf("compacted entry b = %+v", b)
	}
}

func TestJournalAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("a", "", litmusSpec("a", 1), 1); err != ErrJournalClosed {
		t.Fatalf("append after close = %v, want ErrJournalClosed", err)
	}
	if err := j.Compact(); err != ErrJournalClosed {
		t.Fatalf("compact after close = %v, want ErrJournalClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func FuzzJournalDecode(f *testing.F) {
	spec := litmusSpec("a", 1)
	acc, _ := encodeJournalRecord(journalRecord{Kind: "accepted", ID: "a", TimeNS: 1, Spec: &spec})
	res := []byte(`{"n":1}`)
	done, _ := encodeJournalRecord(journalRecord{
		Kind: StateDone, ID: "a", TimeNS: 2, Result: res, Digest: resultDigest(res),
	})
	f.Add([]byte{})
	f.Add(acc)
	f.Add(append(append([]byte{}, acc...), done...))
	f.Add(append(append([]byte{}, acc...), done[:len(done)-3]...)) // torn tail
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		recs, valid := decodeJournal(b)
		if valid < 0 || valid > len(b) {
			t.Fatalf("valid prefix %d outside [0,%d]", valid, len(b))
		}
		// The trusted prefix must be exactly re-decodable: same records,
		// nothing left over (truncation at open is safe).
		recs2, valid2 := decodeJournal(b[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("prefix re-decode: %d records/%d bytes, want %d/%d",
				len(recs2), valid2, len(recs), valid)
		}
		// Folding any decoded sequence must not panic and must keep
		// first-seen order consistent with the map.
		entries, order := foldJournal(recs)
		if len(entries) != len(order) {
			t.Fatalf("fold: %d entries, %d order", len(entries), len(order))
		}
		for _, id := range order {
			if entries[id] == nil {
				t.Fatalf("fold: ordered id %q missing", id)
			}
		}
	})
}
