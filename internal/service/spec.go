// Package service is the fleet-scale experiment daemon (cwspd): a
// long-running HTTP/JSON service that accepts sweep, torture, and litmus
// campaign specs, runs them on the existing internal/runner pool behind a
// bounded admission queue with backpressure, shares one content-addressed
// result cache across every campaign and client, and streams progress over
// the internal/telemetry/live bus. The load generator (cwspload, built on
// Loadgen in this package) hammers a daemon with concurrent clients over
// mixed cold/warm traffic and emits a benchfmt trajectory record.
package service

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cwsp/internal/bench"
	"cwsp/internal/litmus"
	"cwsp/internal/workloads"
)

// Campaign kinds.
const (
	KindSweep   = "sweep"
	KindTorture = "torture"
	KindLitmus  = "litmus"
)

// Spec is one campaign request: the complete, deterministic description of
// the work, normalized at admission so two specs that mean the same sweep
// hash and cache identically.
type Spec struct {
	// Kind selects the campaign engine: "sweep" (bench experiments),
	// "torture" (fault-injection recovery campaign), or "litmus"
	// (persistency-model litmus campaign).
	Kind string `json:"kind"`

	// Key, when set, is a client-supplied idempotency key and becomes the
	// campaign ID: resubmitting the same spec under the same key returns
	// the existing — possibly journal-recovered — campaign instead of
	// duplicating the work, which is how a client survives a daemon
	// restart mid-wait without double-running anything. The same key with
	// a different spec is a conflict (ErrKeyConflict, HTTP 409). Empty
	// keys get daemon-generated IDs and no dedup.
	Key string `json:"key,omitempty"`

	// Sweep: experiment IDs (see cwspbench -list) at a workload scale.
	Experiments []string `json:"experiments,omitempty"`
	Scale       string   `json:"scale,omitempty"` // smoke (default), quick, full
	PerApp      bool     `json:"per_app,omitempty"`

	// Torture: workloads, cells per workload, crash depth, fault points.
	Workloads []string `json:"workloads,omitempty"`
	Depth     int      `json:"depth,omitempty"`
	Points    int      `json:"points,omitempty"`

	// Litmus: scheme and kernel grid.
	Schemes []string `json:"schemes,omitempty"`
	Kernels []string `json:"kernels,omitempty"`

	// Shared: master seed (torture/litmus), cell count (cells per torture
	// target, litmus shapes), negative-control switch.
	Seed     int64 `json:"seed,omitempty"`
	Cells    int   `json:"cells,omitempty"`
	Unsealed bool  `json:"unsealed,omitempty"`
}

// Normalize fills defaults and canonicalizes list order in place.
func (s *Spec) Normalize() {
	s.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	s.Key = strings.TrimSpace(s.Key)
	switch s.Scale {
	case "smoke", "quick", "full":
	default:
		s.Scale = "smoke"
	}
	switch s.Kind {
	case KindSweep:
		if len(s.Experiments) == 0 {
			s.Experiments = []string{"fig06"}
		}
	case KindTorture:
		if len(s.Workloads) == 0 {
			s.Workloads = []string{"tatp"}
		}
		if s.Cells < 1 {
			s.Cells = 1
		}
		if s.Depth < 1 {
			s.Depth = 2
		}
		if s.Points < 1 {
			s.Points = 3
		}
	case KindLitmus:
		if s.Cells < 1 {
			s.Cells = 1
		}
		if len(s.Schemes) == 0 {
			s.Schemes = []string{"base", "cwsp"}
		}
		if len(s.Kernels) == 0 {
			s.Kernels = []string{"fast"}
		}
		sort.Strings(s.Schemes)
		sort.Strings(s.Kernels)
	}
}

// Validate rejects specs the daemon cannot run, after Normalize.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindSweep:
		for _, id := range s.Experiments {
			if _, err := bench.ByID(id); err != nil {
				return fmt.Errorf("service: %w", err)
			}
		}
	case KindTorture:
		for _, w := range s.Workloads {
			if _, err := workloads.ByName(w); err != nil {
				return fmt.Errorf("service: %w", err)
			}
		}
	case KindLitmus:
		known := map[string]bool{}
		for _, sch := range litmus.AllSchemes {
			known[sch] = true
		}
		for _, sch := range s.Schemes {
			if !known[sch] {
				return fmt.Errorf("service: unknown litmus scheme %q", sch)
			}
		}
		for _, k := range s.Kernels {
			if k != "fast" && k != "ref" {
				return fmt.Errorf("service: unknown litmus kernel %q", k)
			}
		}
	default:
		return fmt.Errorf("service: unknown campaign kind %q (want sweep, torture, or litmus)", s.Kind)
	}
	if s.Cells > 10_000 {
		return fmt.Errorf("service: %d cells exceeds the per-campaign admission cap", s.Cells)
	}
	if err := validateKey(s.Key); err != nil {
		return err
	}
	return nil
}

// validateKey bounds client-supplied idempotency keys: they become
// campaign IDs and URL path segments, so the charset is conservative.
func validateKey(key string) error {
	if key == "" {
		return nil
	}
	if len(key) > 64 {
		return fmt.Errorf("service: idempotency key longer than 64 bytes")
	}
	for _, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("service: idempotency key %q: only [a-zA-Z0-9._-] allowed", key)
		}
	}
	return nil
}

// equalSpec reports whether two normalized specs describe the same work
// (JSON form compared — Normalize canonicalizes list order, so equal
// work marshals equal).
func equalSpec(a, b Spec) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && string(ab) == string(bb)
}

// ScaleOf maps the spec's scale name to a workload scale.
func (s *Spec) ScaleOf() workloads.Scale {
	switch s.Scale {
	case "full":
		return workloads.Full
	case "quick":
		return workloads.Quick
	default:
		return workloads.Smoke
	}
}
