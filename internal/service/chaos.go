package service

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// ChaosOptions configures a seeded crash-recovery campaign against a real
// cwspd subprocess: the harness submits keyed campaigns, SIGKILLs the
// daemon at seeded points in the queue/run/flush phases, restarts it over
// the same journal and cache, and asserts the durability contract.
type ChaosOptions struct {
	// Bin is the cwspd binary to torture (required).
	Bin string
	// Dir holds the daemon's cache and journal across kills (default: a
	// temp dir removed afterwards).
	Dir string

	// Campaigns is the base keyed workload submitted up front (default 6);
	// every kill adds one more, so the daemon never runs dry mid-campaign.
	Campaigns int
	// Kills is how many seeded SIGKILL points to inject (default 20),
	// cycling the queue → run → flush phases.
	Kills int
	// Seed drives the kill-point jitter and the campaign workloads.
	Seed int64

	// Daemon shape (defaults: queue 16, 1 worker, 1 job — one worker keeps
	// the admission queue observable mid-campaign).
	Queue, Workers, Jobs int

	// Poll is the campaign/stats poll interval (default 10ms).
	Poll time.Duration
	// PhaseTimeout bounds how long the harness waits for a phase condition
	// before killing anyway (default 10s).
	PhaseTimeout time.Duration

	// Log receives harness progress lines.
	Log io.Writer
}

// ChaosReport is the outcome of one chaos campaign.
type ChaosReport struct {
	Kills  int            `json:"kills"`
	Phases map[string]int `json:"phases"`

	// Campaigns is every campaign the daemon acknowledged; Lost lists
	// acked campaigns a restarted daemon no longer knew (the contract is
	// that this stays empty).
	Campaigns int      `json:"campaigns"`
	Lost      []string `json:"lost,omitempty"`

	// Recovered / Requeued / IdempotentHits are the final daemon counters
	// after the last (graceful) restart and idempotent replay.
	Recovered      int64 `json:"recovered"`
	Requeued       int64 `json:"requeued"`
	IdempotentHits int64 `json:"idempotent_hits"`

	// ByteIdentical reports that every campaign's final result matched the
	// uninterrupted reference run byte for byte.
	ByteIdentical bool  `json:"byte_identical"`
	WallMS        int64 `json:"wall_ms"`
}

func (o *ChaosOptions) defaults() {
	if o.Campaigns <= 0 {
		o.Campaigns = 6
	}
	if o.Kills <= 0 {
		o.Kills = 20
	}
	if o.Queue <= 0 {
		o.Queue = 16
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	if o.Poll <= 0 {
		o.Poll = 10 * time.Millisecond
	}
	if o.PhaseTimeout <= 0 {
		o.PhaseTimeout = 10 * time.Second
	}
}

// chaosSpec is the seeded unit of chaos work: a litmus campaign — real
// simulation work, deterministic by seed, big enough that a campaign is
// observable mid-run and mid-queue, cheap enough that twenty kill/restart
// cycles finish in CI time.
func chaosSpec(key string, seed int64) Spec {
	return Spec{
		Kind:    KindLitmus,
		Key:     key,
		Schemes: []string{"base", "cwsp"},
		Kernels: []string{"fast"},
		Cells:   40,
		Seed:    seed,
	}
}

// chaosDaemon manages one cwspd subprocess pinned to a fixed port so
// restarts land where the clients are already pointed.
type chaosDaemon struct {
	bin  string
	addr string
	args []string
	log  io.Writer

	cmd *exec.Cmd
}

func (d *chaosDaemon) base() string { return "http://" + d.addr }

// start execs the daemon and waits for its listening line.
func (d *chaosDaemon) start() error {
	cmd := exec.Command(d.bin, append([]string{"-addr", d.addr}, d.args...)...)
	if d.log != nil {
		cmd.Stderr = d.log
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: spawn %s: %w", d.bin, err)
	}
	lines := bufio.NewScanner(out)
	ready := false
	for lines.Scan() {
		if strings.Contains(lines.Text(), "listening on ") {
			ready = true
			break
		}
	}
	if !ready {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("chaos: %s exited before listening on %s", d.bin, d.addr)
	}
	go func() {
		for lines.Scan() {
		}
	}()
	d.cmd = cmd
	return nil
}

// kill SIGKILLs the daemon — no drain, no fsync beyond what already
// happened — and reaps it.
func (d *chaosDaemon) kill() {
	if d.cmd == nil {
		return
	}
	d.cmd.Process.Kill()
	d.cmd.Wait()
	d.cmd = nil
}

// stop shuts the daemon down gracefully (SIGTERM, bounded drain).
func (d *chaosDaemon) stop() error {
	if d.cmd == nil {
		return nil
	}
	cmd := d.cmd
	d.cmd = nil
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("chaos: SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		<-done
		return fmt.Errorf("chaos: daemon did not drain within 60s of SIGTERM")
	}
}

// freePort reserves an ephemeral loopback port and releases it for the
// daemon to bind; the kernel's SO_REUSEADDR (set by Go listeners) lets
// every restart rebind it.
func freePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// RunChaos runs the seeded crash-recovery campaign and returns the
// report; err is non-nil when the durability contract broke (a lost
// acked campaign, a result that changed bytes, a restart that refused to
// come up).
func RunChaos(ctx context.Context, opts ChaosOptions) (*ChaosReport, error) {
	opts.defaults()
	if opts.Bin == "" {
		return nil, fmt.Errorf("chaos: need the cwspd binary path (Bin)")
	}
	start := time.Now()

	dir := opts.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "cwspd-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	addr, err := freePort()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	d := &chaosDaemon{
		bin: opts.Bin, addr: addr, log: opts.Log,
		args: []string{
			"-cache-dir", filepath.Join(dir, "cache"),
			"-journal-dir", filepath.Join(dir, "journal"),
			"-lock-wait", "10s",
			"-queue", fmt.Sprint(opts.Queue),
			"-workers", fmt.Sprint(opts.Workers),
			"-jobs", fmt.Sprint(opts.Jobs),
			"-q",
		},
	}
	if err := d.start(); err != nil {
		return nil, err
	}
	defer d.kill()

	// The clients' retry budgets are the restart-survival mechanism under
	// test: big enough to outlast any kill→restart window in this harness.
	cli := &Client{Base: d.base(), ID: "chaos", Timeout: 10 * time.Second,
		Retries: 12, RetryBase: 25 * time.Millisecond, RetryCap: time.Second}

	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "chaos: "+format+"\n", args...)
		}
	}

	rep := &ChaosReport{Kills: opts.Kills, Phases: map[string]int{}}
	specs := map[string]Spec{} // every acked campaign, by key
	var order []string
	submit := func(key string, seed int64) error {
		spec := chaosSpec(key, seed)
		v, err := cli.Submit(ctx, spec)
		if err != nil {
			var busy *BusyError
			if errors.As(err, &busy) {
				return nil // queue full: not acked, not tracked — and the queue phase is trivially ready
			}
			return fmt.Errorf("chaos: submit %s: %w", key, err)
		}
		if _, ok := specs[v.ID]; !ok {
			specs[v.ID] = spec
			order = append(order, v.ID)
		}
		return nil
	}

	for i := 0; i < opts.Campaigns; i++ {
		if err := submit(fmt.Sprintf("chaos-c%02d", i), opts.Seed+int64(i)); err != nil {
			return rep, err
		}
	}
	logf("%d base campaigns submitted at %s", len(order), d.base())

	// outstanding counts acked campaigns not yet terminal.
	outstanding := func() (int, error) {
		n := 0
		for _, id := range order {
			v, err := cli.Get(ctx, id)
			if err != nil {
				return 0, err
			}
			if !Terminal(v.State) {
				n++
			}
		}
		return n, nil
	}

	phases := [...]string{"queue", "run", "flush"}
	for k := 0; k < opts.Kills; k++ {
		phase := phases[k%len(phases)]
		// Keep cold work in flight so the phase condition can materialize —
		// a second campaign for the queue phase, so depth > 0 is observable
		// past whatever the workers grabbed.
		if err := submit(fmt.Sprintf("chaos-x%02d", k), opts.Seed+1000+int64(k)); err != nil {
			return rep, err
		}
		if phase == "queue" {
			// One cold campaign per worker plus one: even if every worker
			// grabs one immediately, the last sits queued.
			for b := 0; b <= opts.Workers; b++ {
				key := fmt.Sprintf("chaos-q%02d-%d", k, b)
				if err := submit(key, opts.Seed+2000+int64(k)*8+int64(b)); err != nil {
					return rep, err
				}
			}
		}

		// Wait (bounded) for the seeded kill point, then add seeded jitter
		// so consecutive kills in the same phase land at different offsets
		// inside it.
		st0, err := cli.Stats(ctx)
		if err != nil {
			return rep, fmt.Errorf("chaos: stats before kill %d: %w", k, err)
		}
		deadline := time.Now().Add(opts.PhaseTimeout)
		hit := phase + "-timeout"
		for time.Now().Before(deadline) {
			st, err := cli.Stats(ctx)
			if err != nil {
				return rep, fmt.Errorf("chaos: stats during kill %d: %w", k, err)
			}
			ready := false
			switch phase {
			case "queue":
				ready = st.QueueDepth > 0
			case "run":
				ready = st.Running > 0
			case "flush":
				// A campaign just reached its fsynced terminal record.
				ready = st.Completed+st.Failed > st0.Completed+st0.Failed
			}
			if ready {
				hit = phase
				break
			}
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(opts.Poll):
			}
		}
		time.Sleep(time.Duration(rng.Intn(5_000)) * time.Microsecond)
		rep.Phases[hit]++

		d.kill()
		if err := d.start(); err != nil {
			return rep, fmt.Errorf("chaos: restart after kill %d (%s): %w", k, hit, err)
		}

		// The contract: nothing acked is ever lost.
		for _, id := range order {
			if _, err := cli.Get(ctx, id); err != nil {
				if IsNotFound(err) {
					rep.Lost = append(rep.Lost, id)
					continue
				}
				return rep, fmt.Errorf("chaos: kill %d: get %s after restart: %w", k, id, err)
			}
		}
		if n := len(rep.Lost); n > 0 {
			rep.Campaigns = len(order)
			return rep, fmt.Errorf("chaos: kill %d (%s): %d acked campaigns lost: %v", k, hit, n, rep.Lost)
		}
		logf("kill %d/%d (%s): restarted, %d campaigns intact", k+1, opts.Kills, hit, len(order))
	}

	// Drain: every acked campaign must reach done.
	for {
		n, err := outstanding()
		if err != nil {
			return rep, fmt.Errorf("chaos: drain: %w", err)
		}
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return rep, ctx.Err()
		case <-time.After(opts.Poll):
		}
	}
	rep.Campaigns = len(order)

	// Final graceful restart: terminal results must come back from the
	// journal, and an idempotent resubmit must be answered terminally —
	// already done, no re-execution — straight from the recovered record.
	if err := d.stop(); err != nil {
		return rep, fmt.Errorf("chaos: graceful stop: %w", err)
	}
	if err := d.start(); err != nil {
		return rep, fmt.Errorf("chaos: final restart: %w", err)
	}
	results := map[string][]byte{}
	for _, id := range order {
		v, err := cli.Submit(ctx, specs[id])
		if err != nil {
			return rep, fmt.Errorf("chaos: idempotent resubmit %s: %w", id, err)
		}
		if !Terminal(v.State) {
			return rep, fmt.Errorf("chaos: resubmit %s re-admitted a journaled terminal campaign (state %s)", id, v.State)
		}
		if v.State != StateDone {
			return rep, fmt.Errorf("chaos: campaign %s ended %s: %s", id, v.State, v.Error)
		}
		raw, err := cli.Result(ctx, id)
		if err != nil {
			return rep, fmt.Errorf("chaos: result %s: %w", id, err)
		}
		results[id] = raw
	}
	st, err := cli.Stats(ctx)
	if err != nil {
		return rep, err
	}
	rep.Recovered, rep.Requeued, rep.IdempotentHits = st.Recovered, st.Requeued, st.IdempotentHits
	if rep.IdempotentHits < int64(len(order)) {
		return rep, fmt.Errorf("chaos: %d idempotent hits for %d resubmits — some keys re-ran", rep.IdempotentHits, len(order))
	}
	if err := d.stop(); err != nil {
		return rep, fmt.Errorf("chaos: final stop: %w", err)
	}
	logf("drained %d campaigns across %d kills; comparing against uninterrupted run", len(order), opts.Kills)

	// Reference: the same keyed specs against a fresh daemon that is never
	// killed. Byte-identity here is the paper's whole-system claim at the
	// service layer: crashing anywhere must not change what the experiment
	// computes.
	refDir, err := os.MkdirTemp("", "cwspd-chaos-ref-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(refDir)
	refAddr, err := freePort()
	if err != nil {
		return rep, err
	}
	ref := &chaosDaemon{
		bin: opts.Bin, addr: refAddr, log: opts.Log,
		args: []string{
			"-cache-dir", filepath.Join(refDir, "cache"),
			"-queue", fmt.Sprint(opts.Queue),
			"-workers", fmt.Sprint(opts.Workers),
			"-jobs", fmt.Sprint(opts.Jobs),
			"-q",
		},
	}
	if err := ref.start(); err != nil {
		return rep, err
	}
	defer ref.kill()
	refCli := &Client{Base: ref.base(), ID: "chaos-ref", Timeout: 10 * time.Second}
	for _, id := range order {
		v, _, err := refCli.SubmitWait(ctx, specs[id], opts.Poll)
		if err != nil {
			return rep, fmt.Errorf("chaos: reference %s: %w", id, err)
		}
		if v.State != StateDone {
			return rep, fmt.Errorf("chaos: reference %s ended %s: %s", id, v.State, v.Error)
		}
		raw, err := refCli.Result(ctx, v.ID)
		if err != nil {
			return rep, err
		}
		if !bytes.Equal(results[id], raw) {
			return rep, fmt.Errorf("chaos: campaign %s: crashed run and uninterrupted run disagree (%d vs %d bytes)",
				id, len(results[id]), len(raw))
		}
	}
	if err := ref.stop(); err != nil {
		return rep, err
	}
	rep.ByteIdentical = true
	rep.WallMS = time.Since(start).Milliseconds()
	return rep, nil
}
