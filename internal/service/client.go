package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cwsp/internal/runner"
)

// BusyError is the client-side face of a 429: the daemon's admission
// queue was full, retry after the hinted backoff.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("service: daemon busy (retry after %v)", e.RetryAfter)
}

// APIError is a non-2xx daemon response (other than 429, which is
// *BusyError). Status classifies it: 5xx is transient — the daemon is
// draining, restarting, or mid-recovery — and the client's retry budget
// absorbs it; 4xx is the caller's problem and surfaces immediately.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: %s (HTTP %d)", e.Msg, e.Status)
}

// IsNotFound reports whether err is a daemon 404 (unknown campaign — the
// daemon restarted without a journal, or the ID never existed).
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// transient reports whether an error is worth retrying: transport
// failures (connection refused while the daemon restarts, resets from a
// SIGKILLed daemon, timeouts) and 5xx responses. Context cancellation,
// 4xx, and backpressure (handled by its own loop) are not.
func transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var busy *BusyError
	if errors.As(err, &busy) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	// Anything else from the transport layer (dial/read/reset errors).
	return true
}

// Client talks to a cwspd daemon. The zero value plus Base works; the
// retry knobs make it robust to a daemon restarting mid-conversation:
// every request gets a per-request timeout, transient failures are
// retried with jittered exponential backoff under a bounded budget, and
// everything honors context cancellation.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string
	// ID identifies this client on every request (X-CWSP-Client).
	ID string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client

	// Timeout bounds each individual HTTP request (default 30s; < 0
	// disables the per-request deadline).
	Timeout time.Duration
	// Retries is the transient-failure budget per logical call: a request
	// is attempted at most Retries+1 times (default 8; < 0 disables
	// retry). 4xx responses and context cancellation never retry.
	Retries int
	// RetryBase and RetryCap bound the jittered exponential backoff
	// between attempts (defaults 50ms and 2s).
	RetryBase, RetryCap time.Duration

	jmu sync.Mutex
	jit *rand.Rand // lazily seeded jitter source
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	switch {
	case c.Timeout < 0:
		return 0
	case c.Timeout == 0:
		return 30 * time.Second
	}
	return c.Timeout
}

func (c *Client) retries() int {
	switch {
	case c.Retries < 0:
		return 0
	case c.Retries == 0:
		return 8
	}
	return c.Retries
}

// backoff returns the jittered exponential delay before retry attempt n
// (0-based): base·2ⁿ capped, scaled by a uniform [0.5, 1.0) factor so a
// fleet of clients waiting out the same daemon restart does not stampede
// the new listener in lockstep.
func (c *Client) backoff(n int) time.Duration {
	base, cap := c.RetryBase, c.RetryCap
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base << uint(n)
	if d <= 0 || d > cap {
		d = cap
	}
	c.jmu.Lock()
	if c.jit == nil {
		c.jit = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	f := 0.5 + 0.5*c.jit.Float64()
	c.jmu.Unlock()
	return time.Duration(float64(d) * f)
}

// do issues one request (no retry) with the per-request timeout applied.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	if t := c.timeout(); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if c.ID != "" {
		req.Header.Set(ClientHeader, c.ID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := 2 * time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return &BusyError{RetryAfter: retry}
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return &APIError{Status: resp.StatusCode, Msg: fmt.Sprintf("%s %s: %s", method, path, e.Error)}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// doRetry is do with the transient-failure budget: up to Retries+1
// attempts separated by jittered exponential backoff, every sleep
// interruptible by ctx. Non-transient errors (4xx, 429 backpressure,
// cancellation) return immediately.
func (c *Client) doRetry(ctx context.Context, method, path string, body any, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, method, path, body, out)
		if !transient(err) || attempt >= c.retries() {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff(attempt)):
		}
	}
}

// Submit admits one campaign (a full queue returns *BusyError). Transient
// failures — including the window where the daemon is restarting — are
// retried under the client's budget; with an idempotency key in the spec,
// a retry that lands after the daemon already journaled the admission
// maps onto the same campaign instead of duplicating it.
func (c *Client) Submit(ctx context.Context, spec Spec) (View, error) {
	var v View
	err := c.doRetry(ctx, http.MethodPost, "/api/v1/campaigns", spec, &v)
	return v, err
}

// Get fetches a campaign view.
func (c *Client) Get(ctx context.Context, id string) (View, error) {
	var v View
	err := c.doRetry(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &v)
	return v, err
}

// Progress fetches a campaign's live pace.
func (c *Client) Progress(ctx context.Context, id string) (runner.ProgressSnapshot, error) {
	var p runner.ProgressSnapshot
	err := c.doRetry(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/progress", nil, &p)
	return p, err
}

// Result fetches a done campaign's payload.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.doRetry(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/result", nil, &raw)
	return raw, err
}

// Stats fetches the daemon digest.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.doRetry(ctx, http.MethodGet, "/api/v1/stats", nil, &st)
	return st, err
}

// SubmitWait submits a campaign and polls until it reaches a terminal
// state, surviving everything short of the caller's context expiring:
// admission backpressure is absorbed by honoring the daemon's Retry-After
// hint; transient failures ride the per-request retry budget; and a
// daemon restart mid-wait is healed by re-polling the recovered campaign
// — when the spec carries an idempotency key and the restarted daemon
// does not know the campaign (journal disabled or wiped), SubmitWait
// resubmits the spec under the same key rather than losing the work.
func (c *Client) SubmitWait(ctx context.Context, spec Spec, poll time.Duration) (View, int, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	var rejected int
	var v View
submit:
	for {
		var err error
		v, err = c.Submit(ctx, spec)
		if err == nil {
			break
		}
		var busy *BusyError
		if !errors.As(err, &busy) {
			return View{}, rejected, err
		}
		rejected++
		// The hint is sized for the whole queue draining; a fraction of it
		// is enough to reclaim the freed slot without a thundering herd.
		backoff := busy.RetryAfter / 8
		if backoff < 20*time.Millisecond {
			backoff = 20 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return View{}, rejected, ctx.Err()
		case <-time.After(backoff):
		}
	}
	for !Terminal(v.State) {
		select {
		case <-ctx.Done():
			return v, rejected, ctx.Err()
		case <-time.After(poll):
		}
		var err error
		v, err = c.Get(ctx, v.ID)
		if err != nil {
			if IsNotFound(err) && spec.Key != "" {
				// The daemon lost the campaign across a restart: the
				// idempotency key makes resubmission safe.
				goto submit
			}
			return v, rejected, err
		}
	}
	return v, rejected, nil
}
