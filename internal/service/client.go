package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cwsp/internal/runner"
)

// BusyError is the client-side face of a 429: the daemon's admission
// queue was full, retry after the hinted backoff.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("service: daemon busy (retry after %v)", e.RetryAfter)
}

// Client talks to a cwspd daemon.
type Client struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8080".
	Base string
	// ID identifies this client on every request (X-CWSP-Client).
	ID string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if c.ID != "" {
		req.Header.Set(ClientHeader, c.ID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		retry := 2 * time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return &BusyError{RetryAfter: retry}
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("service: %s %s: %s", method, path, e.Error)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit admits one campaign (a full queue returns *BusyError).
func (c *Client) Submit(ctx context.Context, spec Spec) (View, error) {
	var v View
	err := c.do(ctx, http.MethodPost, "/api/v1/campaigns", spec, &v)
	return v, err
}

// Get fetches a campaign view.
func (c *Client) Get(ctx context.Context, id string) (View, error) {
	var v View
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &v)
	return v, err
}

// Progress fetches a campaign's live pace.
func (c *Client) Progress(ctx context.Context, id string) (runner.ProgressSnapshot, error) {
	var p runner.ProgressSnapshot
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/progress", nil, &p)
	return p, err
}

// Result fetches a done campaign's payload.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id+"/result", nil, &raw)
	return raw, err
}

// Stats fetches the daemon digest.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &st)
	return st, err
}

// SubmitWait submits a campaign — absorbing backpressure by retrying
// after the daemon's hinted backoff, so a patient client never drops work
// — and polls until it reaches a terminal state.
func (c *Client) SubmitWait(ctx context.Context, spec Spec, poll time.Duration) (View, int, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	var rejected int
	var v View
	for {
		var err error
		v, err = c.Submit(ctx, spec)
		if err == nil {
			break
		}
		var busy *BusyError
		if !errors.As(err, &busy) {
			return View{}, rejected, err
		}
		rejected++
		// The hint is sized for the whole queue draining; a fraction of it
		// is enough to reclaim the freed slot without a thundering herd.
		backoff := busy.RetryAfter / 8
		if backoff < 20*time.Millisecond {
			backoff = 20 * time.Millisecond
		}
		select {
		case <-ctx.Done():
			return View{}, rejected, ctx.Err()
		case <-time.After(backoff):
		}
	}
	for !Terminal(v.State) {
		select {
		case <-ctx.Done():
			return v, rejected, ctx.Err()
		case <-time.After(poll):
		}
		var err error
		v, err = c.Get(ctx, v.ID)
		if err != nil {
			return v, rejected, err
		}
	}
	return v, rejected, nil
}
