package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cwsp/internal/runner"
)

// The campaign journal is the daemon's own whole-system persistence: a
// write-ahead log of campaign lifecycle records under -journal-dir. Every
// admission is fsynced before the 202 leaves the process, so an accepted
// campaign survives SIGKILL, OOM, and power loss; on the next boot the
// journal is replayed, terminal campaigns come back with their results, and
// non-terminal ones are re-admitted against the warm content-addressed
// store.
//
// Records are length-prefixed and sealed (the same splitmix64 mixing the
// simulator uses for undo-log records), so a torn tail — a crash mid-append
// — is detected and truncated, never misparsed: replay trusts exactly the
// prefix of records whose frames verify, the oldest-bad-record-onward
// discipline the recovery runtime itself applies to the NVM undo journal.
const (
	// journalMagic frames every record ("CWSJ" little-endian); a frame that
	// does not start with it ends the trusted prefix.
	journalMagic = uint32(0x4a535743)
	// journalHeader is the frame header: magic u32 | payload len u32 |
	// payload seal u64, little-endian.
	journalHeader = 16
	// journalFile is the single append-only log inside the journal dir.
	journalFile = "journal-v1.wal"
	// maxJournalRecord caps one record's payload so a corrupt length field
	// cannot drive a giant allocation during replay.
	maxJournalRecord = 64 << 20
)

// ErrJournalClosed is returned by journal mutations after Close.
var ErrJournalClosed = errors.New("service: journal is closed")

// journalRecord is one record's JSON payload. Kind is the lifecycle edge:
// "accepted" and "running" are non-terminal; the terminal kinds reuse the
// campaign state names ("done", "failed", "aborted"). Records appended live
// carry only the fields the edge needs (accepted carries the spec, done
// carries the result and its digest); compaction folds each campaign to a
// single record carrying everything.
type journalRecord struct {
	Kind   string `json:"kind"`
	ID     string `json:"id"`
	Client string `json:"client,omitempty"`
	TimeNS int64  `json:"t_ns,omitempty"`

	Spec *Spec `json:"spec,omitempty"` // accepted + folded terminal records

	// Terminal-record fields. Digest seals Result (sha256) so a recovered
	// "done" campaign can prove its payload intact; a digest mismatch
	// downgrades the record to non-terminal and the campaign re-runs
	// against the warm cache instead of serving corrupt bytes. Result is
	// []byte (base64 on the wire), NOT json.RawMessage: Marshal compacts
	// embedded raw JSON, which would silently reformat an indented result
	// across recovery and break both the digest and byte-identity.
	Err    string `json:"err,omitempty"`
	Digest string `json:"digest,omitempty"`
	Result []byte `json:"result,omitempty"`

	// Folded terminal records preserve the full lifecycle timeline.
	SubNS   int64 `json:"sub_ns,omitempty"`
	StartNS int64 `json:"start_ns,omitempty"`
}

// JournalEntry is one campaign's folded journal state after replay.
type JournalEntry struct {
	ID       string
	ClientID string
	Spec     Spec
	// State is a campaign state: StateQueued or StateRunning (the campaign
	// never reached a terminal record — recovery re-admits it), or a
	// terminal state (recovery restores it, result and all).
	State  string
	Err    string
	Digest string
	Result json.RawMessage

	SubmittedNS, StartedNS, FinishedNS int64
}

// JournalStats digests the journal for /api/v1/stats and manifests.
type JournalStats struct {
	Dir string `json:"dir"`
	// Campaigns is the folded campaign count; Terminal of those reached a
	// terminal record.
	Campaigns int `json:"campaigns"`
	Terminal  int `json:"terminal"`
	// Appended counts records appended by this handle since open.
	Appended int64 `json:"appended"`
	// SizeBytes is the current log size.
	SizeBytes int64 `json:"size_bytes"`
	// TornBytes is how much unverifiable tail Open truncated.
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// Compactions counts folding rewrites by this handle.
	Compactions int64 `json:"compactions,omitempty"`
}

// sealJournal checksums a record payload with splitmix64 finalization —
// the same mixing the simulator seals undo-log records with (sim/seal.go),
// applied per byte so bit flips anywhere in the payload break the seal.
func sealJournal(b []byte) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// resultDigest seals a terminal payload for end-to-end integrity (the
// frame seal covers the record bytes on disk; the digest travels with the
// result through compaction and recovery).
func resultDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// encodeJournalRecord frames one record: header (magic, length, seal) +
// JSON payload.
func encodeJournalRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("service: journal encode: %w", err)
	}
	buf := make([]byte, journalHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], journalMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:], sealJournal(payload))
	copy(buf[journalHeader:], payload)
	return buf, nil
}

// decodeJournal parses the longest verifiable prefix of b: records are
// accepted until the first frame that is short (torn append), carries the
// wrong magic, an implausible length, a failing seal, or an unparseable
// payload. It returns the decoded records and the byte length of the
// trusted prefix — everything past it is the torn tail Open truncates.
func decodeJournal(b []byte) ([]journalRecord, int) {
	var recs []journalRecord
	off := 0
	for {
		rest := len(b) - off
		if rest < journalHeader {
			return recs, off
		}
		if binary.LittleEndian.Uint32(b[off:]) != journalMagic {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(b[off+4:]))
		if n <= 0 || n > maxJournalRecord || journalHeader+n > rest {
			return recs, off
		}
		payload := b[off+journalHeader : off+journalHeader+n]
		if sealJournal(payload) != binary.LittleEndian.Uint64(b[off+8:]) {
			return recs, off
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			return recs, off
		}
		recs = append(recs, rec)
		off += journalHeader + n
	}
}

// foldJournal reduces a record sequence to per-campaign entries in
// first-seen order. Folding rules: a record for an unknown campaign only
// creates an entry when it carries the spec (accepted records and folded
// terminal records do); the first terminal record wins — duplicates, and
// terminal records contradicting an earlier terminal state, are ignored;
// a "done" record whose result fails its digest is treated as non-terminal
// so the campaign re-runs instead of serving corrupt bytes.
func foldJournal(recs []journalRecord) (map[string]*JournalEntry, []string) {
	entries := map[string]*JournalEntry{}
	var order []string
	for _, rec := range recs {
		entries, order = foldInto(entries, order, rec)
	}
	return entries, order
}

// foldInto applies one record to the folded state (shared by replay and
// live append, so the two can never drift).
func foldInto(entries map[string]*JournalEntry, order []string, rec journalRecord) (map[string]*JournalEntry, []string) {
	if _, ok := entries[rec.ID]; !ok {
		if rec.Spec == nil {
			return entries, order // dangling edge for a campaign the log never admitted
		}
		entries[rec.ID] = &JournalEntry{ID: rec.ID, ClientID: rec.Client, Spec: *rec.Spec, State: StateQueued}
		order = append(order, rec.ID)
	}
	foldApply(entries, rec)
	return entries, order
}

// Journal is the durable campaign log: an append-only file of framed
// records plus the folded per-campaign state it implies, kept current on
// every append so compaction never needs a snapshot from the service (and
// therefore never inverts the service's lock order). Exactly one live
// handle may own a journal directory — the same flock(2) discipline as the
// result store, so a crashed daemon's successor acquires the directory the
// moment the kernel reaps the corpse.
type Journal struct {
	dir  string
	lock *os.File

	mu          sync.Mutex
	f           *os.File
	size        int64
	closed      bool
	entries     map[string]*JournalEntry
	order       []string
	appended    int64
	tornBytes   int64
	compactions int64
}

// OpenJournal opens (creating if needed) the journal directory, acquires
// its lock, replays the log, and truncates any unverifiable tail so the
// file ends on a record boundary before the first new append.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: empty journal dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: create journal dir: %w", err)
	}
	lock, err := runner.LockDir(dir)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, journalFile)
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		runner.UnlockDir(lock)
		return nil, fmt.Errorf("service: read journal: %w", err)
	}
	recs, valid := decodeJournal(b)
	entries, order := foldJournal(recs)

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		runner.UnlockDir(lock)
		return nil, fmt.Errorf("service: open journal: %w", err)
	}
	j := &Journal{
		dir: dir, lock: lock, f: f,
		size: int64(valid), entries: entries, order: order,
		tornBytes: int64(len(b) - valid),
	}
	if j.tornBytes > 0 {
		// Drop the torn tail now so appends extend the trusted prefix.
		if err := f.Truncate(int64(valid)); err != nil {
			j.closeFiles()
			return nil, fmt.Errorf("service: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		j.closeFiles()
		return nil, fmt.Errorf("service: seek journal: %w", err)
	}
	return j, nil
}

// OpenJournalWait retries OpenJournal while the directory is still locked
// by a dying previous owner, up to wait. The kernel releases a SIGKILLed
// daemon's flock when the process is reaped, so a restart-after-crash
// only needs to outwait the reaping, not reclaim anything.
func OpenJournalWait(dir string, wait time.Duration) (*Journal, error) {
	deadline := time.Now().Add(wait)
	for {
		j, err := OpenJournal(dir)
		if err == nil || !errors.Is(err, runner.ErrLocked) || !time.Now().Before(deadline) {
			return j, err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Entries returns the folded campaigns in first-seen order.
func (j *Journal) Entries() []JournalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEntry, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, *j.entries[id])
	}
	return out
}

// Stats digests the journal.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{
		Dir: j.dir, Campaigns: len(j.entries),
		Appended: j.appended, SizeBytes: j.size,
		TornBytes: j.tornBytes, Compactions: j.compactions,
	}
	for _, e := range j.entries {
		if Terminal(e.State) {
			st.Terminal++
		}
	}
	return st
}

// Accepted journals one admission and fsyncs before returning: once the
// caller acknowledges the campaign, no crash may un-accept it.
func (j *Journal) Accepted(id, clientID string, spec Spec, tNS int64) error {
	return j.append(journalRecord{
		Kind: "accepted", ID: id, Client: clientID, TimeNS: tNS, Spec: &spec,
	}, true)
}

// Running journals a queued→running edge. Not fsynced: losing it merely
// recovers the campaign as queued, and queued and running recover
// identically (re-admit, re-run warm).
func (j *Journal) Running(id string, tNS int64) error {
	return j.append(journalRecord{Kind: "running", ID: id, TimeNS: tNS}, false)
}

// Terminal journals a campaign's terminal state (result sealed by digest
// for StateDone) and fsyncs: a result the daemon reported must survive it.
func (j *Journal) Terminal(id, state, errMsg string, result json.RawMessage, tNS int64) error {
	rec := journalRecord{Kind: state, ID: id, Err: errMsg, TimeNS: tNS}
	if state == StateDone {
		rec.Result = []byte(result)
		rec.Digest = resultDigest(result)
	}
	return j.append(rec, true)
}

func (j *Journal) append(rec journalRecord, sync bool) error {
	buf, err := encodeJournalRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("service: journal append: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("service: journal fsync: %w", err)
		}
	}
	j.size += int64(len(buf))
	j.appended++
	// Keep the folded state current so Compact never needs a service-side
	// snapshot (and therefore never takes the service lock).
	j.entries, j.order = foldInto(j.entries, j.order, rec)
	return nil
}

// foldApply applies one record to an entry map that already contains its
// campaign.
func foldApply(entries map[string]*JournalEntry, rec journalRecord) {
	e := entries[rec.ID]
	switch rec.Kind {
	case "accepted":
		if e.SubmittedNS == 0 {
			e.SubmittedNS = rec.TimeNS
		}
	case "running":
		if !Terminal(e.State) {
			e.State = StateRunning
			e.StartedNS = rec.TimeNS
		}
	case StateDone, StateFailed, StateAborted:
		if Terminal(e.State) {
			return
		}
		if rec.Kind == StateDone {
			if rec.Digest == "" || resultDigest(rec.Result) != rec.Digest {
				return
			}
			e.Result = json.RawMessage(rec.Result)
			e.Digest = rec.Digest
		}
		if rec.SubNS != 0 {
			e.SubmittedNS = rec.SubNS
		}
		if rec.StartNS != 0 {
			e.StartedNS = rec.StartNS
		}
		e.State = rec.Kind
		e.Err = rec.Err
		e.FinishedNS = rec.TimeNS
	}
}

// foldedRecord renders one entry as its compacted record: non-terminal
// campaigns fold to a bare admission (queued and running recover the same
// way); terminal campaigns fold to a single record carrying spec, result,
// digest, and the full timeline. Deterministic given the entry, so
// compaction is idempotent byte-for-byte.
func foldedRecord(e *JournalEntry) journalRecord {
	spec := e.Spec
	if !Terminal(e.State) {
		return journalRecord{
			Kind: "accepted", ID: e.ID, Client: e.ClientID,
			TimeNS: e.SubmittedNS, Spec: &spec,
		}
	}
	return journalRecord{
		Kind: e.State, ID: e.ID, Client: e.ClientID,
		TimeNS: e.FinishedNS, SubNS: e.SubmittedNS, StartNS: e.StartedNS,
		Spec: &spec, Err: e.Err, Digest: e.Digest, Result: []byte(e.Result),
	}
}

// Compact folds the log: one record per campaign, in first-seen order,
// written to a temp file and atomically renamed over the log (the same
// rename discipline as the result store — a crash mid-compaction leaves
// the old log or the new one, never a hybrid). Running it twice with no
// intervening appends produces identical bytes.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	tmp, err := os.CreateTemp(j.dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("service: journal compact: %w", err)
	}
	var size int64
	for _, id := range j.order {
		buf, err := encodeJournalRecord(foldedRecord(j.entries[id]))
		if err == nil {
			_, err = tmp.Write(buf)
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("service: journal compact: %w", err)
		}
		size += int64(len(buf))
	}
	if err := tmp.Sync(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", err)
	}
	path := filepath.Join(j.dir, journalFile)
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: journal compact: %w", err)
	}
	syncDir(j.dir)

	// Swap the append handle onto the new file.
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("service: journal reopen: %w", err)
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return fmt.Errorf("service: journal reopen: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = size
	j.compactions++
	return nil
}

// Close syncs and closes the log and releases the directory lock.
// Closing an already-closed journal is a no-op.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.f.Sync()
	j.closeFiles()
	if err != nil {
		return fmt.Errorf("service: journal close: %w", err)
	}
	return nil
}

// closeFiles releases the file handle and lock (callers hold j.mu or own
// j exclusively during Open failure paths).
func (j *Journal) closeFiles() {
	j.closed = true
	if j.f != nil {
		j.f.Close()
	}
	runner.UnlockDir(j.lock)
}

// syncDir best-effort fsyncs a directory so a just-renamed file's entry is
// durable (rename itself is atomic; the directory entry needs its own
// sync on some filesystems).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
