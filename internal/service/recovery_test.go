package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// seedJournal writes a journal under dir containing the given entries
// (terminal ones with results) and releases it, simulating what a killed
// daemon leaves behind.
func seedJournal(t *testing.T, dir string, seed func(j *Journal)) {
	t.Helper()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	seed(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func waitTerminal(t *testing.T, svc *Service, id string) *Campaign {
	t.Helper()
	c, ok := svc.Get(id)
	if !ok {
		t.Fatalf("campaign %s unknown", id)
	}
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign %s never reached a terminal state", id)
	}
	return c
}

func TestRecoveryRerunsUnfinishedOnce(t *testing.T) {
	dir := t.TempDir()
	jdir := t.TempDir()
	seedJournal(t, jdir, func(j *Journal) {
		// One campaign the dead daemon never started, one it was running:
		// both must recover as re-admissions.
		if err := j.Accepted("job-queued", "cli", litmusSpec("job-queued", 1), 1); err != nil {
			t.Fatal(err)
		}
		if err := j.Accepted("job-running", "cli", litmusSpec("job-running", 2), 2); err != nil {
			t.Fatal(err)
		}
		if err := j.Running("job-running", 3); err != nil {
			t.Fatal(err)
		}
	})

	var runs sync.Map // id -> *int64
	svc, err := New(Options{
		CacheDir: dir, JournalDir: jdir, Workers: 2,
		testRun: func(c *Campaign) (json.RawMessage, error) {
			n, _ := runs.LoadOrStore(c.ID, new(int64))
			atomic.AddInt64(n.(*int64), 1)
			return json.RawMessage(fmt.Sprintf(`{"id":%q}`, c.ID)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	for _, id := range []string{"job-queued", "job-running"} {
		c := waitTerminal(t, svc, id)
		if c.State() != StateDone {
			_, msg := c.Result()
			t.Fatalf("recovered %s ended %s: %s", id, c.State(), msg)
		}
		if v := c.View(); !v.Recovered {
			t.Fatalf("campaign %s not marked recovered", id)
		}
		n, ok := runs.Load(id)
		if !ok || atomic.LoadInt64(n.(*int64)) != 1 {
			t.Fatalf("campaign %s ran %v times, want exactly 1", id, n)
		}
	}
	st := svc.Stats()
	if st.Recovered != 2 || st.Requeued != 2 {
		t.Fatalf("stats recovered/requeued = %d/%d, want 2/2", st.Recovered, st.Requeued)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// The re-run reached the journal: a second restart restores both
	// terminally without running anything.
	var runs2 int64
	svc2, err := New(Options{
		CacheDir: dir, JournalDir: jdir,
		testRun: func(c *Campaign) (json.RawMessage, error) {
			atomic.AddInt64(&runs2, 1)
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	for _, id := range []string{"job-queued", "job-running"} {
		c, ok := svc2.Get(id)
		if !ok || c.State() != StateDone {
			t.Fatalf("second restart lost %s", id)
		}
	}
	if st := svc2.Stats(); st.Requeued != 0 {
		t.Fatalf("second restart requeued %d campaigns, want 0", st.Requeued)
	}
	if n := atomic.LoadInt64(&runs2); n != 0 {
		t.Fatalf("second restart re-ran %d terminal campaigns", n)
	}
}

func TestRecoveryServesJournaledResultWithoutRerun(t *testing.T) {
	jdir := t.TempDir()
	result := json.RawMessage(`{"answer":42}`)
	spec := litmusSpec("job-done", 1)
	seedJournal(t, jdir, func(j *Journal) {
		if err := j.Accepted("job-done", "cli", spec, 1); err != nil {
			t.Fatal(err)
		}
		if err := j.Terminal("job-done", StateDone, "", result, 2); err != nil {
			t.Fatal(err)
		}
	})

	var runs int64
	svc, err := New(Options{
		CacheDir: t.TempDir(), JournalDir: jdir,
		testRun: func(c *Campaign) (json.RawMessage, error) {
			atomic.AddInt64(&runs, 1)
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	c, ok := svc.Get("job-done")
	if !ok || c.State() != StateDone {
		t.Fatalf("journaled done campaign not restored")
	}
	if got, _ := c.Result(); !bytes.Equal(got, result) {
		t.Fatalf("restored result = %s, want %s", got, result)
	}

	// Idempotent resubmit under the same key: the journaled result answers,
	// nothing re-runs.
	c2, err := svc.Submit(spec, "cli")
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatalf("idempotent resubmit returned a different campaign")
	}
	if st := svc.Stats(); st.IdempotentHits != 1 {
		t.Fatalf("idempotent hits = %d, want 1", st.IdempotentHits)
	}

	// Same key, different work: a conflict, not a silent overwrite.
	other := litmusSpec("job-done", 999)
	if _, err := svc.Submit(other, "cli"); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("conflicting key submit = %v, want ErrKeyConflict", err)
	}
	if n := atomic.LoadInt64(&runs); n != 0 {
		t.Fatalf("recovered terminal campaign re-ran %d times", n)
	}
}

func TestRecoveryRerunIsWarmAndByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real litmus campaign")
	}
	cache := t.TempDir()
	spec := litmusSpec("warm-job", 11)

	// First life: run the campaign to completion against the shared cache.
	j1 := t.TempDir()
	svc, err := New(Options{CacheDir: cache, JournalDir: j1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(spec, "cli"); err != nil {
		svc.Close()
		t.Fatal(err)
	}
	c := waitTerminal(t, svc, "warm-job")
	want, _ := c.Result()
	if c.State() != StateDone || len(want) == 0 {
		svc.Close()
		t.Fatalf("first life ended %s", c.State())
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: a journal that only recorded the admission (the daemon
	// died before any terminal record). Recovery re-runs it against the
	// same store — warm, byte-identical.
	j2 := t.TempDir()
	seedJournal(t, j2, func(j *Journal) {
		if err := j.Accepted("warm-job", "cli", spec, 1); err != nil {
			t.Fatal(err)
		}
	})
	svc2, err := New(Options{CacheDir: cache, JournalDir: j2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	c2 := waitTerminal(t, svc2, "warm-job")
	if c2.State() != StateDone {
		_, msg := c2.Result()
		t.Fatalf("recovered re-run ended %s: %s", c2.State(), msg)
	}
	got, _ := c2.Result()
	if !bytes.Equal(got, want) {
		t.Fatalf("warm re-run changed bytes: %d vs %d", len(got), len(want))
	}
	if snap := c2.Progress.Snapshot(); snap.Executed != 0 {
		t.Fatalf("warm re-run executed %d cells, want 0 (all cached)", snap.Executed)
	}
}

// TestRaceCloseDuringJournalAppend drives Submit concurrently with Close
// (run under -race): no append may land after the journal closes without
// the campaign being aborted, and every campaign the service reports
// terminal must have a matching terminal record on disk.
func TestRaceCloseDuringJournalAppend(t *testing.T) {
	jdir := t.TempDir()
	svc, err := New(Options{
		CacheDir: t.TempDir(), JournalDir: jdir, Queue: 64, Workers: 4,
		testRun: func(c *Campaign) (json.RawMessage, error) {
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := svc.Submit(litmusSpec(fmt.Sprintf("race-%d-%d", g, i), int64(i)), "race")
				if errors.Is(err, ErrClosing) {
					return
				}
				if err != nil && !errors.Is(err, ErrQueueFull) {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Every terminal campaign in the service has a terminal journal record.
	terminal := map[string]string{}
	for _, v := range svc.List() {
		if Terminal(v.State) {
			terminal[v.ID] = v.State
		} else {
			t.Errorf("campaign %s left non-terminal (%s) by Close", v.ID, v.State)
		}
	}
	j, err := OpenJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	onDisk := map[string]string{}
	for _, e := range j.Entries() {
		onDisk[e.ID] = e.State
	}
	for id, state := range terminal {
		if got, ok := onDisk[id]; !ok || got != state {
			t.Errorf("campaign %s terminal %s in service but %q in journal", id, state, got)
		}
	}
}

// TestRaceRecoverySubmitClose replays a journal of unfinished campaigns
// while clients resubmit the same keys and the daemon shuts down (run
// under -race): no campaign may execute more than once.
func TestRaceRecoverySubmitClose(t *testing.T) {
	jdir := t.TempDir()
	const n = 16
	seedJournal(t, jdir, func(j *Journal) {
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("replay-%02d", i)
			if err := j.Accepted(id, "cli", litmusSpec(id, int64(i)), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	})

	var runs sync.Map
	svc, err := New(Options{
		CacheDir: t.TempDir(), JournalDir: jdir, Workers: 4,
		testRun: func(c *Campaign) (json.RawMessage, error) {
			v, _ := runs.LoadOrStore(c.ID, new(int64))
			atomic.AddInt64(v.(*int64), 1)
			return json.RawMessage(`{}`), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				id := fmt.Sprintf("replay-%02d", (i+g)%n)
				_, err := svc.Submit(litmusSpec(id, int64((i+g)%n)), "cli")
				if err != nil && !errors.Is(err, ErrClosing) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("resubmit %s: %v", id, err)
				}
			}
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	runs.Range(func(k, v any) bool {
		if got := atomic.LoadInt64(v.(*int64)); got > 1 {
			t.Errorf("campaign %s executed %d times, want at most 1", k, got)
		}
		return true
	})
}
