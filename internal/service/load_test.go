package service

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// The full acceptance path: 32 concurrent clients over mixed cold/warm
// litmus traffic against a live daemon, zero dropped campaigns, warm
// traffic served from the shared cache, backpressure absorbed by retry.
func TestServiceLoadMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("load test (seconds of simulated campaigns)")
	}
	svc, base := startDaemon(t, Options{Queue: 8, Workers: 2})

	rep, err := RunLoad(context.Background(), base, LoadOptions{
		Clients:   32,
		Requests:  2,
		WarmFrac:  0.5,
		WarmSeeds: 2,
		Seed:      7,
		Poll:      5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 64 {
		t.Fatalf("requests=%d, want 64", rep.Requests)
	}
	if rep.Dropped != 0 {
		t.Fatalf("dropped %d campaigns under load", rep.Dropped)
	}
	if rep.WarmRequests > 0 && rep.WarmHitRatio < 0.99 {
		t.Fatalf("warm hit ratio %.3f, want >= 0.99 (prewarmed pool)", rep.WarmHitRatio)
	}
	if rep.ReqLatencyUS.P50 <= 0 || rep.ReqLatencyUS.P99 < rep.ReqLatencyUS.P50 {
		t.Fatalf("broken latency digest: %+v", rep.ReqLatencyUS)
	}

	// With 32 clients and 8 queue slots + 2 workers, admission must have
	// pushed back at least once; nothing may be lost to it.
	st := svc.Stats()
	if st.Rejected == 0 {
		t.Logf("note: no 429s observed (fast machine) — backpressure path covered by TestServiceBackpressure")
	}
	if st.Completed != 64+2 { // 64 storm campaigns + 2 prewarm
		t.Fatalf("completed=%d, want 66: %+v", st.Completed, st)
	}
	if report := rep.Profile(); report.Clients != 32 || report.Dropped != 0 {
		t.Fatalf("profile mangled the report: %+v", report)
	}
}

// A campaign that ends in a non-done terminal state is lost work: RunLoad
// must return an error (cwspload exits non-zero) even without -bench-check,
// not just count it in Dropped.
func TestServiceLoadFailsOnDroppedCampaigns(t *testing.T) {
	svc, base := startDaemon(t, Options{Queue: 8, Workers: 2})
	svc.testRun = func(c *Campaign) (json.RawMessage, error) {
		return nil, errors.New("injected campaign failure")
	}

	rep, err := RunLoad(context.Background(), base, LoadOptions{
		Clients:   2,
		Requests:  1,
		NoPrewarm: true,
		Seed:      3,
		Poll:      2 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("RunLoad returned nil error despite failed campaigns")
	}
	if rep == nil || rep.Dropped != 2 {
		t.Fatalf("report=%+v, want Dropped=2", rep)
	}
}
