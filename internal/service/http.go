package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"cwsp/internal/telemetry/live"
)

// ClientHeader carries the submitting client's identity (load-generator
// clients, CI jobs); recorded on the campaign and echoed in views.
const ClientHeader = "X-CWSP-Client"

// Server serves the daemon's HTTP API: the campaign endpoints under
// /api/v1 plus the live observability endpoint (Prometheus /metrics, JSON
// /progress, SSE /events, /debug/pprof) mounted unchanged from
// internal/telemetry/live.
type Server struct {
	svc  *Service
	live *live.Server

	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server over a running service.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, live: live.NewServer(svc.Bus())}
}

// Live returns the embedded live endpoint (to register histogram
// sources).
func (s *Server) Live() *live.Server { return s.live }

// Handler returns the daemon mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	// Everything else — /metrics, /progress, /events, /debug/pprof, / —
	// is the live observability endpoint.
	mux.Handle("/", s.live.Handler())
	return mux
}

// Start listens on addr (e.g. ":0") and serves in the background,
// returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("service: listen %s: %w", addr, err)
	}
	s.ln = ln
	// Slowloris hardening: a client that trickles headers, trickles a spec
	// body, or parks idle keep-alive connections cannot pin the daemon's
	// connections forever. WriteTimeout stays unset deliberately — the SSE
	// /events stream is a legitimately unbounded response.
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the HTTP listener (the service itself is closed
// separately — shutdown order is: stop listening, then drain campaigns).
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("parse spec: %w", err))
		return
	}
	c, err := s.svc.Submit(spec, r.Header.Get(ClientHeader))
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, c.View())
	case errors.Is(err, ErrQueueFull):
		// Backpressure: tell the client when capacity is likely.
		retry := s.svc.RetryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosing):
		// 503: the client's retry loop treats it as transient and finds
		// the restarted daemon.
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrKeyConflict):
		httpError(w, http.StatusConflict, err)
	default:
		httpError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.List())
}

func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	c, ok := s.svc.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return nil, false
	}
	return c, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaign(w, r); ok {
		writeJSON(w, http.StatusOK, c.View())
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.campaign(w, r); ok {
		writeJSON(w, http.StatusOK, c.Progress.Snapshot())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	result, errMsg := c.Result()
	switch {
	case result != nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case Terminal(c.State()):
		httpError(w, http.StatusGone, fmt.Errorf("campaign %s %s: %s", c.ID, c.State(), errMsg))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("campaign %s still %s", c.ID, c.State()))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
