package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(base string) *Client {
	return &Client{
		Base: base, ID: "test",
		Timeout: 5 * time.Second, Retries: 3,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond,
	}
}

func TestClientRetriesTransient(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(View{ID: "c000001", State: StateDone})
	}))
	defer ts.Close()

	v, err := fastClient(ts.URL).Get(context.Background(), "c000001")
	if err != nil {
		t.Fatalf("get across 503s: %v", err)
	}
	if v.State != StateDone {
		t.Fatalf("state = %s", v.State)
	}
	if n := atomic.LoadInt32(&calls); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", n)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"down"}`, http.StatusBadGateway)
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL).Get(context.Background(), "x")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
	// Retries=3 → 4 attempts total.
	if n := atomic.LoadInt32(&calls); n != 4 {
		t.Fatalf("server saw %d calls, want 4", n)
	}
}

func TestClientNoRetryOnCallerErrors(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"no such campaign"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL).Get(context.Background(), "nope")
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want 404", err)
	}
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("client retried a 404 %d times", n-1)
	}
}

func TestClientBusyNotRetriedByBudget(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL).Submit(context.Background(), litmusSpec("", 1))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want BusyError", err)
	}
	if busy.RetryAfter != 7*time.Second {
		t.Fatalf("retry-after = %v, want 7s", busy.RetryAfter)
	}
	// Backpressure is SubmitWait's loop, not the transient budget's.
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("429 was retried: %d calls", n)
	}
}

func TestSubmitWaitContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Forever queued: SubmitWait can only end via its context.
		json.NewEncoder(w).Encode(View{ID: "c000001", State: StateQueued})
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := fastClient(ts.URL).SubmitWait(ctx, litmusSpec("", 1), 5*time.Millisecond)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v", d)
	}
}

// TestSubmitWaitResubmitsAfterDaemonLoss scripts the restart-without-
// journal story: the campaign vanishes mid-wait (404), and SubmitWait —
// because the spec carries an idempotency key — resubmits instead of
// failing the caller.
func TestSubmitWaitResubmitsAfterDaemonLoss(t *testing.T) {
	var submits int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			n := atomic.AddInt32(&submits, 1)
			state := StateQueued
			if n > 1 {
				state = StateDone // the resubmitted campaign completes immediately
			}
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(View{ID: "keyed-job", State: state})
		default:
			http.Error(w, `{"error":"unknown campaign"}`, http.StatusNotFound)
		}
	}))
	defer ts.Close()

	v, _, err := fastClient(ts.URL).SubmitWait(context.Background(), litmusSpec("keyed-job", 1), time.Millisecond)
	if err != nil {
		t.Fatalf("SubmitWait: %v", err)
	}
	if v.State != StateDone {
		t.Fatalf("state = %s", v.State)
	}
	if n := atomic.LoadInt32(&submits); n != 2 {
		t.Fatalf("submits = %d, want 2 (original + post-loss resubmit)", n)
	}
}

func TestSubmitWaitKeylessLossIsTerminal(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(View{ID: "c000001", State: StateQueued})
			return
		}
		http.Error(w, `{"error":"unknown campaign"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	// Without a key, resubmitting could duplicate work — the loss must
	// surface instead.
	_, _, err := fastClient(ts.URL).SubmitWait(context.Background(), litmusSpec("", 1), time.Millisecond)
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want 404 surfaced", err)
	}
}

func TestClientPerRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the client must have timed out
	}))
	defer ts.Close()
	defer close(release)

	cli := &Client{Base: ts.URL, Timeout: 20 * time.Millisecond, Retries: -1}
	start := time.Now()
	_, err := cli.Get(context.Background(), "x")
	if err == nil {
		t.Fatal("hung request returned nil error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("per-request timeout took %v", d)
	}
}

func TestServerHardeningTimeouts(t *testing.T) {
	svc, err := New(Options{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := NewServer(svc)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.ReadTimeout <= 0 || srv.srv.IdleTimeout <= 0 {
		t.Fatalf("listener missing slowloris timeouts: %+v", srv.srv)
	}
	if srv.srv.WriteTimeout != 0 {
		t.Fatalf("WriteTimeout %v would kill the SSE /events stream", srv.srv.WriteTimeout)
	}
}
