package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"cwsp/internal/bench"
	"cwsp/internal/compiler"
	"cwsp/internal/litmus"
	"cwsp/internal/recovery"
	"cwsp/internal/runner"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry/live"
	"cwsp/internal/workloads"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity: the HTTP layer translates it to 429 + Retry-After, and clients
// back off and retry instead of the daemon buffering unboundedly.
var ErrQueueFull = errors.New("service: admission queue full")

// ErrClosing is returned by Submit once shutdown has begun.
var ErrClosing = errors.New("service: shutting down")

// Options configure a daemon.
type Options struct {
	// Store is the shared content-addressed cache every campaign reads and
	// writes. When nil, CacheDir is opened (and owned — Close releases it).
	Store    *runner.Store
	CacheDir string
	// MaxStoreBytes bounds the shared cache (LRU eviction); 0 = unbounded.
	MaxStoreBytes int64
	// CompactEvery compacts the store after this many completed campaigns
	// (0 = only at Close).
	CompactEvery int

	// Queue is the admission-queue capacity (campaigns waiting beyond the
	// ones running); default 16. Workers is how many campaign-runner
	// goroutine groups execute concurrently (default 2); Jobs is each
	// campaign's pool width within its group (default 1 — campaigns are
	// the unit of concurrency, cells the unit of work).
	Queue   int
	Workers int
	Jobs    int

	// Bus receives live events from every campaign's pools (the daemon's
	// /metrics, /progress, /events come from it). Nil allocates one.
	Bus *live.Bus
	// Log, when set, receives one line per campaign transition.
	Log io.Writer
}

// Stats is the daemon digest at /api/v1/stats.
type Stats struct {
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Workers    int `json:"workers"`
	Jobs       int `json:"jobs"`

	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"` // backpressured submissions (429)
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Aborted   int64 `json:"aborted"`

	// AvgCampaignMS is the EWMA campaign duration behind Retry-After.
	AvgCampaignMS int64 `json:"avg_campaign_ms"`
	// RetryAfterMS is the current backoff hint handed to rejected clients.
	RetryAfterMS int64 `json:"retry_after_ms"`

	Store runner.StoreStats `json:"store"`
}

// Service is the campaign daemon: a bounded admission queue feeding a
// fixed set of campaign-runner goroutine groups, all sharing one
// content-addressed store and one live bus.
type Service struct {
	opts  Options
	store *runner.Store
	owned bool // store opened from CacheDir: Close releases it
	bus   *live.Bus

	queue chan *Campaign
	wg    sync.WaitGroup

	mu        sync.Mutex
	closing   bool
	campaigns map[string]*Campaign
	order     []string
	nextID    int
	accepted  int64
	rejected  int64
	running   int64
	completed int64
	failed    int64
	aborted   int64
	avgDur    time.Duration
	sinceComp int // completed campaigns since the last compaction

	// testRun, when set, replaces the campaign engines (unit tests inject
	// controllable work).
	testRun func(c *Campaign) (json.RawMessage, error)
}

// New builds and starts a daemon (worker groups begin draining the queue
// immediately).
func New(opts Options) (*Service, error) {
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	bus := opts.Bus
	if bus == nil {
		bus = live.NewBus()
	}
	s := &Service{
		opts:      opts,
		bus:       bus,
		queue:     make(chan *Campaign, opts.Queue),
		campaigns: map[string]*Campaign{},
	}
	switch {
	case opts.Store != nil:
		s.store = opts.Store
	case opts.CacheDir != "":
		store, err := runner.OpenStore(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.owned = true
	default:
		return nil, fmt.Errorf("service: need Store or CacheDir (the shared cache is the point)")
	}
	s.store.SetBus(bus)
	if opts.MaxStoreBytes > 0 {
		s.store.SetMaxBytes(opts.MaxStoreBytes)
	}
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Bus returns the daemon-wide live bus.
func (s *Service) Bus() *live.Bus { return s.bus }

// Store returns the shared store.
func (s *Service) Store() *runner.Store { return s.store }

// Submit admits one campaign. The spec is normalized and validated here —
// an invalid spec is the submitter's error, not a failed campaign. A full
// queue returns ErrQueueFull (the caller backs off by RetryAfter).
func (s *Service) Submit(spec Spec, clientID string) (*Campaign, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, ErrClosing
	}
	s.nextID++
	c := newCampaign(fmt.Sprintf("c%06d", s.nextID), spec, clientID)
	select {
	case s.queue <- c:
	default:
		s.nextID--
		s.rejected++
		return nil, ErrQueueFull
	}
	s.accepted++
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	s.logf("campaign %s queued (%s, client %s)", c.ID, spec.Kind, clientID)
	return c, nil
}

// Get finds a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List snapshots every campaign in admission order. The campaign pointers
// are resolved while s.mu is held — Submit writes s.campaigns concurrently,
// and an unlocked map read would be a fatal runtime race — but View() is
// called after unlocking so slow snapshots never serialize admissions.
func (s *Service) List() []View {
	s.mu.Lock()
	cs := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		cs = append(cs, s.campaigns[id])
	}
	s.mu.Unlock()
	views := make([]View, 0, len(cs))
	for _, c := range cs {
		views = append(views, c.View())
	}
	return views
}

// RetryAfter estimates how long a rejected client should back off: the
// queued work ahead of it at the observed campaign pace, spread across the
// worker groups. Clamped to [1s, 120s].
func (s *Service) RetryAfter() time.Duration {
	s.mu.Lock()
	avg := s.avgDur
	s.mu.Unlock()
	if avg <= 0 {
		avg = time.Second
	}
	d := time.Duration(len(s.queue)+1) * avg / time.Duration(s.opts.Workers)
	if d < time.Second {
		d = time.Second
	}
	if d > 2*time.Minute {
		d = 2 * time.Minute
	}
	return d
}

// Stats digests the daemon.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth: len(s.queue), QueueCap: cap(s.queue),
		Workers: s.opts.Workers, Jobs: s.opts.Jobs,
		Accepted: s.accepted, Rejected: s.rejected, Running: s.running,
		Completed: s.completed, Failed: s.failed, Aborted: s.aborted,
		AvgCampaignMS: s.avgDur.Milliseconds(),
	}
	s.mu.Unlock()
	st.RetryAfterMS = s.RetryAfter().Milliseconds()
	st.Store = s.store.Stats()
	return st
}

// Close drains the daemon: no new admissions, queued campaigns abort with
// a terminal state (never silently dropped), running campaigns finish,
// then the store is compacted and — when the daemon opened it — closed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.mu.Unlock()

	// Abort everything still queued; workers see closing and abort
	// whatever they pull concurrently.
	for {
		select {
		case c := <-s.queue:
			s.abortCampaign(c)
		default:
			close(s.queue)
			s.wg.Wait()
			var err error
			if _, cerr := s.store.Compact(); cerr != nil && !errors.Is(cerr, runner.ErrClosed) {
				err = cerr
			}
			if s.owned {
				if cerr := s.store.Close(); err == nil {
					err = cerr
				}
			}
			return err
		}
	}
}

func (s *Service) abortCampaign(c *Campaign) {
	c.abort("daemon shutting down")
	s.mu.Lock()
	s.aborted++
	s.mu.Unlock()
	s.logf("campaign %s aborted (shutdown)", c.ID)
}

// worker is one campaign-runner goroutine group: it pulls admitted
// campaigns and runs each to a terminal state. Campaign panics are
// isolated to a failed campaign, not a dead worker.
func (s *Service) worker() {
	defer s.wg.Done()
	for c := range s.queue {
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			s.abortCampaign(c)
			continue
		}
		s.runCampaign(c)
	}
}

func (s *Service) runCampaign(c *Campaign) {
	c.setRunning()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	s.logf("campaign %s running (%s)", c.ID, c.Spec.Kind)
	start := time.Now()

	result, err := s.runSpec(c)
	dur := time.Since(start)
	c.finish(result, err)

	s.mu.Lock()
	s.running--
	if err != nil {
		s.failed++
	} else {
		s.completed++
	}
	if s.avgDur == 0 {
		s.avgDur = dur
	} else {
		s.avgDur = (4*s.avgDur + dur) / 5
	}
	s.sinceComp++
	compact := s.opts.CompactEvery > 0 && s.sinceComp >= s.opts.CompactEvery
	if compact {
		s.sinceComp = 0
	}
	s.mu.Unlock()

	if err != nil {
		s.logf("campaign %s failed in %v: %v", c.ID, dur.Round(time.Millisecond), err)
	} else {
		s.logf("campaign %s done in %v", c.ID, dur.Round(time.Millisecond))
	}
	if compact {
		if st, cerr := s.store.Compact(); cerr == nil {
			s.logf("store compacted: %d lines -> %d records (%d dropped, %d orphan files)",
				st.LinesBefore, st.Records, st.Dropped, st.OrphanFiles)
		}
	}
}

// runSpec dispatches to the campaign engine (isolating panics — a
// panicking campaign fails; the worker group survives).
func (s *Service) runSpec(c *Campaign) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: campaign %s panicked: %v", c.ID, r)
		}
	}()
	if s.testRun != nil {
		return s.testRun(c)
	}
	switch c.Spec.Kind {
	case KindSweep:
		return s.runSweep(c)
	case KindTorture:
		return s.runTorture(c)
	case KindLitmus:
		return s.runLitmus(c)
	}
	return nil, fmt.Errorf("service: unknown campaign kind %q", c.Spec.Kind)
}

// SweepResult is a sweep campaign's payload: per-experiment CSV report
// bytes. The CSV is assembled by the same serial code as a direct
// `cwspbench -exp <id> -csv` run, so a service-run sweep is byte-identical
// to a local one — the cache only changes how fast the bytes arrive.
type SweepResult struct {
	Experiments []string          `json:"experiments"`
	Scale       string            `json:"scale"`
	CSV         map[string]string `json:"csv"`
}

func (s *Service) runSweep(c *Campaign) (json.RawMessage, error) {
	h := bench.NewHarness(bench.Options{
		Scale:    c.Spec.ScaleOf(),
		PerApp:   c.Spec.PerApp,
		Jobs:     s.opts.Jobs,
		Store:    s.store,
		Bus:      s.bus,
		Progress: c.Progress,
	})
	res := SweepResult{Experiments: c.Spec.Experiments, Scale: c.Spec.Scale, CSV: map[string]string{}}
	for _, id := range c.Spec.Experiments {
		e, err := bench.ByID(id)
		if err != nil {
			return nil, err
		}
		rep, err := h.RunExperiment(e)
		if err != nil {
			return nil, err
		}
		res.CSV[id] = rep.CSV()
	}
	if err := h.Close(); err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

func (s *Service) runTorture(c *Campaign) (json.RawMessage, error) {
	scale := c.Spec.ScaleOf()
	var targets []recovery.TortureTarget
	for _, name := range c.Spec.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, _, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("service: compile %s: %w", name, err)
		}
		targets = append(targets, recovery.TortureTarget{
			Name: name, Prog: prog, Specs: []sim.ThreadSpec{{Fn: prog.Entry}},
		})
	}
	rep, _, err := recovery.RunTorture(targets, recovery.TortureOptions{
		Seed:           c.Spec.Seed,
		CellsPerTarget: c.Spec.Cells,
		Depth:          c.Spec.Depth,
		Points:         c.Spec.Points,
		Cfg:            sim.DefaultConfig(),
		Sch:            sim.CWSP(),
		Unsealed:       c.Spec.Unsealed,
		Jobs:           s.opts.Jobs,
		Store:          s.store,
		Bus:            s.bus,
		Progress:       c.Progress,
	})
	if err != nil {
		return nil, err
	}
	return rep.WriteJSON()
}

func (s *Service) runLitmus(c *Campaign) (json.RawMessage, error) {
	rep, _, err := litmus.RunCampaign(litmus.CampaignOptions{
		Seed:     c.Spec.Seed,
		Tests:    c.Spec.Cells,
		Schemes:  c.Spec.Schemes,
		Kernels:  c.Spec.Kernels,
		Unsealed: c.Spec.Unsealed,
		Jobs:     s.opts.Jobs,
		Store:    s.store,
		Bus:      s.bus,
		Progress: c.Progress,
	})
	if err != nil {
		return nil, err
	}
	return rep.WriteJSON()
}

func (s *Service) logf(format string, args ...any) {
	if s.opts.Log == nil {
		return
	}
	fmt.Fprintf(s.opts.Log, "cwspd: "+format+"\n", args...)
}
