package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"cwsp/internal/bench"
	"cwsp/internal/compiler"
	"cwsp/internal/litmus"
	"cwsp/internal/recovery"
	"cwsp/internal/runner"
	"cwsp/internal/sim"
	"cwsp/internal/telemetry/live"
	"cwsp/internal/workloads"
)

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity: the HTTP layer translates it to 429 + Retry-After, and clients
// back off and retry instead of the daemon buffering unboundedly.
var ErrQueueFull = errors.New("service: admission queue full")

// ErrClosing is returned by Submit once shutdown has begun.
var ErrClosing = errors.New("service: shutting down")

// ErrKeyConflict wraps every idempotency-key collision: the key is already
// bound to a campaign with a different spec. Test with errors.Is.
var ErrKeyConflict = errors.New("service: idempotency key bound to a different spec")

// KeyConflictError reports which key collided.
type KeyConflictError struct {
	Key string
}

func (e *KeyConflictError) Error() string {
	return fmt.Sprintf("service: idempotency key %q is bound to a campaign with a different spec", e.Key)
}

// Unwrap makes errors.Is(err, ErrKeyConflict) work.
func (e *KeyConflictError) Unwrap() error { return ErrKeyConflict }

// Options configure a daemon.
type Options struct {
	// Store is the shared content-addressed cache every campaign reads and
	// writes. When nil, CacheDir is opened (and owned — Close releases it).
	Store    *runner.Store
	CacheDir string
	// MaxStoreBytes bounds the shared cache (LRU eviction); 0 = unbounded.
	MaxStoreBytes int64
	// CompactEvery compacts the store after this many completed campaigns
	// (0 = only at Close).
	CompactEvery int

	// Queue is the admission-queue capacity (campaigns waiting beyond the
	// ones running); default 16. Workers is how many campaign-runner
	// goroutine groups execute concurrently (default 2); Jobs is each
	// campaign's pool width within its group (default 1 — campaigns are
	// the unit of concurrency, cells the unit of work).
	Queue   int
	Workers int
	Jobs    int

	// JournalDir enables the durable campaign journal: every admission is
	// fsynced to a write-ahead log there before Submit acknowledges it, and
	// on the next boot the journal is replayed — terminal campaigns are
	// restored with their results, campaigns that never reached a terminal
	// record are re-admitted and re-run against the warm content-addressed
	// store. Empty disables durability (the pre-journal behavior).
	JournalDir string
	// LockWait bounds how long New waits for the store and journal
	// directory flocks still held by a dying previous owner (a daemon
	// restarting over its own SIGKILLed corpse). 0 = fail fast.
	LockWait time.Duration

	// Bus receives live events from every campaign's pools (the daemon's
	// /metrics, /progress, /events come from it). Nil allocates one.
	Bus *live.Bus
	// Log, when set, receives one line per campaign transition.
	Log io.Writer

	// testRun, when set, replaces the campaign engines before the workers
	// start (unit tests inject controllable work — unexported, tests only).
	testRun func(c *Campaign) (json.RawMessage, error)
}

// Stats is the daemon digest at /api/v1/stats.
type Stats struct {
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	Workers    int `json:"workers"`
	Jobs       int `json:"jobs"`

	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"` // backpressured submissions (429)
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Aborted   int64 `json:"aborted"`

	// Recovered counts campaigns restored from the journal at boot;
	// Requeued of those were non-terminal and re-admitted. IdempotentHits
	// counts submissions answered by an existing campaign via its key.
	Recovered      int64 `json:"recovered,omitempty"`
	Requeued       int64 `json:"requeued,omitempty"`
	IdempotentHits int64 `json:"idempotent_hits,omitempty"`

	// AvgCampaignMS is the EWMA campaign duration behind Retry-After.
	AvgCampaignMS int64 `json:"avg_campaign_ms"`
	// RetryAfterMS is the current backoff hint handed to rejected clients.
	RetryAfterMS int64 `json:"retry_after_ms"`

	Store runner.StoreStats `json:"store"`
	// Journal digests the durable campaign journal (nil without
	// -journal-dir).
	Journal *JournalStats `json:"journal,omitempty"`
}

// Service is the campaign daemon: a bounded admission queue feeding a
// fixed set of campaign-runner goroutine groups, all sharing one
// content-addressed store and one live bus.
type Service struct {
	opts    Options
	store   *runner.Store
	owned   bool // store opened from CacheDir: Close releases it
	journal *Journal
	bus     *live.Bus

	queue chan *Campaign
	wg    sync.WaitGroup

	mu        sync.Mutex
	closing   bool
	campaigns map[string]*Campaign
	order     []string
	nextID    int
	accepted  int64
	rejected  int64
	running   int64
	completed int64
	failed    int64
	aborted   int64
	recovered int64
	requeued  int64
	idemHits  int64
	avgDur    time.Duration
	sinceComp int // completed campaigns since the last compaction

	// testRun, when set, replaces the campaign engines (unit tests inject
	// controllable work).
	testRun func(c *Campaign) (json.RawMessage, error)
}

// New builds and starts a daemon (worker groups begin draining the queue
// immediately).
func New(opts Options) (*Service, error) {
	if opts.Queue <= 0 {
		opts.Queue = 16
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	bus := opts.Bus
	if bus == nil {
		bus = live.NewBus()
	}
	s := &Service{
		opts:      opts,
		bus:       bus,
		campaigns: map[string]*Campaign{},
		testRun:   opts.testRun,
	}
	switch {
	case opts.Store != nil:
		s.store = opts.Store
	case opts.CacheDir != "":
		store, err := runner.OpenStoreWait(opts.CacheDir, opts.LockWait)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.owned = true
	default:
		return nil, fmt.Errorf("service: need Store or CacheDir (the shared cache is the point)")
	}
	s.store.SetBus(bus)
	if opts.MaxStoreBytes > 0 {
		s.store.SetMaxBytes(opts.MaxStoreBytes)
	}

	// Replay the durable journal before the workers start: terminal
	// campaigns are restored with their results; non-terminal ones are
	// re-admitted (the queue channel is widened so recovery can never
	// deadlock against the configured admission bound — Submit enforces
	// opts.Queue, not channel capacity).
	var entries []JournalEntry
	if opts.JournalDir != "" {
		j, err := OpenJournalWait(opts.JournalDir, opts.LockWait)
		if err != nil {
			if s.owned {
				s.store.Close()
			}
			return nil, err
		}
		s.journal = j
		entries = j.Entries()
	}
	requeue := 0
	for _, e := range entries {
		if !Terminal(e.State) {
			requeue++
		}
	}
	s.queue = make(chan *Campaign, opts.Queue+requeue)
	for _, e := range entries {
		s.recoverEntry(e)
	}

	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recoverEntry restores one journaled campaign at boot (campaign map,
// counters, and — for non-terminal entries — re-admission). Called from
// New before any worker or HTTP request exists, so no locking.
func (s *Service) recoverEntry(e JournalEntry) {
	c := campaignFromEntry(e)
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	// Keep generated IDs collision-free across restarts.
	var n int
	if _, err := fmt.Sscanf(c.ID, "c%06d", &n); err == nil && n > s.nextID {
		s.nextID = n
	}
	s.accepted++
	s.recovered++
	s.bus.Publish(live.Event{Kind: live.CampaignRecovered, Cell: c.ID, Outcome: e.State})
	switch e.State {
	case StateDone:
		s.completed++
	case StateFailed:
		s.failed++
	case StateAborted:
		s.aborted++
	default:
		s.requeued++
		s.queue <- c
	}
	s.logf("campaign %s recovered from journal (%s)", c.ID, e.State)
}

// Bus returns the daemon-wide live bus.
func (s *Service) Bus() *live.Bus { return s.bus }

// Store returns the shared store.
func (s *Service) Store() *runner.Store { return s.store }

// Submit admits one campaign. The spec is normalized and validated here —
// an invalid spec is the submitter's error, not a failed campaign. A full
// queue returns ErrQueueFull (the caller backs off by RetryAfter). A spec
// carrying an idempotency key maps onto the existing campaign under that
// key — including one recovered from the journal after a restart — and is
// answered without re-admission; the same key with a different spec is
// ErrKeyConflict. With a journal configured, the admission is fsynced to
// the write-ahead log before this returns: an acknowledged campaign
// survives SIGKILL. (The fsync happens under s.mu; admissions are rare
// next to campaign runtimes, and serializing them keeps the
// accept-then-journal order trivially crash-consistent.)
func (s *Service) Submit(spec Spec, clientID string) (*Campaign, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, ErrClosing
	}
	id := spec.Key
	if id != "" {
		if c, ok := s.campaigns[id]; ok {
			if !equalSpec(c.Spec, spec) {
				return nil, &KeyConflictError{Key: id}
			}
			s.idemHits++
			s.logf("campaign %s resubmitted idempotently (client %s)", id, clientID)
			return c, nil
		}
	}
	// Admission bound is the configured queue depth, not the channel's
	// capacity (recovery widens the channel to re-admit journaled work).
	if len(s.queue) >= s.opts.Queue {
		s.rejected++
		return nil, ErrQueueFull
	}
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("c%06d", s.nextID)
			if _, taken := s.campaigns[id]; !taken {
				break
			}
		}
	}
	c := newCampaign(id, spec, clientID)
	if s.journal != nil {
		if err := s.journal.Accepted(c.ID, clientID, spec, c.submitted.UnixNano()); err != nil {
			return nil, fmt.Errorf("service: journal admission: %w", err)
		}
	}
	// Cannot block: every sender holds s.mu and len(queue) < Queue <= cap.
	s.queue <- c
	s.accepted++
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	s.logf("campaign %s queued (%s, client %s)", c.ID, spec.Kind, clientID)
	return c, nil
}

// Get finds a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List snapshots every campaign in admission order. The campaign pointers
// are resolved while s.mu is held — Submit writes s.campaigns concurrently,
// and an unlocked map read would be a fatal runtime race — but View() is
// called after unlocking so slow snapshots never serialize admissions.
func (s *Service) List() []View {
	s.mu.Lock()
	cs := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		cs = append(cs, s.campaigns[id])
	}
	s.mu.Unlock()
	views := make([]View, 0, len(cs))
	for _, c := range cs {
		views = append(views, c.View())
	}
	return views
}

// RetryAfter estimates how long a rejected client should back off: the
// queued work ahead of it at the observed campaign pace, spread across the
// worker groups. Clamped to [1s, 120s].
func (s *Service) RetryAfter() time.Duration {
	s.mu.Lock()
	avg := s.avgDur
	s.mu.Unlock()
	if avg <= 0 {
		avg = time.Second
	}
	d := time.Duration(len(s.queue)+1) * avg / time.Duration(s.opts.Workers)
	if d < time.Second {
		d = time.Second
	}
	if d > 2*time.Minute {
		d = 2 * time.Minute
	}
	return d
}

// Stats digests the daemon.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		QueueDepth: len(s.queue), QueueCap: cap(s.queue),
		Workers: s.opts.Workers, Jobs: s.opts.Jobs,
		Accepted: s.accepted, Rejected: s.rejected, Running: s.running,
		Completed: s.completed, Failed: s.failed, Aborted: s.aborted,
		Recovered: s.recovered, Requeued: s.requeued, IdempotentHits: s.idemHits,
		AvgCampaignMS: s.avgDur.Milliseconds(),
	}
	s.mu.Unlock()
	st.RetryAfterMS = s.RetryAfter().Milliseconds()
	st.Store = s.store.Stats()
	if s.journal != nil {
		js := s.journal.Stats()
		st.Journal = &js
	}
	return st
}

// Close drains the daemon: no new admissions, queued campaigns abort with
// a terminal state (never silently dropped), running campaigns finish,
// then the store is compacted and — when the daemon opened it — closed.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.mu.Unlock()

	// Abort everything still queued; workers see closing and abort
	// whatever they pull concurrently.
	for {
		select {
		case c := <-s.queue:
			s.abortCampaign(c)
		default:
			close(s.queue)
			s.wg.Wait()
			var err error
			// Workers are drained: every terminal record has been appended.
			// Fold the journal so the next boot replays one record per
			// campaign, then release it before the store.
			if s.journal != nil {
				if cerr := s.journal.Compact(); cerr != nil && !errors.Is(cerr, ErrJournalClosed) {
					err = cerr
				}
				if cerr := s.journal.Close(); err == nil {
					err = cerr
				}
			}
			if _, cerr := s.store.Compact(); cerr != nil && !errors.Is(cerr, runner.ErrClosed) && err == nil {
				err = cerr
			}
			if s.owned {
				if cerr := s.store.Close(); err == nil {
					err = cerr
				}
			}
			return err
		}
	}
}

func (s *Service) abortCampaign(c *Campaign) {
	finished, ok := c.abort("daemon shutting down")
	if !ok {
		return
	}
	if s.journal != nil {
		if err := s.journal.Terminal(c.ID, StateAborted, "daemon shutting down", nil, finished.UnixNano()); err != nil {
			s.logf("campaign %s journal abort: %v", c.ID, err)
		}
	}
	s.mu.Lock()
	s.aborted++
	s.mu.Unlock()
	s.logf("campaign %s aborted (shutdown)", c.ID)
}

// worker is one campaign-runner goroutine group: it pulls admitted
// campaigns and runs each to a terminal state. Campaign panics are
// isolated to a failed campaign, not a dead worker.
func (s *Service) worker() {
	defer s.wg.Done()
	for c := range s.queue {
		s.mu.Lock()
		closing := s.closing
		s.mu.Unlock()
		if closing {
			s.abortCampaign(c)
			continue
		}
		s.runCampaign(c)
	}
}

func (s *Service) runCampaign(c *Campaign) {
	started := c.setRunning()
	if s.journal != nil {
		// Best-effort (unfsynced): a lost running record recovers as
		// queued, which re-admits exactly like running.
		if jerr := s.journal.Running(c.ID, started.UnixNano()); jerr != nil {
			s.logf("campaign %s journal running: %v", c.ID, jerr)
		}
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	s.logf("campaign %s running (%s)", c.ID, c.Spec.Kind)
	start := time.Now()

	result, err := s.runSpec(c)
	dur := time.Since(start)
	finished := c.finish(result, err)
	if s.journal != nil {
		state, msg := StateDone, ""
		if err != nil {
			state, msg = StateFailed, err.Error()
		}
		if jerr := s.journal.Terminal(c.ID, state, msg, result, finished.UnixNano()); jerr != nil {
			s.logf("campaign %s journal terminal: %v", c.ID, jerr)
		}
	}

	s.mu.Lock()
	s.running--
	if err != nil {
		s.failed++
	} else {
		s.completed++
	}
	if s.avgDur == 0 {
		s.avgDur = dur
	} else {
		s.avgDur = (4*s.avgDur + dur) / 5
	}
	s.sinceComp++
	compact := s.opts.CompactEvery > 0 && s.sinceComp >= s.opts.CompactEvery
	if compact {
		s.sinceComp = 0
	}
	s.mu.Unlock()

	if err != nil {
		s.logf("campaign %s failed in %v: %v", c.ID, dur.Round(time.Millisecond), err)
	} else {
		s.logf("campaign %s done in %v", c.ID, dur.Round(time.Millisecond))
	}
	if compact {
		if st, cerr := s.store.Compact(); cerr == nil {
			s.logf("store compacted: %d lines -> %d records (%d dropped, %d orphan files)",
				st.LinesBefore, st.Records, st.Dropped, st.OrphanFiles)
		}
		if s.journal != nil {
			if cerr := s.journal.Compact(); cerr == nil {
				js := s.journal.Stats()
				s.logf("journal compacted: %d campaigns (%d terminal), %d bytes",
					js.Campaigns, js.Terminal, js.SizeBytes)
			}
		}
	}
}

// runSpec dispatches to the campaign engine (isolating panics — a
// panicking campaign fails; the worker group survives).
func (s *Service) runSpec(c *Campaign) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: campaign %s panicked: %v", c.ID, r)
		}
	}()
	if s.testRun != nil {
		return s.testRun(c)
	}
	switch c.Spec.Kind {
	case KindSweep:
		return s.runSweep(c)
	case KindTorture:
		return s.runTorture(c)
	case KindLitmus:
		return s.runLitmus(c)
	}
	return nil, fmt.Errorf("service: unknown campaign kind %q", c.Spec.Kind)
}

// SweepResult is a sweep campaign's payload: per-experiment CSV report
// bytes. The CSV is assembled by the same serial code as a direct
// `cwspbench -exp <id> -csv` run, so a service-run sweep is byte-identical
// to a local one — the cache only changes how fast the bytes arrive.
type SweepResult struct {
	Experiments []string          `json:"experiments"`
	Scale       string            `json:"scale"`
	CSV         map[string]string `json:"csv"`
}

func (s *Service) runSweep(c *Campaign) (json.RawMessage, error) {
	h := bench.NewHarness(bench.Options{
		Scale:    c.Spec.ScaleOf(),
		PerApp:   c.Spec.PerApp,
		Jobs:     s.opts.Jobs,
		Store:    s.store,
		Bus:      s.bus,
		Progress: c.Progress,
	})
	res := SweepResult{Experiments: c.Spec.Experiments, Scale: c.Spec.Scale, CSV: map[string]string{}}
	for _, id := range c.Spec.Experiments {
		e, err := bench.ByID(id)
		if err != nil {
			return nil, err
		}
		rep, err := h.RunExperiment(e)
		if err != nil {
			return nil, err
		}
		res.CSV[id] = rep.CSV()
	}
	if err := h.Close(); err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

func (s *Service) runTorture(c *Campaign) (json.RawMessage, error) {
	scale := c.Spec.ScaleOf()
	var targets []recovery.TortureTarget
	for _, name := range c.Spec.Workloads {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, _, err := compiler.Compile(w.Build(scale), compiler.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("service: compile %s: %w", name, err)
		}
		targets = append(targets, recovery.TortureTarget{
			Name: name, Prog: prog, Specs: []sim.ThreadSpec{{Fn: prog.Entry}},
		})
	}
	rep, _, err := recovery.RunTorture(targets, recovery.TortureOptions{
		Seed:           c.Spec.Seed,
		CellsPerTarget: c.Spec.Cells,
		Depth:          c.Spec.Depth,
		Points:         c.Spec.Points,
		Cfg:            sim.DefaultConfig(),
		Sch:            sim.CWSP(),
		Unsealed:       c.Spec.Unsealed,
		Jobs:           s.opts.Jobs,
		Store:          s.store,
		Bus:            s.bus,
		Progress:       c.Progress,
	})
	if err != nil {
		return nil, err
	}
	return rep.WriteJSON()
}

func (s *Service) runLitmus(c *Campaign) (json.RawMessage, error) {
	rep, _, err := litmus.RunCampaign(litmus.CampaignOptions{
		Seed:     c.Spec.Seed,
		Tests:    c.Spec.Cells,
		Schemes:  c.Spec.Schemes,
		Kernels:  c.Spec.Kernels,
		Unsealed: c.Spec.Unsealed,
		Jobs:     s.opts.Jobs,
		Store:    s.store,
		Bus:      s.bus,
		Progress: c.Progress,
	})
	if err != nil {
		return nil, err
	}
	return rep.WriteJSON()
}

func (s *Service) logf(format string, args ...any) {
	if s.opts.Log == nil {
		return
	}
	fmt.Fprintf(s.opts.Log, "cwspd: "+format+"\n", args...)
}
