package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"cwsp/internal/bench"
	"cwsp/internal/workloads"
)

// startDaemon builds a service + HTTP server on an ephemeral port and
// returns a client factory and a teardown.
func startDaemon(t *testing.T, opts Options) (*Service, string) {
	t.Helper()
	if opts.CacheDir == "" && opts.Store == nil {
		opts.CacheDir = t.TempDir()
	}
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, "http://" + addr
}

func waitState(t *testing.T, c *Campaign, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.State() != state {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s stuck in %s, want %s", c.ID, c.State(), state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A sweep submitted twice is byte-identical both times, identical to a
// direct in-process harness run of the same spec, and the repeat is
// served entirely from the shared content-addressed cache.
func TestServiceSweepByteIdentityAndWarmCache(t *testing.T) {
	_, base := startDaemon(t, Options{Workers: 1})
	cli := &Client{Base: base, ID: "test"}
	ctx := context.Background()

	spec := Spec{Kind: KindSweep, Experiments: []string{"fig06"}, Scale: "smoke"}
	v1, _, err := cli.SubmitWait(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if v1.State != StateDone {
		t.Fatalf("first sweep %s: %s", v1.State, v1.Error)
	}
	r1, err := cli.Result(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}

	v2, _, err := cli.SubmitWait(ctx, spec, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cli.Result(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatalf("repeated sweep changed bytes:\n%s\nvs\n%s", r1, r2)
	}

	// The repeat hit the shared cache for every cell.
	p2, err := cli.Progress(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Executed != 0 || p2.Hits == 0 {
		t.Fatalf("warm sweep executed=%d hits=%d, want fully cached", p2.Executed, p2.Hits)
	}
	if p2.HitRatio < 0.99 {
		t.Fatalf("warm hit ratio %.3f, want >= 0.99", p2.HitRatio)
	}

	// Byte-identity against a direct (no-service) harness run.
	var got SweepResult
	if err := json.Unmarshal(r1, &got); err != nil {
		t.Fatal(err)
	}
	h := bench.NewHarness(bench.Options{Scale: workloads.Smoke})
	e, err := bench.ByID("fig06")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.RunExperiment(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV["fig06"] != rep.CSV() {
		t.Fatalf("service CSV diverges from direct run:\n%q\nvs\n%q", got.CSV["fig06"], rep.CSV())
	}
}

// List racing Submit must be a clean snapshot: the pre-fix List read the
// campaigns map after releasing s.mu while Submit wrote it — a concurrent
// map read/write the runtime kills as a fatal error (GET /campaigns racing
// POST /campaigns crashed the daemon). Run under -race.
func TestServiceListDuringSubmitRace(t *testing.T) {
	svc, _ := startDaemon(t, Options{Queue: 256, Workers: 2})
	svc.testRun = func(c *Campaign) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	}
	litmus := Spec{Kind: KindLitmus, Cells: 1}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					svc.List()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if _, err := svc.Submit(litmus, "race"); err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	if len(svc.List()) == 0 {
		t.Fatal("List saw no campaigns")
	}
}

// A full admission queue rejects with ErrQueueFull (HTTP: 429 +
// Retry-After) and a patient client absorbs the backpressure without
// losing the campaign.
func TestServiceBackpressure(t *testing.T) {
	release := make(chan struct{})
	svc, base := startDaemon(t, Options{Queue: 1, Workers: 1})
	svc.testRun = func(c *Campaign) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{"ok":true}`), nil
	}
	litmus := Spec{Kind: KindLitmus, Cells: 1}

	// c1 occupies the single worker; c2 fills the queue.
	c1, err := svc.Submit(litmus, "t")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c1, StateRunning)
	if _, err := svc.Submit(litmus, "t"); err != nil {
		t.Fatal(err)
	}

	// The queue is full: direct Submit gets the typed error, HTTP gets
	// 429 with a positive Retry-After.
	if _, err := svc.Submit(litmus, "t"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: err=%v, want ErrQueueFull", err)
	}
	cli := &Client{Base: base, ID: "t"}
	_, err = cli.Submit(context.Background(), litmus)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("HTTP submit on full queue: err=%v, want *BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Fatalf("429 without a Retry-After hint: %+v", busy)
	}

	// A patient client retries through the backpressure and completes.
	done := make(chan error, 1)
	go func() {
		v, rejected, err := cli.SubmitWait(context.Background(), litmus, 2*time.Millisecond)
		if err == nil && rejected == 0 {
			err = errors.New("SubmitWait was never rejected — queue did not backpressure")
		}
		if err == nil && v.State != StateDone {
			err = errors.New("campaign ended " + v.State)
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it absorb at least one 429
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.Rejected == 0 {
		t.Fatalf("stats recorded no rejections: %+v", st)
	}
	if lost := st.Failed + st.Aborted; lost != 0 {
		t.Fatalf("campaigns lost under backpressure: %+v", st)
	}
}

// Shutdown drains running campaigns to completion and aborts queued ones
// with a terminal state; submissions after shutdown are refused.
func TestServiceGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	svc, _ := startDaemon(t, Options{Queue: 4, Workers: 1})
	svc.testRun = func(c *Campaign) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`{}`), nil
	}
	litmus := Spec{Kind: KindLitmus, Cells: 1}

	c1, err := svc.Submit(litmus, "t")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c1, StateRunning)
	c2, err := svc.Submit(litmus, "t")
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-closed; err != nil {
		t.Fatal(err)
	}

	if c1.State() != StateDone {
		t.Fatalf("running campaign not drained: %s", c1.State())
	}
	if c2.State() != StateAborted {
		t.Fatalf("queued campaign not aborted: %s", c2.State())
	}
	if _, err := svc.Submit(litmus, "t"); !errors.Is(err, ErrClosing) {
		t.Fatalf("post-shutdown submit: err=%v, want ErrClosing", err)
	}
}
