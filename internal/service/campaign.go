package service

import (
	"encoding/json"
	"sync"
	"time"

	"cwsp/internal/runner"
)

// Campaign states. A campaign moves queued → running → done/failed; a
// campaign still queued when the daemon shuts down is aborted (never
// silently dropped — the terminal state records what happened).
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateAborted = "aborted"
)

// Campaign is one admitted campaign: its spec, lifecycle, per-campaign
// pace (a dedicated runner.Progress shared with every pool the campaign
// builds), and — once done — its result payload.
type Campaign struct {
	ID       string
	Spec     Spec
	ClientID string

	// Progress is the campaign's own pace: the service injects it into the
	// campaign's pools, so done/total, hit ratio, and ETA stay readable at
	// /api/v1/campaigns/{id}/progress while the campaign runs.
	Progress *runner.Progress

	// recovered marks a campaign restored from the durable journal at boot
	// (terminal ones come back with their results; non-terminal ones are
	// re-admitted and re-run against the warm cache).
	recovered bool

	mu        sync.Mutex
	state     string
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    json.RawMessage
	errMsg    string

	// done is closed on any terminal state (in-process waiters).
	done chan struct{}
}

func newCampaign(id string, spec Spec, clientID string) *Campaign {
	return &Campaign{
		ID: id, Spec: spec, ClientID: clientID,
		Progress:  runner.NewProgress(),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// campaignFromEntry rebuilds a campaign from its folded journal entry:
// terminal entries come back terminal (done channel closed, result
// attached); non-terminal entries come back queued for re-admission.
func campaignFromEntry(e JournalEntry) *Campaign {
	c := &Campaign{
		ID: e.ID, Spec: e.Spec, ClientID: e.ClientID,
		Progress:  runner.NewProgress(),
		state:     StateQueued,
		recovered: true,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if e.SubmittedNS != 0 {
		c.submitted = time.Unix(0, e.SubmittedNS)
	}
	if e.StartedNS != 0 {
		c.started = time.Unix(0, e.StartedNS)
	}
	if Terminal(e.State) {
		c.state = e.State
		c.errMsg = e.Err
		c.result = e.Result
		if e.FinishedNS != 0 {
			c.finished = time.Unix(0, e.FinishedNS)
		}
		close(c.done)
	}
	return c
}

// State returns the current lifecycle state.
func (c *Campaign) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Result returns the result payload and error message (result is nil
// until StateDone).
func (c *Campaign) Result() (json.RawMessage, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result, c.errMsg
}

func (c *Campaign) setRunning() time.Time {
	c.mu.Lock()
	c.state = StateRunning
	c.started = time.Now()
	started := c.started
	c.mu.Unlock()
	// Pace and ETA measure execution, not time spent queued.
	c.Progress.Restart()
	return started
}

func (c *Campaign) finish(result json.RawMessage, err error) time.Time {
	c.mu.Lock()
	c.finished = time.Now()
	finished := c.finished
	if err != nil {
		c.state = StateFailed
		c.errMsg = err.Error()
	} else {
		c.state = StateDone
		c.result = result
	}
	c.mu.Unlock()
	close(c.done)
	return finished
}

// abort moves a still-queued campaign to StateAborted; it reports whether
// the transition happened (false: the campaign already left the queue, and
// the caller must not count or journal a second terminal state for it).
func (c *Campaign) abort(reason string) (time.Time, bool) {
	c.mu.Lock()
	if c.state != StateQueued {
		c.mu.Unlock()
		return time.Time{}, false
	}
	c.state = StateAborted
	c.finished = time.Now()
	finished := c.finished
	c.errMsg = reason
	c.mu.Unlock()
	close(c.done)
	return finished, true
}

// View is the wire form of a campaign (result payload served separately —
// it can be large).
type View struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	ClientID string `json:"client_id,omitempty"`
	Spec     Spec   `json:"spec"`
	// Recovered marks a campaign restored from the durable journal after a
	// daemon restart.
	Recovered bool `json:"recovered,omitempty"`

	SubmittedNS int64 `json:"submitted_ns"`
	StartedNS   int64 `json:"started_ns,omitempty"`
	FinishedNS  int64 `json:"finished_ns,omitempty"`

	Progress runner.ProgressSnapshot `json:"progress"`
	Error    string                  `json:"error,omitempty"`
	// ResultBytes sizes the payload at /campaigns/{id}/result (0 until
	// done).
	ResultBytes int `json:"result_bytes,omitempty"`
}

// View snapshots the campaign for the HTTP API.
func (c *Campaign) View() View {
	c.mu.Lock()
	v := View{
		ID: c.ID, Kind: c.Spec.Kind, State: c.state, ClientID: c.ClientID,
		Spec:        c.Spec,
		Recovered:   c.recovered,
		SubmittedNS: c.submitted.UnixNano(),
		Error:       c.errMsg,
		ResultBytes: len(c.result),
	}
	if !c.started.IsZero() {
		v.StartedNS = c.started.UnixNano()
	}
	if !c.finished.IsZero() {
		v.FinishedNS = c.finished.UnixNano()
	}
	c.mu.Unlock()
	v.Progress = c.Progress.Snapshot()
	return v
}

// Terminal reports whether a state is terminal.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateAborted
}
