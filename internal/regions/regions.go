// Package regions implements cWSP's idempotent region formation
// (Section IV-A of the paper, following De Kruijf's idempotent code
// generation): it partitions every function into regions that are free of
// intra-region memory antidependence (write-after-read), so that any region
// can be re-executed from its entry after a power failure and produce the
// same machine state.
//
// Boundary placement:
//
//   - the function entry (so a dynamic region never spans a call into a
//     callee body),
//   - immediately before and after every call site, allocation,
//     synchronization operation (atomics, fences) and emit — matching the
//     paper's treatment of call sites and synchronization points,
//   - at every natural-loop header (one region per iteration),
//   - before any store that would otherwise complete a may-alias
//     load-then-store (antidependence) pair inside one region — a greedy
//     sound approximation of the paper's hitting-set cut selection: cutting
//     directly before the offending store severs every antidependence ending
//     at that store at once.
//
// The transform rewrites each function in place, inserting ir.OpBoundary
// instructions with function-unique RegionIDs, and returns placement
// statistics.
package regions

import (
	"sort"

	"cwsp/internal/analysis"
	"cwsp/internal/ir"
)

// Stats reports why boundaries were placed.
type Stats struct {
	Total        int // all boundaries, including the entry boundary
	Entry        int
	CallLike     int // before/after calls, allocs, atomics, fences, emits
	LoopHeaders  int
	AntidepCuts  int
	AntidepPairs int // may-alias load->store pairs observed before cutting
}

// Form partitions f into idempotent regions, mutating it, and returns
// placement statistics. Region IDs are assigned in block/instruction order
// starting at 0 (the entry boundary).
func Form(f *ir.Function) Stats {
	var st Stats

	// Strip any boundaries from a previous Form so the transform is
	// idempotent.
	for _, b := range f.Blocks {
		out := b.Instrs[:0]
		for ii := range b.Instrs {
			if b.Instrs[ii].Op != ir.OpBoundary {
				out = append(out, b.Instrs[ii])
			}
		}
		b.Instrs = out
	}
	f.NumRegions = 0
	f.Slices = nil

	cfg := analysis.BuildCFG(f)
	dom := analysis.Dominators(cfg)
	headers := analysis.LoopHeaders(cfg, dom)

	// cuts[block] = set of instruction indices i such that a boundary goes
	// immediately before Instrs[i] (indices in the *original* function).
	cuts := make([]map[int]bool, len(f.Blocks))
	for i := range cuts {
		cuts[i] = map[int]bool{}
	}
	addCut := func(b, i int) bool {
		if cuts[b][i] {
			return false
		}
		cuts[b][i] = true
		return true
	}

	// Entry boundary.
	addCut(0, 0)
	st.Entry = 1

	// Loop headers.
	for h := range headers {
		if addCut(h, 0) {
			st.LoopHeaders++
		}
	}

	// Call-like boundaries: before and after each inherently-bounding op.
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if !in.IsBoundaryOp() {
				continue
			}
			if addCut(bi, ii) {
				st.CallLike++
			}
			if ii+1 < len(b.Instrs) {
				if addCut(bi, ii+1) {
					st.CallLike++
				}
			}
			// A boundary op at block end: its successors begin new regions
			// only if they have a cut; since the op is second-to-last at
			// most (terminators are never boundary ops), ii+1 always exists.
		}
	}

	// Antidependence cutting. Iterate to fixpoint because each added cut
	// clears the reaching-load set at that point.
	alias := analysis.ComputeAlias(f)
	for {
		added, pairs := antidepPass(f, cfg, alias, cuts, addCut)
		st.AntidepPairs += pairs
		st.AntidepCuts += added
		if added == 0 {
			break
		}
	}

	// Rewrite the function with boundary instructions inserted.
	id := 0
	for bi, b := range f.Blocks {
		if len(cuts[bi]) == 0 {
			continue
		}
		idxs := make([]int, 0, len(cuts[bi]))
		for i := range cuts[bi] {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		out := make([]ir.Instr, 0, len(b.Instrs)+len(idxs))
		k := 0
		for ii := range b.Instrs {
			for k < len(idxs) && idxs[k] == ii {
				out = append(out, ir.Instr{Op: ir.OpBoundary})
				k++
			}
			out = append(out, b.Instrs[ii])
		}
		b.Instrs = out
	}
	// Assign region ids in final program order (block order, then index).
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpBoundary {
				b.Instrs[ii].RegionID = id
				id++
			}
		}
	}
	f.NumRegions = id
	st.Total = id
	return st
}

// antidepPass runs the reaching-loads dataflow once and adds a cut before
// every store that may alias a load reachable since the last boundary.
// Returns the number of cuts added and antidependence pairs seen.
//
// Domain: set of load positions (as analysis.MemRef) that have executed
// since the most recent boundary on some path to the current point.
// Boundary ops and cut points clear the set.
func antidepPass(
	f *ir.Function,
	cfg *analysis.CFG,
	alias *analysis.AliasInfo,
	cuts []map[int]bool,
	addCut func(b, i int) bool,
) (added, pairs int) {
	n := len(f.Blocks)
	in := make([]map[analysis.MemRef]bool, n)
	out := make([]map[analysis.MemRef]bool, n)
	for i := 0; i < n; i++ {
		in[i] = map[analysis.MemRef]bool{}
		out[i] = map[analysis.MemRef]bool{}
	}

	transfer := func(bi int, start map[analysis.MemRef]bool, record bool) map[analysis.MemRef]bool {
		cur := map[analysis.MemRef]bool{}
		for k := range start {
			cur[k] = true
		}
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			if cuts[bi][ii] {
				cur = map[analysis.MemRef]bool{}
			}
			inst := &b.Instrs[ii]
			if inst.IsBoundaryOp() {
				// Call-like ops have cuts on both sides already; they also
				// clear reaching loads themselves (their region is
				// persisted synchronously by the hardware).
				cur = map[analysis.MemRef]bool{}
				continue
			}
			if inst.Op == ir.OpStore {
				ref := analysis.MemRef{Block: bi, Index: ii}
				hit := false
				for l := range cur {
					if alias.MayAlias(l, ref) {
						hit = true
						if record {
							pairs++
						}
					}
				}
				if hit {
					if record && addCut(bi, ii) {
						added++
					}
					cur = map[analysis.MemRef]bool{}
				}
			}
			if inst.Op == ir.OpLoad {
				cur[analysis.MemRef{Block: bi, Index: ii}] = true
			}
		}
		return cur
	}

	// Fixpoint without recording, then one recording pass.
	changed := true
	for changed {
		changed = false
		for _, bi := range cfg.RPO {
			merged := map[analysis.MemRef]bool{}
			for _, p := range cfg.Preds[bi] {
				for k := range out[p] {
					merged[k] = true
				}
			}
			in[bi] = merged
			nout := transfer(bi, merged, false)
			if !refSetEq(nout, out[bi]) {
				out[bi] = nout
				changed = true
			}
		}
	}
	for _, bi := range cfg.RPO {
		transfer(bi, in[bi], true)
	}
	return added, pairs
}

func refSetEq(a, b map[analysis.MemRef]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Boundaries lists the positions of all boundary instructions in f
// (post-Form), in region-id order.
func Boundaries(f *ir.Function) []ir.InstrRef {
	out := make([]ir.InstrRef, f.NumRegions)
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpBoundary {
				out[b.Instrs[ii].RegionID] = ir.InstrRef{Block: bi, Index: ii}
			}
		}
	}
	return out
}
