package regions

import (
	"fmt"
	"testing"

	"cwsp/internal/ir"
	"cwsp/internal/progen"
)

// formProgram clones p and forms regions in every function.
func formProgram(p *ir.Program) (*ir.Program, map[string]Stats) {
	q := p.Clone()
	st := map[string]Stats{}
	for name, f := range q.Funcs {
		st[name] = Form(f)
	}
	return q, st
}

func TestPaperFig4aCut(t *testing.T) {
	// r2 = ldr [r0]; ...; str r1, [r0] — the antidependence pair from the
	// paper's Figure 4(a) must end up in different regions.
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	p0 := fb.Alloc(8)
	v := fb.Load(ir.R(p0), 0)
	w := fb.Add(ir.R(v), ir.Imm(1))
	fb.Store(ir.R(w), ir.R(p0), 0)
	fb.Ret(ir.R(w))
	prog := ir.NewProgram("fig4a")
	prog.Add(fb.MustDone())
	prog.Entry = "main"

	q, st := formProgram(prog)
	if st["main"].AntidepCuts < 1 {
		t.Fatalf("expected at least one antidependence cut, got %+v", st["main"])
	}
	// Between the load and the store there must be a boundary.
	f := q.Funcs["main"]
	loadSeen, boundaryBetween := false, false
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpLoad:
				loadSeen = true
			case ir.OpBoundary:
				if loadSeen {
					boundaryBetween = true
				}
			case ir.OpStore:
				if loadSeen && !boundaryBetween {
					t.Fatal("store follows load with no boundary in between")
				}
			}
		}
	}
}

func TestLoopHeaderBoundary(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.SetBlock(entry)
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(10))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	prog := ir.NewProgram("loop")
	prog.Add(fb.MustDone())
	prog.Entry = "main"

	q, st := formProgram(prog)
	if st["main"].LoopHeaders != 1 {
		t.Fatalf("loop header boundaries = %d, want 1", st["main"].LoopHeaders)
	}
	if q.Funcs["main"].Blocks[head.Index].Instrs[0].Op != ir.OpBoundary {
		t.Fatal("loop header does not start with a boundary")
	}
}

func TestCallBoundaries(t *testing.T) {
	leaf := ir.NewFunc("leaf", 0)
	leaf.NewBlock("entry")
	leaf.RetVoid()
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Const(1)
	fb.Call("leaf")
	b := fb.Add(ir.R(a), ir.Imm(1))
	fb.Ret(ir.R(b))
	prog := ir.NewProgram("call")
	prog.Add(leaf.MustDone())
	prog.Add(fb.MustDone())
	prog.Entry = "main"

	q, _ := formProgram(prog)
	instrs := q.Funcs["main"].Blocks[0].Instrs
	for i := range instrs {
		if instrs[i].Op == ir.OpCall {
			if i == 0 || instrs[i-1].Op != ir.OpBoundary {
				t.Error("no boundary immediately before call")
			}
			if i+1 >= len(instrs) || instrs[i+1].Op != ir.OpBoundary {
				t.Error("no boundary immediately after call")
			}
		}
	}
	// Callee gets an entry boundary.
	if q.Funcs["leaf"].Blocks[0].Instrs[0].Op != ir.OpBoundary {
		t.Error("callee entry has no boundary")
	}
}

func TestEntryBoundaryAndIDs(t *testing.T) {
	p := progen.Generate(7, progen.DefaultConfig())
	q, _ := formProgram(p)
	for name, f := range q.Funcs {
		if f.Blocks[0].Instrs[0].Op != ir.OpBoundary {
			t.Errorf("%s: first instruction is not the entry boundary", name)
		}
		refs := Boundaries(f)
		if len(refs) != f.NumRegions {
			t.Fatalf("%s: %d boundary refs, NumRegions=%d", name, len(refs), f.NumRegions)
		}
		for id, ref := range refs {
			in := f.Blocks[ref.Block].Instrs[ref.Index]
			if in.Op != ir.OpBoundary || in.RegionID != id {
				t.Errorf("%s: boundary ref %d mismatched", name, id)
			}
		}
	}
}

func TestFormPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		q, _ := formProgram(p)
		got, err := ir.Interp(q, nil, 0)
		if err != nil {
			t.Fatalf("seed %d (formed): %v", seed, err)
		}
		if got.RetVal != want.RetVal {
			t.Errorf("seed %d: ret %d != %d", seed, got.RetVal, want.RetVal)
		}
		if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
			t.Errorf("seed %d: output %v != %v", seed, got.Output, want.Output)
		}
		if fmt.Sprint(got.Mem.Snapshot()) != fmt.Sprint(want.Mem.Snapshot()) {
			t.Errorf("seed %d: final memory differs", seed)
		}
	}
}

// TestDynamicIdempotence is the core soundness property: executing the
// formed program, within every dynamic window between consecutive region
// boundaries (call-like synchronizing ops count as boundaries — the
// hardware persists them synchronously), no store may write a word that an
// earlier instruction of the same window loaded.
func TestDynamicIdempotence(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _ := formProgram(p)

		loaded := map[int64]bool{}
		violations := 0
		hook := func(f *ir.Function, ref ir.InstrRef, in *ir.Instr, regs []int64) {
			switch in.Op {
			case ir.OpBoundary, ir.OpCall, ir.OpAlloc, ir.OpAtomicCAS, ir.OpAtomicAdd,
				ir.OpAtomicXchg, ir.OpFence, ir.OpEmit:
				loaded = map[int64]bool{}
			case ir.OpLoad:
				loaded[ir.EffAddr(in, regs)] = true
			case ir.OpStore:
				if loaded[ir.EffAddr(in, regs)] {
					violations++
					t.Errorf("seed %d: store to %#x overwrites word loaded in same region (%s at b%d[%d])",
						seed, ir.EffAddr(in, regs), f.Name, ref.Block, ref.Index)
				}
			}
		}
		if _, err := ir.InterpTraced(q, nil, 5_000_000, ir.NewFlatMem(), hook); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violations > 0 {
			return // one seed's detail is enough
		}
	}
}

func TestPureFunctionSingleRegion(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Const(2)
	b := fb.Mul(ir.R(a), ir.Imm(21))
	fb.Ret(ir.R(b))
	prog := ir.NewProgram("pure")
	prog.Add(fb.MustDone())
	prog.Entry = "main"
	_, st := formProgram(prog)
	if st["main"].Total != 1 {
		t.Errorf("pure straight-line code should have exactly the entry region, got %+v", st["main"])
	}
}

func TestStatsConsistency(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		_, stats := formProgram(p)
		for name, st := range stats {
			if st.Total < 1 {
				t.Errorf("seed %d %s: no regions at all", seed, name)
			}
			if st.Total < st.Entry {
				t.Errorf("seed %d %s: inconsistent stats %+v", seed, name, st)
			}
		}
	}
}

func TestFormIsIdempotentTransform(t *testing.T) {
	// Forming an already-formed function must not add more boundaries
	// (existing boundaries clear antidependence windows; boundary ops are
	// already bracketed).
	p := progen.Generate(3, progen.DefaultConfig())
	q, _ := formProgram(p)
	r, _ := formProgram(q)
	for name := range q.Funcs {
		n1 := q.Funcs[name].NumRegions
		n2 := r.Funcs[name].NumRegions
		if n2 > n1*2+2 {
			t.Errorf("%s: reforming exploded regions: %d -> %d", name, n1, n2)
		}
	}
}

// TestSingleCutCoversMultipleAntideps: several loads followed by one store
// that aliases all of them need only one cut (before the store), not one
// per pair — the hitting-set intuition.
func TestSingleCutCoversMultipleAntideps(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	p := fb.Alloc(64)
	a := fb.Load(ir.R(p), 0)
	b := fb.Load(ir.R(p), 0)
	c := fb.Load(ir.R(p), 0)
	s := fb.Add(ir.R(a), ir.R(b))
	s2 := fb.Add(ir.R(s), ir.R(c))
	fb.Store(ir.R(s2), ir.R(p), 0) // antidep with all three loads
	fb.Ret(ir.R(s2))
	prog := ir.NewProgram("multi")
	prog.Add(fb.MustDone())
	prog.Entry = "main"
	_, st := formProgram(prog)
	if st["main"].AntidepCuts != 1 {
		t.Errorf("cuts = %d, want exactly 1 (one cut severs all three pairs)", st["main"].AntidepCuts)
	}
	if st["main"].AntidepPairs < 3 {
		t.Errorf("pairs = %d, want >= 3", st["main"].AntidepPairs)
	}
}

// TestNoCutForDisjointAccess: load and store to provably different words
// need no cut.
func TestNoCutForDisjointAccess(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	p := fb.Alloc(64)
	v := fb.Load(ir.R(p), 0)
	fb.Store(ir.R(v), ir.R(p), 8) // different word, same base, no redef
	fb.Ret(ir.R(v))
	prog := ir.NewProgram("disjoint")
	prog.Add(fb.MustDone())
	prog.Entry = "main"
	_, st := formProgram(prog)
	if st["main"].AntidepCuts != 0 {
		t.Errorf("cuts = %d, want 0 for provably disjoint words", st["main"].AntidepCuts)
	}
}

// TestFormIsIdempotent: forming an already-formed function must strip the
// old boundaries and reproduce exactly the same ones — identical boundary
// positions, region ids, and statistics — across many generated programs.
func TestFormIsIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, first := formProgram(p)
		for name, f := range q.Funcs {
			b1 := Boundaries(f)
			ids1 := boundaryIDs(f)
			st2 := Form(f)
			if st2 != first[name] {
				t.Fatalf("seed %d %s: second Form stats %+v != first %+v", seed, name, st2, first[name])
			}
			b2 := Boundaries(f)
			if fmt.Sprint(b1) != fmt.Sprint(b2) {
				t.Fatalf("seed %d %s: boundary positions changed on re-Form:\n%v\n%v", seed, name, b1, b2)
			}
			if fmt.Sprint(ids1) != fmt.Sprint(boundaryIDs(f)) {
				t.Fatalf("seed %d %s: region ids changed on re-Form", seed, name)
			}
		}
	}
}

// TestFormAssignsDenseIDs: region ids must be exactly 0..NumRegions-1, each
// appearing on exactly one boundary, in program order.
func TestFormAssignsDenseIDs(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _ := formProgram(p)
		for name, f := range q.Funcs {
			ids := boundaryIDs(f)
			if len(ids) != f.NumRegions {
				t.Fatalf("seed %d %s: %d boundaries but NumRegions=%d", seed, name, len(ids), f.NumRegions)
			}
			for want, got := range ids {
				if got != want {
					t.Fatalf("seed %d %s: region ids not dense in program order: %v", seed, name, ids)
				}
			}
		}
	}
}

// boundaryIDs returns the region ids of f's boundaries in program order.
func boundaryIDs(f *ir.Function) []int {
	var ids []int
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpBoundary {
				ids = append(ids, b.Instrs[ii].RegionID)
			}
		}
	}
	return ids
}
