package progen

import (
	"testing"

	"cwsp/internal/ir"
)

func TestGenerateVerifiesAndRuns(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, DefaultConfig())
		if err := ir.VerifyProgram(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := ir.Interp(p, nil, 5_000_000); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if a.Dump() != b.Dump() {
		t.Fatal("same seed produced different programs")
	}
	ra, err := ir.Interp(a, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ir.Interp(b, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.RetVal != rb.RetVal {
		t.Fatalf("nondeterministic results: %d vs %d", ra.RetVal, rb.RetVal)
	}
}

func TestGenerateShapeVariety(t *testing.T) {
	var sawLoop, sawCall, sawStore, sawAtomic, sawBranch bool
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, DefaultConfig())
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					switch b.Instrs[i].Op {
					case ir.OpCall:
						sawCall = true
					case ir.OpStore:
						sawStore = true
					case ir.OpAtomicAdd:
						sawAtomic = true
					case ir.OpBr:
						sawBranch = true
					}
				}
			}
		}
		c := 0
		for _, f := range p.Funcs {
			c += len(f.Blocks)
		}
		if c > 3 {
			sawLoop = true
		}
	}
	if !sawLoop || !sawCall || !sawStore || !sawAtomic || !sawBranch {
		t.Errorf("missing shapes: loop=%v call=%v store=%v atomic=%v branch=%v",
			sawLoop, sawCall, sawStore, sawAtomic, sawBranch)
	}
}
