// Package progen generates random — but deterministic, terminating, and
// verifier-clean — IR programs. The compiler, region-formation, checkpoint,
// and recovery test suites use it to property-test their invariants against
// program shapes nobody wrote by hand.
package progen

import (
	"fmt"
	"math/rand"

	"cwsp/internal/ir"
)

// Config bounds the generated program shape.
type Config struct {
	MaxFuncs     int // leaf functions callable from main (>=0)
	MaxStmts     int // statement budget per function body
	MaxLoopDepth int
	MaxLoopTrip  int64 // maximum constant trip count
	Arrays       int   // heap arrays allocated in main
	ArrayWords   int64 // words per array
	Atomics      bool  // include atomic ops
	Emits        bool  // include emit ops
}

// DefaultConfig returns a moderate shape.
func DefaultConfig() Config {
	return Config{
		MaxFuncs:     2,
		MaxStmts:     16,
		MaxLoopDepth: 2,
		MaxLoopTrip:  6,
		Arrays:       3,
		ArrayWords:   16,
		Atomics:      true,
		Emits:        true,
	}
}

type gen struct {
	rng *rand.Rand
	cfg Config
	p   *ir.Program
}

// Generate builds a random program from the seed. The entry function is
// "main" (no params); it allocates cfg.Arrays arrays, runs random
// statements over them, emits a digest of every array, and returns a
// checksum, so both memory effects and control decisions feed the
// observable result.
func Generate(seed int64, cfg Config) *ir.Program {
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.p = ir.NewProgram(fmt.Sprintf("gen-%d", seed))
	g.p.Entry = "main"

	nf := 0
	if cfg.MaxFuncs > 0 {
		nf = g.rng.Intn(cfg.MaxFuncs + 1)
	}
	leafNames := make([]string, 0, nf)
	for i := 0; i < nf; i++ {
		name := fmt.Sprintf("leaf%d", i)
		g.p.Add(g.leaf(name))
		leafNames = append(leafNames, name)
	}
	g.p.Add(g.mainFunc(leafNames))
	if err := ir.VerifyProgram(g.p); err != nil {
		panic(fmt.Sprintf("progen: generated invalid program: %v", err))
	}
	return g.p
}

// bodyCtx carries state while generating one function body.
type bodyCtx struct {
	fb     *ir.FuncBuilder
	arrays []ir.Reg // registers holding array base addresses
	vals   []ir.Reg // scalar registers definitely assigned at this point
	leaves []string
	depth  int
	budget int
}

// leaf builds a callable function: leaf(arr, x) operating on one array.
func (g *gen) leaf(name string) *ir.Function {
	fb := ir.NewFunc(name, 2)
	fb.NewBlock("entry")
	ctx := &bodyCtx{
		fb:     fb,
		arrays: []ir.Reg{fb.Param(0)},
		vals:   []ir.Reg{fb.Param(1)},
		budget: g.cfg.MaxStmts / 2,
	}
	g.stmts(ctx)
	fb.Ret(ir.R(ctx.vals[g.rng.Intn(len(ctx.vals))]))
	return fb.MustDone()
}

func (g *gen) mainFunc(leaves []string) *ir.Function {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	ctx := &bodyCtx{fb: fb, leaves: leaves, budget: g.cfg.MaxStmts}

	for i := 0; i < g.cfg.Arrays; i++ {
		ctx.arrays = append(ctx.arrays, fb.Alloc(g.cfg.ArrayWords*8))
	}
	ctx.vals = append(ctx.vals, fb.Const(int64(g.rng.Intn(100))))

	g.stmts(ctx)

	// Digest every array into a checksum so final memory feeds the result.
	sum := fb.Const(0)
	for _, a := range ctx.arrays {
		for w := int64(0); w < g.cfg.ArrayWords; w += 3 {
			v := fb.Load(ir.R(a), w*8)
			x := fb.Mul(ir.R(sum), ir.Imm(31))
			fb.BinInto(ir.OpAdd, sum, ir.R(x), ir.R(v))
		}
	}
	if g.cfg.Emits {
		fb.Emit(ir.R(sum))
	}
	fb.Ret(ir.R(sum))
	return fb.MustDone()
}

// stmts consumes the remaining budget emitting random statements.
func (g *gen) stmts(ctx *bodyCtx) {
	for ctx.budget > 0 {
		ctx.budget--
		g.stmt(ctx)
	}
}

func (g *gen) stmt(ctx *bodyCtx) {
	fb := ctx.fb
	switch k := g.rng.Intn(10); {
	case k <= 2: // arithmetic
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpAnd, ir.OpOr}
		ctx.vals = append(ctx.vals, fb.Bin(ops[g.rng.Intn(len(ops))], g.val(ctx), g.val(ctx)))
	case k == 3: // store
		if len(ctx.arrays) == 0 {
			g.arith(ctx)
			return
		}
		fb.Store(g.val(ctx), ir.R(g.arr(ctx)), g.off())
	case k == 4: // load
		if len(ctx.arrays) == 0 {
			g.arith(ctx)
			return
		}
		ctx.vals = append(ctx.vals, fb.Load(ir.R(g.arr(ctx)), g.off()))
	case k == 5: // read-modify-write (classic antidependence source)
		if len(ctx.arrays) == 0 {
			g.arith(ctx)
			return
		}
		arr := g.arr(ctx)
		off := g.off()
		r := fb.Load(ir.R(arr), off)
		r2 := fb.Add(ir.R(r), g.val(ctx))
		fb.Store(ir.R(r2), ir.R(arr), off)
		ctx.vals = append(ctx.vals, r2)
	case k == 6: // counted loop
		if ctx.depth >= g.cfg.MaxLoopDepth || ctx.budget < 2 {
			g.arith(ctx)
			return
		}
		g.loop(ctx)
	case k == 7: // if/else diamond
		if ctx.budget < 2 {
			g.arith(ctx)
			return
		}
		g.diamond(ctx)
	case k == 8: // call a leaf
		if len(ctx.leaves) > 0 && len(ctx.arrays) > 0 {
			leaf := ctx.leaves[g.rng.Intn(len(ctx.leaves))]
			ctx.vals = append(ctx.vals, fb.Call(leaf, ir.R(g.arr(ctx)), g.val(ctx)))
			return
		}
		fallthrough
	default: // atomic, emit, or arithmetic
		if g.cfg.Atomics && len(ctx.arrays) > 0 && g.rng.Intn(2) == 0 {
			ctx.vals = append(ctx.vals, fb.AtomicAdd(ir.R(g.arr(ctx)), g.off(), g.val(ctx)))
			return
		}
		if g.cfg.Emits && g.rng.Intn(3) == 0 {
			fb.Emit(g.val(ctx))
			return
		}
		g.arith(ctx)
	}
}

func (g *gen) arith(ctx *bodyCtx) {
	ctx.vals = append(ctx.vals, ctx.fb.Add(g.val(ctx), ir.Imm(int64(g.rng.Intn(7)))))
}

// loop generates: i = 0; while i < trip { <body stmts>; i++ }.
// Registers defined inside the body are scoped out afterwards so later code
// never reads a maybe-unassigned register.
func (g *gen) loop(ctx *bodyCtx) {
	fb := ctx.fb
	trip := 1 + g.rng.Int63n(g.cfg.MaxLoopTrip)
	i := fb.Reg()
	fb.ConstInto(i, 0)

	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)

	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(trip))
	fb.Br(ir.R(c), body, exit)

	fb.SetBlock(body)
	save := len(ctx.vals)
	n := 1 + g.rng.Intn(3)
	ctx.depth++
	for j := 0; j < n && ctx.budget > 0; j++ {
		ctx.budget--
		g.stmt(ctx)
	}
	ctx.depth--
	ctx.vals = ctx.vals[:save]
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)

	fb.SetBlock(exit)
	// The loop counter is definitely assigned after the loop.
	ctx.vals = append(ctx.vals, i)
}

// diamond generates if cond { stmt } else { stmt }.
func (g *gen) diamond(ctx *bodyCtx) {
	fb := ctx.fb
	cond := g.val(ctx)
	thenB := fb.AddBlock("then")
	elseB := fb.AddBlock("else")
	joinB := fb.AddBlock("join")
	fb.Br(cond, thenB, elseB)

	// A register assigned in *both* arms is definitely assigned at the
	// join; write one such merge register to keep joins interesting.
	merged := fb.Reg()

	fb.SetBlock(thenB)
	save := len(ctx.vals)
	if ctx.budget > 0 {
		ctx.budget--
		g.stmt(ctx)
	}
	fb.Mov(merged, g.val(ctx))
	ctx.vals = ctx.vals[:save]
	fb.Jmp(joinB)

	fb.SetBlock(elseB)
	save = len(ctx.vals)
	if ctx.budget > 0 {
		ctx.budget--
		g.stmt(ctx)
	}
	fb.Mov(merged, g.val(ctx))
	ctx.vals = ctx.vals[:save]
	fb.Jmp(joinB)

	fb.SetBlock(joinB)
	ctx.vals = append(ctx.vals, merged)
}

// off picks a random word-aligned in-bounds array offset.
func (g *gen) off() int64 {
	return g.rng.Int63n(g.cfg.ArrayWords) * 8
}

// arr picks a random array base register.
func (g *gen) arr(ctx *bodyCtx) ir.Reg {
	return ctx.arrays[g.rng.Intn(len(ctx.arrays))]
}

// val picks a random scalar operand: an existing value register or an
// immediate.
func (g *gen) val(ctx *bodyCtx) ir.Operand {
	if len(ctx.vals) > 0 && g.rng.Intn(3) != 0 {
		return ir.R(ctx.vals[g.rng.Intn(len(ctx.vals))])
	}
	return ir.Imm(int64(g.rng.Intn(50)))
}
