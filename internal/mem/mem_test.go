package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPagedMemBasic(t *testing.T) {
	m := NewPagedMem()
	if m.Load(0x1234560) != 0 {
		t.Error("fresh memory should read 0")
	}
	m.Store(0x1234560, 42)
	if m.Load(0x1234560) != 42 {
		t.Error("store/load roundtrip failed")
	}
	m.Store(0x1234560, 0)
	if m.Load(0x1234560) != 0 {
		t.Error("overwrite with zero failed")
	}
}

func TestPagedMemQuickRoundtrip(t *testing.T) {
	f := func(addrs []int64, vals []int64) bool {
		m := NewPagedMem()
		ref := map[int64]int64{}
		for i, a := range addrs {
			a &= 0xFFFF_FFF8
			if a < 0 {
				a = -a
			}
			v := int64(i)
			if i < len(vals) {
				v = vals[i]
			}
			m.Store(a, v)
			ref[a&^7] = v
		}
		for a, v := range ref {
			if m.Load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagedMemCloneAndEqual(t *testing.T) {
	m := NewPagedMem()
	for i := int64(0); i < 1000; i++ {
		m.Store(i*8, i*i)
	}
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Store(80, 999)
	if m.Equal(c) {
		t.Fatal("modified clone still equal")
	}
	if m.Load(80) == 999 {
		t.Fatal("clone shares storage")
	}
	d := m.Diff(c, 10)
	if len(d) != 1 || d[0] != 80 {
		t.Errorf("diff = %v, want [80]", d)
	}
}

func TestPagedMemZeroPageEqualsAbsent(t *testing.T) {
	a := NewPagedMem()
	b := NewPagedMem()
	a.Store(0x5000, 7)
	a.Store(0x5000, 0) // page exists, all zero
	if !a.Equal(b) {
		t.Error("zero-filled page should equal absent page")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("l1", 1024, 2, 64) // 16 lines, 8 sets
	hit, _ := c.Access(0, false)
	if hit {
		t.Error("first access should miss")
	}
	hit, _ = c.Access(8, false) // same line
	if !hit {
		t.Error("same-line access should hit")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("l1", 2*64*2, 2, 64) // 2 sets, 2 ways
	// Three lines mapping to the same set: 0, 2*64, 4*64 (set = line % 2).
	c.Access(0, true) // dirty
	c.Access(2*64, false)
	c.Access(0, false) // touch line 0 so line 2*64 is LRU
	_, ev := c.Access(4*64, false)
	if !ev.Valid || ev.Line != 2 || ev.Dirty {
		t.Errorf("eviction = %+v, want clean line 2", ev)
	}
	// Line 0 must still be present and dirty.
	if !c.Lookup(0) {
		t.Error("LRU evicted the wrong line")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := NewCache("l1", 2*64*2, 2, 64)
	c.Access(0, true)
	c.Access(2*64, true)
	_, ev := c.Access(4*64, false) // evicts line 0 (LRU)
	if !ev.Valid || !ev.Dirty {
		t.Errorf("expected dirty eviction, got %+v", ev)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache("l1", 1024, 2, 64)
	c.Access(0, true)
	present, dirty := c.InvalidateLine(c.Line(0))
	if !present || !dirty {
		t.Error("invalidate should find the dirty line")
	}
	if c.Lookup(0) {
		t.Error("line still present after invalidate")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set equal to cache capacity must reach ~100% hits on the
	// second pass with LRU and power-of-two strides.
	c := NewCache("l1", 32*1024, 8, 64)
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < 32*1024; a += 64 {
			c.Access(a, false)
		}
	}
	if c.Hits < 500 {
		t.Errorf("resident working set hits = %d", c.Hits)
	}
	if got := c.MissRate(); got > 0.51 {
		t.Errorf("miss rate %v too high for resident set", got)
	}
}

func TestDRAMCacheDirectMapped(t *testing.T) {
	d := NewDRAMCache(2*64, 64) // 2 sets
	hit, _, _ := d.Access(0, true)
	if hit {
		t.Error("cold miss expected")
	}
	hit, _, _ = d.Access(0, false)
	if !hit {
		t.Error("hit expected")
	}
	// Conflicting line (same set): evicts dirty line 0.
	_, victimDirty, victimLine := d.Access(2*64, false)
	if !victimDirty || victimLine != 0 {
		t.Errorf("victim = dirty=%v line=%d, want dirty line 0", victimDirty, victimLine)
	}
}

func TestWriteBufferOccupancyAndStall(t *testing.T) {
	w := NewWriteBuffer(2, 10)
	now := w.Insert(100, 0)
	if now != 100 {
		t.Errorf("insert into empty buffer should not stall, got %d", now)
	}
	now = w.Insert(100, 0)
	if now != 100 {
		t.Errorf("second insert should fit, got %d", now)
	}
	// Buffer full: third insert at 100 stalls until head drains at 110.
	now = w.Insert(100, 0)
	if now != 110 {
		t.Errorf("full buffer should stall to 110, got %d", now)
	}
	if w.FullStall != 10 {
		t.Errorf("FullStall = %d, want 10", w.FullStall)
	}
}

func TestWriteBufferPersistDelay(t *testing.T) {
	w := NewWriteBuffer(8, 5)
	w.Insert(10, 50) // persist path holds the line until cycle 50
	if w.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", w.Delayed)
	}
	if w.Occupancy(54) != 1 {
		t.Errorf("entry should still be draining at 54 (done at 55)")
	}
	if w.Occupancy(56) != 0 {
		t.Errorf("entry should be gone at 56")
	}
}

func TestWriteBufferAvgOccupancyLow(t *testing.T) {
	// Sparse inserts with fast drain: average occupancy near zero, like the
	// paper's Figure 6 (0.39 entries).
	w := NewWriteBuffer(32, 4)
	rng := rand.New(rand.NewSource(1))
	now := int64(0)
	for i := 0; i < 1000; i++ {
		now += int64(20 + rng.Intn(30))
		w.Insert(now, 0)
	}
	if got := w.AvgOccupancy(); got > 0.5 {
		t.Errorf("avg occupancy = %v, want < 0.5", got)
	}
}
