package mem

// WriteBuffer models the L1 data cache's write(back) buffer: dirty lines
// evicted from L1D wait here before draining to the shared L2. cWSP checks
// the persist buffer before releasing the head entry (paper Figure 5); the
// machine supplies that check as a callback returning the earliest cycle at
// which the line's persist-path copies are all in NVM.
type WriteBuffer struct {
	cap int
	// drainDone is a FIFO ring of entry drain-completion times. Insert's
	// full-buffer stall bounds the entry count by cap, so the ring never
	// grows.
	drainDone []int64
	head      int
	len       int
	drainLat  int64

	// Occupancy statistics: integral of entry-residency cycles, divided by
	// elapsed time at query.
	lastTime    int64
	entryCycles float64
	Delayed     int64 // drains held back by the persist-path check
	FullStall   int64 // cycles the core stalled on a full WB
	Drained     int64 // entries that completed their drain to L2
	PeakOcc     int   // high-water mark of resident entries
}

// NewWriteBuffer builds a buffer of capacity entries whose entries take
// drainLat cycles to write to L2 once released.
func NewWriteBuffer(capacity int, drainLat int64) *WriteBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &WriteBuffer{cap: capacity, drainDone: make([]int64, capacity), drainLat: drainLat}
}

func (w *WriteBuffer) gc(now int64) {
	for w.len > 0 && w.drainDone[w.head] <= now {
		w.head++
		if w.head == w.cap {
			w.head = 0
		}
		w.len--
		w.Drained++
	}
}

func (w *WriteBuffer) account(now, drainDone int64) {
	if now > w.lastTime {
		w.lastTime = now
	}
	if drainDone > now {
		w.entryCycles += float64(drainDone - now)
	}
	if drainDone > w.lastTime {
		w.lastTime = drainDone
	}
}

// Insert places a dirty line into the buffer at cycle now. persistReady is
// the earliest cycle the persist path allows this line to reach L2 (0 when
// the check is disabled or found no match). It returns the cycle at which
// the core may proceed (now, unless the buffer was full).
func (w *WriteBuffer) Insert(now int64, persistReady int64) int64 {
	w.gc(now)
	if w.len >= w.cap {
		// Stall until the head drains.
		head := w.drainDone[w.head]
		w.FullStall += head - now
		now = head
		w.gc(now)
	}
	start := now
	if w.len > 0 {
		last := w.head + w.len - 1
		if last >= w.cap {
			last -= w.cap
		}
		if w.drainDone[last] > start {
			start = w.drainDone[last]
		}
	}
	if persistReady > start {
		w.Delayed++
		start = persistReady
	}
	done := start + w.drainLat
	tail := w.head + w.len
	if tail >= w.cap {
		tail -= w.cap
	}
	w.drainDone[tail] = done
	w.len++
	if w.len > w.PeakOcc {
		w.PeakOcc = w.len
	}
	w.account(now, done)
	return now
}

// AvgOccupancy returns the time-averaged number of resident entries: total
// entry-residency cycles over elapsed time.
func (w *WriteBuffer) AvgOccupancy() float64 {
	if w.lastTime == 0 {
		return 0
	}
	return w.entryCycles / float64(w.lastTime)
}

// Occupancy returns the current entry count at cycle now.
func (w *WriteBuffer) Occupancy(now int64) int {
	w.gc(now)
	return w.len
}
