package mem_test

import (
	"sync"
	"testing"

	"cwsp/internal/mem"
	"cwsp/internal/sim"
)

// TestEqualWhereBoundaryAtLayoutEdges: the recovery equality criterion
// excludes [StackBase, CkptBase + MaxCores*CkptStride). A divergence one
// word inside either edge must be masked; one word outside either edge
// must be caught — off-by-one here silently weakens every multi-thread
// recovery check.
func TestEqualWhereBoundaryAtLayoutEdges(t *testing.T) {
	excludeEnd := sim.CkptBase + int64(sim.MaxCores)*sim.CkptStride
	keep := func(addr int64) bool {
		return !(addr >= sim.StackBase && addr < excludeEnd)
	}
	cases := []struct {
		name   string
		addr   int64
		masked bool
	}{
		{"last word before StackBase", sim.StackBase - 8, false},
		{"first word of stack area", sim.StackBase, true},
		{"last word of ckpt area", excludeEnd - 8, true},
		{"first word past ckpt area", excludeEnd, false},
	}
	for _, tc := range cases {
		a := mem.NewPagedMem()
		b := mem.NewPagedMem()
		// A shared word on both sides keeps the page sets comparable.
		a.Store(0x1000, 7)
		b.Store(0x1000, 7)
		a.Store(tc.addr, 1)
		b.Store(tc.addr, 2)
		got := a.EqualWhere(b, keep)
		if got != tc.masked {
			t.Errorf("%s (%#x): EqualWhere = %v, want %v", tc.name, tc.addr, got, tc.masked)
		}
	}
}

// TestEqualWhereAsymmetricPages: a word present in only one image must
// still respect the filter (missing pages read as zero).
func TestEqualWhereAsymmetricPages(t *testing.T) {
	a := mem.NewPagedMem()
	b := mem.NewPagedMem()
	a.Store(sim.StackBase+128, 42) // only in a, inside the excluded window
	if !a.EqualWhere(b, func(addr int64) bool {
		return addr < sim.StackBase
	}) {
		t.Error("one-sided excluded word broke filtered equality")
	}
	a.Store(0x2000, 5) // only in a, kept
	if a.EqualWhere(b, func(addr int64) bool { return true }) {
		t.Error("one-sided kept word not detected")
	}
}

// TestCloneIndependentUnderConcurrentReads: Clone must produce a fully
// independent image — mutating the original while readers iterate the
// clone (and vice versa) must neither race (run with -race) nor change
// observed values.
func TestCloneIndependentUnderConcurrentReads(t *testing.T) {
	orig := mem.NewPagedMem()
	for i := int64(0); i < 512; i++ {
		orig.Store(0x2000_0000+i*8, i*i)
	}
	clone := orig.Clone()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer hammers the original.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(0); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			orig.Store(0x2000_0000+(k%512)*8, -1)
		}
	}()
	// Readers verify the clone never changes.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				for i := int64(0); i < 512; i++ {
					if got := clone.Load(0x2000_0000 + i*8); got != i*i {
						t.Errorf("clone[%d] = %d after original mutated, want %d", i, got, i*i)
						return
					}
				}
			}
		}()
	}
	close(stop)
	wg.Wait()

	// And the reverse direction: writes to the clone stay out of a snapshot
	// taken before them.
	snap := clone.Clone()
	clone.Store(0x2000_0000, 999)
	if got := snap.Load(0x2000_0000); got != 0 {
		t.Errorf("pre-mutation clone sees later write: %d", got)
	}
}
