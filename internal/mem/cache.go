package mem

// Cache is a set-associative cache model with true-LRU replacement and
// per-line dirty bits. It models tags only (data lives in the functional
// memory image); the machine uses it purely for hit/miss/eviction
// decisions.
type Cache struct {
	name      string
	lineShift uint
	sets      int
	ways      int
	// tags[set*ways+way] = line tag (address >> lineShift) + 1, 0 empty.
	// The +1 bias makes a freshly zeroed slice all-empty, so construction
	// needs no sentinel fill pass.
	tags  []int64
	dirty []bool
	// lru[set*ways+way] = recency counter; higher = more recent.
	lru     []int64
	lruTick int64
	// setMask is sets-1 when sets is a power of two (index by mask, not
	// modulo), else -1.
	setMask int64
	// mru[set] is the way of the set's last hit or fill — a lookup-order
	// hint only (accesses revisit lines in bursts, so one predicted-way
	// probe usually replaces the full scan); stale hints just miss the
	// tag compare and fall back to the scan.
	mru []int32

	Hits      int64
	Misses    int64
	Evictions int64
}

// NewCache builds a cache of sizeBytes with the given associativity and
// line size (must be powers of two; sizeBytes divisible by ways*lineBytes).
func NewCache(name string, sizeBytes, ways, lineBytes int) *Cache {
	lines := sizeBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	setMask := int64(-1)
	if sets&(sets-1) == 0 {
		setMask = int64(sets - 1)
	}
	return &Cache{
		name:      name,
		lineShift: log2(lineBytes),
		sets:      sets,
		ways:      ways,
		tags:      make([]int64, sets*ways),
		dirty:     make([]bool, sets*ways),
		lru:       make([]int64, sets*ways),
		setMask:   setMask,
		mru:       make([]int32, sets),
	}
}

func log2(v int) uint {
	var s uint
	for (1 << s) < v {
		s++
	}
	return s
}

// Line returns the line tag of a byte address.
func (c *Cache) Line(addr int64) int64 { return addr >> c.lineShift }

func (c *Cache) set(line int64) int {
	if c.setMask >= 0 {
		return int(uint64(line) & uint64(c.setMask))
	}
	return int(uint64(line) % uint64(c.sets))
}

// Lookup probes for addr without modifying replacement state.
func (c *Cache) Lookup(addr int64) bool {
	line := c.Line(addr)
	base := c.set(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// Evicted describes a line displaced by a fill.
type Evicted struct {
	Valid bool
	Line  int64 // line tag
	Dirty bool
}

// Access performs a load (write=false) or store (write=true) of addr,
// filling on miss. It returns whether the access hit and any eviction the
// fill caused.
func (c *Cache) Access(addr int64, write bool) (hit bool, ev Evicted) {
	line := c.Line(addr)
	set := c.set(line)
	base := set * c.ways
	c.lruTick++
	tag := line + 1
	if w := base + int(c.mru[set]); c.tags[w] == tag {
		c.lru[w] = c.lruTick
		if write {
			c.dirty[w] = true
		}
		c.Hits++
		return true, Evicted{}
	}
	tags := c.tags[base : base+c.ways]
	for w, t := range tags {
		if t == tag {
			c.lru[base+w] = c.lruTick
			if write {
				c.dirty[base+w] = true
			}
			c.mru[set] = int32(w)
			c.Hits++
			return true, Evicted{}
		}
	}
	c.Misses++
	// Fill: choose an empty way or the LRU victim.
	victim := base
	lru := c.lru[base : base+c.ways]
	for w, t := range tags {
		if t == 0 {
			victim = base + w
			goto fill
		}
		if lru[w] < c.lru[victim] {
			victim = base + w
		}
	}
	if c.tags[victim] != 0 {
		ev = Evicted{Valid: true, Line: c.tags[victim] - 1, Dirty: c.dirty[victim]}
		c.Evictions++
	}
fill:
	c.tags[victim] = tag
	c.dirty[victim] = write
	c.lru[victim] = c.lruTick
	c.mru[set] = int32(victim - base)
	return false, ev
}

// InvalidateLine drops a line if present, returning whether it was dirty.
func (c *Cache) InvalidateLine(line int64) (present, dirty bool) {
	base := c.set(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			present, dirty = true, c.dirty[base+w]
			c.tags[base+w] = 0
			c.dirty[base+w] = false
			return
		}
	}
	return
}

// MissRate returns misses/(hits+misses), 0 when unused.
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// DRAMCache is the direct-mapped DRAM cache (LLC) used in PMEM memory mode
// and the CXL configurations: one tag per set, write-back. Tags carry the
// same +1 bias as Cache (0 = empty) so construction needs no fill pass.
type DRAMCache struct {
	lineShift uint
	sets      int
	setMask   int64 // sets-1 when sets is a power of two, else -1
	tags      []int64
	dirty     []bool

	Hits   int64
	Misses int64
}

// NewDRAMCache builds a direct-mapped cache of sizeBytes.
func NewDRAMCache(sizeBytes, lineBytes int) *DRAMCache {
	sets := sizeBytes / lineBytes
	if sets < 1 {
		sets = 1
	}
	setMask := int64(-1)
	if sets&(sets-1) == 0 {
		setMask = int64(sets - 1)
	}
	return &DRAMCache{
		lineShift: log2(lineBytes),
		sets:      sets,
		setMask:   setMask,
		tags:      make([]int64, sets),
		dirty:     make([]bool, sets),
	}
}

// Access performs an access, returning hit status and whether a dirty line
// was displaced (its writeback goes to NVM, but in WSP mode that writeback
// is silently dropped — the persist path already carried the data).
func (d *DRAMCache) Access(addr int64, write bool) (hit bool, victimDirty bool, victimLine int64) {
	line := addr >> d.lineShift
	var set int
	if d.setMask >= 0 {
		set = int(uint64(line) & uint64(d.setMask))
	} else {
		set = int(uint64(line) % uint64(d.sets))
	}
	if d.tags[set] == line+1 {
		d.Hits++
		if write {
			d.dirty[set] = true
		}
		return true, false, 0
	}
	d.Misses++
	victimDirty = d.dirty[set] && d.tags[set] != 0
	victimLine = d.tags[set] - 1
	d.tags[set] = line + 1
	d.dirty[set] = write
	return false, victimDirty, victimLine
}

// MissRate returns misses/(hits+misses), 0 when unused.
func (d *DRAMCache) MissRate() float64 {
	t := d.Hits + d.Misses
	if t == 0 {
		return 0
	}
	return float64(d.Misses) / float64(t)
}
