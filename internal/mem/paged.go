// Package mem provides the memory-system substrate of the cWSP machine
// model: a paged functional memory (the architectural and NVM images), a
// set-associative LRU cache model, a direct-mapped DRAM cache model, and
// the L1D write buffer whose drain the cWSP hardware delays to prevent the
// stale-read race (paper Section V-A1).
package mem

import "sort"

const (
	pageShift = 9 // 512 words (4 KiB) per page
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// pcEntries is the size of the per-image direct-mapped page-pointer
// cache that short-circuits the page map on the hot Load/Store paths.
const pcEntries = 256

// PagedMem is a sparse, word-granularity memory image. Addresses are byte
// addresses; accesses are aligned 8-byte words. Pages are allocated on
// first write, so multi-megabyte footprints stay cheap. A small
// direct-mapped cache of page pointers keeps the simulator's hot
// load/store loops off the map hash for the (overwhelmingly common)
// repeated-page accesses; it is transparent — the map remains the sole
// owner of every page.
type PagedMem struct {
	pages map[int64]*[pageWords]int64

	cacheKey  [pcEntries]int64
	cachePage [pcEntries]*[pageWords]int64
}

// NewPagedMem returns an empty image.
func NewPagedMem() *PagedMem {
	return &PagedMem{pages: map[int64]*[pageWords]int64{}}
}

// page returns the resident page for key (nil when absent), consulting
// the pointer cache first.
func (m *PagedMem) page(key int64) *[pageWords]int64 {
	i := key & (pcEntries - 1)
	if p := m.cachePage[i]; p != nil && m.cacheKey[i] == key {
		return p
	}
	p := m.pages[key]
	if p != nil {
		m.cacheKey[i], m.cachePage[i] = key, p
	}
	return p
}

// Load reads the word at addr (0 if the page was never written).
func (m *PagedMem) Load(addr int64) int64 {
	w := addr >> 3
	p := m.page(w >> pageShift)
	if p == nil {
		return 0
	}
	return p[w&pageMask]
}

// Store writes the word at addr.
func (m *PagedMem) Store(addr, val int64) {
	w := addr >> 3
	key := w >> pageShift
	p := m.page(key)
	if p == nil {
		p = new([pageWords]int64)
		m.pages[key] = p
		i := key & (pcEntries - 1)
		m.cacheKey[i], m.cachePage[i] = key, p
	}
	p[w&pageMask] = val
}

// Clone deep-copies the image.
func (m *PagedMem) Clone() *PagedMem {
	c := NewPagedMem()
	for k, p := range m.pages {
		np := *p
		c.pages[k] = &np
	}
	return c
}

// Equal reports whether two images hold identical contents (zero-filled
// pages compare equal to absent pages).
func (m *PagedMem) Equal(o *PagedMem) bool {
	return m.subsetEq(o) && o.subsetEq(m)
}

func (m *PagedMem) subsetEq(o *PagedMem) bool {
	for k, p := range m.pages {
		q := o.pages[k]
		if q == nil {
			for _, v := range p {
				if v != 0 {
					return false
				}
			}
			continue
		}
		if *p != *q {
			return false
		}
	}
	return true
}

// Diff returns up to max differing word addresses between m and o.
func (m *PagedMem) Diff(o *PagedMem, max int) []int64 {
	var out []int64
	seen := map[int64]bool{}
	collect := func(a, b *PagedMem) {
		for k, p := range a.pages {
			q := b.pages[k]
			for i, v := range p {
				var w int64
				if q != nil {
					w = q[i]
				}
				if v != w {
					addr := ((k << pageShift) | int64(i)) << 3
					if !seen[addr] {
						seen[addr] = true
						out = append(out, addr)
						if len(out) >= max {
							return
						}
					}
				}
			}
			if len(out) >= max {
				return
			}
		}
	}
	collect(m, o)
	if len(out) < max {
		collect(o, m)
	}
	return out
}

// EqualWhere reports whether the images agree on every word whose address
// satisfies keep.
func (m *PagedMem) EqualWhere(o *PagedMem, keep func(addr int64) bool) bool {
	check := func(a, b *PagedMem) bool {
		for k, p := range a.pages {
			q := b.pages[k]
			for i, v := range p {
				var w int64
				if q != nil {
					w = q[i]
				}
				if v != w {
					addr := ((k << pageShift) | int64(i)) << 3
					if keep(addr) {
						return false
					}
				}
			}
		}
		return true
	}
	return check(m, o) && check(o, m)
}

// Pages returns the number of resident pages (for footprint assertions).
func (m *PagedMem) Pages() int { return len(m.pages) }

// Digest returns a 64-bit FNV-1a digest of the image's logical contents.
// Pages are hashed in sorted key order and all-zero pages are skipped, so
// two images that compare Equal always digest identically regardless of
// their allocation histories.
func (m *PagedMem) Digest() uint64 {
	keys := make([]int64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, k := range keys {
		p := m.pages[k]
		zero := true
		for _, v := range p {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		word(uint64(k))
		for _, v := range p {
			word(uint64(v))
		}
	}
	return h
}
