// Package opt implements classical scalar optimizations over the IR:
// constant folding, copy/constant propagation (block-local), and global
// dead-code elimination. The paper compiles everything at -O3 before the
// cWSP passes run; these passes play that role for hand-built and
// minic-generated programs (cwspc -O). They must run BEFORE region
// formation — they do not understand boundary/checkpoint instructions.
package opt

import (
	"fmt"

	"cwsp/internal/analysis"
	"cwsp/internal/ir"
)

// Stats counts the work each pass did.
type Stats struct {
	Folded     int // instructions replaced by constants
	Propagated int // operands rewritten by copy/constant propagation
	Eliminated int // dead instructions removed
}

// Optimize runs the pass pipeline to a fixpoint on every function of p
// (which is mutated). Returns cumulative statistics.
func Optimize(p *ir.Program) (Stats, error) {
	var total Stats
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.OpBoundary, ir.OpCkpt:
					return total, fmt.Errorf("opt: %s contains compiler-inserted instructions; optimize before regions.Form", f.Name)
				}
			}
		}
		for {
			st := optimizeFunc(f)
			total.Folded += st.Folded
			total.Propagated += st.Propagated
			total.Eliminated += st.Eliminated
			if st == (Stats{}) {
				break
			}
		}
	}
	if err := ir.VerifyProgram(p); err != nil {
		return total, fmt.Errorf("opt: broke the program: %w", err)
	}
	return total, nil
}

func optimizeFunc(f *ir.Function) Stats {
	var st Stats
	st.Propagated += propagate(f)
	st.Folded += fold(f)
	st.Eliminated += eliminate(f)
	return st
}

// propagate performs block-local copy and constant propagation: within a
// block, while a register provably holds a constant or mirrors another
// register, its uses are rewritten. Conservative: any redefinition kills
// the fact; facts do not cross block boundaries.
func propagate(f *ir.Function) int {
	changed := 0
	for _, b := range f.Blocks {
		consts := map[ir.Reg]int64{}
		copies := map[ir.Reg]ir.Reg{}

		kill := func(r ir.Reg) {
			delete(consts, r)
			delete(copies, r)
			for dst, src := range copies {
				if src == r {
					delete(copies, dst)
				}
			}
		}
		rewrite := func(o *ir.Operand) {
			if o.Kind != ir.OperandReg {
				return
			}
			if c, ok := consts[o.Reg]; ok {
				*o = ir.Imm(c)
				changed++
				return
			}
			if src, ok := copies[o.Reg]; ok {
				o.Reg = src
				changed++
			}
		}

		for i := range b.Instrs {
			in := &b.Instrs[i]
			// Rewrite uses first.
			switch in.Op {
			case ir.OpConst:
			case ir.OpCall:
				for j := range in.Args {
					rewrite(&in.Args[j])
				}
			default:
				rewrite(&in.A)
				rewrite(&in.B)
				rewrite(&in.C)
			}
			// Then record the new fact (after killing the old one).
			if d := in.Def(); d != ir.NoReg {
				kill(d)
				switch in.Op {
				case ir.OpConst:
					consts[d] = in.A.Imm
				case ir.OpMov:
					switch in.A.Kind {
					case ir.OperandImm:
						consts[d] = in.A.Imm
					case ir.OperandReg:
						if in.A.Reg != d {
							copies[d] = in.A.Reg
						}
					}
				}
			}
		}
	}
	return changed
}

// foldable lists the pure ALU opcodes.
func foldable(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		return true
	}
	return false
}

// fold replaces pure ALU instructions with all-immediate operands by
// constants, and resolves selects and branches with constant conditions
// (branch folding rewrites OpBr to OpJmp; unreachable blocks die later via
// normal reachability-aware passes downstream).
func fold(f *ir.Function) int {
	changed := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch {
			case foldable(in.Op) && in.A.Kind == ir.OperandImm && in.B.Kind == ir.OperandImm:
				regs := []int64{0}
				tmp := ir.Instr{Op: in.Op, Dst: 0, A: in.A, B: in.B}
				ir.Exec(&tmp, regs, nil)
				*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: ir.Imm(regs[0])}
				changed++
			case in.Op == ir.OpSelect && in.A.Kind == ir.OperandImm:
				v := in.B
				if in.A.Imm == 0 {
					v = in.C
				}
				*in = ir.Instr{Op: ir.OpMov, Dst: in.Dst, A: v}
				changed++
			case in.Op == ir.OpBr && in.A.Kind == ir.OperandImm:
				t := in.Then
				if in.A.Imm == 0 {
					t = in.Else
				}
				*in = ir.Instr{Op: ir.OpJmp, Then: t}
				changed++
			case in.Op == ir.OpMov && in.A.Kind == ir.OperandReg && in.A.Reg == in.Dst:
				// Self-move: neutralize to a constant-free no-op form that
				// DCE removes (rewrite as mov from itself is already dead
				// if unused; leave to eliminate()).
			}
		}
	}
	return changed
}

// eliminate removes side-effect-free instructions whose results are dead
// (backward liveness over the whole CFG).
func eliminate(f *ir.Function) int {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	removed := 0
	for bi, b := range f.Blocks {
		live := lv.LiveOut[bi].Copy()
		keep := make([]bool, len(b.Instrs))
		var uses []ir.Reg
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			in := &b.Instrs[k]
			d := in.Def()
			dead := d != ir.NoReg && !live.Has(d) && pure(in)
			keep[k] = !dead
			if dead {
				removed++
				continue
			}
			if d != ir.NoReg {
				live.Remove(d)
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				live.Add(u)
			}
		}
		if removed > 0 {
			out := b.Instrs[:0]
			for k := range b.Instrs {
				if keep[k] {
					out = append(out, b.Instrs[k])
				}
			}
			b.Instrs = out
		}
	}
	return removed
}

// pure reports whether removing the instruction (given a dead result) is
// safe: no memory writes, I/O, allocation, or control effects.
func pure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpSelect, ir.OpLoad:
		return true
	}
	return foldable(in.Op)
}
