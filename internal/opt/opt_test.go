package opt

import (
	"fmt"
	"testing"

	"cwsp/internal/ir"
	"cwsp/internal/minic"
	"cwsp/internal/progen"
	"cwsp/internal/regions"
)

func countInstrs(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

func TestOptimizePreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Clone()
		if _, err := Optimize(q); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, err := ir.Interp(q, nil, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.RetVal != want.RetVal || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
			t.Errorf("seed %d: semantics changed", seed)
		}
		if fmt.Sprint(got.Mem.Snapshot()) != fmt.Sprint(want.Mem.Snapshot()) {
			t.Errorf("seed %d: memory changed", seed)
		}
	}
}

func TestOptimizeShrinksPrograms(t *testing.T) {
	shrunk := 0
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		before := countInstrs(p)
		q := p.Clone()
		st, err := Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		after := countInstrs(q)
		if after > before {
			t.Errorf("seed %d: optimization grew the program %d -> %d", seed, before, after)
		}
		if st.Eliminated > 0 || st.Folded > 0 {
			shrunk++
		}
	}
	if shrunk == 0 {
		t.Error("optimizer did nothing on 40 random programs")
	}
}

func TestConstantFolding(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Bin(ir.OpAdd, ir.Imm(2), ir.Imm(3))
	b := fb.Bin(ir.OpMul, ir.R(a), ir.Imm(4)) // 20 after propagation+folding
	fb.Ret(ir.R(b))
	p := ir.NewProgram("cf")
	p.Add(fb.MustDone())
	p.Entry = "main"
	st, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Folded < 2 {
		t.Errorf("folded = %d, want >= 2", st.Folded)
	}
	res, err := ir.Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 20 {
		t.Errorf("result = %d, want 20", res.RetVal)
	}
}

func TestBranchFolding(t *testing.T) {
	src := `
func main() {
	var x = 0;
	if (1 < 2) { x = 7; } else { x = 9; }
	return x;
}`
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	// The comparison folds to 1 and the branch becomes a jump.
	hasBr := false
	for _, b := range p.Funcs["main"].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBr {
				hasBr = true
			}
		}
	}
	if hasBr {
		t.Error("constant branch survived folding")
	}
	if st.Folded == 0 {
		t.Error("nothing folded")
	}
	res, err := ir.Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 7 {
		t.Errorf("result = %d, want 7", res.RetVal)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	fb.Const(111)                               // dead
	d := fb.Bin(ir.OpMul, ir.Imm(3), ir.Imm(5)) // dead after fold
	_ = d
	live := fb.Const(42)
	fb.Ret(ir.R(live))
	p := ir.NewProgram("dce")
	p.Add(fb.MustDone())
	p.Entry = "main"
	before := countInstrs(p)
	st, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Eliminated < 2 {
		t.Errorf("eliminated = %d, want >= 2", st.Eliminated)
	}
	if countInstrs(p) >= before {
		t.Error("program did not shrink")
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	src := `
func main() {
	var p = alloc(8);
	p[0] = 5;        // store with unused result: must stay
	atomic_add(p, 1); // result unused but has a side effect
	emit(p[0]);
	return 0;
}`
	p, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(p); err != nil {
		t.Fatal(err)
	}
	res, err := ir.Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 6 {
		t.Errorf("output = %v, want [6]", res.Output)
	}
}

func TestOptimizeRejectsFormedPrograms(t *testing.T) {
	p := progen.Generate(3, progen.DefaultConfig())
	for _, f := range p.Funcs {
		regions.Form(f)
	}
	if _, err := Optimize(p); err == nil {
		t.Error("optimizer must refuse region-formed programs")
	}
}

func TestOptimizeThenCompilePipeline(t *testing.T) {
	// opt -> cwsp compile -> interp must still preserve semantics.
	for seed := int64(200); seed < 240; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Clone()
		if _, err := Optimize(q); err != nil {
			t.Fatal(err)
		}
		for _, f := range q.Funcs {
			regions.Form(f)
		}
		got, err := ir.Interp(q, nil, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.RetVal != want.RetVal {
			t.Errorf("seed %d: pipeline changed semantics", seed)
		}
	}
}
