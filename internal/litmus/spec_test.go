package litmus

import (
	"strings"
	"testing"

	"cwsp/internal/faults"
)

func TestSpecRenderParseRoundTrip(t *testing.T) {
	specs := []string{
		"t0=S0.1;sch=cwsp;kern=fast;crashes=350",
		"seed=7;t0=S0.1,F,A2.3,C;t1=S1.9;sch=capri;kern=ref;crashes=500",
		"t0=;t1=S1.1,A3.3;sch=cwsp;kern=fast;crashes=666;drop-wpq@0:1925955:2bb793591a43f1ae",
		"t0=S3.12,S3.13;sch=ido;kern=fast;crashes=10;torn-log@0:3:55aa;reorder-wpq@0:0:1",
	}
	for _, in := range specs {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := s.Render()
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(Render(%q)) = %q: %v", in, out, err)
		}
		if got := s2.Render(); got != out {
			t.Errorf("render not stable: %q -> %q -> %q", in, out, got)
		}
	}
}

func TestSpecRenderIsCanonical(t *testing.T) {
	// Term order in the input must not matter; the render is canonical.
	a, err := Parse("sch=cwsp;t1=S1.2;crashes=350;kern=fast;t0=F;seed=9")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("seed=9;t0=F;t1=S1.2;sch=cwsp;kern=fast;crashes=350")
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("canonical renders differ: %q vs %q", a.Render(), b.Render())
	}
}

func TestSpecParseErrors(t *testing.T) {
	bad := map[string]string{
		"sch=cwsp;kern=fast;crashes=350":                  "no thread",
		"t0=S0.1;kern=fast;crashes=350":                   "no sch",
		"t0=S0.1;sch=cwsp;crashes=350":                    "no kern",
		"t0=S0.1;sch=cwsp;kern=slow;crashes=350":          "unknown kernel",
		"t0=S0.1;t2=F;sch=cwsp;kern=fast;crashes=350":     "sparse threads",
		"t0=S9.1;sch=cwsp;kern=fast;crashes=350":          "tracked index out of range",
		"t0=S0.0;sch=cwsp;kern=fast;crashes=350":          "non-positive value",
		"t0=X0.1;sch=cwsp;kern=fast;crashes=350":          "unknown event",
		"t0=S0.1;t0=F;sch=cwsp;kern=fast;crashes=350":     "duplicate thread",
		"t0=S0.1;sch=cwsp;kern=fast;crashes=350,700":      "two crashes",
		"t0=S0.1;sch=cwsp;kern=fast;crashes=350;corrupt-ckpt@0:1:aa": "non-litmus fault kind",
	}
	for in, why := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail (%s)", in, why)
		}
	}
}

func TestNewSpecDeterministicAndUnique(t *testing.T) {
	a := NewSpec(42, GenOptions{Cores: 3, Events: 6, Points: 3})
	b := NewSpec(42, GenOptions{Cores: 3, Events: 6, Points: 3})
	a.Scheme, a.Kernel = "cwsp", KernelFast
	b.Scheme, b.Kernel = "cwsp", KernelFast
	if a.Render() != b.Render() {
		t.Fatalf("same seed, different specs:\n%s\n%s", a.Render(), b.Render())
	}
	// Store values are globally unique so a crash image identifies its
	// writer exactly.
	seen := map[int64]bool{}
	for _, th := range a.Threads {
		for _, ev := range th {
			if ev.Kind == EvStore || ev.Kind == EvAtomic {
				if seen[ev.V] {
					t.Fatalf("duplicate store value %d in %s", ev.V, a.Render())
				}
				seen[ev.V] = true
			}
		}
	}
	if a.Plan.Depth() != 1 {
		t.Fatalf("litmus plans crash once, got depth %d", a.Plan.Depth())
	}
	for _, pt := range a.Plan.Points {
		if !litmusKind(pt.Kind) {
			t.Fatalf("generator drew non-litmus kind %s", pt.Kind)
		}
	}
}

func TestSpecGrammarSupersetOfFaults(t *testing.T) {
	// The litmus-specific terms removed, what remains parses as a faults
	// plan — the grammars compose, they do not fork.
	s, err := Parse("t0=S0.1;sch=cwsp;kern=fast;crashes=350;torn-log@0:3:55aa")
	if err != nil {
		t.Fatal(err)
	}
	var faultTerms []string
	for _, term := range strings.Split(s.Render(), ";") {
		if strings.HasPrefix(term, "t0=") || strings.HasPrefix(term, "sch=") ||
			strings.HasPrefix(term, "kern=") || strings.HasPrefix(term, "seed=") {
			continue
		}
		faultTerms = append(faultTerms, term)
	}
	plan, err := faults.ParseSpec(strings.Join(faultTerms, ";"))
	if err != nil {
		t.Fatalf("residual terms are not a faults spec: %v", err)
	}
	if plan.Spec() != s.Plan.Spec() {
		t.Errorf("plan mismatch: %q vs %q", plan.Spec(), s.Plan.Spec())
	}
}

func TestFromFaultPlan(t *testing.T) {
	plan, err := faults.ParseSpec("crashes=350;torn-log@0:3:55aa")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := FromFaultPlan(plan, "cwsp", KernelFast)
	if !ok {
		t.Fatal("litmus-shaped plan rejected")
	}
	if _, err := Parse(s.Render()); err != nil {
		t.Fatalf("FromFaultPlan spec does not round-trip: %v", err)
	}
	if _, err := RunSpec(s, RunOptions{}); err != nil {
		t.Fatalf("FromFaultPlan spec does not run: %v", err)
	}

	deep, err := faults.ParseSpec("crashes=350,700;torn-log@1:3:55aa")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FromFaultPlan(deep, "cwsp", KernelFast); ok {
		t.Error("nested-crash plan should not be litmus-shaped")
	}
	ckpt, err := faults.ParseSpec("crashes=350;corrupt-ckpt@0:1:aa")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FromFaultPlan(ckpt, "cwsp", KernelFast); ok {
		t.Error("checkpoint-corruption plan should not be litmus-shaped")
	}
}
