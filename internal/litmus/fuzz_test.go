package litmus

import "testing"

// FuzzLitmusSpec round-trips the spec grammar: any string Parse accepts
// must render canonically, re-parse, and render to the same bytes — and
// the embedded fault plan must survive the trip. Run via `make fuzz-smoke`.
func FuzzLitmusSpec(f *testing.F) {
	f.Add("t0=S0.1;sch=cwsp;kern=fast;crashes=350")
	f.Add("seed=7;t0=S0.1,F,A2.3,C;t1=S1.9;sch=capri;kern=ref;crashes=500")
	f.Add("t0=;t1=S1.1,A3.3;sch=cwsp;kern=fast;crashes=666;drop-wpq@0:1925955:2bb793591a43f1ae")
	f.Add("t0=S3.12,S3.13;sch=ido;kern=fast;crashes=10;torn-log@0:3:55aa;reorder-wpq@0:0:1")
	f.Add("t0=A0.5;t1=F;t2=C;sch=base;kern=fast;crashes=999")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return // rejection is fine; acceptance must round-trip
		}
		out := s.Render()
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(Render(%q)) = %q failed: %v", in, out, err)
		}
		if got := s2.Render(); got != out {
			t.Fatalf("render not a fixed point: %q -> %q -> %q", in, out, got)
		}
		if s.Plan.Spec() != s2.Plan.Spec() {
			t.Fatalf("fault plan changed across round-trip: %q vs %q", s.Plan.Spec(), s2.Plan.Spec())
		}
	})
}
