package litmus

import (
	"encoding/json"
	"fmt"

	"cwsp/internal/check"
	"cwsp/internal/runner"
	"cwsp/internal/telemetry/live"
)

// CampaignReportSchemaVersion versions the campaign report format.
const CampaignReportSchemaVersion = 1

// CampaignOptions configure a litmus campaign.
type CampaignOptions struct {
	// Seed is the campaign's master seed: test t's program shape and fault
	// plan are a deterministic mix of (Seed, t), so one integer reproduces
	// the whole campaign byte for byte at any -jobs width.
	Seed int64
	// Tests is the number of generated litmus shapes; each runs under
	// every (scheme, kernel) cell.
	Tests int
	// Gen shapes the per-test random draw.
	Gen GenOptions
	// Schemes and Kernels span the cell grid (defaults: all persistence
	// schemes, both kernels).
	Schemes []string
	Kernels []string

	// Unsealed disables the validation layers: the negative control where
	// injected faults surface as CWSP1xx violations instead of detections.
	Unsealed bool
	// Shrink reduces every violating cell to a minimal reproducer (off for
	// smoke runs where wall-clock matters).
	Shrink bool

	// Jobs is the worker-pool width (<= 0 = GOMAXPROCS); Store optionally
	// memoizes cells across invocations; Bus receives live progress events.
	Jobs  int
	Store *runner.Store
	Bus   *live.Bus
	// Progress, when set, is shared with the campaign's pool so an
	// embedding service can read per-campaign pace while it runs.
	Progress *runner.Progress
}

// AllSchemes is the full scheme grid the acceptance campaign spans.
var AllSchemes = []string{
	"base", "cwsp", "region-formation", "persist-path", "mc-spec",
	"wb-delay", "wpq-delay", "capri", "ido", "replaycache", "psp-ideal",
}

// AllKernels spans both simulation kernels.
var AllKernels = []string{KernelFast, KernelRef}

// CampaignCell is one campaign cell's deterministic record.
type CampaignCell struct {
	Test   int    `json:"test"`
	Scheme string `json:"scheme"`
	Kernel string `json:"kernel"`
	Result
	// Repro is the shrunk one-flag reproducer (violating cells with
	// shrinking enabled).
	Repro string `json:"repro,omitempty"`
}

// CampaignTotals aggregate the campaign.
type CampaignTotals struct {
	Cells      int `json:"cells"`
	Allowed    int `json:"allowed"`
	Violations int `json:"violations"`
	Detected   int `json:"detected"`
	Unjudged   int `json:"unjudged"`
	Errors     int `json:"errors"`
	Injected   int `json:"injected"`
	Skipped    int `json:"skipped"`
}

// CampaignReport is the campaign's machine-readable outcome. Every field
// is deterministic in (options, code version): rerunning the same seed at
// any -jobs width must reproduce the report byte for byte, which is itself
// asserted by tests.
type CampaignReport struct {
	SchemaVersion int      `json:"schema_version"`
	Seed          int64    `json:"seed"`
	Tests         int      `json:"tests"`
	Schemes       []string `json:"schemes"`
	Kernels       []string `json:"kernels"`
	Unsealed      bool     `json:"unsealed,omitempty"`

	Cells  []CampaignCell `json:"cells"`
	Totals CampaignTotals `json:"totals"`
}

// Failures returns the violating cells.
func (r *CampaignReport) Failures() []CampaignCell {
	var out []CampaignCell
	for _, c := range r.Cells {
		if c.Failed() {
			out = append(out, c)
		}
	}
	return out
}

// CheckReport renders the campaign's judgments as an internal/check
// report: one CWSP1xx diagnostic per violating or unjudged cell, in cell
// order.
func (r *CampaignReport) CheckReport() *check.Report {
	rep := &check.Report{}
	for i := range r.Cells {
		if d := r.Cells[i].Diag(); d != nil {
			rep.Diags = append(rep.Diags, *d)
		}
	}
	return rep
}

// WriteJSON emits the report deterministically (indented, stable order).
func (r *CampaignReport) WriteJSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// testSeed mixes the campaign seed and test ordinal into the test's spec
// seed (fixed-odd-multiplier blend — stable across runs and platforms,
// the same construction the torture campaign uses).
func testSeed(seed int64, t int) int64 {
	v := uint64(seed)*0x9e3779b97f4a7c15 + uint64(t)*0x94d049bb133111eb + 0xbf58476d1ce4e5b9
	v ^= v >> 29
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 32
	s := int64(v & 0x7fffffffffffffff)
	if s == 0 {
		s = 1
	}
	return s
}

// RunCampaign executes a seeded litmus campaign over the runner pool: Tests
// generated shapes, each judged under every (scheme, kernel) cell. The
// report's cell order is (test, scheme, kernel) — independent of pool
// scheduling.
func RunCampaign(opts CampaignOptions) (*CampaignReport, *runner.Progress, error) {
	if opts.Tests < 1 {
		opts.Tests = 1
	}
	if len(opts.Schemes) == 0 {
		opts.Schemes = AllSchemes
	}
	if len(opts.Kernels) == 0 {
		opts.Kernels = AllKernels
	}
	runOpt := RunOptions{Unsealed: opts.Unsealed}

	type cellID struct {
		test           int
		scheme, kernel string
		spec           *Spec
	}
	var ids []cellID
	var cells []runner.Cell[*CampaignCell]
	for t := 0; t < opts.Tests; t++ {
		shape := NewSpec(testSeed(opts.Seed, t), opts.Gen)
		for _, sch := range opts.Schemes {
			for _, kern := range opts.Kernels {
				spec := shape.Clone()
				spec.Scheme, spec.Kernel = sch, kern
				id := cellID{t, sch, kern, spec}
				ids = append(ids, id)
				cells = append(cells, runner.Cell[*CampaignCell]{
					Key: runner.Key{
						Kind:     "litmus",
						Workload: fmt.Sprintf("test%d", t),
						Scheme:   sch,
						CfgSig:   fmt.Sprintf("spec=%s|unsealed=%v|shrink=%v", spec.Render(), opts.Unsealed, opts.Shrink),
					},
					Run: func() (*CampaignCell, error) {
						res, err := RunSpec(id.spec, runOpt)
						if err != nil {
							return nil, err
						}
						cell := &CampaignCell{Test: id.test, Scheme: id.scheme, Kernel: id.kernel, Result: *res}
						if res.Failed() && opts.Shrink {
							if shrunk, _, err := Shrink(id.spec, runOpt); err == nil {
								cell.Repro = ReplayCommand(shrunk)
							}
						}
						if opts.Bus != nil {
							for _, inj := range res.Injected {
								opts.Bus.Publish(live.Event{
									Kind:    live.CrashInjected,
									Fault:   string(inj.Kind),
									Crash:   int64(inj.Crash),
									Skipped: inj.Skipped,
								})
							}
							opts.Bus.Publish(live.Event{
								Kind:    live.RecoveryOutcome,
								Outcome: res.Outcome,
								Crash:   res.Crash,
							})
						}
						return cell, nil
					},
				})
			}
		}
	}

	pool := runner.NewPool[*CampaignCell](runner.Options{
		Jobs: opts.Jobs, Store: opts.Store, Reuse: opts.Store != nil,
		Bus: opts.Bus, Progress: opts.Progress,
	})
	results, err := pool.Run(cells)
	if err != nil {
		return nil, pool.Progress(), err
	}
	if err := pool.Close(); err != nil {
		return nil, pool.Progress(), err
	}

	rep := &CampaignReport{
		SchemaVersion: CampaignReportSchemaVersion,
		Seed:          opts.Seed,
		Tests:         opts.Tests,
		Schemes:       opts.Schemes,
		Kernels:       opts.Kernels,
		Unsealed:      opts.Unsealed,
	}
	for _, c := range results {
		rep.Cells = append(rep.Cells, *c)
		rep.Totals.Cells++
		for _, inj := range c.Injected {
			if inj.Skipped {
				rep.Totals.Skipped++
			} else {
				rep.Totals.Injected++
			}
		}
		switch c.Outcome {
		case ResAllowed:
			rep.Totals.Allowed++
		case ResViolation:
			rep.Totals.Violations++
		case ResDetected:
			rep.Totals.Detected++
		case ResUnjudged:
			rep.Totals.Unjudged++
		case ResError:
			rep.Totals.Errors++
		}
	}
	return rep, pool.Progress(), nil
}
