package litmus

import (
	"bytes"
	"testing"
)

func smallCampaign(jobs int, unsealed bool) CampaignOptions {
	return CampaignOptions{
		Seed:     11,
		Tests:    4,
		Gen:      GenOptions{Cores: 2, Events: 4, Points: 2},
		Schemes:  []string{"base", "cwsp", "capri", "ido"},
		Kernels:  AllKernels,
		Unsealed: unsealed,
		Shrink:   true,
		Jobs:     jobs,
	}
}

func TestCampaignReportByteIdenticalAcrossJobs(t *testing.T) {
	var reports [][]byte
	for _, jobs := range []int{1, 4} {
		rep, _, err := RunCampaign(smallCampaign(jobs, false))
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.WriteJSON()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("same seed, different reports at jobs=1 vs jobs=4")
	}
}

func TestCampaignSealedHasNoViolations(t *testing.T) {
	rep, _, err := RunCampaign(smallCampaign(0, false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Cells != 4*4*2 {
		t.Errorf("cell count: got %d, want %d", rep.Totals.Cells, 4*4*2)
	}
	if rep.Totals.Violations != 0 || rep.Totals.Errors != 0 {
		t.Errorf("sealed campaign must be clean: %+v", rep.Totals)
		for _, c := range rep.Failures() {
			t.Logf("violation: test %d %s/%s %s: %s (spec %s)",
				c.Test, c.Scheme, c.Kernel, c.Code, c.Msg, c.Result.Spec)
		}
	}
	if rep.Totals.Allowed == 0 {
		t.Error("campaign judged no cell allowed — executor or derivation broken")
	}
	if n := len(rep.CheckReport().Diags); n != rep.Totals.Unjudged {
		t.Errorf("check report: %d diags, want %d (unjudged only)", n, rep.Totals.Unjudged)
	}
}

func TestCampaignCellOrderIsGridOrder(t *testing.T) {
	opts := smallCampaign(3, false)
	rep, _, err := RunCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for test := 0; test < opts.Tests; test++ {
		for _, sch := range opts.Schemes {
			for _, kern := range opts.Kernels {
				c := rep.Cells[i]
				if c.Test != test || c.Scheme != sch || c.Kernel != kern {
					t.Fatalf("cell %d out of order: got (%d,%s,%s), want (%d,%s,%s)",
						i, c.Test, c.Scheme, c.Kernel, test, sch, kern)
				}
				i++
			}
		}
	}
}

func TestCampaignUnsealedViolationsCarryRepros(t *testing.T) {
	// The seed/shape ranges here are known (from the acceptance runs) to
	// produce at least one unsealed violation on the drain schemes.
	opts := CampaignOptions{
		Seed:     7,
		Tests:    12,
		Gen:      GenOptions{Cores: 2, Events: 5, Points: 3},
		Schemes:  []string{"cwsp", "wb-delay"},
		Kernels:  []string{KernelFast},
		Unsealed: true,
		Shrink:   true,
	}
	rep, _, err := RunCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Failures()
	if len(fails) == 0 {
		t.Skip("no unsealed violation at this seed range (generator drift); teeth covered by TestRunSpecUnsealedFlagsViolation")
	}
	for _, c := range fails {
		if c.Repro == "" {
			t.Errorf("violating cell (test %d %s/%s) has no shrunk reproducer", c.Test, c.Scheme, c.Kernel)
			continue
		}
		// The reproducer's embedded spec must parse and fail on replay.
		spec := c.Repro
		spec = spec[len("cwsplitmus -replay '") : len(spec)-1]
		s, err := Parse(spec)
		if err != nil {
			t.Errorf("repro spec does not parse: %v (%q)", err, c.Repro)
			continue
		}
		res, err := RunSpec(s, RunOptions{Unsealed: true})
		if err != nil {
			t.Errorf("repro spec does not run: %v", err)
			continue
		}
		if !res.Failed() {
			t.Errorf("repro spec does not reproduce: %s (%q)", res.Outcome, c.Repro)
		}
	}
}
