package litmus

import (
	"testing"

	"cwsp/internal/check"
)

// mustModel prepares and extracts the model for a spec string.
func mustModel(t *testing.T, spec string) *Model {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Extract(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeriveBaseSchemeInitOnly(t *testing.T) {
	m := mustModel(t, "t0=S0.1,A1.2;sch=base;kern=fast;crashes=500")
	d := Derive(m)
	if !d.Allows(Outcome{}) {
		t.Error("base scheme must allow the initial image")
	}
	if d.Allows(Outcome{1, 0, 0, 0}) || d.Allows(Outcome{0, 2, 0, 0}) {
		t.Error("base scheme persists nothing; no store may survive")
	}
}

func TestDeriveSingleStore(t *testing.T) {
	m := mustModel(t, "t0=S0.1;sch=cwsp;kern=fast;crashes=500")
	d := Derive(m)
	for _, o := range []Outcome{{}, {1, 0, 0, 0}} {
		if !d.Allows(o) {
			t.Errorf("outcome %s must be allowed", o)
		}
	}
	if d.Allows(Outcome{2, 0, 0, 0}) {
		t.Error("unwritten value allowed")
	}
	if d.Allows(Outcome{0, 1, 0, 0}) {
		t.Error("value on the wrong word allowed")
	}
}

func TestDeriveFIFOSameMC(t *testing.T) {
	// k0 and k2 share controller 0: the persist FIFO forbids the later
	// store surviving while the earlier is lost.
	m := mustModel(t, "t0=S0.1,S2.2;sch=persist-path;kern=fast;crashes=500")
	d := Derive(m)
	for _, o := range []Outcome{{}, {1, 0, 0, 0}, {1, 0, 2, 0}} {
		if !d.Allows(o) {
			t.Errorf("outcome %s must be allowed", o)
		}
	}
	inverted := Outcome{0, 0, 2, 0}
	if d.Allows(inverted) {
		t.Fatal("FIFO inversion allowed")
	}
	code, _ := Classify(m, inverted)
	if code != check.CodeLitmusFIFO {
		t.Errorf("FIFO inversion classified %s, want %s", code, check.CodeLitmusFIFO)
	}
}

func TestDeriveCrossMCNoOrder(t *testing.T) {
	// k0 (MC0) and k1 (MC1) are on different controllers: either order of
	// durability is legal without a sync between them.
	m := mustModel(t, "t0=S0.1,S1.2;sch=cwsp;kern=fast;crashes=500")
	d := Derive(m)
	for _, o := range []Outcome{{}, {1, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}} {
		if !d.Allows(o) {
			t.Errorf("outcome %s must be allowed (cross-MC stores are unordered)", o)
		}
	}
}

func TestDeriveDrainAtSync(t *testing.T) {
	// k1 (MC1) then an atomic on k2 (MC0): different controllers, so only
	// the sync-drain axiom ties them. A committed atomic with the earlier
	// store lost is the CWSP101 shape.
	const spec = "t0=S1.1,A2.5;sch=%s;kern=fast;crashes=500"
	violating := Outcome{0, 0, 5, 0}

	m := mustModel(t, "t0=S1.1,A2.5;sch=cwsp;kern=fast;crashes=500")
	d := Derive(m)
	if d.Allows(violating) {
		t.Fatal("cwsp: committed sync with earlier store lost allowed")
	}
	code, _ := Classify(m, violating)
	if code != check.CodeLitmusSyncOrder {
		t.Errorf("classified %s, want %s", code, check.CodeLitmusSyncOrder)
	}
	if !d.Allows(Outcome{0, 1, 5, 0}) {
		t.Error("cwsp: fully persisted outcome must be allowed")
	}
	// An uncommitted sync (crash during its drain stall) legally loses both.
	if !d.Allows(Outcome{0, 1, 0, 0}) || !d.Allows(Outcome{}) {
		t.Error("cwsp: pre-commit outcomes must be allowed")
	}

	// Capri's battery-backed buffers give sync points no persist-ordering
	// role: the same outcome is legal there.
	mc := mustModel(t, "t0=S1.1,A2.5;sch=capri;kern=fast;crashes=500")
	if !Derive(mc).Allows(violating) {
		t.Errorf("capri: %s must be allowed (no drain axiom); spec %s", violating, spec)
	}
}

func TestDeriveSyncGroupAtomicity(t *testing.T) {
	// Two committed atomics: the second visible with the first's store
	// lost breaks group atomicity (commit order is monotone per core).
	m := mustModel(t, "t0=A1.1,A2.2;sch=cwsp;kern=fast;crashes=500")
	d := Derive(m)
	partial := Outcome{0, 0, 2, 0}
	if d.Allows(partial) {
		t.Fatal("partial sync-group persistence allowed")
	}
	code, _ := Classify(m, partial)
	if code != check.CodeLitmusSyncAtomic {
		t.Errorf("classified %s, want %s", code, check.CodeLitmusSyncAtomic)
	}
	for _, o := range []Outcome{{}, {0, 1, 0, 0}, {0, 1, 2, 0}} {
		if !d.Allows(o) {
			t.Errorf("outcome %s must be allowed", o)
		}
	}
}

func TestDeriveBoundaryOrder(t *testing.T) {
	// BoundaryStall schemes: executing past a call boundary makes the
	// closed region's stores durable. k1/k3 share MC1; use k1 then k3 so
	// FIFO also binds — but a boundary between stores on DIFFERENT
	// controllers is the pure CWSP103 shape.
	m := mustModel(t, "t0=S1.1,C,S0.2,S0.3;sch=ido;kern=fast;crashes=500")
	d := Derive(m)
	// S0.3 durable means execution passed the boundary long before: S1.1
	// must have persisted.
	bad := Outcome{0, 0, 0, 0}
	bad[0] = 3
	if d.Allows(bad) {
		t.Fatal("boundary-stall scheme lost a pre-boundary store after crossing")
	}
	code, _ := Classify(m, bad)
	if code != check.CodeLitmusBoundary {
		t.Errorf("classified %s, want %s", code, check.CodeLitmusBoundary)
	}
	// The same shape is legal under cwsp: RBT boundaries do not stall.
	mr := mustModel(t, "t0=S1.1,C,S0.2,S0.3;sch=cwsp;kern=fast;crashes=500")
	if !Derive(mr).Allows(bad) {
		t.Error("cwsp: RBT boundaries do not stall; outcome must be allowed")
	}
}

func TestDerivePhantom(t *testing.T) {
	m := mustModel(t, "t0=S0.1;sch=cwsp;kern=fast;crashes=500")
	code, _ := Classify(m, Outcome{99, 0, 0, 0})
	if code != check.CodeLitmusPhantom {
		t.Errorf("phantom value classified %s, want %s", code, check.CodeLitmusPhantom)
	}
}

func TestExtractDedupCoalescing(t *testing.T) {
	// Capri coalesces the second store to the same line within a region;
	// a region boundary (call) resets the line set.
	m := mustModel(t, "t0=S0.1,S0.2,C,S0.3;sch=capri;kern=fast;crashes=500")
	var stores []mEvent
	for _, ev := range m.Cores[0].events {
		if ev.kind == mStore {
			stores = append(stores, ev)
		}
	}
	if len(stores) != 3 {
		t.Fatalf("want 3 tracked stores, got %d", len(stores))
	}
	if stores[0].coalesced || stores[2].coalesced {
		t.Error("first store of a region must journal (not coalesce)")
	}
	if !stores[1].coalesced {
		t.Error("repeated same-line store within a region must coalesce")
	}
	// Non-dedup schemes never coalesce.
	mn := mustModel(t, "t0=S0.1,S0.2;sch=cwsp;kern=fast;crashes=500")
	for _, ev := range mn.Cores[0].events {
		if ev.kind == mStore && ev.coalesced {
			t.Error("cwsp must not coalesce stores")
		}
	}
}

func TestExtractCompiledBoundaries(t *testing.T) {
	// The compiled program brackets calls with boundaries; the extraction
	// reads them back from the IR the machine executes, not from the spec.
	m := mustModel(t, "t0=S0.1,C,S1.2;sch=cwsp;kern=fast;crashes=500")
	sawBoundary := false
	for _, ev := range m.Cores[0].events {
		if ev.kind == mBoundary {
			sawBoundary = true
		}
	}
	if !sawBoundary {
		t.Fatal("compiled call produced no boundary event")
	}
	if m.Cores[0].nSegs < 2 {
		t.Errorf("call must split regions: got %d segments", m.Cores[0].nSegs)
	}
}

func TestDeriveMultiCoreOwnership(t *testing.T) {
	// Distinct per-core words: each core's projection judged independently.
	m := mustModel(t, "t0=S0.1;t1=S1.2;sch=cwsp;kern=fast;crashes=500")
	d := Derive(m)
	for _, o := range []Outcome{{}, {1, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}} {
		if !d.Allows(o) {
			t.Errorf("outcome %s must be allowed", o)
		}
	}
	if d.Allows(Outcome{2, 0, 0, 0}) {
		t.Error("core 1's value on core 0's word allowed")
	}
	// Shared word: any written value or init is allowed (sound cross-core
	// over-approximation), an unwritten value is not.
	ms := mustModel(t, "t0=S0.1;t1=S0.2;sch=cwsp;kern=fast;crashes=500")
	ds := Derive(ms)
	for _, o := range []Outcome{{}, {1, 0, 0, 0}, {2, 0, 0, 0}} {
		if !ds.Allows(o) {
			t.Errorf("shared-word outcome %s must be allowed", o)
		}
	}
	if ds.Allows(Outcome{3, 0, 0, 0}) {
		t.Error("unwritten value on a shared word allowed")
	}
}

func TestDeriveRollbackScheme(t *testing.T) {
	// MCSpec schemes may roll back an admitted store of an unretired
	// region — losing a store NOT behind any FIFO suffix — while
	// persist-path (no MC speculation) cannot lose an isolated earlier
	// store that a committed later one proves admitted... on the same
	// controller. Same-MC pair, no sync: under mc-spec, "earlier lost,
	// later kept" is reachable via rollback of only the earlier record.
	m := mustModel(t, "t0=S0.1,S2.2;sch=mc-spec;kern=fast;crashes=500")
	d := Derive(m)
	if !d.Allows(Outcome{0, 0, 2, 0}) {
		t.Error("mc-spec: undo-log rollback of the earlier store must be allowed")
	}
	// persist-path has no undo logs: the same outcome is a FIFO inversion.
	mp := mustModel(t, "t0=S0.1,S2.2;sch=persist-path;kern=fast;crashes=500")
	if Derive(mp).Allows(Outcome{0, 0, 2, 0}) {
		t.Error("persist-path: FIFO inversion must not be allowed")
	}
}
