package litmus

import (
	"errors"
	"fmt"

	"cwsp/internal/check"
	"cwsp/internal/faults"
	"cwsp/internal/sim"
)

// Outcome labels for one executed litmus cell.
const (
	// ResAllowed: the observed crash image is inside the derived set.
	ResAllowed = "allowed"
	// ResViolation: the observed image is outside the derived set — a
	// persistency-model violation, classified as a CWSP1xx code.
	ResViolation = "violation"
	// ResDetected: an injected fault was caught by a validation layer
	// (sealed journal / drain ledger) before producing a crash image.
	ResDetected = "detected"
	// ResUnjudged: the derivation hit its enumeration cap (CWSP190); the
	// cell is reported but not judged.
	ResUnjudged = "unjudged"
	// ResError: the experiment itself failed (setup or simulation error).
	ResError = "error"
)

// Result is one litmus execution's deterministic record.
type Result struct {
	Spec    string `json:"spec"`
	Outcome string `json:"outcome"`

	Crash        int64   `json:"crash,omitempty"`         // absolute crash cycle
	GoldenCycles int64   `json:"golden_cycles,omitempty"` // uninterrupted run length
	Observed     Outcome `json:"observed"`
	AllowedCount int     `json:"allowed_count,omitempty"`

	// Code/Msg carry the CWSP1xx classification (violation or unjudged).
	Code string `json:"code,omitempty"`
	Msg  string `json:"msg,omitempty"`

	Detected *sim.CorruptionError `json:"detected,omitempty"`
	Injected []faults.Injected    `json:"injected,omitempty"`
	Err      string               `json:"err,omitempty"`
}

// Failed reports whether the cell violated the litmus criterion.
func (r *Result) Failed() bool { return r.Outcome == ResViolation }

// Diag renders the result as an internal/check diagnostic (nil when the
// cell carries no code). Fn names the litmus program; Block/Index/Region
// do not apply.
func (r *Result) Diag() *check.Diagnostic {
	if r.Code == "" {
		return nil
	}
	sev := check.Error
	if r.Code == check.CodeLitmusCap {
		sev = check.Warning
	}
	return &check.Diagnostic{
		Code: r.Code, Severity: sev, Fn: "litmus",
		Block: -1, Index: -1, Region: -1,
		Msg: fmt.Sprintf("%s; spec %s; observed %s", r.Msg, r.Spec, r.Observed),
	}
}

// RunOptions tune one litmus execution.
type RunOptions struct {
	// Unsealed disables the journal/ledger validation layers — the negative
	// control: injected faults then surface as CWSP1xx violations instead
	// of detections, demonstrating the checker sees what the seals prevent.
	Unsealed bool
	// MaxSteps caps simulation steps (0: a litmus-sized default).
	MaxSteps int64
}

// RunSpec executes one litmus end to end: derive the allowed set from the
// compiled program, run uninterrupted for the cycle budget, crash at the
// plan's cycle with the plan's faults resolved against live machine state,
// and judge the reconstructed NVM image of the tracked words against the
// derived set. Setup impossibilities (unknown scheme, malformed program)
// return an error; everything the experiment itself can produce is folded
// into the Result.
func RunSpec(s *Spec, opt RunOptions) (*Result, error) {
	p, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	model, err := Extract(p)
	if err != nil {
		return nil, err
	}
	derived := Derive(model)

	res := &Result{Spec: s.Render(), Observed: Outcome{}}
	cfg := p.Cfg
	cfg.Unsealed = opt.Unsealed
	if opt.MaxSteps > 0 {
		cfg.MaxSteps = opt.MaxSteps
	} else if cfg.MaxSteps == 0 || cfg.MaxSteps > 1_000_000 {
		cfg.MaxSteps = 1_000_000 // litmus programs are tiny; bound runaways
	}

	golden, err := newMachine(p, cfg)
	if err != nil {
		return nil, err
	}
	gres, err := golden.Run()
	if err != nil {
		res.Outcome, res.Err = ResError, fmt.Sprintf("golden run: %v", err)
		return res, nil
	}
	res.GoldenCycles = gres.Stats.Cycles

	crashM, err := newMachine(p, cfg)
	if err != nil {
		return nil, err
	}
	cycle := s.Plan.CrashCycle(0, gres.Stats.Cycles)
	res.Crash = cycle
	if err := crashM.RunUntil(cycle); err != nil {
		res.Outcome, res.Err = ResError, fmt.Sprintf("run to crash: %v", err)
		return res, nil
	}
	cf, injected := faults.Resolve(s.Plan, 0, crashM, cycle)
	res.Injected = injected
	cs, err := crashM.CrashAtFaults(cycle, cf)
	if err != nil {
		if ce, ok := asCorruption(err); ok {
			res.Outcome, res.Detected = ResDetected, ce
			return res, nil
		}
		res.Outcome, res.Err = ResError, fmt.Sprintf("crash reconstruction: %v", err)
		return res, nil
	}

	for k := 0; k < NumTracked; k++ {
		res.Observed[k] = cs.NVM.Load(TrackAddr(k))
	}
	res.AllowedCount = derived.Count()
	switch {
	case derived.Capped:
		res.Outcome = ResUnjudged
		res.Code = check.CodeLitmusCap
		res.Msg = "outcome enumeration hit its cap; cell not judged"
	case derived.Allows(res.Observed):
		res.Outcome = ResAllowed
	default:
		res.Outcome = ResViolation
		res.Code, res.Msg = Classify(model, res.Observed)
	}
	return res, nil
}

func newMachine(p *Prepared, cfg sim.Config) (*sim.Machine, error) {
	m, err := sim.NewThreaded(p.Prog, cfg, p.Sch, p.Specs)
	if err != nil {
		return nil, fmt.Errorf("litmus: machine: %w", err)
	}
	InitTracked(m)
	return m, nil
}

func asCorruption(err error) (*sim.CorruptionError, bool) {
	var ce *sim.CorruptionError
	ok := errors.As(err, &ce)
	return ce, ok
}
