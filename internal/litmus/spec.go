// Package litmus is the persistency-model litmus engine: it checks the
// memory system the way internal/check checks the compiler. A litmus test
// is a tiny generated program — stores, fences, atomics, and call
// boundaries interleaved across cores and memory controllers — plus a
// seeded crash point and an optional fault plan. The engine statically
// derives the set of post-crash NVM outcomes the paper's ordering axioms
// allow for the scheme under test (Section VIII: stores issued before a
// synchronization point persist first), executes the litmus under the real
// simulated persist path, and flags any observed crash-image outcome
// outside the derived set as a CWSP1xx diagnostic through the
// internal/check diag engine.
//
// Every test serializes to a compact single-token spec string, so a failing
// campaign cell replays standalone from one flag (`cwsplitmus -replay
// '<spec>'`), mirroring the faults subsystem's `cwsprecover -faults`
// convention — in fact the litmus spec grammar is a strict superset of the
// faults spec grammar: a litmus spec's crash schedule and fault points ARE
// a faults.Plan.
package litmus

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"cwsp/internal/faults"
)

// NumTracked is the number of tracked litmus words. Tracked addresses are
// 4 KiB apart, so with the default 2-MC config word k lives on MC k%2 —
// the generator exercises both same-MC and cross-MC store pairs.
const NumTracked = 4

// EvKind is one litmus event class.
type EvKind uint8

// The event vocabulary.
const (
	// EvStore: plain store track[K] = V (asynchronous persist path).
	EvStore EvKind = iota
	// EvFence: a synchronization point with no store (OpFence).
	EvFence
	// EvAtomic: atomic exchange track[K] = V — a synchronization point
	// whose store persists synchronously at the group commit.
	EvAtomic
	// EvCall: a call to an empty helper — a plain region boundary without
	// synchronization semantics (boundary-stall schemes stall here; MC
	// speculation does not).
	EvCall
)

// Event is one litmus program event.
type Event struct {
	Kind EvKind
	K    int   // tracked-word index (EvStore, EvAtomic)
	V    int64 // stored value (EvStore, EvAtomic); unique per test
}

func (e Event) String() string {
	switch e.Kind {
	case EvStore:
		return fmt.Sprintf("S%d.%d", e.K, e.V)
	case EvAtomic:
		return fmt.Sprintf("A%d.%d", e.K, e.V)
	case EvFence:
		return "F"
	case EvCall:
		return "C"
	}
	return "?"
}

// Thread is one core's event sequence.
type Thread []Event

// Spec is one complete, reproducible litmus test: the program shape, the
// scheme and kernel under test, and the crash/fault schedule. The zero
// fields of Plan beyond Crashes[0] are unused — litmus crashes once.
type Spec struct {
	// Seed is provenance: the RNG seed the spec was generated from (0 for
	// hand-written or shrunk specs). The fields below are self-contained.
	Seed    int64
	Threads []Thread
	// Scheme is the crash-consistency scheme name (schemes.ByName).
	Scheme string
	// Kernel selects the simulation kernel: "fast" or "ref".
	Kernel string
	// Plan carries the crash permille (Crashes[0]) and the fault points
	// (litmus kinds only: torn-log, drop-wpq, reorder-wpq), all at crash
	// ordinal 0.
	Plan *faults.Plan
}

// Kernel names.
const (
	KernelFast = "fast"
	KernelRef  = "ref"
)

// litmusFaultKinds are the fault classes a litmus plan may carry: the ones
// that perturb the persist path's ordering. Checkpoint corruption targets
// recovery's register reconstruction, which the litmus outcome check does
// not observe.
var litmusFaultKinds = []faults.Kind{faults.TornLog, faults.DropWPQ, faults.ReorderWPQ}

func litmusKind(k faults.Kind) bool {
	for _, v := range litmusFaultKinds {
		if v == k {
			return true
		}
	}
	return false
}

// Render serializes the spec as a compact single-token string:
//
//	seed=7;t0=S0.1,F,A2.3;t1=S1.2,C,S0.4;sch=cwsp;kern=fast;crashes=350;drop-wpq@0:5:1
//
// Terms are semicolon-separated: optional provenance seed, one t<core>=
// event list per thread, the scheme and kernel, then the crash permille
// and fault points in the faults spec grammar. Parse(s.Render())
// round-trips exactly.
func (s *Spec) Render() string {
	var b strings.Builder
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed=%d;", s.Seed)
	}
	for ti, th := range s.Threads {
		fmt.Fprintf(&b, "t%d=", ti)
		for i, ev := range th {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ev.String())
		}
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "sch=%s;kern=%s;", s.Scheme, s.Kernel)
	plan := s.Plan.Clone()
	plan.Seed = 0 // the litmus seed is the provenance; don't render it twice
	b.WriteString(plan.Spec())
	return b.String()
}

// Parse parses Render's format back into a spec.
func Parse(str string) (*Spec, error) {
	s := &Spec{}
	var faultTerms []string
	threads := map[int]Thread{}
	maxT := -1
	for _, term := range strings.Split(strings.TrimSpace(str), ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		switch {
		case strings.HasPrefix(term, "seed="):
			v, err := strconv.ParseInt(term[len("seed="):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("litmus: bad seed in %q: %v", term, err)
			}
			s.Seed = v
		case strings.HasPrefix(term, "sch="):
			s.Scheme = term[len("sch="):]
		case strings.HasPrefix(term, "kern="):
			s.Kernel = term[len("kern="):]
		case len(term) > 1 && term[0] == 't' && term[1] >= '0' && term[1] <= '9':
			eq := strings.IndexByte(term, '=')
			if eq < 0 {
				return nil, fmt.Errorf("litmus: thread term %q wants t<core>=<events>", term)
			}
			ti, err := strconv.Atoi(term[1:eq])
			if err != nil || ti < 0 || ti >= 16 {
				return nil, fmt.Errorf("litmus: bad thread index in %q", term)
			}
			if _, dup := threads[ti]; dup {
				return nil, fmt.Errorf("litmus: duplicate thread t%d", ti)
			}
			th, err := parseThread(term[eq+1:])
			if err != nil {
				return nil, err
			}
			threads[ti] = th
			if ti > maxT {
				maxT = ti
			}
		default:
			faultTerms = append(faultTerms, term)
		}
	}
	if maxT < 0 {
		return nil, fmt.Errorf("litmus: spec %q has no thread terms", str)
	}
	for ti := 0; ti <= maxT; ti++ {
		th, ok := threads[ti]
		if !ok {
			return nil, fmt.Errorf("litmus: thread indices not dense: missing t%d", ti)
		}
		s.Threads = append(s.Threads, th)
	}
	if s.Scheme == "" {
		return nil, fmt.Errorf("litmus: spec %q has no sch= term", str)
	}
	switch s.Kernel {
	case KernelFast, KernelRef:
	case "":
		return nil, fmt.Errorf("litmus: spec %q has no kern= term", str)
	default:
		return nil, fmt.Errorf("litmus: unknown kernel %q (want %s or %s)", s.Kernel, KernelFast, KernelRef)
	}
	plan, err := faults.ParseSpec(strings.Join(faultTerms, ";"))
	if err != nil {
		return nil, err
	}
	if plan.Depth() != 1 {
		return nil, fmt.Errorf("litmus: plan has %d crashes; litmus tests crash exactly once", plan.Depth())
	}
	for _, pt := range plan.Points {
		if !litmusKind(pt.Kind) {
			return nil, fmt.Errorf("litmus: fault kind %q is not a litmus persist-path kind", pt.Kind)
		}
	}
	s.Plan = plan
	return s, nil
}

func parseThread(list string) (Thread, error) {
	var th Thread
	if strings.TrimSpace(list) == "" {
		return th, nil
	}
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("litmus: empty event token")
		}
		switch tok[0] {
		case 'F':
			if tok != "F" {
				return nil, fmt.Errorf("litmus: bad event %q", tok)
			}
			th = append(th, Event{Kind: EvFence})
		case 'C':
			if tok != "C" {
				return nil, fmt.Errorf("litmus: bad event %q", tok)
			}
			th = append(th, Event{Kind: EvCall})
		case 'S', 'A':
			dot := strings.IndexByte(tok, '.')
			if dot < 2 {
				return nil, fmt.Errorf("litmus: event %q wants %c<k>.<v>", tok, tok[0])
			}
			k, err := strconv.Atoi(tok[1:dot])
			if err != nil || k < 0 || k >= NumTracked {
				return nil, fmt.Errorf("litmus: tracked index out of [0,%d) in %q", NumTracked, tok)
			}
			v, err := strconv.ParseInt(tok[dot+1:], 10, 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("litmus: store value in %q must be a positive integer", tok)
			}
			kind := EvStore
			if tok[0] == 'A' {
				kind = EvAtomic
			}
			th = append(th, Event{Kind: kind, K: k, V: v})
		default:
			return nil, fmt.Errorf("litmus: unrecognized event %q", tok)
		}
	}
	return th, nil
}

// Clone deep-copies the spec (the shrinker mutates copies).
func (s *Spec) Clone() *Spec {
	q := &Spec{Seed: s.Seed, Scheme: s.Scheme, Kernel: s.Kernel, Plan: s.Plan.Clone()}
	for _, th := range s.Threads {
		q.Threads = append(q.Threads, append(Thread(nil), th...))
	}
	return q
}

// Events counts the spec's total event count.
func (s *Spec) Events() int {
	n := 0
	for _, th := range s.Threads {
		n += len(th)
	}
	return n
}

// GenOptions shape NewSpec's random draw.
type GenOptions struct {
	// Cores is the thread count (1..3; default 2).
	Cores int
	// Events is the maximum events per thread (>= 1; default 5).
	Events int
	// Points is the maximum fault points (>= 0); each spec draws a uniform
	// count in [0, Points].
	Points int
}

// NewSpec draws a reproducible litmus shape from a seeded RNG: per-thread
// event sequences over the tracked words (stores 3:1 over each of fence,
// atomic, and call), globally unique store values so every crash-image
// word identifies the exact store that produced it, a crash point in
// [10, 990] permille of the golden run, and 0..Points persist-path fault
// points. Scheme and kernel are left for the campaign to fill in: the same
// shape runs under every (scheme, kernel) cell.
func NewSpec(seed int64, opt GenOptions) *Spec {
	if opt.Cores < 1 {
		opt.Cores = 2
	}
	if opt.Cores > 3 {
		opt.Cores = 3
	}
	if opt.Events < 1 {
		opt.Events = 5
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Spec{Seed: seed}
	nextVal := int64(1)
	for t := 0; t < opt.Cores; t++ {
		n := 1 + rng.Intn(opt.Events)
		th := make(Thread, 0, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(6) {
			case 0:
				th = append(th, Event{Kind: EvFence})
			case 1:
				th = append(th, Event{Kind: EvAtomic, K: rng.Intn(NumTracked), V: nextVal})
				nextVal++
			case 2:
				th = append(th, Event{Kind: EvCall})
			default:
				th = append(th, Event{Kind: EvStore, K: rng.Intn(NumTracked), V: nextVal})
				nextVal++
			}
		}
		s.Threads = append(s.Threads, th)
	}
	points := 0
	if opt.Points > 0 {
		points = rng.Intn(opt.Points + 1)
	}
	plan := &faults.Plan{Crashes: []int64{10 + rng.Int63n(981)}}
	for i := 0; i < points; i++ {
		pt := faults.Point{
			Kind: litmusFaultKinds[rng.Intn(len(litmusFaultKinds))],
			Pick: rng.Int63n(1 << 30),
		}
		for pt.XOR == 0 {
			pt.XOR = rng.Uint64()
		}
		plan.Points = append(plan.Points, pt)
	}
	s.Plan = plan
	return s
}
