package litmus

import (
	"fmt"

	"cwsp/internal/ir"
	"cwsp/internal/sim"
)

// The model extraction pass: re-derive, from the *compiled* IR the machine
// actually executes, the per-core event sequences the outcome derivation
// reasons over. Reading the compiled program (not the litmus spec) is the
// point — region boundaries, checkpoint placement, and call bracketing are
// compiler decisions, and the allowed-outcome set must reflect the regions
// the hardware really sees, the same way internal/check re-derives the
// compiler's invariants from its output instead of its bookkeeping.

// mKind classifies a model event.
type mKind uint8

const (
	// mStore: an asynchronous persist-path store to a tracked word.
	mStore mKind = iota
	// mSync: a synchronization point (fence or atomic); the whole sync
	// group commits at one instant.
	mSync
	// mBoundary: a region boundary crossing (OpBoundary, or a call, whose
	// callee transition closes the region). Consecutive boundaries with no
	// intervening event are merged: they close the same region.
	mBoundary
)

// mEvent is one event of a core's extracted model.
type mEvent struct {
	kind mKind
	k    int   // tracked word (mStore; mSync with hasStore)
	v    int64 // stored value (mStore; mSync with hasStore)
	mc   int   // memory controller of the tracked word (mStore)

	hasStore bool // mSync: an atomic carries a store; a fence does not

	// coalesced marks a DedupLines store absorbed into an already-buffered
	// redo line of the same region: it updates NVM directly with no journal
	// record and no WPQ traversal. Only set when the scheme dedups.
	coalesced bool

	// seg is the region ordinal the event executes in. A boundary belongs
	// to the region it closes.
	seg int
}

// coreModel is one core's extracted event sequence.
type coreModel struct {
	events []mEvent
	nSegs  int // total region count (trailing region included)
}

// Axioms are the scheme-derived ordering rules the derivation enforces.
// Each maps to one CWSP1xx code: relaxing exactly one axiom and re-deriving
// classifies which rule an observed violation broke.
type Axioms struct {
	// Persist: stores reach NVM at all. Without it the crash image is the
	// initial image (base, region-formation, psp-ideal).
	Persist bool
	// DrainAtSync (CWSP101): a committed synchronization point implies
	// every earlier store of its core was admitted and can no longer roll
	// back (handleSyncGroup drains the RBT and the open region's
	// persistMax). Holds for UseRBT and BoundaryStall schemes; Capri's
	// battery-backed buffers give sync points no persist-ordering role.
	DrainAtSync bool
	// BoundaryOrder (CWSP103): once execution proceeds past a region
	// boundary, the closed region's stores are durable (closeRegion stalls
	// to persistMax). BoundaryStall schemes only.
	BoundaryOrder bool
	// Rollback: speculative stores of unretired regions may be undone via
	// the MC undo logs (MCSpec schemes). Regions retire in order.
	Rollback bool
	// Dedup: repeated stores to a line within one region coalesce into the
	// buffered redo line — NVM is updated with no journal record, so a
	// coalesced store is visible iff executed and its line's journaled
	// predecessor survives (DedupLines / Capri).
	Dedup bool
	// NumMCs: tracked word k lives on controller k%NumMCs; persist FIFO
	// (CWSP102) holds per (core, controller) stream.
	NumMCs int
}

// axiomsFor derives the axiom set from the scheme and config under test.
func axiomsFor(sch sim.Scheme, cfg sim.Config) Axioms {
	return Axioms{
		Persist:       sch.Persist,
		DrainAtSync:   sch.Persist && (sch.UseRBT || sch.BoundaryStall),
		BoundaryOrder: sch.Persist && sch.BoundaryStall,
		Rollback:      sch.Persist && sch.MCSpec,
		Dedup:         sch.Persist && sch.DedupLines,
		NumMCs:        cfg.NumMCs,
	}
}

// Model is the extracted program model plus the axioms: everything the
// outcome derivation needs.
type Model struct {
	Cores []coreModel
	Ax    Axioms

	// writers[k] lists the cores that ever write tracked word k (plain or
	// atomic). Single-writer words get the exact per-core chain semantics;
	// multi-writer words get a sound cross-core over-approximation.
	writers [NumTracked][]int
	// values[k] is every value the program can ever write to word k — the
	// phantom check (CWSP104): an observed value outside values[k] ∪ {0}
	// was written by no store at all.
	values [NumTracked]map[int64]bool
}

// trackedIndex maps an address to its tracked-word index, or -1.
func trackedIndex(addr int64) int {
	if addr < TrackBase {
		return -1
	}
	d := addr - TrackBase
	if d%0x1000 != 0 || d/0x1000 >= NumTracked {
		return -1
	}
	return int(d / 0x1000)
}

// Extract builds the model from a prepared litmus: it walks each thread
// function's straight-line block chain in the (possibly compiled) program,
// resolving constant address and value operands, and classifies every
// instruction the persist path sees. Litmus programs are branch-free by
// construction; an OpBr is a hard error.
func Extract(p *Prepared) (*Model, error) {
	m := &Model{Ax: axiomsFor(p.Sch, p.Cfg)}
	for k := range m.values {
		m.values[k] = map[int64]bool{}
	}
	for ti := range p.Spec.Threads {
		fn := p.Prog.Funcs[threadName(ti)]
		if fn == nil {
			return nil, fmt.Errorf("litmus: extract: no function %s", threadName(ti))
		}
		cm, err := extractFunc(fn, m.Ax)
		if err != nil {
			return nil, err
		}
		m.Cores = append(m.Cores, cm)
		for _, ev := range cm.events {
			if ev.kind == mStore || (ev.kind == mSync && ev.hasStore) {
				m.values[ev.k][ev.v] = true
				found := false
				for _, c := range m.writers[ev.k] {
					if c == ti {
						found = true
					}
				}
				if !found {
					m.writers[ev.k] = append(m.writers[ev.k], ti)
				}
			}
		}
	}
	return m, nil
}

func extractFunc(fn *ir.Function, ax Axioms) (coreModel, error) {
	cm := coreModel{}
	consts := map[ir.Reg]int64{}
	resolve := func(o ir.Operand) (int64, bool) {
		switch o.Kind {
		case ir.OperandImm:
			return o.Imm, true
		case ir.OperandReg:
			v, ok := consts[o.Reg]
			return v, ok
		}
		return 0, false
	}

	seg := 0
	// linesInSeg tracks which tracked words already journaled a store in
	// the current region — the dedup predicate (tracked words are on
	// distinct cache lines, so line identity is word identity).
	linesInSeg := map[int]bool{}
	emit := func(ev mEvent) {
		ev.seg = seg
		cm.events = append(cm.events, ev)
	}
	boundary := func() {
		// Merge consecutive boundaries: with no event between them they
		// close empty regions, which cannot change any outcome.
		if n := len(cm.events); n > 0 && cm.events[n-1].kind == mBoundary {
			return
		}
		emit(mEvent{kind: mBoundary})
		seg++
		linesInSeg = map[int]bool{}
	}

	bi := 0
	seen := map[int]bool{}
	for {
		if bi < 0 || bi >= len(fn.Blocks) || seen[bi] {
			return cm, fmt.Errorf("litmus: extract: %s block chain malformed at b%d", fn.Name, bi)
		}
		seen[bi] = true
		blk := fn.Blocks[bi]
		next := -1
		done := false
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			switch in.Op {
			case ir.OpConst:
				consts[in.Dst] = in.A.Imm
			case ir.OpMov:
				if v, ok := resolve(in.A); ok {
					consts[in.Dst] = v
				} else {
					delete(consts, in.Dst)
				}
			case ir.OpStore:
				addr, aok := resolve(in.B)
				if !aok {
					return cm, fmt.Errorf("litmus: extract: %s b%d[%d]: unresolvable store address", fn.Name, bi, ii)
				}
				k := trackedIndex(addr + in.Off)
				if k < 0 {
					continue // checkpoint/stack traffic: not a tracked word
				}
				v, vok := resolve(in.A)
				if !vok {
					return cm, fmt.Errorf("litmus: extract: %s b%d[%d]: unresolvable store value", fn.Name, bi, ii)
				}
				ev := mEvent{kind: mStore, k: k, v: v, mc: k % ax.NumMCs}
				if ax.Dedup {
					ev.coalesced = linesInSeg[k]
					linesInSeg[k] = true
				}
				emit(ev)
			case ir.OpAtomicXchg:
				addr, aok := resolve(in.A)
				if !aok {
					return cm, fmt.Errorf("litmus: extract: %s b%d[%d]: unresolvable atomic address", fn.Name, bi, ii)
				}
				k := trackedIndex(addr + in.Off)
				ev := mEvent{kind: mSync}
				if k >= 0 {
					v, vok := resolve(in.B)
					if !vok {
						return cm, fmt.Errorf("litmus: extract: %s b%d[%d]: unresolvable atomic value", fn.Name, bi, ii)
					}
					ev.hasStore, ev.k, ev.v = true, k, v
				}
				emit(ev)
				delete(consts, in.Dst)
			case ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAlloc, ir.OpEmit:
				// Sync-path ops litmus programs never contain; treat as
				// plain sync points if a transform ever introduces one.
				emit(mEvent{kind: mSync})
				delete(consts, in.Dst)
			case ir.OpFence:
				emit(mEvent{kind: mSync})
			case ir.OpCall:
				boundary()
				delete(consts, in.Dst)
			case ir.OpBoundary:
				boundary()
			case ir.OpCkpt:
				// Checkpoint-area traffic; never a tracked word.
			case ir.OpLoad:
				delete(consts, in.Dst)
			case ir.OpJmp:
				next = in.Then
			case ir.OpRet:
				done = true
			case ir.OpBr:
				return cm, fmt.Errorf("litmus: extract: %s b%d[%d]: litmus programs are branch-free", fn.Name, bi, ii)
			default:
				delete(consts, in.Dst)
			}
		}
		if done {
			break
		}
		bi = next
	}
	// Drop a trailing boundary event: nothing executes after it, so it can
	// close nothing observably (the final region closes at return instead).
	if n := len(cm.events); n > 0 && cm.events[n-1].kind == mBoundary {
		cm.events = cm.events[:n-1]
		seg--
	}
	cm.nSegs = seg + 1
	return cm, nil
}
