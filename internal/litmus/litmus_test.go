package litmus

import (
	"strings"
	"testing"
)

// violatingSpec is a minimal unsealed reproducer found by a real campaign:
// a dropped WPQ tail makes the committed atomic durable while the earlier
// store is lost — CWSP101 under a drain scheme.
const violatingSpec = "t0=;t1=S1.1,A3.3;sch=cwsp;kern=fast;crashes=666;drop-wpq@0:1925955:2bb793591a43f1ae"

func TestRunSpecDeterministic(t *testing.T) {
	s, err := Parse("seed=3;t0=S0.7,F,A2.9;t1=S1.8,C,S3.10;sch=cwsp;kern=fast;crashes=420")
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunSpec(s, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(s.Clone(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Observed != b.Observed || a.Outcome != b.Outcome || a.Crash != b.Crash {
		t.Errorf("same spec, different results: %+v vs %+v", a, b)
	}
	if a.Outcome != ResAllowed {
		t.Errorf("fault-free crash must be allowed, got %s (%s: %s)", a.Outcome, a.Code, a.Msg)
	}
}

func TestRunSpecBothKernelsAllSchemes(t *testing.T) {
	// A fault-free crash must land inside the derived set for every scheme
	// under both kernels — the core soundness contract.
	for _, sch := range AllSchemes {
		for _, kern := range AllKernels {
			spec := "t0=S0.1,F,A2.3;t1=S1.2,C,S3.4;sch=" + sch + ";kern=" + kern + ";crashes=500"
			s, err := Parse(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSpec(s, RunOptions{})
			if err != nil {
				t.Fatalf("%s/%s: %v", sch, kern, err)
			}
			if res.Outcome != ResAllowed {
				t.Errorf("%s/%s: fault-free crash judged %s (%s: %s), observed %s",
					sch, kern, res.Outcome, res.Code, res.Msg, res.Observed)
			}
		}
	}
}

func TestRunSpecSealedDetectsInjectedFault(t *testing.T) {
	s, err := Parse(violatingSpec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSpec(s, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ResDetected {
		t.Fatalf("sealed run must detect the injected drop, got %s (observed %s)",
			res.Outcome, res.Observed)
	}
	if res.Detected == nil {
		t.Error("detected result carries no corruption record")
	}
}

func TestRunSpecUnsealedFlagsViolation(t *testing.T) {
	s, err := Parse(violatingSpec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSpec(s, RunOptions{Unsealed: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ResViolation {
		t.Fatalf("unsealed run must surface the dropped drain as a violation, got %s (observed %s)",
			res.Outcome, res.Observed)
	}
	if !strings.HasPrefix(res.Code, "CWSP1") {
		t.Errorf("violation code %q is not a CWSP1xx litmus diagnostic", res.Code)
	}
	d := res.Diag()
	if d == nil || d.Code != res.Code {
		t.Errorf("violation must render a diagnostic with its code, got %+v", d)
	}
}

func TestShrinkKeepsFailureAndShrinks(t *testing.T) {
	s, err := Parse(violatingSpec)
	if err != nil {
		t.Fatal(err)
	}
	opt := RunOptions{Unsealed: true}
	shrunk, res, err := Shrink(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("shrunk spec no longer fails: %s", res.Outcome)
	}
	if shrunk.Events() > s.Events() {
		t.Errorf("shrink grew the program: %d -> %d events", s.Events(), shrunk.Events())
	}
	// The reproducer must itself replay to the same failure.
	replayed, err := Parse(shrunk.Render())
	if err != nil {
		t.Fatalf("shrunk spec does not parse: %v", err)
	}
	rres, err := RunSpec(replayed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Failed() {
		t.Errorf("parsed shrunk spec does not fail: %s", rres.Outcome)
	}
	cmd := ReplayCommand(shrunk)
	if !strings.HasPrefix(cmd, "cwsplitmus -replay '") {
		t.Errorf("replay command malformed: %q", cmd)
	}
}
