package litmus

import (
	"fmt"

	"cwsp/internal/check"
)

// The outcome derivation: from the extracted model and the scheme's axioms,
// enumerate every post-crash NVM image of the tracked words the persist
// semantics allow. The enumeration mirrors the machine's reconstruction
// exactly (sim.Machine.reconstruct): the journal is unwound newest-first,
// a record that never drained (or rolled back via an MC undo log) restores
// its pre-store value — so for each word the surviving value is the value
// written *immediately before the oldest bad record*, not the newest good
// record's. Coalesced (DedupLines) stores and synchronous group commits
// thread through that chain without records of their own.
//
// Per core the derivation is exact for words only that core writes; words
// written by several cores get a sound cross-core over-approximation (any
// written value or the initial value), since the global journal interleaving
// is timing-dependent. Soundness direction matters: the derived set may be
// larger than reachable, never smaller, so a flagged outcome is always a
// real violation of the axioms as stated.

// Outcome is one post-crash image of the tracked words (0 = initial value;
// store values are strictly positive, so the encoding is unambiguous).
type Outcome [NumTracked]int64

func (o Outcome) String() string {
	return fmt.Sprintf("[%d %d %d %d]", o[0], o[1], o[2], o[3])
}

// relax names the axiom the derivation drops when classifying a violation:
// the first single relaxation that re-admits an observed outcome is the
// axiom it broke.
type relax uint8

const (
	relaxNone relax = iota
	relaxDrain      // drop DrainAtSync      -> CWSP101
	relaxFIFO       // drop per-(core,MC) FIFO -> CWSP102
	relaxBoundary   // drop BoundaryOrder    -> CWSP103
	relaxSyncAtomic // drop group atomicity  -> CWSP105
)

// deriveBudget caps scenario evaluations per core. Litmus programs are
// tiny (<= ~8 events per thread), so real derivations stay far below it; a
// capped derivation refuses to judge (CWSP190) rather than misjudge.
const deriveBudget = 2_000_000

// Derived is the allowed outcome set, factored per core: a full outcome is
// allowed iff each core's projection onto the words it exclusively writes
// is reachable in that core's scenario enumeration, and every shared or
// unwritten word holds a legitimately written value (or the initial one).
type Derived struct {
	m  *Model
	rx relax

	// coreVals[c] holds core c's reachable projections (non-owned
	// components zeroed).
	coreVals []map[Outcome]bool
	// Capped: the enumeration hit deriveBudget; the set is incomplete and
	// must not be used to flag violations.
	Capped bool
}

// Derive enumerates the allowed outcome set under the model's full axioms.
func Derive(m *Model) *Derived { return deriveRelax(m, relaxNone) }

func deriveRelax(m *Model, rx relax) *Derived {
	d := &Derived{m: m, rx: rx}
	if !m.Ax.Persist {
		// No persist path: the crash image is the initial image.
		return d
	}
	for c := range m.Cores {
		budget := deriveBudget
		vals, capped := deriveCore(m, c, rx, &budget)
		d.coreVals = append(d.coreVals, vals)
		if capped {
			d.Capped = true
		}
	}
	return d
}

// Count returns the size of the derived set's per-core factorization: the
// product of per-core projection counts (shared-word slack not included).
func (d *Derived) Count() int {
	if !d.m.Ax.Persist {
		return 1
	}
	n := 1
	for _, vs := range d.coreVals {
		if len(vs) > 0 {
			n *= len(vs)
		}
	}
	return n
}

// owned reports whether exactly one core ever writes word k (and which).
func (m *Model) owned(k int) (int, bool) {
	if len(m.writers[k]) == 1 {
		return m.writers[k][0], true
	}
	return -1, false
}

// Phantom reports a word whose observed value was written by no store at
// all — torn or corrupt data, never a mere ordering anomaly.
func (m *Model) Phantom(o Outcome) (int, bool) {
	for k := 0; k < NumTracked; k++ {
		if o[k] != 0 && !m.values[k][o[k]] {
			return k, true
		}
	}
	return -1, false
}

// Allows reports whether the observed outcome is inside the derived set.
// Callers must treat Capped derivations as non-judging.
func (d *Derived) Allows(o Outcome) bool {
	m := d.m
	if !m.Ax.Persist {
		return o == Outcome{}
	}
	for k := 0; k < NumTracked; k++ {
		if _, ok := m.owned(k); ok {
			continue // judged via the owner's projection below
		}
		if len(m.writers[k]) == 0 {
			if o[k] != 0 {
				return false
			}
			continue
		}
		// Shared word: sound cross-core over-approximation.
		if o[k] != 0 && !m.values[k][o[k]] {
			return false
		}
	}
	for c := range m.Cores {
		var proj Outcome
		for k := 0; k < NumTracked; k++ {
			if oc, ok := m.owned(k); ok && oc == c {
				proj[k] = o[k]
			}
		}
		if !d.coreVals[c][proj] {
			return false
		}
	}
	return true
}

// Classify names the axiom an out-of-set outcome broke: the first single
// relaxation whose re-derivation admits the outcome. The probe order is
// fixed (drain, FIFO, boundary, group atomicity) so reports are stable.
func Classify(m *Model, o Outcome) (string, string) {
	if k, ok := m.Phantom(o); ok {
		return check.CodeLitmusPhantom,
			fmt.Sprintf("word %d holds %d, a value no store ever wrote", k, o[k])
	}
	probes := []struct {
		rx   relax
		on   bool
		code string
		msg  string
	}{
		{relaxDrain, m.Ax.DrainAtSync, check.CodeLitmusSyncOrder,
			"a synchronization point committed while an earlier store of its core was lost"},
		{relaxFIFO, true, check.CodeLitmusFIFO,
			"same-core same-controller persist FIFO inverted (later store durable, earlier lost)"},
		{relaxBoundary, m.Ax.BoundaryOrder, check.CodeLitmusBoundary,
			"execution crossed a region boundary while the closed region's store was lost"},
		{relaxSyncAtomic, true, check.CodeLitmusSyncAtomic,
			"a synchronization group persisted partially"},
	}
	for _, p := range probes {
		if !p.on {
			continue
		}
		dr := deriveRelax(m, p.rx)
		if !dr.Capped && dr.Allows(o) {
			return p.code, p.msg
		}
	}
	return check.CodeLitmusOutcome, "outcome outside the derived allowed set (no single axiom relaxation explains it)"
}

// deriveCore enumerates core c's reachable projections. The scenario space:
//
//   - an execution cut x: events[0:x] executed, the rest not (the crash
//     struck mid-program);
//   - for a synchronization point that is the last executed event, whether
//     its group commit beat the crash (its drain stall can overshoot the
//     crash cycle, leaving the whole group un-admitted);
//   - per (core, MC): how deep the persist FIFO drained — not-yet-admitted
//     records form a suffix of each controller's admit stream;
//   - under MCSpec: any subset of admitted, unforced records rolled back
//     via the MC undo logs (a store is rolled back iff its region had not
//     retired AND it was logged, both timing-dependent; the subset choice
//     over-approximates both, and taking zero retired regions subsumes
//     every retired-prefix choice).
//
// Constraints (the axioms under test): a committed sync point forces every
// earlier record of the core admitted and rollback-proof (DrainAtSync);
// executing anything after a region boundary forces the closed regions'
// records durable (BoundaryOrder — the boundary stall precedes the next
// event); a record behind an un-admitted one on the same controller cannot
// itself be admitted (FIFO).
func deriveCore(m *Model, c int, rx relax, budget *int) (map[Outcome]bool, bool) {
	cm := m.Cores[c]
	ax := m.Ax
	out := map[Outcome]bool{}
	capped := false
	n := len(cm.events)

	for x := 0; x <= n; x++ {
		commitChoices := []bool{true}
		if x > 0 && cm.events[x-1].kind == mSync {
			commitChoices = []bool{true, false}
		}
		for _, commitLast := range commitChoices {
			committed := func(i int) bool { // i: an executed sync event
				return i < x-1 || commitLast
			}
			lastCommittedSync := -1
			lastCrossedBoundary := -1
			for i := 0; i < x; i++ {
				switch cm.events[i].kind {
				case mSync:
					if committed(i) {
						lastCommittedSync = i
					}
				case mBoundary:
					if i <= x-2 {
						lastCrossedBoundary = i
					}
				}
			}

			// Records: executed plain stores that traverse the persist path.
			var recs []int
			for i := 0; i < x; i++ {
				ev := cm.events[i]
				if ev.kind == mStore && !ev.coalesced {
					recs = append(recs, i)
				}
			}
			forced := map[int]bool{}
			for _, i := range recs {
				if ax.DrainAtSync && rx != relaxDrain && i < lastCommittedSync {
					forced[i] = true
				}
				if ax.BoundaryOrder && rx != relaxBoundary && i < lastCrossedBoundary {
					forced[i] = true
				}
			}

			// Sync-store goodness: tied to the group commit, unless probing
			// broken group atomicity.
			var syncStores []int
			for i := 0; i < x; i++ {
				if ev := cm.events[i]; ev.kind == mSync && ev.hasStore {
					syncStores = append(syncStores, i)
				}
			}
			syncAssigns := 1
			if rx == relaxSyncAtomic {
				syncAssigns = 1 << len(syncStores)
			}

			for sa := 0; sa < syncAssigns; sa++ {
				syncGood := map[int]bool{}
				for si, i := range syncStores {
					if rx == relaxSyncAtomic {
						syncGood[i] = sa&(1<<si) != 0
					} else {
						syncGood[i] = committed(i)
					}
				}
				for _, notAdm := range fifoBadSets(cm, recs, forced, ax, rx) {
					// Rollback: any subset of admitted, unforced records.
					var rollable []int
					if ax.Rollback {
						for _, i := range recs {
							if !notAdm[i] && !forced[i] {
								rollable = append(rollable, i)
							}
						}
					}
					for rs := 0; rs < 1<<len(rollable); rs++ {
						*budget--
						if *budget < 0 {
							return out, true
						}
						bad := map[int]bool{}
						for i := range notAdm {
							bad[i] = true
						}
						for ri, i := range rollable {
							if rs&(1<<ri) != 0 {
								bad[i] = true
							}
						}
						out[coreOutcome(m, c, x, bad, syncGood)] = true
					}
				}
			}
		}
	}
	return out, capped
}

// fifoBadSets enumerates the not-admitted record sets: per controller a
// suffix of that controller's admit stream (admits are monotone per
// persist path), never including a forced record. Relaxing FIFO frees the
// per-record choice entirely.
func fifoBadSets(cm coreModel, recs []int, forced map[int]bool, ax Axioms, rx relax) []map[int]bool {
	if rx == relaxFIFO {
		var free []int
		for _, i := range recs {
			if !forced[i] {
				free = append(free, i)
			}
		}
		sets := make([]map[int]bool, 0, 1<<len(free))
		for s := 0; s < 1<<len(free); s++ {
			set := map[int]bool{}
			for fi, i := range free {
				if s&(1<<fi) != 0 {
					set[i] = true
				}
			}
			sets = append(sets, set)
		}
		return sets
	}

	streams := make([][]int, ax.NumMCs)
	for _, i := range recs {
		mc := cm.events[i].mc
		streams[mc] = append(streams[mc], i)
	}
	// Per controller: cut positions after the last forced record.
	cuts := make([][]int, ax.NumMCs) // valid suffix starts per mc
	for mc, st := range streams {
		minCut := 0
		for pos, i := range st {
			if forced[i] {
				minCut = pos + 1
			}
		}
		for cut := minCut; cut <= len(st); cut++ {
			cuts[mc] = append(cuts[mc], cut)
		}
		if len(st) == 0 {
			cuts[mc] = []int{0}
		}
	}
	sets := []map[int]bool{{}}
	for mc, st := range streams {
		if len(st) == 0 {
			continue
		}
		var next []map[int]bool
		for _, base := range sets {
			for _, cut := range cuts[mc] {
				set := map[int]bool{}
				for i := range base {
					set[i] = true
				}
				for _, i := range st[cut:] {
					set[i] = true
				}
				next = append(next, set)
			}
		}
		sets = next
	}
	return sets
}

// coreOutcome replays the journal-unwind chain for one scenario: for each
// word, scan core c's executed writes in order; a bad record freezes the
// word at the value written immediately before it (exactly what storing the
// record's Old does during reconstruction — every later write's effect,
// good or not, is erased by the unwind). Coalesced stores update the chain
// value without being records.
func coreOutcome(m *Model, c, x int, bad map[int]bool, syncGood map[int]bool) Outcome {
	cm := m.Cores[c]
	var vals Outcome
	var frozen [NumTracked]bool
	for i := 0; i < x; i++ {
		ev := cm.events[i]
		var k int
		var v int64
		isRecord := false
		recBad := false
		switch {
		case ev.kind == mStore:
			k, v = ev.k, ev.v
			isRecord = !ev.coalesced
			recBad = isRecord && bad[i]
		case ev.kind == mSync && ev.hasStore:
			k, v = ev.k, ev.v
			isRecord = true
			recBad = !syncGood[i]
		default:
			continue
		}
		if frozen[k] {
			continue
		}
		if isRecord && recBad {
			frozen[k] = true // vals[k] stays at the pre-record value
			continue
		}
		vals[k] = v
	}
	// Project onto owned words: shared words are judged cross-core.
	for k := 0; k < NumTracked; k++ {
		if oc, ok := m.owned(k); !ok || oc != c {
			vals[k] = 0
		}
	}
	return vals
}
