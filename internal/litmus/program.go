package litmus

import (
	"fmt"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/schemes"
	"cwsp/internal/sim"
)

// TrackBase is the base address of the tracked litmus words. The window
// 0x3000_0000.. sits between the MT workload heap and the stacks — no
// workload, checkpoint area, or emit buffer overlaps it.
const TrackBase int64 = 0x3000_0000

// TrackAddr returns tracked word k's NVM address. Words are 4 KiB apart:
// distinct cache lines (so Capri's line dedup only triggers on repeated
// stores to the same k) and alternating memory controllers (mcOf is
// (addr>>12)%NumMCs, so word k lives on MC k%NumMCs).
func TrackAddr(k int) int64 { return TrackBase + int64(k)*0x1000 }

// helperName is the empty callee EvCall invokes: a plain region boundary
// (the compiler brackets every call with boundaries) with no
// synchronization semantics.
const helperName = "h"

// threadName returns core t's litmus function name. t0 is the entry.
func threadName(t int) string { return fmt.Sprintf("t%d", t) }

// BuildProgram lowers the spec's threads to a raw IR program: one
// straight-line function per core plus the empty helper. The raw program is
// what base/psp-ideal execute; persist schemes run it through Compile
// first, which forms regions, inserts checkpoints, and brackets calls with
// OpBoundary — the region structure the outcome derivation reads back from
// the compiled IR.
func BuildProgram(s *Spec) *ir.Program {
	p := ir.NewProgram("litmus")
	for ti, th := range s.Threads {
		fb := ir.NewFunc(threadName(ti), 0)
		fb.NewBlock("entry")
		for _, ev := range th {
			switch ev.Kind {
			case EvStore:
				addr := fb.Const(TrackAddr(ev.K))
				fb.Store(ir.Imm(ev.V), ir.R(addr), 0)
			case EvAtomic:
				addr := fb.Const(TrackAddr(ev.K))
				fb.AtomicXchg(ir.R(addr), 0, ir.Imm(ev.V))
			case EvFence:
				fb.Fence()
			case EvCall:
				fb.Call(helperName)
			}
		}
		fb.Ret(ir.Imm(0))
		p.Add(fb.MustDone())
	}
	hb := ir.NewFunc(helperName, 0)
	hb.NewBlock("entry")
	hb.Ret(ir.Imm(0))
	p.Add(hb.MustDone())
	p.Entry = threadName(0)
	return p
}

// ThreadSpecs places one thread per litmus core.
func ThreadSpecs(s *Spec) []sim.ThreadSpec {
	specs := make([]sim.ThreadSpec, len(s.Threads))
	for ti := range s.Threads {
		specs[ti] = sim.ThreadSpec{Fn: threadName(ti)}
	}
	return specs
}

// Prepared is a spec lowered to the form both the executor and the model
// derivation consume: the (possibly compiled) program, thread placements,
// and the resolved scheme/config.
type Prepared struct {
	Spec  *Spec
	Prog  *ir.Program
	Specs []sim.ThreadSpec
	Sch   sim.Scheme
	Cfg   sim.Config
}

// Prepare resolves the spec's scheme and kernel, builds the program, and
// compiles it when the scheme executes compiled code. The returned
// Prepared is read-only and safe to share across a golden run and crash
// runs.
func Prepare(s *Spec) (*Prepared, error) {
	sch, ok := schemes.ByName(s.Scheme)
	if !ok {
		return nil, fmt.Errorf("litmus: unknown scheme %q", s.Scheme)
	}
	cfg := schemes.ConfigFor(sch, sim.DefaultConfig())
	cfg.Recoverable = true
	cfg.ReferenceKernel = s.Kernel == KernelRef

	prog := BuildProgram(s)
	if schemes.NeedsCompiledProgram(sch) {
		compiled, _, err := compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			return nil, fmt.Errorf("litmus: compile: %w", err)
		}
		prog = compiled
	}
	return &Prepared{Spec: s, Prog: prog, Specs: ThreadSpecs(s), Sch: sch, Cfg: cfg}, nil
}

// InitTracked seeds every tracked word to zero in both architectural
// memory and NVM, so "initial value" is a well-defined outcome component.
func InitTracked(m *sim.Machine) {
	for k := 0; k < NumTracked; k++ {
		m.InitWord(TrackAddr(k), 0)
	}
}
