package litmus

import "cwsp/internal/faults"

// FromFaultPlan converts a torture-campaign fault plan into an equivalent
// litmus spec, when the plan is litmus-shaped: exactly one crash, and only
// persist-path fault kinds (torn-log, drop-wpq, reorder-wpq — checkpoint
// corruption targets register reconstruction, which litmus does not
// observe). The program is the canonical message-passing shape — a data
// store, a second-controller store, a fence, a flag atomic on one core and
// an independent store on the other — so the same crash schedule and fault
// points replay against the litmus checker's derived outcome set with one
// flag. Returns ok=false for plans litmus cannot express.
func FromFaultPlan(plan *faults.Plan, scheme, kernel string) (*Spec, bool) {
	if plan == nil || plan.Depth() != 1 {
		return nil, false
	}
	for _, pt := range plan.Points {
		if !litmusKind(pt.Kind) || pt.Crash != 0 {
			return nil, false
		}
	}
	p := plan.Clone()
	p.Seed = 0 // the plan is explicit; litmus seeds are provenance only
	s := &Spec{
		Threads: []Thread{
			{
				{Kind: EvStore, K: 0, V: 1},
				{Kind: EvStore, K: 1, V: 2},
				{Kind: EvFence},
				{Kind: EvAtomic, K: 2, V: 3},
			},
			{
				{Kind: EvStore, K: 3, V: 4},
			},
		},
		Scheme: scheme,
		Kernel: kernel,
		Plan:   p,
	}
	return s, true
}
