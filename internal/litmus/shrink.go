package litmus

import "fmt"

// Shrink reduces a violating litmus to a minimal reproducer, mirroring the
// faults subsystem's greedy shrinker: drop events one at a time, drop
// trailing empty threads, drop fault points, then halve the crash permille
// — each step re-runs the litmus and keeps the mutation only if it still
// violates. Deterministic; returns the shrunk spec and its result (and an
// error if the input does not violate — e.g. a stale report entry from a
// different code version).
func Shrink(s *Spec, opt RunOptions) (*Spec, *Result, error) {
	fails := func(c *Spec) (*Result, bool) {
		r, err := RunSpec(c, opt)
		if err != nil {
			return nil, false
		}
		return r, r.Failed()
	}
	cur := s.Clone()
	cur.Seed = 0 // shrunk specs are explicit, not RNG-derived
	best, ok := fails(cur)
	if !ok {
		return s, best, fmt.Errorf("litmus: spec does not violate; nothing to shrink")
	}

	// 1. Fewest events: repeatedly try removing each event of each thread.
	for changed := true; changed; {
		changed = false
	outer:
		for ti := range cur.Threads {
			for i := range cur.Threads[ti] {
				cand := cur.Clone()
				th := cand.Threads[ti]
				cand.Threads[ti] = append(th[:i:i], th[i+1:]...)
				if r, ok := fails(cand); ok {
					cur, best, changed = cand, r, true
					break outer
				}
			}
		}
	}

	// 2. Fewest threads: drop empty trailing threads (indices stay dense).
	for len(cur.Threads) > 1 && len(cur.Threads[len(cur.Threads)-1]) == 0 {
		cand := cur.Clone()
		cand.Threads = cand.Threads[:len(cand.Threads)-1]
		r, ok := fails(cand)
		if !ok {
			break
		}
		cur, best = cand, r
	}

	// 3. Fewest fault points.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Plan.Points); i++ {
			cand := cur.Clone()
			cand.Plan.Points = append(cand.Plan.Points[:i:i], cand.Plan.Points[i+1:]...)
			if r, ok := fails(cand); ok {
				cur, best, changed = cand, r, true
				break
			}
		}
	}

	// 4. Earliest crash: halve the crash permille while it still violates.
	for cur.Plan.Crashes[0] > 1 {
		cand := cur.Clone()
		cand.Plan.Crashes[0] /= 2
		r, ok := fails(cand)
		if !ok {
			break
		}
		cur, best = cand, r
	}
	return cur, best, nil
}

// ReplayCommand renders the one-flag reproducer for a spec.
func ReplayCommand(s *Spec) string {
	return fmt.Sprintf("cwsplitmus -replay '%s'", s.Render())
}
