package check

import "cwsp/internal/ir"

// Options tune one checker run.
type Options struct {
	// RequireCompiled treats an un-region-formed function (NumRegions == 0,
	// no recovery slices) as an error instead of skipping the pipeline
	// checks. Set by tools that verify post-pipeline artifacts, where "not
	// compiled" means "not protected".
	RequireCompiled bool
	// MaxSymPasses caps the symbolic fixpoint (0 = a generous default
	// scaled to the function's block count).
	MaxSymPasses int
}

// CheckProgram runs every check over p with default options and returns the
// sorted report.
func CheckProgram(p *ir.Program) *Report { return CheckProgramOpts(p, Options{}) }

// CheckProgramOpts runs every check over p. Checks are layered: the region
// and sufficiency groups only run on functions whose structure is sound
// enough for dataflow, and only when the function has been region-formed
// (always demanded under RequireCompiled).
func CheckProgramOpts(p *ir.Program, opt Options) *Report {
	rep := &Report{}
	checkCalls(rep, p)
	for _, name := range sortedFuncNames(p) {
		checkFunction(rep, p.Funcs[name], opt)
	}
	rep.Sort()
	return rep
}

// CheckFunc runs the per-function checks over a single function.
func CheckFunc(f *ir.Function, opt Options) *Report {
	rep := &Report{}
	checkFunction(rep, f, opt)
	rep.Sort()
	return rep
}

func checkFunction(rep *Report, f *ir.Function, opt Options) {
	if !checkStructure(rep, f) {
		return // dataflow over a structurally broken function proves nothing
	}
	fl := buildFlow(f)
	checkDefBeforeUse(rep, f, fl)

	compiled := f.NumRegions > 0 || hasBoundaries(f)
	if !compiled {
		if opt.RequireCompiled {
			rep.errorf(CodeRegionIDs, f.Name, -1, -1, -1,
				"function has no regions (pipeline not run, or boundaries stripped)")
		}
		return
	}
	checkRegionStructure(rep, f, fl)
	checkAntidep(rep, f, fl)
	if f.Slices != nil {
		checkSufficiency(rep, f, fl, opt.MaxSymPasses)
	} else if opt.RequireCompiled {
		rep.errorf(CodeSliceMissing, f.Name, -1, -1, -1,
			"region-formed function carries no recovery slices")
	}
}

func hasBoundaries(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpBoundary {
				return true
			}
		}
	}
	return false
}

func sortedFuncNames(p *ir.Program) []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
