package check_test

// The text interchange format must preserve everything the checker reasons
// about: a compiled program marshalled and unmarshalled must still be
// checker-clean and must re-marshal to identical bytes. Running the checker
// on both sides makes this a semantic round-trip test, not just a syntactic
// one.

import (
	"bytes"
	"os"
	"testing"

	"cwsp/internal/check"
	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/minic"
)

func TestMarshalRoundTripStaysClean(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := compileSeed(t, seed, compiler.DefaultOptions())

		var buf bytes.Buffer
		if err := p.MarshalText(&buf); err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		first := buf.String()

		q, err := ir.UnmarshalText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		mustClean(t, q, "roundtripped program")

		var buf2 bytes.Buffer
		if err := q.MarshalText(&buf2); err != nil {
			t.Fatalf("seed %d: re-marshal: %v", seed, err)
		}
		if first != buf2.String() {
			t.Fatalf("seed %d: marshal not stable across a round trip", seed)
		}
	}
}

// TestMinicExampleIsClean pushes the checked-in miniC example through the
// full front end + pipeline and demands a clean report — the same program
// `make lint` gates on.
func TestMinicExampleIsClean(t *testing.T) {
	src, err := os.ReadFile("../../examples/minic/btree.mc")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	p, err := minic.CompileNamed(string(src), "btree")
	if err != nil {
		t.Fatalf("minic: %v", err)
	}
	out, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	mustClean(t, out, "btree.mc")

	// And the front-end output alone must pass the well-formedness group.
	rep := check.CheckProgram(p)
	if rep.HasErrors() {
		t.Fatalf("front-end output not well-formed:\n%s", rep.String())
	}
}
