// Package check is an independent persistence-soundness verifier for
// compiled cWSP programs. It re-derives the invariants the compiler
// transforms claim to establish — extended IR well-formedness, region
// idempotence (Section IV-A), checkpoint sufficiency (Section IV-B), and
// recovery-slice correctness (Section IV-C) — from first principles, using
// its own dataflow analyses rather than the transforms' bookkeeping, so a
// bug in regions.Form, ckpt.InsertOpts, or slice generation surfaces as a
// stable CWSP0xx diagnostic instead of a silently wrong recovery.
//
// The only analysis the checker shares with the transforms is the may-alias
// oracle (analysis.ComputeAlias): alias facts are inputs to both sides of
// the argument, not something region formation can get wrong on its own.
// Everything else — CFG reachability, dominators, loop headers, liveness,
// definite assignment, and the symbolic value-numbering engine that proves
// recovery recipes correct — is re-implemented here.
package check

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Severity ranks diagnostics.
type Severity uint8

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "unknown"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Stable diagnostic codes. Codes are part of the tool's interface: tests,
// CI gates, and downstream tooling match on them, so once assigned a code's
// meaning never changes. See DESIGN.md "Soundness checking" for the
// invariant each code proves.
const (
	CodeStructure   = "CWSP001" // block/terminator structure violation
	CodeBranchRange = "CWSP002" // branch target out of range
	CodeOperand     = "CWSP003" // register out of range / operand kind invalid for opcode
	CodeDefUse      = "CWSP004" // register may be read before assignment
	CodeCall        = "CWSP005" // unresolved callee, arity mismatch, or missing entry

	CodeRegionIDs    = "CWSP010" // region ids not unique and dense from 0
	CodeUncovered    = "CWSP011" // reachable instruction executes under no region
	CodeCallBoundary = "CWSP012" // call-like op lacks an adjacent boundary
	CodeLoopBoundary = "CWSP013" // natural-loop header lacks a boundary

	CodeAntidep = "CWSP020" // intra-region may-alias load→store antidependence

	CodeUnrecoverable = "CWSP030" // live-in register not provably rebuilt by its slice
	CodeLiveInMissing = "CWSP031" // slice's declared live-in set omits a live register
	CodeSliceMissing  = "CWSP032" // reachable region has no recovery slice

	CodeSliceInput    = "CWSP040" // slice reads a checkpoint slot nothing writes
	CodeSliceOrder    = "CWSP041" // slice step reads a register before the slice defines it
	CodeSliceTarget   = "CWSP042" // slice never defines a declared live-in register
	CodeSliceMeta     = "CWSP043" // slice entry/region metadata inconsistent with the IR
	CodeSliceStep     = "CWSP044" // slice step malformed (bad ALU opcode or register)
	CodeNoConvergence = "CWSP090" // symbolic dataflow hit its iteration cap (results conservative)

	// CWSP1xx: persistency-model violations, reported by the litmus engine
	// (internal/litmus). Where CWSP0xx codes verify the *compiler's* output
	// against the paper's recovery invariants, the 1xx codes verify the
	// *memory system's* post-crash outcomes against the paper's ordering
	// axioms (Section VIII): an observed crash-image outcome outside the
	// statically derived allowed set carries the code of the first ordering
	// axiom whose relaxation would re-admit it.
	CodeLitmusOutcome    = "CWSP100" // post-crash outcome outside the derived allowed set (no single axiom explains it)
	CodeLitmusSyncOrder  = "CWSP101" // a synchronization point committed while an earlier store of its core was lost
	CodeLitmusFIFO       = "CWSP102" // same-core same-MC persist FIFO inverted (later store durable, earlier lost)
	CodeLitmusBoundary   = "CWSP103" // a region boundary was crossed while a prior region's store was lost
	CodeLitmusPhantom    = "CWSP104" // crash image holds a value no store ever wrote (torn/corrupt data)
	CodeLitmusSyncAtomic = "CWSP105" // a synchronization group persisted partially (group atomicity broken)
	CodeLitmusCap        = "CWSP190" // outcome enumeration hit its cap (allowed set conservative; cell not judged)
)

// Diagnostic is one finding, located by function, block, and instruction
// index (-1 where a dimension does not apply).
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Fn       string   `json:"fn,omitempty"`
	Block    int      `json:"block"`
	Index    int      `json:"index"`
	Region   int      `json:"region"`
	Msg      string   `json:"msg"`
}

func (d Diagnostic) String() string {
	loc := d.Fn
	if d.Block >= 0 {
		loc = fmt.Sprintf("%s/b%d", d.Fn, d.Block)
		if d.Index >= 0 {
			loc = fmt.Sprintf("%s[%d]", loc, d.Index)
		}
	}
	if loc == "" {
		loc = "<program>"
	}
	if d.Region >= 0 {
		return fmt.Sprintf("%s %s %s region %d: %s", d.Code, d.Severity, loc, d.Region, d.Msg)
	}
	return fmt.Sprintf("%s %s %s: %s", d.Code, d.Severity, loc, d.Msg)
}

// Report collects the diagnostics of one checker run.
type Report struct {
	Diags []Diagnostic `json:"diags"`
}

func (r *Report) add(d Diagnostic) { r.Diags = append(r.Diags, d) }

func (r *Report) errorf(code, fn string, block, index, region int, format string, args ...interface{}) {
	r.add(Diagnostic{Code: code, Severity: Error, Fn: fn, Block: block, Index: index, Region: region,
		Msg: fmt.Sprintf(format, args...)})
}

func (r *Report) warnf(code, fn string, block, index, region int, format string, args ...interface{}) {
	r.add(Diagnostic{Code: code, Severity: Warning, Fn: fn, Block: block, Index: index, Region: region,
		Msg: fmt.Sprintf(format, args...)})
}

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-severity diagnostic was produced.
func (r *Report) HasErrors() bool { return r.Errors() > 0 }

// ByCode returns the diagnostics carrying the given code.
func (r *Report) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether any diagnostic carries the given code.
func (r *Report) Has(code string) bool { return len(r.ByCode(code)) > 0 }

// Sort orders diagnostics by function, block, index, then code, for stable
// output.
func (r *Report) Sort() {
	sort.SliceStable(r.Diags, func(i, j int) bool {
		a, b := r.Diags[i], r.Diags[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Code < b.Code
	})
}

// String renders the report as one diagnostic per line.
func (r *Report) String() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteJSON writes the report as a JSON object {"errors": N, "diags": [...]}.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	diags := r.Diags
	if diags == nil {
		diags = []Diagnostic{}
	}
	return enc.Encode(struct {
		Errors int          `json:"errors"`
		Diags  []Diagnostic `json:"diags"`
	}{r.Errors(), diags})
}
