package check_test

// The differential harness: programs that went through the real pipeline
// must be checker-clean, and programs with a deliberately broken invariant
// must be flagged with the expected CWSP code. Together these pin the
// checker's false-positive and false-negative behaviour.

import (
	"testing"

	"cwsp/internal/check"
	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
)

func compileSeed(t *testing.T, seed int64, opt compiler.Options) *ir.Program {
	t.Helper()
	p := progen.Generate(seed, progen.DefaultConfig())
	out, _, err := compiler.Compile(p, opt)
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	return out
}

func mustClean(t *testing.T, p *ir.Program, label string) {
	t.Helper()
	rep := check.CheckProgramOpts(p, check.Options{RequireCompiled: true})
	if rep.HasErrors() {
		t.Fatalf("%s: checker not clean:\n%s", label, rep.String())
	}
	if rep.Has(check.CodeNoConvergence) {
		t.Fatalf("%s: symbolic dataflow did not converge:\n%s", label, rep.String())
	}
}

// TestPipelineOutputIsClean is the positive half of the differential: the
// full pipeline over many generated programs, under every optimizer
// configuration, must produce zero diagnostics.
func TestPipelineOutputIsClean(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	configs := []compiler.Options{
		compiler.DefaultOptions(),
		{PruneCheckpoints: false, HoistCheckpoints: false, ChainDepth: -1},
		{PruneCheckpoints: true, HoistCheckpoints: false, ChainDepth: -1},
		{PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 0},
		{PruneCheckpoints: true, HoistCheckpoints: true, ChainDepth: 1},
	}
	for seed := int64(1); seed <= n; seed++ {
		for ci, opt := range configs {
			mustClean(t, compileSeed(t, seed, opt), labelFor(seed, ci))
		}
	}
}

func labelFor(seed int64, ci int) string {
	return "seed " + string(rune('0'+seed%10)) + "/cfg " + string(rune('0'+ci))
}

// mainOf returns the entry function of p.
func mainOf(p *ir.Program) *ir.Function { return p.EntryFunc() }

// expectCode asserts the checker reports the given code on p.
func expectCode(t *testing.T, p *ir.Program, code, label string) {
	t.Helper()
	rep := check.CheckProgramOpts(p, check.Options{RequireCompiled: true})
	if !rep.Has(code) {
		t.Fatalf("%s: expected %s, got:\n%s", label, code, rep.String())
	}
}

// --- Mutation 1: deleted boundary -> CWSP010 -----------------------------

func TestMutationDeletedBoundary(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := compileSeed(t, seed, compiler.DefaultOptions())
		f := mainOf(p)
		// Delete the last boundary of the function (never the entry one).
		deleted := false
		for bi := len(f.Blocks) - 1; bi >= 0 && !deleted; bi-- {
			b := f.Blocks[bi]
			for ii := len(b.Instrs) - 1; ii >= 0; ii-- {
				if b.Instrs[ii].Op == ir.OpBoundary && !(bi == 0 && ii == 0) {
					b.Instrs = append(b.Instrs[:ii], b.Instrs[ii+1:]...)
					deleted = true
					break
				}
			}
		}
		if !deleted {
			t.Fatalf("seed %d: no non-entry boundary to delete", seed)
		}
		expectCode(t, p, check.CodeRegionIDs, "deleted boundary")
	}
}

// --- Mutation 2: un-cut antidependence -> CWSP020 ------------------------

// TestMutationUncutAntidep hand-builds a "formed" function whose region
// retains a may-alias load->store pair, exactly what a region-formation bug
// would leave behind, and expects the independent scan to find it.
func TestMutationUncutAntidep(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Alloc(64)
	v := fb.Load(ir.R(a), 8)
	w := fb.Add(ir.R(v), ir.Imm(1))
	fb.Store(ir.R(w), ir.R(a), 8) // overwrites the word loaded two instrs ago
	fb.Ret(ir.R(w))
	f := fb.MustDone()

	// Mimic formation output minus the antidependence cut: entry boundary
	// and boundaries around the alloc, nothing before the store.
	entry := f.Blocks[0]
	formed := []ir.Instr{
		{Op: ir.OpBoundary, RegionID: 0},
		entry.Instrs[0], // alloc
		{Op: ir.OpBoundary, RegionID: 1},
	}
	formed = append(formed, entry.Instrs[1:]...)
	entry.Instrs = formed
	f.NumRegions = 2

	p := ir.NewProgram("uncut")
	p.Entry = "main"
	p.Add(f)
	expectCode(t, p, check.CodeAntidep, "un-cut antidependence")

	// Control: the real formation of the same source must be clean.
	q := progenFree(t, p)
	mustClean(t, q, "recut control")
}

// progenFree re-runs the actual pipeline over a fresh copy of the source
// program (with compiler metadata stripped).
func progenFree(t *testing.T, p *ir.Program) *ir.Program {
	t.Helper()
	src := p.Clone()
	for _, f := range src.Funcs {
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for ii := range b.Instrs {
				if b.Instrs[ii].Op != ir.OpBoundary && b.Instrs[ii].Op != ir.OpCkpt {
					out = append(out, b.Instrs[ii])
				}
			}
			b.Instrs = out
		}
		f.NumRegions = 0
		f.Slices = nil
	}
	out, _, err := compiler.Compile(src, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// --- Mutation 3: over-pruned checkpoint -> CWSP040/CWSP030 ---------------

// TestMutationOverPrunedCheckpoint deletes every checkpoint of a register
// some recovery slice loads from its slot — the observable effect of a
// pruning pass that wrongly judged the slot valid — and expects the slot-
// input check to fire.
func TestMutationOverPrunedCheckpoint(t *testing.T) {
	tested := 0
	for seed := int64(1); seed <= 12; seed++ {
		p := compileSeed(t, seed, compiler.DefaultOptions())
		f := mainOf(p)
		victim := ir.NoReg
		for _, rs := range f.Slices {
			for _, st := range rs.Steps {
				if st.Op == ir.SliceLoadCkpt && int(st.Src) >= f.NParams {
					victim = st.Src
					break
				}
			}
			if victim != ir.NoReg {
				break
			}
		}
		if victim == ir.NoReg {
			continue
		}
		removed := 0
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for ii := range b.Instrs {
				in := b.Instrs[ii]
				if in.Op == ir.OpCkpt && in.A.Reg == victim {
					removed++
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if removed == 0 {
			continue
		}
		expectCode(t, p, check.CodeSliceInput, "over-pruned checkpoint")
		tested++
	}
	if tested < 3 {
		t.Fatalf("only %d seeds produced an over-prunable checkpoint", tested)
	}
}

// TestMutationStaleRecoveryRecipe models the subtler over-pruning failure:
// the checkpoint remains, but the value the recipe reconstructs is no
// longer the value the region needs (the defining instruction changed
// after slices were built). The symbolic engine must see the term mismatch.
func TestMutationStaleRecoveryRecipe(t *testing.T) {
	flagged := 0
	for seed := int64(1); seed <= 12; seed++ {
		p := compileSeed(t, seed, compiler.DefaultOptions())
		f := mainOf(p)
		// Flip the immediate of some constant whose register a slice
		// rebuilds via SliceConst.
		done := false
		for _, rs := range f.Slices {
			for _, st := range rs.Steps {
				if st.Op != ir.SliceConst {
					continue
				}
				if retargetConst(f, st.Dst, st.Imm) {
					done = true
					break
				}
			}
			if done {
				break
			}
		}
		if !done {
			continue
		}
		rep := check.CheckProgramOpts(p, check.Options{RequireCompiled: true})
		if !rep.Has(check.CodeUnrecoverable) {
			t.Fatalf("seed %d: stale recipe not flagged:\n%s", seed, rep.String())
		}
		flagged++
	}
	if flagged < 3 {
		t.Fatalf("only %d seeds exercised the stale-recipe mutation", flagged)
	}
}

// retargetConst changes one OpConst defining dst with the given value so
// the program diverges from its recovery slices.
func retargetConst(f *ir.Function, dst ir.Reg, imm int64) bool {
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpConst && in.Dst == dst && in.A.Imm == imm {
				in.A = ir.Imm(imm + 1)
				return true
			}
		}
	}
	return false
}

// --- Mutation 4: corrupted recovery slice -> CWSP030/031/032/042 ---------

func TestMutationCorruptedSliceValue(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := compileSeed(t, seed, compiler.DefaultOptions())
		f := mainOf(p)
		// Corrupt the first SliceConst step's immediate.
		done := false
		for id, rs := range f.Slices {
			for si := range rs.Steps {
				if rs.Steps[si].Op == ir.SliceConst {
					rs.Steps[si].Imm++
					f.Slices[id] = rs
					done = true
					break
				}
			}
			if done {
				break
			}
		}
		if !done {
			continue
		}
		expectCode(t, p, check.CodeUnrecoverable, "corrupted slice constant")
	}
}

func TestMutationDeletedSlice(t *testing.T) {
	p := compileSeed(t, 3, compiler.DefaultOptions())
	f := mainOf(p)
	// Remove the slice of the entry region, which is always reachable.
	delete(f.Slices, 0)
	expectCode(t, p, check.CodeSliceMissing, "deleted slice")
}

func TestMutationDroppedLiveIn(t *testing.T) {
	mutated := false
	for seed := int64(1); seed <= 10 && !mutated; seed++ {
		p := compileSeed(t, seed, compiler.DefaultOptions())
		f := mainOf(p)
		for id, rs := range f.Slices {
			if len(rs.LiveIn) == 0 {
				continue
			}
			rs.LiveIn = rs.LiveIn[1:]
			rs.Steps = rs.Steps[1:] // also drop its rebuild step
			f.Slices[id] = rs
			mutated = true
			expectCode(t, p, check.CodeLiveInMissing, "dropped live-in")
			break
		}
	}
	if !mutated {
		t.Fatal("no slice with a live-in register found")
	}
}

func TestMutationSliceEntryDrift(t *testing.T) {
	p := compileSeed(t, 5, compiler.DefaultOptions())
	f := mainOf(p)
	rs := f.Slices[0]
	rs.Entry.Index++
	f.Slices[0] = rs
	expectCode(t, p, check.CodeSliceMeta, "slice entry drift")
}
