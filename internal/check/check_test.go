package check_test

// Handcrafted unit cases: one minimal broken function per diagnostic code,
// so a regression in any individual check fails with a readable name.

import (
	"strings"
	"testing"

	"cwsp/internal/check"
	"cwsp/internal/ir"
)

// wrap puts a single function into a one-function program.
func wrap(f *ir.Function) *ir.Program {
	p := ir.NewProgram("t")
	p.Entry = f.Name
	p.Add(f)
	return p
}

// straightline builds r0=1; r1=r0+2; ret r1 with no compiler metadata.
func straightline() *ir.Function {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Const(1)
	b := fb.Add(ir.R(a), ir.Imm(2))
	fb.Ret(ir.R(b))
	return fb.MustDone()
}

func TestCleanUncompiledFunctionHasNoDiags(t *testing.T) {
	rep := check.CheckProgram(wrap(straightline()))
	if len(rep.Diags) != 0 {
		t.Fatalf("unexpected diagnostics:\n%s", rep.String())
	}
}

func TestRequireCompiledFlagsUncompiled(t *testing.T) {
	rep := check.CheckProgramOpts(wrap(straightline()), check.Options{RequireCompiled: true})
	if !rep.Has(check.CodeRegionIDs) {
		t.Fatalf("want %s for unformed function, got:\n%s", check.CodeRegionIDs, rep.String())
	}
}

func TestStructureEmptyFunction(t *testing.T) {
	f := &ir.Function{Name: "main", NumRegs: 1}
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeStructure) {
		t.Fatalf("want %s, got:\n%s", check.CodeStructure, rep.String())
	}
}

func TestStructureMissingTerminator(t *testing.T) {
	f := straightline()
	b := f.Blocks[0]
	b.Instrs = b.Instrs[:len(b.Instrs)-1] // drop the ret
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeStructure) {
		t.Fatalf("want %s, got:\n%s", check.CodeStructure, rep.String())
	}
}

func TestStructureTerminatorMidBlock(t *testing.T) {
	f := straightline()
	b := f.Blocks[0]
	b.Instrs = append([]ir.Instr{{Op: ir.OpRet}}, b.Instrs...)
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeStructure) {
		t.Fatalf("want %s, got:\n%s", check.CodeStructure, rep.String())
	}
}

func TestBranchRange(t *testing.T) {
	f := straightline()
	b := f.Blocks[0]
	b.Instrs[len(b.Instrs)-1] = ir.Instr{Op: ir.OpJmp, Then: 7}
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeBranchRange) {
		t.Fatalf("want %s, got:\n%s", check.CodeBranchRange, rep.String())
	}
}

func TestOperandRegisterOutOfRange(t *testing.T) {
	f := straightline()
	f.Blocks[0].Instrs[1].A = ir.R(99)
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeOperand) {
		t.Fatalf("want %s, got:\n%s", check.CodeOperand, rep.String())
	}
}

func TestOperandKindInvalid(t *testing.T) {
	f := straightline()
	f.Blocks[0].Instrs[0] = ir.Instr{Op: ir.OpConst, Dst: 0, A: ir.R(0)} // const with a reg operand
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeOperand) {
		t.Fatalf("want %s, got:\n%s", check.CodeOperand, rep.String())
	}
}

func TestDefBeforeUseStraightline(t *testing.T) {
	f := straightline()
	f.Blocks[0].Instrs = f.Blocks[0].Instrs[1:] // drop r0's definition
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeDefUse) {
		t.Fatalf("want %s, got:\n%s", check.CodeDefUse, rep.String())
	}
}

// TestDefBeforeUseOnePath: a register assigned on only one arm of a diamond
// is not definitely assigned at the join.
func TestDefBeforeUseOnePath(t *testing.T) {
	fb := ir.NewFunc("main", 1)
	entry := fb.NewBlock("entry")
	then := fb.AddBlock("then")
	els := fb.AddBlock("else")
	join := fb.AddBlock("join")
	fb.SetBlock(entry)
	fb.Br(ir.R(0), then, els)
	fb.SetBlock(then)
	v := fb.Reg()
	fb.ConstInto(v, 5)
	fb.Jmp(join)
	fb.SetBlock(els)
	fb.ConstInto(v, 6)
	fb.Jmp(join)
	fb.SetBlock(join)
	w := fb.Add(ir.R(v), ir.Imm(1))
	fb.Ret(ir.R(w))
	f := fb.MustDone()
	// Drop the else-arm definition: v is now assigned on only one path.
	f.Blocks[2].Instrs = f.Blocks[2].Instrs[1:]
	rep := check.CheckProgram(wrap(f))
	if !rep.Has(check.CodeDefUse) {
		t.Fatalf("want %s, got:\n%s", check.CodeDefUse, rep.String())
	}
}

func TestCallUnknownCallee(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	r := fb.Call("missing")
	fb.Ret(ir.R(r))
	rep := check.CheckProgram(wrap(fb.MustDone()))
	if !rep.Has(check.CodeCall) {
		t.Fatalf("want %s, got:\n%s", check.CodeCall, rep.String())
	}
}

func TestCallArityMismatch(t *testing.T) {
	callee := ir.NewFunc("f", 2)
	callee.NewBlock("entry")
	callee.Ret(ir.R(callee.Param(0)))

	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	r := fb.Call("f", ir.Imm(1)) // f wants two args
	fb.Ret(ir.R(r))

	p := ir.NewProgram("t")
	p.Entry = "main"
	p.Add(fb.MustDone())
	p.Add(callee.MustDone())
	rep := check.CheckProgram(p)
	if !rep.Has(check.CodeCall) {
		t.Fatalf("want %s, got:\n%s", check.CodeCall, rep.String())
	}
}

func TestMissingEntryFunction(t *testing.T) {
	p := ir.NewProgram("t")
	p.Entry = "nope"
	p.Add(straightline())
	rep := check.CheckProgram(p)
	if !rep.Has(check.CodeCall) {
		t.Fatalf("want %s, got:\n%s", check.CodeCall, rep.String())
	}
}

// formed returns straightline code with a plausible manual region structure:
// boundary 0 at entry, nothing else needed (no calls, no loops).
func formed() *ir.Function {
	f := straightline()
	b := f.Blocks[0]
	b.Instrs = append([]ir.Instr{{Op: ir.OpBoundary, RegionID: 0}}, b.Instrs...)
	f.NumRegions = 1
	f.Slices = map[int]ir.RecoverySlice{
		0: {RegionID: 0, Entry: ir.InstrRef{Block: 0, Index: 0}},
	}
	return f
}

func TestFormedFixtureIsClean(t *testing.T) {
	rep := check.CheckProgramOpts(wrap(formed()), check.Options{RequireCompiled: true})
	if len(rep.Diags) != 0 {
		t.Fatalf("fixture not clean:\n%s", rep.String())
	}
}

func TestRegionIDsDuplicate(t *testing.T) {
	f := formed()
	b := f.Blocks[0]
	// Second boundary reusing id 0.
	b.Instrs = append(b.Instrs[:2:2], append([]ir.Instr{{Op: ir.OpBoundary, RegionID: 0}}, b.Instrs[2:]...)...)
	f.NumRegions = 2
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeRegionIDs) {
		t.Fatalf("want %s, got:\n%s", check.CodeRegionIDs, rep.String())
	}
}

func TestRegionIDsOutOfRange(t *testing.T) {
	f := formed()
	f.Blocks[0].Instrs[0].RegionID = 5
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeRegionIDs) {
		t.Fatalf("want %s, got:\n%s", check.CodeRegionIDs, rep.String())
	}
}

func TestUncoveredInstruction(t *testing.T) {
	f := formed()
	b := f.Blocks[0]
	// Move the boundary after the first real instruction.
	b.Instrs[0], b.Instrs[1] = b.Instrs[1], b.Instrs[0]
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeUncovered) {
		t.Fatalf("want %s, got:\n%s", check.CodeUncovered, rep.String())
	}
}

func TestCallLikeWithoutBoundary(t *testing.T) {
	callee := ir.NewFunc("f", 0)
	callee.NewBlock("entry")
	callee.RetVoid()

	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	r := fb.Call("f")
	fb.Ret(ir.R(r))
	f := fb.MustDone()
	// Entry boundary only; the call has none around it.
	b := f.Blocks[0]
	b.Instrs = append([]ir.Instr{{Op: ir.OpBoundary, RegionID: 0}}, b.Instrs...)
	f.NumRegions = 1

	p := ir.NewProgram("t")
	p.Entry = "main"
	p.Add(f)
	p.Add(callee.MustDone())
	rep := check.CheckProgram(p)
	if !rep.Has(check.CodeCallBoundary) {
		t.Fatalf("want %s, got:\n%s", check.CodeCallBoundary, rep.String())
	}
}

func TestLoopHeaderWithoutBoundary(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.SetBlock(entry)
	i := fb.Const(0)
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(10))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	f := fb.MustDone()
	// Entry boundary only: the loop header at block 1 has none.
	f.Blocks[0].Instrs = append([]ir.Instr{{Op: ir.OpBoundary, RegionID: 0}}, f.Blocks[0].Instrs...)
	f.NumRegions = 1
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeLoopBoundary) {
		t.Fatalf("want %s, got:\n%s", check.CodeLoopBoundary, rep.String())
	}
}

// --- slice-shape codes ---------------------------------------------------

// slicedFixture: formed() with one live-in register crossing the second
// boundary, rebuilt by a slice we can then corrupt.
func slicedFixture() *ir.Function {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Const(7)
	b := fb.Add(ir.R(a), ir.Imm(2))
	fb.Ret(ir.R(b))
	f := fb.MustDone()
	blk := f.Blocks[0]
	// boundary0; r0=7; boundary1; r1=r0+2; ret
	blk.Instrs = append([]ir.Instr{{Op: ir.OpBoundary, RegionID: 0}},
		blk.Instrs[0],
		ir.Instr{Op: ir.OpBoundary, RegionID: 1},
		blk.Instrs[1], blk.Instrs[2])
	f.NumRegions = 2
	f.Slices = map[int]ir.RecoverySlice{
		0: {RegionID: 0, Entry: ir.InstrRef{Block: 0, Index: 0}},
		1: {RegionID: 1, Entry: ir.InstrRef{Block: 0, Index: 2},
			LiveIn: []ir.Reg{0},
			Steps:  []ir.SliceStep{{Op: ir.SliceConst, Dst: 0, Imm: 7}}},
	}
	return f
}

func TestSlicedFixtureIsClean(t *testing.T) {
	rep := check.CheckFunc(slicedFixture(), check.Options{RequireCompiled: true})
	if len(rep.Diags) != 0 {
		t.Fatalf("fixture not clean:\n%s", rep.String())
	}
}

func TestSliceLiveInOmitted(t *testing.T) {
	f := slicedFixture()
	rs := f.Slices[1]
	rs.LiveIn = nil
	f.Slices[1] = rs
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeLiveInMissing) {
		t.Fatalf("want %s, got:\n%s", check.CodeLiveInMissing, rep.String())
	}
}

func TestSliceTargetNeverDefined(t *testing.T) {
	f := slicedFixture()
	rs := f.Slices[1]
	rs.Steps = nil // declares r0 live-in but rebuilds nothing
	f.Slices[1] = rs
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeSliceTarget) {
		t.Fatalf("want %s, got:\n%s", check.CodeSliceTarget, rep.String())
	}
}

func TestSliceReadsUnwrittenSlot(t *testing.T) {
	f := slicedFixture()
	rs := f.Slices[1]
	rs.Steps = []ir.SliceStep{{Op: ir.SliceLoadCkpt, Dst: 0, Src: 0}} // no ckpt writes slot 0
	f.Slices[1] = rs
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeSliceInput) {
		t.Fatalf("want %s, got:\n%s", check.CodeSliceInput, rep.String())
	}
}

func TestSliceStepReadsBeforeDefine(t *testing.T) {
	f := slicedFixture()
	rs := f.Slices[1]
	rs.Steps = []ir.SliceStep{{Op: ir.SliceUnary, Dst: 0, Src: 1, ALUOp: ir.OpAdd, Imm: 1}}
	f.Slices[1] = rs
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeSliceOrder) {
		t.Fatalf("want %s, got:\n%s", check.CodeSliceOrder, rep.String())
	}
}

func TestSliceStepBadALUOp(t *testing.T) {
	f := slicedFixture()
	rs := f.Slices[1]
	rs.Steps = []ir.SliceStep{{Op: ir.SliceUnary, Dst: 0, Src: 0, ALUOp: ir.OpStore}}
	f.Slices[1] = rs
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeSliceStep) {
		t.Fatalf("want %s, got:\n%s", check.CodeSliceStep, rep.String())
	}
}

func TestSliceValueMismatch(t *testing.T) {
	f := slicedFixture()
	rs := f.Slices[1]
	rs.Steps = []ir.SliceStep{{Op: ir.SliceConst, Dst: 0, Imm: 8}} // region needs 7
	f.Slices[1] = rs
	rep := check.CheckFunc(f, check.Options{})
	if !rep.Has(check.CodeUnrecoverable) {
		t.Fatalf("want %s, got:\n%s", check.CodeUnrecoverable, rep.String())
	}
}

// --- antidep on a hand-built clean counterpart ---------------------------

func TestAntidepBoundaryBetweenClearsWindow(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	a := fb.Alloc(64)
	v := fb.Load(ir.R(a), 8)
	w := fb.Add(ir.R(v), ir.Imm(1))
	fb.Store(ir.R(w), ir.R(a), 8)
	fb.Ret(ir.R(w))
	f := fb.MustDone()
	blk := f.Blocks[0]
	// boundary0; alloc; boundary1; load; add; boundary2; store; ret — the cut
	// between load and store makes the store safe.
	blk.Instrs = append([]ir.Instr{{Op: ir.OpBoundary, RegionID: 0}},
		blk.Instrs[0],
		ir.Instr{Op: ir.OpBoundary, RegionID: 1},
		blk.Instrs[1], blk.Instrs[2],
		ir.Instr{Op: ir.OpBoundary, RegionID: 2},
		blk.Instrs[3], blk.Instrs[4])
	f.NumRegions = 3
	rep := check.CheckFunc(f, check.Options{})
	if rep.Has(check.CodeAntidep) {
		t.Fatalf("boundary between load and store should clear the window:\n%s", rep.String())
	}
}

// --- report mechanics ----------------------------------------------------

func TestReportJSONAndString(t *testing.T) {
	f := straightline()
	f.Blocks[0].Instrs[1].A = ir.R(99)
	rep := check.CheckProgram(wrap(f))
	if !rep.HasErrors() {
		t.Fatal("expected errors")
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	js := sb.String()
	for _, want := range []string{`"code": "CWSP003"`, `"severity": "error"`, `"errors":`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON output missing %q:\n%s", want, js)
		}
	}
	txt := rep.String()
	if !strings.Contains(txt, "CWSP003 error main/b0[1]") {
		t.Fatalf("text output missing location:\n%s", txt)
	}
}

func TestReportSortIsStable(t *testing.T) {
	rep := &check.Report{Diags: []check.Diagnostic{
		{Code: "CWSP020", Fn: "b", Block: 1, Index: 0},
		{Code: "CWSP010", Fn: "a", Block: 2, Index: 3},
		{Code: "CWSP004", Fn: "a", Block: 0, Index: 1},
	}}
	rep.Sort()
	if rep.Diags[0].Fn != "a" || rep.Diags[0].Block != 0 || rep.Diags[2].Fn != "b" {
		t.Fatalf("bad sort order: %+v", rep.Diags)
	}
}
