package check

import "cwsp/internal/ir"

// checkSufficiency proves, for every reachable region boundary, that each
// register live into the region is rebuilt exactly by the region's recovery
// slice (CWSP030-032), and that every slice is well-formed in itself
// (CWSP040-044). Liveness comes from the checker's own fixpoint; value
// equality comes from the symbolic engine. A checkpoint the pruner removed
// wrongly therefore shows up here as a term mismatch, not as a corrupted
// run months later.
func checkSufficiency(rep *Report, f *ir.Function, fl *flow, maxPasses int) {
	lv := computeLiveness(fl)
	sym := symDataflow(f, fl, maxPasses)
	sev := rep.errorf
	if !sym.converged {
		rep.warnf(CodeNoConvergence, f.Name, -1, -1, -1,
			"symbolic dataflow hit its iteration cap; sufficiency findings downgraded to warnings")
		sev = rep.warnf
	}

	// Slot-write inventory for CWSP040: a slice may load slot r only if
	// some ckpt writes it or the calling convention does (parameters).
	slotWritten := make([]bool, f.NumRegs)
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op == ir.OpCkpt && in.A.IsReg() && int(in.A.Reg) < f.NumRegs {
				slotWritten[in.A.Reg] = true
			}
		}
	}

	usedSlices := map[int]bool{}
	for _, bi := range fl.rpo {
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			inst := &b.Instrs[ii]
			if inst.Op != ir.OpBoundary {
				continue
			}
			id := inst.RegionID
			liveIn := sortedRegs(lv.liveBefore(bi, ii))

			rs, ok := f.Slices[id]
			if !ok {
				rep.errorf(CodeSliceMissing, f.Name, bi, ii, id, "reachable region has no recovery slice")
				continue
			}
			usedSlices[id] = true
			if rs.RegionID != id {
				rep.errorf(CodeSliceMeta, f.Name, bi, ii, id, "slice stored under region %d records id %d", id, rs.RegionID)
			}
			if rs.Entry.Block != bi || rs.Entry.Index != ii {
				rep.errorf(CodeSliceMeta, f.Name, bi, ii, id, "slice entry b%d[%d] does not match the boundary position",
					rs.Entry.Block, rs.Entry.Index)
			}

			declared := map[ir.Reg]bool{}
			for _, r := range rs.LiveIn {
				declared[r] = true
			}
			for _, r := range liveIn {
				if !declared[r] {
					rep.errorf(CodeLiveInMissing, f.Name, bi, ii, id, "r%d is live into the region but absent from the slice's live-in set", r)
				}
			}

			// Replay the slice symbolically against the state at the boundary.
			at := sym.stateAt(f, bi, ii)
			env := replaySlice(rep, f, sym, at, rs, slotWritten, bi, ii, id)

			for _, r := range liveIn {
				got, ok := env[r]
				if !ok {
					if declared[r] {
						rep.errorf(CodeSliceTarget, f.Name, bi, ii, id, "slice declares r%d live-in but never defines it", r)
					}
					continue
				}
				if got != at.regs[r] {
					sev(CodeUnrecoverable, f.Name, bi, ii, id,
						"slice rebuilds r%d as %s but the region needs %s",
						r, sym.describeTerm(got), sym.describeTerm(at.regs[r]))
				}
			}
		}
	}

	// Slices for unreachable regions are harmless; slices for region ids
	// that no boundary carries point at metadata drift.
	for id, rs := range f.Slices {
		if usedSlices[id] {
			continue
		}
		if id < 0 || id >= f.NumRegions {
			rep.errorf(CodeSliceMeta, f.Name, rs.Entry.Block, rs.Entry.Index, id,
				"slice for region %d outside [0,%d)", id, f.NumRegions)
		}
	}
}

// replaySlice runs the slice's steps symbolically, validating step shape
// (CWSP041/044) and slot inputs (CWSP040), and returns the register values
// the slice establishes.
func replaySlice(rep *Report, f *ir.Function, sym *symResult, at *symState, rs ir.RecoverySlice,
	slotWritten []bool, bi, ii, id int) map[ir.Reg]int {
	env := map[ir.Reg]int{}
	regOK := func(r ir.Reg) bool { return r >= 0 && int(r) < f.NumRegs }
	need := func(step int, r ir.Reg) (int, bool) {
		if !regOK(r) {
			rep.errorf(CodeSliceStep, f.Name, bi, ii, id, "step %d references register r%d out of range", step, r)
			return symUndef, false
		}
		t, ok := env[r]
		if !ok {
			rep.errorf(CodeSliceOrder, f.Name, bi, ii, id, "step %d reads r%d before the slice defines it", step, r)
			return symUndef, false
		}
		return t, true
	}
	for si, st := range rs.Steps {
		if !regOK(st.Dst) {
			rep.errorf(CodeSliceStep, f.Name, bi, ii, id, "step %d writes register r%d out of range", si, st.Dst)
			continue
		}
		switch st.Op {
		case ir.SliceConst:
			env[st.Dst] = sym.engine.constTerm(st.Imm)
		case ir.SliceLoadCkpt:
			if !regOK(st.Src) {
				rep.errorf(CodeSliceStep, f.Name, bi, ii, id, "step %d loads slot r%d out of range", si, st.Src)
				continue
			}
			if !slotWritten[st.Src] && int(st.Src) >= f.NParams {
				rep.errorf(CodeSliceInput, f.Name, bi, ii, id,
					"step %d loads checkpoint slot r%d, which no checkpoint writes", si, st.Src)
			}
			env[st.Dst] = at.slots[st.Src]
		case ir.SliceUnary:
			if !isALUOp(st.ALUOp) {
				rep.errorf(CodeSliceStep, f.Name, bi, ii, id, "step %d has non-ALU opcode %v", si, st.ALUOp)
				continue
			}
			src, ok := need(si, st.Src)
			if !ok {
				continue
			}
			env[st.Dst] = sym.engine.aluTerm(st.ALUOp, src, sym.engine.constTerm(st.Imm))
		case ir.SliceBinary:
			if !isALUOp(st.ALUOp) {
				rep.errorf(CodeSliceStep, f.Name, bi, ii, id, "step %d has non-ALU opcode %v", si, st.ALUOp)
				continue
			}
			a, aok := need(si, st.Src)
			b, bok := need(si, st.Src2)
			if !aok || !bok {
				continue
			}
			env[st.Dst] = sym.engine.aluTerm(st.ALUOp, a, b)
		default:
			rep.errorf(CodeSliceStep, f.Name, bi, ii, id, "step %d has unknown slice opcode %d", si, st.Op)
		}
	}
	return env
}
