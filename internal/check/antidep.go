package check

import (
	"cwsp/internal/analysis"
	"cwsp/internal/ir"
)

// checkAntidep re-derives the region-idempotence invariant (CWSP020): no
// store may overwrite a location that an earlier instruction of the same
// region may have loaded, because re-executing the region from its entry
// would then read the clobbered value. The scan is a forward dataflow of
// "loads executed since the last boundary" over the *formed* IR — it trusts
// the boundaries actually present in the instruction stream, not
// regions.Form's cut bookkeeping — with may-alias facts from
// analysis.ComputeAlias, the one analysis checker and transform must share.
func checkAntidep(rep *Report, f *ir.Function, fl *flow) {
	alias := analysis.ComputeAlias(f)
	n := len(f.Blocks)
	in := make([]map[analysis.MemRef]bool, n)
	out := make([]map[analysis.MemRef]bool, n)
	for i := 0; i < n; i++ {
		out[i] = map[analysis.MemRef]bool{}
	}

	transfer := func(bi int, start map[analysis.MemRef]bool, report bool) map[analysis.MemRef]bool {
		cur := map[analysis.MemRef]bool{}
		for k := range start {
			cur[k] = true
		}
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			inst := &b.Instrs[ii]
			if inst.IsBoundaryOp() {
				// OpBoundary starts a new region; call-like ops are
				// persisted synchronously and likewise reset the window.
				cur = map[analysis.MemRef]bool{}
				continue
			}
			if inst.Op == ir.OpStore {
				ref := analysis.MemRef{Block: bi, Index: ii}
				for l := range cur {
					if alias.MayAlias(l, ref) {
						if report {
							rep.errorf(CodeAntidep, f.Name, bi, ii, -1,
								"store may overwrite the word loaded at b%d[%d] within one region",
								l.Block, l.Index)
						}
						// One diagnostic per offending store is enough.
						break
					}
				}
			}
			if inst.Op == ir.OpLoad {
				cur[analysis.MemRef{Block: bi, Index: ii}] = true
			}
		}
		return cur
	}

	changed := true
	for changed {
		changed = false
		for _, bi := range fl.rpo {
			merged := map[analysis.MemRef]bool{}
			for _, p := range fl.preds[bi] {
				for k := range out[p] {
					merged[k] = true
				}
			}
			in[bi] = merged
			nout := transfer(bi, merged, false)
			if !memSetEq(nout, out[bi]) {
				out[bi] = nout
				changed = true
			}
		}
	}
	for _, bi := range fl.rpo {
		start := in[bi]
		if start == nil {
			start = map[analysis.MemRef]bool{}
		}
		transfer(bi, start, true)
	}
}

func memSetEq(a, b map[analysis.MemRef]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
