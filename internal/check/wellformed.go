package check

import "cwsp/internal/ir"

// checkStructure verifies CWSP001/002/003: block indexing, terminator
// placement, branch ranges, register ranges, and per-opcode operand kinds.
// It returns false when the function is too malformed for the dataflow
// checks to run meaningfully.
func checkStructure(rep *Report, f *ir.Function) bool {
	ok := true
	if len(f.Blocks) == 0 {
		rep.errorf(CodeStructure, f.Name, -1, -1, -1, "function has no blocks")
		return false
	}
	for bi, b := range f.Blocks {
		if b.Index != bi {
			rep.errorf(CodeStructure, f.Name, bi, -1, -1, "block %q records index %d", b.Name, b.Index)
			ok = false
		}
		if len(b.Instrs) == 0 {
			rep.errorf(CodeStructure, f.Name, bi, -1, -1, "block %q is empty", b.Name)
			ok = false
			continue
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.IsTerminator() != (ii == len(b.Instrs)-1) {
				rep.errorf(CodeStructure, f.Name, bi, ii, -1, "terminator placement violation (%v)", in.Op)
				ok = false
			}
			switch in.Op {
			case ir.OpJmp:
				if in.Then < 0 || in.Then >= len(f.Blocks) {
					rep.errorf(CodeBranchRange, f.Name, bi, ii, -1, "jmp target %d out of range", in.Then)
					ok = false
				}
			case ir.OpBr:
				if in.Then < 0 || in.Then >= len(f.Blocks) || in.Else < 0 || in.Else >= len(f.Blocks) {
					rep.errorf(CodeBranchRange, f.Name, bi, ii, -1, "br targets (%d,%d) out of range", in.Then, in.Else)
					ok = false
				}
			}
			if !checkOperands(rep, f, bi, ii, in) {
				ok = false
			}
		}
		if b.Term() == nil {
			rep.errorf(CodeStructure, f.Name, bi, -1, -1, "block %q does not end in a terminator", b.Name)
			ok = false
		}
	}
	return ok
}

// checkOperands verifies register ranges and that each opcode's required
// operands are present with a legal kind (CWSP003).
func checkOperands(rep *Report, f *ir.Function, bi, ii int, in *ir.Instr) bool {
	ok := true
	bad := func(format string, args ...interface{}) {
		rep.errorf(CodeOperand, f.Name, bi, ii, -1, format, args...)
		ok = false
	}
	checkReg := func(r ir.Reg) {
		if r != ir.NoReg && (r < 0 || int(r) >= f.NumRegs) {
			bad("register r%d out of range (NumRegs=%d)", r, f.NumRegs)
		}
	}
	for _, u := range in.Uses(nil) {
		checkReg(u)
	}
	checkReg(in.Def())

	present := func(name string, o ir.Operand) {
		if o.Kind == ir.OperandNone {
			bad("%v requires operand %s", in.Op, name)
		}
	}
	switch in.Op {
	case ir.OpInvalid:
		bad("invalid opcode")
	case ir.OpConst:
		if !in.A.IsImm() {
			bad("const requires an immediate operand")
		}
	case ir.OpMov, ir.OpLoad, ir.OpEmit:
		present("A", in.A)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		present("A", in.A)
		present("B", in.B)
	case ir.OpSelect, ir.OpAtomicCAS:
		present("A", in.A)
		present("B", in.B)
		present("C", in.C)
	case ir.OpStore, ir.OpAtomicAdd, ir.OpAtomicXchg:
		present("A", in.A)
		present("B", in.B)
	case ir.OpAlloc:
		present("A", in.A)
	case ir.OpBr:
		present("A", in.A)
	case ir.OpRet:
		if in.HasVal {
			present("A", in.A)
		}
	case ir.OpCkpt:
		if !in.A.IsReg() {
			bad("ckpt requires a register operand")
		}
	}
	return ok
}

// checkDefBeforeUse runs the checker's own forward definitely-assigned
// dataflow (meet = intersection over predecessors, parameters assigned at
// entry) and reports every read that may observe an unassigned register
// (CWSP004).
func checkDefBeforeUse(rep *Report, f *ir.Function, fl *flow) {
	n := len(f.Blocks)
	in := make([]bitset, n)
	nr := f.NumRegs
	full := newBitset(nr)
	for r := 0; r < nr; r++ {
		full.set(r)
	}
	for i := range in {
		in[i] = full.copy() // optimistic top; meet shrinks it
	}
	entry := newBitset(nr)
	for i := 0; i < f.NParams; i++ {
		entry.set(i)
	}
	in[0] = entry

	transfer := func(bi int, cur bitset) bitset {
		for ii := range f.Blocks[bi].Instrs {
			if d := f.Blocks[bi].Instrs[ii].Def(); d != ir.NoReg && int(d) < nr && d >= 0 {
				cur.set(int(d))
			}
		}
		return cur
	}
	changed := true
	for changed {
		changed = false
		for _, bi := range fl.rpo {
			out := transfer(bi, in[bi].copy())
			for _, s := range fl.succs[bi] {
				if s == 0 {
					continue // entry keeps its parameters-only set
				}
				before := in[s].copy()
				in[s].intersect(out)
				if !in[s].equal(before) {
					changed = true
				}
			}
		}
	}

	for _, bi := range fl.rpo {
		cur := in[bi].copy()
		var uses []ir.Reg
		for ii := range f.Blocks[bi].Instrs {
			inst := &f.Blocks[bi].Instrs[ii]
			uses = inst.Uses(uses[:0])
			for _, u := range uses {
				if u >= 0 && int(u) < nr && !cur.has(int(u)) {
					rep.errorf(CodeDefUse, f.Name, bi, ii, -1, "r%d may be read before assignment", u)
				}
			}
			if d := inst.Def(); d != ir.NoReg && d >= 0 && int(d) < nr {
				cur.set(int(d))
			}
		}
	}
}

// checkCalls verifies CWSP005 for the whole program: the entry function
// exists and every call site resolves with matching arity.
func checkCalls(rep *Report, p *ir.Program) {
	if p.Entry == "" || p.Funcs[p.Entry] == nil {
		rep.errorf(CodeCall, "", -1, -1, -1, "program %q has no entry function %q", p.Name, p.Entry)
	}
	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpCall {
					continue
				}
				callee := p.Funcs[in.Callee]
				if callee == nil {
					rep.errorf(CodeCall, f.Name, bi, ii, -1, "call to unknown function %q", in.Callee)
					continue
				}
				if len(in.Args) != callee.NParams {
					rep.errorf(CodeCall, f.Name, bi, ii, -1, "call to %s passes %d args, want %d",
						in.Callee, len(in.Args), callee.NParams)
				}
			}
		}
	}
}

// checkRegionStructure verifies CWSP010-013 over a region-formed function:
// dense unique region ids, full region coverage, boundaries around
// call-like operations, and boundaries at natural-loop headers.
func checkRegionStructure(rep *Report, f *ir.Function, fl *flow) {
	// CWSP010: ids must be exactly 0..NumRegions-1, each used once.
	seen := map[int]ir.InstrRef{}
	count := 0
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Op != ir.OpBoundary {
				continue
			}
			count++
			id := in.RegionID
			if id < 0 || id >= f.NumRegions {
				rep.errorf(CodeRegionIDs, f.Name, bi, ii, id, "region id %d outside [0,%d)", id, f.NumRegions)
				continue
			}
			if prev, dup := seen[id]; dup {
				rep.errorf(CodeRegionIDs, f.Name, bi, ii, id, "region id %d already used at b%d[%d]",
					id, prev.Block, prev.Index)
				continue
			}
			seen[id] = ir.InstrRef{Block: bi, Index: ii}
		}
	}
	if count != f.NumRegions {
		rep.errorf(CodeRegionIDs, f.Name, -1, -1, -1, "function declares %d regions but has %d boundaries",
			f.NumRegions, count)
	}

	// CWSP011: every reachable instruction must execute under some region,
	// i.e. a boundary must have been crossed on every path reaching it.
	// Forward dataflow: covered(entry)=false, boundary => true, meet = AND.
	covered := coveredIn(f, fl)
	for _, bi := range fl.rpo {
		cur := covered[bi]
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			if in.Op == ir.OpBoundary {
				cur = true
				continue
			}
			if !cur {
				rep.errorf(CodeUncovered, f.Name, bi, ii, -1, "%v executes before any region boundary", in.Op)
			}
		}
	}

	// CWSP012: every call-like operation needs a boundary immediately before
	// and after it in its block (checkpoints for the following boundary may
	// sit in between; region formation never leaves anything else there).
	for _, bi := range fl.rpo {
		b := f.Blocks[bi]
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if !in.IsBoundaryOp() || in.Op == ir.OpBoundary {
				continue
			}
			if prevNonCkpt(b, ii) != ir.OpBoundary {
				rep.errorf(CodeCallBoundary, f.Name, bi, ii, -1, "%v has no boundary before it", in.Op)
			}
			if nextNonCkpt(b, ii) != ir.OpBoundary {
				rep.errorf(CodeCallBoundary, f.Name, bi, ii, -1, "%v has no boundary after it", in.Op)
			}
		}
	}

	// CWSP013: every natural-loop header starts a fresh region, so a power
	// failure mid-iteration re-executes at most one iteration.
	for h := range fl.loopHeaders() {
		b := f.Blocks[h]
		first := ir.OpInvalid
		for ii := range b.Instrs {
			if b.Instrs[ii].Op != ir.OpCkpt {
				first = b.Instrs[ii].Op
				break
			}
		}
		if first != ir.OpBoundary {
			rep.errorf(CodeLoopBoundary, f.Name, h, -1, -1, "loop header %q does not begin with a boundary", b.Name)
		}
	}
}

// coveredIn computes, per reachable block, whether every path into it has
// crossed at least one region boundary.
func coveredIn(f *ir.Function, fl *flow) []bool {
	n := len(f.Blocks)
	in := make([]bool, n)
	computed := make([]bool, n)
	out := make([]bool, n)
	transfer := func(bi int, cur bool) bool {
		for ii := range f.Blocks[bi].Instrs {
			if f.Blocks[bi].Instrs[ii].Op == ir.OpBoundary {
				return true
			}
		}
		return cur
	}
	changed := true
	for changed {
		changed = false
		for _, bi := range fl.rpo {
			cur := true
			if bi == 0 {
				cur = false
			}
			for _, p := range fl.preds[bi] {
				if computed[p] && !out[p] {
					cur = false
				}
			}
			no := transfer(bi, cur)
			if !computed[bi] || no != out[bi] || cur != in[bi] {
				computed[bi] = true
				out[bi] = no
				in[bi] = cur
				changed = true
			}
		}
	}
	return in
}

// prevNonCkpt returns the opcode of the nearest preceding non-checkpoint
// instruction in the block, or OpInvalid at the block start.
func prevNonCkpt(b *ir.Block, ii int) ir.Op {
	for k := ii - 1; k >= 0; k-- {
		if b.Instrs[k].Op != ir.OpCkpt {
			return b.Instrs[k].Op
		}
	}
	return ir.OpInvalid
}

// nextNonCkpt returns the opcode of the nearest following non-checkpoint
// instruction in the block, or OpInvalid at the block end.
func nextNonCkpt(b *ir.Block, ii int) ir.Op {
	for k := ii + 1; k < len(b.Instrs); k++ {
		if b.Instrs[k].Op != ir.OpCkpt {
			return b.Instrs[k].Op
		}
	}
	return ir.OpInvalid
}
