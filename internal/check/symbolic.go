package check

import (
	"fmt"
	"sort"
	"strings"

	"cwsp/internal/ir"
)

// The sufficiency checker proves recovery slices correct with a symbolic
// value-numbering dataflow, a deliberately different technique from the
// compiler's capability lattice (translation validation rather than
// re-running the optimizer): every register and every NVM checkpoint slot
// is mapped to an interned symbolic term, two program values are known
// equal iff their terms are identical, and a slice recipe is valid at a
// boundary iff replaying it symbolically over the slot terms reproduces the
// live-in register terms.
//
// Term construction:
//
//   - leaves: parameters, initial slot contents, constants, and one opaque
//     term per non-reconstructible definition site (loads, calls, allocs,
//     atomics, selects);
//   - ALU terms fold constants through the real executor and canonicalize
//     commutative operands, so "imm op slot" matches the slice's
//     "slot op imm" replay;
//   - joins where predecessors disagree intern a phi term keyed by the
//     block and the full incoming vector — registers and slots that were
//     pairwise-equal on every edge therefore stay equal after the join,
//     which is exactly the relational fact checkpoint pruning exploits;
//   - loop-carried phi vectors can otherwise grow without bound, so a join
//     that keeps changing is widened: its variables collapse to terms keyed
//     by (block, equivalence class of the incoming vector), preserving
//     pairwise equality while forcing convergence.
type symEngine struct {
	ids    map[string]int
	consts map[int]int64 // term id -> value, for terms that are known constants
}

func newSymEngine() *symEngine {
	return &symEngine{ids: map[string]int{}, consts: map[int]int64{}}
}

const symUndef = 0 // shared "never assigned" term

func (e *symEngine) intern(key string) int {
	if id, ok := e.ids[key]; ok {
		return id
	}
	id := len(e.ids) + 1 // 0 is reserved for symUndef
	e.ids[key] = id
	return id
}

func (e *symEngine) constTerm(v int64) int {
	id := e.intern(fmt.Sprintf("c|%d", v))
	e.consts[id] = v
	return id
}

func (e *symEngine) paramTerm(r ir.Reg) int    { return e.intern(fmt.Sprintf("p|%d", r)) }
func (e *symEngine) slotInitTerm(r ir.Reg) int { return e.intern(fmt.Sprintf("s0|%d", r)) }

func (e *symEngine) opaqueTerm(fn string, b, i int) int {
	return e.intern(fmt.Sprintf("o|%s|%d|%d", fn, b, i))
}

// aluTerm builds the term for a op b, folding constants with the real
// executor's semantics and canonicalizing commutative operand order.
func (e *symEngine) aluTerm(op ir.Op, a, b int) int {
	av, aok := e.consts[a]
	bv, bok := e.consts[b]
	if aok && bok {
		return e.constTerm(execFold(op, av, bv))
	}
	if commutativeOp(op) && a > b {
		a, b = b, a
	}
	return e.intern(fmt.Sprintf("a|%d|%d|%d", op, a, b))
}

func commutativeOp(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCmpEQ, ir.OpCmpNE:
		return true
	}
	return false
}

// isALUOp reports whether op is a legal recovery-slice ALU opcode.
func isALUOp(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		return true
	}
	return false
}

// execFold evaluates a op b through the executor so the checker's constant
// semantics (shift masking, division by zero) match the machine's exactly.
func execFold(op ir.Op, a, b int64) int64 {
	regs := []int64{a, b}
	in := ir.Instr{Op: op, Dst: 0, A: ir.R(0), B: ir.R(1)}
	ir.Exec(&in, regs, nil)
	return regs[0]
}

// symState is the per-point abstraction: one term per register and one per
// checkpoint slot.
type symState struct {
	regs  []int
	slots []int
}

func (s *symState) clone() *symState {
	c := &symState{regs: make([]int, len(s.regs)), slots: make([]int, len(s.slots))}
	copy(c.regs, s.regs)
	copy(c.slots, s.slots)
	return c
}

func (s *symState) equal(o *symState) bool {
	for i := range s.regs {
		if s.regs[i] != o.regs[i] {
			return false
		}
	}
	for i := range s.slots {
		if s.slots[i] != o.slots[i] {
			return false
		}
	}
	return true
}

// var index space for join bookkeeping: 0..nr-1 registers, nr..2nr-1 slots.
func (s *symState) get(v int) int {
	if v < len(s.regs) {
		return s.regs[v]
	}
	return s.slots[v-len(s.regs)]
}

func (s *symState) put(v, t int) {
	if v < len(s.regs) {
		s.regs[v] = t
	} else {
		s.slots[v-len(s.regs)] = t
	}
}

// transfer applies one instruction to the state.
func (e *symEngine) transfer(st *symState, fn string, bi, ii int, in *ir.Instr) {
	term := func(o ir.Operand) int {
		switch o.Kind {
		case ir.OperandImm:
			return e.constTerm(o.Imm)
		case ir.OperandReg:
			return st.regs[o.Reg]
		}
		return symUndef
	}
	switch in.Op {
	case ir.OpConst:
		st.regs[in.Dst] = e.constTerm(in.A.Imm)
	case ir.OpMov:
		st.regs[in.Dst] = term(in.A)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		st.regs[in.Dst] = e.aluTerm(in.Op, term(in.A), term(in.B))
	case ir.OpCkpt:
		// The slot takes a snapshot of the register's current value. Slots
		// hold values, not relations, so no other term is disturbed.
		if in.A.IsReg() {
			st.slots[in.A.Reg] = st.regs[in.A.Reg]
		}
	case ir.OpStore, ir.OpJmp, ir.OpBr, ir.OpRet, ir.OpFence, ir.OpEmit, ir.OpBoundary:
		// No register or slot effect.
	default:
		// Loads, calls, allocs, atomics, selects: a fresh value per site.
		// The site-keyed term is sound because a slot can only carry it via
		// an OpCkpt that ran after the same definition on the same path;
		// any older snapshot reaches a join against a path that lacks it
		// (first entry carries the distinct slot-init leaf) and collapses.
		if d := in.Def(); d != ir.NoReg {
			st.regs[d] = e.opaqueTerm(fn, bi, ii)
		}
	}
}

// joinSite tracks widening state for one (block, variable) join.
type joinSite struct {
	lastIn  int
	seen    bool
	changes int
	widened bool
}

// widenLimit is how many times a join may produce a new phi term before the
// variable is widened at that block. Acyclic joins settle in one pass;
// only loop-carried growth crosses this.
const widenLimit = 3

// symResult carries the converged per-block in-states.
type symResult struct {
	engine    *symEngine
	in        []*symState
	converged bool
}

// symDataflow runs the symbolic fixpoint and returns each reachable block's
// in-state.
func symDataflow(f *ir.Function, fl *flow, maxPasses int) *symResult {
	e := newSymEngine()
	nr := f.NumRegs
	nblocks := len(f.Blocks)
	if maxPasses <= 0 {
		maxPasses = 64 + 4*nblocks
	}

	entry := &symState{regs: make([]int, nr), slots: make([]int, nr)}
	for r := 0; r < nr; r++ {
		if r < f.NParams {
			// The calling convention checkpoints arguments into the callee
			// frame's parameter slots: register and slot start equal.
			entry.regs[r] = e.paramTerm(ir.Reg(r))
			entry.slots[r] = e.paramTerm(ir.Reg(r))
		} else {
			entry.regs[r] = symUndef
			entry.slots[r] = e.slotInitTerm(ir.Reg(r))
		}
	}

	out := make([]*symState, nblocks)
	sites := make(map[[2]int]*joinSite) // (block, var) -> join bookkeeping

	computeIn := func(bi int) *symState {
		if bi == 0 {
			return entry.clone()
		}
		var avail []int
		for _, p := range fl.preds[bi] {
			if out[p] != nil {
				avail = append(avail, p)
			}
		}
		st := &symState{regs: make([]int, nr), slots: make([]int, nr)}
		if len(avail) == 0 {
			return st // all-undef; the block is effectively unreachable so far
		}
		if len(avail) == 1 {
			return out[avail[0]].clone()
		}
		// Group widened variables by incoming vector so pairwise-equal
		// variables share one widened term (class key = smallest member).
		vecs := make([]string, 2*nr)
		classKey := map[string]int{}
		for v := 0; v < 2*nr; v++ {
			var sb strings.Builder
			same := true
			first := out[avail[0]].get(v)
			for k, p := range avail {
				t := out[p].get(v)
				if t != first {
					same = false
				}
				if k > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", t)
			}
			if same {
				st.put(v, first)
				continue
			}
			vecs[v] = sb.String()
			site := sites[[2]int{bi, v}]
			if site != nil && site.widened {
				if _, ok := classKey[vecs[v]]; !ok {
					classKey[vecs[v]] = v
				}
				continue // widened terms assigned below, after classes settle
			}
			st.put(v, e.intern(fmt.Sprintf("phi|%d|%s", bi, vecs[v])))
		}
		for v := 0; v < 2*nr; v++ {
			site := sites[[2]int{bi, v}]
			if site == nil || !site.widened || vecs[v] == "" {
				continue
			}
			st.put(v, e.intern(fmt.Sprintf("w|%d|%d", bi, classKey[vecs[v]])))
		}
		// Widening bookkeeping: count how often each variable's joined term
		// changes; past the limit, widen it permanently.
		for v := 0; v < 2*nr; v++ {
			key := [2]int{bi, v}
			site := sites[key]
			if site == nil {
				site = &joinSite{}
				sites[key] = site
			}
			t := st.get(v)
			if site.seen && t != site.lastIn && !site.widened {
				site.changes++
				if site.changes > widenLimit {
					site.widened = true
				}
			}
			site.seen = true
			site.lastIn = t
		}
		return st
	}

	res := &symResult{engine: e, in: make([]*symState, nblocks)}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, bi := range fl.rpo {
			cur := computeIn(bi)
			res.in[bi] = cur.clone()
			for ii := range f.Blocks[bi].Instrs {
				e.transfer(cur, f.Name, bi, ii, &f.Blocks[bi].Instrs[ii])
			}
			if out[bi] == nil || !cur.equal(out[bi]) {
				out[bi] = cur
				changed = true
			}
		}
		if !changed {
			res.converged = true
			return res
		}
	}
	// Non-convergence: keep the last states. They may flag sound programs
	// (never the reverse for direct-checkpoint recipes, which re-establish
	// slot == register after every join); the caller downgrades severity.
	return res
}

// stateAt replays the block prefix to produce the symbolic state
// immediately before Blocks[blk].Instrs[idx].
func (r *symResult) stateAt(f *ir.Function, blk, idx int) *symState {
	cur := r.in[blk].clone()
	for ii := 0; ii < idx; ii++ {
		r.engine.transfer(cur, f.Name, blk, ii, &f.Blocks[blk].Instrs[ii])
	}
	return cur
}

// describeTerm renders a term id for diagnostics (best effort: the interned
// key, reverse-looked-up).
func (r *symResult) describeTerm(id int) string {
	if id == symUndef {
		return "<undef>"
	}
	keys := make([]string, 0, 1)
	for k, v := range r.engine.ids {
		if v == id {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return fmt.Sprintf("t%d", id)
	}
	return keys[0]
}
