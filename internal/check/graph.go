package check

import "cwsp/internal/ir"

// flow caches the checker's own view of a function's control flow. It is a
// deliberate re-derivation of what internal/analysis computes: the checker
// must not inherit a bug from the analyses the transforms consumed.
type flow struct {
	f     *ir.Function
	succs [][]int
	preds [][]int
	rpo   []int // reverse postorder over reachable blocks, entry first
	reach []bool
}

func buildFlow(f *ir.Function) *flow {
	n := len(f.Blocks)
	fl := &flow{f: f, succs: make([][]int, n), preds: make([][]int, n), reach: make([]bool, n)}
	for i, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue // structural checks report this; keep the graph partial
		}
		switch t.Op {
		case ir.OpJmp:
			fl.addEdge(i, t.Then, n)
		case ir.OpBr:
			fl.addEdge(i, t.Then, n)
			if t.Else != t.Then {
				fl.addEdge(i, t.Else, n)
			}
		}
	}
	// Iterative DFS postorder from the entry.
	if n == 0 {
		return fl
	}
	type frame struct{ b, si int }
	var post []int
	stack := []frame{{0, 0}}
	fl.reach[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.si < len(fl.succs[top.b]) {
			s := fl.succs[top.b][top.si]
			top.si++
			if !fl.reach[s] {
				fl.reach[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	fl.rpo = make([]int, len(post))
	for i := range post {
		fl.rpo[i] = post[len(post)-1-i]
	}
	return fl
}

func (fl *flow) addEdge(from, to, n int) {
	if to < 0 || to >= n {
		return // branch-range checks report this
	}
	fl.succs[from] = append(fl.succs[from], to)
	fl.preds[to] = append(fl.preds[to], from)
}

// dominators computes, for every reachable block, its dominator set as a
// bitset (the straightforward iterative formulation: dom(b) = {b} ∪
// ∩ dom(preds)). Function CFGs here are small, so the O(n²) dataflow is
// simpler and easier to trust than Lengauer-Tarjan.
func (fl *flow) dominators() []bitset {
	n := len(fl.f.Blocks)
	dom := make([]bitset, n)
	all := newBitset(n)
	for i := 0; i < n; i++ {
		all.set(i)
	}
	for i := 0; i < n; i++ {
		if i == 0 {
			dom[i] = newBitset(n)
			dom[i].set(0)
		} else {
			dom[i] = all.copy()
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range fl.rpo {
			if b == 0 {
				continue
			}
			nd := all.copy()
			any := false
			for _, p := range fl.preds[b] {
				if !fl.reach[p] {
					continue
				}
				nd.intersect(dom[p])
				any = true
			}
			if !any {
				nd = newBitset(n)
			}
			nd.set(b)
			if !nd.equal(dom[b]) {
				dom[b] = nd
				changed = true
			}
		}
	}
	return dom
}

// loopHeaders returns the blocks that head a natural loop: targets of back
// edges t→h with h dominating t, over reachable blocks only.
func (fl *flow) loopHeaders() map[int]bool {
	dom := fl.dominators()
	heads := map[int]bool{}
	for t, ss := range fl.succs {
		if !fl.reach[t] {
			continue
		}
		for _, h := range ss {
			if dom[t].has(h) {
				heads[h] = true
			}
		}
	}
	return heads
}

// bitset is a dense block-index set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

func (s bitset) copy() bitset {
	c := make(bitset, len(s))
	copy(c, s)
	return c
}

func (s bitset) intersect(o bitset) {
	for i := range s {
		s[i] &= o[i]
	}
}

func (s bitset) equal(o bitset) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// liveness is the checker's own backward may-liveness fixpoint, kept as
// simple as possible (map-of-register sets, no bit tricks) so its
// correctness is evident by inspection.
type liveness struct {
	fl      *flow
	liveOut []map[ir.Reg]bool
}

func computeLiveness(fl *flow) *liveness {
	n := len(fl.f.Blocks)
	lv := &liveness{fl: fl, liveOut: make([]map[ir.Reg]bool, n)}
	liveIn := make([]map[ir.Reg]bool, n)
	for i := 0; i < n; i++ {
		lv.liveOut[i] = map[ir.Reg]bool{}
		liveIn[i] = map[ir.Reg]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := len(fl.rpo) - 1; i >= 0; i-- {
			b := fl.rpo[i]
			out := lv.liveOut[b]
			for _, s := range fl.succs[b] {
				for r := range liveIn[s] {
					if !out[r] {
						out[r] = true
						changed = true
					}
				}
			}
			in := lv.liveBefore(b, 0)
			for r := range in {
				if !liveIn[b][r] {
					liveIn[b][r] = true
					changed = true
				}
			}
		}
	}
	return lv
}

// liveBefore returns the registers live immediately before
// Blocks[blk].Instrs[idx], walking the block backward from its live-out.
func (lv *liveness) liveBefore(blk, idx int) map[ir.Reg]bool {
	cur := map[ir.Reg]bool{}
	for r := range lv.liveOut[blk] {
		cur[r] = true
	}
	instrs := lv.fl.f.Blocks[blk].Instrs
	var uses []ir.Reg
	for k := len(instrs) - 1; k >= idx; k-- {
		inst := &instrs[k]
		if d := inst.Def(); d != ir.NoReg {
			delete(cur, d)
		}
		uses = inst.Uses(uses[:0])
		for _, u := range uses {
			cur[u] = true
		}
	}
	return cur
}

// sortedRegs returns the members of a register set in ascending order.
func sortedRegs(set map[ir.Reg]bool) []ir.Reg {
	out := make([]ir.Reg, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
