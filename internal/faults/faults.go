// Package faults is the deterministic, seed-driven fault-injection
// subsystem of the torture harness: it decides *what* hardware corruption a
// crash experiment injects, reproducibly. A Plan is a seeded RNG's output —
// a crash schedule (possibly nested: crash the resumed machine again, to
// depth N) plus explicit fault points — that serializes to a compact spec
// string, so any failing campaign cell replays standalone from one flag
// (`cwsprecover -faults '<spec>'`) and a campaign report pins every cell to
// its exact corruption.
//
// The taxonomy mirrors where real persist paths break (PAPER.md §VI–VII,
// "Lost in Interpretation", "Delay-Free Concurrency on Faulty Persistent
// Memory"):
//
//	torn-log      a torn undo-log record write at power loss
//	drop-wpq      an admitted WPQ tail entry that never reached media
//	reorder-wpq   two same-MC tail entries drained out of FIFO order
//	corrupt-ckpt  a corrupted checkpoint-area word
//
// Points select their victims by ordinal among the eligible records at the
// crash instant (never by absolute address), so one Plan is meaningful
// across workloads and crash cycles while staying fully deterministic.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind is one fault class.
type Kind string

// The fault taxonomy.
const (
	TornLog     Kind = "torn-log"
	DropWPQ     Kind = "drop-wpq"
	ReorderWPQ  Kind = "reorder-wpq"
	CorruptCkpt Kind = "corrupt-ckpt"
)

// Kinds lists the taxonomy in canonical order.
var Kinds = []Kind{TornLog, DropWPQ, ReorderWPQ, CorruptCkpt}

func validKind(k Kind) bool {
	for _, v := range Kinds {
		if v == k {
			return true
		}
	}
	return false
}

// Point is one injected fault: Kind at crash ordinal Crash (0 = the first
// power failure, 1 = the first crash of the resumed machine, ...), victim
// chosen as Pick modulo the eligible-target count at that instant, content
// perturbed by XOR (ignored for drop/reorder).
type Point struct {
	Kind  Kind   `json:"kind"`
	Crash int    `json:"crash"`
	Pick  int64  `json:"pick"`
	XOR   uint64 `json:"xor,omitempty"`
}

// Plan is one experiment's complete, reproducible fault schedule.
type Plan struct {
	// Seed is provenance: the RNG seed the plan was generated from (0 for
	// hand-written or shrunk plans). The fields below are self-contained.
	Seed int64 `json:"seed,omitempty"`
	// Crashes positions each power failure, in permille of the reference
	// run length (the golden run's cycle count; nested crashes reuse the
	// same reference against the resumed machine's own clock). Length =
	// crash count = nesting depth.
	Crashes []int64 `json:"crashes"`
	// Points are the fault injections, grouped by their Crash ordinal.
	Points []Point `json:"points"`
}

// Depth returns the number of crashes (nesting depth).
func (p *Plan) Depth() int { return len(p.Crashes) }

// CrashCycle maps crash ordinal i to an absolute cycle against the
// reference duration (clamped to at least 1).
func (p *Plan) CrashCycle(i int, refCycles int64) int64 {
	c := refCycles * p.Crashes[i] / 1000
	if c < 1 {
		c = 1
	}
	return c
}

// PointsAt returns the plan's points for one crash ordinal, in plan order.
func (p *Plan) PointsAt(crash int) []Point {
	var out []Point
	for _, pt := range p.Points {
		if pt.Crash == crash {
			out = append(out, pt)
		}
	}
	return out
}

// GenOptions shape NewPlan's random draw.
type GenOptions struct {
	// Depth is the crash count (>= 1); crashes beyond the first cut the
	// resumed machine — recovery itself must survive them.
	Depth int
	// Points is how many fault points to draw (>= 0).
	Points int
}

// NewPlan draws a reproducible plan from a seeded RNG: Depth crash
// positions in [50, 950] permille and Points fault points with uniform
// kind, crash ordinal, pick, and a never-zero XOR mask.
func NewPlan(seed int64, opt GenOptions) *Plan {
	if opt.Depth < 1 {
		opt.Depth = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	for i := 0; i < opt.Depth; i++ {
		p.Crashes = append(p.Crashes, 50+rng.Int63n(901))
	}
	for i := 0; i < opt.Points; i++ {
		pt := Point{
			Kind:  Kinds[rng.Intn(len(Kinds))],
			Crash: rng.Intn(opt.Depth),
			Pick:  rng.Int63n(1 << 30),
		}
		for pt.XOR == 0 {
			pt.XOR = rng.Uint64()
		}
		p.Points = append(p.Points, pt)
	}
	sort.SliceStable(p.Points, func(a, b int) bool { return p.Points[a].Crash < p.Points[b].Crash })
	return p
}

// Spec renders the plan as a compact single-token string:
//
//	seed=7;crashes=350,700;torn-log@0:3:55aa;corrupt-ckpt@1:0:ff00
//
// Fields are semicolon-separated: an optional provenance seed, the crash
// permille list, then one kind@crash:pick:xorhex term per point.
// ParseSpec(p.Spec()) round-trips exactly.
func (p *Plan) Spec() string {
	var b strings.Builder
	if p.Seed != 0 {
		fmt.Fprintf(&b, "seed=%d;", p.Seed)
	}
	b.WriteString("crashes=")
	for i, c := range p.Crashes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	for _, pt := range p.Points {
		fmt.Fprintf(&b, ";%s@%d:%d:%x", pt.Kind, pt.Crash, pt.Pick, pt.XOR)
	}
	return b.String()
}

// ParseSpec parses Spec's format back into a plan.
func ParseSpec(s string) (*Plan, error) {
	p := &Plan{}
	for _, term := range strings.Split(strings.TrimSpace(s), ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		switch {
		case strings.HasPrefix(term, "seed="):
			v, err := strconv.ParseInt(term[len("seed="):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed in %q: %v", term, err)
			}
			p.Seed = v
		case strings.HasPrefix(term, "crashes="):
			for _, f := range strings.Split(term[len("crashes="):], ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: bad crash permille in %q: %v", term, err)
				}
				if v < 0 || v > 1000 {
					return nil, fmt.Errorf("faults: crash permille %d out of [0,1000]", v)
				}
				p.Crashes = append(p.Crashes, v)
			}
		default:
			at := strings.IndexByte(term, '@')
			if at < 0 {
				return nil, fmt.Errorf("faults: unrecognized spec term %q", term)
			}
			pt := Point{Kind: Kind(term[:at])}
			if !validKind(pt.Kind) {
				return nil, fmt.Errorf("faults: unknown fault kind %q", pt.Kind)
			}
			rest := strings.Split(term[at+1:], ":")
			if len(rest) != 3 {
				return nil, fmt.Errorf("faults: point %q wants kind@crash:pick:xorhex", term)
			}
			crash, err := strconv.Atoi(rest[0])
			if err != nil || crash < 0 {
				return nil, fmt.Errorf("faults: bad crash ordinal in %q", term)
			}
			pick, err := strconv.ParseInt(rest[1], 10, 64)
			if err != nil || pick < 0 {
				return nil, fmt.Errorf("faults: bad pick in %q", term)
			}
			xor, err := strconv.ParseUint(rest[2], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad xor hex in %q", term)
			}
			pt.Crash, pt.Pick, pt.XOR = crash, pick, xor
			p.Points = append(p.Points, pt)
		}
	}
	if len(p.Crashes) == 0 {
		return nil, fmt.Errorf("faults: spec %q has no crashes= term", s)
	}
	for _, pt := range p.Points {
		if pt.Crash >= len(p.Crashes) {
			return nil, fmt.Errorf("faults: point crash ordinal %d exceeds depth %d", pt.Crash, len(p.Crashes))
		}
	}
	return p, nil
}

// Clone deep-copies the plan (the shrinker mutates copies).
func (p *Plan) Clone() *Plan {
	q := &Plan{Seed: p.Seed}
	q.Crashes = append([]int64(nil), p.Crashes...)
	q.Points = append([]Point(nil), p.Points...)
	return q
}
