package faults

import (
	"reflect"
	"testing"
)

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(42, GenOptions{Depth: 3, Points: 5})
	b := NewPlan(42, GenOptions{Depth: 3, Points: 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	c := NewPlan(43, GenOptions{Depth: 3, Points: 5})
	if reflect.DeepEqual(a.Crashes, c.Crashes) && reflect.DeepEqual(a.Points, c.Points) {
		t.Fatal("different seeds produced identical plans")
	}
	if a.Depth() != 3 || len(a.Points) != 5 {
		t.Fatalf("plan shape: depth %d, points %d", a.Depth(), len(a.Points))
	}
	for _, pm := range a.Crashes {
		if pm < 50 || pm > 950 {
			t.Fatalf("crash permille %d outside [50,950]", pm)
		}
	}
	for _, pt := range a.Points {
		if pt.Crash < 0 || pt.Crash >= 3 {
			t.Fatalf("point crash ordinal %d outside depth", pt.Crash)
		}
		if pt.XOR == 0 {
			t.Fatal("generated point with zero XOR mask")
		}
		if !validKind(pt.Kind) {
			t.Fatalf("generated invalid kind %q", pt.Kind)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	plans := []*Plan{
		NewPlan(1, GenOptions{Depth: 1, Points: 0}),
		NewPlan(7, GenOptions{Depth: 2, Points: 3}),
		NewPlan(99, GenOptions{Depth: 4, Points: 8}),
		{Crashes: []int64{500}, Points: []Point{{Kind: TornLog, Crash: 0, Pick: 3, XOR: 0x55aa}}},
	}
	for _, p := range plans {
		got, err := ParseSpec(p.Spec())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", p.Spec(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip changed the plan:\n in  %+v\n out %+v\n spec %q", p, got, p.Spec())
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                                  // no crashes
		"torn-log@0:1:aa",                   // no crashes term
		"crashes=1200",                      // permille out of range
		"crashes=500;bogus-kind@0:1:aa",     // unknown kind
		"crashes=500;torn-log@1:1:aa",       // ordinal beyond depth
		"crashes=500;torn-log@0:1",          // missing xor field
		"crashes=500;torn-log@0:1:zz",       // bad hex
		"crashes=500;torn-log@-1:1:aa",      // negative ordinal
		"seed=x;crashes=500",                // bad seed
		"crashes=500;torn-log0:1:aa",        // missing @
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted malformed spec", s)
		}
	}
}

func TestCrashCycleClamps(t *testing.T) {
	p := &Plan{Crashes: []int64{0, 500, 1000}}
	if got := p.CrashCycle(0, 10000); got != 1 {
		t.Errorf("permille 0 -> cycle %d, want clamp to 1", got)
	}
	if got := p.CrashCycle(1, 10000); got != 5000 {
		t.Errorf("permille 500 of 10000 -> %d, want 5000", got)
	}
	if got := p.CrashCycle(2, 10000); got != 10000 {
		t.Errorf("permille 1000 of 10000 -> %d, want 10000", got)
	}
}

func TestPointsAtGroupsByOrdinal(t *testing.T) {
	p := &Plan{
		Crashes: []int64{300, 600},
		Points: []Point{
			{Kind: TornLog, Crash: 0, Pick: 1, XOR: 1},
			{Kind: DropWPQ, Crash: 1, Pick: 2, XOR: 1},
			{Kind: CorruptCkpt, Crash: 0, Pick: 3, XOR: 1},
		},
	}
	if got := p.PointsAt(0); len(got) != 2 || got[0].Kind != TornLog || got[1].Kind != CorruptCkpt {
		t.Fatalf("PointsAt(0) = %+v", got)
	}
	if got := p.PointsAt(1); len(got) != 1 || got[0].Kind != DropWPQ {
		t.Fatalf("PointsAt(1) = %+v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewPlan(5, GenOptions{Depth: 2, Points: 2})
	q := p.Clone()
	q.Crashes[0] = 999
	q.Points[0].Pick = 12345
	if p.Crashes[0] == 999 || p.Points[0].Pick == 12345 {
		t.Fatal("Clone shares backing arrays with the original")
	}
}
