package faults

import (
	"reflect"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/sim"
)

func storeLoop(t testing.TB) *ir.Program {
	t.Helper()
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(200))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	sh := fb.Mul(ir.R(i), ir.Imm(8))
	a := fb.Add(ir.Imm(0x2000_0000), ir.R(sh))
	fb.Store(ir.R(i), ir.R(a), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	p := ir.NewProgram("resolveloop")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func machineAt(t testing.TB, q *ir.Program, cycle int64) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Recoverable = true
	m, err := sim.New(q, cfg, sim.CWSP())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntil(cycle); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestResolveDeterministic: the same plan against the same machine state
// resolves to identical concrete faults and an identical report.
func TestResolveDeterministic(t *testing.T) {
	q := storeLoop(t)
	plan := NewPlan(9, GenOptions{Depth: 1, Points: 6})
	const cycle = 2000

	cf1, rep1 := Resolve(plan, 0, machineAt(t, q, cycle), cycle)
	cf2, rep2 := Resolve(plan, 0, machineAt(t, q, cycle), cycle)
	if !reflect.DeepEqual(cf1, cf2) || !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("resolution not deterministic:\n%+v\n%+v", rep1, rep2)
	}
	if len(rep1) != 6 {
		t.Fatalf("expected 6 injection records, got %d", len(rep1))
	}
}

// TestResolveTargetsAreEligible: every non-skipped injection names a victim
// that actually satisfies its kind's eligibility rule.
func TestResolveTargetsAreEligible(t *testing.T) {
	q := storeLoop(t)
	const cycle = 2000
	m := machineAt(t, q, cycle)
	plan := NewPlan(23, GenOptions{Depth: 1, Points: 12})
	cf, report := Resolve(plan, 0, m, cycle)

	retired := map[int64]bool{}
	for _, ri := range m.Regions {
		if ri.Retire <= cycle {
			retired[ri.Seq] = true
		}
	}
	landed := 0
	for _, inj := range report {
		if inj.Skipped {
			continue
		}
		landed++
		switch inj.Kind {
		case TornLog:
			rec := &m.Journal[inj.Index]
			if !rec.Logged || retired[rec.Region] {
				t.Errorf("torn-log victim journal[%d] is not a rollback target", inj.Index)
			}
			if _, ok := cf.TornOld[inj.Index]; !ok {
				t.Errorf("torn-log report/faults mismatch at %d", inj.Index)
			}
		case DropWPQ:
			rec := &m.Journal[inj.Index]
			if rec.MCSeq == 0 || rec.Admit > cycle {
				t.Errorf("drop-wpq victim journal[%d] was never admitted", inj.Index)
			}
		case ReorderWPQ:
			a, b := &m.Journal[inj.Index], &m.Journal[inj.Index2]
			if a.MC != b.MC || b.MCSeq != a.MCSeq+1 {
				t.Errorf("reorder-wpq pair (%d,%d) not adjacent same-MC", inj.Index, inj.Index2)
			}
		case CorruptCkpt:
			if !sim.IsCkptArea(inj.Addr) {
				t.Errorf("corrupt-ckpt victim %#x outside the checkpoint area", inj.Addr)
			}
			if _, ok := cf.CkptXOR[inj.Addr]; !ok {
				t.Errorf("corrupt-ckpt report/faults mismatch at %#x", inj.Addr)
			}
		}
	}
	if landed == 0 {
		t.Fatal("no fault point found an eligible victim mid-run")
	}
}

// TestResolveEarlyCrashSkips: at cycle 1 nothing is admitted or logged, so
// journal-targeting points skip rather than panic.
func TestResolveEarlyCrashSkips(t *testing.T) {
	q := storeLoop(t)
	m := machineAt(t, q, 1)
	plan := &Plan{
		Crashes: []int64{1},
		Points: []Point{
			{Kind: DropWPQ, Crash: 0, Pick: 5},
			{Kind: ReorderWPQ, Crash: 0, Pick: 5},
		},
	}
	cf, report := Resolve(plan, 0, m, 1)
	for _, inj := range report {
		if !inj.Skipped {
			t.Errorf("%s landed at cycle 1 (journal should be empty): %+v", inj.Kind, inj)
		}
	}
	if len(cf.Drop) != 0 || len(cf.Reorder) != 0 {
		t.Errorf("skipped points still injected faults: %+v", cf)
	}
}
