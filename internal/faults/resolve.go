package faults

import (
	"sort"

	"cwsp/internal/sim"
)

// Injected records how one fault point resolved against a concrete machine
// at a concrete crash cycle — the campaign report's ground truth for what
// was actually corrupted.
type Injected struct {
	Kind  Kind  `json:"kind"`
	Crash int   `json:"crash"`
	// Index / Index2 are journal record indexes (torn-log, drop-wpq, and
	// the reorder-wpq pair); Addr is the victim word (corrupt-ckpt, and
	// informational for journal faults).
	Index  int    `json:"index,omitempty"`
	Index2 int    `json:"index2,omitempty"`
	Addr   int64  `json:"addr,omitempty"`
	XOR    uint64 `json:"xor,omitempty"`
	// Skipped marks a point with no eligible victim at this crash (e.g. a
	// torn-log fault when nothing was undo-logged yet).
	Skipped bool `json:"skipped,omitempty"`
}

// wpqTailWindow bounds drop/reorder eligibility to the most recently
// admitted entries per controller — battery-drain failures strike the tail
// the battery was still responsible for, not entries drained long ago.
const wpqTailWindow = 16

// Resolve translates the plan's points for one crash ordinal into concrete
// journal corruption against m's state at the crash cycle. The machine must
// already have run to the crash cycle (m.RunUntil(cycle)); Resolve only
// reads its journal and region log, never mutates. Resolution is
// deterministic: eligible victims are enumerated in a canonical order and
// each point picks by ordinal (Pick modulo the count).
func Resolve(p *Plan, crash int, m *sim.Machine, cycle int64) (*sim.CrashFaults, []Injected) {
	cf := &sim.CrashFaults{
		TornOld: map[int]uint64{},
		Drop:    map[int]bool{},
		CkptXOR: map[int64]uint64{},
	}
	var report []Injected

	retired := map[int64]bool{}
	for _, ri := range m.Regions {
		if ri.Retire <= cycle {
			retired[ri.Seq] = true
		}
	}

	// Eligibility sets, each in deterministic (journal / address) order.
	var tornable []int // logged records of unretired regions: rolled back at recovery
	type adm struct {
		idx int
		mc  int
		seq int64
	}
	var admitted []adm // WPQ-admitted by the crash, in admission order per MC
	for i := 0; i < len(m.Journal); i++ {
		rec := &m.Journal[i]
		if rec.Logged && !retired[rec.Region] {
			tornable = append(tornable, i)
		}
		if rec.MCSeq > 0 && rec.Admit <= cycle {
			admitted = append(admitted, adm{i, rec.MC, rec.MCSeq})
		}
	}
	// Tail window per MC: the last wpqTailWindow admissions of each
	// controller, ordered (mc, seq).
	perMC := map[int][]adm{}
	for _, a := range admitted {
		perMC[a.mc] = append(perMC[a.mc], a)
	}
	var tail []adm
	mcs := make([]int, 0, len(perMC))
	for mc := range perMC {
		mcs = append(mcs, mc)
	}
	sort.Ints(mcs)
	for _, mc := range mcs {
		l := perMC[mc]
		sort.Slice(l, func(a, b int) bool { return l[a].seq < l[b].seq })
		if len(l) > wpqTailWindow {
			l = l[len(l)-wpqTailWindow:]
		}
		tail = append(tail, l...)
	}
	// Adjacent same-MC pairs in the tail (reorder victims). Same-address
	// pairs would be the juiciest, but adjacency alone keeps the set dense
	// enough and the ledger check flags either way.
	var pairs [][2]adm
	for k := 1; k < len(tail); k++ {
		if tail[k].mc == tail[k-1].mc && tail[k].seq == tail[k-1].seq+1 {
			pairs = append(pairs, [2]adm{tail[k-1], tail[k]})
		}
	}
	ckptAddrs := m.SealedCkptAddrs()

	for _, pt := range p.PointsAt(crash) {
		inj := Injected{Kind: pt.Kind, Crash: crash, XOR: pt.XOR}
		switch pt.Kind {
		case TornLog:
			if len(tornable) == 0 {
				inj.Skipped = true
				break
			}
			i := tornable[int(pt.Pick%int64(len(tornable)))]
			x := pt.XOR
			if x == 0 {
				x = 0xffffffff00000000 // torn 8-byte write: high half lost
			}
			cf.TornOld[i] = x
			inj.Index, inj.Addr, inj.XOR = i, m.Journal[i].Addr, x
		case DropWPQ:
			if len(tail) == 0 {
				inj.Skipped = true
				break
			}
			a := tail[int(pt.Pick%int64(len(tail)))]
			cf.Drop[a.idx] = true
			inj.Index, inj.Addr = a.idx, m.Journal[a.idx].Addr
		case ReorderWPQ:
			if len(pairs) == 0 {
				inj.Skipped = true
				break
			}
			pr := pairs[int(pt.Pick%int64(len(pairs)))]
			cf.Reorder = append(cf.Reorder, [2]int{pr[0].idx, pr[1].idx})
			inj.Index, inj.Index2, inj.Addr = pr[0].idx, pr[1].idx, m.Journal[pr[0].idx].Addr
		case CorruptCkpt:
			if len(ckptAddrs) == 0 {
				inj.Skipped = true
				break
			}
			addr := ckptAddrs[int(pt.Pick%int64(len(ckptAddrs)))]
			x := pt.XOR
			if x == 0 {
				x = 1
			}
			cf.CkptXOR[addr] ^= x
			if cf.CkptXOR[addr] == 0 { // two points cancelled; renudge
				cf.CkptXOR[addr] = x
			}
			inj.Addr, inj.XOR = addr, x
		default:
			inj.Skipped = true
		}
		report = append(report, inj)
	}
	return cf, report
}
