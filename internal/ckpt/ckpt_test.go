package ckpt

import (
	"fmt"
	"testing"

	"cwsp/internal/ir"
	"cwsp/internal/progen"
	"cwsp/internal/regions"
)

func form(t testing.TB, p *ir.Program) *ir.Program {
	t.Helper()
	q := p.Clone()
	for _, f := range q.Funcs {
		regions.Form(f)
		if _, err := Insert(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	return q
}

func TestInsertRequiresRegions(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	fb.RetVoid()
	f := fb.MustDone()
	if _, err := Insert(f); err == nil {
		t.Fatal("expected error when regions were not formed")
	}
}

func TestPruningConstants(t *testing.T) {
	// A register holding a constant across a boundary needs no checkpoint:
	// its RS step is a SliceConst.
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	c := fb.Const(123)
	p := fb.Alloc(16)
	v := fb.Load(ir.R(p), 0) // load forces a region life beyond entry
	w := fb.Add(ir.R(v), ir.R(c))
	fb.Store(ir.R(w), ir.R(p), 0) // antidep -> a cut before this store
	fb.Ret(ir.R(w))
	prog := ir.NewProgram("const")
	prog.Add(fb.MustDone())
	prog.Entry = "main"

	q := form(t, prog)
	f := q.Funcs["main"]
	// No checkpoint of the constant register should survive.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCkpt && b.Instrs[i].A.Reg == c {
				t.Errorf("constant register r%d still checkpointed", c)
			}
		}
	}
	// Some slice must reconstruct c as a constant.
	found := false
	for _, rs := range f.Slices {
		for _, st := range rs.Steps {
			if st.Op == ir.SliceConst && st.Dst == c && st.Imm == 123 {
				found = true
			}
		}
	}
	if !found && sliceNeedsReg(f, c) {
		t.Error("no slice reconstructs the constant register")
	}
}

func sliceNeedsReg(f *ir.Function, r ir.Reg) bool {
	for _, rs := range f.Slices {
		for _, lr := range rs.LiveIn {
			if lr == r {
				return true
			}
		}
	}
	return false
}

func TestPaperShiftReconstruction(t *testing.T) {
	// Model the paper's Figure 4(b): r is checkpointed once; a later region
	// shifts it (r = shl r, 2); the next boundary should NOT re-checkpoint
	// r — its RS applies the shift to the old slot value.
	fb := ir.NewFunc("main", 1)
	fb.NewBlock("entry")
	p0 := fb.Param(0)
	r := fb.Load(ir.R(p0), 0) // r defined by load -> must be checkpointed
	// Force a boundary: read-modify-write.
	v := fb.Load(ir.R(p0), 8)
	v2 := fb.Add(ir.R(v), ir.Imm(1))
	fb.Store(ir.R(v2), ir.R(p0), 8) // cut here
	r2 := fb.Bin(ir.OpShl, ir.R(r), ir.Imm(2))
	// Another boundary via second RMW.
	w := fb.Load(ir.R(p0), 16)
	w2 := fb.Add(ir.R(w), ir.R(r2))
	fb.Store(ir.R(w2), ir.R(p0), 16) // cut here; r2 live (returned below)
	fb.Ret(ir.R(r2))
	prog := ir.NewProgram("shift")
	prog.Add(fb.MustDone())
	prog.Entry = "main"

	q := form(t, prog)
	f := q.Funcs["main"]
	// Find a slice with a SliceUnary shl step.
	foundExpr := false
	for _, rs := range f.Slices {
		for _, st := range rs.Steps {
			if st.Op == ir.SliceUnary && st.ALUOp == ir.OpShl && st.Imm == 2 {
				foundExpr = true
			}
		}
	}
	if !foundExpr {
		t.Error("expected a shift-reconstruction recovery-slice step (Penny pruning)")
	}
}

func TestPruningReducesCheckpoints(t *testing.T) {
	totalPruned := 0
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q := p.Clone()
		for _, f := range q.Funcs {
			regions.Form(f)
			st, err := Insert(f)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, f.Name, err)
			}
			if st.Final != st.Inserted-st.Pruned {
				t.Fatalf("stats inconsistent: %+v", st)
			}
			totalPruned += st.Pruned
		}
	}
	if totalPruned == 0 {
		t.Error("pruning removed nothing across 60 random programs — suspicious")
	}
}

func TestSemanticsPreserved(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := form(t, p)
		got, err := ir.Interp(q, nil, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.RetVal != want.RetVal || fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
			t.Errorf("seed %d: semantics changed", seed)
		}
	}
}

// TestCheckpointSufficiency is the core recovery invariant at IR level:
// replaying any region's recovery slice against the current checkpoint-slot
// state at the moment the region starts must reproduce every live-in
// register exactly. The trace models slots per call-frame, applying OpCkpt
// writes and the calling convention's argument checkpoints.
func TestCheckpointSufficiency(t *testing.T) {
	cfgs := []progen.Config{progen.DefaultConfig()}
	big := progen.DefaultConfig()
	big.MaxStmts = 30
	big.MaxFuncs = 3
	cfgs = append(cfgs, big)

	for _, cfg := range cfgs {
		for seed := int64(0); seed < 80; seed++ {
			p := progen.Generate(seed, cfg)
			q := form(t, p)
			checkSufficiency(t, q, seed)
		}
	}
}

func checkSufficiency(t *testing.T, q *ir.Program, seed int64) {
	t.Helper()
	type frameSlots map[ir.Reg]int64
	slotStack := []frameSlots{{}}
	failures := 0

	hook := func(f *ir.Function, ref ir.InstrRef, in *ir.Instr, regs []int64) {
		if failures > 3 {
			return
		}
		d := len(slotStack) - 1
		switch in.Op {
		case ir.OpCkpt:
			slotStack[d][in.A.Reg] = regs[in.A.Reg]
		case ir.OpCall:
			// Calling convention: checkpoint arguments into the callee
			// frame's parameter slots.
			nf := frameSlots{}
			for i, a := range in.Args {
				switch a.Kind {
				case ir.OperandImm:
					nf[ir.Reg(i)] = a.Imm
				case ir.OperandReg:
					nf[ir.Reg(i)] = regs[a.Reg]
				}
			}
			slotStack = append(slotStack, nf)
		case ir.OpRet:
			if len(slotStack) > 1 {
				slotStack = slotStack[:len(slotStack)-1]
			}
		case ir.OpBoundary:
			rs, ok := f.Slices[in.RegionID]
			if !ok {
				failures++
				t.Errorf("seed %d: %s region %d has no recovery slice", seed, f.Name, in.RegionID)
				return
			}
			rebuilt := replaySlice(rs, slotStack[d])
			for _, r := range rs.LiveIn {
				got, ok := rebuilt[r]
				if !ok || got != regs[r] {
					failures++
					t.Errorf("seed %d: %s region %d: RS rebuilds r%d=%d (ok=%v), actual %d",
						seed, f.Name, in.RegionID, r, got, ok, regs[r])
				}
			}
		}
	}
	if _, err := ir.InterpTraced(q, nil, 5_000_000, ir.NewFlatMem(), hook); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}

// replaySlice executes recovery-slice steps against a slot snapshot.
func replaySlice(rs ir.RecoverySlice, slots map[ir.Reg]int64) map[ir.Reg]int64 {
	out := map[ir.Reg]int64{}
	for _, st := range rs.Steps {
		switch st.Op {
		case ir.SliceConst:
			out[st.Dst] = st.Imm
		case ir.SliceLoadCkpt:
			out[st.Dst] = slots[st.Src]
		case ir.SliceUnary:
			in := ir.Instr{Op: st.ALUOp, Dst: 0, A: ir.R(0), B: ir.Imm(st.Imm)}
			regs := []int64{out[st.Src]}
			ir.Exec(&in, regs, nil)
			out[st.Dst] = regs[0]
		case ir.SliceBinary:
			in := ir.Instr{Op: st.ALUOp, Dst: 0, A: ir.R(0), B: ir.R(1)}
			regs := []int64{out[st.Src], out[st.Src2]}
			ir.Exec(&in, regs, nil)
			out[st.Dst] = regs[0]
		}
	}
	return out
}

func TestUnprunedAlsoSufficient(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q := p.Clone()
		for _, f := range q.Funcs {
			regions.Form(f)
			if _, err := InsertUnpruned(f); err != nil {
				t.Fatalf("seed %d %s: %v", seed, f.Name, err)
			}
		}
		checkSufficiency(t, q, seed)
	}
}

func TestUnprunedHasMoreCheckpoints(t *testing.T) {
	p := progen.Generate(11, progen.DefaultConfig())
	pruned, unpruned := 0, 0
	q1 := p.Clone()
	for _, f := range q1.Funcs {
		regions.Form(f)
		st, err := Insert(f)
		if err != nil {
			t.Fatal(err)
		}
		pruned += st.Final
	}
	q2 := p.Clone()
	for _, f := range q2.Funcs {
		regions.Form(f)
		st, err := InsertUnpruned(f)
		if err != nil {
			t.Fatal(err)
		}
		unpruned += st.Final
	}
	if pruned > unpruned {
		t.Errorf("pruned build has more checkpoints (%d) than unpruned (%d)", pruned, unpruned)
	}
}

// TestHoistWithoutPruneIsUnpruned: Hoist rides on the prune/repair
// machinery, so with Prune off the option is inert — every inserted
// checkpoint survives and the result matches InsertUnpruned exactly.
func TestHoistWithoutPruneIsUnpruned(t *testing.T) {
	p := progen.Generate(17, progen.DefaultConfig())
	q1 := p.Clone()
	q2 := p.Clone()
	for name, f := range q1.Funcs {
		regions.Form(f)
		st, err := InsertOpts(f, Options{Prune: false, Hoist: true, ChainDepth: maxChain})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Pruned != 0 || st.Final != st.Inserted {
			t.Fatalf("%s: hoist without prune pruned %d (final %d of %d inserted)",
				name, st.Pruned, st.Final, st.Inserted)
		}
		g := q2.Funcs[name]
		regions.Form(g)
		if _, err := InsertUnpruned(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ckptCount(f) != ckptCount(g) {
			t.Fatalf("%s: hoist-without-prune %d ckpts != unpruned %d", name, ckptCount(f), ckptCount(g))
		}
	}
}

func ckptCount(f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].Op == ir.OpCkpt {
				n++
			}
		}
	}
	return n
}

// TestChainDepthEdges: the slice chain bound at 0 (no ALU reconstruction),
// 1, and the maximum must all produce working slices, and deeper chains
// must never checkpoint more than shallower ones.
func TestChainDepthEdges(t *testing.T) {
	for _, seed := range []int64{3, 9, 21} {
		p := progen.Generate(seed, progen.DefaultConfig())
		prevFinal := -1
		for _, depth := range []int{0, 1, maxChain, maxChain + 5} {
			q := p.Clone()
			total := 0
			for name, f := range q.Funcs {
				regions.Form(f)
				st, err := InsertOpts(f, Options{Prune: true, Hoist: true, ChainDepth: depth})
				if err != nil {
					t.Fatalf("seed %d depth %d %s: %v", seed, depth, name, err)
				}
				if st.Slices != f.NumRegions {
					t.Fatalf("seed %d depth %d %s: %d slices for %d regions", seed, depth, name, st.Slices, f.NumRegions)
				}
				total += st.Final
			}
			// A deeper reconstruction chain can only remove more
			// checkpoints (monotone knob, clamped at maxChain).
			if prevFinal >= 0 && total > prevFinal {
				t.Fatalf("seed %d: depth %d keeps %d ckpts, shallower kept %d", seed, depth, total, prevFinal)
			}
			prevFinal = total
		}
	}
}

// TestNegativeChainDepthClamped: ChainDepth < 0 is clamped to 0, not an
// error.
func TestNegativeChainDepthClamped(t *testing.T) {
	p := progen.Generate(5, progen.DefaultConfig())
	q := p.Clone()
	for name, f := range q.Funcs {
		regions.Form(f)
		if _, err := InsertOpts(f, Options{Prune: true, Hoist: true, ChainDepth: -3}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
