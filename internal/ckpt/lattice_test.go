package ckpt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cwsp/internal/ir"
)

// randAbs draws a random lattice element.
func randAbs(r *rand.Rand) absVal {
	var v absVal
	switch r.Intn(5) {
	case 0:
		v.top = true
	case 1: // bottom: zero value
	case 2:
		v.hasConst = true
		v.c = int64(r.Intn(5))
	case 3, 4:
		v.hasSlot = true
		v.srcReg = ir.Reg(r.Intn(4))
		v.chainLen = int8(r.Intn(3))
		for i := int8(0); i < v.chainLen; i++ {
			v.chain[i] = chainStep{op: ir.OpAdd, imm: int64(r.Intn(3))}
		}
		if r.Intn(2) == 0 {
			v.hasConst = true
			v.c = int64(r.Intn(5))
		}
	}
	return v
}

func quickCfg() *quick.Config {
	r := rand.New(rand.NewSource(99))
	return &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randAbs(r))
			}
		},
	}
}

// leq is capability inclusion: a ≤ b iff every capability of a is also a
// capability of b with the same recipe. Top is the maximum.
func leq(a, b absVal) bool {
	if b.top {
		return true
	}
	if a.top {
		return false
	}
	if a.hasConst && (!b.hasConst || a.c != b.c) {
		return false
	}
	if a.hasSlot && (!b.hasSlot || !a.sameSlotRecipe(b)) {
		return false
	}
	// a may not have capabilities b lacks... inclusion means a's are a
	// subset of b's, checked above; b may have more.
	return true
}

func TestJoinCommutative(t *testing.T) {
	f := func(a, b absVal) bool { return join(a, b) == join(b, a) }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinAssociative(t *testing.T) {
	f := func(a, b, c absVal) bool {
		return join(join(a, b), c) == join(a, join(b, c))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinIdempotent(t *testing.T) {
	f := func(a absVal) bool { return join(a, a) == a }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinTopIdentity(t *testing.T) {
	top := absVal{top: true}
	f := func(a absVal) bool { return join(top, a) == a && join(a, top) == a }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestJoinIsGreatestLowerBound(t *testing.T) {
	// join(a,b) (capability intersection) must be ≤ both operands, and any
	// c ≤ both must be ≤ the join.
	f := func(a, b, c absVal) bool {
		j := join(a, b)
		if !leq(j, a) || !leq(j, b) {
			return false
		}
		if leq(c, a) && leq(c, b) && !leq(c, j) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestTransferMonotone: for every non-memory instruction shape, a ≤ b on
// inputs implies transfer(a) ≤ transfer(b) — the property the optimistic
// fixpoint's convergence to a sound answer rests on.
func TestTransferMonotone(t *testing.T) {
	shapes := []ir.Instr{
		{Op: ir.OpConst, Dst: 0, A: ir.Imm(7)},
		{Op: ir.OpMov, Dst: 0, A: ir.R(1)},
		{Op: ir.OpAdd, Dst: 0, A: ir.R(1), B: ir.Imm(3)},
		{Op: ir.OpMul, Dst: 0, A: ir.Imm(3), B: ir.R(1)},
		{Op: ir.OpShl, Dst: 0, A: ir.R(1), B: ir.R(2)},
		{Op: ir.OpCmpLT, Dst: 0, A: ir.R(1), B: ir.Imm(5)},
		{Op: ir.OpCkpt, A: ir.R(1)},
		{Op: ir.OpCkpt, A: ir.R(0)},
		{Op: ir.OpLoad, Dst: 0, A: ir.R(1)},
	}
	r := rand.New(rand.NewSource(7))
	const regs = 3
	for iter := 0; iter < 4000; iter++ {
		in := shapes[r.Intn(len(shapes))]
		sa := make(absState, regs)
		sb := make(absState, regs)
		for i := 0; i < regs; i++ {
			// Draw sb, then weaken it into sa so sa[i] ≤ sb[i].
			sb[i] = randAbs(r)
			sa[i] = weaken(sb[i], r)
		}
		ca := sa.clone()
		cb := sb.clone()
		transfer(ca, &in, maxChain)
		transfer(cb, &in, maxChain)
		for i := 0; i < regs; i++ {
			if !leq(ca[i], cb[i]) {
				t.Fatalf("transfer not monotone on %v reg %d:\n in a=%+v b=%+v\nout a=%+v b=%+v",
					in.Op, i, sa[i], sb[i], ca[i], cb[i])
			}
		}
	}
}

// weaken returns a value ≤ v by dropping capabilities at random.
func weaken(v absVal, r *rand.Rand) absVal {
	if v.top {
		// Anything is ≤ Top.
		if r.Intn(2) == 0 {
			return v
		}
		return randAbs(r)
	}
	if v.hasConst && r.Intn(2) == 0 {
		v.hasConst = false
		v.c = 0
	}
	if v.hasSlot && r.Intn(2) == 0 {
		v.hasSlot = false
		v.srcReg = 0
		v.chainLen = 0
		v.chain = [maxChain]chainStep{}
	}
	return v
}

func TestStateJoinWith(t *testing.T) {
	a := make(absState, 2)
	b := make(absState, 2)
	a[0] = constVal(3)
	a[1] = slotVal(1)
	b[0] = constVal(3)
	b[1] = constVal(9)
	if !a.joinWith(b) {
		t.Error("join should report a change (reg 1 loses its slot)")
	}
	if a[0] != constVal(3) {
		t.Error("matching constants must survive the join")
	}
	if a[1].recoverable() {
		t.Error("conflicting capabilities must meet at bottom")
	}
	if a.joinWith(b) {
		t.Error("second join must be a no-op")
	}
}
