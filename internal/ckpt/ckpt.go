// Package ckpt implements cWSP's live-out register checkpointing
// (Section IV-B), the Penny-style optimal checkpoint pruning
// (Section IV-C), and recovery-slice (RS) generation.
//
// Contract with the machine model:
//
//   - Every architectural register r of every call frame has an NVM
//     checkpoint slot (the simulator addresses slots by (core, frame depth,
//     register)).
//   - Executing ir.OpCkpt r stores the current value of r to slot(r). Ckpt
//     stores always travel the persist path undo-logged, so on recovery the
//     slots roll back to their state as of the restart region's entry.
//   - The calling convention checkpoints arguments into the callee frame's
//     parameter slots as part of executing the call, which is why function
//     entry boundaries need no compiler-inserted checkpoints.
//
// Insertion: immediately before every non-entry boundary, checkpoint every
// register live at that boundary. Pruning then deletes every checkpoint
// whose value is already reconstructible at that point — from an immediate,
// from a still-valid older slot value, or from a one-step ALU expression
// over a slot value (the paper's shift example) — iterating to a fixpoint
// because one removal can invalidate downstream reconstructions.
package ckpt

import (
	"fmt"
	"sort"

	"cwsp/internal/analysis"
	"cwsp/internal/ir"
	"cwsp/internal/regions"
)

// Stats reports checkpoint insertion/pruning totals for one function.
type Stats struct {
	Inserted int // checkpoints before pruning
	Pruned   int // checkpoints removed
	Final    int // checkpoints remaining
	Slices   int // recovery slices generated (== regions)
}

// Options tune the checkpoint optimizer (ablation knobs; the defaults are
// the full cWSP design).
type Options struct {
	// Prune enables Penny-style checkpoint pruning.
	Prune bool
	// Hoist moves loop-invariant checkpoints to the loop's entry edges.
	Hoist bool
	// ChainDepth bounds recovery-slice ALU chains (0 = only exact slot or
	// constant values are reconstructible; max maxChain).
	ChainDepth int
}

// DefaultOptions is the full design.
func DefaultOptions() Options { return Options{Prune: true, Hoist: true, ChainDepth: maxChain} }

// Insert places checkpoints for every region of f (which must already be
// region-formed), prunes them, and generates recovery slices into f.Slices.
func Insert(f *ir.Function) (Stats, error) {
	return InsertOpts(f, DefaultOptions())
}

// InsertOpts is Insert with explicit optimizer options.
func InsertOpts(f *ir.Function, opt Options) (Stats, error) {
	var st Stats
	if f.NumRegions == 0 {
		return st, fmt.Errorf("ckpt: function %s has no regions (run regions.Form first)", f.Name)
	}
	if opt.ChainDepth < 0 {
		opt.ChainDepth = 0
	}
	if opt.ChainDepth > maxChain {
		opt.ChainDepth = maxChain
	}
	limit := opt.ChainDepth

	st.Inserted = insertAll(f)
	if !opt.Prune {
		st.Final = st.Inserted
		if err := buildSlices(f, limit); err != nil {
			return st, err
		}
		st.Slices = len(f.Slices)
		return st, nil
	}

	// Prune to fixpoint.
	for {
		removed := pruneOnce(f, limit)
		if removed == 0 {
			break
		}
	}

	// Batch pruning can strand a register: a removal that was justified by
	// a constant or expression can leave a later checkpoint's support stale
	// once both go. Repair re-inserts checkpoints wherever the final
	// abstraction leaves a live register unrecoverable; each insertion can
	// invalidate at most finitely many expression reconstructions, so the
	// loop terminates.
	for {
		added := repair(f, limit)
		if added == 0 {
			break
		}
	}

	// Hoist loop-invariant checkpoints out of loop headers: a register not
	// redefined inside the loop needs its slot written once, on loop entry,
	// not once per iteration. Hoisted checkpoints are not re-pruned (their
	// job is to make the recovery recipe uniform across the header's entry
	// and back edges); a final repair covers anything hoisting exposed.
	if opt.Hoist && hoistInvariants(f) > 0 {
		for {
			added := repair(f, limit)
			if added == 0 {
				break
			}
		}
	}
	st.Final = countCkpts(f)
	st.Pruned = st.Inserted - st.Final

	if err := buildSlices(f, limit); err != nil {
		return st, err
	}
	st.Slices = len(f.Slices)
	return st, nil
}

// InsertUnpruned places checkpoints and builds slices without running the
// pruning pass — the "-Pruning" ablation of the paper's Figure 15.
func InsertUnpruned(f *ir.Function) (Stats, error) {
	return InsertOpts(f, Options{Prune: false, ChainDepth: maxChain})
}

// insertAll inserts ckpt instructions for all live registers before every
// non-entry boundary and returns the count.
func insertAll(f *ir.Function) int {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	inserted := 0
	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for ii := range b.Instrs {
			in := b.Instrs[ii]
			if in.Op == ir.OpBoundary && !(b.Index == 0 && ii == 0) {
				live := lv.LiveBefore(b.Index, ii)
				regs := live.Members()
				sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
				for _, r := range regs {
					out = append(out, ir.Instr{Op: ir.OpCkpt, A: ir.R(r)})
					inserted++
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return inserted
}

// --- Recovery-value abstraction ------------------------------------------
//
// Product lattice: a register value may simultaneously be (a) a known
// immediate and (b) reconstructible by replaying a short ALU chain over an
// NVM checkpoint slot. Join intersects the capabilities, and every transfer
// is monotone w.r.t. capability inclusion, so the optimistic fixpoint
// converges to the true greatest solution — a flat lattice cannot express
// "constant on the entry edge, slot-valid on the back edge", which is
// exactly the state a pruned loop-invariant checkpoint leaves behind.

// maxChain bounds how many ALU steps a recovery slice may replay to
// reconstruct one register (Penny's multi-instruction reconstruction).
const maxChain = 8

type chainStep struct {
	op  ir.Op
	imm int64
}

type absVal struct {
	top bool // unvisited (optimistic initial value; join identity)

	hasConst bool
	c        int64

	hasSlot  bool
	srcReg   ir.Reg // slot the chain is rooted at
	chainLen int8
	chain    [maxChain]chainStep
}

func bottomVal() absVal { return absVal{} }

func constVal(c int64) absVal { return absVal{hasConst: true, c: c} }

func slotVal(r ir.Reg) absVal { return absVal{hasSlot: true, srcReg: r} }

func (a absVal) recoverable() bool { return !a.top && (a.hasConst || a.hasSlot) }

func (a absVal) sameSlotRecipe(b absVal) bool {
	if a.srcReg != b.srcReg || a.chainLen != b.chainLen {
		return false
	}
	for i := int8(0); i < a.chainLen; i++ {
		if a.chain[i] != b.chain[i] {
			return false
		}
	}
	return true
}

func join(a, b absVal) absVal {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	var out absVal
	if a.hasConst && b.hasConst && a.c == b.c {
		out.hasConst = true
		out.c = a.c
	}
	if a.hasSlot && b.hasSlot && a.sameSlotRecipe(b) {
		out.hasSlot = true
		out.srcReg = a.srcReg
		out.chainLen = a.chainLen
		out.chain = a.chain
	}
	return out
}

type absState []absVal // per register

func (s absState) clone() absState {
	c := make(absState, len(s))
	copy(c, s)
	return c
}

func (s absState) joinWith(o absState) bool {
	changed := false
	for i := range s {
		n := join(s[i], o[i])
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// transfer applies one instruction to the state. The register index in s is
// the register number; the instruction's own position is irrelevant.
func transfer(s absState, in *ir.Instr, limit int) {
	bottomDef := func() {
		if d := in.Def(); d != ir.NoReg {
			s[d] = bottomVal()
		}
	}
	get := func(o ir.Operand) absVal {
		switch o.Kind {
		case ir.OperandImm:
			return constVal(o.Imm)
		case ir.OperandReg:
			return s[o.Reg]
		}
		return bottomVal()
	}
	extend := func(a absVal, op ir.Op, imm int64) absVal {
		// Append one ALU step to a slot chain (drops the capability when
		// the chain is full).
		if !a.hasSlot || int(a.chainLen) >= limit {
			a.hasSlot = false
			a.chainLen = 0
			a.chain = [maxChain]chainStep{}
			a.srcReg = 0
			return a
		}
		a.chain[a.chainLen] = chainStep{op: op, imm: imm}
		a.chainLen++
		return a
	}
	switch in.Op {
	case ir.OpConst:
		s[in.Dst] = constVal(in.A.Imm)
	case ir.OpMov:
		s[in.Dst] = get(in.A)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		a, b := get(in.A), get(in.B)
		// Compute the result's capabilities independently (the product
		// lattice keeps the transfer monotone only if no capability is
		// dropped when inputs gain capabilities). Top inputs (only possible
		// before a block's first visit) map to Top.
		var out absVal
		if a.top || b.top {
			if d := in.Def(); d != ir.NoReg {
				s[d] = absVal{top: true}
			}
			return
		}
		if a.hasConst && b.hasConst {
			out.hasConst = true
			out.c = foldConst(in.Op, a.c, b.c)
		}
		var ext absVal
		switch {
		case a.hasSlot && b.hasConst:
			ext = extend(a, in.Op, b.c)
		case b.hasSlot && a.hasConst && commutative(in.Op):
			ext = extend(b, in.Op, a.c)
		}
		if ext.hasSlot {
			out.hasSlot = true
			out.srcReg = ext.srcReg
			out.chainLen = ext.chainLen
			out.chain = ext.chain
		}
		if d := in.Def(); d != ir.NoReg {
			s[d] = out
		}
	case ir.OpCkpt:
		r := in.A.Reg
		if s[r].top {
			// Unvisited state: leave Top (monotone completion).
			return
		}
		// If the slot already holds r's current value, rewriting it is a
		// no-op and every chain snapshotting it stays valid. Otherwise the
		// write replaces the snapshot other chains rely on.
		noop := s[r].hasSlot && s[r].srcReg == r && s[r].chainLen == 0
		if !noop {
			for i := range s {
				if ir.Reg(i) != r && s[i].hasSlot && s[i].srcReg == r {
					s[i].hasSlot = false
					s[i].chainLen = 0
					s[i].chain = [maxChain]chainStep{}
					s[i].srcReg = 0
				}
			}
		}
		// The register gains the fresh-slot capability and keeps any
		// constant capability it already had.
		nv := s[r]
		nv.top = false
		nv.hasSlot = true
		nv.srcReg = r
		nv.chainLen = 0
		nv.chain = [maxChain]chainStep{}
		s[r] = nv
	case ir.OpBoundary, ir.OpFence, ir.OpEmit, ir.OpStore, ir.OpJmp, ir.OpBr, ir.OpRet:
		// No register effect.
	default:
		// Loads, calls, allocs, atomics, selects: defined registers are not
		// statically reconstructible.
		bottomDef()
	}
}

func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		return true
	}
	return false
}

func foldConst(op ir.Op, a, b int64) int64 {
	regs := []int64{a, b}
	in := ir.Instr{Op: op, Dst: 0, A: ir.R(0), B: ir.R(1)}
	// Reuse the executor for exact semantics (shift masking, div-by-zero).
	out := make([]int64, 2)
	copy(out, regs)
	ir.Exec(&in, out, nopEnv{})
	return out[0]
}

type nopEnv struct{}

func (nopEnv) Load(int64) int64   { return 0 }
func (nopEnv) Store(int64, int64) {}
func (nopEnv) Alloc(int64) int64  { return 0 }
func (nopEnv) Emit(int64)         {}

// dataflow computes the abstraction at every program point; it returns the
// in-state of every block. Each pass recomputes every block's in-state as a
// fresh join over its predecessors' current out-states (a sticky
// accumulate-join would let a transient first-pass value poison loop-header
// joins forever). The transfer functions are not perfectly monotone over the
// flat lattice (a checkpoint turns Bottom into a fresh slot abstraction), so
// iteration is capped; on non-convergence the result degrades to the sound
// pessimistic state (checkpoint everything).
func dataflow(f *ir.Function, cfg *analysis.CFG, limit int) []absState {
	n := len(f.Blocks)
	entryIn := make(absState, f.NumRegs)
	for r := 0; r < f.NumRegs; r++ {
		if r < f.NParams {
			// Parameters are checkpointed by the calling convention.
			entryIn[r] = slotVal(ir.Reg(r))
		} else {
			entryIn[r] = bottomVal()
		}
	}
	computeIn := func(bi int, out []absState) absState {
		if bi == 0 {
			return entryIn.clone()
		}
		in := make(absState, f.NumRegs)
		for r := range in {
			in[r].top = true
		}
		for _, p := range cfg.Preds[bi] {
			if out[p] != nil {
				in.joinWith(out[p])
			}
		}
		return in
	}

	out := make([]absState, n)
	for pass := 0; pass < 4096; pass++ {
		changed := false
		for _, bi := range cfg.RPO {
			cur := computeIn(bi, out)
			for ii := range f.Blocks[bi].Instrs {
				transfer(cur, &f.Blocks[bi].Instrs[ii], limit)
			}
			if out[bi] == nil || !stateEq(cur, out[bi]) {
				out[bi] = cur
				changed = true
			}
		}
		if !changed {
			ins := make([]absState, n)
			for bi := range ins {
				ins[bi] = computeIn(bi, out)
			}
			return ins
		}
	}
	// Non-convergence: fall back to the pessimistic sound answer.
	ins := make([]absState, n)
	for bi := range ins {
		st := make(absState, f.NumRegs)
		for r := range st {
			st[r] = bottomVal()
		}
		ins[bi] = st
	}
	ins[0] = entryIn.clone()
	return ins
}

func stateEq(a, b absState) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pruneOnce removes every checkpoint whose register is already
// reconstructible just before the checkpoint executes. Returns removals.
func pruneOnce(f *ir.Function, limit int) int {
	cfg := analysis.BuildCFG(f)
	in := dataflow(f, cfg, limit)
	removed := 0
	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			continue
		}
		cur := in[bi].clone()
		out := make([]ir.Instr, 0, len(b.Instrs))
		for ii := range b.Instrs {
			inst := b.Instrs[ii]
			if inst.Op == ir.OpCkpt {
				if cur[inst.A.Reg].recoverable() {
					removed++
					continue // drop the checkpoint; do not apply transfer
				}
			}
			transfer(cur, &b.Instrs[ii], limit)
			out = append(out, inst)
		}
		b.Instrs = out
	}
	return removed
}

// hoistInvariants moves checkpoints sitting at a natural-loop header whose
// register is never defined inside the loop to the loop's entering edges:
// the slot only needs to be (re)written once per loop entry. Returns the
// number of checkpoints moved.
func hoistInvariants(f *ir.Function) int {
	cfg := analysis.BuildCFG(f)
	dom := analysis.Dominators(cfg)
	moved := 0
	for _, loop := range analysis.NaturalLoops(cfg, dom) {
		h := loop.Header
		if h == 0 {
			continue // never hoist across the function entry
		}
		// Registers defined anywhere inside the loop.
		defined := map[ir.Reg]bool{}
		for b := range loop.Body {
			for ii := range f.Blocks[b].Instrs {
				if d := f.Blocks[b].Instrs[ii].Def(); d != ir.NoReg {
					defined[d] = true
				}
			}
		}
		// Leading checkpoints of the header block (those before its first
		// boundary) whose register is loop-invariant.
		hb := f.Blocks[h]
		var keep []ir.Instr
		var hoisted []ir.Instr
		took := 0
		for ii := 0; ii < len(hb.Instrs); ii++ {
			in := hb.Instrs[ii]
			if in.Op == ir.OpCkpt {
				if !defined[in.A.Reg] {
					hoisted = append(hoisted, in)
					took++
				} else {
					keep = append(keep, in)
				}
				continue
			}
			keep = append(keep, hb.Instrs[ii:]...)
			break
		}
		if took == 0 {
			continue
		}
		// Entering predecessors (outside the loop body).
		var enter []int
		ok := true
		for _, p := range cfg.Preds[h] {
			if loop.Body[p] {
				continue
			}
			if !cfg.Reachable(p) || f.Blocks[p].Term() == nil {
				ok = false
				break
			}
			enter = append(enter, p)
		}
		if !ok || len(enter) == 0 {
			continue
		}
		hb.Instrs = keep
		for _, p := range enter {
			pb := f.Blocks[p]
			term := pb.Instrs[len(pb.Instrs)-1]
			body := pb.Instrs[:len(pb.Instrs)-1]
			body = append(body, hoisted...)
			pb.Instrs = append(body, term)
		}
		moved += took
	}
	return moved
}

// countCkpts counts checkpoint instructions in f.
func countCkpts(f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpCkpt {
				n++
			}
		}
	}
	return n
}

// repair re-inserts a checkpoint before every boundary at which a live
// register's abstraction is not reconstructible. Returns insertions made.
func repair(f *ir.Function, limit int) int {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	in := dataflow(f, cfg, limit)

	// need[block][index] = registers requiring a checkpoint before the
	// boundary at that (final, pre-insertion) position.
	need := map[ir.InstrRef][]ir.Reg{}
	for bi, b := range f.Blocks {
		if !cfg.Reachable(bi) {
			continue
		}
		cur := in[bi].clone()
		for ii := range b.Instrs {
			inst := &b.Instrs[ii]
			if inst.Op == ir.OpBoundary && !(bi == 0 && ii == 0) {
				for _, r := range lv.LiveBefore(bi, ii).Members() {
					if !cur[r].recoverable() {
						need[ir.InstrRef{Block: bi, Index: ii}] = append(need[ir.InstrRef{Block: bi, Index: ii}], r)
					}
				}
			}
			transfer(cur, inst, limit)
		}
	}
	if len(need) == 0 {
		return 0
	}
	added := 0
	for bi, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for ii := range b.Instrs {
			if regsNeeded, ok := need[ir.InstrRef{Block: bi, Index: ii}]; ok {
				for _, r := range regsNeeded {
					out = append(out, ir.Instr{Op: ir.OpCkpt, A: ir.R(r)})
					added++
				}
			}
			out = append(out, b.Instrs[ii])
		}
		b.Instrs = out
	}
	return added
}

// buildSlices generates the recovery slice for every region boundary.
func buildSlices(f *ir.Function, limit int) error {
	cfg := analysis.BuildCFG(f)
	lv := analysis.ComputeLiveness(f, cfg)
	in := dataflow(f, cfg, limit)
	f.Slices = make(map[int]ir.RecoverySlice, f.NumRegions)

	for _, ref := range regions.Boundaries(f) {
		if !cfg.Reachable(ref.Block) {
			continue
		}
		b := f.Blocks[ref.Block]
		id := b.Instrs[ref.Index].RegionID

		// Abstraction at the boundary.
		cur := in[ref.Block].clone()
		for ii := 0; ii < ref.Index; ii++ {
			transfer(cur, &b.Instrs[ii], limit)
		}
		live := lv.LiveBefore(ref.Block, ref.Index)
		regsLive := live.Members()
		sort.Slice(regsLive, func(i, j int) bool { return regsLive[i] < regsLive[j] })

		rs := ir.RecoverySlice{RegionID: id, Entry: ref, LiveIn: regsLive}
		for _, r := range regsLive {
			a := cur[r]
			switch {
			case a.hasConst:
				rs.Steps = append(rs.Steps, ir.SliceStep{Op: ir.SliceConst, Dst: r, Imm: a.c})
			case a.hasSlot:
				rs.Steps = append(rs.Steps, ir.SliceStep{Op: ir.SliceLoadCkpt, Dst: r, Src: a.srcReg})
				for k := 0; k < int(a.chainLen); k++ {
					rs.Steps = append(rs.Steps,
						ir.SliceStep{Op: ir.SliceUnary, Dst: r, Src: r, Imm: a.chain[k].imm, ALUOp: a.chain[k].op})
				}
			default:
				return fmt.Errorf("ckpt: %s region %d: live register r%d not recoverable",
					f.Name, id, r)
			}
		}
		f.Slices[id] = rs
	}
	return nil
}
