package minic

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/opt"
	"cwsp/internal/recovery"
	"cwsp/internal/sim"
)

// Realistic end-to-end programs: compile from source, optimize, run through
// the cWSP pipeline, and crash-test. These double as regression tests for
// the whole toolchain on code nobody hand-tuned for the IR.

const queueSrc = `
// A ring-buffer queue with producer/consumer phases.
func push(q, v) {
	var tail = q[1];
	q[4 + (tail & 63)] = v;
	q[1] = tail + 1;
	return tail;
}
func pop(q) {
	var head = q[0];
	if (head == q[1]) { return 0 - 1; }
	var v = q[4 + (head & 63)];
	q[0] = head + 1;
	return v;
}
func main() {
	var q = alloc(600);
	var sum = 0;
	for (var round = 0; round < 40; round = round + 1) {
		for (var i = 0; i < 32; i = i + 1) { push(q, round * 100 + i); }
		for (var i = 0; i < 32; i = i + 1) {
			var v = pop(q);
			if (v >= 0) { sum = sum + v; }
		}
	}
	var leftover = pop(q);
	emit(sum);
	emit(leftover);
	return sum;
}`

const matmulSrc = `
// 8x8 integer matrix multiply with verification checksum.
func idx(i, j) { return i * 8 + j; }
func main() {
	var a = alloc(512);
	var b = alloc(512);
	var c = alloc(512);
	for (var i = 0; i < 8; i = i + 1) {
		for (var j = 0; j < 8; j = j + 1) {
			a[idx(i, j)] = i + 2 * j + 1;
			b[idx(i, j)] = (i + 1) * (j + 1);
		}
	}
	for (var i = 0; i < 8; i = i + 1) {
		for (var j = 0; j < 8; j = j + 1) {
			var s = 0;
			for (var k = 0; k < 8; k = k + 1) {
				s = s + a[idx(i, k)] * b[idx(k, j)];
			}
			c[idx(i, j)] = s;
		}
	}
	var sum = 0;
	for (var i = 0; i < 64; i = i + 1) { sum = sum + c[i] * (i + 1); }
	emit(sum);
	return sum;
}`

const sieveSrc = `
// Sieve of Eratosthenes: count primes below 2000.
func main() {
	var n = 2000;
	var composite = alloc(16000);
	for (var p = 2; p * p < n; p = p + 1) {
		if (composite[p] == 0) {
			for (var m = p * p; m < n; m = m + p) { composite[m] = 1; }
		}
	}
	var count = 0;
	for (var i = 2; i < n; i = i + 1) {
		if (composite[i] == 0) { count = count + 1; }
	}
	emit(count);
	return count;
}`

func runPipeline(t *testing.T, name, src string, want int64, crashPoints int) {
	t.Helper()
	prog, err := CompileNamed(src, name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if _, err := opt.Optimize(prog); err != nil {
		t.Fatalf("%s: opt: %v", name, err)
	}
	q, _, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		t.Fatalf("%s: cwsp compile: %v", name, err)
	}
	m, err := sim.New(q, sim.DefaultConfig(), sim.CWSP())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret[0] != want {
		t.Fatalf("%s: result = %d, want %d", name, res.Ret[0], want)
	}
	if crashPoints > 0 {
		fail, _, err := recovery.Sweep(q, sim.DefaultConfig(), sim.CWSP(),
			[]sim.ThreadSpec{{Fn: "main"}}, crashPoints)
		if err != nil {
			t.Fatal(err)
		}
		if fail != nil {
			t.Fatalf("%s: crash at %d not recovered (diffs %v)", name, fail.CrashCycle, fail.DiffAddrs)
		}
	}
}

func TestQueueProgram(t *testing.T) {
	// sum of round*100+i over 40 rounds, 32 items: 40*32 items all popped.
	var want int64
	for round := int64(0); round < 40; round++ {
		for i := int64(0); i < 32; i++ {
			want += round*100 + i
		}
	}
	runPipeline(t, "queue", queueSrc, want, 8)
}

func TestMatmulProgram(t *testing.T) {
	// Reference computation in Go.
	var a, b, c [8][8]int64
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			a[i][j] = i + 2*j + 1
			b[i][j] = (i + 1) * (j + 1)
		}
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var s int64
			for k := 0; k < 8; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	var want int64
	for i := 0; i < 64; i++ {
		want += c[i/8][i%8] * int64(i+1)
	}
	runPipeline(t, "matmul", matmulSrc, want, 6)
}

func TestSieveProgram(t *testing.T) {
	// 303 primes below 2000.
	runPipeline(t, "sieve", sieveSrc, 303, 6)
}
