// Package minic is a small C-like front end for the cWSP toolchain: it
// compiles source text to the virtual-register IR, which the cWSP compiler
// then partitions into idempotent regions. The paper's claim is that any
// program translatable to compiler IR gains whole-system persistence for
// free — minic demonstrates the same property end to end: programs are
// written with no persistence annotations at all.
//
// The language: 64-bit integer words only; functions, var declarations,
// assignment, if/else, while, for, break/continue, return; word-indexed
// memory (`p[i]` reads mem[p+8i]); builtins alloc, emit, fence, atomic_add,
// atomic_cas, atomic_xchg; short-circuit && and ||.
package minic

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct // operators and delimiters
	tKeyword
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
	col  int
}

var keywords = map[string]bool{
	"func": true, "var": true, "if": true, "else": true, "while": true,
	"for": true, "return": true, "break": true, "continue": true,
}

// twoCharOps are the multi-character operators, longest match first.
var twoCharOps = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (lx *lexer) errf(line, col int, format string, args ...interface{}) error {
	return fmt.Errorf("minic: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

// lex tokenizes the whole input.
func (lx *lexer) lex() ([]token, error) {
	var toks []token
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return nil, lx.errf(line, col, "unterminated block comment")
			}
		case unicode.IsDigit(r):
			t, err := lx.lexNumber()
			if err != nil {
				return nil, err
			}
			toks = append(toks, t)
		case unicode.IsLetter(r) || r == '_':
			t := lx.lexIdent()
			toks = append(toks, t)
		default:
			t, err := lx.lexPunct()
			if err != nil {
				return nil, err
			}
			toks = append(toks, t)
		}
	}
	toks = append(toks, token{kind: tEOF, line: lx.line, col: lx.col})
	return toks, nil
}

func (lx *lexer) lexNumber() (token, error) {
	line, col := lx.line, lx.col
	start := lx.pos
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && (isHex(lx.peek()) || lx.peek() == '_') {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && (unicode.IsDigit(lx.peek()) || lx.peek() == '_') {
			lx.advance()
		}
	}
	text := string(lx.src[start:lx.pos])
	v, err := strconv.ParseInt(sanitize(text), 0, 64)
	if err != nil {
		// Allow full-range unsigned hex literals.
		u, uerr := strconv.ParseUint(sanitize(text), 0, 64)
		if uerr != nil {
			return token{}, lx.errf(line, col, "bad number %q", text)
		}
		v = int64(u)
	}
	return token{kind: tNumber, text: text, val: v, line: line, col: col}, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != '_' {
			out = append(out, r)
		}
	}
	return string(out)
}

func isHex(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

func (lx *lexer) lexIdent() token {
	line, col := lx.line, lx.col
	start := lx.pos
	for lx.pos < len(lx.src) && (unicode.IsLetter(lx.peek()) || unicode.IsDigit(lx.peek()) || lx.peek() == '_') {
		lx.advance()
	}
	text := string(lx.src[start:lx.pos])
	k := tIdent
	if keywords[text] {
		k = tKeyword
	}
	return token{kind: k, text: text, line: line, col: col}
}

func (lx *lexer) lexPunct() (token, error) {
	line, col := lx.line, lx.col
	if lx.pos+1 < len(lx.src) {
		two := string(lx.src[lx.pos : lx.pos+2])
		for _, op := range twoCharOps {
			if two == op {
				lx.advance()
				lx.advance()
				return token{kind: tPunct, text: op, line: line, col: col}, nil
			}
		}
	}
	r := lx.peek()
	switch r {
	case '+', '-', '*', '/', '%', '&', '|', '^', '<', '>', '=', '!',
		'(', ')', '{', '}', '[', ']', ',', ';':
		lx.advance()
		return token{kind: tPunct, text: string(r), line: line, col: col}, nil
	}
	return token{}, lx.errf(line, col, "unexpected character %q", string(r))
}
