package minic

import (
	"fmt"
	"strings"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/sim"
)

// run compiles and interprets a program, returning its result.
func run(t *testing.T, src string) int64 {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := ir.Interp(p, nil, 10_000_000)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return res.RetVal
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"-5 + 2", -3},
		{"!0", 1},
		{"!7", 0},
		{"3 < 4", 1},
		{"4 <= 4", 1},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"0x10", 16},
		{"1_000", 1000},
	}
	for _, c := range cases {
		got := run(t, fmt.Sprintf("func main() { return %s; }", c.expr))
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side of && must not run when the left is false: give it a
	// side effect through memory.
	src := `
func main() {
	var p = alloc(8);
	var x = (0 && bump(p)) + (1 && bump(p)) + (1 || bump(p)) + (0 || bump(p));
	// bump ran exactly twice (second and fourth terms).
	return x * 100 + p[0];
}
func bump(p) {
	p[0] = p[0] + 1;
	return 1;
}`
	// terms: 0, 1, 1, 1 -> x=3; p[0]=2
	if got := run(t, src); got != 302 {
		t.Errorf("short-circuit result = %d, want 302", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
func main() {
	var s = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		if (i == 9) { break; }
		s = s + i;   // 1+3+5+7
	}
	var j = 0;
	while (j < 5) { j = j + 1; }
	if (s == 16) { return j + 100; } else { return 0 - 1; }
}`
	if got := run(t, src); got != 105 {
		t.Errorf("got %d, want 105", got)
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
func classify(x) {
	if (x < 0) { return 0 - 1; }
	else if (x == 0) { return 0; }
	else if (x < 10) { return 1; }
	else { return 2; }
}
func main() { return classify(0-5)*1000 + classify(0)*100 + classify(5)*10 + classify(50); }`
	if got := run(t, src); got != -1000+0+10+2 {
		t.Errorf("got %d", got)
	}
}

func TestMemoryAndRecursion(t *testing.T) {
	src := `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() {
	var a = alloc(80);
	for (var i = 0; i < 10; i = i + 1) { a[i] = fib(i); }
	var s = 0;
	for (var i = 0; i < 10; i = i + 1) { s = s * 10 + a[i] % 10; }
	return s;
}`
	// fib: 0 1 1 2 3 5 8 13 21 34 -> last digits 0112358314
	if got := run(t, src); got != 112358314 {
		t.Errorf("got %d, want 112358314", got)
	}
}

func TestScoping(t *testing.T) {
	src := `
func main() {
	var x = 1;
	if (1) { var x = 2; x = x + 1; }
	return x;
}`
	if got := run(t, src); got != 1 {
		t.Errorf("shadowed variable leaked: got %d, want 1", got)
	}
}

func TestAtomicsAndEmit(t *testing.T) {
	src := `
func main() {
	var p = alloc(16);
	atomic_add(p, 5);
	atomic_add(p, 7);
	var old = atomic_xchg(p, 100);
	var c = atomic_cas(p, 100, 42);
	emit(p[0]);
	fence();
	return old * 1000 + c * 10 + p[0];
}`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ir.Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 12*1000+100*10+42 {
		t.Errorf("got %d", res.RetVal)
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Errorf("output = %v", res.Output)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                             // no functions
		"func main( { }",                               // bad params
		"func main() { var 1 = 2; }",                   // bad var name
		"func main() { x = 1; }",                       // undeclared
		"func main() { var x = ; }",                    // missing expr
		"func main() { return 1 }",                     // missing semicolon
		"func main() { if 1 { } }",                     // missing parens
		"func main() { break; }",                       // break outside loop
		"func main() { 1 = 2; }",                       // bad lvalue
		"func main() { var x = 1; var x = 2; }",        // redeclared
		"func f(a, a) { return a; }",                   // dup params
		"func main() { return g(); }",                  // unknown callee
		"func main() { return alloc(1, 2); }",          // builtin arity
		"func alloc() { return 0; }",                   // builtin shadowing
		"func f() { return 0; }",                       // no main
		"func main(x) { return x; }",                   // main with params
		"func main() { /* unterminated",                // bad comment
		"func main() { return 99999999999999999999; }", // overflow
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestDuplicateFunction(t *testing.T) {
	src := "func main() { return 0; } func main() { return 1; }"
	if _, err := Compile(src); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate-function error, got %v", err)
	}
}

// TestEndToEndCWSP: minic source -> IR -> cWSP compiler -> machine, with
// crash-consistent execution — the full paper pipeline from C-like source.
func TestEndToEndCWSP(t *testing.T) {
	src := `
// A bank: move money between accounts; total must be conserved.
func main() {
	var accounts = alloc(800);
	for (var i = 0; i < 100; i = i + 1) { accounts[i] = 1000; }
	var rng = 12345;
	for (var t = 0; t < 400; t = t + 1) {
		rng = rng * 1103515245 + 12345;
		var from = (rng >> 16) % 100; if (from < 0) { from = 0 - from; }
		rng = rng * 1103515245 + 12345;
		var to = (rng >> 16) % 100; if (to < 0) { to = 0 - to; }
		var amt = t % 37;
		accounts[from] = accounts[from] - amt;
		accounts[to] = accounts[to] + amt;
	}
	var total = 0;
	for (var i = 0; i < 100; i = i + 1) { total = total + accounts[i]; }
	emit(total);
	return total;
}`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	q, rep, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRegions() == 0 {
		t.Fatal("no regions formed from minic output")
	}
	m, err := sim.New(q, sim.DefaultConfig(), sim.CWSP())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret[0] != 100_000 {
		t.Errorf("money not conserved: total = %d, want 100000", res.Ret[0])
	}
}

func TestInfiniteForWithBreak(t *testing.T) {
	src := `
func main() {
	var i = 0;
	for (;;) {
		i = i + 1;
		if (i >= 42) { break; }
	}
	return i;
}`
	if got := run(t, src); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestDeadCodeAfterReturn(t *testing.T) {
	src := `
func main() {
	return 7;
	emit(999);
}`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ir.Interp(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RetVal != 7 || len(res.Output) != 0 {
		t.Errorf("dead code executed: ret=%d out=%v", res.RetVal, res.Output)
	}
}

func TestVoidFunctions(t *testing.T) {
	src := `
func poke(p, v) { p[0] = v; }
func main() {
	var p = alloc(8);
	poke(p, 9);
	return p[0];
}`
	if got := run(t, src); got != 9 {
		t.Errorf("got %d, want 9", got)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "// leading\nfunc main() { /* inline */ return 1; } // trailing"
	if got := run(t, src); got != 1 {
		t.Errorf("got %d", got)
	}
}
