package minic

// AST node definitions. Positions (line, col) are kept for error messages
// during code generation (e.g. undefined variables).

type File struct {
	Funcs []*FuncDecl
}

type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Line   int
}

type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

type VarStmt struct { // var x = expr;
	Name string
	Init Expr
	Line int
}

type AssignStmt struct { // x = expr;
	Name string
	Val  Expr
	Line int
}

type StoreStmt struct { // base[idx] = expr;
	Base Expr
	Idx  Expr
	Val  Expr
	Line int
}

type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil; else-if is a Block with a single IfStmt
}

type WhileStmt struct {
	Cond Expr
	Body *Block
}

type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body *Block
}

type ReturnStmt struct {
	Val  Expr // may be nil
	Line int
}

type BreakStmt struct{ Line int }
type ContinueStmt struct{ Line int }

type ExprStmt struct { // expr; — calls and builtins for effect
	X Expr
}

func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*StoreStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

type NumberExpr struct {
	Val int64
}

type VarExpr struct {
	Name string
	Line int
	Col  int
}

type UnaryExpr struct { // -x, !x
	Op string
	X  Expr
}

type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

type IndexExpr struct { // base[idx] as an rvalue: load
	Base Expr
	Idx  Expr
}

type CallExpr struct { // name(args...) — user functions and builtins
	Name string
	Args []Expr
	Line int
	Col  int
}

func (*NumberExpr) expr() {}
func (*VarExpr) expr()    {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*IndexExpr) expr()  {}
func (*CallExpr) expr()   {}
