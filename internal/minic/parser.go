package minic

import "fmt"

// Recursive-descent parser with precedence climbing for expressions.

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("minic: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) (token, error) {
	t := p.cur()
	if (t.kind == tPunct || t.kind == tKeyword) && t.text == text {
		p.pos++
		return t, nil
	}
	return t, p.errf(t, "expected %q, found %q", text, t.text)
}

func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.kind == tPunct || t.kind == tKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

// Parse parses a whole source file.
func Parse(src string) (*File, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.cur().kind != tEOF {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	if len(f.Funcs) == 0 {
		return nil, fmt.Errorf("minic: no functions in source")
	}
	return f, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect("func")
	if err != nil {
		return nil, err
	}
	name := p.cur()
	if name.kind != tIdent {
		return nil, p.errf(name, "expected function name")
	}
	p.pos++
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var params []string
	seen := map[string]bool{}
	for !p.is(")") {
		t := p.cur()
		if t.kind != tIdent {
			return nil, p.errf(t, "expected parameter name")
		}
		if seen[t.text] {
			return nil, p.errf(t, "duplicate parameter %q", t.text)
		}
		seen[t.text] = true
		params = append(params, t.text)
		p.pos++
		if !p.accept(",") {
			break
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.text, Params: params, Body: body, Line: kw.line}, nil
}

func (p *parser) block() (*Block, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.is("}") {
		if p.cur().kind == tEOF {
			return nil, p.errf(p.cur(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.is("var"), p.is("return"), p.is("break"), p.is("continue"):
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(";")
		return s, err
	case p.is("if"):
		return p.ifStmt()
	case p.is("while"):
		p.pos++
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.is("for"):
		return p.forStmt()
	case p.is("{"):
		return nil, p.errf(t, "bare blocks are not supported")
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(";")
		return s, err
	}
}

// simpleStmt parses the statements legal in for-clauses (no trailing ';'):
// var declarations, assignments, stores, calls, return/break/continue.
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.is("var"):
		p.pos++
		name := p.cur()
		if name.kind != tIdent {
			return nil, p.errf(name, "expected variable name")
		}
		p.pos++
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Name: name.text, Init: init, Line: name.line}, nil
	case p.is("return"):
		p.pos++
		if p.is(";") {
			return &ReturnStmt{Line: t.line}, nil
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: v, Line: t.line}, nil
	case p.is("break"):
		p.pos++
		return &BreakStmt{Line: t.line}, nil
	case p.is("continue"):
		p.pos++
		return &ContinueStmt{Line: t.line}, nil
	}

	// Assignment, store, or expression statement: parse an expression and
	// look for '='.
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch l := lhs.(type) {
		case *VarExpr:
			return &AssignStmt{Name: l.Name, Val: rhs, Line: l.Line}, nil
		case *IndexExpr:
			return &StoreStmt{Base: l.Base, Idx: l.Idx, Val: rhs, Line: t.line}, nil
		default:
			return nil, p.errf(t, "left side of assignment must be a variable or index expression")
		}
	}
	return &ExprStmt{X: lhs}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.pos++ // 'if'
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.accept("else") {
		if p.is("if") {
			inner, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = &Block{Stmts: []Stmt{inner}}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.pos++ // 'for'
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	var err error
	if !p.is(";") {
		st.Init, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(";") {
		st.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		st.Post, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	st.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Operator precedence (lowest first).
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.is("[") {
		p.pos++
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{Base: x, Idx: idx}
	}
	return x, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.pos++
		return &NumberExpr{Val: t.val}, nil
	case t.kind == tIdent:
		p.pos++
		if p.is("(") {
			p.pos++
			var args []Expr
			for !p.is(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(",") {
					break
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args, Line: t.line, Col: t.col}, nil
		}
		return &VarExpr{Name: t.text, Line: t.line, Col: t.col}, nil
	case p.is("("):
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf(t, "unexpected token %q", t.text)
}
