package minic

import (
	"fmt"

	"cwsp/internal/ir"
)

// Compile compiles minic source text to an IR program. The program's entry
// point is "main" (which must exist and take no parameters).
func Compile(src string) (*ir.Program, error) {
	return CompileNamed(src, "minic")
}

// CompileNamed is Compile with an explicit program name.
func CompileNamed(src, name string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	prog := ir.NewProgram(name)
	for _, fn := range file.Funcs {
		if prog.Funcs[fn.Name] != nil {
			return nil, fmt.Errorf("minic: duplicate function %q", fn.Name)
		}
		if builtinArity(fn.Name) >= 0 {
			return nil, fmt.Errorf("minic: function %q shadows a builtin", fn.Name)
		}
		g := &gen{fb: ir.NewFunc(fn.Name, len(fn.Params))}
		irFn, err := g.genFunc(fn)
		if err != nil {
			return nil, err
		}
		prog.Add(irFn)
	}
	main := prog.Funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("minic: no main function")
	}
	if main.NParams != 0 {
		return nil, fmt.Errorf("minic: main must take no parameters")
	}
	prog.Entry = "main"
	if err := ir.VerifyProgram(prog); err != nil {
		return nil, fmt.Errorf("minic: generated IR invalid: %w", err)
	}
	return prog, nil
}

// builtinArity returns the argument count of a builtin, or -1.
func builtinArity(name string) int {
	switch name {
	case "alloc", "emit":
		return 1
	case "fence":
		return 0
	case "atomic_add", "atomic_xchg":
		return 2
	case "atomic_cas":
		return 3
	}
	return -1
}

type loopCtx struct {
	brk  *ir.Block
	cont *ir.Block
}

type gen struct {
	fb     *ir.FuncBuilder
	scopes []map[string]ir.Reg
	loops  []loopCtx
}

func (g *gen) push() { g.scopes = append(g.scopes, map[string]ir.Reg{}) }
func (g *gen) pop()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *gen) declare(name string, r ir.Reg, line int) error {
	top := g.scopes[len(g.scopes)-1]
	if _, ok := top[name]; ok {
		return fmt.Errorf("minic: %d: %q redeclared in this scope", line, name)
	}
	top[name] = r
	return nil
}

func (g *gen) lookup(name string) (ir.Reg, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if r, ok := g.scopes[i][name]; ok {
			return r, true
		}
	}
	return 0, false
}

func (g *gen) genFunc(fn *FuncDecl) (*ir.Function, error) {
	g.push()
	defer g.pop()
	g.fb.NewBlock("entry")
	for i, p := range fn.Params {
		if err := g.declare(p, g.fb.Param(i), fn.Line); err != nil {
			return nil, err
		}
	}
	if err := g.genBlock(fn.Body); err != nil {
		return nil, err
	}
	g.terminate()
	return g.fb.Done()
}

// terminate appends a void return if the current block lacks a terminator.
func (g *gen) terminate() {
	b := g.fb.Cur()
	if b.Term() == nil {
		g.fb.RetVoid()
	}
}

func (g *gen) genBlock(b *Block) error {
	g.push()
	defer g.pop()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) genStmt(s Stmt) error {
	// Statements after a terminator (return/break/continue) are dead code:
	// emit them into a fresh unreachable block so every block keeps exactly
	// one trailing terminator.
	if g.fb.Cur().Term() != nil {
		g.fb.SetBlock(g.fb.AddBlock("dead"))
	}
	switch st := s.(type) {
	case *VarStmt:
		v, err := g.genExpr(st.Init)
		if err != nil {
			return err
		}
		r := g.fb.Reg()
		g.fb.Mov(r, v)
		return g.declare(st.Name, r, st.Line)

	case *AssignStmt:
		r, ok := g.lookup(st.Name)
		if !ok {
			return fmt.Errorf("minic: %d: assignment to undeclared variable %q", st.Line, st.Name)
		}
		v, err := g.genExpr(st.Val)
		if err != nil {
			return err
		}
		g.fb.Mov(r, v)
		return nil

	case *StoreStmt:
		addr, off, err := g.genAddr(st.Base, st.Idx)
		if err != nil {
			return err
		}
		v, err := g.genExpr(st.Val)
		if err != nil {
			return err
		}
		g.fb.Store(v, addr, off)
		return nil

	case *IfStmt:
		cond, err := g.genExpr(st.Cond)
		if err != nil {
			return err
		}
		thenB := g.fb.AddBlock("then")
		elseB := thenB
		if st.Else != nil {
			elseB = g.fb.AddBlock("else")
		}
		join := g.fb.AddBlock("join")
		if st.Else == nil {
			elseB = join
		}
		g.fb.Br(cond, thenB, elseB)
		g.fb.SetBlock(thenB)
		if err := g.genBlock(st.Then); err != nil {
			return err
		}
		g.jumpIfOpen(join)
		if st.Else != nil {
			g.fb.SetBlock(elseB)
			if err := g.genBlock(st.Else); err != nil {
				return err
			}
			g.jumpIfOpen(join)
		}
		g.fb.SetBlock(join)
		return nil

	case *WhileStmt:
		head := g.fb.AddBlock("while.head")
		body := g.fb.AddBlock("while.body")
		exit := g.fb.AddBlock("while.exit")
		g.jumpIfOpen(head)
		g.fb.SetBlock(head)
		cond, err := g.genExpr(st.Cond)
		if err != nil {
			return err
		}
		g.fb.Br(cond, body, exit)
		g.fb.SetBlock(body)
		g.loops = append(g.loops, loopCtx{brk: exit, cont: head})
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.jumpIfOpen(head)
		g.fb.SetBlock(exit)
		return nil

	case *ForStmt:
		g.push()
		defer g.pop()
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		head := g.fb.AddBlock("for.head")
		body := g.fb.AddBlock("for.body")
		post := g.fb.AddBlock("for.post")
		exit := g.fb.AddBlock("for.exit")
		g.jumpIfOpen(head)
		g.fb.SetBlock(head)
		if st.Cond != nil {
			cond, err := g.genExpr(st.Cond)
			if err != nil {
				return err
			}
			g.fb.Br(cond, body, exit)
		} else {
			g.fb.Jmp(body)
		}
		g.fb.SetBlock(body)
		g.loops = append(g.loops, loopCtx{brk: exit, cont: post})
		if err := g.genBlock(st.Body); err != nil {
			return err
		}
		g.loops = g.loops[:len(g.loops)-1]
		g.jumpIfOpen(post)
		g.fb.SetBlock(post)
		if st.Post != nil {
			if err := g.genStmt(st.Post); err != nil {
				return err
			}
		}
		g.jumpIfOpen(head)
		g.fb.SetBlock(exit)
		return nil

	case *ReturnStmt:
		if st.Val == nil {
			g.fb.RetVoid()
			return nil
		}
		v, err := g.genExpr(st.Val)
		if err != nil {
			return err
		}
		g.fb.Ret(v)
		return nil

	case *BreakStmt:
		if len(g.loops) == 0 {
			return fmt.Errorf("minic: %d: break outside a loop", st.Line)
		}
		g.jumpIfOpen(g.loops[len(g.loops)-1].brk)
		g.fb.SetBlock(g.fb.AddBlock("dead"))
		return nil

	case *ContinueStmt:
		if len(g.loops) == 0 {
			return fmt.Errorf("minic: %d: continue outside a loop", st.Line)
		}
		g.jumpIfOpen(g.loops[len(g.loops)-1].cont)
		g.fb.SetBlock(g.fb.AddBlock("dead"))
		return nil

	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// jumpIfOpen appends a jump unless the block is already terminated.
func (g *gen) jumpIfOpen(target *ir.Block) {
	if g.fb.Cur().Term() == nil {
		g.fb.Jmp(target)
	}
}

// genAddr computes the (address operand, byte offset) for base[idx].
func (g *gen) genAddr(base, idx Expr) (ir.Operand, int64, error) {
	b, err := g.genExpr(base)
	if err != nil {
		return ir.Operand{}, 0, err
	}
	if n, ok := idx.(*NumberExpr); ok {
		return b, n.Val * 8, nil
	}
	i, err := g.genExpr(idx)
	if err != nil {
		return ir.Operand{}, 0, err
	}
	off := g.fb.Bin(ir.OpShl, i, ir.Imm(3))
	addr := g.fb.Bin(ir.OpAdd, b, ir.R(off))
	return ir.R(addr), 0, nil
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
	"==": ir.OpCmpEQ, "!=": ir.OpCmpNE, "<": ir.OpCmpLT, "<=": ir.OpCmpLE,
	">": ir.OpCmpGT, ">=": ir.OpCmpGE,
}

func (g *gen) genExpr(e Expr) (ir.Operand, error) {
	switch x := e.(type) {
	case *NumberExpr:
		return ir.Imm(x.Val), nil

	case *VarExpr:
		r, ok := g.lookup(x.Name)
		if !ok {
			return ir.Operand{}, fmt.Errorf("minic: %d:%d: undefined variable %q", x.Line, x.Col, x.Name)
		}
		return ir.R(r), nil

	case *UnaryExpr:
		v, err := g.genExpr(x.X)
		if err != nil {
			return ir.Operand{}, err
		}
		switch x.Op {
		case "-":
			return ir.R(g.fb.Bin(ir.OpSub, ir.Imm(0), v)), nil
		case "!":
			return ir.R(g.fb.Bin(ir.OpCmpEQ, v, ir.Imm(0))), nil
		}
		return ir.Operand{}, fmt.Errorf("minic: unknown unary %q", x.Op)

	case *BinaryExpr:
		if x.Op == "&&" || x.Op == "||" {
			return g.genShortCircuit(x)
		}
		l, err := g.genExpr(x.L)
		if err != nil {
			return ir.Operand{}, err
		}
		r, err := g.genExpr(x.R)
		if err != nil {
			return ir.Operand{}, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return ir.Operand{}, fmt.Errorf("minic: %d: unknown operator %q", x.Line, x.Op)
		}
		return ir.R(g.fb.Bin(op, l, r)), nil

	case *IndexExpr:
		addr, off, err := g.genAddr(x.Base, x.Idx)
		if err != nil {
			return ir.Operand{}, err
		}
		return ir.R(g.fb.Load(addr, off)), nil

	case *CallExpr:
		return g.genCall(x)
	}
	return ir.Operand{}, fmt.Errorf("minic: unknown expression %T", e)
}

// genShortCircuit lowers && and || to control flow; the result is 0 or 1.
func (g *gen) genShortCircuit(x *BinaryExpr) (ir.Operand, error) {
	l, err := g.genExpr(x.L)
	if err != nil {
		return ir.Operand{}, err
	}
	res := g.fb.Reg()
	evalR := g.fb.AddBlock("sc.rhs")
	done := g.fb.AddBlock("sc.done")
	if x.Op == "&&" {
		g.fb.ConstInto(res, 0)
		g.fb.Br(l, evalR, done)
	} else {
		g.fb.ConstInto(res, 1)
		g.fb.Br(l, done, evalR)
	}
	g.fb.SetBlock(evalR)
	r, err := g.genExpr(x.R)
	if err != nil {
		return ir.Operand{}, err
	}
	nz := g.fb.Bin(ir.OpCmpNE, r, ir.Imm(0))
	g.fb.Mov(res, ir.R(nz))
	g.fb.Jmp(done)
	g.fb.SetBlock(done)
	return ir.R(res), nil
}

func (g *gen) genCall(x *CallExpr) (ir.Operand, error) {
	args := make([]ir.Operand, 0, len(x.Args))
	for _, a := range x.Args {
		v, err := g.genExpr(a)
		if err != nil {
			return ir.Operand{}, err
		}
		args = append(args, v)
	}
	if want := builtinArity(x.Name); want >= 0 {
		if len(args) != want {
			return ir.Operand{}, fmt.Errorf("minic: %d:%d: %s takes %d arguments, got %d",
				x.Line, x.Col, x.Name, want, len(args))
		}
		switch x.Name {
		case "alloc":
			return ir.R(g.allocInto(args[0])), nil
		case "emit":
			g.fb.Emit(args[0])
			return ir.Imm(0), nil
		case "fence":
			g.fb.Fence()
			return ir.Imm(0), nil
		case "atomic_add":
			return ir.R(g.fb.AtomicAdd(args[0], 0, args[1])), nil
		case "atomic_xchg":
			return ir.R(g.fb.AtomicXchg(args[0], 0, args[1])), nil
		case "atomic_cas":
			return ir.R(g.fb.AtomicCAS(args[0], 0, args[1], args[2])), nil
		}
	}
	return ir.R(g.fb.Call(x.Name, args...)), nil
}

// allocInto emits an alloc whose size is the given operand.
func (g *gen) allocInto(size ir.Operand) ir.Reg {
	if size.Kind == ir.OperandImm {
		return g.fb.Alloc(size.Imm)
	}
	// Dynamic size: OpAlloc's A operand may be a register.
	d := g.fb.Reg()
	g.fb.Cur().Instrs = append(g.fb.Cur().Instrs, ir.Instr{Op: ir.OpAlloc, Dst: d, A: size})
	return d
}
