package sim

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"cwsp/internal/ir"
	"cwsp/internal/progen"
	"cwsp/internal/telemetry"
)

// storeHeavyProg builds a two-phase program: a compute-only warmup (the
// persist structures stay idle, so early samples are near zero) followed
// by a streaming store loop that saturates the persist path.
func storeHeavyProg(warmup, stores int64) *ir.Program {
	const base = int64(0x5000_0000)
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	acc := fb.Reg()
	fb.ConstInto(acc, 1)
	i := fb.Reg()
	fb.ConstInto(i, 0)

	whead := fb.AddBlock("whead")
	wbody := fb.AddBlock("wbody")
	shead := fb.AddBlock("shead")
	sbody := fb.AddBlock("sbody")
	done := fb.AddBlock("done")
	fb.Jmp(whead)

	fb.SetBlock(whead)
	c1 := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(warmup))
	fb.Br(ir.R(c1), wbody, shead)
	fb.SetBlock(wbody)
	m3 := fb.Mul(ir.R(acc), ir.Imm(3))
	fb.BinInto(ir.OpAdd, acc, ir.R(m3), ir.Imm(1))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(whead)

	fb.SetBlock(shead)
	fb.ConstInto(i, 0)
	fb.Jmp(sbody)
	fb.SetBlock(sbody)
	off := fb.Bin(ir.OpShl, ir.R(i), ir.Imm(3))
	addr := fb.Add(ir.Imm(base), ir.R(off))
	fb.Store(ir.R(acc), ir.R(addr), 0)
	fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.R(i))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	c2 := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(stores))
	fb.Br(ir.R(c2), sbody, done)

	fb.SetBlock(done)
	fb.Ret(ir.R(acc))

	p := ir.NewProgram("storeheavy")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestTelemetryHistogramsStoreHeavy(t *testing.T) {
	p := compileT(t, storeHeavyProg(200, 3000))
	m, err := New(p, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	tel := m.EnableTelemetry(TelemetryOptions{SampleInterval: 256})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tel.PersistLat.Count() == 0 {
		t.Fatal("no persist latency samples on a store-heavy run")
	}
	if p99 := tel.PersistLat.Quantile(99); p99 <= 0 {
		t.Errorf("persist latency p99 = %g, want > 0", p99)
	}
	if tel.PersistLat.Count() < res.Stats.Stores {
		t.Errorf("persist latencies (%d) < stores (%d)", tel.PersistLat.Count(), res.Stats.Stores)
	}
	// Region telemetry telescopes exactly: every instruction belongs to
	// exactly one finished region, every checkpoint to the region that
	// executed it.
	if got := tel.RegionInstrs.Sum(); got != res.Stats.Instrs {
		t.Errorf("region instr sum %d != instrs %d", got, res.Stats.Instrs)
	}
	if got := tel.RegionCkpts.Sum(); got != res.Stats.Ckpts {
		t.Errorf("region ckpt sum %d != ckpts %d", got, res.Stats.Ckpts)
	}
	if tel.RegionCycles.Count() == 0 || tel.RegionCycles.Max() <= 0 {
		t.Error("region cycle lengths not recorded")
	}
	if tel.Sampler.Len() == 0 {
		t.Error("sampler recorded nothing")
	}
}

func TestTelemetryDoesNotPerturbTiming(t *testing.T) {
	p := compileT(t, progen.Generate(9, progen.DefaultConfig()))
	run := func(enable bool, tr Tracer) Stats {
		m, err := New(p, DefaultConfig(), CWSP())
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			m.EnableTelemetry(TelemetryOptions{SampleInterval: 64})
		}
		m.SetTracer(tr)
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	plain := run(false, nil)
	if with := run(true, nil); plain != with {
		t.Error("telemetry changed simulation results")
	}
	if with := run(true, NewPerfettoTracer(io.Discard)); plain != with {
		t.Error("perfetto tracing changed simulation results")
	}
}

func TestTelemetrySamplerMemoryBounded(t *testing.T) {
	p := compileT(t, storeHeavyProg(0, 5000))
	m, err := New(p, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	tel := m.EnableTelemetry(TelemetryOptions{SampleInterval: 16, SampleCap: 8})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if tel.Sampler.Len() > 8 {
		t.Errorf("sampler kept %d samples, cap 8", tel.Sampler.Len())
	}
	if tel.Sampler.Dropped() == 0 {
		t.Error("long run at fine interval should overflow an 8-entry ring")
	}
}

// TestSamplerShowsPersistBacklog is the Figure-21 observability check: at
// 1 GB/s the persist path cannot keep up with a streaming store phase and
// the sampled send backlog climbs; at 32 GB/s it stays near zero. The
// assertion is on the sampled series, not on eyeballed CSV.
func TestSamplerShowsPersistBacklog(t *testing.T) {
	p := compileT(t, storeHeavyProg(2000, 4000))
	run := func(gbs float64) *Telemetry {
		m, err := New(p, DefaultConfig().PersistPathGBs(gbs), CWSP())
		if err != nil {
			t.Fatal(err)
		}
		tel := m.EnableTelemetry(TelemetryOptions{SampleInterval: 128, SampleCap: 1 << 16})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return tel
	}
	slow := run(1)
	fast := run(32)

	sb := slow.Sampler.Column("persist.send_backlog")
	fb := fast.Sampler.Column("persist.send_backlog")
	if len(sb) < 8 || len(fb) < 8 {
		t.Fatalf("too few samples: slow %d fast %d", len(sb), len(fb))
	}
	slowMean, fastMean := mean(sb), mean(fb)
	if slowMean < 4*fastMean || slowMean <= 0 {
		t.Errorf("1 GB/s backlog mean %.1f should dwarf 32 GB/s mean %.1f", slowMean, fastMean)
	}
	// Growth within the slow run: the warmup quarter is idle, the last
	// quarter is saturated.
	q := len(sb) / 4
	early, late := mean(sb[:q]), mean(sb[len(sb)-q:])
	if late <= early {
		t.Errorf("1 GB/s backlog should grow: early quarter %.1f, late quarter %.1f", early, late)
	}
	// PB occupancy tells the same story.
	if po := mean(slow.Sampler.Column("c0.pb")); po <= mean(fast.Sampler.Column("c0.pb")) {
		t.Errorf("PB occupancy at 1 GB/s (%.2f) should exceed 32 GB/s", po)
	}
	// The CSV export of the same series parses and carries the columns.
	var csv strings.Builder
	if err := slow.WriteSeriesCSV(&csv); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(csv.String(), "\n", 2)[0]
	for _, col := range []string{"cycle", "c0.pb", "mc0.wpq", "persist.send_backlog"} {
		if !strings.Contains(head, col) {
			t.Errorf("CSV header %q missing %q", head, col)
		}
	}
}

func TestPerfettoTracerProducesLoadableTrace(t *testing.T) {
	p := compileT(t, progen.Generate(4, progen.DefaultConfig()))
	m, err := New(p, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tr := NewPerfettoTracer(&b)
	m.SetTracer(tr)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("perfetto trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	phases := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
		if ev["ph"] == "M" {
			if args, ok := ev["args"].(map[string]interface{}); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		}
	}
	// Region spans (async b/e), persist flows (s/f) landing on MC slices
	// (X), and track metadata must all be present.
	for _, ph := range []string{"b", "e", "i", "X", "s", "f", "M"} {
		if phases[ph] == 0 {
			t.Errorf("trace has no %q events (phases: %v)", ph, phases)
		}
	}
	if phases["b"] != phases["e"] {
		t.Errorf("unbalanced region spans: %d begins, %d ends", phases["b"], phases["e"])
	}
	if !names["core 0"] || !names["mc 0"] {
		t.Errorf("missing track names, got %v", names)
	}
}

func TestMachineManifest(t *testing.T) {
	p := compileT(t, storeHeavyProg(100, 1500))
	m, err := New(p, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTelemetry(TelemetryOptions{})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	man, err := m.BuildManifest("cwspsim", "storeheavy", "quick")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := man.Write(&b); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ReadManifest(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if got.Scheme != "cwsp" || got.Workload != "storeheavy" {
		t.Errorf("manifest identity wrong: %+v", got)
	}
	// The embedded config/stats must decode back into the Go types.
	var cfg Config
	if err := json.Unmarshal(got.Config, &cfg); err != nil {
		t.Fatalf("config does not round-trip: %v", err)
	}
	if cfg.PBSize != m.Cfg.PBSize {
		t.Errorf("config PBSize %d != %d", cfg.PBSize, m.Cfg.PBSize)
	}
	var st Stats
	if err := json.Unmarshal(got.Stats, &st); err != nil {
		t.Fatalf("stats do not round-trip: %v", err)
	}
	if st.Stores == 0 {
		t.Error("stats lost store count")
	}
	if got.Derived["ipc"] <= 0 {
		t.Errorf("derived ipc = %g", got.Derived["ipc"])
	}
	if _, ok := got.Derived["stall_frac.pb"]; !ok {
		t.Error("derived metrics missing stall breakdown")
	}
	if s, ok := got.Histograms["persist_lat"]; !ok || s.Count == 0 || s.P99 <= 0 {
		t.Errorf("manifest persist_lat summary wrong: %+v", s)
	}
	if got.Series == nil || got.Series.Count == 0 {
		t.Error("manifest missing series info")
	}
}

func benchTelemetry(b *testing.B, enable bool) {
	p := compileT(b, progen.Generate(7, progen.DefaultConfig()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := New(p, DefaultConfig(), CWSP())
		if err != nil {
			b.Fatal(err)
		}
		if enable {
			m.EnableTelemetry(TelemetryOptions{})
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTelemetryOff is the hot-path overhead guard: with telemetry
// disabled every probe is one nil check, so cycle throughput must stay
// within noise of the seed simulator.
func BenchmarkRunTelemetryOff(b *testing.B) { benchTelemetry(b, false) }
func BenchmarkRunTelemetryOn(b *testing.B)  { benchTelemetry(b, true) }
