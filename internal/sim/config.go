package sim

import "cwsp/internal/nvmtech"

// Config holds the machine's structural and timing parameters. Latencies
// are in core cycles (2 GHz, 0.5 ns/cycle). The hierarchy is a scaled-down
// proportional model of the paper's: capacities are divided by a constant
// factor so the synthetic workloads' footprints exercise the same
// hit/miss structure the paper's GB-scale footprints did against GB-scale
// caches (see DESIGN.md).
type Config struct {
	Cores     int
	LineBytes int

	L1DBytes int
	L1DWays  int
	L1DLat   int64

	// L2 is shared in the default 2-level-SRAM configuration; when
	// L3Bytes > 0 (paper Section IX-F) L2 becomes private and L3 shared.
	L2Bytes int
	L2Ways  int
	L2Lat   int64

	L3Bytes int
	L3Ways  int
	L3Lat   int64

	// DRAMBytes == 0 disables the DRAM cache (the ideal-PSP configuration
	// of Section IX-D).
	DRAMBytes int
	DRAMLat   int64

	// NVM media.
	NVMReadLat  int64
	NVMWriteBPC float64 // media write bandwidth per MC, bytes/cycle

	NumMCs int
	// MCChannels scales per-MC media write bandwidth: an MC drains its WPQ
	// across several DIMM channels in parallel.
	MCChannels int
	NUMAStep   int64 // extra persist-path cycles per MC index (NUMA)

	// Persist path.
	PPOneWayLat int64
	PPBytesBPC  float64 // persist-path bandwidth, bytes/cycle
	PBSize      int
	WPQSize     int
	RBTSize     int

	// L1D write buffer.
	WBSize     int
	WBDrainLat int64

	// MLP approximates an out-of-order core's memory-level parallelism:
	// miss latencies are divided by it.
	MLP float64

	AtomicLat int64 // base latency of a synchronizing op
	CallLat   int64 // base latency of call/return control transfer

	// MaxSteps bounds dynamic instructions (0 = default cap).
	MaxSteps int64

	// Recoverable enables the persist journal and region descriptor log
	// needed for crash injection and recovery (costs memory; benchmarks
	// leave it off).
	Recoverable bool

	// Unsealed disables recovery-side seal validation (undo-log record
	// checksums, WPQ drain-ledger cross-checks, checkpoint-slot scrubbing).
	// The zero value — validation on — is the shipped configuration; the
	// torture harness flips this to demonstrate that an unvalidated build
	// silently diverges under injected corruption.
	Unsealed bool

	// Kernel selects the RunUntil implementation; the zero value is the
	// batched fast kernel. All kernels are behavior-identical (enforced
	// by internal/simtest's N-way differential harness and the
	// equivalence fuzz targets); they differ only in speed and in which
	// probes they carry. Machines with telemetry or tracing attached take
	// the reference path automatically regardless of this field, since
	// only it has the per-instruction probes.
	Kernel KernelKind

	// ReferenceKernel forces the reference stepper; it predates Kernel
	// and is kept as a working alias (`Kernel: KernelReference`) for
	// existing callers (litmus specs, -kernel=reference flags).
	ReferenceKernel bool
}

// KernelKind names a RunUntil implementation.
type KernelKind string

const (
	// KernelBatched is the default: batched minimum-cycle scheduling with
	// inlined switch dispatch (kernel.go).
	KernelBatched KernelKind = "batched"
	// KernelReference is the verbatim one-instruction-per-scan stepper
	// carrying the telemetry/tracing probes (reference.go).
	KernelReference KernelKind = "reference"
	// KernelThreaded is the threaded-code backend: programs are
	// translated once into flat arrays of specialized closures
	// (threaded.go).
	KernelThreaded KernelKind = "threaded"
)

// kernel resolves the effective kernel selection, folding the legacy
// ReferenceKernel flag in.
func (c Config) kernel() KernelKind {
	if c.Kernel == "" {
		if c.ReferenceKernel {
			return KernelReference
		}
		return KernelBatched
	}
	return c.Kernel
}

// DefaultConfig is the scaled default machine: the paper's Skylake-class
// setup (64KB L1D / 16MB shared L2 / 4GB DRAM cache, PMEM NVM, 2 MCs,
// 4 GB/s persist path, PB 50, WPQ 24, RBT 16) with capacities scaled 1/512
// to match the synthetic workloads' footprints.
func DefaultConfig() Config {
	t := nvmtech.PMEM
	return Config{
		Cores:     1,
		LineBytes: 64,

		L1DBytes: 32 << 10,
		L1DWays:  8,
		L1DLat:   4,

		L2Bytes: 1 << 20,
		L2Ways:  16,
		L2Lat:   44,

		DRAMBytes: 8 << 20,
		DRAMLat:   100,

		NVMReadLat:  t.ReadLatCycles(),
		NVMWriteBPC: t.WriteBytesPerCycle(),

		NumMCs:     2,
		MCChannels: 4,
		NUMAStep:   30,

		PPOneWayLat: 20,
		PPBytesBPC:  2.0, // 4 GB/s at 2 GHz
		PBSize:      50,
		WPQSize:     24,
		RBTSize:     16,

		WBSize:     32,
		WBDrainLat: 8,

		MLP:       4,
		AtomicLat: 20,
		CallLat:   2,
	}
}

// WithNVM returns the config retargeted at another NVM/CXL technology.
func (c Config) WithNVM(t nvmtech.Tech) Config {
	c.NVMReadLat = t.ReadLatCycles()
	c.NVMWriteBPC = t.WriteBytesPerCycle()
	return c
}

// WithL3 returns the deeper-hierarchy variant of Section IX-F: a private
// 1MB-class L2 (scaled) plus a shared L3 at the old L2's size and latency.
func (c Config) WithL3() Config {
	c.L3Bytes = c.L2Bytes
	c.L3Ways = c.L2Ways
	c.L3Lat = c.L2Lat
	c.L2Bytes = c.L2Bytes / 8
	c.L2Ways = 8
	c.L2Lat = 14
	return c
}

// PersistPathGBs sets the persist-path bandwidth in GB/s.
func (c Config) PersistPathGBs(gbs float64) Config {
	c.PPBytesBPC = gbs / nvmtech.GHz
	return c
}

// Scheme selects the crash-consistency discipline the machine applies.
// One machine implementation covers cWSP, the prior-work comparators, and
// the plain baseline through these switches.
type Scheme struct {
	Name string

	// Persist: committed stores travel a persist path to NVM.
	Persist bool
	// GranularityBytes: 8 for cWSP's word-granularity persistence, 64 for
	// prior cacheline-granularity schemes.
	GranularityBytes int
	// DedupLines: coalesce repeated stores to one line within a region
	// (Capri's redo buffer).
	DedupLines bool
	// MCSpec: memory-controller speculation — no stall at region
	// boundaries; speculative stores are undo-logged at the MC.
	MCSpec bool
	// LogBytes is the undo-log media traffic per logged store (0 = the
	// default 16 bytes: address + old value).
	LogBytes int
	// BoundaryStall: stall at every region boundary until the finished
	// region's stores persisted (iDO/ReplayCache and the paper's prior
	// schemes under multiple MCs).
	BoundaryStall bool
	// BoundaryExtraLat: additional cycles per boundary (persist-barrier
	// instruction overhead of software schemes).
	BoundaryExtraLat int64
	// WBDelay: hold L1D write-buffer drains until the persist path has
	// written the line (the stale-read fix).
	WBDelay bool
	// WPQDelay: delay NVM loads that hit a pending WPQ entry.
	WPQDelay bool
	// DRAMCache: serve the LLC from the DRAM cache; false models
	// partial-system persistence with DRAM as main memory elsewhere.
	DRAMCache bool
	// UseRBT: track in-flight regions in the RBT (asynchronous region
	// retirement). Without it, regions retire only via BoundaryStall.
	UseRBT bool
}

// Baseline is the original program on the original machine, no crash
// consistency.
func Baseline() Scheme {
	return Scheme{Name: "base", DRAMCache: true}
}

// CWSP is the full design.
func CWSP() Scheme {
	return Scheme{
		Name: "cwsp", Persist: true, GranularityBytes: 8,
		MCSpec: true, WBDelay: true, WPQDelay: true,
		DRAMCache: true, UseRBT: true,
	}
}
