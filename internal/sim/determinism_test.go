package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

// manifestBytes runs q on a fresh machine and returns the serialized run
// manifest — the full externally visible output of a run (config, raw
// stats, and the Derived metric map).
func manifestBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	q := compiledProgram(t, seed)
	m := mustMachine(t, q, recoverableCfg())
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	man, err := m.BuildManifest("determinism-test", "progen", "quick")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func recoverableCfg() Config {
	cfg := DefaultConfig()
	cfg.Recoverable = true
	return cfg
}

// TestManifestSerializationDeterministic: two identical runs must produce
// byte-identical serialized manifests. Guards the map-valued fields
// (Stats.Derived, and by extension every map ranged into run output)
// against iteration-order leakage.
func TestManifestSerializationDeterministic(t *testing.T) {
	a := manifestBytes(t, 11)
	b := manifestBytes(t, 11)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs serialized differently:\n%s\n---\n%s", a, b)
	}
}

// TestCrashFaultsDeterministic: the faulted crash-state reconstruction —
// including the map-driven checkpoint-corruption overlay — must be
// bit-reproducible: same NVM digest, same serialized restart points, same
// serialized seal table on every run.
func TestCrashFaultsDeterministic(t *testing.T) {
	q := compiledProgram(t, 11)
	cfg := recoverableCfg()
	crash := midCrashCycle(t, q, cfg)

	// Scout for checkpoint-area words to corrupt; multi-entry CkptXOR is
	// the point (a single entry cannot expose iteration order).
	scout := mustMachine(t, q, cfg)
	if err := scout.RunUntil(crash); err != nil {
		t.Fatal(err)
	}
	addrs := scout.SealedCkptAddrs()
	if len(addrs) < 2 {
		t.Skip("fewer than two checkpoint-area writes by this crash cycle")
	}
	if len(addrs) > 8 {
		addrs = addrs[:8]
	}
	cf := &CrashFaults{CkptXOR: map[int64]uint64{}}
	for i, a := range addrs {
		cf.CkptXOR[a] = 0x1111 << uint(i%4)
	}

	type shot struct {
		digest   uint64
		restarts []byte
		seals    []byte
	}
	take := func() shot {
		m := mustMachine(t, q, cfg)
		cs, err := m.CrashAtFaults(crash, cf)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := json.Marshal(cs.Restarts)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := json.Marshal(cs.Seals)
		if err != nil {
			t.Fatal(err)
		}
		return shot{cs.NVM.Digest(), rr, sr}
	}

	a, b := take(), take()
	if a.digest != b.digest {
		t.Fatalf("faulted NVM digests differ: %#x vs %#x", a.digest, b.digest)
	}
	if !bytes.Equal(a.restarts, b.restarts) {
		t.Fatalf("restart points serialized differently:\n%s\n---\n%s", a.restarts, b.restarts)
	}
	if !bytes.Equal(a.seals, b.seals) {
		t.Fatalf("seal tables serialized differently:\n%s\n---\n%s", a.seals, b.seals)
	}
}

// TestDerivedStableKeySet: Derived must expose every stall cause even at
// zero, and two calls on the same Stats must serialize identically — a
// diffing tool depends on a stable key set and stable rendering.
func TestDerivedStableKeySet(t *testing.T) {
	s := Stats{Cycles: 100, Instrs: 250, Regions: 5, WPQHits: 3,
		PBStallCyc: 10, DrainStallCyc: 4, L1DAccs: 80, L1DMisses: 8}
	a, err := json.Marshal(s.Derived())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s.Derived())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("Derived serialized differently across calls:\n%s\n---\n%s", a, b)
	}
	for _, key := range []string{"stall_frac.pb", "stall_frac.rbt", "stall_frac.wb",
		"stall_frac.drain", "stall_frac.boundary", "stall_frac.wpq_load"} {
		if !bytes.Contains(a, []byte(`"`+key+`"`)) {
			t.Errorf("Derived output missing %q:\n%s", key, a)
		}
	}
}
