// Package sim is the cycle-level machine model of the cWSP hardware: N
// cores (each with an L1D, a write buffer, a persist buffer + path, and a
// region boundary table) over a shared L2/L3, a direct-mapped DRAM cache,
// and NVM main memory behind multiple NUMA memory controllers with
// battery-backed write pending queues.
//
// Functional execution and timing are coupled: the machine interprets the
// IR directly and every committed store's persistence instant is computed
// from the deterministic FIFO schedules of the persist structures. A run
// can therefore be cut at an arbitrary crash cycle and reconstructed
// exactly (see CrashAt and package recovery).
package sim

import (
	"fmt"
	"math"
	"sort"

	"cwsp/internal/ir"
	"cwsp/internal/mem"
	"cwsp/internal/persist"
	"cwsp/internal/telemetry/live"
)

// RegionInfo describes one dynamic region for the recovery runtime. The
// descriptor fields mirror what cWSP hardware writes to NVM when the
// region becomes the RBT head (its recovery-slice pointer and frame
// context); the retire time is the instant its last store persisted.
type RegionInfo struct {
	Seq      int64
	Core     int
	Fn       string
	StaticID int
	Ref      ir.InstrRef
	Depth    int
	StackPtr int64
	Start    int64
	Retire   int64 // math.MaxInt64 until the region fully persists
}

type frame struct {
	fn    *ir.Function
	regs  []int64
	blk   int
	pc    int
	dst   ir.Reg
	depth int

	// Call linkage (for returns and for recovery reconstruction).
	spillBase int64
	spillList []ir.Reg
	resumeBlk int
	resumePC  int
}

type regionState struct {
	info       *RegionInfo
	persistMax int64

	// Telemetry-only bookkeeping (region length and checkpoint density).
	startInstrs int64
	ckpts       int64
}

type core struct {
	id    int
	cycle int64
	done  bool
	ret   int64

	l1d  *mem.Cache
	wb   *mem.WriteBuffer
	path *persist.Path
	rbt  *persist.RBT

	frames   []*frame
	stackPtr int64
	cur      *regionState
	// lines tracks the current region's persisted cache lines for
	// DedupLines schemes (nil otherwise); openRegion resets it.
	lines *lineSet

	instrs int64

	// Free lists keeping the steady-state step allocation-free: popped
	// frames and closed regions are recycled instead of re-allocated.
	// RegionInfo descriptors are recycled only when the machine is not
	// Recoverable (otherwise they escape into the Regions log).
	freeFrames  []*frame
	freeRegions []*regionState
	freeInfos   []*RegionInfo
}

// Machine is one configured simulation instance. Create with New, run with
// Run or RunUntil.
type Machine struct {
	Cfg  Config
	Sch  Scheme
	Prog *ir.Program

	Mem *mem.PagedMem // architectural memory (caches + NVM union)
	NVM *mem.PagedMem // persisted image

	l2   *mem.Cache
	l3   *mem.Cache
	dram *mem.DRAMCache
	wpqs []*persist.WPQ

	cores []*core

	regionSeq int64
	// syncClock makes synchronizing operations' commit cycles monotone in
	// functional (step) order across cores: a CAS that observes a release
	// must carry a later timestamp, or a crash between the two would let
	// recovery re-execute both critical sections concurrently.
	syncClock int64
	Regions   []*RegionInfo // recovery descriptor log (Recoverable only)
	Journal   []persist.Rec // persist-event journal (Recoverable only)

	funcNames []string
	funcIdx   map[string]int
	// fnNum and callees are pointer-keyed mirrors of funcIdx and
	// Prog.Funcs, precomputed so the call path never hashes a string.
	fnNum   map[*ir.Function]int
	callees map[*ir.Instr]*ir.Function

	Output []int64

	tracer Tracer
	// tel is the optional telemetry attachment (EnableTelemetry). Every
	// instrumentation probe is behind a nil check so the disabled path
	// stays allocation-free.
	tel   *Telemetry
	stats Stats
	// lbus is the optional live event bus (SetLiveBus): the fast kernel
	// reports instruction/cycle progress deltas every liveSimEvery
	// instructions so a campaign endpoint can watch long cells advance.
	// Unlike tel/tracer it does NOT force the reference kernel — the
	// probe sits outside the per-instruction hot path and is nil-guarded,
	// preserving the zero-alloc steady state (see internal/simtest).
	lbus       *live.Bus
	liveNext   int64 // instruction count that triggers the next report
	liveInstrs int64 // last reported cumulative instructions
	liveCycles int64 // last reported core-local cycle
	// halted records that RunUntil drained every runnable core (all done
	// or frozen at the crash cycle).
	halted bool

	// tc is this machine's resolved threaded-code translation (threaded
	// kernel only; see threaded.go). tcCrash/tcBound/tcBoundID mirror the
	// driver's active stop conditions so fused superinstructions can
	// re-check them between their halves.
	tc        *tProg
	tcCrash   int64
	tcBound   int64
	tcBoundID int
}

// Result is what a completed run returns.
type Result struct {
	Stats  Stats
	Ret    []int64 // per-core return values
	Output []int64
	NVM    *mem.PagedMem
	Mem    *mem.PagedMem
}

// ThreadSpec assigns a function to a core.
type ThreadSpec struct {
	Fn   string
	Args []int64
}

// New builds a machine running prog's entry function on core 0. Use
// NewThreaded for explicit multi-core thread placement.
func New(prog *ir.Program, cfg Config, sch Scheme) (*Machine, error) {
	return NewThreaded(prog, cfg, sch, []ThreadSpec{{Fn: prog.Entry}})
}

// NewThreaded builds a machine with one thread per spec (len(specs) must
// not exceed cfg.Cores; cfg.Cores is raised to match).
func NewThreaded(prog *ir.Program, cfg Config, sch Scheme, specs []ThreadSpec) (*Machine, error) {
	if err := ir.VerifyProgram(prog); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	switch cfg.Kernel {
	case "", KernelBatched, KernelReference, KernelThreaded:
	default:
		return nil, fmt.Errorf("sim: unknown kernel %q (want %s|%s|%s)",
			cfg.Kernel, KernelReference, KernelBatched, KernelThreaded)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("sim: no threads")
	}
	if cfg.Cores < len(specs) {
		cfg.Cores = len(specs)
	}
	if cfg.Cores > MaxCores {
		return nil, fmt.Errorf("sim: %d cores exceeds the %d-core address map", cfg.Cores, MaxCores)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100_000_000
	}
	m := &Machine{
		Cfg:  cfg,
		Sch:  sch,
		Prog: prog,
		Mem:  mem.NewPagedMem(),
		NVM:  mem.NewPagedMem(),
		l2:   mem.NewCache("l2", cfg.L2Bytes, cfg.L2Ways, cfg.LineBytes),
	}
	if cfg.L3Bytes > 0 {
		m.l3 = mem.NewCache("l3", cfg.L3Bytes, cfg.L3Ways, cfg.LineBytes)
	}
	if sch.DRAMCache && cfg.DRAMBytes > 0 {
		m.dram = mem.NewDRAMCache(cfg.DRAMBytes, cfg.LineBytes)
	}
	ch := cfg.MCChannels
	if ch < 1 {
		ch = 1
	}
	for i := 0; i < cfg.NumMCs; i++ {
		m.wpqs = append(m.wpqs, persist.NewWPQ(cfg.WPQSize, cfg.NVMWriteBPC*float64(ch)))
	}

	m.funcIdx = map[string]int{}
	for n := range prog.Funcs {
		m.funcNames = append(m.funcNames, n)
	}
	sort.Strings(m.funcNames)
	for i, n := range m.funcNames {
		m.funcIdx[n] = i
	}
	m.fnNum = make(map[*ir.Function]int, len(m.funcNames))
	m.callees = map[*ir.Instr]*ir.Function{}
	for _, n := range m.funcNames {
		fn := prog.Funcs[n]
		m.fnNum[fn] = m.funcIdx[n]
		for _, b := range fn.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall {
					m.callees[&b.Instrs[i]] = prog.Funcs[b.Instrs[i].Callee]
				}
			}
		}
	}

	// The heap break lives in NVM.
	m.initWord(BrkAddr, HeapBase)

	for i, spec := range specs {
		fn := prog.Funcs[spec.Fn]
		if fn == nil {
			return nil, fmt.Errorf("sim: unknown thread function %q", spec.Fn)
		}
		if len(spec.Args) != fn.NParams {
			return nil, fmt.Errorf("sim: thread %s wants %d args, got %d", spec.Fn, fn.NParams, len(spec.Args))
		}
		c := &core{
			id:       i,
			l1d:      mem.NewCache("l1d", cfg.L1DBytes, cfg.L1DWays, cfg.LineBytes),
			wb:       mem.NewWriteBuffer(cfg.WBSize, cfg.WBDrainLat),
			path:     persist.NewPath(cfg.PBSize, cfg.PPBytesBPC, cfg.PPOneWayLat),
			rbt:      persist.NewRBT(cfg.RBTSize),
			stackPtr: StackStart(i),
		}
		if sch.DedupLines {
			c.lines = newLineSet()
		}
		f := &frame{fn: fn, regs: make([]int64, fn.NumRegs), dst: ir.NoReg}
		copy(f.regs, spec.Args)
		c.frames = []*frame{f}
		// Bootstrap: checkpoint the thread arguments so the entry region's
		// recovery slice can restore them (pre-existing NVM state).
		for ai, av := range spec.Args {
			m.initWord(CkptSlot(i, 0, ir.Reg(ai)), av)
		}
		// Bootstrap region: restart point is the thread entry.
		c.cur = m.openRegion(c, fn.Name, 0, ir.InstrRef{}, 0, c.stackPtr, 0)
		m.cores = append(m.cores, c)
	}
	return m, nil
}

// InitWord installs pre-existing state in both the architectural and
// persisted images (e.g. input datasets): present before cycle 0.
func (m *Machine) InitWord(addr, val int64) { m.initWord(addr, val) }

func (m *Machine) initWord(addr, val int64) {
	m.Mem.Store(addr, val)
	m.NVM.Store(addr, val)
}

func (m *Machine) openRegion(c *core, fn string, staticID int, ref ir.InstrRef, depth int, sp int64, start int64) *regionState {
	m.regionSeq++
	var ri *RegionInfo
	if n := len(c.freeInfos); n > 0 {
		ri = c.freeInfos[n-1]
		c.freeInfos = c.freeInfos[:n-1]
	} else {
		ri = &RegionInfo{}
	}
	*ri = RegionInfo{
		Seq: m.regionSeq, Core: c.id, Fn: fn, StaticID: staticID,
		Ref: ref, Depth: depth, StackPtr: sp, Start: start,
		Retire: math.MaxInt64,
	}
	if m.Cfg.Recoverable {
		m.Regions = append(m.Regions, ri)
	}
	var rs *regionState
	if n := len(c.freeRegions); n > 0 {
		rs = c.freeRegions[n-1]
		c.freeRegions = c.freeRegions[:n-1]
	} else {
		rs = &regionState{}
	}
	*rs = regionState{info: ri, startInstrs: c.instrs}
	if m.Sch.DedupLines {
		c.lines.reset()
	}
	return rs
}

// releaseRegion recycles a closed region's state (and, when the machine
// keeps no descriptor log, its RegionInfo) onto the core's free lists.
func (m *Machine) releaseRegion(c *core, rs *regionState) {
	if !m.Cfg.Recoverable {
		c.freeInfos = append(c.freeInfos, rs.info)
	}
	rs.info = nil
	c.freeRegions = append(c.freeRegions, rs)
}

// Run executes to completion (or error) with no crash.
func (m *Machine) Run() (*Result, error) {
	if err := m.RunUntil(math.MaxInt64); err != nil {
		return nil, err
	}
	return m.result(), nil
}

// RunUntil executes until every core is done or frozen at the crash cycle.
//
// Three behavior-identical kernels implement it — the batched fast
// kernel (kernel.go), the threaded-code backend (threaded.go), and the
// verbatim reference stepper (reference.go) — selected by Config.Kernel.
// The reference path is always taken when telemetry/tracing is attached,
// since only it carries the per-instruction probes. internal/simtest's
// N-way differential harness and fuzz targets hold all of them
// byte-identical.
func (m *Machine) RunUntil(crash int64) error {
	if m.tel != nil || m.tracer != nil {
		return m.runReference(crash)
	}
	switch m.Cfg.kernel() {
	case KernelReference:
		return m.runReference(crash)
	case KernelThreaded:
		return m.runThreaded(crash)
	default:
		return m.runFast(crash)
	}
}

// liveSimEvery is how many instructions the fast kernel executes between
// SimProgress reports. Coarse on purpose: the check is hoisted out of the
// per-instruction path wherever possible, and one event per ~4M
// instructions is ample resolution for a progress endpoint.
const liveSimEvery = 4 << 20

// SetLiveBus attaches a live event bus. The fast kernel publishes
// SimProgress deltas (instructions and core-local cycles advanced since
// the previous report); a nil bus restores the exact disabled path. The
// attachment never changes simulation results — it only reads counters.
func (m *Machine) SetLiveBus(b *live.Bus) {
	m.lbus = b
	m.liveNext = m.stats.Instrs + liveSimEvery
	m.liveInstrs = m.stats.Instrs
}

// publishSimProgress emits one SimProgress delta and re-arms the trigger.
func (m *Machine) publishSimProgress(cycle int64) {
	d := m.stats.Instrs - m.liveInstrs
	dc := cycle - m.liveCycles
	if dc < 0 {
		dc = 0 // a different core's local clock may lag the last reporter
	}
	m.liveInstrs = m.stats.Instrs
	m.liveCycles = cycle
	m.liveNext = m.stats.Instrs + liveSimEvery
	m.lbus.Publish(live.Event{Kind: live.SimProgress, Instrs: d, Cycles: dc})
}

func (m *Machine) result() *Result {
	r := &Result{Stats: m.CollectStats(), Output: m.Output, NVM: m.NVM, Mem: m.Mem}
	for _, c := range m.cores {
		r.Ret = append(r.Ret, c.ret)
	}
	return r
}

// CollectStats finalizes and returns run statistics.
func (m *Machine) CollectStats() Stats {
	s := m.stats
	var maxCycle int64
	var occ float64
	for _, c := range m.cores {
		fin := c.cycle
		if m.Sch.Persist && m.Sch.UseRBT {
			if d := c.rbt.DrainTime(c.cycle); d > fin {
				fin = d
			}
		}
		if fin > maxCycle {
			maxCycle = fin
		}
		s.PBStallCyc += c.path.PBStall
		s.RBTStallCyc += c.rbt.FullStall
		s.WBStallCyc += c.wb.FullStall
		s.WBDelayed += c.wb.Delayed
		s.PersistBytes += c.path.BytesSent
		s.L1DMisses += c.l1d.Misses
		s.L1DAccs += c.l1d.Hits + c.l1d.Misses
		occ += c.wb.AvgOccupancy()
	}
	s.Cycles = maxCycle
	s.WBAvgOcc = occ / float64(len(m.cores))
	s.L2Misses = m.l2.Misses
	s.L2Accs = m.l2.Hits + m.l2.Misses
	if m.dram != nil {
		s.DRAMMisses = m.dram.Misses
		s.DRAMAccs = m.dram.Hits + m.dram.Misses
	}
	return s
}

// --- memory access paths --------------------------------------------------

func (m *Machine) eff(lat int64) int64 {
	if lat <= 1 {
		return lat
	}
	e := int64(float64(lat) / m.Cfg.MLP)
	if e < 1 {
		e = 1
	}
	return e
}

func (m *Machine) mcOf(addr int64) int {
	return int(uint64(addr>>12) % uint64(len(m.wpqs)))
}

// missLatency descends the hierarchy below a missing L1D access and
// returns the added latency. write indicates a store-fill.
func (m *Machine) missLatency(c *core, addr int64, write bool) int64 {
	lat := int64(0)
	if hit, _ := m.l2.Access(addr, false); hit {
		return m.eff(m.Cfg.L2Lat)
	}
	lat += m.Cfg.L2Lat
	if m.l3 != nil {
		if hit, _ := m.l3.Access(addr, false); hit {
			return m.eff(lat + m.Cfg.L3Lat)
		}
		lat += m.Cfg.L3Lat
	}
	if m.dram != nil {
		if hit, _, _ := m.dram.Access(addr, write); hit {
			return m.eff(lat + m.Cfg.DRAMLat)
		}
		// DRAM-cache miss costs only the tag probe (memory-mode tags are
		// checked in the controller); the fill overlaps the NVM access.
		// Dirty victim writebacks are dropped in WSP mode (the persist
		// path already carried the data).
		lat += m.Cfg.DRAMLat / 4
	}
	m.stats.NVMReads++
	lat += m.Cfg.NVMReadLat
	// Loads reaching NVM may hit a pending WPQ entry (Section V-A2).
	if m.Sch.Persist {
		w := m.wpqs[m.mcOf(addr)]
		if p := w.PendingUntil(addr, c.cycle); p > c.cycle {
			m.stats.WPQHits++
			if m.Sch.WPQDelay {
				m.stats.WPQLoadDelay += p - c.cycle
				if m.tel != nil {
					m.tel.StallWPQLoad.Observe(p - c.cycle)
				}
				c.cycle = p
			}
		}
		w.Sweep(c.cycle)
	}
	return m.eff(lat)
}

func (m *Machine) handleEviction(c *core, ev mem.Evicted) {
	if !ev.Valid || !ev.Dirty {
		return
	}
	lineAddr := ev.Line * int64(m.Cfg.LineBytes)
	var persistReady int64
	if m.Sch.Persist && m.Sch.WBDelay {
		persistReady = c.path.LinePersistTime(lineAddr, c.cycle)
	}
	before := c.cycle
	c.cycle = c.wb.Insert(c.cycle, persistReady)
	if m.tel != nil && c.cycle > before {
		m.tel.StallWB.Observe(c.cycle - before)
	}
}

// memLoad performs an architectural load with timing.
func (m *Machine) memLoad(c *core, addr int64) int64 {
	val := m.Mem.Load(addr)
	hit, ev := c.l1d.Access(addr, false)
	m.handleEviction(c, ev)
	if !hit {
		c.cycle += m.missLatency(c, addr, false)
	}
	return val
}

// memStore performs an architectural store with timing and (scheme
// permitting) asynchronous persistence.
func (m *Machine) memStore(c *core, addr, val int64) {
	m.Mem.Store(addr, val)
	hit, ev := c.l1d.Access(addr, true)
	m.handleEviction(c, ev)
	if !hit {
		// Store-miss fills are half-hidden by the store buffer.
		c.cycle += m.missLatency(c, addr, true) / 2
	}
	if !m.Sch.Persist {
		return
	}

	bytes := m.Sch.GranularityBytes
	if bytes == 0 {
		bytes = 8
	}
	if m.Sch.DedupLines && c.cur != nil {
		line := addr &^ int64(m.Cfg.LineBytes-1)
		if c.lines.insert(line) {
			// Coalesced into an already-buffered redo line.
			m.NVM.Store(addr, val)
			return
		}
	}

	logged := false
	if m.Sch.MCSpec {
		logged = IsCkptArea(addr) || c.rbt.Occupancy(c.cycle) > 0
	}
	logBytes := 0
	if logged {
		switch {
		case m.Sch.LogBytes < 0:
			logBytes = 0 // idealized free logging (ablation)
		case m.Sch.LogBytes == 0:
			logBytes = 16 // default: address + old value
		default:
			logBytes = m.Sch.LogBytes
		}
		m.stats.LogBytes += int64(logBytes)
	}

	mc := m.mcOf(addr)
	commit := c.cycle
	proceed, admit := c.path.Send(commit, addr, bytes, m.wpqs[mc], int64(mc)*m.Cfg.NUMAStep, logBytes)
	c.cycle = proceed
	var old int64
	if m.Cfg.Recoverable {
		old = m.NVM.Load(addr) // journal needs the pre-store NVM word
	}
	m.NVM.Store(addr, val)
	if m.tel != nil {
		m.tel.PersistLat.Observe(admit - commit)
		if proceed > commit {
			m.tel.StallPB.Observe(proceed - commit)
		}
		if logged {
			m.tel.mcLogBytes[mc] += int64(logBytes)
		}
	}
	if m.tracer != nil {
		info := fmt.Sprintf("mc%d admit=%d", mc, admit)
		if logged {
			info += " logged"
		}
		seq := int64(0)
		if c.cur != nil {
			seq = c.cur.info.Seq
		}
		m.trace(TraceEvent{Kind: TracePersist, Core: c.id, Cycle: c.cycle,
			Region: seq, Addr: addr, Admit: admit, MC: mc, Info: info})
	}
	if c.cur != nil && admit > c.cur.persistMax {
		c.cur.persistMax = admit
	}
	if m.Cfg.Recoverable {
		seq := int64(0)
		if c.cur != nil {
			seq = c.cur.info.Seq
		}
		rec := persist.Rec{
			Addr: addr, Old: old, New: val, Admit: admit,
			Region: seq, Logged: logged, Core: c.id,
			MC: mc, MCSeq: m.wpqs[mc].Admits,
		}
		rec.Seal = sealRec(&rec)
		m.Journal = append(m.Journal, rec)
	}
}

// syncStore persists a store synchronously at the group-commit instant
// (used by synchronizing ops, whose groups commit atomically with respect
// to crashes: every store in one group carries the same persistence
// timestamp, so a crash either sees the whole group or none of it).
func (m *Machine) syncStore(c *core, addr, val int64, logged bool, commit int64) {
	m.Mem.Store(addr, val)
	c.l1d.Access(addr, true) // keep cache state warm; evictions immaterial here
	if !m.Sch.Persist {
		return
	}
	var old int64
	if m.Cfg.Recoverable {
		old = m.NVM.Load(addr)
	}
	m.NVM.Store(addr, val)
	if m.Cfg.Recoverable {
		seq := int64(0)
		if c.cur != nil {
			seq = c.cur.info.Seq
		}
		// Synchronous persists bypass the WPQ (MCSeq 0): the drain-ledger
		// cross-check does not cover them, but their records are sealed.
		rec := persist.Rec{
			Addr: addr, Old: old, New: val, Admit: commit,
			Region: seq, Logged: logged, Core: c.id,
		}
		rec.Seal = sealRec(&rec)
		m.Journal = append(m.Journal, rec)
	}
}

// --- instruction stepping ---------------------------------------------------

type coreEnv struct {
	m *Machine
	c *core
}

func (e coreEnv) Load(addr int64) int64  { return e.m.memLoad(e.c, addr) }
func (e coreEnv) Store(addr, val int64)  { e.m.memStore(e.c, addr, val) }
func (e coreEnv) Alloc(size int64) int64 { panic("sim: alloc must take the sync path") }
func (e coreEnv) Emit(v int64)           { panic("sim: emit must take the sync path") }

// handleBoundary commits a region boundary: the running region closes and
// a new one opens with this boundary as its recovery point.
func (m *Machine) handleBoundary(c *core, f *frame, in *ir.Instr) {
	m.closeRegion(c)
	c.cycle += 1 + m.Sch.BoundaryExtraLat
	ref := ir.InstrRef{Block: f.blk, Index: f.pc}
	c.cur = m.openRegion(c, f.fn.Name, in.RegionID, ref, f.depth, c.stackPtr, c.cycle)
	m.stats.Regions++
	if m.tracer != nil {
		m.trace(TraceEvent{Kind: TraceRegion, Core: c.id, Cycle: c.cycle,
			Region: c.cur.info.Seq, Info: fmt.Sprintf("%s b%d[%d]", f.fn.Name, ref.Block, ref.Index)})
	}
}

// closeRegion finishes the running region, pushing it into the RBT (cWSP)
// or stalling for its persistence (prior schemes).
func (m *Machine) closeRegion(c *core) {
	cur := c.cur
	if cur == nil {
		return
	}
	closeCycle := c.cycle
	if !m.Sch.Persist {
		cur.info.Retire = c.cycle
		m.finishRegion(c, cur, closeCycle)
		m.releaseRegion(c, cur)
		c.cur = nil
		return
	}
	switch {
	case m.Sch.UseRBT:
		proceed, retire := c.rbt.Push(c.cycle, cur.persistMax)
		if m.tel != nil && proceed > c.cycle {
			m.tel.StallRBT.Observe(proceed - c.cycle)
		}
		c.cycle = proceed
		cur.info.Retire = retire
	case m.Sch.BoundaryStall:
		if cur.persistMax > c.cycle {
			m.stats.BoundaryStall += cur.persistMax - c.cycle
			if m.tel != nil {
				m.tel.StallBoundary.Observe(cur.persistMax - c.cycle)
			}
			c.cycle = cur.persistMax
		}
		cur.info.Retire = c.cycle
	default:
		// Battery-backed buffering (Capri): the region is durable once
		// buffered; no core-visible stall.
		r := cur.persistMax
		if r < c.cycle {
			r = c.cycle
		}
		cur.info.Retire = r
	}
	m.finishRegion(c, cur, closeCycle)
	m.releaseRegion(c, cur)
	c.cur = nil
}

// finishRegion records a closing region's telemetry (length, checkpoint
// density) and emits its end-of-span trace event. closeCycle is the cycle
// the region stopped executing (before any retirement stall); the trace
// event carries the retire (durability) instant in Admit and the region's
// start cycle in Addr so exporters can rebuild the full span.
func (m *Machine) finishRegion(c *core, cur *regionState, closeCycle int64) {
	if m.tel != nil {
		m.tel.RegionInstrs.Observe(c.instrs - cur.startInstrs)
		m.tel.RegionCycles.Observe(closeCycle - cur.info.Start)
		m.tel.RegionCkpts.Observe(cur.ckpts)
	}
	if m.tracer != nil {
		m.trace(TraceEvent{Kind: TraceRegionEnd, Core: c.id, Cycle: closeCycle,
			Region: cur.info.Seq, Addr: cur.info.Start, Admit: cur.info.Retire,
			Info: cur.info.Fn})
	}
}

// handleSyncGroup executes a synchronizing op (atomic, fence, alloc, emit)
// and — in compiled programs — the checkpoint+boundary group that follows
// it, committing the whole group at one instant so the recovery point
// always advances past irrevocable effects atomically.
func (m *Machine) handleSyncGroup(c *core, f *frame, in *ir.Instr) {
	// Cross-core ordering: this synchronizing op executes functionally
	// after every earlier sync op (step order); its cycle timestamp must
	// not precede theirs.
	if len(m.cores) > 1 && c.cycle <= m.syncClock {
		c.cycle = m.syncClock + 1
	}
	// Persist-ordering: all prior regions and the current region's stores
	// must be durable before a synchronization point commits.
	if m.Sch.Persist {
		target := c.rbt.DrainTime(c.cycle)
		if m.Sch.UseRBT || m.Sch.BoundaryStall {
			if c.cur != nil && c.cur.persistMax > target {
				target = c.cur.persistMax
			}
		}
		if target > c.cycle {
			m.stats.DrainStallCyc += target - c.cycle
			if m.tel != nil {
				m.tel.StallDrain.Observe(target - c.cycle)
			}
			c.cycle = target
		}
	}
	// Every persist in this group is stamped with the group-commit
	// instant, and the closing region retires exactly then — so a crash
	// either includes the entire group (retired, never re-executed) or
	// none of it (all its NVM effects undone, region re-executed).
	commit := c.cycle
	if commit > m.syncClock {
		m.syncClock = commit
	}
	if m.tracer != nil {
		seq := int64(0)
		if c.cur != nil {
			seq = c.cur.info.Seq
		}
		m.trace(TraceEvent{Kind: TraceSync, Core: c.id, Cycle: commit,
			Region: seq, Info: in.Op.String()})
	}
	c.cycle += m.Cfg.AtomicLat

	// Execute the op functionally with synchronous persistence.
	regs := f.regs
	switch in.Op {
	case ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAtomicXchg:
		addr := ir.EffAddr(in, regs)
		// Timing: treat like a load for the cache walk.
		hit, ev := c.l1d.Access(addr, true)
		m.handleEviction(c, ev)
		if !hit {
			c.cycle += m.missLatency(c, addr, true)
		}
		old := m.Mem.Load(addr)
		switch in.Op {
		case ir.OpAtomicCAS:
			if old == opVal(in.B, regs) {
				m.syncStore(c, addr, opVal(in.C, regs), false, commit)
			}
		case ir.OpAtomicAdd:
			m.syncStore(c, addr, old+opVal(in.B, regs), false, commit)
		case ir.OpAtomicXchg:
			m.syncStore(c, addr, opVal(in.B, regs), false, commit)
		}
		regs[in.Dst] = old
		if m.Sch.Persist {
			c.cycle += 2 * m.Cfg.PPOneWayLat
		}
	case ir.OpFence:
		// Ordering only.
	case ir.OpAlloc:
		size := opVal(in.A, regs)
		if size <= 0 {
			size = 8
		}
		size = (size + 63) &^ 63
		brk := m.Mem.Load(BrkAddr)
		m.syncStore(c, BrkAddr, brk+size, false, commit)
		regs[in.Dst] = brk
		if m.Sch.Persist {
			c.cycle += 2 * m.Cfg.PPOneWayLat
		}
	case ir.OpEmit:
		v := opVal(in.A, regs)
		n := m.Mem.Load(EmitBase)
		m.syncStore(c, EmitBase+8*(n+1), v, false, commit)
		m.syncStore(c, EmitBase, n+1, false, commit)
		m.Output = append(m.Output, v)
		if m.Sch.Persist {
			c.cycle += 2 * m.Cfg.PPOneWayLat
		}
	}
	f.pc++

	// Commit any trailing checkpoint+boundary group at the same instant.
	blk := f.fn.Blocks[f.blk]
	for f.pc < len(blk.Instrs) {
		nxt := &blk.Instrs[f.pc]
		if nxt.Op == ir.OpCkpt {
			m.stats.Ckpts++
			m.stats.Instrs++
			c.instrs++
			if m.tel != nil && c.cur != nil {
				c.cur.ckpts++
			}
			m.syncStore(c, CkptSlot(c.id, f.depth, nxt.A.Reg), f.regs[nxt.A.Reg], true, commit)
			c.cycle++
			f.pc++
			continue
		}
		if nxt.Op == ir.OpBoundary {
			m.stats.Boundaries++
			m.stats.Instrs++
			c.instrs++
			m.stats.Regions++
			// Close the group's region: it retires at the group commit
			// (everything in it persisted synchronously).
			if cur := c.cur; cur != nil {
				cur.info.Retire = commit
				m.finishRegion(c, cur, commit)
				m.releaseRegion(c, cur)
				c.cur = nil
			}
			c.cycle++
			ref := ir.InstrRef{Block: f.blk, Index: f.pc}
			c.cur = m.openRegion(c, f.fn.Name, nxt.RegionID, ref, f.depth, c.stackPtr, c.cycle)
			f.pc++
		}
		break
	}
}

func opVal(o ir.Operand, regs []int64) int64 {
	if o.Kind == ir.OperandImm {
		return o.Imm
	}
	return regs[o.Reg]
}

// handleCall applies the calling convention: spill live-across registers
// and a frame record to the NVM stack, checkpoint the arguments into the
// callee frame's slots, then transfer control.
func (m *Machine) handleCall(c *core, f *frame, in *ir.Instr) {
	ref := ir.InstrRef{Block: f.blk, Index: f.pc}
	spills := f.fn.LiveAcross[ref]
	base := c.stackPtr

	for i, r := range spills {
		m.memStore(c, base+int64(i)*8, f.regs[r])
		m.stats.SpillStores++
		c.cycle++
	}
	rec := base + int64(len(spills))*8
	m.memStore(c, rec, int64(m.fnNum[f.fn]))
	m.memStore(c, rec+8, int64(f.blk)<<32|int64(f.pc))
	m.memStore(c, rec+16, base)
	m.memStore(c, rec+24, int64(len(in.Args)))
	c.cycle += 2

	callee := m.callees[in]
	if callee == nil {
		callee = m.Prog.Funcs[in.Callee]
	}
	var nf *frame
	if n := len(c.freeFrames); n > 0 {
		nf = c.freeFrames[n-1]
		c.freeFrames = c.freeFrames[:n-1]
	} else {
		nf = &frame{}
	}
	regs := nf.regs
	if cap(regs) < callee.NumRegs {
		regs = make([]int64, callee.NumRegs)
	} else {
		regs = regs[:callee.NumRegs]
		clear(regs)
	}
	*nf = frame{
		fn:        callee,
		regs:      regs,
		dst:       in.Dst,
		depth:     f.depth + 1,
		spillBase: base,
		spillList: spills,
		resumeBlk: f.blk,
		resumePC:  f.pc + 1,
	}
	if nf.depth >= MaxDepth {
		panic(fmt.Sprintf("sim: call depth exceeds %d", MaxDepth))
	}
	for i, a := range in.Args {
		v := opVal(a, f.regs)
		nf.regs[i] = v
		// Argument checkpoints (ckpt area => always undo-logged).
		m.memStore(c, CkptSlot(c.id, nf.depth, ir.Reg(i)), v)
		c.cycle++
	}
	c.stackPtr = rec + frameRecordWords*8
	c.frames = append(c.frames, nf)
	c.cycle += m.Cfg.CallLat
	if m.tracer != nil {
		m.trace(TraceEvent{Kind: TraceCall, Core: c.id, Cycle: c.cycle,
			Info: fmt.Sprintf("%s -> %s depth=%d", f.fn.Name, in.Callee, nf.depth)})
	}
}

// handleRet pops the frame, restoring the caller's spilled registers from
// the NVM stack.
func (m *Machine) handleRet(c *core, eff ir.Effect) {
	fin := c.frames[len(c.frames)-1]
	c.frames = c.frames[:len(c.frames)-1]
	if len(c.frames) == 0 {
		c.done = true
		if eff.HasRet {
			c.ret = eff.RetVal
		}
		m.closeRegion(c)
		return
	}
	parent := c.frames[len(c.frames)-1]
	for i, r := range fin.spillList {
		parent.regs[r] = m.memLoad(c, fin.spillBase+int64(i)*8)
		m.stats.RestoreLoads++
		c.cycle++
	}
	if eff.HasRet && fin.dst != ir.NoReg {
		parent.regs[fin.dst] = eff.RetVal
	}
	parent.blk, parent.pc = fin.resumeBlk, fin.resumePC
	c.stackPtr = fin.spillBase
	c.cycle += m.Cfg.CallLat
	if m.tracer != nil {
		m.trace(TraceEvent{Kind: TraceRet, Core: c.id, Cycle: c.cycle,
			Info: fmt.Sprintf("%s <- %s", parent.fn.Name, fin.fn.Name)})
	}
	// Recycle the popped frame (spillList belongs to the function's
	// LiveAcross table, so only the frame record itself is reused).
	fin.spillList = nil
	c.freeFrames = append(c.freeFrames, fin)
}

// Halted reports whether the machine has drained every runnable core
// (completed, or frozen at a crash cycle).
func (m *Machine) Halted() bool { return m.halted }
