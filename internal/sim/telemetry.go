package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"cwsp/internal/telemetry"
)

// TelemetryOptions configures the machine's telemetry attachment.
type TelemetryOptions struct {
	// SampleInterval is the gauge-snapshot period in cycles (default 4096).
	SampleInterval int64
	// SampleCap bounds the time-series ring; once full the oldest samples
	// are overwritten, so sampler memory is O(SampleCap) regardless of run
	// length (default 4096).
	SampleCap int
}

// Telemetry is a machine's observability attachment: a periodic gauge
// sampler plus log-bucketed histograms of the latencies and lengths the
// paper's evaluation figures are built from. It is nil by default — every
// hot-path instrumentation point is behind a single `m.tel != nil` check,
// so a machine without telemetry pays one predictable branch per probe and
// allocates nothing.
//
// Sampled columns, per core i and memory controller j:
//
//	c<i>.wb    L1D write-buffer occupancy (entries)
//	c<i>.pb    persist-buffer occupancy (entries)
//	c<i>.rbt   unretired regions in the RBT
//	c<i>.ipc   instructions per cycle since the previous sample
//	mc<j>.wpq      WPQ entries still in flight
//	mc<j>.backlog  cycles of queued NVM media work at the MC
//	mc<j>.logbytes cumulative undo-log bytes written at the MC
//	persist.inflight_bytes  bytes buffered in all persist paths
//	persist.send_backlog    cycles of committed persist-path send bandwidth
//
// Samples are taken at the stepping core's local cycle, which the
// scheduler keeps within one instruction of the global minimum.
type Telemetry struct {
	Sampler *telemetry.Sampler

	// PersistLat is the store commit → durable (WPQ admission) latency.
	PersistLat *telemetry.Histogram
	// RegionInstrs / RegionCycles are dynamic region lengths.
	RegionInstrs *telemetry.Histogram
	RegionCycles *telemetry.Histogram
	// RegionCkpts counts checkpoint stores per dynamic region.
	RegionCkpts *telemetry.Histogram
	// Stall* are stall-burst durations by cause (one burst = one sample).
	StallPB       *telemetry.Histogram
	StallWB       *telemetry.Histogram
	StallRBT      *telemetry.Histogram
	StallDrain    *telemetry.Histogram
	StallBoundary *telemetry.Histogram
	StallWPQLoad  *telemetry.Histogram

	m          *Machine
	mcLogBytes []int64
	lastInstrs []int64
	lastCycle  int64
	scratch    []float64
}

// EnableTelemetry attaches telemetry to the machine (call before Run).
// Passing the zero TelemetryOptions selects the defaults.
func (m *Machine) EnableTelemetry(opt TelemetryOptions) *Telemetry {
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = 4096
	}
	if opt.SampleCap <= 0 {
		opt.SampleCap = 4096
	}
	cols := make([]string, 0, 4*len(m.cores)+3*len(m.wpqs)+2)
	for i := range m.cores {
		cols = append(cols,
			fmt.Sprintf("c%d.wb", i), fmt.Sprintf("c%d.pb", i),
			fmt.Sprintf("c%d.rbt", i), fmt.Sprintf("c%d.ipc", i))
	}
	for j := range m.wpqs {
		cols = append(cols,
			fmt.Sprintf("mc%d.wpq", j), fmt.Sprintf("mc%d.backlog", j),
			fmt.Sprintf("mc%d.logbytes", j))
	}
	cols = append(cols, "persist.inflight_bytes", "persist.send_backlog")

	t := &Telemetry{
		Sampler:       telemetry.NewSampler(opt.SampleInterval, opt.SampleCap, cols...),
		PersistLat:    telemetry.NewHistogram("persist_lat"),
		RegionInstrs:  telemetry.NewHistogram("region_instrs"),
		RegionCycles:  telemetry.NewHistogram("region_cycles"),
		RegionCkpts:   telemetry.NewHistogram("region_ckpts"),
		StallPB:       telemetry.NewHistogram("stall.pb"),
		StallWB:       telemetry.NewHistogram("stall.wb"),
		StallRBT:      telemetry.NewHistogram("stall.rbt"),
		StallDrain:    telemetry.NewHistogram("stall.drain"),
		StallBoundary: telemetry.NewHistogram("stall.boundary"),
		StallWPQLoad:  telemetry.NewHistogram("stall.wpq_load"),

		m:          m,
		mcLogBytes: make([]int64, len(m.wpqs)),
		lastInstrs: make([]int64, len(m.cores)),
		scratch:    make([]float64, 0, len(cols)),
	}
	m.tel = t
	return t
}

// Telemetry returns the machine's telemetry attachment (nil when disabled).
func (m *Machine) Telemetry() *Telemetry { return m.tel }

// sample snapshots every gauge at cycle now. Occupancy queries only
// garbage-collect already-drained schedule entries, so sampling never
// perturbs timing (property-tested).
func (t *Telemetry) sample(now int64) {
	vals := t.scratch[:0]
	dc := now - t.lastCycle
	gran := t.m.Sch.GranularityBytes
	if gran == 0 {
		gran = 8
	}
	inflight, sendBacklog := 0, int64(0)
	for i, c := range t.m.cores {
		pb := c.path.Occupancy(now)
		inflight += pb
		sendBacklog += c.path.SendBacklog(now)
		ipc := 0.0
		if dc > 0 {
			ipc = float64(c.instrs-t.lastInstrs[i]) / float64(dc)
		}
		t.lastInstrs[i] = c.instrs
		vals = append(vals, float64(c.wb.Occupancy(now)), float64(pb),
			float64(c.rbt.Occupancy(now)), ipc)
	}
	for j, w := range t.m.wpqs {
		vals = append(vals, float64(w.Occupancy(now)), float64(w.Backlog(now)),
			float64(t.mcLogBytes[j]))
	}
	vals = append(vals, float64(inflight*gran), float64(sendBacklog))
	t.lastCycle = now
	t.Sampler.Record(now, vals...)
}

// Histograms returns every histogram keyed by name.
func (t *Telemetry) Histograms() map[string]*telemetry.Histogram {
	hs := []*telemetry.Histogram{
		t.PersistLat, t.RegionInstrs, t.RegionCycles, t.RegionCkpts,
		t.StallPB, t.StallWB, t.StallRBT, t.StallDrain, t.StallBoundary,
		t.StallWPQLoad,
	}
	out := make(map[string]*telemetry.Histogram, len(hs))
	for _, h := range hs {
		out[h.Name] = h
	}
	return out
}

// Summaries digests every histogram for the run manifest.
func (t *Telemetry) Summaries() map[string]telemetry.HistSummary {
	out := map[string]telemetry.HistSummary{}
	for name, h := range t.Histograms() {
		out[name] = h.Summary()
	}
	return out
}

// WriteSeriesCSV writes the sampled time series as CSV.
func (t *Telemetry) WriteSeriesCSV(w io.Writer) error { return t.Sampler.WriteCSV(w) }

// BuildManifest assembles the versioned run manifest: machine config, raw
// aggregate stats, derived metrics, and — when telemetry is enabled —
// histogram digests and the time-series shape.
func (m *Machine) BuildManifest(tool, workload, scale string) (*telemetry.Manifest, error) {
	man := telemetry.NewManifest(tool)
	man.Workload = workload
	man.Scheme = m.Sch.Name
	man.Scale = scale

	cfgRaw, err := json.Marshal(m.Cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: marshal config: %w", err)
	}
	man.Config = cfgRaw
	st := m.CollectStats()
	stRaw, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("sim: marshal stats: %w", err)
	}
	man.Stats = stRaw
	man.Derived = st.Derived()

	if m.tel != nil {
		man.Histograms = m.tel.Summaries()
		info := m.tel.Sampler.Info()
		man.Series = &info
	}
	return man, nil
}
