package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cwsp/internal/ir"
)

// This file is the threaded-code kernel: the third RunUntil
// implementation, behavior-identical to the reference stepper
// (reference.go) and the batched fast kernel (kernel.go) — the simtest
// N-way differential harness and FuzzThreadedEquivalence enforce
// byte-identical results, stats, crash states, and recovery outcomes.
//
// Where the batched kernel still decodes every instruction through one
// big switch, this backend translates each function ONCE, at first run,
// into a flat array of specialized closures:
//
//   - one closure per instruction, chosen by (opcode, operand shape) at
//     translation time, with register numbers, immediates, offsets, and
//     branch targets pre-resolved into the closure's captured variables;
//   - blocks flattened into a single code array per function, so a
//     branch is "return the precomputed flat index" and the run loop is
//     `fpc = code[fpc](m, c, f)` — no switch, no operand decode, no
//     block/pc indirection on the hot path;
//   - adjacent compare+branch pairs fused into one closure (the dominant
//     loop-control idiom in compiled programs), with the scheduler/crash
//     bounds re-checked between the two halves so the pair remains
//     interruptible at exactly the same points as the unfused sequence.
//
// Frame state is maintained lazily: straight-line and branch closures
// never write f.blk/f.pc; only the closures that call into shared
// machinery which reads them (boundary, call, sync group) materialize
// them first, and the driver writes them back from the flat index when
// it stops — so a crash freezes byte-identical frame state.
//
// Rare control transfers (call/ret, and anything that changes the frame
// stack) return tcResync and the driver re-derives (frame, code array,
// flat pc); everything else stays in the flat loop. All persist, region,
// and call machinery is shared with the other kernels (machine.go), so
// the three kernels have one definition of every memory-system path.
//
// Translation is cached per program behind a sync.Once, keyed by the
// program pointer plus the process-wide code-version salt (the runner's
// ResultsSalt, injected via SetCodeSalt): bumping the salt — the same
// act that invalidates on-disk cell caches — also drops compiled code.

// tOp executes one instruction and returns the next flat code index, or
// tcResync if the frame stack changed (call/ret) or the driver must
// re-evaluate its stop conditions (fused pair interrupted, core done).
type tOp func(m *Machine, c *core, f *frame) int

// tcResync tells the driver to re-derive (frame, tFunc, flat pc) from
// the core's frame stack before continuing.
const tcResync = -1

// tFunc is one translated function: its blocks flattened into code, with
// base mapping block index -> first flat index and loc mapping flat
// index -> (block, index) for frame-state writeback.
type tFunc struct {
	code []tOp
	base []int
	loc  []ir.InstrRef
}

// tProg is one translated program.
type tProg struct {
	fns map[*ir.Function]*tFunc
}

// --- translation cache ------------------------------------------------------

// tcacheMax bounds the process-wide cache so long-lived daemons (cwspd)
// running unbounded streams of generated programs cannot leak compiled
// code; overflowing flushes the whole map (entries in flight still
// complete through their own entry pointers).
const tcacheMax = 256

type tcacheEntry struct {
	once sync.Once
	tp   *tProg
}

var (
	tcacheMu   sync.Mutex
	tcacheSalt string
	tcache     = map[*ir.Program]*tcacheEntry{}
	// tcompiles counts actual translations (not cache hits); the simtest
	// race test pins "two concurrent first runs, one compile".
	tcompiles atomic.Int64
)

// SetCodeSalt keys the translation cache to a code-version salt (the
// runner injects bench.ResultsSalt). Changing the salt drops every
// cached translation, mirroring how the on-disk cell cache treats the
// salt as part of every key.
func SetCodeSalt(salt string) {
	tcacheMu.Lock()
	defer tcacheMu.Unlock()
	if salt == tcacheSalt {
		return
	}
	tcacheSalt = salt
	tcache = map[*ir.Program]*tcacheEntry{}
}

// threadedFor returns the cached translation of p, translating at most
// once per (program, salt) across all machines and goroutines.
func threadedFor(p *ir.Program) *tProg {
	tcacheMu.Lock()
	e := tcache[p]
	if e == nil {
		if len(tcache) >= tcacheMax {
			tcache = map[*ir.Program]*tcacheEntry{}
		}
		e = &tcacheEntry{}
		tcache[p] = e
	}
	tcacheMu.Unlock()
	e.once.Do(func() {
		tcompiles.Add(1)
		e.tp = translateProgram(p)
	})
	return e.tp
}

// threaded returns this machine's translation, resolving the cache once.
func (m *Machine) threaded() *tProg {
	if m.tc == nil {
		m.tc = threadedFor(m.Prog)
	}
	return m.tc
}

// --- translation ------------------------------------------------------------

func translateProgram(p *ir.Program) *tProg {
	tp := &tProg{fns: make(map[*ir.Function]*tFunc, len(p.Funcs))}
	for _, fn := range p.Funcs {
		tp.fns[fn] = translateFunc(fn)
	}
	return tp
}

func translateFunc(fn *ir.Function) *tFunc {
	tf := &tFunc{base: make([]int, len(fn.Blocks))}
	n := 0
	for bi, b := range fn.Blocks {
		tf.base[bi] = n
		n += len(b.Instrs)
	}
	tf.code = make([]tOp, n)
	tf.loc = make([]ir.InstrRef, n)
	for bi, b := range fn.Blocks {
		for ii := range b.Instrs {
			flat := tf.base[bi] + ii
			tf.loc[flat] = ir.InstrRef{Block: bi, Index: ii}
			tf.code[flat] = tf.translate(fn, bi, ii)
		}
	}
	// Superinstruction pass: fuse compare+branch pairs. The branch slot
	// keeps its standalone closure — control can still enter there (a
	// run stopped between the halves resumes at the branch).
	fused := make([]bool, n)
	for bi, b := range fn.Blocks {
		for ii := 0; ii+1 < len(b.Instrs); ii++ {
			if op := tf.fuseCmpBr(fn, bi, ii); op != nil {
				tf.code[tf.base[bi]+ii] = op
				fused[tf.base[bi]+ii] = true
			}
		}
	}
	tf.buildSuperblocks(fn, fused)
	return tf
}

// tSimple reports whether the instruction is a pure register op with a
// fixed one-cycle advance: its closure only writes f.regs and c.cycle
// and falls through to the next slot. These are the ops a superblock
// may execute back to back under one amortized stop-condition check.
func tSimple(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpSelect,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		return true
	}
	return false
}

// buildSuperblocks replaces the first slot of every straight-line run
// (>= 1 simple ops plus the following instruction as a tail, all within
// one block) with a closure that checks the driver's stop conditions
// once for the whole run and then executes the members back to back.
// This is where threaded code wins big: the per-instruction driver
// bookkeeping (bound compare, MaxSteps check, two stat increments, live
// trigger) collapses to one check per run.
//
// Equivalence argument: between simple ops nothing externally observable
// happens (registers and the cycle counter only), so the batched
// kernel's per-instruction checks can be evaluated in advance — the
// cycle advances exactly one per member before the tail, and the stop
// predicate is monotone in the cycle, so checking it at the last
// pre-tail cycle covers every intermediate one. If the run does not
// provably fit (crash, scheduling bound, or MaxSteps could trip
// mid-run), the closure executes only its first member and returns to
// the driver, which proceeds instruction by instruction through the
// members' own untouched slots — byte-identical stops, errors, and
// frozen frames.
// tMaxRun caps superblock length: a bounded run both limits how much
// cycle headroom the single up-front check demands (keeping the fast
// path hot in tightly bounded multicore batches) and bounds how late a
// live progress report can fire.
const tMaxRun = 24

// tBare builds the register-effect-only form of a simple op (tSimple):
// no cycle accounting, no successor index. Superblock bodies run these
// back to back, advancing cycle and instruction counters in bulk — the
// counters are unobservable between pure register ops, so only the
// totals the tail and the driver see must match the batched kernel.
func tBare(in *ir.Instr) func(*frame) {
	dst := in.Dst
	switch in.Op {
	case ir.OpConst:
		v := in.A.Imm
		return func(f *frame) { f.regs[dst] = v }
	case ir.OpMov:
		if in.A.IsImm() {
			v := in.A.Imm
			return func(f *frame) { f.regs[dst] = v }
		}
		a := in.A.Reg
		return func(f *frame) { f.regs[dst] = f.regs[a] }
	case ir.OpSelect:
		b, cc := in.B, in.C
		if in.A.IsImm() {
			picked := cc
			if in.A.Imm != 0 {
				picked = b
			}
			if picked.IsImm() {
				v := picked.Imm
				return func(f *frame) { f.regs[dst] = v }
			}
			a := picked.Reg
			return func(f *frame) { f.regs[dst] = f.regs[a] }
		}
		a := in.A.Reg
		return func(f *frame) {
			regs := f.regs
			if regs[a] != 0 {
				regs[dst] = opVal(b, regs)
			} else {
				regs[dst] = opVal(cc, regs)
			}
		}
	}
	op, a, b := in.Op, in.A, in.B
	if a.IsImm() && b.IsImm() {
		v := aluEval(op, a.Imm, b.Imm)
		return func(f *frame) { f.regs[dst] = v }
	}
	if a.IsImm() {
		av, br := a.Imm, b.Reg
		return func(f *frame) { f.regs[dst] = aluEval(op, av, f.regs[br]) }
	}
	ar := a.Reg
	if b.IsImm() {
		bv := b.Imm
		switch op {
		case ir.OpAdd:
			return func(f *frame) { f.regs[dst] = f.regs[ar] + bv }
		case ir.OpSub:
			return func(f *frame) { f.regs[dst] = f.regs[ar] - bv }
		case ir.OpMul:
			return func(f *frame) { f.regs[dst] = f.regs[ar] * bv }
		case ir.OpAnd:
			return func(f *frame) { f.regs[dst] = f.regs[ar] & bv }
		case ir.OpOr:
			return func(f *frame) { f.regs[dst] = f.regs[ar] | bv }
		case ir.OpXor:
			return func(f *frame) { f.regs[dst] = f.regs[ar] ^ bv }
		case ir.OpShl:
			sh := uint64(bv) & 63
			return func(f *frame) { f.regs[dst] = f.regs[ar] << sh }
		case ir.OpShr:
			sh := uint64(bv) & 63
			return func(f *frame) { f.regs[dst] = int64(uint64(f.regs[ar]) >> sh) }
		case ir.OpCmpEQ:
			return func(f *frame) { f.regs[dst] = b2i(f.regs[ar] == bv) }
		case ir.OpCmpNE:
			return func(f *frame) { f.regs[dst] = b2i(f.regs[ar] != bv) }
		case ir.OpCmpLT:
			return func(f *frame) { f.regs[dst] = b2i(f.regs[ar] < bv) }
		case ir.OpCmpLE:
			return func(f *frame) { f.regs[dst] = b2i(f.regs[ar] <= bv) }
		case ir.OpCmpGT:
			return func(f *frame) { f.regs[dst] = b2i(f.regs[ar] > bv) }
		case ir.OpCmpGE:
			return func(f *frame) { f.regs[dst] = b2i(f.regs[ar] >= bv) }
		default:
			return func(f *frame) { f.regs[dst] = aluEval(op, f.regs[ar], bv) }
		}
	}
	br := b.Reg
	switch op {
	case ir.OpAdd:
		return func(f *frame) { regs := f.regs; regs[dst] = regs[ar] + regs[br] }
	case ir.OpSub:
		return func(f *frame) { regs := f.regs; regs[dst] = regs[ar] - regs[br] }
	case ir.OpMul:
		return func(f *frame) { regs := f.regs; regs[dst] = regs[ar] * regs[br] }
	case ir.OpAnd:
		return func(f *frame) { regs := f.regs; regs[dst] = regs[ar] & regs[br] }
	case ir.OpOr:
		return func(f *frame) { regs := f.regs; regs[dst] = regs[ar] | regs[br] }
	case ir.OpXor:
		return func(f *frame) { regs := f.regs; regs[dst] = regs[ar] ^ regs[br] }
	case ir.OpCmpEQ:
		return func(f *frame) { regs := f.regs; regs[dst] = b2i(regs[ar] == regs[br]) }
	case ir.OpCmpNE:
		return func(f *frame) { regs := f.regs; regs[dst] = b2i(regs[ar] != regs[br]) }
	case ir.OpCmpLT:
		return func(f *frame) { regs := f.regs; regs[dst] = b2i(regs[ar] < regs[br]) }
	case ir.OpCmpLE:
		return func(f *frame) { regs := f.regs; regs[dst] = b2i(regs[ar] <= regs[br]) }
	case ir.OpCmpGT:
		return func(f *frame) { regs := f.regs; regs[dst] = b2i(regs[ar] > regs[br]) }
	case ir.OpCmpGE:
		return func(f *frame) { regs := f.regs; regs[dst] = b2i(regs[ar] >= regs[br]) }
	default:
		return func(f *frame) { regs := f.regs; regs[dst] = aluEval(op, regs[ar], regs[br]) }
	}
}

func (tf *tFunc) buildSuperblocks(fn *ir.Function, fused []bool) {
	for bi, b := range fn.Blocks {
		for ii := 0; ii < len(b.Instrs); {
			start := tf.base[bi] + ii
			// A fused compare consumes two instructions and already has
			// its own mid-pair check; skip past the pair.
			if fused[start] {
				ii += 2
				continue
			}
			if !tSimple(&b.Instrs[ii]) {
				ii++
				continue
			}
			s := ii
			for s < len(b.Instrs) && tSimple(&b.Instrs[s]) && !fused[tf.base[bi]+s] {
				s++
			}
			// Chunk long runs: a shorter run is far more likely to fit
			// inside a bounded multicore batch (fast path taken), and the
			// last segment absorbs the first non-simple slot as its tail.
			for seg := ii; seg < s; {
				segLen := s - seg
				if segLen > tMaxRun {
					segLen = tMaxRun
				}
				k := segLen
				if seg+segLen == s && s < len(b.Instrs) {
					k++ // one tail: the first non-simple (or fused) slot
				}
				if k >= 2 {
					st := tf.base[bi] + seg
					bares := make([]func(*frame), k-1)
					for j := 0; j < k-1; j++ {
						bares[j] = tBare(&b.Instrs[seg+j])
					}
					tf.code[st] = superRun(bares, tf.code[st+k-1], st, k)
				}
				seg += segLen
			}
			ii = s + 1
		}
	}
}

// superRun builds the run closure. The driver has counted and checked
// the first member when this runs; the closure accounts for the
// remaining k-1 instructions and the body's cycles in bulk (no bare op
// reads the counters, and the tail — which may: a fused pair's
// mid-check, a sync group's trailing ops — sees exactly the counts the
// batched kernel would have), executes the k-1 bare bodies, then hands
// off to the tail's full closure for the run's last instruction.
//
// When the whole run does not provably fit (crash, scheduling bound, or
// MaxSteps would trip mid-run), the closure executes exactly the prefix
// the stop predicate allows — the predicate is monotone in the cycle,
// and one cycle per member means the largest admissible prefix is a
// subtraction — and parks on the next member's own untouched slot, so
// the driver observes the identical stop point, frozen frame, or
// MaxSteps error the batched kernel would produce. This keeps tightly
// bounded multicore batches fast: one dispatch per batch segment
// instead of one per instruction.
func superRun(bares []func(*frame), tail tOp, start, k int) tOp {
	rest := int64(k - 1)
	return func(m *Machine, c *core, f *frame) int {
		x := c.cycle + rest
		if x < m.tcCrash && (x < m.tcBound || (x == m.tcBound && c.id < m.tcBoundID)) &&
			m.stats.Instrs+rest-1 < m.Cfg.MaxSteps {
			m.stats.Instrs += rest
			c.instrs += rest
			c.cycle += rest
			for _, g := range bares {
				g(f)
			}
			return tail(m, c, f)
		}
		// Partial run: the driver approved member 1, so at least one
		// member executes; maxX is the last cycle at which the batched
		// kernel would still have dispatched an instruction.
		maxX := m.tcBound - 1
		if c.id < m.tcBoundID {
			maxX = m.tcBound
		}
		if m.tcCrash-1 < maxX {
			maxX = m.tcCrash - 1
		}
		j := maxX - c.cycle + 1
		if lim := m.Cfg.MaxSteps - m.stats.Instrs + 1; lim < j {
			j = lim
		}
		if int64(k-1) < j {
			j = int64(k - 1)
		}
		m.stats.Instrs += j - 1
		c.instrs += j - 1
		c.cycle += j
		for _, g := range bares[:j] {
			g(f)
		}
		return start + int(j)
	}
}

// translate builds the specialized closure for one instruction. The
// sequencing inside each closure replicates stepFast (kernel.go) arm for
// arm: the driver has already done the MaxSteps check and counted the
// instruction when a closure runs.
func (tf *tFunc) translate(fn *ir.Function, bi, ii int) tOp {
	in := &fn.Blocks[bi].Instrs[ii]
	next := tf.base[bi] + ii + 1
	dst := in.Dst

	switch in.Op {
	case ir.OpConst:
		return tConst(dst, in.A.Imm, next)
	case ir.OpMov:
		if in.A.IsImm() {
			return tConst(dst, in.A.Imm, next)
		}
		a := in.A.Reg
		return func(m *Machine, c *core, f *frame) int {
			f.regs[dst] = f.regs[a]
			c.cycle++
			return next
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
		return tALU(in.Op, dst, in.A, in.B, next)
	case ir.OpSelect:
		b, cc := in.B, in.C
		if in.A.IsImm() {
			picked := cc
			if in.A.Imm != 0 {
				picked = b
			}
			if picked.IsImm() {
				return tConst(dst, picked.Imm, next)
			}
			a := picked.Reg
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[a]
				c.cycle++
				return next
			}
		}
		a := in.A.Reg
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			if regs[a] != 0 {
				regs[dst] = opVal(b, regs)
			} else {
				regs[dst] = opVal(cc, regs)
			}
			c.cycle++
			return next
		}
	case ir.OpLoad:
		off := in.Off
		if in.A.IsImm() {
			addr := (in.A.Imm + off) &^ 7
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = m.memLoad(c, addr)
				c.cycle++
				m.stats.Loads++
				return next
			}
		}
		a := in.A.Reg
		return func(m *Machine, c *core, f *frame) int {
			f.regs[dst] = m.memLoad(c, (f.regs[a]+off)&^7)
			c.cycle++
			m.stats.Loads++
			return next
		}
	case ir.OpStore:
		off := in.Off
		val := in.A
		if in.B.IsReg() && val.IsReg() {
			b, a := in.B.Reg, val.Reg
			return func(m *Machine, c *core, f *frame) int {
				regs := f.regs
				m.memStore(c, (regs[b]+off)&^7, regs[a])
				c.cycle++
				m.stats.Stores++
				return next
			}
		}
		base := in.B
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			m.memStore(c, (opVal(base, regs)+off)&^7, opVal(val, regs))
			c.cycle++
			m.stats.Stores++
			return next
		}
	case ir.OpJmp:
		thenFlat := tf.base[in.Then]
		return func(m *Machine, c *core, f *frame) int {
			c.cycle++
			m.stats.Branches++
			return thenFlat
		}
	case ir.OpBr:
		thenFlat, elseFlat := tf.base[in.Then], tf.base[in.Else]
		if in.A.IsImm() {
			target := elseFlat
			if in.A.Imm != 0 {
				target = thenFlat
			}
			return func(m *Machine, c *core, f *frame) int {
				c.cycle++
				m.stats.Branches++
				return target
			}
		}
		a := in.A.Reg
		return func(m *Machine, c *core, f *frame) int {
			c.cycle++
			m.stats.Branches++
			if f.regs[a] != 0 {
				return thenFlat
			}
			return elseFlat
		}
	case ir.OpRet:
		if !in.HasVal {
			return func(m *Machine, c *core, f *frame) int {
				c.cycle++
				m.handleRet(c, ir.Effect{Kind: ir.CtrlRet})
				return tcResync
			}
		}
		if in.A.IsImm() {
			v := in.A.Imm
			return func(m *Machine, c *core, f *frame) int {
				c.cycle++
				m.handleRet(c, ir.Effect{Kind: ir.CtrlRet, RetVal: v, HasRet: true})
				return tcResync
			}
		}
		a := in.A.Reg
		return func(m *Machine, c *core, f *frame) int {
			c.cycle++
			m.handleRet(c, ir.Effect{Kind: ir.CtrlRet, RetVal: f.regs[a], HasRet: true})
			return tcResync
		}

	case ir.OpBoundary:
		// handleBoundary reads f.blk/f.pc (the region's recovery point),
		// so materialize them first; the frame stack is unchanged after,
		// so fall through to the next flat slot directly.
		return func(m *Machine, c *core, f *frame) int {
			m.stats.Boundaries++
			f.blk, f.pc = bi, ii
			m.handleBoundary(c, f, in)
			return next
		}
	case ir.OpCkpt:
		a := in.A.Reg
		return func(m *Machine, c *core, f *frame) int {
			m.stats.Ckpts++
			m.memStore(c, CkptSlot(c.id, f.depth, a), f.regs[a])
			c.cycle++
			return next
		}
	case ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAtomicXchg, ir.OpFence, ir.OpAlloc, ir.OpEmit:
		// handleSyncGroup consumes the trailing ckpt+boundary group by
		// advancing f.pc itself; it never changes block or frame, so the
		// resume point maps straight back into this code array.
		return func(m *Machine, c *core, f *frame) int {
			m.stats.Atomics++
			f.blk, f.pc = bi, ii
			m.handleSyncGroup(c, f, in)
			return tf.base[f.blk] + f.pc
		}
	case ir.OpCall:
		return func(m *Machine, c *core, f *frame) int {
			m.stats.Calls++
			f.blk, f.pc = bi, ii
			m.handleCall(c, f, in)
			return tcResync
		}

	default:
		// Rare or future op: take the reference path exactly, like the
		// batched kernel's default arm.
		return func(m *Machine, c *core, f *frame) int {
			f.blk, f.pc = bi, ii
			eff := ir.Exec(in, f.regs, coreEnv{m, c})
			c.cycle++
			switch eff.Kind {
			case ir.CtrlNext:
				return next
			case ir.CtrlJump:
				f.blk, f.pc = eff.Target, 0
				return tf.base[eff.Target]
			case ir.CtrlRet:
				m.handleRet(c, eff)
			default:
				panic("sim: unexpected call effect in threaded kernel")
			}
			return tcResync
		}
	}
}

// tConst is the shared constant-result closure (OpConst, OpMov imm, and
// immediate-folded ALU ops).
func tConst(dst ir.Reg, v int64, next int) tOp {
	return func(m *Machine, c *core, f *frame) int {
		f.regs[dst] = v
		c.cycle++
		return next
	}
}

// tALU specializes a binary register op on its operand shape: both
// immediates fold at translation time, the reg×reg and reg×imm shapes
// get direct closures, and the rare imm×reg shape goes through one
// generic evaluator. Semantics (div/rem by zero, shift masking) are
// exactly stepFast's.
func tALU(op ir.Op, dst ir.Reg, a, b ir.Operand, next int) tOp {
	if a.IsImm() && b.IsImm() {
		return tConst(dst, aluEval(op, a.Imm, b.Imm), next)
	}
	if a.IsImm() {
		av, br := a.Imm, b.Reg
		return func(m *Machine, c *core, f *frame) int {
			f.regs[dst] = aluEval(op, av, f.regs[br])
			c.cycle++
			return next
		}
	}
	ar := a.Reg
	if b.IsImm() {
		bv := b.Imm
		switch op {
		case ir.OpAdd:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[ar] + bv
				c.cycle++
				return next
			}
		case ir.OpSub:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[ar] - bv
				c.cycle++
				return next
			}
		case ir.OpMul:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[ar] * bv
				c.cycle++
				return next
			}
		case ir.OpAnd:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[ar] & bv
				c.cycle++
				return next
			}
		case ir.OpOr:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[ar] | bv
				c.cycle++
				return next
			}
		case ir.OpXor:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = f.regs[ar] ^ bv
				c.cycle++
				return next
			}
		case ir.OpCmpEQ:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = b2i(f.regs[ar] == bv)
				c.cycle++
				return next
			}
		case ir.OpCmpNE:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = b2i(f.regs[ar] != bv)
				c.cycle++
				return next
			}
		case ir.OpCmpLT:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = b2i(f.regs[ar] < bv)
				c.cycle++
				return next
			}
		case ir.OpCmpLE:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = b2i(f.regs[ar] <= bv)
				c.cycle++
				return next
			}
		case ir.OpCmpGT:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = b2i(f.regs[ar] > bv)
				c.cycle++
				return next
			}
		case ir.OpCmpGE:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = b2i(f.regs[ar] >= bv)
				c.cycle++
				return next
			}
		default:
			return func(m *Machine, c *core, f *frame) int {
				f.regs[dst] = aluEval(op, f.regs[ar], bv)
				c.cycle++
				return next
			}
		}
	}
	br := b.Reg
	switch op {
	case ir.OpAdd:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = regs[ar] + regs[br]
			c.cycle++
			return next
		}
	case ir.OpSub:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = regs[ar] - regs[br]
			c.cycle++
			return next
		}
	case ir.OpMul:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = regs[ar] * regs[br]
			c.cycle++
			return next
		}
	case ir.OpAnd:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = regs[ar] & regs[br]
			c.cycle++
			return next
		}
	case ir.OpOr:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = regs[ar] | regs[br]
			c.cycle++
			return next
		}
	case ir.OpXor:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = regs[ar] ^ regs[br]
			c.cycle++
			return next
		}
	case ir.OpCmpEQ:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = b2i(regs[ar] == regs[br])
			c.cycle++
			return next
		}
	case ir.OpCmpNE:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = b2i(regs[ar] != regs[br])
			c.cycle++
			return next
		}
	case ir.OpCmpLT:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = b2i(regs[ar] < regs[br])
			c.cycle++
			return next
		}
	case ir.OpCmpLE:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = b2i(regs[ar] <= regs[br])
			c.cycle++
			return next
		}
	case ir.OpCmpGT:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = b2i(regs[ar] > regs[br])
			c.cycle++
			return next
		}
	case ir.OpCmpGE:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = b2i(regs[ar] >= regs[br])
			c.cycle++
			return next
		}
	default:
		return func(m *Machine, c *core, f *frame) int {
			regs := f.regs
			regs[dst] = aluEval(op, regs[ar], regs[br])
			c.cycle++
			return next
		}
	}
}

// aluEval mirrors the fast kernel's inline arithmetic exactly.
func aluEval(op ir.Op, a, b int64) int64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.OpRem:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (uint64(b) & 63)
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.OpCmpEQ:
		return b2i(a == b)
	case ir.OpCmpNE:
		return b2i(a != b)
	case ir.OpCmpLT:
		return b2i(a < b)
	case ir.OpCmpLE:
		return b2i(a <= b)
	case ir.OpCmpGT:
		return b2i(a > b)
	case ir.OpCmpGE:
		return b2i(a >= b)
	}
	panic("sim: aluEval on non-ALU op")
}

// fuseCmpBr builds the compare+branch superinstruction for the pair at
// (bi, ii)/(bi, ii+1) when the branch consumes exactly the compare's
// destination. Between the two halves the closure re-checks the stop
// conditions the driver would have checked (crash cycle, scheduling
// bound, MaxSteps) and, if any trips, parks the frame at the branch and
// resyncs — so the pair is interruptible at exactly the same points as
// the unfused sequence and crash/bounded runs stay byte-identical.
func (tf *tFunc) fuseCmpBr(fn *ir.Function, bi, ii int) tOp {
	cmp := &fn.Blocks[bi].Instrs[ii]
	br := &fn.Blocks[bi].Instrs[ii+1]
	switch cmp.Op {
	case ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE:
	default:
		return nil
	}
	if br.Op != ir.OpBr || !br.A.IsReg() || br.A.Reg != cmp.Dst || !cmp.A.IsReg() {
		return nil
	}
	op, dst, ar, b := cmp.Op, cmp.Dst, cmp.A.Reg, cmp.B
	var cmpv func(f *frame) int64
	if b.IsImm() {
		bv := b.Imm
		switch op {
		case ir.OpCmpEQ:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] == bv) }
		case ir.OpCmpNE:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] != bv) }
		case ir.OpCmpLT:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] < bv) }
		case ir.OpCmpLE:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] <= bv) }
		case ir.OpCmpGT:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] > bv) }
		case ir.OpCmpGE:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] >= bv) }
		}
	} else {
		brg := b.Reg
		switch op {
		case ir.OpCmpEQ:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] == f.regs[brg]) }
		case ir.OpCmpNE:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] != f.regs[brg]) }
		case ir.OpCmpLT:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] < f.regs[brg]) }
		case ir.OpCmpLE:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] <= f.regs[brg]) }
		case ir.OpCmpGT:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] > f.regs[brg]) }
		case ir.OpCmpGE:
			cmpv = func(f *frame) int64 { return b2i(f.regs[ar] >= f.regs[brg]) }
		}
	}
	thenFlat, elseFlat := tf.base[br.Then], tf.base[br.Else]
	return func(m *Machine, c *core, f *frame) int {
		v := cmpv(f)
		f.regs[dst] = v
		c.cycle++
		if c.cycle >= m.tcCrash || m.stats.Instrs >= m.Cfg.MaxSteps ||
			!(c.cycle < m.tcBound || (c.cycle == m.tcBound && c.id < m.tcBoundID)) {
			f.blk, f.pc = bi, ii+1
			return tcResync
		}
		m.stats.Instrs++
		c.instrs++
		c.cycle++
		m.stats.Branches++
		if v != 0 {
			return thenFlat
		}
		return elseFlat
	}
}

// --- driver -----------------------------------------------------------------

// runThreaded advances the machine with the batched minimum-cycle
// scheduler (the exact scheduling of runFast, kernel.go) over translated
// code.
func (m *Machine) runThreaded(crash int64) error {
	tp := m.threaded()
	if len(m.cores) == 1 {
		c := m.cores[0]
		if err := m.runCoreThreaded(tp, c, crash, tcNoBound, MaxCores+1, m.lbus != nil); err != nil {
			return err
		}
		m.halted = true
		return nil
	}
	for {
		// One scan: the reference kernel's argmin, plus the runner-up
		// threshold that bounds how long the winner may keep stepping.
		var c *core
		var nextCycle int64
		nextID := 0
		haveNext := false
		for _, cc := range m.cores {
			if cc.done || cc.cycle >= crash {
				continue
			}
			if c == nil || cc.cycle < c.cycle {
				if c != nil {
					nextCycle, nextID, haveNext = c.cycle, c.id, true
				}
				c = cc
			} else if !haveNext || cc.cycle < nextCycle {
				nextCycle, nextID, haveNext = cc.cycle, cc.id, true
			}
		}
		if c == nil {
			m.halted = true
			return nil
		}
		if m.lbus != nil && m.stats.Instrs >= m.liveNext {
			m.publishSimProgress(c.cycle)
		}
		if !haveNext {
			// Sole runnable core: run it out.
			if err := m.runCoreThreaded(tp, c, crash, tcNoBound, MaxCores+1, m.lbus != nil); err != nil {
				return err
			}
			continue
		}
		if err := m.runCoreThreaded(tp, c, crash, nextCycle, nextID, false); err != nil {
			return err
		}
	}
}

// tcNoBound is the scheduling bound of an unbounded (sole-runnable-core)
// batch: no reachable cycle equals it, so only crash/done stop the core.
const tcNoBound = int64(1)<<62 - 1

// runCoreThreaded steps one core while it stays strictly below the
// (boundCycle, boundID) scheduling bound and the crash cycle — the same
// batch the fast kernel runs with stepFast. Frame position is carried in
// the flat index fpc and written back to f.blk/f.pc whenever the core
// parks, so externally observable frame state matches the other kernels
// at every stop point.
func (m *Machine) runCoreThreaded(tp *tProg, c *core, crash, boundCycle int64, boundID int, live bool) error {
	if c.done {
		return nil
	}
	m.tcCrash, m.tcBound, m.tcBoundID = crash, boundCycle, boundID
	f := c.frames[len(c.frames)-1]
	tf := tp.fns[f.fn]
	code := tf.code
	fpc := tf.base[f.blk] + f.pc
	for c.cycle < crash && (c.cycle < boundCycle || (c.cycle == boundCycle && c.id < boundID)) {
		if m.stats.Instrs >= m.Cfg.MaxSteps {
			f.blk, f.pc = tf.loc[fpc].Block, tf.loc[fpc].Index
			return fmt.Errorf("sim: exceeded %d instructions (livelock?)", m.Cfg.MaxSteps)
		}
		m.stats.Instrs++
		c.instrs++
		next := code[fpc](m, c, f)
		if next >= 0 {
			fpc = next
		} else {
			if c.done {
				return nil
			}
			f = c.frames[len(c.frames)-1]
			tf = tp.fns[f.fn]
			code = tf.code
			fpc = tf.base[f.blk] + f.pc
		}
		if live && m.stats.Instrs >= m.liveNext {
			m.publishSimProgress(c.cycle)
		}
	}
	f.blk, f.pc = tf.loc[fpc].Block, tf.loc[fpc].Index
	return nil
}
