package sim

import "cwsp/internal/ir"

// Physical address layout of the whole-system-persistent machine. NVM is
// main memory; everything below lives in the single NVM-backed physical
// address space (DRAM is only a cache in front of it).
const (
	// BrkAddr holds the heap allocator's bump pointer. OpAlloc is a
	// runtime call that loads and stores this word, which is why it is a
	// synchronizing region of its own (re-executing it would double-bump).
	BrkAddr int64 = 0x0800_0000

	// HeapBase is where allocations start (must match ir.HeapBase so
	// functional interpretation and simulation agree on addresses).
	HeapBase = ir.HeapBase

	// Per-core stacks hold the calling convention's spill slots and frame
	// records.
	StackBase   int64 = 0x4000_0000
	StackStride int64 = 0x0040_0000 // 4 MiB per core

	// Per-core checkpoint areas: one 8-byte slot per (frame depth,
	// architectural register).
	CkptBase     int64 = 0x6000_0000
	CkptStride   int64 = 0x0100_0000 // 16 MiB per core
	MaxCores           = 16          // checkpoint area spans [CkptBase, CkptBase+16*CkptStride)
	MaxFrameRegs       = 256
	MaxDepth           = int(CkptStride) / (MaxFrameRegs * 8)

	// EmitBase is the observable-output ring: word 0 is the count, then
	// the emitted values. Emits persist synchronously and never re-execute.
	EmitBase int64 = 0x7800_0000
)

// StackStart returns core c's initial stack pointer.
func StackStart(c int) int64 { return StackBase + int64(c)*StackStride }

// CkptSlot returns the NVM address of core c's checkpoint slot for register
// r at frame depth d.
func CkptSlot(c, d int, r ir.Reg) int64 {
	return CkptBase + int64(c)*CkptStride + int64(d)*(MaxFrameRegs*8) + int64(r)*8
}

// IsCkptArea reports whether addr is inside the checkpoint region — such
// stores are always undo-logged so recovery can roll slots back to the
// restart region's entry state.
func IsCkptArea(addr int64) bool {
	return addr >= CkptBase && addr < CkptBase+int64(MaxCores)*CkptStride
}

// frame-record layout (4 words just below the callee frame's spill area):
// caller function index, packed resume point (block<<32 | index), caller
// stack pointer, callee argument count.
const frameRecordWords = 4
