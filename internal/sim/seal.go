package sim

import (
	"fmt"

	"cwsp/internal/persist"
)

// This file is the integrity layer of the recovery protocol: every undo-log
// record and every checkpoint-area slot the recovery runtime depends on is
// sealed with a checksum when written, and validated when read back after a
// power failure. Detection turns a would-be silent NVM divergence into a
// typed CorruptionError — the survival criterion the torture harness
// enforces (see internal/faults and DESIGN.md "Fault model").

// CorruptionError reports a sealed record or slot whose content no longer
// matches its seal (or a memory controller whose drain ledger disagrees
// with the admitted write sequence). It names the faulted object precisely
// so a torture campaign can attribute every detection.
type CorruptionError struct {
	// Kind is the validation site: "undo-log" (torn/corrupted journal
	// record), "wpq-ledger" (dropped or reordered WPQ tail entry), or
	// "ckpt-slot" (corrupted checkpoint-area word).
	Kind string `json:"kind"`
	// Addr is the NVM word address involved (0 for wpq-ledger gaps).
	Addr int64 `json:"addr,omitempty"`
	// Index is the journal record index ("undo-log"), or -1.
	Index int `json:"index"`
	// MC and Seq locate a WPQ ledger fault.
	MC  int   `json:"mc,omitempty"`
	Seq int64 `json:"seq,omitempty"`
	// Detail is a human-readable diagnosis.
	Detail string `json:"detail,omitempty"`
}

func (e *CorruptionError) Error() string {
	switch e.Kind {
	case "undo-log":
		return fmt.Sprintf("sim: corruption detected: undo-log record %d (addr %#x) fails seal check: %s", e.Index, e.Addr, e.Detail)
	case "wpq-ledger":
		return fmt.Sprintf("sim: corruption detected: MC %d drain ledger inconsistent at seq %d: %s", e.MC, e.Seq, e.Detail)
	case "ckpt-slot":
		return fmt.Sprintf("sim: corruption detected: checkpoint slot %#x fails seal check: %s", e.Addr, e.Detail)
	}
	return fmt.Sprintf("sim: corruption detected (%s): %s", e.Kind, e.Detail)
}

// CrashFaults describes the hardware corruption injected at one power
// failure. Indexes refer to the machine's persist-event journal; the
// machine itself is never mutated, so the same machine state can be cut
// cleanly and faultily. internal/faults resolves a seeded fault plan into
// this concrete form against the journal at the crash cycle.
type CrashFaults struct {
	// TornOld XORs the stored old-value of an undo-log record (a torn
	// 8-byte log write at power loss).
	TornOld map[int]uint64
	// Drop marks an admitted WPQ entry that never reached NVM media (a
	// battery-backed drain guarantee violated at the tail).
	Drop map[int]bool
	// Reorder swaps the media drain order of two same-MC admitted entries.
	Reorder [][2]int
	// CkptXOR corrupts checkpoint-area words of the reconstructed image.
	CkptXOR map[int64]uint64
}

// Empty reports whether the fault set injects nothing.
func (f *CrashFaults) Empty() bool {
	return f == nil ||
		len(f.TornOld) == 0 && len(f.Drop) == 0 && len(f.Reorder) == 0 && len(f.CkptXOR) == 0
}

// sealMix folds words into a 64-bit checksum with a splitmix64-style
// finalizer per word: cheap, deterministic, and far beyond the collision
// odds a fault campaign can reach.
func sealMix(words ...uint64) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, w := range words {
		z := h + w + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		h = z ^ (z >> 31)
	}
	return h
}

// sealRec computes an undo-log record's seal over every field the recovery
// reconstruction reads.
func sealRec(r *persist.Rec) uint64 {
	logged := uint64(0)
	if r.Logged {
		logged = 1
	}
	return sealMix(uint64(r.Addr), uint64(r.Old), uint64(r.New), uint64(r.Admit),
		uint64(r.Region), logged, uint64(r.Core), uint64(r.MC), uint64(r.MCSeq))
}

// SealWord computes a checkpoint-slot seal over (address, content). The
// recovery runtime re-derives it from the recovered NVM image and compares
// against the seal table carried in the CrashState.
func SealWord(addr, val int64) uint64 {
	return sealMix(uint64(addr), uint64(val))
}
