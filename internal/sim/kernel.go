package sim

import (
	"fmt"

	"cwsp/internal/ir"
)

// This file is the fast simulation kernel. It is semantically identical
// to the reference stepper (reference.go) — internal/simtest's
// differential harness and FuzzKernelEquivalence enforce byte-identical
// results, stats, crash states, and recovery outcomes — but restructured
// for speed:
//
//   - Batched scheduling: instead of rescanning every core per
//     instruction, the scheduler picks the minimum-(cycle, id) runnable
//     core once and steps it for as long as it stays strictly below the
//     next core's (cycle, id). While one core steps, no other core's
//     cycle moves, so every one of those steps is exactly the core the
//     reference scan would have picked.
//   - Inlined instruction dispatch: the hot straight-line ops execute in
//     one switch without the ir.Exec Effect-struct round trip, and
//     without the per-instruction telemetry probes (machines with
//     telemetry or tracing attached run the reference kernel instead).
//
// Any op the fast switch does not inline falls back to ir.Exec with the
// reference kernel's exact sequencing, so the two kernels share one
// definition of every rare path (and of all persist/region/call
// machinery, which lives in machine.go and is common to both).

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runFast advances the machine with the batched minimum-cycle scheduler.
func (m *Machine) runFast(crash int64) error {
	// Single-core machines (most sweeps) need no scheduling at all. The
	// loop is written twice so that with no live bus attached the hot
	// path carries zero extra per-instruction work — the simtest
	// steady-state guards pin that path allocation-free and the bench
	// trajectory pins its wall time.
	if len(m.cores) == 1 {
		c := m.cores[0]
		if m.lbus == nil {
			for !c.done && c.cycle < crash {
				if err := m.stepFast(c); err != nil {
					return err
				}
			}
		} else {
			for !c.done && c.cycle < crash {
				if err := m.stepFast(c); err != nil {
					return err
				}
				if m.stats.Instrs >= m.liveNext {
					m.publishSimProgress(c.cycle)
				}
			}
		}
		m.halted = true
		return nil
	}
	for {
		// One scan: the reference kernel's argmin, plus the runner-up
		// threshold that bounds how long the winner may keep stepping.
		var c *core
		var nextCycle int64
		nextID := 0
		haveNext := false
		for _, cc := range m.cores {
			if cc.done || cc.cycle >= crash {
				continue
			}
			if c == nil || cc.cycle < c.cycle {
				if c != nil {
					nextCycle, nextID, haveNext = c.cycle, c.id, true
				}
				c = cc
			} else if !haveNext || cc.cycle < nextCycle {
				nextCycle, nextID, haveNext = cc.cycle, cc.id, true
			}
		}
		if c == nil {
			m.halted = true
			return nil
		}
		// Progress reporting piggybacks on the scheduling quantum: one
		// check per scan (plus one per run-out batch below), never one
		// per instruction, so the multicore hot loops stay untouched.
		if m.lbus != nil && m.stats.Instrs >= m.liveNext {
			m.publishSimProgress(c.cycle)
		}
		if !haveNext {
			// Sole runnable core: run it out.
			if m.lbus == nil {
				for !c.done && c.cycle < crash {
					if err := m.stepFast(c); err != nil {
						return err
					}
				}
			} else {
				for !c.done && c.cycle < crash {
					if err := m.stepFast(c); err != nil {
						return err
					}
					if m.stats.Instrs >= m.liveNext {
						m.publishSimProgress(c.cycle)
					}
				}
			}
			continue
		}
		// Step while this core is still the strict (cycle, id) minimum —
		// exactly the iterations on which the reference scan picks it.
		for !c.done && c.cycle < crash &&
			(c.cycle < nextCycle || (c.cycle == nextCycle && c.id < nextID)) {
			if err := m.stepFast(c); err != nil {
				return err
			}
		}
	}
}

// stepFast executes one instruction with the reference kernel's exact
// sequencing (stats order, cycle advancement, control transfer) but with
// the common ops inlined.
func (m *Machine) stepFast(c *core) error {
	if m.stats.Instrs >= m.Cfg.MaxSteps {
		return fmt.Errorf("sim: exceeded %d instructions (livelock?)", m.Cfg.MaxSteps)
	}
	f := c.frames[len(c.frames)-1]
	blk := f.fn.Blocks[f.blk]
	in := &blk.Instrs[f.pc]
	m.stats.Instrs++
	c.instrs++
	regs := f.regs

	switch in.Op {
	case ir.OpConst:
		regs[in.Dst] = in.A.Imm
	case ir.OpMov:
		regs[in.Dst] = opVal(in.A, regs)
	case ir.OpAdd:
		regs[in.Dst] = opVal(in.A, regs) + opVal(in.B, regs)
	case ir.OpSub:
		regs[in.Dst] = opVal(in.A, regs) - opVal(in.B, regs)
	case ir.OpMul:
		regs[in.Dst] = opVal(in.A, regs) * opVal(in.B, regs)
	case ir.OpDiv:
		if b := opVal(in.B, regs); b == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = opVal(in.A, regs) / b
		}
	case ir.OpRem:
		if b := opVal(in.B, regs); b == 0 {
			regs[in.Dst] = 0
		} else {
			regs[in.Dst] = opVal(in.A, regs) % b
		}
	case ir.OpAnd:
		regs[in.Dst] = opVal(in.A, regs) & opVal(in.B, regs)
	case ir.OpOr:
		regs[in.Dst] = opVal(in.A, regs) | opVal(in.B, regs)
	case ir.OpXor:
		regs[in.Dst] = opVal(in.A, regs) ^ opVal(in.B, regs)
	case ir.OpShl:
		regs[in.Dst] = opVal(in.A, regs) << (uint64(opVal(in.B, regs)) & 63)
	case ir.OpShr:
		regs[in.Dst] = int64(uint64(opVal(in.A, regs)) >> (uint64(opVal(in.B, regs)) & 63))
	case ir.OpCmpEQ:
		regs[in.Dst] = b2i(opVal(in.A, regs) == opVal(in.B, regs))
	case ir.OpCmpNE:
		regs[in.Dst] = b2i(opVal(in.A, regs) != opVal(in.B, regs))
	case ir.OpCmpLT:
		regs[in.Dst] = b2i(opVal(in.A, regs) < opVal(in.B, regs))
	case ir.OpCmpLE:
		regs[in.Dst] = b2i(opVal(in.A, regs) <= opVal(in.B, regs))
	case ir.OpCmpGT:
		regs[in.Dst] = b2i(opVal(in.A, regs) > opVal(in.B, regs))
	case ir.OpCmpGE:
		regs[in.Dst] = b2i(opVal(in.A, regs) >= opVal(in.B, regs))
	case ir.OpSelect:
		if opVal(in.A, regs) != 0 {
			regs[in.Dst] = opVal(in.B, regs)
		} else {
			regs[in.Dst] = opVal(in.C, regs)
		}
	case ir.OpLoad:
		regs[in.Dst] = m.memLoad(c, (opVal(in.A, regs)+in.Off)&^7)
		c.cycle++
		m.stats.Loads++
		f.pc++
		return nil
	case ir.OpStore:
		m.memStore(c, (opVal(in.B, regs)+in.Off)&^7, opVal(in.A, regs))
		c.cycle++
		m.stats.Stores++
		f.pc++
		return nil
	case ir.OpJmp:
		c.cycle++
		m.stats.Branches++
		f.blk, f.pc = in.Then, 0
		return nil
	case ir.OpBr:
		c.cycle++
		m.stats.Branches++
		if opVal(in.A, regs) != 0 {
			f.blk, f.pc = in.Then, 0
		} else {
			f.blk, f.pc = in.Else, 0
		}
		return nil
	case ir.OpRet:
		c.cycle++
		if in.HasVal {
			m.handleRet(c, ir.Effect{Kind: ir.CtrlRet, RetVal: opVal(in.A, regs), HasRet: true})
		} else {
			m.handleRet(c, ir.Effect{Kind: ir.CtrlRet})
		}
		return nil

	case ir.OpBoundary:
		m.stats.Boundaries++
		m.handleBoundary(c, f, in)
		f.pc++
		return nil
	case ir.OpCkpt:
		m.stats.Ckpts++
		slot := CkptSlot(c.id, f.depth, in.A.Reg)
		m.memStore(c, slot, regs[in.A.Reg])
		c.cycle++
		f.pc++
		return nil
	case ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAtomicXchg, ir.OpFence, ir.OpAlloc, ir.OpEmit:
		m.stats.Atomics++
		m.handleSyncGroup(c, f, in)
		return nil
	case ir.OpCall:
		m.stats.Calls++
		m.handleCall(c, f, in)
		return nil

	default:
		// Rare or future op: take the reference path exactly.
		eff := ir.Exec(in, regs, coreEnv{m, c})
		c.cycle++
		switch eff.Kind {
		case ir.CtrlNext:
			f.pc++
		case ir.CtrlJump:
			f.blk, f.pc = eff.Target, 0
		case ir.CtrlRet:
			m.handleRet(c, eff)
		case ir.CtrlCall:
			return fmt.Errorf("sim: unexpected call effect")
		}
		return nil
	}

	// Straight-line register op: advance and fall through.
	c.cycle++
	f.pc++
	return nil
}
