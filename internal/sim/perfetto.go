package sim

import (
	"fmt"
	"io"

	"cwsp/internal/telemetry"
)

// perfettoMCBase offsets memory-controller track ids past any core id.
const perfettoMCBase = 1 << 16

// PerfettoTracer converts the machine event stream into a Chrome
// trace-event / Perfetto timeline loadable at ui.perfetto.dev: one track
// per core carrying region spans (async events, so overlapping in-flight
// regions render correctly), call/return nesting as duration slices, and
// sync-commit markers; one track per memory controller carrying WPQ
// admission slices; and a flow arrow per persist from its commit point on
// the core to its admission on the owning MC.
//
// Events stream to the writer as they happen — tracer memory is O(1) in
// run length. Timestamps map one simulated cycle to 0.5 ns (the machine's
// 2 GHz clock). Close must be called to terminate the JSON document.
type PerfettoTracer struct {
	tr      *telemetry.Trace
	began   map[int64]bool // region seq -> open span emitted
	threads map[int]bool   // tids with metadata emitted
	flow    int64
}

// NewPerfettoTracer starts a Perfetto trace on w.
func NewPerfettoTracer(w io.Writer) *PerfettoTracer {
	tr := telemetry.NewTrace(w)
	tr.ProcessName(0, "cwsp machine")
	return &PerfettoTracer{tr: tr, began: map[int64]bool{}, threads: map[int]bool{}}
}

// SetLimit caps emitted events (0 = unlimited); metadata is exempt, so a
// truncated trace still names its tracks.
func (p *PerfettoTracer) SetLimit(n int64) { p.tr.SetLimit(n) }

// Events returns the number of trace events emitted so far.
func (p *PerfettoTracer) Events() int64 { return p.tr.Events() }

// ts converts a machine cycle to trace microseconds (2 GHz core clock).
func (p *PerfettoTracer) ts(cycle int64) float64 { return float64(cycle) / 2000.0 }

func (p *PerfettoTracer) coreTid(core int) int {
	tid := core + 1
	if !p.threads[tid] {
		p.threads[tid] = true
		p.tr.ThreadName(0, tid, fmt.Sprintf("core %d", core))
	}
	return tid
}

func (p *PerfettoTracer) mcTid(mc int) int {
	tid := perfettoMCBase + mc
	if !p.threads[tid] {
		p.threads[tid] = true
		p.tr.ThreadName(0, tid, fmt.Sprintf("mc %d", mc))
	}
	return tid
}

// Event implements Tracer.
func (p *PerfettoTracer) Event(ev TraceEvent) {
	switch ev.Kind {
	case TraceRegion:
		tid := p.coreTid(ev.Core)
		p.began[ev.Region] = true
		p.tr.AsyncBegin(0, tid, ev.Region, "region", "region", p.ts(ev.Cycle),
			map[string]interface{}{"seq": ev.Region, "at": ev.Info})
	case TraceRegionEnd:
		tid := p.coreTid(ev.Core)
		if !p.began[ev.Region] {
			// The open predates tracer attachment (bootstrap region):
			// synthesize it from the start cycle the end event carries.
			p.tr.AsyncBegin(0, tid, ev.Region, "region", "region", p.ts(ev.Addr),
				map[string]interface{}{"seq": ev.Region, "at": ev.Info})
		}
		delete(p.began, ev.Region)
		retire := ev.Admit
		if retire < ev.Cycle {
			retire = ev.Cycle
		}
		p.tr.AsyncEnd(0, tid, ev.Region, "region", "region", p.ts(retire))
	case TracePersist:
		tid := p.coreTid(ev.Core)
		mt := p.mcTid(ev.MC)
		p.flow++
		name := fmt.Sprintf("persist %#x", ev.Addr)
		args := map[string]interface{}{"region": ev.Region, "addr": ev.Addr}
		p.tr.Instant(0, tid, name, "persist", p.ts(ev.Cycle), args)
		p.tr.FlowStart(0, tid, p.flow, "persist", "persist", p.ts(ev.Cycle))
		// A one-cycle admission slice keeps the flow arrow visible.
		p.tr.Complete(0, mt, name, "persist", p.ts(ev.Admit), p.ts(1), args)
		p.tr.FlowEnd(0, mt, p.flow, "persist", "persist", p.ts(ev.Admit))
	case TraceSync:
		p.tr.Instant(0, p.coreTid(ev.Core), "sync "+ev.Info, "sync", p.ts(ev.Cycle),
			map[string]interface{}{"region": ev.Region})
	case TraceCall:
		p.tr.Begin(0, p.coreTid(ev.Core), ev.Info, "call", p.ts(ev.Cycle), nil)
	case TraceRet:
		p.tr.End(0, p.coreTid(ev.Core), p.ts(ev.Cycle))
	}
}

// Close terminates the JSON document; the trace is unreadable without it.
func (p *PerfettoTracer) Close() error { return p.tr.Close() }
