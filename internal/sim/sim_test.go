package sim

import (
	"fmt"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
)

func runBoth(t *testing.T, p *ir.Program, cfg Config, sch Scheme) *Result {
	t.Helper()
	m, err := New(p, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBaselineMatchesInterp(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := runBoth(t, p, DefaultConfig(), Baseline())
		if res.Ret[0] != want.RetVal {
			t.Errorf("seed %d: sim ret %d, interp %d", seed, res.Ret[0], want.RetVal)
		}
		if fmt.Sprint(res.Output) != fmt.Sprint(want.Output) {
			t.Errorf("seed %d: output %v vs %v", seed, res.Output, want.Output)
		}
		// Heap contents must agree word for word.
		for _, w := range want.Mem.Snapshot() {
			if got := res.Mem.Load(w.Addr); got != w.Val {
				t.Errorf("seed %d: mem[%#x] = %d, want %d", seed, w.Addr, got, w.Val)
				break
			}
		}
	}
}

func TestCWSPMatchesInterp(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want, err := ir.Interp(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := runBoth(t, q, DefaultConfig(), CWSP())
		if res.Ret[0] != want.RetVal {
			t.Errorf("seed %d: cwsp ret %d, interp %d", seed, res.Ret[0], want.RetVal)
		}
		if fmt.Sprint(res.Output) != fmt.Sprint(want.Output) {
			t.Errorf("seed %d: output %v vs %v", seed, res.Output, want.Output)
		}
		// Heap state agrees (sim adds stack/ckpt regions; check interp's view).
		for _, w := range want.Mem.Snapshot() {
			if got := res.Mem.Load(w.Addr); got != w.Val {
				t.Errorf("seed %d: mem[%#x] = %d, want %d", seed, w.Addr, got, w.Val)
				break
			}
		}
	}
}

func TestCWSPNVMConvergesToMem(t *testing.T) {
	p := progen.Generate(3, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, q, DefaultConfig(), CWSP())
	// At completion every store has been persisted: the NVM image equals
	// the architectural image.
	if !res.NVM.Equal(res.Mem) {
		t.Errorf("NVM and architectural memory diverge: %v", res.NVM.Diff(res.Mem, 5))
	}
}

func TestCWSPSlowerThanBaselineButBounded(t *testing.T) {
	var ratios []float64
	for seed := int64(0); seed < 20; seed++ {
		p := progen.Generate(seed, progen.DefaultConfig())
		q, _, err := compiler.Compile(p, compiler.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		base := runBoth(t, p, DefaultConfig(), Baseline())
		cw := runBoth(t, q, DefaultConfig(), CWSP())
		r := cw.Stats.Slowdown(base.Stats)
		if r < 0.9 {
			t.Errorf("seed %d: cWSP mysteriously faster than baseline (%.3f)", seed, r)
		}
		if r > 5 {
			t.Errorf("seed %d: cWSP slowdown %.3f looks broken", seed, r)
		}
		ratios = append(ratios, r)
	}
	t.Logf("cWSP slowdowns on random programs: %v", ratios)
}

func TestRegionStats(t *testing.T) {
	p := progen.Generate(5, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, q, DefaultConfig(), CWSP())
	if res.Stats.Regions == 0 || res.Stats.Boundaries == 0 {
		t.Fatal("no regions committed")
	}
	ipr := res.Stats.IPR()
	if ipr < 1 || ipr > 500 {
		t.Errorf("instructions per region = %.1f, implausible", ipr)
	}
}

func TestTinyStructuresCauseStalls(t *testing.T) {
	p := progen.Generate(8, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PBSize = 2
	cfg.RBTSize = 1
	cfg.WPQSize = 2
	cfg.PPBytesBPC = 0.05 // starve the path
	res := runBoth(t, q, cfg, CWSP())
	if res.Stats.PBStallCyc == 0 && res.Stats.RBTStallCyc == 0 {
		t.Error("starved persist structures should cause stalls")
	}
	// Same program on generous structures must be faster.
	fast := runBoth(t, q, DefaultConfig(), CWSP())
	if fast.Stats.Cycles >= res.Stats.Cycles {
		t.Errorf("generous config (%d cyc) not faster than starved (%d cyc)",
			fast.Stats.Cycles, res.Stats.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	p := progen.Generate(12, progen.DefaultConfig())
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := runBoth(t, q, DefaultConfig(), CWSP())
	b := runBoth(t, q, DefaultConfig(), CWSP())
	if a.Stats != b.Stats {
		t.Errorf("nondeterministic stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestMultiCoreDisjoint(t *testing.T) {
	// worker(arr, n): for i<n: arr[i] = i*2; ret sum
	fb := ir.NewFunc("worker", 2)
	entry := fb.NewBlock("entry")
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.SetBlock(entry)
	i := fb.Reg()
	s := fb.Reg()
	fb.ConstInto(i, 0)
	fb.ConstInto(s, 0)
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.R(fb.Param(1)))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	v := fb.Mul(ir.R(i), ir.Imm(2))
	a := fb.Add(ir.R(fb.Param(0)), ir.R(i))
	sh := fb.Mul(ir.R(i), ir.Imm(8))
	a2 := fb.Add(ir.R(fb.Param(0)), ir.R(sh))
	_ = a
	fb.Store(ir.R(v), ir.R(a2), 0)
	fb.BinInto(ir.OpAdd, s, ir.R(s), ir.R(v))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(s))

	p := ir.NewProgram("mc")
	p.Add(fb.MustDone())
	p.Entry = "worker"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Cores = 2
	m, err := NewThreaded(q, cfg, CWSP(), []ThreadSpec{
		{Fn: "worker", Args: []int64{0x2000_0000, 50}},
		{Fn: "worker", Args: []int64{0x2100_0000, 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(49 * 50) // sum of 2i for i<50
	if res.Ret[0] != want || res.Ret[1] != want {
		t.Errorf("rets = %v, want %d each", res.Ret, want)
	}
	if res.Mem.Load(0x2000_0000+8*10) != 20 || res.Mem.Load(0x2100_0000+8*10) != 20 {
		t.Error("array contents wrong")
	}
}

func TestAtomicDrainStalls(t *testing.T) {
	// Store-heavy program with atomics: cWSP must record drain stalls.
	fb := ir.NewFunc("main", 0)
	entry := fb.NewBlock("entry")
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.SetBlock(entry)
	arr := fb.Alloc(1024)
	i := fb.Reg()
	fb.ConstInto(i, 0)
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(100))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	off := fb.Bin(ir.OpAnd, ir.R(i), ir.Imm(63))
	_ = off
	fb.Store(ir.R(i), ir.R(arr), 0)
	fb.AtomicAdd(ir.R(arr), 8, ir.Imm(1))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	p := ir.NewProgram("drain")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, q, DefaultConfig(), CWSP())
	if res.Stats.DrainStallCyc == 0 {
		t.Error("atomics in a store loop should cause drain stalls")
	}
	if res.Mem.Load(HeapBase+8) != 100 {
		t.Errorf("atomic counter = %d, want 100", res.Mem.Load(HeapBase+8))
	}
}
