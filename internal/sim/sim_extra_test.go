package sim

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/nvmtech"
	"cwsp/internal/progen"
)

// storeLoop builds a kernel writing n sequential words at base.
func storeLoop(t testing.TB, base, n int64) *ir.Program {
	t.Helper()
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(n))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	off := fb.Mul(ir.R(i), ir.Imm(8))
	a := fb.Add(ir.Imm(base), ir.R(off))
	v := fb.Add(ir.R(i), ir.Imm(1))
	fb.Store(ir.R(v), ir.R(a), 0)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	p := ir.NewProgram("storeloop")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

func compileT(t testing.TB, p *ir.Program) *ir.Program {
	t.Helper()
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestL3Hierarchy(t *testing.T) {
	p := progen.Generate(4, progen.DefaultConfig())
	cfg := DefaultConfig().WithL3()
	if cfg.L3Bytes == 0 || cfg.L2Bytes >= cfg.L3Bytes {
		t.Fatalf("WithL3 misconfigured: L2=%d L3=%d", cfg.L2Bytes, cfg.L3Bytes)
	}
	res := runBoth(t, p, cfg, Baseline())
	if res.Stats.Instrs == 0 {
		t.Fatal("no execution")
	}
}

func TestWithNVMChangesLatency(t *testing.T) {
	p := storeLoop(t, 0x3000_0000, 4096) // > L2, misses reach memory
	slow := runBoth(t, p, DefaultConfig().WithNVM(nvmtech.PMEM), Baseline())
	fast := runBoth(t, p, DefaultConfig().WithNVM(nvmtech.DRAM), Baseline())
	if fast.Stats.Cycles > slow.Stats.Cycles {
		t.Errorf("DRAM-backed run (%d) slower than PMEM (%d)", fast.Stats.Cycles, slow.Stats.Cycles)
	}
}

func TestPSPSchemeReachesNVM(t *testing.T) {
	p := storeLoop(t, 0x3000_0000, 64<<10) // 512KB: misses L1, fits L2... use loads too
	psp := Scheme{Name: "psp-ideal"}
	m, err := New(p, DefaultConfig(), psp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DRAMAccs != 0 {
		t.Error("PSP must not touch the DRAM cache")
	}
}

func TestEmitBufferPersists(t *testing.T) {
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	fb.Emit(ir.Imm(11))
	fb.Emit(ir.Imm(22))
	fb.Emit(ir.Imm(33))
	fb.RetVoid()
	p := ir.NewProgram("emits")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q := compileT(t, p)
	res := runBoth(t, q, DefaultConfig(), CWSP())
	if res.NVM.Load(EmitBase) != 3 {
		t.Errorf("emit count in NVM = %d, want 3", res.NVM.Load(EmitBase))
	}
	for i, want := range []int64{11, 22, 33} {
		if got := res.NVM.Load(EmitBase + 8*int64(i+1)); got != want {
			t.Errorf("emit[%d] = %d, want %d", i, got, want)
		}
	}
	if len(res.Output) != 3 || res.Output[1] != 22 {
		t.Errorf("Output = %v", res.Output)
	}
}

func TestSpillRestoreTraffic(t *testing.T) {
	// A call with live-across registers must generate spill stores and
	// restore loads.
	leaf := ir.NewFunc("leaf", 1)
	leaf.NewBlock("entry")
	r := leaf.Add(ir.R(leaf.Param(0)), ir.Imm(1))
	leaf.Ret(ir.R(r))

	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	x := fb.Const(41)
	y := fb.Const(58)
	rv := fb.Call("leaf", ir.R(x))
	s := fb.Add(ir.R(rv), ir.R(y)) // y lives across the call
	fb.Ret(ir.R(s))
	p := ir.NewProgram("call")
	p.Add(leaf.MustDone())
	p.Add(fb.MustDone())
	p.Entry = "main"
	q := compileT(t, p)

	res := runBoth(t, q, DefaultConfig(), CWSP())
	if res.Ret[0] != 100 {
		t.Errorf("result = %d, want 100", res.Ret[0])
	}
	if res.Stats.SpillStores == 0 || res.Stats.RestoreLoads == 0 {
		t.Errorf("no spill/restore traffic: %d/%d", res.Stats.SpillStores, res.Stats.RestoreLoads)
	}
	// Frame records live on the per-core stack in NVM.
	foundRecord := false
	for a := StackStart(0); a < StackStart(0)+512; a += 8 {
		if res.NVM.Load(a) != 0 {
			foundRecord = true
			break
		}
	}
	if !foundRecord {
		t.Error("no frame record persisted on the stack")
	}
}

func TestWPQDelayCountsHits(t *testing.T) {
	// Store then immediately load a large streaming region beyond all
	// caches: some loads must find their word pending in a WPQ.
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	s := fb.Reg()
	fb.ConstInto(i, 0)
	fb.ConstInto(s, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(3000))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	// Store a line, then read a word stored a few lines earlier: with tiny
	// caches it has been evicted, and with slow NVM media its WPQ entry is
	// still pending.
	off := fb.Mul(ir.R(i), ir.Imm(64))
	a := fb.Add(ir.Imm(0x3000_0000), ir.R(off))
	fb.Store(ir.R(i), ir.R(a), 0)
	back := fb.Sub(ir.R(a), ir.Imm(20*64))
	v := fb.Load(ir.R(back), 0)
	fb.BinInto(ir.OpAdd, s, ir.R(s), ir.R(v))
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(s))
	p := ir.NewProgram("wpqhit")
	p.Add(fb.MustDone())
	p.Entry = "main"
	q := compileT(t, p)

	cfg := DefaultConfig()
	cfg.DRAMBytes = 0  // force loads to NVM
	cfg.L1DBytes = 512 // tiny caches: the read-back address is evicted
	cfg.L2Bytes = 1024
	sch := CWSP()
	sch.DRAMCache = false
	cfg.NVMWriteBPC = 0.02 // very slow media: WPQ entries linger
	m, err := New(q, cfg, sch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.WPQHits == 0 {
		t.Error("expected WPQ hits for immediate read-after-write at NVM distance")
	}
	if res.Stats.WPQLoadDelay == 0 {
		t.Error("WPQDelay scheme should charge delay cycles on hits")
	}
}

func TestRecoverableJournalGrows(t *testing.T) {
	p := progen.Generate(6, progen.DefaultConfig())
	q := compileT(t, p)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	m, err := New(q, cfg, CWSP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Journal) == 0 || len(m.Regions) == 0 {
		t.Error("recoverable run must journal persists and regions")
	}
	// Non-recoverable runs must not pay the memory cost.
	cfg.Recoverable = false
	m2, err := New(q, cfg, CWSP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m2.Journal) != 0 || len(m2.Regions) != 0 {
		t.Error("non-recoverable run journaled anyway")
	}
}

func TestThreadSpecValidation(t *testing.T) {
	p := progen.Generate(1, progen.DefaultConfig())
	if _, err := NewThreaded(p, DefaultConfig(), Baseline(), nil); err == nil {
		t.Error("no threads should fail")
	}
	if _, err := NewThreaded(p, DefaultConfig(), Baseline(),
		[]ThreadSpec{{Fn: "nope"}}); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := NewThreaded(p, DefaultConfig(), Baseline(),
		[]ThreadSpec{{Fn: "main", Args: []int64{1, 2, 3}}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	// An infinite loop must hit the instruction cap, not hang.
	fb := ir.NewFunc("main", 0)
	b := fb.NewBlock("entry")
	fb.Jmp(b)
	p := ir.NewProgram("spin")
	p.Add(fb.MustDone())
	p.Entry = "main"
	cfg := DefaultConfig()
	cfg.MaxSteps = 10_000
	m, err := New(p, cfg, Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("expected livelock error")
	}
}

func TestCkptSlotLayout(t *testing.T) {
	a := CkptSlot(0, 0, 0)
	b := CkptSlot(0, 0, 1)
	c := CkptSlot(0, 1, 0)
	d := CkptSlot(1, 0, 0)
	if b-a != 8 {
		t.Errorf("register stride = %d, want 8", b-a)
	}
	if c-a != MaxFrameRegs*8 {
		t.Errorf("depth stride = %d, want %d", c-a, MaxFrameRegs*8)
	}
	if d-a != CkptStride {
		t.Errorf("core stride = %d, want %d", d-a, CkptStride)
	}
	if !IsCkptArea(a) || IsCkptArea(StackStart(0)) || IsCkptArea(EmitBase) {
		t.Error("IsCkptArea misclassifies")
	}
}

func TestResumeRejectsCorruptState(t *testing.T) {
	p := progen.Generate(2, progen.DefaultConfig())
	q := compileT(t, p)
	cfg := DefaultConfig()
	cfg.Recoverable = true
	m, err := New(q, cfg, CWSP())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.CrashAt(500)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the restart descriptor: unknown function.
	if len(cs.Restarts) > 0 && !cs.Restarts[0].Done {
		bad := *cs
		bad.Restarts = append([]Restart(nil), cs.Restarts...)
		bad.Restarts[0].Region.Fn = "no-such-fn"
		if _, err := NewResumed(q, cfg, CWSP(), []ThreadSpec{{Fn: q.Entry}}, &bad); err == nil {
			t.Error("resume accepted a corrupt restart function")
		}
		bad2 := *cs
		bad2.Restarts = append([]Restart(nil), cs.Restarts...)
		bad2.Restarts[0].Region.StaticID = 9999
		if _, err := NewResumed(q, cfg, CWSP(), []ThreadSpec{{Fn: q.Entry}}, &bad2); err == nil {
			t.Error("resume accepted a missing recovery slice")
		}
	}
}

func TestCrashAtRequiresRecoverable(t *testing.T) {
	p := progen.Generate(2, progen.DefaultConfig())
	q := compileT(t, p)
	m, err := New(q, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CrashAt(100); err == nil {
		t.Error("CrashAt must demand Config.Recoverable")
	}
}

// Halted reports whether the machine finished or froze at a crash point.
func TestHaltedFlag(t *testing.T) {
	p := progen.Generate(1, progen.DefaultConfig())
	m, err := New(p, DefaultConfig(), Baseline())
	if err != nil {
		t.Fatal(err)
	}
	if m.Halted() {
		t.Error("fresh machine should not be halted")
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Error("completed machine should be halted")
	}
}
