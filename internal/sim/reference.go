package sim

import (
	"fmt"

	"cwsp/internal/ir"
)

// This file is the reference simulation kernel: the original
// one-instruction-per-scheduler-scan stepper, kept verbatim as the oracle
// the fast kernel (kernel.go) is differentially tested against, and as
// the path that carries telemetry sampling and tracing probes. Select it
// explicitly with Config.ReferenceKernel (cwspsim -kernel=reference); it
// is selected automatically when telemetry or a tracer is attached.

// runReference advances the machine one instruction at a time, each time
// scanning every core for the minimum-cycle runnable one (ties break to
// the lowest core id).
func (m *Machine) runReference(crash int64) error {
	for {
		var c *core
		for _, cc := range m.cores {
			if cc.done || cc.cycle >= crash {
				continue
			}
			if c == nil || cc.cycle < c.cycle {
				c = cc
			}
		}
		if c == nil {
			m.halted = true
			return nil
		}
		if err := m.step(c); err != nil {
			return err
		}
	}
}

func (m *Machine) step(c *core) error {
	if m.stats.Instrs >= m.Cfg.MaxSteps {
		return fmt.Errorf("sim: exceeded %d instructions (livelock?)", m.Cfg.MaxSteps)
	}
	f := c.frames[len(c.frames)-1]
	blk := f.fn.Blocks[f.blk]
	in := &blk.Instrs[f.pc]
	m.stats.Instrs++
	c.instrs++
	if m.tel != nil && m.tel.Sampler.Due(c.cycle) {
		m.tel.sample(c.cycle)
	}

	switch in.Op {
	case ir.OpBoundary:
		m.stats.Boundaries++
		m.handleBoundary(c, f, in)
		f.pc++
		return nil
	case ir.OpCkpt:
		m.stats.Ckpts++
		if m.tel != nil && c.cur != nil {
			c.cur.ckpts++
		}
		slot := CkptSlot(c.id, f.depth, in.A.Reg)
		m.memStore(c, slot, f.regs[in.A.Reg])
		c.cycle++
		f.pc++
		return nil
	case ir.OpAtomicCAS, ir.OpAtomicAdd, ir.OpAtomicXchg, ir.OpFence, ir.OpAlloc, ir.OpEmit:
		m.stats.Atomics++
		m.handleSyncGroup(c, f, in)
		return nil
	case ir.OpCall:
		m.stats.Calls++
		m.handleCall(c, f, in)
		return nil
	}

	eff := ir.Exec(in, f.regs, coreEnv{m, c})
	c.cycle++
	switch in.Op {
	case ir.OpLoad:
		m.stats.Loads++
	case ir.OpStore:
		m.stats.Stores++
	case ir.OpBr, ir.OpJmp:
		m.stats.Branches++
	}

	switch eff.Kind {
	case ir.CtrlNext:
		f.pc++
	case ir.CtrlJump:
		f.blk, f.pc = eff.Target, 0
	case ir.CtrlRet:
		m.handleRet(c, eff)
	case ir.CtrlCall:
		return fmt.Errorf("sim: unexpected call effect")
	}
	return nil
}
