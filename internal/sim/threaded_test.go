package sim

import (
	"fmt"
	"sync"
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
	"cwsp/internal/progen"
)

// opMatrixProgram exercises every specialized translation shape: all
// binary ops in reg×reg, reg×imm, imm×reg, and folded imm×imm forms,
// div/rem by zero, shift-amount masking, select and branch condition
// shapes, immediate-address loads/stores, and a fusable compare+branch
// loop — so the threaded backend's per-shape closures are all covered by
// one deterministic program.
func opMatrixProgram(t testing.TB) *ir.Program {
	t.Helper()
	lfb := ir.NewFunc("leaf", 1)
	x := lfb.Param(0)
	lfb.NewBlock("entry")
	lfb.Ret(ir.R(lfb.Add(ir.R(x), ir.Imm(3))))

	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	const buf = int64(0x3300_0000)
	acc := fb.Reg()
	fb.ConstInto(acc, 7)
	a := fb.Const(29)
	b := fb.Const(5)
	zero := fb.Const(0)
	mix := func(r ir.Reg) {
		fb.BinInto(ir.OpXor, acc, ir.R(acc), ir.R(r))
		fb.BinInto(ir.OpAdd, acc, ir.R(acc), ir.Imm(1))
	}
	ops := []ir.Op{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE, ir.OpCmpGT, ir.OpCmpGE,
	}
	for _, op := range ops {
		mix(fb.Bin(op, ir.R(a), ir.R(b)))   // reg × reg
		mix(fb.Bin(op, ir.R(a), ir.Imm(9))) // reg × imm
		mix(fb.Bin(op, ir.Imm(13), ir.R(b)))
		mix(fb.Bin(op, ir.Imm(40), ir.Imm(6))) // folded at translation
	}
	// Division and remainder by zero (register and immediate) yield 0.
	mix(fb.Bin(ir.OpDiv, ir.R(a), ir.R(zero)))
	mix(fb.Bin(ir.OpRem, ir.R(a), ir.Imm(0)))
	// Shift amounts beyond 63 are masked.
	mix(fb.Bin(ir.OpShl, ir.R(a), ir.Imm(67)))
	mix(fb.Bin(ir.OpShr, ir.R(a), ir.R(fb.Const(130))))
	// Mov shapes.
	mv := fb.Reg()
	fb.Mov(mv, ir.R(acc))
	fb.Mov(mv, ir.Imm(-11))
	mix(mv)
	// Select condition shapes.
	mix(fb.Select(ir.R(zero), ir.R(a), ir.Imm(21)))
	mix(fb.Select(ir.Imm(1), ir.R(b), ir.R(a)))
	mix(fb.Select(ir.Imm(0), ir.Imm(2), ir.Imm(4)))
	// Loads and stores with register and immediate bases.
	fb.Store(ir.R(acc), ir.Imm(buf), 0)
	fb.Store(ir.Imm(123), ir.R(fb.Const(buf)), 8)
	mix(fb.Load(ir.Imm(buf), 0))
	mix(fb.Load(ir.R(fb.Const(buf)), 8))
	// Call and sync ops.
	mix(fb.Call("leaf", ir.R(acc)))
	mix(fb.AtomicAdd(ir.Imm(buf), 16, ir.R(b)))
	mix(fb.AtomicCAS(ir.Imm(buf), 16, ir.R(b), ir.R(a)))
	mix(fb.AtomicXchg(ir.Imm(buf), 24, ir.Imm(77)))
	fb.Fence()
	mix(fb.Alloc(64))
	fb.Emit(ir.R(acc))

	// A fusable compare+branch loop (CmpLT reg×imm feeding Br), plus an
	// immediate-condition branch.
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(50))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	fb.Store(ir.R(i), ir.Imm(buf), 32)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.BinInto(ir.OpXor, acc, ir.R(acc), ir.R(i))
	done := fb.AddBlock("done")
	fb.Br(ir.Imm(1), done, head)
	fb.SetBlock(done)
	fb.Emit(ir.R(acc))
	fb.Ret(ir.R(acc))

	p := ir.NewProgram("opmatrix")
	p.Add(lfb.MustDone())
	p.Add(fb.MustDone())
	p.Entry = "main"
	if err := ir.VerifyProgram(p); err != nil {
		t.Fatal(err)
	}
	return p
}

// requireSameResult compares two kernels' results field by field.
func requireSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if fmt.Sprintf("%+v", got.Stats) != fmt.Sprintf("%+v", want.Stats) {
		t.Errorf("%s: stats diverged\n  got:  %+v\n  want: %+v", label, got.Stats, want.Stats)
	}
	if fmt.Sprint(got.Ret) != fmt.Sprint(want.Ret) {
		t.Errorf("%s: ret %v, want %v", label, got.Ret, want.Ret)
	}
	if fmt.Sprint(got.Output) != fmt.Sprint(want.Output) {
		t.Errorf("%s: output %v, want %v", label, got.Output, want.Output)
	}
	if !got.Mem.Equal(want.Mem) {
		t.Errorf("%s: memory images diverged at addrs %v", label, got.Mem.Diff(want.Mem, 4))
	}
	if !got.NVM.Equal(want.NVM) {
		t.Errorf("%s: NVM images diverged at addrs %v", label, got.NVM.Diff(want.NVM, 4))
	}
}

// TestThreadedOpMatrix runs the shape-matrix program on the threaded and
// reference kernels — raw under the baseline scheme and compiled (with
// checkpoints and region boundaries) under full cWSP — and requires
// identical results.
func TestThreadedOpMatrix(t *testing.T) {
	raw := opMatrixProgram(t)
	compiled, _, err := compiler.Compile(raw, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		p    *ir.Program
		sch  Scheme
	}{
		{"base", raw, Baseline()},
		{"cwsp", compiled, CWSP()},
	}
	for _, tc := range cases {
		run := func(k KernelKind) *Result {
			cfg := DefaultConfig()
			cfg.Kernel = k
			m, err := New(tc.p, cfg, tc.sch)
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		requireSameResult(t, tc.name, run(KernelThreaded), run(KernelReference))
	}
}

// TestThreadedConcurrentFirstCompile races two machines' first runs of
// one program through the translation cache: exactly one translation may
// happen, and both runs must resolve the identical closure array.
func TestThreadedConcurrentFirstCompile(t *testing.T) {
	defer SetCodeSalt("")
	SetCodeSalt("threaded-test-concurrent") // fresh cache generation
	p := opMatrixProgram(t)

	before := tcompiles.Load()
	cfg := DefaultConfig()
	cfg.Kernel = KernelThreaded
	tps := make([]*tProg, 2)
	results := make([]*Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := New(p, cfg, Baseline())
			if err != nil {
				t.Error(err)
				return
			}
			res, err := m.Run()
			if err != nil {
				t.Error(err)
				return
			}
			tps[i] = m.tc
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := tcompiles.Load() - before; got != 1 {
		t.Errorf("two concurrent first runs translated %d times, want exactly 1", got)
	}
	if tps[0] == nil || tps[0] != tps[1] {
		t.Errorf("concurrent first runs resolved different translations: %p vs %p", tps[0], tps[1])
	}
	requireSameResult(t, "concurrent", results[1], results[0])
}

// TestThreadedSaltFlush pins the cache key contract: re-salting (what a
// ResultsSalt bump does) drops cached translations, same-salt re-runs
// reuse them.
func TestThreadedSaltFlush(t *testing.T) {
	defer SetCodeSalt("")
	SetCodeSalt("threaded-test-salt-a")
	p := opMatrixProgram(t)
	tp1 := threadedFor(p)
	if tp2 := threadedFor(p); tp2 != tp1 {
		t.Fatal("same-salt lookup re-translated the program")
	}
	SetCodeSalt("threaded-test-salt-b")
	if tp3 := threadedFor(p); tp3 == tp1 {
		t.Fatal("salt bump did not invalidate the translation cache")
	}
}

// TestThreadedCacheBounded pins the daemon-safety property: an unbounded
// stream of distinct programs cannot grow the translation cache past
// tcacheMax.
func TestThreadedCacheBounded(t *testing.T) {
	defer SetCodeSalt("")
	SetCodeSalt("threaded-test-bounded")
	for seed := int64(0); seed < tcacheMax+40; seed++ {
		p := progen.Generate(seed%7, progen.DefaultConfig()) // distinct pointers, few shapes
		threadedFor(p)
	}
	tcacheMu.Lock()
	n := len(tcache)
	tcacheMu.Unlock()
	if n > tcacheMax {
		t.Fatalf("translation cache grew to %d entries, cap is %d", n, tcacheMax)
	}
}

// TestUnknownKernelRejected pins construction-time validation of
// Config.Kernel.
func TestUnknownKernelRejected(t *testing.T) {
	p := opMatrixProgram(t)
	cfg := DefaultConfig()
	cfg.Kernel = "jit"
	if _, err := New(p, cfg, Baseline()); err == nil {
		t.Fatal("NewThreaded accepted unknown kernel \"jit\"")
	}
	for _, k := range []KernelKind{"", KernelBatched, KernelReference, KernelThreaded} {
		cfg.Kernel = k
		if _, err := New(p, cfg, Baseline()); err != nil {
			t.Fatalf("kernel %q rejected: %v", k, err)
		}
	}
}
