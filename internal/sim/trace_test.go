package sim

import (
	"strings"
	"testing"

	"cwsp/internal/progen"
)

func TestWriteTracerCapturesEvents(t *testing.T) {
	p := progen.Generate(4, progen.DefaultConfig())
	q := compileT(t, p)
	m, err := New(q, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.SetTracer(&WriteTracer{W: &sb, Limit: 500})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"region", "persist"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q events:\n%.300s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines == 0 || lines > 500 {
		t.Errorf("trace lines = %d, want (0,500]", lines)
	}
}

func TestWriteTracerFilter(t *testing.T) {
	p := progen.Generate(4, progen.DefaultConfig())
	q := compileT(t, p)
	m, err := New(q, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.SetTracer(&WriteTracer{W: &sb, Filter: map[TraceKind]bool{TraceSync: true}})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if line != "" && !strings.Contains(line, "sync") {
			t.Errorf("filtered trace leaked: %q", line)
		}
	}
}

func TestRingTracer(t *testing.T) {
	r := NewRingTracer(3)
	for i := int64(1); i <= 5; i++ {
		r.Event(TraceEvent{Cycle: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(evs))
	}
	if evs[0].Cycle != 3 || evs[2].Cycle != 5 {
		t.Errorf("ring order wrong: %v", evs)
	}
	// Partial fill.
	r2 := NewRingTracer(8)
	r2.Event(TraceEvent{Cycle: 1})
	r2.Event(TraceEvent{Cycle: 2})
	if got := r2.Events(); len(got) != 2 || got[0].Cycle != 1 {
		t.Errorf("partial ring wrong: %v", got)
	}
}

func TestTracingDoesNotPerturbTiming(t *testing.T) {
	p := progen.Generate(9, progen.DefaultConfig())
	q := compileT(t, p)
	run := func(tr Tracer) Stats {
		m, err := New(q, DefaultConfig(), CWSP())
		if err != nil {
			t.Fatal(err)
		}
		m.SetTracer(tr)
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	plain := run(nil)
	traced := run(NewRingTracer(1024))
	if plain != traced {
		t.Error("tracing changed simulation results")
	}
}
