package sim

import (
	"strings"
	"testing"

	"cwsp/internal/progen"
)

func TestWriteTracerCapturesEvents(t *testing.T) {
	p := progen.Generate(4, progen.DefaultConfig())
	q := compileT(t, p)
	m, err := New(q, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.SetTracer(&WriteTracer{W: &sb, Limit: 500})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"region", "persist"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q events:\n%.300s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines == 0 || lines > 500 {
		t.Errorf("trace lines = %d, want (0,500]", lines)
	}
}

func TestWriteTracerFilter(t *testing.T) {
	p := progen.Generate(4, progen.DefaultConfig())
	q := compileT(t, p)
	m, err := New(q, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	m.SetTracer(&WriteTracer{W: &sb, Filter: map[TraceKind]bool{TraceSync: true}})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if line != "" && !strings.Contains(line, "sync") {
			t.Errorf("filtered trace leaked: %q", line)
		}
	}
}

func TestTraceKindStringExhaustive(t *testing.T) {
	seen := map[string]TraceKind{}
	for k := TraceKind(0); k < numTraceKinds; k++ {
		s := k.String()
		if s == "?" || s == "" {
			t.Errorf("TraceKind(%d) has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("TraceKind(%d) and TraceKind(%d) share name %q", prev, k, s)
		}
		seen[s] = k
	}
	if got := numTraceKinds.String(); got != "?" {
		t.Errorf("out-of-range kind stringified to %q, want \"?\"", got)
	}
}

func TestWriteTracerEmptyFilterMeansAll(t *testing.T) {
	// A caller that builds the filter map conditionally may install an
	// empty (but non-nil) map; that must behave like "no filter", not
	// "drop everything".
	var sb strings.Builder
	tr := &WriteTracer{W: &sb, Filter: map[TraceKind]bool{}}
	tr.Event(TraceEvent{Kind: TracePersist, Cycle: 7})
	tr.Event(TraceEvent{Kind: TraceSync, Cycle: 8})
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Errorf("empty filter emitted %d events, want 2", got)
	}
}

func TestRingTracerExactCapacityWrap(t *testing.T) {
	// Exactly capacity events: the ring is full but next has wrapped to 0;
	// Events must return all of them, oldest first.
	r := NewRingTracer(4)
	for i := int64(1); i <= 4; i++ {
		r.Event(TraceEvent{Cycle: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring at exact capacity kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Cycle != int64(i+1) {
			t.Fatalf("wrap order wrong at %d: %v", i, evs)
		}
	}
	// One past capacity: oldest evicted.
	r.Event(TraceEvent{Cycle: 5})
	evs = r.Events()
	if evs[0].Cycle != 2 || evs[3].Cycle != 5 {
		t.Errorf("post-wrap order wrong: %v", evs)
	}
}

func TestRingTracer(t *testing.T) {
	r := NewRingTracer(3)
	for i := int64(1); i <= 5; i++ {
		r.Event(TraceEvent{Cycle: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(evs))
	}
	if evs[0].Cycle != 3 || evs[2].Cycle != 5 {
		t.Errorf("ring order wrong: %v", evs)
	}
	// Partial fill.
	r2 := NewRingTracer(8)
	r2.Event(TraceEvent{Cycle: 1})
	r2.Event(TraceEvent{Cycle: 2})
	if got := r2.Events(); len(got) != 2 || got[0].Cycle != 1 {
		t.Errorf("partial ring wrong: %v", got)
	}
}

func TestTracingDoesNotPerturbTiming(t *testing.T) {
	p := progen.Generate(9, progen.DefaultConfig())
	q := compileT(t, p)
	run := func(tr Tracer) Stats {
		m, err := New(q, DefaultConfig(), CWSP())
		if err != nil {
			t.Fatal(err)
		}
		m.SetTracer(tr)
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	plain := run(nil)
	traced := run(NewRingTracer(1024))
	if plain != traced {
		t.Error("tracing changed simulation results")
	}
}
