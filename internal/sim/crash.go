package sim

import (
	"fmt"
	"math"
	"sort"

	"cwsp/internal/mem"
)

// CrashState is what survives a power failure at a given cycle: the
// rolled-back NVM image and, per core, the oldest-unpersisted-region
// descriptor that recovery restarts from (paper Section VII).
type CrashState struct {
	Cycle    int64
	NVM      *mem.PagedMem
	Restarts []Restart

	// Seals is the checkpoint-area seal table (addr -> SealWord of the
	// correctly reconstructed content). NewResumed scrubs the recovered
	// image against it before executing a single instruction, so a
	// corrupted slot is reported instead of silently replayed into
	// registers. Hardware analogue: the MC writes per-slot checksums
	// transactionally with every checkpoint and undo write.
	Seals map[int64]uint64
}

// Restart is one core's recovery point.
type Restart struct {
	Core   int
	Done   bool // the core finished and every region persisted: nothing to do
	Region RegionInfo
}

// CrashAt runs the machine until the crash cycle, then performs the
// recovery protocol's NVM reconstruction:
//
//  1. persists that had not been admitted to a WPQ by the crash never
//     reached NVM — undone in reverse order;
//  2. undo logs of every unretired region (speculative stores and
//     checkpoint-area stores) roll back, newest first;
//  3. each core's restart point is its oldest region whose stores had not
//     all persisted.
//
// Requires Config.Recoverable.
func (m *Machine) CrashAt(cycle int64) (*CrashState, error) {
	return m.CrashAtFaults(cycle, nil)
}

// CrashAtFaults is CrashAt with adversarial hardware corruption injected at
// the power-failure instant (see internal/faults): torn undo-log records,
// dropped or reordered WPQ tail entries, and corrupted checkpoint-area
// words. Unless Config.Unsealed is set, the reconstruction validates every
// sealed structure it reads and returns a *CorruptionError naming the
// faulted record instead of a corrupted crash state; checkpoint-word
// corruption is detected later, by NewResumed's seal scrub.
func (m *Machine) CrashAtFaults(cycle int64, cf *CrashFaults) (*CrashState, error) {
	if !m.Cfg.Recoverable {
		return nil, fmt.Errorf("sim: CrashAt requires Config.Recoverable")
	}
	if err := m.RunUntil(cycle); err != nil {
		return nil, err
	}

	// Which regions had fully persisted by the crash?
	retired := map[int64]bool{}
	for _, ri := range m.Regions {
		if ri.Retire <= cycle {
			retired[ri.Seq] = true
		}
	}

	// Ground-truth reconstruction: what a fault-free power loss leaves.
	// The seal table is derived from it — hardware sealed every protected
	// write as it happened, before any fault could strike.
	clean := m.NVM.Clone()
	m.reconstruct(clean, cycle, retired, nil)
	cs := &CrashState{Cycle: cycle, NVM: clean, Seals: m.sealCkptArea(clean)}

	if !cf.Empty() {
		if !m.Cfg.Unsealed {
			if err := m.validateJournal(cycle, cf); err != nil {
				return nil, err
			}
		}
		faulty := m.NVM.Clone()
		m.reconstruct(faulty, cycle, retired, cf)
		// Apply checkpoint-word corruption in sorted address order: the final
		// image is order-independent (each word is XORed once), but the store
		// order must not inherit map iteration order — every observable side
		// effect of a crash has to be bit-reproducible across runs.
		xaddrs := make([]int64, 0, len(cf.CkptXOR))
		for addr := range cf.CkptXOR {
			xaddrs = append(xaddrs, addr)
		}
		sort.Slice(xaddrs, func(a, b int) bool { return xaddrs[a] < xaddrs[b] })
		for _, addr := range xaddrs {
			faulty.Store(addr, faulty.Load(addr)^int64(cf.CkptXOR[addr]))
		}
		cs.NVM = faulty
	}

	// Restart points: per core, the oldest (minimum-Seq) unretired region.
	// m.Regions is appended in open order, but per-core retire times need
	// not be monotone (battery-buffered schemes retire out of order, and a
	// descriptor log reordered by a caller must not change the answer), so
	// scan for the explicit minimum instead of trusting list order.
	for _, c := range m.cores {
		r := Restart{Core: c.id, Done: true}
		var oldest *RegionInfo
		for _, ri := range m.Regions {
			if ri.Core != c.id || ri.Retire <= cycle {
				continue
			}
			if oldest == nil || ri.Seq < oldest.Seq {
				oldest = ri
			}
		}
		if oldest != nil {
			r.Done = false
			r.Region = *oldest
		}
		if r.Done && !c.done {
			// The core was still executing but every *closed* region
			// persisted; its open region is the restart point.
			if c.cur != nil {
				r.Done = false
				r.Region = *c.cur.info
			}
		}
		cs.Restarts = append(cs.Restarts, r)
	}
	return cs, nil
}

// reconstruct rewinds img (a clone of the crash-instant NVM image) to the
// state recovery begins from, walking the journal newest-first: entries not
// admitted by the crash never reached media, and logged entries of
// unretired regions roll back via the MC undo logs. A non-nil cf overlays
// hardware faults without mutating the journal.
func (m *Machine) reconstruct(img *mem.PagedMem, cycle int64, retired map[int64]bool, cf *CrashFaults) {
	for i := len(m.Journal) - 1; i >= 0; i-- {
		rec := &m.Journal[i]
		old := rec.Old
		admitted := rec.Admit <= cycle
		if cf != nil {
			if x, ok := cf.TornOld[i]; ok {
				old ^= int64(x)
			}
			if cf.Drop[i] {
				admitted = false // the WPQ lied: the entry never drained
			}
		}
		if !admitted {
			img.Store(rec.Addr, old) // never reached NVM
			continue
		}
		if rec.Logged && !retired[rec.Region] {
			img.Store(rec.Addr, old) // rolled back via MC undo log
		}
	}
	if cf == nil {
		return
	}
	// Reordered drains: when both entries survived reconstruction and hit
	// the same word, the older value drains last and wins on media.
	for _, pr := range cf.Reorder {
		i, j := pr[0], pr[1]
		if i < 0 || j < 0 || i >= len(m.Journal) || j >= len(m.Journal) {
			continue
		}
		if j < i {
			i, j = j, i
		}
		ri, rj := &m.Journal[i], &m.Journal[j]
		if cf.Drop[i] || cf.Drop[j] || ri.Admit > cycle || rj.Admit > cycle {
			continue
		}
		if ri.Logged && !retired[ri.Region] || rj.Logged && !retired[rj.Region] {
			continue // rollback already erased the pair's effect
		}
		if ri.Addr == rj.Addr {
			img.Store(ri.Addr, ri.New)
		}
	}
}

// validateJournal performs the recovery-side integrity checks over the
// faulted journal view: per-record seals (torn undo-log writes) and the
// per-MC drain ledger (dropped or reordered WPQ tail entries; the ledger
// models the sequence-numbered drain journal the controller persists as
// entries reach media).
func (m *Machine) validateJournal(cycle int64, cf *CrashFaults) error {
	// Seal check on every record the reconstruction will read, in journal
	// order so the reported record is deterministic.
	torn := make([]int, 0, len(cf.TornOld))
	for i := range cf.TornOld {
		torn = append(torn, i)
	}
	sort.Ints(torn)
	for _, i := range torn {
		if i < 0 || i >= len(m.Journal) {
			continue
		}
		rec := m.Journal[i] // copy; apply the torn read
		rec.Old ^= int64(cf.TornOld[i])
		if sealRec(&rec) != m.Journal[i].Seal {
			return &CorruptionError{
				Kind: "undo-log", Addr: rec.Addr, Index: i,
				Detail: fmt.Sprintf("record content does not match its seal (old=%#x)", rec.Old),
			}
		}
	}

	// Drain-ledger cross-check: the journal's admitted MCSeq stream per
	// controller, versus the media-side drain order after faults.
	type ent struct {
		idx int
		seq int64
	}
	perMC := map[int][]ent{}
	for i := range m.Journal {
		rec := &m.Journal[i]
		if rec.MCSeq == 0 || rec.Admit > cycle {
			continue
		}
		perMC[rec.MC] = append(perMC[rec.MC], ent{i, rec.MCSeq})
	}
	mcs := make([]int, 0, len(perMC))
	for mc := range perMC {
		mcs = append(mcs, mc)
	}
	sort.Ints(mcs)
	for _, mc := range mcs {
		expect := append([]ent(nil), perMC[mc]...)
		sort.Slice(expect, func(a, b int) bool { return expect[a].seq < expect[b].seq })
		ledger := make([]ent, 0, len(expect))
		for _, e := range expect {
			if !cf.Drop[e.idx] {
				ledger = append(ledger, e)
			}
		}
		for _, pr := range cf.Reorder {
			var a, b = -1, -1
			for k, e := range ledger {
				if e.idx == pr[0] {
					a = k
				}
				if e.idx == pr[1] {
					b = k
				}
			}
			if a >= 0 && b >= 0 {
				ledger[a], ledger[b] = ledger[b], ledger[a]
			}
		}
		if len(ledger) != len(expect) {
			missing := int64(-1)
			have := map[int64]bool{}
			for _, e := range ledger {
				have[e.seq] = true
			}
			for _, e := range expect {
				if !have[e.seq] {
					missing = e.seq
					break
				}
			}
			return &CorruptionError{
				Kind: "wpq-ledger", MC: mc, Seq: missing,
				Detail: fmt.Sprintf("%d admitted entries, %d drained", len(expect), len(ledger)),
			}
		}
		for k := range expect {
			if ledger[k].seq != expect[k].seq {
				return &CorruptionError{
					Kind: "wpq-ledger", MC: mc, Seq: expect[k].seq,
					Detail: fmt.Sprintf("drain order inverted (drained seq %d at position %d)", ledger[k].seq, k),
				}
			}
		}
	}
	return nil
}

// sealCkptArea seals every checkpoint-area word the journal touched,
// against its content in the correctly reconstructed image.
func (m *Machine) sealCkptArea(img *mem.PagedMem) map[int64]uint64 {
	seals := map[int64]uint64{}
	for i := range m.Journal {
		addr := m.Journal[i].Addr
		if IsCkptArea(addr) {
			if _, ok := seals[addr]; !ok {
				seals[addr] = SealWord(addr, img.Load(addr))
			}
		}
	}
	return seals
}

// SealedCkptAddrs returns the sorted checkpoint-area addresses the journal
// has touched so far — the slots a checkpoint-corruption fault can target
// (and exactly the set NewResumed scrubs).
func (m *Machine) SealedCkptAddrs() []int64 {
	seen := map[int64]bool{}
	var out []int64
	for i := range m.Journal {
		addr := m.Journal[i].Addr
		if IsCkptArea(addr) && !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// MaxRetire reports the latest region retirement time (useful to pick
// crash cycles that still have work in flight).
func (m *Machine) MaxRetire() int64 {
	var max int64
	for _, ri := range m.Regions {
		if ri.Retire != math.MaxInt64 && ri.Retire > max {
			max = ri.Retire
		}
	}
	return max
}
