package sim

import (
	"fmt"
	"math"

	"cwsp/internal/mem"
)

// CrashState is what survives a power failure at a given cycle: the
// rolled-back NVM image and, per core, the oldest-unpersisted-region
// descriptor that recovery restarts from (paper Section VII).
type CrashState struct {
	Cycle    int64
	NVM      *mem.PagedMem
	Restarts []Restart
}

// Restart is one core's recovery point.
type Restart struct {
	Core   int
	Done   bool // the core finished and every region persisted: nothing to do
	Region RegionInfo
}

// CrashAt runs the machine until the crash cycle, then performs the
// recovery protocol's NVM reconstruction:
//
//  1. persists that had not been admitted to a WPQ by the crash never
//     reached NVM — undone in reverse order;
//  2. undo logs of every unretired region (speculative stores and
//     checkpoint-area stores) roll back, newest first;
//  3. each core's restart point is its oldest region whose stores had not
//     all persisted.
//
// Requires Config.Recoverable.
func (m *Machine) CrashAt(cycle int64) (*CrashState, error) {
	if !m.Cfg.Recoverable {
		return nil, fmt.Errorf("sim: CrashAt requires Config.Recoverable")
	}
	if err := m.RunUntil(cycle); err != nil {
		return nil, err
	}
	cs := &CrashState{Cycle: cycle, NVM: m.NVM.Clone()}

	// Which regions had fully persisted by the crash?
	retired := map[int64]bool{}
	for _, ri := range m.Regions {
		if ri.Retire <= cycle {
			retired[ri.Seq] = true
		}
	}

	// Reverse-journal reconstruction.
	for i := len(m.Journal) - 1; i >= 0; i-- {
		rec := &m.Journal[i]
		if rec.Admit > cycle {
			cs.NVM.Store(rec.Addr, rec.Old) // never reached NVM
			continue
		}
		if rec.Logged && !retired[rec.Region] {
			cs.NVM.Store(rec.Addr, rec.Old) // rolled back via MC undo log
		}
	}

	// Restart points: per core, the oldest unretired region.
	for _, c := range m.cores {
		r := Restart{Core: c.id, Done: true}
		for _, ri := range m.Regions {
			if ri.Core != c.id {
				continue
			}
			if ri.Retire > cycle {
				r.Done = false
				r.Region = *ri
				break
			}
		}
		if r.Done && !c.done {
			// The core was still executing but every *closed* region
			// persisted; its open region is the restart point.
			if c.cur != nil {
				r.Done = false
				r.Region = *c.cur.info
			}
		}
		cs.Restarts = append(cs.Restarts, r)
	}
	return cs, nil
}

// MaxRetire reports the latest region retirement time (useful to pick
// crash cycles that still have work in flight).
func (m *Machine) MaxRetire() int64 {
	var max int64
	for _, ri := range m.Regions {
		if ri.Retire != math.MaxInt64 && ri.Retire > max {
			max = ri.Retire
		}
	}
	return max
}
