package sim

import (
	"testing"

	"cwsp/internal/compiler"
	"cwsp/internal/ir"
)

// repeatStoreLoop: n stores, all to the same cache line.
func repeatStoreLoop(t testing.TB, n int64) *ir.Program {
	t.Helper()
	fb := ir.NewFunc("main", 0)
	fb.NewBlock("entry")
	i := fb.Reg()
	fb.ConstInto(i, 0)
	head := fb.AddBlock("head")
	body := fb.AddBlock("body")
	exit := fb.AddBlock("exit")
	fb.Jmp(head)
	fb.SetBlock(head)
	c := fb.Bin(ir.OpCmpLT, ir.R(i), ir.Imm(n))
	fb.Br(ir.R(c), body, exit)
	fb.SetBlock(body)
	// Four stores to the same cache line per region (distinct words, so no
	// antidependence cuts) — a Capri redo buffer coalesces them to one
	// line transfer.
	a := fb.Add(ir.Imm(0x3000_0000), ir.Imm(0))
	fb.Store(ir.R(i), ir.R(a), 0)
	fb.Store(ir.R(i), ir.R(a), 8)
	fb.Store(ir.R(i), ir.R(a), 16)
	fb.Store(ir.R(i), ir.R(a), 24)
	fb.BinInto(ir.OpAdd, i, ir.R(i), ir.Imm(1))
	fb.Jmp(head)
	fb.SetBlock(exit)
	fb.Ret(ir.R(i))
	p := ir.NewProgram("repeat")
	p.Add(fb.MustDone())
	p.Entry = "main"
	return p
}

// TestCapriLineDedup: with DedupLines, repeated stores to one line send
// far fewer persist bytes than per-store line persistence would.
func TestCapriLineDedup(t *testing.T) {
	p := repeatStoreLoop(t, 2000)
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dedup := Scheme{Name: "dedup", Persist: true, GranularityBytes: 64,
		DedupLines: true, DRAMCache: true}
	plain := Scheme{Name: "plain", Persist: true, GranularityBytes: 64,
		DRAMCache: true}
	run := func(s Scheme) Stats {
		m, err := New(q, DefaultConfig(), s)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	d := run(dedup)
	pl := run(plain)
	if d.PersistBytes*2 > pl.PersistBytes {
		t.Errorf("dedup persist bytes (%d) should be far below per-store (%d)",
			d.PersistBytes, pl.PersistBytes)
	}
}

// TestBoundaryStallScheme: iDO-style persist barriers record boundary
// stall cycles; the RBT-based scheme records none.
func TestBoundaryStallScheme(t *testing.T) {
	p := repeatStoreLoop(t, 2000)
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ido := Scheme{Name: "ido", Persist: true, GranularityBytes: 64,
		BoundaryStall: true, BoundaryExtraLat: 30, DRAMCache: true}
	m, err := New(q, DefaultConfig(), ido)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.BoundaryStall == 0 {
		t.Error("boundary-stall scheme recorded no boundary waits")
	}
	mw, err := New(q, DefaultConfig(), CWSP())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := mw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rw.Stats.BoundaryStall != 0 {
		t.Error("cWSP must never stall at boundaries (MC speculation)")
	}
	if rw.Stats.Cycles >= r.Stats.Cycles {
		t.Errorf("cWSP (%d cyc) should beat persist barriers (%d cyc)", rw.Stats.Cycles, r.Stats.Cycles)
	}
}

// TestLogBytesAccounting: speculative stores account undo-log bytes; the
// ablation knobs change the accounting.
func TestLogBytesAccounting(t *testing.T) {
	p := repeatStoreLoop(t, 2000)
	q, _, err := compiler.Compile(p, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := func(logBytes int) Stats {
		s := CWSP()
		s.LogBytes = logBytes
		m, err := New(q, DefaultConfig(), s)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	def := run(0)
	big := run(72)
	free := run(-1)
	if def.LogBytes == 0 {
		t.Error("no undo-log bytes recorded under MC speculation")
	}
	if big.LogBytes <= def.LogBytes {
		t.Error("line-sized logging should record more bytes")
	}
	if free.LogBytes != 0 {
		t.Error("free-logging ablation should record zero log bytes")
	}
	if big.Cycles < def.Cycles {
		t.Error("bigger logs should not be faster")
	}
}
