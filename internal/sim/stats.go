package sim

// Stats aggregates one run's counters. Cycle counts are whole-machine
// (max over cores); event counts are summed over cores.
type Stats struct {
	Cycles int64
	Instrs int64

	Loads, Stores, Branches, Calls, Atomics, Boundaries, Ckpts int64
	SpillStores, RestoreLoads                                  int64

	Regions int64 // dynamic regions committed

	// Stall cycles by cause.
	PBStallCyc    int64
	RBTStallCyc   int64
	WBStallCyc    int64
	DrainStallCyc int64 // waiting for persistence at synchronizing ops
	BoundaryStall int64 // boundary persist-barrier waits (non-cWSP schemes)
	WPQLoadDelay  int64 // cycles loads waited on pending WPQ entries

	WPQHits  int64 // loads that found their word pending in a WPQ
	NVMReads int64

	WBAvgOcc   float64
	WBDelayed  int64 // WB drains held by the persist-path check
	L1DMisses  int64
	L1DAccs    int64
	L2Misses   int64
	L2Accs     int64
	DRAMMisses int64
	DRAMAccs   int64

	PersistBytes int64 // data bytes sent down the persist path
	LogBytes     int64 // undo-log bytes written at MCs
}

// IPC returns retired instructions per cycle (0 for a zero-cycle run, so
// degenerate runs cannot divide by zero).
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// StallBreakdown returns each stall cause's fraction of total machine
// cycles. Causes with zero cycles are included (a diffing tool wants a
// stable key set); a zero-cycle run returns all-zero fractions. Fractions
// can sum past 1.0 on multi-core runs because per-core stalls are summed
// while Cycles is the max over cores.
func (s Stats) StallBreakdown() map[string]float64 {
	frac := func(v int64) float64 {
		if s.Cycles <= 0 {
			return 0
		}
		return float64(v) / float64(s.Cycles)
	}
	return map[string]float64{
		"pb":       frac(s.PBStallCyc),
		"rbt":      frac(s.RBTStallCyc),
		"wb":       frac(s.WBStallCyc),
		"drain":    frac(s.DrainStallCyc),
		"boundary": frac(s.BoundaryStall),
		"wpq_load": frac(s.WPQLoadDelay),
	}
}

// Derived returns the derived metrics exported by -json output and run
// manifests: the ratios the paper's figures plot, plus the per-cause
// stall fractions under "stall_frac.<cause>" keys.
func (s Stats) Derived() map[string]float64 {
	d := map[string]float64{
		"ipc":           s.IPC(),
		"ipr":           s.IPR(),
		"wpq_hpmi":      s.WPQHPMI(),
		"l1d_miss_rate": s.L1DMissRate(),
	}
	for k, v := range s.StallBreakdown() {
		d["stall_frac."+k] = v
	}
	return d
}

// IPR returns dynamic instructions per region (the paper's Figure 19).
func (s Stats) IPR() float64 {
	if s.Regions == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Regions)
}

// WPQHPMI returns WPQ hits per million instructions (Figure 8).
func (s Stats) WPQHPMI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.WPQHits) * 1e6 / float64(s.Instrs)
}

// L1DMissRate returns the L1D miss ratio.
func (s Stats) L1DMissRate() float64 {
	if s.L1DAccs == 0 {
		return 0
	}
	return float64(s.L1DMisses) / float64(s.L1DAccs)
}

// Slowdown returns s.Cycles normalized to a baseline run.
func (s Stats) Slowdown(base Stats) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(base.Cycles)
}
