package sim

import (
	"fmt"
	"sort"

	"cwsp/internal/ir"
)

// NewResumed builds a machine that continues execution from a crash state:
// the paper's recovery protocol (Section VII). For every core it
//
//  1. rebuilds the call stack by walking the persisted frame records on
//     the NVM stack,
//  2. replays the restart region's recovery slice against the NVM
//     checkpoint slots to restore its live-in registers, and
//  3. resumes execution at the region's boundary instruction.
//
// The specs must match the original machine's thread placement (they are
// needed only for arity checks; argument values are recovered from NVM).
func NewResumed(prog *ir.Program, cfg Config, sch Scheme, specs []ThreadSpec, cs *CrashState) (*Machine, error) {
	m, err := NewThreaded(prog, cfg, sch, specs)
	if err != nil {
		return nil, err
	}
	// Replace the fresh memory with the recovered NVM image. Caches start
	// cold; architectural memory = NVM after a power cycle.
	m.Mem = cs.NVM.Clone()
	m.NVM = cs.NVM.Clone()

	// Scrub the checkpoint area against the crash state's seal table before
	// executing anything: a corrupted slot must surface as a typed error,
	// not as silently wrong register state. (Config.Unsealed disables the
	// scrub — the negative control the torture harness uses.)
	if len(cs.Seals) > 0 && !cfg.Unsealed {
		addrs := make([]int64, 0, len(cs.Seals))
		for a := range cs.Seals {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			if SealWord(a, m.NVM.Load(a)) != cs.Seals[a] {
				return nil, &CorruptionError{
					Kind: "ckpt-slot", Addr: a, Index: -1,
					Detail: fmt.Sprintf("recovered content %#x does not match its seal", m.NVM.Load(a)),
				}
			}
		}
	}

	// The machine begins a fresh recovery epoch: drop the bootstrap region
	// descriptors NewThreaded opened (rebuildCore re-opens the real restart
	// regions) so a nested crash of this resumed machine scans only its own
	// epoch's descriptor log and journal.
	m.Regions = m.Regions[:0]
	m.regionSeq = 0

	for i, r := range cs.Restarts {
		if i >= len(m.cores) {
			break
		}
		c := m.cores[i]
		if r.Done {
			c.done = true
			c.frames = nil
			c.cur = nil
			continue
		}
		if err := m.rebuildCore(c, r.Region); err != nil {
			return nil, fmt.Errorf("sim: resume core %d: %w", i, err)
		}
	}
	return m, nil
}

func (m *Machine) rebuildCore(c *core, R RegionInfo) error {
	fn := m.Prog.Funcs[R.Fn]
	if fn == nil {
		return fmt.Errorf("unknown restart function %q", R.Fn)
	}
	rs, ok := fn.Slices[R.StaticID]
	if !ok {
		return fmt.Errorf("function %s has no recovery slice for region %d", R.Fn, R.StaticID)
	}

	// Innermost frame: registers from the recovery slice.
	inner := &frame{
		fn:    fn,
		regs:  make([]int64, fn.NumRegs),
		dst:   ir.NoReg,
		depth: R.Depth,
		blk:   R.Ref.Block,
		pc:    R.Ref.Index,
	}
	m.replaySlice(c.id, R.Depth, rs, inner.regs)

	// Walk frame records downward to rebuild callers.
	frames := []*frame{inner}
	cur := inner
	sp := R.StackPtr
	for d := R.Depth; d > 0; d-- {
		// Record words live just below the callee's stack pointer.
		argc := m.NVM.Load(sp - 8)
		base := m.NVM.Load(sp - 16)
		packed := m.NVM.Load(sp - 24)
		fnIdx := m.NVM.Load(sp - 32)
		if fnIdx < 0 || fnIdx >= int64(len(m.funcNames)) {
			return fmt.Errorf("corrupt frame record at %#x (fnIdx=%d)", sp, fnIdx)
		}
		callerName := m.funcNames[fnIdx]
		caller := m.Prog.Funcs[callerName]
		callBlk := int(packed >> 32)
		callPC := int(packed & 0xFFFFFFFF)
		if callBlk >= len(caller.Blocks) || callPC >= len(caller.Blocks[callBlk].Instrs) {
			return fmt.Errorf("corrupt frame record resume point b%d[%d] in %s", callBlk, callPC, callerName)
		}
		callIn := &caller.Blocks[callBlk].Instrs[callPC]
		if callIn.Op != ir.OpCall {
			return fmt.Errorf("frame record does not point at a call (%s)", callIn.Op)
		}
		if int(argc) != len(callIn.Args) {
			return fmt.Errorf("frame record argc %d != callsite %d", argc, len(callIn.Args))
		}

		// Fill the callee frame's call linkage.
		cur.spillBase = base
		cur.spillList = caller.LiveAcross[ir.InstrRef{Block: callBlk, Index: callPC}]
		cur.dst = callIn.Dst
		cur.resumeBlk = callBlk
		cur.resumePC = callPC + 1

		parent := &frame{
			fn:    caller,
			regs:  make([]int64, caller.NumRegs),
			dst:   ir.NoReg,
			depth: d - 1,
			blk:   callBlk,
			pc:    callPC + 1, // overwritten by resume linkage on return
		}
		frames = append([]*frame{parent}, frames...)
		cur = parent
		sp = base
	}

	c.frames = frames
	c.stackPtr = R.StackPtr
	c.done = false
	// The restart region re-opens when its boundary instruction re-commits;
	// until then the core runs under a fresh bootstrap region with the same
	// descriptor.
	c.cur = m.openRegion(c, R.Fn, R.StaticID, R.Ref, R.Depth, R.StackPtr, 0)
	return nil
}

// replaySlice executes a recovery slice against core/frame-depth slot state
// in the (recovered) NVM image.
func (m *Machine) replaySlice(coreID, depth int, rs ir.RecoverySlice, regs []int64) {
	for _, st := range rs.Steps {
		switch st.Op {
		case ir.SliceConst:
			regs[st.Dst] = st.Imm
		case ir.SliceLoadCkpt:
			regs[st.Dst] = m.NVM.Load(CkptSlot(coreID, depth, st.Src))
		case ir.SliceUnary:
			in := ir.Instr{Op: st.ALUOp, Dst: st.Dst, A: ir.R(st.Src), B: ir.Imm(st.Imm)}
			ir.Exec(&in, regs, nil)
		case ir.SliceBinary:
			in := ir.Instr{Op: st.ALUOp, Dst: st.Dst, A: ir.R(st.Src), B: ir.R(st.Src2)}
			ir.Exec(&in, regs, nil)
		}
	}
}
