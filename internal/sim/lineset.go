package sim

// lineSet is the per-core dedup-line tracker for DedupLines schemes: the
// set of cache lines the current region has already sent down the persist
// path. It replaces the per-region map[int64]bool the hot store path used
// to allocate and hash into. Clearing is O(1) — opening a region bumps
// the epoch, invalidating every slot — so one table serves every region a
// core ever runs (a core has exactly one open region at a time).
type lineSet struct {
	keys  []int64
	epoch []uint32
	cur   uint32
	mask  uint64
	live  int
}

func newLineSet() *lineSet {
	const size = 256
	return &lineSet{
		keys:  make([]int64, size),
		epoch: make([]uint32, size),
		cur:   1,
		mask:  size - 1,
	}
}

// reset empties the set (start of a region).
func (s *lineSet) reset() {
	s.cur++
	s.live = 0
	if s.cur == 0 {
		// Epoch counter wrapped: invalidate every slot explicitly once per
		// 2^32 regions.
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.cur = 1
	}
}

func (s *lineSet) slot(key int64) uint64 {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return (h ^ (h >> 29)) & s.mask
}

// insert adds key to the set and reports whether it was already present.
func (s *lineSet) insert(key int64) bool {
	i := s.slot(key)
	for {
		if s.epoch[i] != s.cur {
			s.keys[i] = key
			s.epoch[i] = s.cur
			s.live++
			if 4*s.live >= 3*len(s.keys) {
				s.grow()
			}
			return false
		}
		if s.keys[i] == key {
			return true
		}
		i = (i + 1) & s.mask
	}
}

func (s *lineSet) grow() {
	oldK, oldE, oldCur := s.keys, s.epoch, s.cur
	size := 2 * len(oldK)
	s.keys = make([]int64, size)
	s.epoch = make([]uint32, size)
	s.mask = uint64(size - 1)
	s.cur = 1
	s.live = 0
	for i, e := range oldE {
		if e == oldCur {
			s.insert(oldK[i])
		}
	}
}
